// Custom ODE: design a brand-new protocol from your own differential
// equations, exactly the workflow the paper proposes for "transforming, in
// a very systematic manner, well-known natural phenomena into protocols".
//
// The example models a service pool with a target recruitment rate: the
// group should convert available processes (a) into workers (w) at a
// constant system-wide rate 0.15 per period, while workers retire back at
// rate 0.1 per worker:
//
//	ȧ = −0.15 + 0.1·w
//	ẇ = +0.15 − 0.1·w
//
// The constant term −0.15 contains no variable at all, so §6's recipe
// applies: rewrite −c as −c·(a + w) (rewrite.ExpandConstants, using
// Σ fractions = 1). After combining like terms the −0.15·a part maps to
// Flipping, and a residual −0.05·w in a's equation — a term without a —
// maps to Tokenizing: a worker flips a coin and, on heads, sends a token
// that converts some available process to a worker.
//
// Because demand (0.15) exceeds retirement (0.1·w ≤ 0.1), the pool
// saturates: every process ends up a worker and further recruitment
// tokens find no available target. The run prints the dropped-token rate,
// exercising exactly the §6 rule "if no processes in the system are in the
// state x, the token is dropped".
//
// Run with:
//
//	go run ./examples/custom-ode
package main

import (
	"fmt"
	"log"

	"odeproto/internal/core"
	"odeproto/internal/ode"
	"odeproto/internal/rewrite"
	"odeproto/internal/sim"
)

func main() {
	src := `
a' = -0.15 + 0.1*w
w' = 0.15 - 0.1*w
`
	system, err := ode.Parse(src, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("source equations:")
	fmt.Println(system)
	cls := system.Classify()
	fmt.Println("taxonomy:", cls)

	if !cls.Mappable() {
		// Not needed for this system (it is already complete), but this is
		// the general path for raw equations.
		system, err = rewrite.MakeMappable(system, "s")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("after §7 rewriting:")
		fmt.Println(system)
	}
	// The constant term needs the §6 expansion before translation.
	system = rewrite.ExpandConstants(system)
	fmt.Println("after constant expansion (−c → −c·Σv):")
	fmt.Println(system)
	if cls.NeedsTokenizing() {
		fmt.Println("note: translation will use Tokenizing (§6)")
	}

	protocol, err := core.Translate(system, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ngenerated protocol:")
	fmt.Print(protocol)

	// Verify Theorem 5 numerically at one point before running: the
	// protocol's expected drift must be p·f̄(X̄).
	point := map[ode.Var]float64{"a": 0.7, "w": 0.3}
	drift := protocol.ExpectedFlow(point)
	rhs := system.PointFromVec(system.Eval(point))
	fmt.Println("\nTheorem 5 check at (a,w) = (0.7,0.3):")
	for _, v := range system.Vars() {
		fmt.Printf("  drift[%s] = %+.6f, p·f_%s = %+.6f\n", v, drift[v], v, protocol.P*rhs[v])
	}

	// Simulate 20,000 processes starting with almost no workers; the pool
	// fills up and then saturates, dropping surplus tokens.
	const n = 20000
	engine, err := sim.New(sim.Config{
		N:        n,
		Protocol: protocol,
		Initial:  map[ode.Var]int{"a": n - 100, "w": 100},
		Seed:     5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nperiod  available  workers  tokens dropped/period")
	for t := 0; t <= 120; t += 10 {
		fmt.Printf("%6d  %9d  %7d  %21d\n",
			t, engine.Count("a"), engine.Count("w"), engine.TokensLostLastPeriod())
		engine.Run(10)
	}
	fmt.Println("\nthe pool saturated; surplus recruitment tokens are dropped (§6)")
}
