// Replication: the paper's Case Study I (§4.1) as an application — a
// persistent distributed file store that keeps one file alive through
// endemic migratory replication, surviving both continuous churn and a
// correlated massive failure, while no host stores the file for long.
//
// Run with:
//
//	go run ./examples/replication
package main

import (
	"fmt"
	"log"

	"odeproto/internal/churn"
	"odeproto/internal/endemic"
	"odeproto/internal/ode"
	"odeproto/internal/sim"
)

// fileStore tracks which hosts currently hold the replica, driven by the
// protocol's transition hook: receptive→stash is a file transfer,
// stash→averse is a deletion.
type fileStore struct {
	holders   map[int]bool
	transfers int
	deletions int
}

func (fs *fileStore) onTransition(proc int, from, to ode.Var, period int) {
	switch {
	case to == endemic.Stash:
		fs.holders[proc] = true
		fs.transfers++
	case from == endemic.Stash:
		delete(fs.holders, proc)
		fs.deletions++
	}
}

func main() {
	const (
		hosts   = 5000
		hours   = 48.0
		perHour = 10 // 6-minute protocol periods
	)
	params := endemic.Params{B: 2, Gamma: 0.1, Alpha: 0.02}
	analysis := endemic.Analyze(params.Beta(), params.Gamma, params.Alpha)
	fmt.Printf("design: b=%d γ=%v α=%v → expected replicas %.0f (equilibrium is a %s)\n",
		params.B, params.Gamma, params.Alpha,
		analysis.Equilibrium.Stash*hosts, analysis.Class)
	fmt.Printf("expected longevity at this replica count: %.3g years\n",
		endemic.ExpectedLongevityYears(analysis.Equilibrium.Stash*hosts, 6))

	protocol, err := endemic.NewFigure1Protocol(params)
	if err != nil {
		log.Fatal(err)
	}
	store := &fileStore{holders: make(map[int]bool)}
	seedReplicas := int(analysis.Equilibrium.Stash*hosts) + 1
	engine, err := sim.New(sim.Config{
		N:        hosts,
		Protocol: protocol,
		Initial: map[ode.Var]int{
			endemic.Receptive: hosts - seedReplicas,
			endemic.Stash:     seedReplicas,
			endemic.Averse:    0,
		},
		Seed:         7,
		OnTransition: store.onTransition,
	})
	if err != nil {
		log.Fatal(err)
	}
	for p := 0; p < seedReplicas; p++ {
		store.holders[p] = true
	}

	// Continuous churn, Overnet-calibrated.
	trace, err := churn.Synthesize(hosts, hours, 7, churn.Config{})
	if err != nil {
		log.Fatal(err)
	}
	replayer, err := churn.NewReplayer(trace, perHour)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nhour  alive  replicas  transfers/h  note")
	totalPeriods := int(hours * perHour)
	lastTransfers := 0
	for t := 0; t < totalPeriods; t++ {
		for _, ev := range replayer.Next(t) {
			if ev.Up {
				if engine.StateOf(ev.Host) == sim.Down {
					if err := engine.Revive(ev.Host, endemic.Receptive); err != nil {
						log.Fatal(err)
					}
				}
			} else {
				if store.holders[ev.Host] {
					delete(store.holders, ev.Host) // departing host loses the file
				}
				engine.Kill(ev.Host)
			}
		}
		note := ""
		if t == totalPeriods/2 {
			killed := engine.KillFraction(0.5)
			note = fmt.Sprintf("MASSIVE FAILURE: %d hosts crashed", killed)
		}
		engine.Step()
		if t%(6*perHour) == 0 || note != "" {
			fmt.Printf("%4.0f  %5d  %8d  %11d  %s\n",
				float64(t)/perHour, engine.Alive(), engine.Count(endemic.Stash),
				store.transfers-lastTransfers, note)
			lastTransfers = store.transfers
		}
		if engine.Count(endemic.Stash) == 0 {
			log.Fatalf("file lost at period %d!", t)
		}
	}
	fmt.Printf("\nfile survived %v hours: %d transfers, %d deletions, %d replicas at exit\n",
		hours, store.transfers, store.deletions, engine.Count(endemic.Stash))
	fmt.Println("no host held the file permanently — responsibility migrated continuously")
}
