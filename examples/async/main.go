// Async: the paper's system model, literally — every process is its own
// goroutine with its own drifting clock, exchanging real messages over a
// lossy, delaying in-memory network (internal/asyncnet). No rounds, no
// synchronization, no agreement: protocol periods start at arbitrary
// offsets, exactly as §1 and §3.1 describe.
//
// The run executes the endemic replication protocol and compares the
// final population mix against the closed-form equilibrium (2): the
// asynchronous runtime preserves the equations' behaviour, which is why
// the paper's round-based analysis carries over ("our analysis holds for
// the average period across the group").
//
// Run with:
//
//	go run ./examples/async
package main

import (
	"fmt"
	"log"
	"time"

	"odeproto/internal/asyncnet"
	"odeproto/internal/endemic"
	"odeproto/internal/ode"
)

func main() {
	const n = 400
	params := endemic.Params{B: 2, Gamma: 0.2, Alpha: 0.1}
	eq := endemic.StableEquilibrium(params.Beta(), params.Gamma, params.Alpha)
	fmt.Printf("endemic protocol, N = %d goroutines, b=%d γ=%v α=%v\n",
		n, params.B, params.Gamma, params.Alpha)
	fmt.Printf("analysis: equilibrium fractions x∞=%.3f y∞=%.3f z∞=%.3f\n",
		eq.Receptive, eq.Stash, eq.Averse)

	protocol, err := endemic.NewFigure1Protocol(params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrunning 250 asynchronous periods with ±20% clock drift,")
	fmt.Println("5% message loss, and random network delays...")
	start := time.Now()
	res, err := asyncnet.Run(asyncnet.Config{
		N:        n,
		Protocol: protocol,
		Initial: map[ode.Var]int{
			endemic.Receptive: n / 2,
			endemic.Stash:     n / 2,
			endemic.Averse:    0,
		},
		Seed:       2004,
		Periods:    250,
		BasePeriod: 2 * time.Millisecond,
		Drift:      0.2,
		DropProb:   0.05,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done in %v wall clock, %d messages sent\n",
		time.Since(start).Round(time.Millisecond), res.MessagesSent)

	fmt.Println("\nstate      final  expected(analysis)")
	for _, s := range []ode.Var{endemic.Receptive, endemic.Stash, endemic.Averse} {
		var want float64
		switch s {
		case endemic.Receptive:
			want = eq.Receptive * n
		case endemic.Stash:
			want = eq.Stash * n
		case endemic.Averse:
			want = eq.Averse * n
		}
		fmt.Printf("%-9s  %5d  %.1f\n", s, res.Counts[s], want)
	}
	fmt.Printf("\ntransfers: %d, deletions: %d — the file migrated continuously\n",
		res.Transitions[[2]ode.Var{endemic.Receptive, endemic.Stash}],
		res.Transitions[[2]ode.Var{endemic.Stash, endemic.Averse}])
	if res.Counts[endemic.Stash] == 0 {
		log.Fatal("all replicas lost!")
	}
	fmt.Println("replicas survived the fully asynchronous run")
}
