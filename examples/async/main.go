// Async: the paper's system model — processes with drifting clocks
// exchanging messages over a lossy, delaying network, protocol periods
// starting at arbitrary offsets, exactly as §1 and §3.1 describe
// (internal/asyncnet). No rounds, no synchronization, no agreement.
//
// The run executes the endemic replication protocol on both asyncnet
// substrates:
//
//   - virtual mode (the default): a virtual-time discrete-event scheduler
//     — the same asynchronous model, driven by event interleavings rather
//     than real elapsed time, so it runs at CPU speed and a fixed seed
//     reproduces the run bit-for-bit;
//   - wallclock mode: one goroutine per process against real timers, the
//     oracle that grounds the virtual scheduler in genuine asynchrony.
//
// Both preserve the equations' limiting behaviour — which is why the
// paper's round-based analysis carries over ("our analysis holds for the
// average period across the group").
//
// Run with:
//
//	go run ./examples/async
package main

import (
	"fmt"
	"log"
	"time"

	"odeproto/internal/asyncnet"
	"odeproto/internal/endemic"
	"odeproto/internal/ode"
)

func main() {
	params := endemic.Params{B: 2, Gamma: 0.2, Alpha: 0.1}
	eq := endemic.StableEquilibrium(params.Beta(), params.Gamma, params.Alpha)
	fmt.Printf("endemic protocol, b=%d γ=%v α=%v\n", params.B, params.Gamma, params.Alpha)
	fmt.Printf("analysis: equilibrium fractions x∞=%.3f y∞=%.3f z∞=%.3f\n",
		eq.Receptive, eq.Stash, eq.Averse)

	protocol, err := endemic.NewFigure1Protocol(params)
	if err != nil {
		log.Fatal(err)
	}

	// Virtual time: N = 2000 processes for 250 periods with ±20% clock
	// drift, 5% loss, and random delays — at CPU speed. A 2ms nominal
	// period would cost ≥ 0.5s of real time per run on the wallclock
	// substrate; the event scheduler replays the same model in a fraction
	// of that, deterministically.
	const n = 2000
	cfg := asyncnet.Config{
		N:        n,
		Protocol: protocol,
		Initial: map[ode.Var]int{
			endemic.Receptive: n / 2,
			endemic.Stash:     n / 2,
			endemic.Averse:    0,
		},
		Seed:       2004,
		Periods:    250,
		BasePeriod: 2 * time.Millisecond,
		Drift:      0.2,
		DropProb:   0.05,
	}
	fmt.Printf("\nrunning %d asynchronous periods over %d processes (virtual time)...\n", cfg.Periods, n)
	start := time.Now()
	res, err := asyncnet.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done in %v wall clock, %d messages sent\n",
		time.Since(start).Round(time.Millisecond), res.MessagesSent)

	fmt.Println("\nstate      final  expected(analysis)")
	for _, s := range []ode.Var{endemic.Receptive, endemic.Stash, endemic.Averse} {
		var want float64
		switch s {
		case endemic.Receptive:
			want = eq.Receptive * n
		case endemic.Stash:
			want = eq.Stash * n
		case endemic.Averse:
			want = eq.Averse * n
		}
		fmt.Printf("%-9s  %5d  %.1f\n", s, res.Counts[s], want)
	}
	if res.Counts[endemic.Stash] == 0 {
		log.Fatal("all replicas lost!")
	}

	// Determinism: the virtual run is a pure function of the config.
	again, err := asyncnet.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if again.MessagesSent != res.MessagesSent || again.Counts[endemic.Stash] != res.Counts[endemic.Stash] {
		log.Fatal("virtual run did not reproduce!")
	}
	fmt.Println("\nsame seed, second run: bit-identical (counts, transitions, messages)")

	// The wallclock oracle: real goroutines, real timers, same limiting
	// behaviour — just paid for in real elapsed time.
	wc := cfg
	wc.N = 400
	wc.Initial = map[ode.Var]int{endemic.Receptive: 200, endemic.Stash: 200, endemic.Averse: 0}
	wc.Periods = 100
	wc.Mode = asyncnet.ModeWallclock
	fmt.Printf("\nwallclock oracle: %d goroutines for %d real 2ms periods...\n", wc.N, wc.Periods)
	start = time.Now()
	wres, err := asyncnet.Run(wc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done in %v wall clock, %d messages sent, stash %d/%d (analysis %.1f)\n",
		time.Since(start).Round(time.Millisecond), wres.MessagesSent,
		wres.Counts[endemic.Stash], wc.N, eq.Stash*float64(wc.N))
	if wres.Counts[endemic.Stash] == 0 {
		log.Fatal("all replicas lost on the wallclock substrate!")
	}
	fmt.Println("replicas survived on both substrates")
}
