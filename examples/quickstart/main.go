// Quickstart: the shortest path through the library — write differential
// equations, translate them into a distributed protocol, and simulate it.
//
// The equations are the paper's motivating example (§1), epidemics:
//
//	ẋ = −xy    (susceptible fraction)
//	ẏ = +xy    (infected fraction)
//
// The framework compiles them into the canonical pull anti-entropy
// protocol, which infects all N processes in O(log N) rounds.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"odeproto/internal/core"
	"odeproto/internal/ode"
	"odeproto/internal/sim"
)

func main() {
	// 1. Write the equations in the DSL.
	system, err := ode.Parse("x' = -x*y\ny' = x*y", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("equations:")
	fmt.Println(system)

	// 2. Check where they sit in the paper's taxonomy (§2).
	fmt.Println("taxonomy:", system.Classify())

	// 3. Translate them into a distributed protocol (§3).
	protocol, err := core.Translate(system, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("protocol:")
	fmt.Print(protocol)

	// 4. Simulate 10,000 processes with one initial "infective".
	const n = 10000
	engine, err := sim.New(sim.Config{
		N:        n,
		Protocol: protocol,
		Initial:  map[ode.Var]int{"x": n - 1, "y": 1},
		Seed:     42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nround  susceptible  infected")
	for round := 0; engine.Count("x") > 0; round++ {
		fmt.Printf("%5d  %11d  %8d\n", round, engine.Count("x"), engine.Count("y"))
		engine.Step()
	}
	fmt.Printf("\neveryone infected after %d rounds (O(log N) = %.1f)\n",
		engine.Period(), 2*float64(14)) // log2(10000) ≈ 13.3
}
