// Majority: the paper's Case Study II (§4.2) as an application — a group
// of processes holding two conflicting versions of a file (as in a
// LOCKSS-style digital library) uses the LV protocol to agree,
// probabilistically, on the majority version, even when half the processes
// crash mid-vote.
//
// Run with:
//
//	go run ./examples/majority
package main

import (
	"fmt"
	"log"

	"odeproto/internal/lv"
)

func main() {
	const n = 50000
	// 55% of the processes hold version A (state x), 45% version B (y).
	votesA, votesB := n*55/100, n*45/100

	fmt.Printf("group of %d processes: %d propose A, %d propose B\n", n, votesA, votesB)
	fmt.Println("running the LV protocol (coin 3p per sampled contact, p = 0.01)...")

	run, err := lv.Simulate(lv.Config{
		N:        n,
		InitialX: votesA,
		InitialY: votesB,
		Periods:  2500,
		FailAt:   -1,
		Seed:     99,
	})
	if err != nil {
		log.Fatal(err)
	}
	report(run)

	fmt.Println("\nsame election, but 50% of the processes crash at period 100:")
	run, err = lv.Simulate(lv.Config{
		N:        n,
		InitialX: votesA,
		InitialY: votesB,
		Periods:  3500,
		FailAt:   100,
		FailFrac: 0.5,
		Seed:     99,
	})
	if err != nil {
		log.Fatal(err)
	}
	report(run)
	fmt.Println("\nthe protocol self-stabilizes: the surviving majority still wins (Figure 12)")
}

func report(run *lv.Run) {
	if run.ConvergedAt < 0 {
		fmt.Println("  not converged within the horizon")
		return
	}
	version := "A"
	if run.Winner == lv.ProposalY {
		version = "B"
	}
	fmt.Printf("  decision: version %s, unanimous at period %d", version, run.ConvergedAt)
	if run.Killed > 0 {
		fmt.Printf(" (despite %d crashes)", run.Killed)
	}
	fmt.Println()
}
