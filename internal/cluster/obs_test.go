package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"odeproto/internal/obs"
	"odeproto/internal/service"
)

// syncBuf is a goroutine-safe log sink: the prober and request handlers
// log concurrently with the test's reads.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// scrapeNode fetches and parses one node's /metrics over real HTTP.
func scrapeNode(t *testing.T, n *testNode) map[string]*obs.MetricFamily {
	t.Helper()
	code, body := getBody(t, n.base()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics on %s: %d %s", n.addr, code, body)
	}
	fams, err := obs.ParseExposition(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("node %s serves malformed exposition: %v\n%s", n.addr, err, body)
	}
	return fams
}

// metricValue reads one sample, tolerating families that have no series
// yet (unobserved histograms and vectors read as 0).
func metricValue(fams map[string]*obs.MetricFamily, name string, labels map[string]string) float64 {
	for _, fam := range fams {
		if v, ok := fam.Value(name, labels); ok {
			return v
		}
	}
	return 0
}

// TestClusterTraceAndMetrics is the acceptance test of the flight
// recorder's cross-node story: a job submitted through a non-owner is
// forwarded under one trace ID, that ID shows up in both nodes'
// structured logs and in GET /v1/jobs/{id}/trace with every lifecycle
// span, and scraping both nodes' /metrics shows the miss, the hit, and
// the forward as counter deltas with well-formed histograms.
func TestClusterTraceAndMetrics(t *testing.T) {
	nodes := startTestCluster(t, 2)

	// Pick a seed whose content address node 1 owns, so a POST through
	// node 0 must forward.
	seed := int64(0)
	for s := int64(1); s < 1000; s++ {
		if nodes[0].rt.ring.owner(specKey(t, nodes[0].svc, s)) == 1 {
			seed = s
			break
		}
	}
	if seed == 0 {
		t.Fatal("no seed routes to node 1")
	}

	before0 := scrapeNode(t, nodes[0])
	before1 := scrapeNode(t, nodes[1])

	// Miss: submitted through node 0, executed on node 1.
	code, body := postJSON(t, nodes[0].base()+"/v1/jobs", testSpec(seed))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var st service.JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if !obs.ValidTraceID(st.Trace) {
		t.Fatalf("forwarded submission carries no valid trace ID: %q", st.Trace)
	}
	pollDone(t, nodes[0].base(), st.ID, time.Minute)

	// Hit: the identical spec through node 0 again is a forwarded cache
	// hit on node 1 (under its own, fresh trace ID).
	code, body = postJSON(t, nodes[0].base()+"/v1/jobs", testSpec(seed))
	if code != http.StatusOK {
		t.Fatalf("duplicate submit: %d %s", code, body)
	}
	var stHit service.JobStatus
	if err := json.Unmarshal(body, &stHit); err != nil {
		t.Fatal(err)
	}

	// The trace endpoint is routable from the non-owner and reports the
	// full lifecycle under the submission's trace ID.
	code, body = getBody(t, nodes[0].base()+"/v1/jobs/"+st.ID+"/trace")
	if code != http.StatusOK {
		t.Fatalf("trace via non-owner: %d %s", code, body)
	}
	var tr service.TraceStatus
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Trace != st.Trace {
		t.Fatalf("trace endpoint reports ID %s, submission returned %s", tr.Trace, st.Trace)
	}
	if tr.Node != nodes[1].addr {
		t.Fatalf("trace recorded on node %q, want owner %s", tr.Node, nodes[1].addr)
	}
	wantStages := []string{obs.StageQueued, obs.StageCompiled, obs.StageSwept, obs.StagePersisted, obs.StageResponded}
	if len(tr.Spans) != len(wantStages) {
		t.Fatalf("trace spans %+v, want stages %v", tr.Spans, wantStages)
	}
	for i, sp := range tr.Spans {
		if sp.Stage != wantStages[i] {
			t.Fatalf("span %d is %q, want %q", i, sp.Stage, wantStages[i])
		}
	}

	// One trace ID, both logs: the forwarding node logged the routing
	// decision, the owner logged queue + completion, all under st.Trace.
	logs0, logs1 := nodes[0].logs.String(), nodes[1].logs.String()
	if !strings.Contains(logs0, st.Trace) || !strings.Contains(logs0, "forwarded request") {
		t.Fatalf("forwarding node log lacks the trace:\n%s", logs0)
	}
	if !strings.Contains(logs1, st.Trace) || !strings.Contains(logs1, "job finished") {
		t.Fatalf("owner node log lacks the trace completion line:\n%s", logs1)
	}

	// Counter deltas across the miss + hit: the owner saw both
	// submissions, ran exactly one sweep, and counted one miss and one
	// hit; the forwarder ran nothing and counted the proxying.
	after0 := scrapeNode(t, nodes[0])
	after1 := scrapeNode(t, nodes[1])
	delta := func(before, after map[string]*obs.MetricFamily, name string, labels map[string]string) float64 {
		return metricValue(after, name, labels) - metricValue(before, name, labels)
	}
	if d := delta(before1, after1, "odeproto_jobs_submitted_total", nil); d != 2 {
		t.Errorf("owner jobs_submitted delta = %g, want 2", d)
	}
	if d := delta(before1, after1, "odeproto_sweeps_executed_total", nil); d != 1 {
		t.Errorf("owner sweeps_executed delta = %g, want 1", d)
	}
	if d := delta(before1, after1, "odeproto_cache_misses_total", nil); d != 1 {
		t.Errorf("owner cache_misses delta = %g, want 1", d)
	}
	if d := delta(before1, after1, "odeproto_cache_hits_total", nil); d < 1 {
		t.Errorf("owner cache_hits delta = %g, want >= 1", d)
	}
	if d := delta(before0, after0, "odeproto_sweeps_executed_total", nil); d != 0 {
		t.Errorf("forwarder executed %g sweeps", d)
	}
	if d := delta(before0, after0, "odeproto_cluster_forwarded_total", nil); d < 2 {
		t.Errorf("forwarder cluster_forwarded delta = %g, want >= 2 (submit + hit)", d)
	}
	if v := metricValue(after0, "odeproto_cluster_peer_alive", map[string]string{"peer": nodes[1].addr}); v != 1 {
		t.Errorf("peer_alive{peer=%s} = %g on the forwarder, want 1", nodes[1].addr, v)
	}

	// The owner's latency histograms are well-formed (cumulative,
	// +Inf-terminated, consistent with _count) and saw the one real run.
	for _, h := range []string{"odeproto_queue_wait_seconds", "odeproto_sweep_latency_seconds"} {
		fam, ok := after1[h]
		if !ok {
			t.Fatalf("owner exposes no %s", h)
		}
		if _, err := obs.CheckHistogram(fam); err != nil {
			t.Errorf("%s: %v", h, err)
		}
	}
	if v := metricValue(after1, "odeproto_sweep_latency_seconds_count",
		map[string]string{"engine": "agent", "mode": ""}); v != 1 {
		t.Errorf("owner sweep_latency count = %g, want 1", v)
	}

	// The forwarder timed its proxied requests per peer, and a submit
	// forward left its trace ID as a bucket exemplar. Both submits land
	// in the same fast bucket, so the hit's trace may have overwritten
	// the miss's — either proves the exemplar path.
	fwdFam, ok := after0["odeproto_cluster_forward_latency_seconds"]
	if !ok {
		t.Fatal("forwarder exposes no odeproto_cluster_forward_latency_seconds")
	}
	if _, err := obs.CheckHistogram(fwdFam); err != nil {
		t.Fatalf("forward latency histogram: %v", err)
	}
	if v := metricValue(after0, "odeproto_cluster_forward_latency_seconds_count",
		map[string]string{"peer": nodes[1].addr}); v < 2 {
		t.Errorf("forward latency count{peer=%s} = %g, want >= 2", nodes[1].addr, v)
	}
	sawTrace := false
	for _, s := range fwdFam.Samples {
		if s.Exemplar == nil {
			continue
		}
		if id := s.Exemplar.Labels["trace_id"]; id == st.Trace || id == stHit.Trace {
			sawTrace = true
		}
	}
	if !sawTrace {
		t.Errorf("no forward latency bucket carries exemplar trace_id %s or %s", st.Trace, stHit.Trace)
	}
}
