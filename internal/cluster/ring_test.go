package cluster

import (
	"fmt"
	"strings"
	"testing"
)

func TestNormalizePeers(t *testing.T) {
	got, err := NormalizePeers([]string{" B:2 ", "a:1", "", "b:2", "c:3"})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a:1", "b:2", "c:3"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if _, err := NormalizePeers([]string{"a:1"}); err == nil {
		t.Fatal("single-peer list accepted")
	}
	if _, err := NormalizePeers([]string{"a:1", "no-port"}); err == nil {
		t.Fatal("peer without a port accepted")
	}
}

// TestRingDeterministic checks the property routing correctness rests on:
// every node, however its -peers flag was ordered, derives the same
// owner for every key.
func TestRingDeterministic(t *testing.T) {
	a, _ := NormalizePeers([]string{"h1:1", "h2:2", "h3:3"})
	b, _ := NormalizePeers([]string{"h3:3", "h1:1", "h2:2", "h2:2"})
	ra, rb := newRing(a, 0), newRing(b, 0)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		if ra.nodes[ra.owner(key)] != rb.nodes[rb.owner(key)] {
			t.Fatalf("key %q: owner %s vs %s", key, ra.nodes[ra.owner(key)], rb.nodes[rb.owner(key)])
		}
	}
	if fingerprint(a, defaultVNodes) != fingerprint(b, defaultVNodes) {
		t.Fatal("same membership, different fingerprints")
	}
	if fingerprint(a, defaultVNodes) == fingerprint(a[:2], defaultVNodes) {
		t.Fatal("different membership, same fingerprint")
	}
	if fingerprint(a, 16) == fingerprint(a, 64) {
		t.Fatal("different vnode count, same fingerprint")
	}
}

// TestRingBalance checks the virtual nodes spread the keyspace: with 64
// vnodes per node no node should own a wildly disproportionate share.
func TestRingBalance(t *testing.T) {
	nodes, _ := NormalizePeers([]string{"h1:1", "h2:2", "h3:3"})
	r := newRing(nodes, 0)
	counts := make([]int, len(nodes))
	const keys = 9000
	for i := 0; i < keys; i++ {
		counts[r.owner(fmt.Sprintf("key-%d", i))]++
	}
	for i, c := range counts {
		// Fair share is 3000; accept anything within ±60%. The point is
		// catching a broken ring (one node owning ~everything), not
		// enforcing a tight variance bound.
		if c < keys/3*40/100 || c > keys/3*160/100 {
			t.Fatalf("node %s owns %d of %d keys: %v", nodes[i], c, keys, counts)
		}
	}
}

// TestRingSuccessors checks the failover walk: starts at the owner,
// visits every node exactly once, and is stable for a fixed key.
func TestRingSuccessors(t *testing.T) {
	nodes, _ := NormalizePeers([]string{"h1:1", "h2:2", "h3:3", "h4:4"})
	r := newRing(nodes, 0)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%d", i)
		succ := r.successors(key)
		if len(succ) != len(nodes) {
			t.Fatalf("key %q: %d successors, want %d", key, len(succ), len(nodes))
		}
		if succ[0] != r.owner(key) {
			t.Fatalf("key %q: walk starts at %d, owner is %d", key, succ[0], r.owner(key))
		}
		seen := make(map[int]bool)
		for _, n := range succ {
			if seen[n] {
				t.Fatalf("key %q: node %d visited twice: %v", key, n, succ)
			}
			seen[n] = true
		}
	}
}

func TestJobIDNode(t *testing.T) {
	cases := []struct {
		id   string
		node int
		ok   bool
	}{
		{"n0-j000001", 0, true},
		{"n12-j000007", 12, true},
		{"j000001", 0, false}, // pre-cluster ID: no prefix
		{"n-j000001", 0, false},
		{"nx-j000001", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		node, ok := jobIDNode(c.id)
		if ok != c.ok || (ok && node != c.node) {
			t.Errorf("jobIDNode(%q) = %d,%v, want %d,%v", c.id, node, ok, c.node, c.ok)
		}
	}
	if !strings.HasPrefix(nodePrefix(3)+"j000001", "n3-") {
		t.Fatal("nodePrefix format changed")
	}
}
