// Package cluster turns a set of independent odeprotod instances into a
// single logical service: every node runs the same static peer list, and
// a consistent-hash ring over the job's content-address (the SHA-256
// cache key Submit files results under) assigns each key one owner. Any
// node accepts any request; requests for keys it does not own are
// proxied to the owner over pooled persistent connections, so the
// cluster-wide cache, single-flight dedup, and WAL for a given spec all
// live on exactly one node. When an owner is unreachable the request
// retries onto the next live ring successor — the sweep reruns there (a
// cache miss, not an error), and its result is byte-identical because
// sweep output is deterministic in the normalized spec.
//
// Routing is by key, so it needs no membership protocol, no handoff, and
// no proxy hop for owned keys; the price is that the peer list is fixed
// at startup and every node must agree on it (a forwarded request
// carries the sender's ring fingerprint, and a receiver whose ring
// differs rejects it with 502 rather than mis-route silently).
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// defaultVNodes is how many ring points each node projects. 64 keeps the
// keyspace split within a few percent of even for small clusters while
// the ring stays tiny (a 16-node ring is 1024 points).
const defaultVNodes = 64

// NormalizePeers canonicalizes a peer list: trimmed, lowercased,
// de-duplicated, sorted. Every node must derive the same normalized list
// (node indexes, job-ID prefixes, and the ring fingerprint all key off
// positions in it), which is why normalization lives here and not in
// flag parsing.
func NormalizePeers(peers []string) ([]string, error) {
	seen := make(map[string]bool, len(peers))
	out := make([]string, 0, len(peers))
	for _, p := range peers {
		p = strings.ToLower(strings.TrimSpace(p))
		if p == "" {
			continue
		}
		if !strings.Contains(p, ":") {
			return nil, fmt.Errorf("cluster: peer %q is not host:port", p)
		}
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	if len(out) < 2 {
		return nil, fmt.Errorf("cluster: need at least 2 peers (self included), got %d", len(out))
	}
	sort.Strings(out)
	return out, nil
}

// ring is a consistent-hash ring: each node contributes vnodes points,
// a key is owned by the first point clockwise from its hash.
type ring struct {
	nodes  []string // normalized peer list; point.node indexes into it
	points []ringPoint
}

type ringPoint struct {
	hash uint64
	node int
}

// hash64 is the ring's point/key hash: the first 8 bytes of SHA-256.
// Job keys are already SHA-256 hex, but hashing the hex again costs
// nothing measurable and lets vnode labels share the same map.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// newRing builds the ring over an already-normalized peer list.
func newRing(nodes []string, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	r := &ring{nodes: nodes, points: make([]ringPoint, 0, len(nodes)*vnodes)}
	for ni, n := range nodes {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(n + "#" + strconv.Itoa(v)), node: ni})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// owner returns the index of the node owning key.
func (r *ring) owner(key string) int {
	return r.points[r.firstPoint(key)].node
}

// successors returns every node index in ring order starting at key's
// owner, each node once. Retrying a failed forward walks this list, so
// the same key always fails over to the same substitute node — which is
// what keeps single-flight dedup effective even during an outage.
func (r *ring) successors(key string) []int {
	out := make([]int, 0, len(r.nodes))
	seen := make([]bool, len(r.nodes))
	start := r.firstPoint(key)
	for i := 0; i < len(r.points) && len(out) < len(r.nodes); i++ {
		n := r.points[(start+i)%len(r.points)].node
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

// firstPoint locates the first ring point at or clockwise of key's hash.
func (r *ring) firstPoint(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrapped past the highest point
	}
	return i
}

// fingerprint condenses the ring topology to a short comparable token.
// Forwarded requests carry it; a mismatch means the nodes were started
// with different -peers lists and must not route for each other.
func fingerprint(nodes []string, vnodes int) string {
	sum := sha256.Sum256([]byte(strconv.Itoa(vnodes) + "|" + strings.Join(nodes, ",")))
	return fmt.Sprintf("%x", sum[:8])
}
