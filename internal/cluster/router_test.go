package cluster

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"odeproto/internal/obs"
	"odeproto/internal/service"
)

// testNode is one in-process cluster member: a real TCP listener, a
// service instance, and the router in front of it, plus the node's obs
// registry and captured structured log (the trace/metrics tests read
// them back).
type testNode struct {
	addr string
	svc  *service.Server
	rt   *Router
	hs   *http.Server
	reg  *obs.Registry
	logs *syncBuf
}

func (n *testNode) base() string { return "http://" + n.addr }

// startTestCluster boots n odeprotod-shaped nodes on loopback ports, all
// sharing one peer list, and returns them indexed like the normalized
// list (ports ascend with the index only by accident — look addresses up
// via the returned nodes).
func startTestCluster(t *testing.T, n int) []*testNode {
	t.Helper()
	lnByAddr := make(map[string]net.Listener, n)
	peers := make([]string, n)
	for i := range peers {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lnByAddr[ln.Addr().String()] = ln
		peers[i] = ln.Addr().String()
	}
	// Reorder to the normalized (sorted) list so nodes[i] is ring node i:
	// the ring sorts its membership, and loopback ports don't allocate in
	// lexicographic order.
	peers, err := NormalizePeers(peers)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*testNode, n)
	for i, addr := range peers {
		ln := lnByAddr[addr]
		prefix, err := NodePrefix(peers, addr)
		if err != nil {
			t.Fatal(err)
		}
		reg := obs.NewRegistry()
		logs := &syncBuf{}
		logger := obs.NewLogger(logs, addr)
		svc := service.New(service.Config{
			Workers: 1, JobIDPrefix: prefix,
			Metrics: reg, Logger: logger, Node: addr,
		})
		rt, err := New(Config{
			Peers:         peers,
			Self:          peers[i],
			Service:       svc,
			ProbeInterval: 100 * time.Millisecond,
			ProbeTimeout:  500 * time.Millisecond,
			Metrics:       reg,
			Logger:        logger,
		})
		if err != nil {
			t.Fatal(err)
		}
		hs := &http.Server{Handler: rt}
		go hs.Serve(ln)
		node := &testNode{addr: peers[i], svc: svc, rt: rt, hs: hs, reg: reg, logs: logs}
		nodes[i] = node
		t.Cleanup(func() {
			hs.Close()
			rt.Close()
			svc.Close()
		})
	}
	return nodes
}

// testSpec is a sweep small enough to finish in well under a second.
func testSpec(seed int64) map[string]any {
	return map[string]any{
		"source":  "x' = -x*y\ny' = x*y\n",
		"n":       300,
		"initial": map[string]int{"x": 290, "y": 10},
		"periods": 20,
		"seed":    seed,
	}
}

// specKey computes the content address the cluster routes testSpec(seed)
// by, through the same RouteKey path the router uses.
func specKey(t *testing.T, svc *service.Server, seed int64) string {
	t.Helper()
	spec := service.JobSpec{
		Source:  "x' = -x*y\ny' = x*y\n",
		N:       300,
		Initial: map[string]int{"x": 290, "y": 10},
		Periods: 20,
		Seed:    seed,
	}
	key, err := svc.RouteKey(spec)
	if err != nil {
		t.Fatal(err)
	}
	return key
}

func postJSON(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func pollDone(t *testing.T, base, id string, timeout time.Duration) service.JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var st service.JobStatus
		code, body := getBody(t, base+"/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("GET job %s: %d %s", id, code, body)
		}
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("bad job body %q: %v", body, err)
		}
		switch st.Status {
		case service.StatusDone:
			return st
		case service.StatusFailed, service.StatusCancelled:
			t.Fatalf("job %s terminated %s: %s", id, st.Status, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", id, st.Status, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClusterSingleExecution is the tentpole acceptance path: the same
// spec POSTed through every node of a 3-node ring lands on one owner,
// runs exactly one sweep cluster-wide, and is readable (job status and
// result blob) through any node.
func TestClusterSingleExecution(t *testing.T) {
	nodes := startTestCluster(t, 3)
	key := specKey(t, nodes[0].svc, 1)
	owner := nodes[0].rt.ring.owner(key)

	var ids []string
	for i, n := range nodes {
		code, body := postJSON(t, n.base()+"/v1/jobs", testSpec(1))
		if code != http.StatusAccepted && code != http.StatusOK {
			t.Fatalf("submit via node %d: %d %s", i, code, body)
		}
		var st service.JobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.CacheKey != key {
			t.Fatalf("node %d filed the job under %s, want %s", i, st.CacheKey, key)
		}
		// Routed submission: the job must have been created on the key's
		// owner, whichever node took the POST.
		if want := nodePrefix(owner); !strings.HasPrefix(st.ID, want) {
			t.Fatalf("job %s not owned by ring owner %s (prefix %s)", st.ID, nodes[owner].addr, want)
		}
		ids = append(ids, st.ID)
		// Wait through a different node each time, so the ID-routed proxy
		// path (GET /v1/jobs/{id} on a non-owner) is exercised too.
		pollDone(t, nodes[(i+1)%len(nodes)].base(), st.ID, time.Minute)
	}

	// One sweep cluster-wide: POST 2 and 3 were cache hits or coalesced
	// onto the first job at the owner, never re-runs elsewhere.
	var sweeps int64
	for _, n := range nodes {
		sweeps += n.svc.SweepsExecuted()
	}
	if sweeps != 1 {
		t.Fatalf("cluster executed %d sweeps for one spec, want 1", sweeps)
	}
	if nodes[owner].svc.SweepsExecuted() != 1 {
		t.Fatal("the sweep did not run on the ring owner")
	}

	// The result blob is readable through every node, byte-identically.
	var first []byte
	for i, n := range nodes {
		code, body := getBody(t, n.base()+"/v1/results/"+key)
		if code != http.StatusOK {
			t.Fatalf("GET result via node %d: %d %s", i, code, body)
		}
		if first == nil {
			first = body
		} else if !bytes.Equal(first, body) {
			t.Fatalf("result bytes differ between nodes")
		}
	}

	// Stats carry the cluster section; a non-owner forwarded something.
	var stats struct {
		Cluster Stats `json:"cluster"`
	}
	code, body := getBody(t, nodes[(owner+1)%3].base()+"/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Cluster.Forwarded < 1 {
		t.Fatalf("non-owner reports no forwards: %+v", stats.Cluster)
	}
	if len(stats.Cluster.Peers) != 3 {
		t.Fatalf("stats peers: %+v", stats.Cluster.Peers)
	}
}

// TestClusterOwnerDownFailover is the failure-path acceptance test: with
// the key's owner dead, a POST through a surviving node completes on the
// next live ring successor and the result matches a standalone run of
// the same spec byte for byte.
func TestClusterOwnerDownFailover(t *testing.T) {
	nodes := startTestCluster(t, 3)
	key := specKey(t, nodes[0].svc, 42)
	owner := nodes[0].rt.ring.owner(key)

	// Kill the owner: its listener and connections drop, dials get
	// connection-refused. Its router/service stay allocated (cleanup
	// closes them) — the cluster sees only the dead TCP endpoint.
	nodes[owner].hs.Close()

	submitter := (owner + 1) % 3
	code, body := postJSON(t, nodes[submitter].base()+"/v1/jobs", testSpec(42))
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit with dead owner: %d %s", code, body)
	}
	var st service.JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if strings.HasPrefix(st.ID, nodePrefix(owner)) {
		t.Fatalf("job %s landed on the dead owner", st.ID)
	}
	done := pollDone(t, nodes[submitter].base(), st.ID, time.Minute)

	// The substitute node ran the sweep; somebody counted a retry.
	var sweeps, retried int64
	for i, n := range nodes {
		if i != owner {
			sweeps += n.svc.SweepsExecuted()
			retried += n.rt.Stats().Retried
		}
	}
	if sweeps != 1 {
		t.Fatalf("surviving nodes executed %d sweeps, want 1", sweeps)
	}
	if retried < 1 {
		t.Fatal("no node counted a retry while the owner was down")
	}

	// Byte-identical to a standalone daemon running the same spec: the
	// sweep is deterministic in the normalized spec, so failover changes
	// where it runs, never what it computes.
	standalone := service.New(service.Config{Workers: 1})
	defer standalone.Close()
	job, err := standalone.Submit(service.JobSpec{
		Source:  "x' = -x*y\ny' = x*y\n",
		N:       300,
		Initial: map[string]int{"x": 290, "y": 10},
		Periods: 20,
		Seed:    42,
	})
	if err != nil {
		t.Fatal(err)
	}
	var ref service.JobStatus
	for deadline := time.Now().Add(time.Minute); ; time.Sleep(10 * time.Millisecond) {
		ref = job.Snapshot(true)
		if ref.Status == service.StatusDone {
			break
		}
		if ref.Status == service.StatusFailed || time.Now().After(deadline) {
			t.Fatalf("standalone run: %+v", ref)
		}
	}
	clusterJSON, err := json.Marshal(done.Result)
	if err != nil {
		t.Fatal(err)
	}
	refJSON, err := json.Marshal(ref.Result)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(clusterJSON, refJSON) {
		t.Fatalf("failover result diverges from the standalone run:\ncluster: %.200s\nref:     %.200s", clusterJSON, refJSON)
	}

	// The result stays reachable by key through the survivors even
	// though its ring owner is gone (the successor walk finds it).
	code, body = getBody(t, nodes[(owner+2)%3].base()+"/v1/results/"+key)
	if code != http.StatusOK {
		t.Fatalf("GET result with dead owner: %d %s", code, body)
	}
}

// TestClusterForwardedConditionalGet pins the proxy's pass-through of the
// result data plane's HTTP semantics: a result GET through a non-owner
// carries the owner's strong ETag, If-None-Match answers 304 across the
// forwarded hop without a body, and Accept-Encoding: gzip comes back
// compressed — decompressing to the exact bytes the owner serves.
func TestClusterForwardedConditionalGet(t *testing.T) {
	nodes := startTestCluster(t, 3)
	key := specKey(t, nodes[0].svc, 7)
	owner := nodes[0].rt.ring.owner(key)
	forwarder := nodes[(owner+1)%3]

	code, body := postJSON(t, forwarder.base()+"/v1/jobs", testSpec(7))
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit: %d %s", code, body)
	}
	var st service.JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	pollDone(t, forwarder.base(), st.ID, time.Minute)

	rawGet := func(hdr map[string]string) (*http.Response, []byte) {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, forwarder.base()+"/v1/results/"+key, nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Accept-Encoding", "identity")
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		out, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, out
	}

	wantETag := `"` + key + `"`
	resp, canonical := rawGet(nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded result GET: %d %s", resp.StatusCode, canonical)
	}
	if got := resp.Header.Get("ETag"); got != wantETag {
		t.Fatalf("forwarded ETag = %q, want %q", got, wantETag)
	}
	if got := resp.Header.Get("Content-Length"); got != strconv.Itoa(len(canonical)) {
		t.Fatalf("forwarded Content-Length = %q for %d body bytes", got, len(canonical))
	}

	// Conditional GET through the forwarding hop: the validator travels
	// with the proxied request, and the 304 travels back bodiless.
	resp, body = rawGet(map[string]string{"If-None-Match": wantETag})
	if resp.StatusCode != http.StatusNotModified || len(body) != 0 {
		t.Fatalf("forwarded conditional GET: %d with %d bytes, want bodiless 304", resp.StatusCode, len(body))
	}

	// Gzip negotiation survives the hop: the proxy neither strips the
	// request header nor decompresses the response.
	resp, gz := rawGet(map[string]string{"Accept-Encoding": "gzip"})
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Encoding") != "gzip" {
		t.Fatalf("forwarded gzip GET: %d, Content-Encoding %q", resp.StatusCode, resp.Header.Get("Content-Encoding"))
	}
	zr, err := gzip.NewReader(bytes.NewReader(gz))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, canonical) {
		t.Fatal("forwarded gzip body does not decompress to the owner's canonical bytes")
	}
}

// TestClusterRingMismatch rejects the misconfiguration the static-ring
// design cannot tolerate: two nodes started with different -peers lists.
// The forward must come back as a diagnosable 502, not hang, mis-route,
// or silently run the job on the wrong node.
func TestClusterRingMismatch(t *testing.T) {
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrA, addrB := lnA.Addr().String(), lnB.Addr().String()

	start := func(ln net.Listener, self string, peers []string) *testNode {
		t.Helper()
		svc := service.New(service.Config{Workers: 1})
		rt, err := New(Config{Peers: peers, Self: self, Service: svc, ProbeInterval: time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		hs := &http.Server{Handler: rt}
		go hs.Serve(ln)
		n := &testNode{addr: self, svc: svc, rt: rt, hs: hs}
		t.Cleanup(func() { hs.Close(); rt.Close(); svc.Close() })
		return n
	}
	// A believes the cluster is {A, B}; B was (mis)started believing it
	// is {A, B, ghost}. Their rings disagree on almost every key.
	nodeA := start(lnA, addrA, []string{addrA, addrB})
	nodeB := start(lnB, addrB, []string{addrA, addrB, "127.0.0.1:9"})

	// Find a spec A routes to B, then submit it through A.
	bIdx := -1
	for i, n := range nodeA.rt.ring.nodes {
		if n == addrB {
			bIdx = i
		}
	}
	if bIdx < 0 {
		t.Fatal("B not in A's ring")
	}
	seed := int64(0)
	for s := int64(1); s < 1000; s++ {
		if nodeA.rt.ring.owner(specKey(t, nodeA.svc, s)) == bIdx {
			seed = s
			break
		}
	}
	if seed == 0 {
		t.Fatal("no seed routes to B")
	}

	resp, err := http.Post(nodeA.base()+"/v1/jobs", "application/json",
		strings.NewReader(fmt.Sprintf(
			`{"source": "x' = -x*y\ny' = x*y\n", "n": 300, "initial": {"x": 290, "y": 10}, "periods": 20, "seed": %d}`, seed)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("mismatched forward: %d %s, want 502", resp.StatusCode, body)
	}
	if resp.Header.Get(headerRingMismatch) == "" {
		t.Fatalf("502 without the ring-mismatch marker: %s", body)
	}
	if !strings.Contains(string(body), "ring mismatch") || !strings.Contains(string(body), "-peers") {
		t.Fatalf("502 body does not diagnose the misconfiguration: %s", body)
	}
	if nodeB.rt.Stats().RingMismatches != 1 {
		t.Fatalf("B counted %d ring mismatches, want 1", nodeB.rt.Stats().RingMismatches)
	}
	// Nobody ran the job.
	if nodeA.svc.SweepsExecuted()+nodeB.svc.SweepsExecuted() != 0 {
		t.Fatal("a sweep ran despite the ring mismatch")
	}
}
