package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"odeproto/internal/obs"
	"odeproto/internal/service"
)

// Forwarded requests carry the sender's ring fingerprint. Its presence
// means "already routed, serve locally" (one hop maximum — a proxy loop
// is structurally impossible); its value lets the receiver detect that
// the two nodes were started with different -peers lists.
const headerForwarded = "X-Odeproto-Ring"

// headerRingMismatch marks a 502 as a ring-disagreement rejection so the
// forwarding node passes it through verbatim instead of retrying it onto
// a successor: a config error should surface, not be papered over.
const headerRingMismatch = "X-Odeproto-Ring-Mismatch"

// maxSpecBytes bounds how much of a POST /v1/jobs body the router reads
// to compute the routing key. Larger bodies than any valid spec (the
// limits cap ODE source length and numeric ranges far below this) are
// served locally and rejected there.
const maxSpecBytes = 8 << 20

// Config wires a Router in front of a local service instance.
type Config struct {
	// Peers is the full static cluster membership, self included, as
	// host:port. Every node must be started with the same list.
	Peers []string
	// Self is this node's entry in Peers.
	Self string
	// Service is the local instance requests resolve to when this node
	// is (or substitutes for) the key's owner.
	Service *service.Server
	// VNodes is the ring points per node (default 64).
	VNodes int
	// ProbeInterval is the health-check period (default 1s);
	// ProbeTimeout bounds one probe (default 750ms).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// DialTimeout bounds connection establishment to a peer (default
	// 2s). Established connections have no overall deadline: job streams
	// are long-lived by design.
	DialTimeout time.Duration
	// Metrics receives the router's counters and the per-peer liveness
	// gauge (the peer label set is the boot-fixed peer list, so its
	// cardinality is bounded). nil gets a private registry.
	Metrics *obs.Registry
	// Logger receives routing decisions (forwards with their trace ID,
	// peer up/down transitions). nil discards.
	Logger *slog.Logger
}

// clusterMetrics is every counter the router maintains; the /v1/stats
// cluster section reads these same values back.
type clusterMetrics struct {
	ownerLocal     *obs.Counter
	forwarded      *obs.Counter
	retried        *obs.Counter
	ringMismatches *obs.Counter
	probeFailures  *obs.Counter
	peerAlive      *obs.GaugeVec
	forwardLatency *obs.HistogramVec
}

func newClusterMetrics(r *obs.Registry) *clusterMetrics {
	return &clusterMetrics{
		ownerLocal: r.Counter("odeproto_cluster_owner_local_total",
			"Key-routed requests this node owned and served itself."),
		forwarded: r.Counter("odeproto_cluster_forwarded_total",
			"Requests proxied to another node."),
		retried: r.Counter("odeproto_cluster_retried_total",
			"Requests that fell through to a ring successor because a preferred node was down."),
		ringMismatches: r.Counter("odeproto_cluster_ring_mismatches_total",
			"Forwards rejected because the peer was started with a different -peers list."),
		probeFailures: r.Counter("odeproto_cluster_probe_failures_total",
			"Failed health probes of remote peers."),
		peerAlive: r.GaugeVec("odeproto_cluster_peer_alive",
			"Peer liveness as seen by this node (1 = alive; the static peer list bounds the label set).",
			"peer"),
		forwardLatency: r.HistogramVec("odeproto_cluster_forward_latency_seconds",
			"Round-trip time of requests proxied to a peer, including its handling. Buckets carry the forwarded trace ID as an exemplar.",
			obs.DefBuckets, "peer"),
	}
}

// Router is the cluster front-end an odeprotod node serves instead of
// the bare service mux. It owns the ring, the per-peer health state, the
// pooled forwarding client, and the background prober.
type Router struct {
	ring        *ring
	self        int
	selfAddr    string
	fp          string
	vnodes      int
	local       http.Handler
	svc         *service.Server
	client      *http.Client // forwards: pooled, no overall deadline
	probeClient *http.Client // probes: short per-request timeout
	peers       []*peerState // indexed like ring.nodes

	probeInterval time.Duration
	probeWG       sync.WaitGroup
	stop          chan struct{}
	closeOnce     sync.Once

	// met holds the routing counters (owner-local, forwarded, retried,
	// ring-mismatch, probe-failure) and the per-peer liveness gauge in
	// the obs registry; Stats() reads the same values back.
	met *clusterMetrics
	log *slog.Logger
}

// New validates the membership, builds the ring, and starts the health
// prober. Callers must Close the router to stop the prober.
func New(cfg Config) (*Router, error) {
	nodes, err := NormalizePeers(cfg.Peers)
	if err != nil {
		return nil, err
	}
	self := -1
	selfNorm := strings.ToLower(strings.TrimSpace(cfg.Self))
	for i, n := range nodes {
		if n == selfNorm {
			self = i
			break
		}
	}
	if self < 0 {
		return nil, fmt.Errorf("cluster: self %q is not in the peer list %v", cfg.Self, nodes)
	}
	if cfg.Service == nil {
		return nil, fmt.Errorf("cluster: no local service configured")
	}
	vnodes := cfg.VNodes
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	probeInterval := cfg.ProbeInterval
	if probeInterval <= 0 {
		probeInterval = defaultProbeInterval
	}
	probeTimeout := cfg.ProbeTimeout
	if probeTimeout <= 0 {
		probeTimeout = defaultProbeTimeout
	}
	dialTimeout := cfg.DialTimeout
	if dialTimeout <= 0 {
		dialTimeout = 2 * time.Second
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	logger := cfg.Logger
	if logger == nil {
		logger = obs.NopLogger()
	}
	transport := &http.Transport{
		DialContext:         (&net.Dialer{Timeout: dialTimeout}).DialContext,
		MaxIdleConns:        64,
		MaxIdleConnsPerHost: 16,
		IdleConnTimeout:     90 * time.Second,
		// The router is a proxy, not a client: the transport must neither
		// inject its own Accept-Encoding: gzip nor transparently decompress
		// (which would strip Content-Encoding/Length and re-buffer bodies).
		// forward() passes the client's own Accept-Encoding through, and
		// relay copies the owner's response — compressed or not — verbatim.
		DisableCompression: true,
	}
	rt := &Router{
		ring:          newRing(nodes, vnodes),
		self:          self,
		selfAddr:      nodes[self],
		fp:            fingerprint(nodes, vnodes),
		vnodes:        vnodes,
		local:         cfg.Service.Handler(),
		svc:           cfg.Service,
		client:        &http.Client{Transport: transport},
		probeClient:   &http.Client{Transport: transport, Timeout: probeTimeout},
		peers:         make([]*peerState, len(nodes)),
		probeInterval: probeInterval,
		stop:          make(chan struct{}),
		met:           newClusterMetrics(reg),
		log:           logger,
	}
	for i, n := range nodes {
		rt.peers[i] = &peerState{addr: n, alive: true}
		rt.met.peerAlive.With(n).Set(1) // presumed alive until a probe says otherwise
	}
	rt.probeWG.Add(1)
	go rt.probeLoop()
	return rt, nil
}

// Close stops the health prober and drops pooled connections. The local
// service is not touched; its lifetime belongs to the caller.
func (rt *Router) Close() {
	rt.closeOnce.Do(func() {
		close(rt.stop)
		rt.probeWG.Wait()
		if t, ok := rt.client.Transport.(*http.Transport); ok {
			t.CloseIdleConnections()
		}
	})
}

// JobIDPrefix returns the prefix the local service must issue job IDs
// under ("n<ring index>-") so any node can route an ID back to the node
// holding the job. Derive it with NodePrefix before building the
// service, from the same peer list.
func (rt *Router) JobIDPrefix() string { return nodePrefix(rt.self) }

// NodePrefix computes the job-ID prefix for self within peers — the
// service needs it at construction time, before the Router exists.
func NodePrefix(peers []string, self string) (string, error) {
	nodes, err := NormalizePeers(peers)
	if err != nil {
		return "", err
	}
	selfNorm := strings.ToLower(strings.TrimSpace(self))
	for i, n := range nodes {
		if n == selfNorm {
			return nodePrefix(i), nil
		}
	}
	return "", fmt.Errorf("cluster: self %q is not in the peer list %v", self, nodes)
}

func nodePrefix(idx int) string { return fmt.Sprintf("n%d-", idx) }

// jobIDNode parses the node index out of a prefixed job ID
// ("n2-j000017" → 2). IDs without a parseable prefix route locally —
// they may predate clustering.
func jobIDNode(id string) (int, bool) {
	rest, ok := strings.CutPrefix(id, "n")
	if !ok {
		return 0, false
	}
	dash := strings.IndexByte(rest, '-')
	if dash <= 0 {
		return 0, false
	}
	n := 0
	for _, c := range rest[:dash] {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

// ServeHTTP routes one request: forwarded requests are served locally
// after a fingerprint check, job submissions and result fetches route by
// content address, job-ID endpoints route by the ID's node prefix, stats
// get the cluster section attached, and everything else (compile, list,
// healthz) is local.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if fp := r.Header.Get(headerForwarded); fp != "" {
		if fp != rt.fp {
			rt.met.ringMismatches.Inc()
			rt.log.Warn("rejected forward from mismatched ring", "peer_ring", fp, "ring", rt.fp)
			w.Header().Set(headerRingMismatch, "1")
			writeJSON(w, http.StatusBadGateway, map[string]string{
				"error": fmt.Sprintf(
					"cluster ring mismatch: forwarding peer runs ring %s, this node (%s) runs ring %s over peers %v — every node must be started with an identical -peers list",
					fp, rt.selfAddr, rt.fp, rt.ring.nodes),
			})
			return
		}
		rt.local.ServeHTTP(w, r)
		return
	}

	path := r.URL.Path
	switch {
	case r.Method == http.MethodPost && path == "/v1/jobs":
		rt.routeSubmit(w, r)
	case r.Method == http.MethodGet && strings.HasPrefix(path, "/v1/results/"):
		rt.routeResult(w, r, strings.TrimPrefix(path, "/v1/results/"))
	case strings.HasPrefix(path, "/v1/jobs/"):
		rt.routeJob(w, r, strings.TrimPrefix(path, "/v1/jobs/"))
	case r.Method == http.MethodGet && path == "/v1/stats":
		rt.handleStats(w)
	default:
		rt.local.ServeHTTP(w, r)
	}
}

// routeSubmit reads the spec, computes its content address, and hands
// the request to the key's owner — locally when this node owns the key,
// otherwise proxied, falling through to ring successors while the
// preferred nodes are down. Bodies that fail to decode or validate are
// served locally so the client gets the service's own 400.
func (rt *Router) routeSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "reading request body: " + err.Error()})
		return
	}
	if len(body) > maxSpecBytes {
		writeJSON(w, http.StatusRequestEntityTooLarge, map[string]string{
			"error": fmt.Sprintf("request body exceeds %d bytes", maxSpecBytes)})
		return
	}
	// Mint the trace ID at the first node the client touched: however
	// many hops the submit takes, every involved node logs the same ID.
	if !obs.ValidTraceID(r.Header.Get(obs.TraceHeader)) {
		r.Header.Set(obs.TraceHeader, obs.NewTraceID())
	}
	var spec service.JobSpec
	key := ""
	if json.Unmarshal(body, &spec) == nil {
		if k, err := rt.svc.RouteKey(spec); err == nil {
			key = k
		}
	}
	if key == "" {
		// Not routable: let the local service produce the 400 (or, for a
		// spec our lenient decode missed but the strict one accepts,
		// serve it here — this node then owns the job).
		rt.serveLocal(w, r, body)
		return
	}
	rt.routeByKey(w, r, key, body, false)
}

// routeResult serves GET /v1/results/{key}. The key's owner is asked
// first; on a 404 the live successors are tried too, because a result
// computed during the owner's downtime was persisted by whichever
// successor substituted.
func (rt *Router) routeResult(w http.ResponseWriter, r *http.Request, key string) {
	rt.routeByKey(w, r, key, nil, true)
}

// routeByKey walks key's ring order — owner first, then successors —
// skipping peers marked down, and resolves the request at the first node
// that answers. A transport failure marks the peer down and moves on; a
// 404 moves on only in retryOn404 mode (result fetches). When every peer
// is marked down the walk runs once more ignoring the marks, so health
// staleness can delay a request but never fail one the cluster could
// serve.
func (rt *Router) routeByKey(w http.ResponseWriter, r *http.Request, key string, body []byte, retryOn404 bool) {
	order := rt.ring.successors(key)
	candidates := make([]int, 0, len(order))
	for _, n := range order {
		if n == rt.self || rt.peers[n].isAlive() {
			candidates = append(candidates, n)
		}
	}
	if len(candidates) == 0 {
		candidates = order // all marked down: try them anyway
	}

	var last404 *http.Response
	defer func() {
		if last404 != nil {
			last404.Body.Close()
		}
	}()
	for i, n := range candidates {
		if n != order[0] {
			// Resolving anywhere but the key's true owner is a retry,
			// whether the owner failed a forward or was already marked down.
			rt.met.retried.Inc()
		}
		if n == rt.self {
			if n == order[0] {
				rt.met.ownerLocal.Inc()
			}
			if retryOn404 && i < len(candidates)-1 && !rt.svc.HasResult(key) {
				// A cheap presence probe (LRU map lookup, else a blob open)
				// decides the fall-through — the response itself streams
				// straight to the client, never into a buffering recorder.
				continue
			}
			rt.serveLocal(w, r, body)
			return
		}
		resp, err := rt.forward(r, rt.peers[n].addr, body)
		if err != nil {
			rt.markPeerDown(n, err)
			continue
		}
		rt.met.forwarded.Inc()
		rt.log.Info("forwarded request", "target", rt.peers[n].addr, "path", r.URL.Path,
			"key", key, "trace", r.Header.Get(obs.TraceHeader), "retry", n != order[0])
		if retryOn404 && resp.StatusCode == http.StatusNotFound && i < len(candidates)-1 {
			if last404 != nil {
				last404.Body.Close()
			}
			last404 = resp // keep one 404 to relay if everyone misses
			continue
		}
		relay(w, resp)
		return
	}
	if last404 != nil {
		relay(w, last404)
		last404 = nil
		return
	}
	writeJSON(w, http.StatusBadGateway, map[string]string{
		"error": fmt.Sprintf("no live node for key %s: tried %s", key, rt.addrList(candidates)),
	})
}

// routeJob resolves /v1/jobs/{id}... endpoints (status, cancel, stream,
// figure) by the ID's node prefix. Job state lives only on the node that
// accepted the job, so there is no successor to retry: an unreachable
// home node is a diagnosable 502.
func (rt *Router) routeJob(w http.ResponseWriter, r *http.Request, idPath string) {
	id, _, _ := strings.Cut(idPath, "/")
	home, ok := jobIDNode(id)
	if !ok || home == rt.self || home >= len(rt.peers) {
		rt.local.ServeHTTP(w, r)
		return
	}
	resp, err := rt.forward(r, rt.peers[home].addr, nil)
	if err != nil {
		rt.markPeerDown(home, err)
		writeJSON(w, http.StatusBadGateway, map[string]string{
			"error": fmt.Sprintf("job %s lives on %s, which is unreachable: %v", id, rt.peers[home].addr, err),
		})
		return
	}
	rt.met.forwarded.Inc()
	rt.log.Info("forwarded request", "target", rt.peers[home].addr, "path", r.URL.Path, "job", id)
	relay(w, resp)
}

// serveLocal hands the request to the local service mux, restoring the
// consumed body when the submit path read it for routing.
func (rt *Router) serveLocal(w http.ResponseWriter, r *http.Request, body []byte) {
	if body != nil {
		r2 := r.Clone(r.Context())
		r2.Body = io.NopCloser(bytes.NewReader(body))
		r2.ContentLength = int64(len(body))
		r = r2
	}
	rt.local.ServeHTTP(w, r)
}

// forward replays the request against addr and returns the peer's
// response for the caller to relay or retry. The ring fingerprint header
// makes the receiver serve it locally (or reject a mismatched ring).
func (rt *Router) forward(r *http.Request, addr string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, "http://"+addr+r.URL.RequestURI(), rd)
	if err != nil {
		return nil, err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	if tid := r.Header.Get(obs.TraceHeader); tid != "" {
		req.Header.Set(obs.TraceHeader, tid)
	}
	// Conditional-GET and content-negotiation headers pass through so the
	// owner can answer 304s and serve its cached gzip variant; relay then
	// copies ETag/Content-Encoding back verbatim (the transport never
	// decompresses — DisableCompression).
	if inm := r.Header.Get("If-None-Match"); inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	if ae := r.Header.Get("Accept-Encoding"); ae != "" {
		req.Header.Set("Accept-Encoding", ae)
	}
	req.Header.Set(headerForwarded, rt.fp)
	start := time.Now()
	resp, err := rt.client.Do(req)
	if err == nil {
		// ObserveTraced drops the exemplar when the request carried no
		// trace ID (status polls), keeping the latency sample either way.
		rt.met.forwardLatency.With(addr).ObserveTraced(
			time.Since(start).Seconds(), req.Header.Get(obs.TraceHeader))
	}
	return resp, err
}

// relay streams a peer's response to the client, flushing after every
// read so proxied NDJSON job streams stay live row-by-row.
func relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

func (rt *Router) addrList(nodes []int) string {
	addrs := make([]string, len(nodes))
	for i, n := range nodes {
		addrs[i] = rt.peers[n].addr
	}
	return strings.Join(addrs, ", ")
}

// Stats is the cluster section attached to /v1/stats.
type Stats struct {
	Self   string       `json:"self"`
	Ring   string       `json:"ring"` // fingerprint; must match on every node
	VNodes int          `json:"vnodes"`
	Peers  []PeerStatus `json:"peers"`
	// OwnerLocal counts key-routed requests this node owned and served
	// itself; Forwarded counts requests proxied to another node; Retried
	// counts attempts that fell through to a ring successor because a
	// preferred node was down or unreachable.
	OwnerLocal     int64 `json:"owner_local"`
	Forwarded      int64 `json:"forwarded"`
	Retried        int64 `json:"retried"`
	RingMismatches int64 `json:"ring_mismatches"`
	ProbeFailures  int64 `json:"probe_failures"`
}

// Stats snapshots the router counters and peer health. The counters are
// read back from the obs registry — the same values /metrics renders.
func (rt *Router) Stats() Stats {
	st := Stats{
		Self:           rt.selfAddr,
		Ring:           rt.fp,
		VNodes:         rt.vnodes,
		Peers:          make([]PeerStatus, len(rt.peers)),
		OwnerLocal:     rt.met.ownerLocal.Value(),
		Forwarded:      rt.met.forwarded.Value(),
		Retried:        rt.met.retried.Value(),
		RingMismatches: rt.met.ringMismatches.Value(),
		ProbeFailures:  rt.met.probeFailures.Value(),
	}
	for i, p := range rt.peers {
		p.mu.Lock()
		st.Peers[i] = PeerStatus{Addr: p.addr, Self: i == rt.self, Alive: p.alive, LastError: p.lastErr}
		p.mu.Unlock()
	}
	return st
}

// handleStats wraps the local service stats with the cluster section.
func (rt *Router) handleStats(w http.ResponseWriter) {
	writeJSON(w, http.StatusOK, struct {
		service.Stats
		Cluster Stats `json:"cluster"`
	}{rt.svc.Stats(), rt.Stats()})
}

// writeJSON buffers the encoded body so router-originated responses carry
// an exact Content-Length, matching the service's own framing.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	data, err := json.Marshal(v)
	if err != nil {
		w.WriteHeader(http.StatusInternalServerError)
		return
	}
	data = append(data, '\n')
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.WriteHeader(status)
	_, _ = w.Write(data)
}
