package cluster

import (
	"fmt"
	"net/http"
	"sync"
	"time"
)

const (
	defaultProbeInterval = 1 * time.Second
	defaultProbeTimeout  = 750 * time.Millisecond
)

// peerState tracks one remote peer's reachability. Nodes start presumed
// alive (marking them down before the first probe would shed load from a
// healthy cluster at startup); a failed forward or probe marks them down
// immediately, and only a successful probe of /v1/healthz brings them
// back. The router skips down peers when choosing a forwarding target
// but falls back to trying them anyway when every candidate is down —
// a stale verdict must never turn a routable request into an error.
type peerState struct {
	addr string

	mu       sync.Mutex
	alive    bool
	lastErr  string
	lastSeen time.Time // last successful probe or forward
}

func (p *peerState) isAlive() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.alive
}

// markUp/markDown report whether the verdict changed, so the router can
// log and gauge only the transitions (outside the peer mutex).
func (p *peerState) markUp() bool {
	p.mu.Lock()
	was := p.alive
	p.alive = true
	p.lastErr = ""
	p.lastSeen = time.Now()
	p.mu.Unlock()
	return !was
}

func (p *peerState) markDown(err error) bool {
	p.mu.Lock()
	was := p.alive
	p.alive = false
	p.lastErr = err.Error()
	p.mu.Unlock()
	return was
}

// markPeerDown records a failed forward or probe: peer state, the
// liveness gauge, and — on the alive→down transition only — a log line.
func (rt *Router) markPeerDown(i int, err error) {
	p := rt.peers[i]
	if p.markDown(err) {
		rt.met.peerAlive.With(p.addr).Set(0)
		rt.log.Warn("peer down", "peer", p.addr, "err", err)
	}
}

// markPeerUp records a successful probe (the only path that revives a
// peer).
func (rt *Router) markPeerUp(i int) {
	p := rt.peers[i]
	if p.markUp() {
		rt.met.peerAlive.With(p.addr).Set(1)
		rt.log.Info("peer up", "peer", p.addr)
	}
}

// PeerStatus is one peer's row in the cluster section of /v1/stats.
type PeerStatus struct {
	Addr  string `json:"addr"`
	Self  bool   `json:"self,omitempty"`
	Alive bool   `json:"alive"`
	// LastError is the most recent probe/forward failure; cleared when
	// the peer comes back.
	LastError string `json:"last_error,omitempty"`
}

// probeLoop polls every remote peer's /v1/healthz until stop is closed.
// It is the recovery path: forwards mark peers down passively, but only
// the prober marks them back up.
func (rt *Router) probeLoop() {
	defer rt.probeWG.Done()
	ticker := time.NewTicker(rt.probeInterval)
	defer ticker.Stop()
	for {
		rt.probeAll()
		select {
		case <-rt.stop:
			return
		case <-ticker.C:
		}
	}
}

func (rt *Router) probeAll() {
	for i, p := range rt.peers {
		if i == rt.self {
			continue
		}
		if err := rt.probe(p.addr); err != nil {
			rt.markPeerDown(i, err)
			rt.met.probeFailures.Inc()
		} else {
			rt.markPeerUp(i)
		}
	}
}

func (rt *Router) probe(addr string) error {
	req, err := http.NewRequest(http.MethodGet, "http://"+addr+"/v1/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := rt.probeClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz returned %s", resp.Status)
	}
	return nil
}
