package harness

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a deterministic Options.Now: every call advances one
// second. Safe for the parallel sweep branch, where workers sample it
// concurrently.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(time.Second)
	return c.now
}

// TestSweepTimingHooks pins the harness's observability contract: with
// Now and OnJobDone set, every job gets exactly one callback bracketing
// its run with times sampled from the caller's clock — and the sweep's
// results are byte-identical to an unhooked run, because the harness
// itself never touches the wall clock.
func TestSweepTimingHooks(t *testing.T) {
	mkJobs := func() []Job {
		jobs := make([]Job, 3)
		for i := range jobs {
			seed := int64(i + 1)
			jobs[i] = Job{
				Name:    "timed",
				Seed:    seed,
				New:     func(s int64) (Runner, error) { return &fakeRunner{seed: s}, nil },
				Periods: 4,
			}
		}
		return jobs
	}

	type call struct {
		i          int
		seed       int64
		start, end time.Time
	}
	var mu sync.Mutex
	var calls []call
	clock := &fakeClock{}
	hooked, err := Sweep(mkJobs(), Options{
		Workers: 1,
		Now:     clock.Now,
		OnJobDone: func(i int, res Result, start, end time.Time) {
			mu.Lock()
			defer mu.Unlock()
			calls = append(calls, call{i: i, seed: res.Seed, start: start, end: end})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != 3 {
		t.Fatalf("OnJobDone ran %d times for 3 jobs", len(calls))
	}
	// Serial branch: jobs run in order, each bracketed by two consecutive
	// clock ticks.
	for k, c := range calls {
		if c.i != k {
			t.Fatalf("call %d reported job index %d", k, c.i)
		}
		if c.seed != int64(k+1) {
			t.Fatalf("call %d carries result seed %d, want %d", k, c.seed, k+1)
		}
		if want := time.Duration(1) * time.Second; c.end.Sub(c.start) != want {
			t.Fatalf("job %d timed at %v between consecutive ticks, want %v", k, c.end.Sub(c.start), want)
		}
		if k > 0 && !c.start.After(calls[k-1].end.Add(-time.Nanosecond)) {
			t.Fatalf("serial jobs overlapped: %+v", calls)
		}
	}

	// Parallel branch: same hooks, every job still reported exactly once
	// with end after start.
	calls = nil
	parallel, err := Sweep(mkJobs(), Options{
		Workers: 2,
		Now:     clock.Now,
		OnJobDone: func(i int, res Result, start, end time.Time) {
			mu.Lock()
			defer mu.Unlock()
			calls = append(calls, call{i: i, start: start, end: end})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, c := range calls {
		if seen[c.i] {
			t.Fatalf("job %d reported twice", c.i)
		}
		seen[c.i] = true
		if !c.end.After(c.start) {
			t.Fatalf("job %d end %v not after start %v", c.i, c.end, c.start)
		}
	}
	if len(seen) != 3 {
		t.Fatalf("parallel hooks covered %d of 3 jobs", len(seen))
	}

	// No clock, no hook calls — and identical results, so the hooks are
	// pure observation.
	plain, err := Sweep(mkJobs(), Options{Workers: 1, OnJobDone: func(int, Result, time.Time, time.Time) {
		t.Error("OnJobDone ran without a Now clock")
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if plain[i] != hooked[i] || plain[i] != parallel[i] {
			t.Fatalf("timing hooks changed results: plain %+v hooked %+v parallel %+v",
				plain[i], hooked[i], parallel[i])
		}
	}
}
