// Package harness is the repository's unified experiment orchestration
// layer. Every experiment of the paper's evaluation (§5) is a matrix of
// sweeps — initial points × group sizes × seeds × failure schedules — and
// before this package existed each sweep was a hand-rolled sequential loop
// duplicated across the experiment, benchmark, and CLI layers, with each
// simulation engine exposing a slightly different API.
//
// The harness unifies all of that behind two concepts:
//
//   - Runner: the engine-agnostic execution interface. The agent engine
//     (sim.Engine), the count-based engine (sim.Aggregate), and the
//     asynchronous runtime (asyncnet) all run behind it, via the adapters
//     in runner.go and asyncnet.Runner (which lives with its engine).
//     Perturbations — crash-stop kills, massive correlated
//     failures, crash-recovery revives, and freezes — go through a single
//     Perturb hook instead of engine-specific method sets.
//
//   - Sweep: a deterministic parallel scheduler. A []Job fans out across a
//     worker pool (runtime.NumCPU() workers by default); each job owns its
//     seed, its Runner, its perturbation schedule, and its observation
//     hooks, so the results are byte-identical at any worker count. Seeds
//     are either given explicitly per job (the figure experiments keep the
//     paper's historical seed formulas) or derived with DeriveSeed, a
//     splitmix64 derivation that decorrelates consecutive job indices.
//
// The determinism contract is load-bearing: the test suite verifies that
// 1-worker, 4-worker, and NumCPU-worker sweeps of the Figure 2 phase
// portrait produce byte-identical trajectories, and that those match the
// pre-harness sequential loop.
package harness

import (
	"fmt"

	"odeproto/internal/ode"
)

// PerturbKind enumerates the perturbation events a Runner may support.
type PerturbKind int

const (
	// KillFraction crash-stops a uniformly random fraction of the alive
	// processes (the paper's massive-failure experiments kill 50%).
	KillFraction PerturbKind = iota + 1
	// Kill crash-stops one process (identified by Proc).
	Kill
	// Revive restarts a crashed process (Proc) in state State —
	// crash-recovery, or a churn rejoin.
	Revive
	// Freeze pins a process in its current state: it answers contacts but
	// executes no actions (the paper's §5.1 "chronically averse" hosts).
	Freeze
	// Unfreeze releases a frozen process.
	Unfreeze
)

// String returns the perturbation kind's name.
func (k PerturbKind) String() string {
	switch k {
	case KillFraction:
		return "kill-fraction"
	case Kill:
		return "kill"
	case Revive:
		return "revive"
	case Freeze:
		return "freeze"
	case Unfreeze:
		return "unfreeze"
	default:
		return fmt.Sprintf("PerturbKind(%d)", int(k))
	}
}

// Perturbation is one kill/revive/freeze event applied to a Runner.
type Perturbation struct {
	Kind PerturbKind
	// Frac is the fraction killed by KillFraction.
	Frac float64
	// Proc identifies the process for Kill, Revive, Freeze, and Unfreeze.
	Proc int
	// State is the rejoin state for Revive.
	State ode.Var
}

// ErrUnsupported is returned by Perturb when the engine behind the Runner
// cannot express the requested perturbation (e.g. the count-based engine
// has no per-process identity, so it supports KillFraction only).
var ErrUnsupported = fmt.Errorf("harness: perturbation not supported by this engine")

// Runner is the engine-agnostic execution interface. sim.Engine,
// sim.Aggregate, and the asyncnet runtime implement it via the adapters in
// this package.
type Runner interface {
	// Step executes one protocol period.
	Step()
	// Run executes the given number of protocol periods.
	Run(periods int)
	// Period returns the number of completed protocol periods.
	Period() int
	// Alive returns the number of non-crashed processes.
	Alive() int
	// Counts returns the alive population of every protocol state.
	Counts() map[ode.Var]int
	// Count returns the alive population of one state.
	Count(s ode.Var) int
	// Perturb applies a kill/revive/freeze event, returning the number of
	// processes affected. Engines return ErrUnsupported for events they
	// cannot express.
	Perturb(p Perturbation) (int, error)
}

// TransitionCounter is implemented by Runners that can report the per-edge
// transition counts of the most recent period (the agent engine does; the
// experiments behind Figures 6 and 10 need it).
type TransitionCounter interface {
	TransitionsLastPeriod() map[[2]ode.Var]int
}

// ProcessLister is implemented by Runners with per-process identity (the
// agent engine); the Figure 8 untraceability scatter needs it.
type ProcessLister interface {
	ProcessesIn(s ode.Var) []int
}

// DeriveSeed deterministically derives the seed for job index idx from a
// base seed, using a splitmix64 finalizer so consecutive indices yield
// decorrelated streams. The derivation depends only on (base, idx), never
// on scheduling order, which is what keeps parallel sweeps reproducible.
func DeriveSeed(base int64, idx int) int64 {
	z := uint64(base) + uint64(idx+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}
