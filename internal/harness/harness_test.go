package harness_test

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"odeproto/internal/core"
	"odeproto/internal/endemic"
	"odeproto/internal/harness"
	"odeproto/internal/ode"
	"odeproto/internal/sim"
)

// --- Runner adapters ---

func figure1Protocol(t *testing.T) *core.Protocol {
	t.Helper()
	proto, err := endemic.NewFigure1Protocol(endemic.Params{B: 2, Gamma: 0.1, Alpha: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	return proto
}

func TestAgentRunnerMatchesEngine(t *testing.T) {
	proto := figure1Protocol(t)
	cfg := sim.Config{
		N: 500, Protocol: proto,
		Initial: map[ode.Var]int{endemic.Receptive: 450, endemic.Stash: 50, endemic.Averse: 0},
		Seed:    7,
	}
	r, err := harness.NewAgent(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.Run(50)
	e.Run(50)
	if r.Period() != e.Period() || r.Alive() != e.Alive() {
		t.Fatalf("adapter diverged: period %d vs %d, alive %d vs %d",
			r.Period(), e.Period(), r.Alive(), e.Alive())
	}
	if !reflect.DeepEqual(r.Counts(), e.Counts()) {
		t.Fatalf("adapter counts %v != engine counts %v", r.Counts(), e.Counts())
	}
}

func TestAgentRunnerPerturb(t *testing.T) {
	proto := figure1Protocol(t)
	r, err := harness.NewAgent(sim.Config{
		N: 100, Protocol: proto,
		Initial: map[ode.Var]int{endemic.Receptive: 90, endemic.Stash: 10, endemic.Averse: 0},
		Seed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	killed, err := r.Perturb(harness.Perturbation{Kind: harness.KillFraction, Frac: 0.5})
	if err != nil || killed != 50 {
		t.Fatalf("KillFraction = (%d, %v), want (50, nil)", killed, err)
	}
	if r.Alive() != 50 {
		t.Fatalf("alive = %d after killing 50 of 100", r.Alive())
	}
	// Kill is idempotent per process.
	if n, err := r.Perturb(harness.Perturbation{Kind: harness.Kill, Proc: 0}); err != nil {
		t.Fatal(err)
	} else if n > 1 {
		t.Fatalf("Kill affected %d processes", n)
	}
	first, err := r.Perturb(harness.Perturbation{Kind: harness.Kill, Proc: 0})
	if err != nil || first != 0 {
		t.Fatalf("second Kill of proc 0 = (%d, %v), want (0, nil)", first, err)
	}
	// Revive restores it; a second Revive is a no-op, not an error.
	if n, err := r.Perturb(harness.Perturbation{Kind: harness.Revive, Proc: 0, State: endemic.Receptive}); err != nil || n != 1 {
		t.Fatalf("Revive = (%d, %v), want (1, nil)", n, err)
	}
	if n, err := r.Perturb(harness.Perturbation{Kind: harness.Revive, Proc: 0, State: endemic.Receptive}); err != nil || n != 0 {
		t.Fatalf("idempotent Revive = (%d, %v), want (0, nil)", n, err)
	}
	if n, err := r.Perturb(harness.Perturbation{Kind: harness.Freeze, Proc: 0}); err != nil || n != 1 {
		t.Fatalf("Freeze = (%d, %v), want (1, nil)", n, err)
	}
	if n, err := r.Perturb(harness.Perturbation{Kind: harness.Unfreeze, Proc: 0}); err != nil || n != 1 {
		t.Fatalf("Unfreeze = (%d, %v), want (1, nil)", n, err)
	}
	if _, err := r.Perturb(harness.Perturbation{Kind: harness.PerturbKind(99)}); err == nil {
		t.Fatal("unknown perturbation kind did not error")
	}
}

func TestAggregateRunnerPerturb(t *testing.T) {
	proto := figure1Protocol(t)
	r, err := harness.NewAggregate(proto, map[ode.Var]int{
		endemic.Receptive: 9000, endemic.Stash: 1000, endemic.Averse: 0,
	}, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	r.Run(20)
	if r.Period() != 20 {
		t.Fatalf("period = %d, want 20", r.Period())
	}
	killed, err := r.Perturb(harness.Perturbation{Kind: harness.KillFraction, Frac: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Alive(); got != 10000-killed {
		t.Fatalf("alive = %d, want %d", got, 10000-killed)
	}
	if _, err := r.Perturb(harness.Perturbation{Kind: harness.Freeze, Proc: 3}); err != harness.ErrUnsupported {
		t.Fatalf("aggregate Freeze error = %v, want ErrUnsupported", err)
	}
}

// --- seed derivation ---

func TestDeriveSeedDeterministicAndDistinct(t *testing.T) {
	seen := map[int64]int{}
	for i := 0; i < 1000; i++ {
		s := harness.DeriveSeed(42, i)
		if s2 := harness.DeriveSeed(42, i); s2 != s {
			t.Fatalf("DeriveSeed(42, %d) unstable: %d vs %d", i, s, s2)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("DeriveSeed collision between indices %d and %d", prev, i)
		}
		seen[s] = i
	}
	if harness.DeriveSeed(1, 0) == harness.DeriveSeed(2, 0) {
		t.Fatal("different bases produced the same seed")
	}
}

// --- Sweep semantics ---

func TestSweepAppliesEventsInOrder(t *testing.T) {
	proto := figure1Protocol(t)
	var freezeSeen, killSeen int
	job := harness.Job{
		Name: "events",
		Seed: 1,
		New: func(seed int64) (harness.Runner, error) {
			return harness.NewAgent(sim.Config{
				N: 100, Protocol: proto,
				Initial: map[ode.Var]int{endemic.Receptive: 99, endemic.Stash: 1, endemic.Averse: 0},
				Seed:    seed,
			})
		},
		Periods: 10,
		// Deliberately unsorted: the sweep must order by period.
		Events: []harness.Event{
			{At: 5, P: harness.Perturbation{Kind: harness.KillFraction, Frac: 0.5}},
			{At: 2, P: harness.Perturbation{Kind: harness.Freeze, Proc: 0}},
		},
		BeforeStep: func(r harness.Runner, tt int) {
			a := r.(*harness.AgentRunner)
			if a.Frozen(0) && freezeSeen == 0 {
				freezeSeen = tt
			}
			if r.Alive() < 100 && killSeen == 0 {
				killSeen = tt
			}
		},
	}
	res := harness.Run(job)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if freezeSeen != 2 {
		t.Fatalf("freeze first observed before step %d, want 2", freezeSeen)
	}
	if killSeen != 5 {
		t.Fatalf("kill first observed before step %d, want 5", killSeen)
	}
	if res.Killed != 50 {
		t.Fatalf("result.Killed = %d, want 50", res.Killed)
	}
}

// TestSweepRejectsOutOfHorizonEvents: an event scheduled at or past the
// job horizon could never fire — before the fix it was silently dropped
// and Result.Killed undercounted; now the job fails loudly.
func TestSweepRejectsOutOfHorizonEvents(t *testing.T) {
	proto := figure1Protocol(t)
	mkJob := func(at int) harness.Job {
		return harness.Job{
			Name: fmt.Sprintf("event-at-%d", at),
			Seed: 1,
			New: func(seed int64) (harness.Runner, error) {
				return harness.NewAgent(sim.Config{
					N: 100, Protocol: proto,
					Initial: map[ode.Var]int{endemic.Receptive: 99, endemic.Stash: 1, endemic.Averse: 0},
					Seed:    seed,
				})
			},
			Periods: 10,
			Events: []harness.Event{
				{At: at, P: harness.Perturbation{Kind: harness.KillFraction, Frac: 0.5}},
			},
		}
	}
	for _, at := range []int{10, 11, -1} {
		res := harness.Run(mkJob(at))
		if res.Err == nil {
			t.Errorf("event at period %d of a 10-period job did not fail", at)
		}
		if res.Killed != 0 {
			t.Errorf("event at period %d reported %d killed", at, res.Killed)
		}
	}
	// The last in-horizon period still works, and the kill is counted.
	if res := harness.Run(mkJob(9)); res.Err != nil || res.Killed != 50 {
		t.Fatalf("event at period 9 = (killed %d, %v), want (50, nil)", res.Killed, res.Err)
	}
}

// TestSetDefaultShards: the process-wide shard default reaches engines
// built through the factory path, changes the stream (K is part of the RNG
// contract), and is clamped to N for small groups.
func TestSetDefaultShards(t *testing.T) {
	proto := figure1Protocol(t)
	trajectory := func() []int {
		r, err := harness.NewAgent(sim.Config{
			N: 400, Protocol: proto,
			Initial: map[ode.Var]int{endemic.Receptive: 360, endemic.Stash: 40, endemic.Averse: 0},
			Seed:    5,
		})
		if err != nil {
			t.Fatal(err)
		}
		var out []int
		for i := 0; i < 30; i++ {
			r.Step()
			out = append(out, r.Count(endemic.Stash))
		}
		return out
	}
	serial := trajectory()
	harness.SetDefaultShards(4)
	defer harness.SetDefaultShards(0)
	shardedA := trajectory()
	shardedB := trajectory()
	if !reflect.DeepEqual(shardedA, shardedB) {
		t.Fatal("sharded default is not reproducible")
	}
	if reflect.DeepEqual(serial, shardedA) {
		t.Fatal("shard default had no effect (K=4 stream should differ from serial)")
	}
	// A default above N must clamp rather than fail engine validation.
	harness.SetDefaultShards(1 << 20)
	if _, err := harness.NewAgent(sim.Config{
		N: 50, Protocol: proto,
		Initial: map[ode.Var]int{endemic.Receptive: 49, endemic.Stash: 1, endemic.Averse: 0},
		Seed:    5,
	}); err != nil {
		t.Fatalf("oversized shard default not clamped: %v", err)
	}
}

func TestSweepPropagatesErrors(t *testing.T) {
	jobs := []harness.Job{
		{
			Name:    "bad-factory",
			New:     func(int64) (harness.Runner, error) { return nil, fmt.Errorf("boom") },
			Periods: 1,
		},
		{Name: "no-factory", Periods: 1},
	}
	results, err := harness.Sweep(jobs, harness.Options{Workers: 2})
	if err == nil {
		t.Fatal("sweep with failing jobs returned nil error")
	}
	for i, r := range results {
		if r.Err == nil {
			t.Fatalf("job %d has nil Err", i)
		}
	}
}

func TestSweepUnsupportedPerturbationFailsJob(t *testing.T) {
	proto := figure1Protocol(t)
	job := harness.Job{
		Name: "agg-freeze",
		Seed: 1,
		New: func(seed int64) (harness.Runner, error) {
			return harness.NewAggregate(proto, map[ode.Var]int{
				endemic.Receptive: 99, endemic.Stash: 1, endemic.Averse: 0,
			}, seed, 0)
		},
		Periods: 5,
		Events:  []harness.Event{{At: 1, P: harness.Perturbation{Kind: harness.Freeze, Proc: 0}}},
	}
	if res := harness.Run(job); res.Err == nil {
		t.Fatal("unsupported perturbation did not fail the job")
	}
}

// --- determinism across worker counts ---

// sweepTrajectories runs a small three-engine-free sweep (agent engine
// only) and returns the recorded per-job trajectories.
func sweepTrajectories(t *testing.T, workers int) [][]float64 {
	t.Helper()
	proto := figure1Protocol(t)
	const jobsN = 9
	out := make([][]float64, jobsN)
	jobs := make([]harness.Job, jobsN)
	for i := 0; i < jobsN; i++ {
		tr := &out[i]
		jobs[i] = harness.Job{
			Name: fmt.Sprintf("job%d", i),
			Seed: harness.DeriveSeed(2004, i),
			New: func(seed int64) (harness.Runner, error) {
				return harness.NewAgent(sim.Config{
					N: 300, Protocol: proto,
					Initial: map[ode.Var]int{endemic.Receptive: 280, endemic.Stash: 20, endemic.Averse: 0},
					Seed:    seed,
				})
			},
			Periods: 60,
			Events: []harness.Event{
				{At: 30, P: harness.Perturbation{Kind: harness.KillFraction, Frac: 0.3}},
			},
			AfterStep: func(r harness.Runner, tt int) {
				*tr = append(*tr, float64(r.Count(endemic.Stash)))
			},
		}
	}
	if _, err := harness.Sweep(jobs, harness.Options{Workers: workers}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSweepWorkerCountIndependence(t *testing.T) {
	reference := sweepTrajectories(t, 1)
	for _, workers := range []int{4, runtime.NumCPU()} {
		got := sweepTrajectories(t, workers)
		if !reflect.DeepEqual(got, reference) {
			t.Fatalf("sweep output differs at %d workers", workers)
		}
	}
}
