package harness

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Event schedules one perturbation at the start of a period: it is applied
// after period At's observation hooks of the previous period have run and
// before period At's Step — matching the paper's experiment descriptions
// ("at time t, half the hosts crash").
//
// At must lie in [0, Periods). An event scheduled at or past the horizon
// could never fire; rather than drop it silently (which would undercount
// Result.Killed), the job fails with an error.
type Event struct {
	At int
	P  Perturbation
}

// Job is one experiment execution: an engine factory, a seed, a horizon, a
// perturbation schedule, and observation hooks. Jobs are self-contained —
// a job may only write to memory it exclusively owns (its hooks typically
// capture one slot of a results slice) — which is what makes the sweep
// trivially parallel and worker-count independent.
type Job struct {
	// Name labels the job in errors.
	Name string
	// Seed is passed to New. Experiments reproducing the paper's figures
	// keep their historical seed formulas; new sweeps can use DeriveSeed.
	Seed int64
	// New builds the job's Runner.
	New func(seed int64) (Runner, error)
	// Periods is the number of Step calls.
	Periods int
	// Events are perturbations, applied before the Step of their period.
	// They need not be sorted; the sweep sorts a copy by At (stable, so
	// same-period events keep their order).
	Events []Event
	// BeforeStep, when non-nil, runs every period after that period's
	// events and before its Step — for experiments that record the
	// period-start population (the phase portraits).
	BeforeStep func(r Runner, period int)
	// AfterStep, when non-nil, runs every period right after its Step —
	// for experiments that record period-end populations or per-period
	// transition counts.
	AfterStep func(r Runner, period int)
	// Done, when non-nil, runs once after the last period.
	Done func(r Runner) error
}

// Result summarizes one finished job.
type Result struct {
	Name string
	Seed int64
	// Killed is the total process count affected by Kill/KillFraction
	// events (the figure captions report it).
	Killed int
	// Err is the job's failure, if any.
	Err error
}

// Options configure a sweep.
type Options struct {
	// Workers is the worker-pool size; 0 selects DefaultWorkers (which
	// itself defaults to runtime.NumCPU()).
	Workers int
	// Now, when non-nil, is sampled around each job to time it for
	// OnJobDone. The harness never reads the wall clock itself — timing
	// is observability, supplied by the caller, so the determinism
	// contract (output depends only on jobs and seeds) is untouched.
	Now func() time.Time
	// OnJobDone, when non-nil (and Now is set), is called after each
	// job finishes with its index, result, and start/end times sampled
	// from Now. It runs on the worker goroutine that ran the job and
	// must be safe for concurrent calls.
	OnJobDone func(i int, res Result, start, end time.Time)
}

// defaultWorkers overrides the worker count selected when Options.Workers
// is 0; 0 means runtime.NumCPU(). Set via SetDefaultWorkers (CLI -workers
// flags and the determinism tests use it).
var defaultWorkers atomic.Int64

// SetDefaultWorkers sets the process-wide default worker-pool size used
// when Options.Workers is zero. n ≤ 0 restores runtime.NumCPU().
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// Workers resolves an Options.Workers value to a concrete pool size.
func (o Options) workerCount() int {
	w := o.Workers
	if w <= 0 {
		w = int(defaultWorkers.Load())
	}
	if w <= 0 {
		w = runtime.NumCPU()
	}
	return w
}

// Sweep fans the jobs across a worker pool and blocks until all finish.
// Results are returned in job order. Because every job owns its Runner,
// its seed, and the memory its hooks write to, the sweep's output is
// byte-identical at any worker count. A non-nil error joins every job
// failure; the per-job Result.Err fields pinpoint them.
func Sweep(jobs []Job, opt Options) ([]Result, error) {
	return SweepContext(context.Background(), jobs, opt)
}

// SweepContext is Sweep with cancellation. Every job checks the context at
// each period boundary, so an in-flight job stops within one period of the
// context being cancelled; jobs not yet dispatched are never started. A
// cancelled job's Result.Err wraps ctx.Err() (test with errors.Is).
//
// Cancellation does not disturb determinism: jobs that finished before the
// cancellation carry exactly the results they would in an uncancelled
// sweep, and a cancelled job's hooks have observed a prefix of the periods
// an uncancelled run would produce (same seeds, same order).
func SweepContext(ctx context.Context, jobs []Job, opt Options) ([]Result, error) {
	results := make([]Result, len(jobs))
	workers := opt.workerCount()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	// runTimed wraps runJob with the caller-supplied clock so both the
	// serial and parallel branches report identical timing hooks.
	runTimed := func(i int) Result {
		if opt.Now == nil || opt.OnJobDone == nil {
			return runJob(ctx, &jobs[i])
		}
		start := opt.Now()
		res := runJob(ctx, &jobs[i])
		opt.OnJobDone(i, res, start, opt.Now())
		return res
	}
	if workers <= 1 {
		for i := range jobs {
			results[i] = runTimed(i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range idx {
					results[i] = runTimed(i)
				}
			}()
		}
	feed:
		for i := range jobs {
			select {
			case idx <- i:
			case <-ctx.Done():
				// The remaining jobs were never dispatched; mark them
				// cancelled here (the workers only write dispatched slots).
				for j := i; j < len(jobs); j++ {
					results[j] = Result{Name: jobs[j].Name, Seed: jobs[j].Seed,
						Err: fmt.Errorf("harness: job not started: %w", ctx.Err())}
				}
				break feed
			}
		}
		close(idx)
		wg.Wait()
	}
	var errs []error
	for i := range results {
		if results[i].Err != nil {
			errs = append(errs, fmt.Errorf("job %q: %w", results[i].Name, results[i].Err))
		}
	}
	return results, errors.Join(errs...)
}

// Run executes a single job synchronously — the CLI entry points that run
// one configuration use it so single runs and sweeps share one code path.
func Run(job Job) Result { return runJob(context.Background(), &job) }

// RunContext is Run with cancellation, with the same per-period semantics
// as SweepContext.
func RunContext(ctx context.Context, job Job) Result { return runJob(ctx, &job) }

func runJob(ctx context.Context, job *Job) Result {
	res := Result{Name: job.Name, Seed: job.Seed}
	if err := ctx.Err(); err != nil {
		res.Err = fmt.Errorf("harness: job not started: %w", err)
		return res
	}
	if job.New == nil {
		res.Err = fmt.Errorf("harness: job has no Runner factory")
		return res
	}
	// Reject out-of-horizon events up front: an event with At >= Periods
	// (or At < 0) would never be applied, silently distorting the
	// experiment it was scheduled for.
	for i := range job.Events {
		if at := job.Events[i].At; at < 0 || at >= job.Periods {
			res.Err = fmt.Errorf("harness: event %d (%s at period %d) outside the job horizon [0, %d)",
				i, job.Events[i].P.Kind, at, job.Periods)
			return res
		}
	}
	r, err := job.New(job.Seed)
	if err != nil {
		res.Err = err
		return res
	}
	events := job.Events
	if !sort.SliceIsSorted(events, func(i, j int) bool { return events[i].At < events[j].At }) {
		events = append([]Event(nil), events...)
		sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	}
	next := 0
	for t := 0; t < job.Periods; t++ {
		if err := ctx.Err(); err != nil {
			res.Err = fmt.Errorf("harness: job cancelled at period %d: %w", t, err)
			return res
		}
		for next < len(events) && events[next].At <= t {
			n, err := r.Perturb(events[next].P)
			if err != nil {
				res.Err = fmt.Errorf("harness: period %d %s: %w", t, events[next].P.Kind, err)
				return res
			}
			switch events[next].P.Kind {
			case Kill, KillFraction:
				res.Killed += n
			}
			next++
		}
		if job.BeforeStep != nil {
			job.BeforeStep(r, t)
		}
		r.Step()
		if job.AfterStep != nil {
			job.AfterStep(r, t)
		}
	}
	if res.Err == nil {
		if ea, ok := r.(interface{ Err() error }); ok && ea.Err() != nil {
			res.Err = ea.Err()
			return res
		}
	}
	if job.Done != nil {
		if err := job.Done(r); err != nil {
			res.Err = err
		}
	}
	return res
}
