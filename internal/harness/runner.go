package harness

import (
	"fmt"

	"odeproto/internal/core"
	"odeproto/internal/ode"
	"odeproto/internal/sim"
)

// AgentRunner adapts the agent-based synchronous-round engine
// (sim.Engine) to the Runner interface. All engine observation methods
// (TransitionsLastPeriod, ProcessesIn, Fractions, ...) remain available
// through the embedded engine.
type AgentRunner struct {
	*sim.Engine
}

// NewAgent builds an agent-engine Runner.
func NewAgent(cfg sim.Config) (*AgentRunner, error) {
	e, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	return &AgentRunner{Engine: e}, nil
}

// Perturb applies the event to the agent engine. Every perturbation kind
// is supported.
func (r *AgentRunner) Perturb(p Perturbation) (int, error) {
	switch p.Kind {
	case KillFraction:
		return r.Engine.KillFraction(p.Frac), nil
	case Kill:
		if r.Engine.StateOf(p.Proc) == sim.Down {
			return 0, nil
		}
		r.Engine.Kill(p.Proc)
		return 1, nil
	case Revive:
		// Idempotent, like Kill: perturbation schedules (e.g. compiled
		// churn traces) are applied blindly, so reviving an already-alive
		// process is a no-op rather than an error.
		if r.Engine.StateOf(p.Proc) != sim.Down {
			return 0, nil
		}
		if err := r.Engine.Revive(p.Proc, p.State); err != nil {
			return 0, err
		}
		return 1, nil
	case Freeze:
		r.Engine.Freeze(p.Proc)
		return 1, nil
	case Unfreeze:
		r.Engine.Unfreeze(p.Proc)
		return 1, nil
	default:
		return 0, fmt.Errorf("harness: unknown perturbation kind %v", p.Kind)
	}
}

// AggregateRunner adapts the count-based engine (sim.Aggregate) to the
// Runner interface. Processes have no identity in the aggregate engine, so
// only population-level perturbations (KillFraction) are supported.
type AggregateRunner struct {
	*sim.Aggregate
}

// NewAggregate builds a count-based Runner.
func NewAggregate(proto *core.Protocol, initial map[ode.Var]int, seed int64, messageLoss float64) (*AggregateRunner, error) {
	a, err := sim.NewAggregate(proto, initial, seed, messageLoss)
	if err != nil {
		return nil, err
	}
	return &AggregateRunner{Aggregate: a}, nil
}

// Perturb applies the event. Only KillFraction is expressible without
// per-process identity; everything else returns ErrUnsupported.
func (r *AggregateRunner) Perturb(p Perturbation) (int, error) {
	switch p.Kind {
	case KillFraction:
		return r.Aggregate.KillFraction(p.Frac), nil
	case Kill, Revive, Freeze, Unfreeze:
		return 0, ErrUnsupported
	default:
		return 0, fmt.Errorf("harness: unknown perturbation kind %v", p.Kind)
	}
}

// The third engine adapter — asyncnet.Runner, which adapts the
// asynchronous runtime to this interface — lives with its engine in
// package asyncnet, because asyncnet's own tests exercise experiment
// packages that are built on the harness and the adapter would otherwise
// close an import cycle.
