package harness

import (
	"fmt"
	"sync/atomic"

	"odeproto/internal/core"
	"odeproto/internal/ode"
	"odeproto/internal/sim"
)

// defaultShards is the process-wide default shard count applied by
// NewAgent when sim.Config.Shards is zero; 0 means serial. The CLI -shards
// flags set it, which is how every experiment routed through the harness
// factory picks the sharded engine up without threading a knob through
// each experiment config.
var defaultShards atomic.Int64

// SetDefaultShards sets the process-wide default shard count used when a
// sim.Config reaches NewAgent with Shards == 0. k ≤ 1 restores the serial
// single-stream engine. Note that the shard count is part of the RNG
// contract: results are reproducible for a fixed (seed, shards) pair at
// any worker count, but different shard counts are different streams.
func SetDefaultShards(k int) {
	if k < 0 {
		k = 0
	}
	defaultShards.Store(int64(k))
}

// AgentRunner adapts the agent-based synchronous-round engine
// (sim.Engine) to the Runner interface. All engine observation methods
// (TransitionsLastPeriod, ProcessesIn, Fractions, ...) remain available
// through the embedded engine.
type AgentRunner struct {
	*sim.Engine
}

// NewAgent builds an agent-engine Runner. When cfg.Shards is zero, the
// process-wide default set by SetDefaultShards applies (and a shard count
// above cfg.N is clamped to cfg.N, so small test groups keep working under
// a CLI-scale -shards default).
func NewAgent(cfg sim.Config) (*AgentRunner, error) {
	if cfg.Shards == 0 {
		cfg.Shards = int(defaultShards.Load())
		if cfg.Shards > cfg.N {
			cfg.Shards = cfg.N
		}
	}
	e, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	return &AgentRunner{Engine: e}, nil
}

// Perturb applies the event to the agent engine. Every perturbation kind
// is supported.
func (r *AgentRunner) Perturb(p Perturbation) (int, error) {
	switch p.Kind {
	case KillFraction:
		return r.Engine.KillFraction(p.Frac), nil
	case Kill:
		if r.Engine.StateOf(p.Proc) == sim.Down {
			return 0, nil
		}
		r.Engine.Kill(p.Proc)
		return 1, nil
	case Revive:
		// Idempotent, like Kill: perturbation schedules (e.g. compiled
		// churn traces) are applied blindly, so reviving an already-alive
		// process is a no-op rather than an error.
		if r.Engine.StateOf(p.Proc) != sim.Down {
			return 0, nil
		}
		if err := r.Engine.Revive(p.Proc, p.State); err != nil {
			return 0, err
		}
		return 1, nil
	case Freeze:
		r.Engine.Freeze(p.Proc)
		return 1, nil
	case Unfreeze:
		r.Engine.Unfreeze(p.Proc)
		return 1, nil
	default:
		return 0, fmt.Errorf("harness: unknown perturbation kind %v", p.Kind)
	}
}

// AggregateRunner adapts the count-based engine (sim.Aggregate) to the
// Runner interface. Processes have no identity in the aggregate engine, so
// only population-level perturbations (KillFraction) are supported.
type AggregateRunner struct {
	*sim.Aggregate
}

// NewAggregate builds a count-based Runner.
func NewAggregate(proto *core.Protocol, initial map[ode.Var]int, seed int64, messageLoss float64) (*AggregateRunner, error) {
	a, err := sim.NewAggregate(proto, initial, seed, messageLoss)
	if err != nil {
		return nil, err
	}
	return &AggregateRunner{Aggregate: a}, nil
}

// Perturb applies the event. Only KillFraction is expressible without
// per-process identity; everything else returns ErrUnsupported.
func (r *AggregateRunner) Perturb(p Perturbation) (int, error) {
	switch p.Kind {
	case KillFraction:
		return r.Aggregate.KillFraction(p.Frac), nil
	case Kill, Revive, Freeze, Unfreeze:
		return 0, ErrUnsupported
	default:
		return 0, fmt.Errorf("harness: unknown perturbation kind %v", p.Kind)
	}
}

// The third engine adapter — asyncnet.Runner, which adapts the
// asynchronous runtime to this interface — lives with its engine in
// package asyncnet, because asyncnet's own tests exercise experiment
// packages that are built on the harness and the adapter would otherwise
// close an import cycle.
