package harness

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"odeproto/internal/ode"
)

// fakeRunner is a deterministic Runner whose per-period "population" is a
// pure function of (seed, period), so any recorded series can be checked
// against a closed form regardless of scheduling.
type fakeRunner struct {
	seed   int64
	period int
	delay  time.Duration
	steps  *atomic.Int64
}

func (f *fakeRunner) Step() {
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	f.period++
	if f.steps != nil {
		f.steps.Add(1)
	}
}
func (f *fakeRunner) Run(periods int) {
	for i := 0; i < periods; i++ {
		f.Step()
	}
}
func (f *fakeRunner) Period() int { return f.period }
func (f *fakeRunner) Alive() int  { return int(f.seed)*1000 + f.period }
func (f *fakeRunner) Counts() map[ode.Var]int {
	return map[ode.Var]int{"x": f.Alive()}
}
func (f *fakeRunner) Count(s ode.Var) int { return f.Counts()[s] }
func (f *fakeRunner) Perturb(p Perturbation) (int, error) {
	return 0, ErrUnsupported
}

func expectedSeries(seed int64, periods int) []int {
	out := make([]int, periods)
	for t := 0; t < periods; t++ {
		out[t] = int(seed)*1000 + t + 1 // Alive() observed by AfterStep
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSweepContextCancelStopsPromptly cancels a parallel sweep from inside
// a running job and verifies that (a) the sweep returns, (b) cancelled
// jobs report a context error, and (c) only a bounded number of extra
// steps execute after the cancellation lands — workers stop at the next
// period boundary instead of draining their jobs.
func TestSweepContextCancelStopsPromptly(t *testing.T) {
	const njobs, periods, workers = 8, 400, 2
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var steps atomic.Int64
	var atCancel atomic.Int64
	jobs := make([]Job, njobs)
	for i := range jobs {
		seed := int64(i + 1)
		jobs[i] = Job{
			Name: "cancel-sweep",
			Seed: seed,
			New: func(seed int64) (Runner, error) {
				return &fakeRunner{seed: seed, delay: 200 * time.Microsecond, steps: &steps}, nil
			},
			Periods: periods,
		}
	}
	// Job 0 pulls the plug after its tenth period.
	jobs[0].AfterStep = func(r Runner, t int) {
		if t == 9 {
			atCancel.Store(steps.Load())
			cancel()
		}
	}

	done := make(chan struct{})
	var results []Result
	var err error
	go func() {
		results, err = SweepContext(ctx, jobs, Options{Workers: workers})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("sweep did not return after cancellation")
	}

	if err == nil {
		t.Fatal("cancelled sweep returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("sweep error does not wrap context.Canceled: %v", err)
	}
	cancelled := 0
	for i, res := range results {
		if res.Err != nil {
			if !errors.Is(res.Err, context.Canceled) {
				t.Fatalf("job %d failed with a non-cancellation error: %v", i, res.Err)
			}
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Fatal("no job was cancelled")
	}
	// With 2 workers each stopping at its next period boundary, at most a
	// handful of in-flight steps may complete after cancel() returns.
	extra := steps.Load() - atCancel.Load()
	if extra > 64 {
		t.Fatalf("%d steps executed after cancellation (want a small bound)", extra)
	}
	if total := steps.Load(); total >= njobs*periods {
		t.Fatalf("all %d steps ran despite cancellation", total)
	}
}

// TestSweepContextCompletedPrefixDeterministic cancels a sweep partway
// through and verifies that every job that completed before the
// cancellation carries byte-identical observations to an uncancelled
// reference sweep, and that every cancelled job observed an exact prefix
// of its reference series.
func TestSweepContextCompletedPrefixDeterministic(t *testing.T) {
	const njobs, periods = 6, 50

	makeJobs := func(series [][]int, onStep func(job, t int)) []Job {
		jobs := make([]Job, njobs)
		for i := range jobs {
			i := i
			jobs[i] = Job{
				Name: "prefix-determinism",
				Seed: int64(i + 1),
				New: func(seed int64) (Runner, error) {
					return &fakeRunner{seed: seed}, nil
				},
				Periods: periods,
				AfterStep: func(r Runner, t int) {
					series[i] = append(series[i], r.Alive())
					if onStep != nil {
						onStep(i, t)
					}
				},
			}
		}
		return jobs
	}

	// Reference: uncancelled serial sweep.
	ref := make([][]int, njobs)
	if _, err := Sweep(makeJobs(ref, nil), Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if !equalInts(ref[i], expectedSeries(int64(i+1), periods)) {
			t.Fatalf("reference series %d does not match closed form", i)
		}
	}

	// Cancelled run: job 4 cancels at its first period, so the serial
	// prefix (jobs 0..3 on worker order) has completed normally.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	got := make([][]int, njobs)
	results, err := SweepContext(ctx, makeJobs(got, func(job, t int) {
		if job == 4 && t == 0 {
			cancel()
		}
	}), Options{Workers: 2})
	if err == nil {
		t.Fatal("cancelled sweep returned nil error")
	}

	for i, res := range results {
		if res.Err == nil {
			if !equalInts(got[i], ref[i]) {
				t.Fatalf("completed job %d series differs from the uncancelled reference", i)
			}
			continue
		}
		if len(got[i]) > len(ref[i]) || !equalInts(got[i], ref[i][:len(got[i])]) {
			t.Fatalf("cancelled job %d series is not a prefix of the reference (got %d rows)", i, len(got[i]))
		}
		if len(got[i]) == periods {
			t.Fatalf("job %d reported cancellation but observed all periods", i)
		}
	}
}
