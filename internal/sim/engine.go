// Package sim provides the simulation substrate the paper's evaluation
// (§5) runs on: an agent-based synchronous-round engine that executes a
// compiled protocol over N simulated processes (the paper tops out at
// 100,000 hosts; the sharded execution path in shard.go takes the same
// engine to millions), and a fast aggregate (count-based) engine for
// large sweeps.
//
// The agent engine reproduces the paper's experimental environment —
// "multiple instances running synchronously over a simulated network, all
// on a single machine" — with the Mersenne Twister generator the paper
// uses, and supports the evaluation's failure modes: message loss per
// connection attempt, crash-stop and crash-recovery process failures,
// massive correlated failures (Figures 5 and 12), and trace-driven churn
// (Figures 9 and 10).
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"odeproto/internal/core"
	"odeproto/internal/mt19937"
	"odeproto/internal/ode"
)

// Down marks a crashed or departed process in StateOf.
const Down = ode.Var("")

// Config configures an agent-based engine.
type Config struct {
	// N is the group size.
	N int
	// Protocol is the compiled protocol to execute.
	Protocol *core.Protocol
	// Initial gives the starting count per state; counts must sum to N.
	Initial map[ode.Var]int
	// Seed seeds the engine's Mersenne Twister.
	Seed int64
	// MessageLoss is the probability f that any single connection attempt
	// (sample, push contact, or token hop) fails. Lost attempts see no
	// state (they never match).
	MessageLoss float64
	// TokenTTL, when positive, delivers tokens by TTL-bounded random walk
	// instead of membership-directed routing (§6 "Limitations of
	// Tokenizing").
	TokenTTL int
	// InitiallyDown starts that many processes (the highest indices) in
	// the crashed state; they can later be brought in with Revive, which
	// is how open-group joins are modelled. Initial counts must then sum
	// to N − InitiallyDown.
	InitiallyDown int
	// ViewSize, when positive, replaces the paper's maximal-membership
	// assumption with uniform partial views: every process samples targets
	// only from a fixed random view of this many distinct peers. The
	// paper's footnote 1 notes that "well-known results can be used to
	// reduce this size to logarithmic in group size"; setting ViewSize to
	// O(log N) exercises exactly that reduction (see the view-size
	// ablation bench). Zero keeps full membership.
	ViewSize int
	// Shards partitions the N processes into this many contiguous shards,
	// each with its own deterministically derived Mersenne Twister stream,
	// and runs every period's action phase in parallel across the shards.
	// Results depend only on (Seed, Shards), never on the worker count or
	// scheduling, so a fixed K is reproducible on any machine. 0 and 1 both
	// select the original single-stream serial engine, bit-identical to the
	// pre-sharding implementation. See shard.go for the barrier semantics
	// of cross-shard pushes and tokens at K > 1.
	Shards int
	// ShardWorkers bounds the worker pool that executes the shards when
	// Shards > 1; 0 picks min(Shards, GOMAXPROCS). It is a throughput knob
	// only — the output is byte-identical at any value.
	ShardWorkers int
	// OnTransition, when non-nil, is invoked for every state transition
	// with the process index, the states involved, and the period number.
	// Crash/revive events are not transitions.
	OnTransition func(proc int, from, to ode.Var, period int)
}

// Engine is an agent-based synchronous-round simulator.
type Engine struct {
	cfg      Config
	states   []ode.Var
	stateIdx map[ode.Var]int
	actions  [][]compiledAction // actions per state index
	rng      *rand.Rand

	state    []int16 // current state per process, -1 = down
	snapshot []int16 // state at period start
	moved    []bool  // transition already applied this period
	counts   []int   // alive processes per state
	alive    int
	period   int

	transitions map[[2]ode.Var]int // last period's transition counts
	messages    int                // last period's connection attempts
	tokensLost  int                // last period's dropped tokens

	// tokenPool holds, per target state, a shuffled list of candidate
	// processes for directed token delivery, built lazily once per period
	// and consumed by a cursor — keeping delivery O(1) amortized per
	// token instead of O(N).
	tokenPool   [][]int
	tokenCursor []int
	tokenBuilt  []bool

	// views holds each process's partial membership view (row-major,
	// ViewSize entries per process) when Config.ViewSize > 0.
	views []int32

	// frozen marks processes that hold their state and execute no
	// actions (they still answer contacts). Models the paper's
	// "chronically averse" heterogeneous hosts (§5.1).
	frozen []bool

	// Sharded execution state (Config.Shards > 1); see shard.go.
	shards       []shardState
	barrierRng   *rand.Rand // resolves cross-shard intents at the barrier
	shardWorkers int
}

type compiledAction struct {
	kind    core.ActionKind
	coin    float64
	samples []int16
	from    int16
	to      int16
}

// New builds an engine. The protocol must validate and the initial counts
// must sum to N.
func New(cfg Config) (*Engine, error) {
	if cfg.N <= 1 {
		// N = 1 would make pickPeer's rng.Intn(N-1) panic: every contact
		// action needs at least one peer other than self to sample.
		return nil, fmt.Errorf("sim: group size %d too small (peer sampling needs N >= 2)", cfg.N)
	}
	if cfg.Protocol == nil {
		return nil, fmt.Errorf("sim: nil protocol")
	}
	if err := cfg.Protocol.Validate(); err != nil {
		return nil, fmt.Errorf("sim: invalid protocol: %w", err)
	}
	if cfg.MessageLoss < 0 || cfg.MessageLoss >= 1 {
		return nil, fmt.Errorf("sim: message loss %v outside [0,1)", cfg.MessageLoss)
	}
	e := &Engine{
		cfg:      cfg,
		states:   cfg.Protocol.States,
		stateIdx: make(map[ode.Var]int, len(cfg.Protocol.States)),
		rng:      rand.New(mt19937.New(cfg.Seed)),
	}
	for i, s := range e.states {
		e.stateIdx[s] = i
	}
	e.actions = make([][]compiledAction, len(e.states))
	for _, a := range cfg.Protocol.Actions {
		ca := compiledAction{
			kind: a.Kind,
			coin: a.Coin,
			from: int16(e.stateIdx[a.From]),
			to:   int16(e.stateIdx[a.To]),
		}
		for _, s := range a.Samples {
			ca.samples = append(ca.samples, int16(e.stateIdx[s]))
		}
		owner := e.stateIdx[a.Owner]
		e.actions[owner] = append(e.actions[owner], ca)
	}

	if cfg.InitiallyDown < 0 || cfg.InitiallyDown >= cfg.N {
		return nil, fmt.Errorf("sim: InitiallyDown %d outside [0, N)", cfg.InitiallyDown)
	}
	up := cfg.N - cfg.InitiallyDown
	total := 0
	// Validate in sorted-key order so which bad entry the error names is
	// deterministic, not map-iteration-ordered.
	initialStates := make([]string, 0, len(cfg.Initial))
	for s := range cfg.Initial {
		initialStates = append(initialStates, string(s))
	}
	sort.Strings(initialStates)
	for _, name := range initialStates {
		s := ode.Var(name)
		c := cfg.Initial[s]
		if _, ok := e.stateIdx[s]; !ok {
			return nil, fmt.Errorf("sim: initial state %q not in protocol", s)
		}
		if c < 0 {
			return nil, fmt.Errorf("sim: negative initial count for %q", s)
		}
		total += c
	}
	if total != up {
		return nil, fmt.Errorf("sim: initial counts sum to %d, want %d (N minus InitiallyDown)", total, up)
	}

	e.state = make([]int16, cfg.N)
	e.snapshot = make([]int16, cfg.N)
	e.moved = make([]bool, cfg.N)
	e.counts = make([]int, len(e.states))
	idx := 0
	for _, s := range e.states { // deterministic layout in state order
		c := cfg.Initial[s]
		si := int16(e.stateIdx[s])
		for i := 0; i < c; i++ {
			e.state[idx] = si
			idx++
		}
		e.counts[e.stateIdx[s]] = c
	}
	for ; idx < cfg.N; idx++ {
		e.state[idx] = -1
	}
	e.alive = up
	e.transitions = make(map[[2]ode.Var]int)
	e.frozen = make([]bool, cfg.N)
	e.tokenPool = make([][]int, len(e.states))
	e.tokenCursor = make([]int, len(e.states))
	e.tokenBuilt = make([]bool, len(e.states))

	if cfg.Shards < 0 || cfg.Shards > cfg.N {
		return nil, fmt.Errorf("sim: shard count %d outside [0, N = %d]", cfg.Shards, cfg.N)
	}
	if cfg.Shards > 1 {
		e.initShards()
	}

	if cfg.ViewSize > 0 {
		if cfg.ViewSize >= cfg.N {
			return nil, fmt.Errorf("sim: view size %d must be below N = %d", cfg.ViewSize, cfg.N)
		}
		e.views = make([]int32, cfg.N*cfg.ViewSize)
		seen := make(map[int32]bool, cfg.ViewSize)
		for p := 0; p < cfg.N; p++ {
			for k := range seen {
				delete(seen, k)
			}
			row := e.views[p*cfg.ViewSize : (p+1)*cfg.ViewSize]
			for i := 0; i < cfg.ViewSize; {
				t := int32(e.rng.Intn(cfg.N))
				if int(t) == p || seen[t] {
					continue
				}
				seen[t] = true
				row[i] = t
				i++
			}
		}
	}
	return e, nil
}

// N returns the configured group size.
func (e *Engine) N() int { return e.cfg.N }

// Period returns the number of completed protocol periods.
func (e *Engine) Period() int { return e.period }

// Alive returns the number of non-crashed processes.
func (e *Engine) Alive() int { return e.alive }

// Count returns the number of alive processes in the given state.
func (e *Engine) Count(s ode.Var) int {
	i, ok := e.stateIdx[s]
	if !ok {
		return 0
	}
	return e.counts[i]
}

// Counts returns the alive count of every state.
func (e *Engine) Counts() map[ode.Var]int {
	out := make(map[ode.Var]int, len(e.states))
	for i, s := range e.states {
		out[s] = e.counts[i]
	}
	return out
}

// Fractions returns state occupancy as fractions of alive processes.
func (e *Engine) Fractions() map[ode.Var]float64 {
	out := make(map[ode.Var]float64, len(e.states))
	if e.alive == 0 {
		for _, s := range e.states {
			out[s] = 0
		}
		return out
	}
	for i, s := range e.states {
		out[s] = float64(e.counts[i]) / float64(e.alive)
	}
	return out
}

// StateOf returns the state of process p, or Down if it has crashed.
func (e *Engine) StateOf(p int) ode.Var {
	if e.state[p] < 0 {
		return Down
	}
	return e.states[e.state[p]]
}

// ProcessesIn returns the indices of alive processes currently in state s.
func (e *Engine) ProcessesIn(s ode.Var) []int {
	si, ok := e.stateIdx[s]
	if !ok {
		return nil
	}
	if e.counts[si] == 0 {
		return nil
	}
	out := make([]int, 0, e.counts[si])
	for p, st := range e.state {
		if int(st) == si {
			out = append(out, p)
		}
	}
	return out
}

// TransitionsLastPeriod returns the per-edge transition counts of the most
// recent period. The map is reused across periods; callers must not retain
// it.
func (e *Engine) TransitionsLastPeriod() map[[2]ode.Var]int { return e.transitions }

// MessagesLastPeriod returns the number of connection attempts (sampling
// contacts, push contacts, and token hops) of the most recent period — the
// §3 message-complexity measure, observed.
func (e *Engine) MessagesLastPeriod() int { return e.messages }

// TokensLostLastPeriod returns tokens dropped in the most recent period
// (no process in the target state, or TTL expiry).
func (e *Engine) TokensLostLastPeriod() int { return e.tokensLost }

// Freeze pins process p in its current state: it executes no actions and
// cannot be moved by pushes or tokens, but remains alive and keeps
// answering contact probes. This models the paper's heterogeneous
// "chronically averse" hosts (§5.1: behaviour "characteristic of a
// heterogeneous setting, where half the hosts are chronically averse to
// storing the file or even perhaps to running the protocol").
func (e *Engine) Freeze(p int) { e.frozen[p] = true }

// Unfreeze releases a frozen process.
func (e *Engine) Unfreeze(p int) { e.frozen[p] = false }

// Frozen reports whether process p is frozen.
func (e *Engine) Frozen(p int) bool { return e.frozen[p] }

// Kill crash-stops process p. Killing an already-down process is a no-op.
func (e *Engine) Kill(p int) {
	if e.state[p] < 0 {
		return
	}
	e.counts[e.state[p]]--
	e.state[p] = -1
	e.alive--
}

// KillFraction crash-stops a uniformly random fraction of the alive
// processes (the paper's massive-failure experiments kill 50%). The target
// count is frac·alive rounded to nearest (killing 50% of 101 alive
// processes kills 51, where truncation would under-kill with 50) and the
// exact number killed is returned.
func (e *Engine) KillFraction(frac float64) int {
	target := int(math.Round(frac * float64(e.alive)))
	killed := 0
	// Reservoir-style: walk alive processes, kill with adjusted probability.
	remaining := e.alive
	for p := range e.state {
		if e.state[p] < 0 {
			continue
		}
		need := target - killed
		if need <= 0 {
			break
		}
		if e.rng.Intn(remaining) < need {
			e.Kill(p)
			killed++
		}
		remaining--
	}
	return killed
}

// Revive restarts a down process in the given state (crash-recovery or
// churn rejoin). Reviving an alive process is an error.
func (e *Engine) Revive(p int, s ode.Var) error {
	if e.state[p] >= 0 {
		return fmt.Errorf("sim: process %d is already alive", p)
	}
	si, ok := e.stateIdx[s]
	if !ok {
		return fmt.Errorf("sim: unknown state %q", s)
	}
	e.state[p] = int16(si)
	e.counts[si]++
	e.alive++
	return nil
}

// pickPeer draws a uniform contact target for self: from the whole group
// under maximal membership, or from self's partial view when ViewSize is
// configured.
func (e *Engine) pickPeer(self int) int {
	if e.views != nil {
		k := e.cfg.ViewSize
		return int(e.views[self*k+e.rng.Intn(k)])
	}
	t := e.rng.Intn(e.cfg.N - 1)
	if t >= self {
		t++
	}
	return t
}

// sampleTarget picks a contact target other than self. Crashed targets
// are legitimate picks (the connection is simply fruitless, as in the
// paper's massive-failure analysis). A message-loss coin may also void the
// attempt. It returns the observed state index, or -1 when nothing was
// observed.
func (e *Engine) sampleTarget(self int) int16 {
	e.messages++
	t := e.pickPeer(self)
	if e.cfg.MessageLoss > 0 && e.rng.Float64() < e.cfg.MessageLoss {
		return -1
	}
	return e.snapshot[t]
}

// samplePeer is like sampleTarget but also returns the peer index (used by
// Push, which mutates the peer).
func (e *Engine) samplePeer(self int) (int, int16) {
	e.messages++
	t := e.pickPeer(self)
	if e.cfg.MessageLoss > 0 && e.rng.Float64() < e.cfg.MessageLoss {
		return t, -1
	}
	return t, e.snapshot[t]
}

// transition moves process p from state index `from` to `to`, firing the
// hook.
func (e *Engine) transition(p int, from, to int16) {
	e.state[p] = to
	e.counts[from]--
	e.counts[to]++
	e.moved[p] = true
	key := [2]ode.Var{e.states[from], e.states[to]}
	e.transitions[key]++
	if e.cfg.OnTransition != nil {
		e.cfg.OnTransition(p, e.states[from], e.states[to], e.period)
	}
}

// deliverToken routes a token targeting state `from`; on success some
// process in that state transitions to `to`. All randomness is drawn from
// rng — the serial engine passes its main stream, the sharded barrier its
// dedicated barrier stream.
func (e *Engine) deliverToken(rng *rand.Rand, from, to int16) {
	if e.cfg.TokenTTL > 0 {
		// Random-walk delivery: hop until a matching process is found or
		// the TTL expires. Each hop is a connection attempt.
		for ttl := e.cfg.TokenTTL; ttl > 0; ttl-- {
			e.messages++
			t := rng.Intn(e.cfg.N)
			if e.cfg.MessageLoss > 0 && rng.Float64() < e.cfg.MessageLoss {
				continue
			}
			if e.state[t] == from && !e.moved[t] && !e.frozen[t] {
				e.transition(t, from, to)
				return
			}
		}
		e.tokensLost++
		return
	}
	// Directed delivery via membership: pick uniformly among current
	// holders of the state. §6 allows maintaining this knowledge through a
	// membership protocol; the engine models it as an oracle. The shuffled
	// candidate pool is built once per period per target state.
	e.messages++
	if !e.tokenBuilt[from] {
		pool := e.tokenPool[from][:0]
		for p, st := range e.state {
			if st == from && !e.moved[p] && !e.frozen[p] {
				pool = append(pool, p)
			}
		}
		rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
		e.tokenPool[from] = pool
		e.tokenCursor[from] = 0
		e.tokenBuilt[from] = true
	}
	pool := e.tokenPool[from]
	for e.tokenCursor[from] < len(pool) {
		p := pool[e.tokenCursor[from]]
		e.tokenCursor[from]++
		// Re-check eligibility at consume time with exactly the conditions
		// the pool was built with: a process frozen after the pool was
		// built (e.g. by an OnTransition hook mid-period) must not be moved
		// by a token, just as a process that moved since cannot be.
		if e.state[p] == from && !e.moved[p] && !e.frozen[p] {
			e.transition(p, from, to)
			return
		}
	}
	e.tokensLost++
}

// Step executes one protocol period: every alive process runs the actions
// of its state, with all observations made against the period-start
// snapshot (transitions take effect for the next period, matching the
// analysis assumption that variables change continuously on period scale).
// A process transitions at most once per period; the first firing action
// wins.
//
// With Config.Shards > 1 the period runs on the sharded parallel path
// (stepSharded in shard.go); otherwise the original single-stream serial
// loop below runs, bit-identical to the pre-sharding engine.
func (e *Engine) Step() {
	if len(e.shards) > 1 {
		e.stepSharded()
		return
	}
	copy(e.snapshot, e.state)
	for k := range e.transitions {
		delete(e.transitions, k)
	}
	e.messages = 0
	e.tokensLost = 0
	for i := range e.tokenBuilt {
		e.tokenBuilt[i] = false
	}
	for p := range e.moved {
		e.moved[p] = false
	}

	for p := 0; p < e.cfg.N; p++ {
		si := e.snapshot[p]
		if si < 0 || e.frozen[p] {
			continue
		}
		for _, a := range e.actions[si] {
			if e.moved[p] && a.kind != core.Push && a.kind != core.Token {
				// Owner already transitioned this period; push/token
				// actions still run because they move other processes.
				continue
			}
			switch a.kind {
			case core.Flip:
				if e.rng.Float64() < a.coin {
					e.transition(p, si, a.to)
				}
			case core.Sample:
				ok := true
				for _, want := range a.samples {
					if e.sampleTarget(p) != want {
						ok = false
						break
					}
				}
				if ok && e.rng.Float64() < a.coin {
					e.transition(p, si, a.to)
				}
			case core.SampleAny:
				// All len(samples) contacts are attempted, as in the
				// paper's action (iii); the process fires if any target
				// matches.
				hit := false
				for _, want := range a.samples {
					if e.sampleTarget(p) == want {
						hit = true
					}
				}
				if hit && e.rng.Float64() < a.coin {
					e.transition(p, si, a.to)
				}
			case core.Push:
				for range a.samples {
					t, observed := e.samplePeer(p)
					if observed == a.from && e.state[t] == a.from && !e.moved[t] && !e.frozen[t] {
						if a.coin >= 1 || e.rng.Float64() < a.coin {
							e.transition(t, a.from, a.to)
						}
					}
				}
			case core.Token:
				ok := true
				for _, want := range a.samples {
					if e.sampleTarget(p) != want {
						ok = false
						break
					}
				}
				if ok && e.rng.Float64() < a.coin {
					e.deliverToken(e.rng, a.from, a.to)
				}
			}
		}
	}
	e.period++
}

// Run executes the given number of periods.
func (e *Engine) Run(periods int) {
	for i := 0; i < periods; i++ {
		e.Step()
	}
}

// Rand exposes the engine's random source for experiment drivers that need
// auxiliary randomness (e.g. churn schedules) reproducible from the same
// seed.
func (e *Engine) Rand() *rand.Rand { return e.rng }
