package sim

import (
	"math"
	"reflect"
	"runtime"
	"testing"

	"odeproto/internal/core"
	"odeproto/internal/ode"
)

// shardTrajectory runs the endemic protocol for `periods` periods at the
// given shard/worker configuration and returns the per-period count
// vectors (in state order) — the byte-comparable execution trace.
func shardTrajectory(t *testing.T, shards, workers, periods int) [][]int {
	t.Helper()
	e, err := New(Config{
		N:            1200,
		Protocol:     endemicProto(t, 4, 0.5, 0.5), // equilibrium keeps every state populated
		Initial:      map[ode.Var]int{"x": 1000, "y": 150, "z": 50},
		Seed:         2004,
		Shards:       shards,
		ShardWorkers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]int, periods)
	for i := 0; i < periods; i++ {
		e.Step()
		row := make([]int, 0, 3)
		for _, s := range []ode.Var{"x", "y", "z"} {
			row = append(row, e.Count(s))
		}
		out[i] = row
	}
	return out
}

func TestShardValidation(t *testing.T) {
	proto := epidemicProto(t)
	if _, err := New(Config{N: 10, Protocol: proto, Initial: map[ode.Var]int{"x": 9, "y": 1}, Shards: -1}); err == nil {
		t.Fatal("negative shard count accepted")
	}
	if _, err := New(Config{N: 10, Protocol: proto, Initial: map[ode.Var]int{"x": 9, "y": 1}, Shards: 11}); err == nil {
		t.Fatal("shard count above N accepted")
	}
}

// TestShardedK1IsSerial: Shards = 1 must be bit-identical to the default
// (Shards = 0) single-stream engine — the pinned-figure compatibility
// contract.
func TestShardedK1IsSerial(t *testing.T) {
	serial := shardTrajectory(t, 0, 0, 60)
	k1 := shardTrajectory(t, 1, 0, 60)
	if !reflect.DeepEqual(serial, k1) {
		t.Fatal("Shards = 1 diverged from the serial engine")
	}
}

// TestShardedWorkerCountIndependence: for a fixed K the trajectory must be
// byte-identical at every worker-pool size — the determinism contract the
// harness Sweep gives jobs, extended into the engine.
func TestShardedWorkerCountIndependence(t *testing.T) {
	reference := shardTrajectory(t, 4, 1, 60)
	for _, workers := range []int{2, 3, 4, runtime.GOMAXPROCS(0)} {
		if got := shardTrajectory(t, 4, workers, 60); !reflect.DeepEqual(got, reference) {
			t.Fatalf("K=4 trajectory differs at %d workers", workers)
		}
	}
}

// TestShardedGoldenK4 pins the K = 4 stream so accidental changes to the
// shard seed derivation, partitioning, or barrier order are caught — the
// sharded analogue of the pinned Figure-2 determinism tests.
func TestShardedGoldenK4(t *testing.T) {
	got := shardTrajectory(t, 4, 0, 60)
	want := map[int][]int{ // period -> {x, y, z} counts
		0:  {874, 260, 66},
		29: {151, 539, 510},
		59: {152, 528, 520},
	}
	for period, counts := range want {
		if !reflect.DeepEqual(got[period], counts) {
			t.Fatalf("K=4 golden mismatch at period %d: got %v, want %v", period, got[period], counts)
		}
	}
}

// TestShardedDriftMatchesMeanField: the sharded engine simulates the same
// protocol — one-period transition counts from a fixed configuration still
// match N·(expected flow) within sampling noise at K = 8.
func TestShardedDriftMatchesMeanField(t *testing.T) {
	const n = 200000
	proto := endemicProto(t, 4, 1.0, 0.01)
	initial := map[ode.Var]int{"x": n / 2, "y": n * 3 / 10, "z": n / 5}
	e, err := New(Config{N: n, Protocol: proto, Initial: initial, Seed: 99, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	point := e.Fractions()
	e.Step()
	trans := e.TransitionsLastPeriod()
	for _, a := range proto.Actions {
		want := float64(n) * point[a.Owner] * a.FireProbability(point)
		got := float64(trans[[2]ode.Var{a.From, a.To}])
		sigma := math.Sqrt(want * (1 - a.FireProbability(point)))
		if math.Abs(got-want) > 6*sigma+1 {
			t.Fatalf("edge %s->%s: got %v transitions, want %v ± %v", a.From, a.To, got, want, 6*sigma)
		}
	}
}

// TestShardedConservationUnderStress: counts always sum to alive across
// sharded periods interleaved with kills, revives, pushes, and the
// cross-shard intent machinery.
func TestShardedConservationUnderStress(t *testing.T) {
	proto := endemicProto(t, 4, 1, 0.01)
	proto.Actions = append(proto.Actions, core.Action{
		Kind: core.Push, Owner: "y", From: "x", To: "y", Coin: 1,
		Samples: []ode.Var{"x", "x"},
	})
	e, err := New(Config{
		N:        5000,
		Protocol: proto,
		Initial:  map[ode.Var]int{"x": 4000, "y": 900, "z": 100},
		Seed:     8,
		Shards:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := e.Rand()
	for i := 0; i < 100; i++ {
		e.Step()
		if i%10 == 3 {
			e.KillFraction(0.05)
		}
		if i%10 == 7 {
			for p := 0; p < e.N(); p++ {
				if e.StateOf(p) == Down && rng.Float64() < 0.5 {
					if err := e.Revive(p, "x"); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		total := 0
		for _, c := range e.Counts() {
			total += c
		}
		if total != e.Alive() {
			t.Fatalf("period %d: counts sum %d != alive %d", i, total, e.Alive())
		}
	}
}

// TestShardedCrossShardPush: with the pushing state confined to one shard
// and its targets to another (the engine lays processes out in state
// order), every landing push crosses a shard boundary through the barrier
// intent queue.
func TestShardedCrossShardPush(t *testing.T) {
	proto := epidemicProto(t)
	// Strip the sampling action and push from y into x instead, so all
	// conversions go through Push.
	proto.Actions = []core.Action{{
		Kind: core.Push, Owner: "y", From: "x", To: "y", Coin: 1,
		Samples: []ode.Var{"x"},
	}}
	e, err := New(Config{
		N:        1000,
		Protocol: proto,
		Initial:  map[ode.Var]int{"x": 500, "y": 500}, // x = procs 0..499, y = 500..999
		Seed:     13,
		Shards:   2, // shard 0 owns all of x, shard 1 all of y
	})
	if err != nil {
		t.Fatal(err)
	}
	var hooked int
	e.cfg.OnTransition = func(proc int, from, to ode.Var, period int) {
		if proc >= 500 {
			t.Errorf("push moved process %d, which never held state x", proc)
		}
		hooked++
	}
	e.Step()
	moved := e.TransitionsLastPeriod()[[2]ode.Var{"x", "y"}]
	if moved == 0 {
		t.Fatal("no cross-shard pushes landed")
	}
	if hooked != moved {
		t.Fatalf("hooks fired %d times, transitions %d", hooked, moved)
	}
	if e.Count("x")+e.Count("y") != 1000 {
		t.Fatalf("conservation broken: %v", e.Counts())
	}
}

// TestShardedTokenDelivery: tokens resolve at the barrier from a dedicated
// stream; drift still matches the mean field and nothing is lost while
// targets are plentiful.
func TestShardedTokenDelivery(t *testing.T) {
	const n = 100000
	proto := mustTranslate(t, "x' = -y^2\ny' = y^2", nil, core.Options{})
	e, err := New(Config{
		N:        n,
		Protocol: proto,
		Initial:  map[ode.Var]int{"x": n / 2, "y": n / 2},
		Seed:     17,
		Shards:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	point := e.Fractions()
	e.Step()
	got := float64(e.TransitionsLastPeriod()[[2]ode.Var{"x", "y"}])
	want := float64(n) * proto.P * point["y"] * point["y"]
	sigma := math.Sqrt(want)
	if math.Abs(got-want) > 8*sigma+1 {
		t.Fatalf("sharded token drift %v, want %v", got, want)
	}
	if e.TokensLostLastPeriod() != 0 {
		t.Fatalf("tokens lost with plentiful targets: %d", e.TokensLostLastPeriod())
	}
}

// TestShardedMillionProcessSmoke drives the sharded engine at the paper's
// beyond-evaluation scale (the §5 evaluation tops out at 100,000 hosts):
// one million processes, four shards, conserving counts every period.
func TestShardedMillionProcessSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("million-process smoke test skipped in -short mode")
	}
	const n = 1_000_000
	proto := endemicProto(t, 2, 0.1, 0.001)
	e, err := New(Config{
		N:        n,
		Protocol: proto,
		Initial:  map[ode.Var]int{"x": n - n/10, "y": n / 10, "z": 0},
		Seed:     1,
		Shards:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		e.Step()
		total := 0
		for _, c := range e.Counts() {
			total += c
		}
		if total != e.Alive() || total != n {
			t.Fatalf("period %d: counts sum %d, alive %d, want %d", i, total, e.Alive(), n)
		}
	}
	if len(e.TransitionsLastPeriod()) == 0 {
		t.Fatal("no transitions at million-process scale")
	}
}
