package sim

import (
	"math"
	"testing"

	"odeproto/internal/core"
	"odeproto/internal/ode"
)

func mustTranslate(t *testing.T, src string, params map[string]float64, opts core.Options) *core.Protocol {
	t.Helper()
	sys, err := ode.Parse(src, params)
	if err != nil {
		t.Fatal(err)
	}
	proto, err := core.Translate(sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	return proto
}

func epidemicProto(t *testing.T) *core.Protocol {
	return mustTranslate(t, "x' = -x*y\ny' = x*y", nil, core.Options{})
}

func endemicProto(t *testing.T, beta, gamma, alpha float64) *core.Protocol {
	return mustTranslate(t, `
x' = -beta*x*y + alpha*z
y' = beta*x*y - gamma*y
z' = gamma*y - alpha*z
`, map[string]float64{"beta": beta, "gamma": gamma, "alpha": alpha}, core.Options{})
}

func TestNewValidation(t *testing.T) {
	proto := epidemicProto(t)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"tiny group", Config{N: 1, Protocol: proto, Initial: map[ode.Var]int{"x": 1}}},
		{"nil protocol", Config{N: 10}},
		{"bad counts", Config{N: 10, Protocol: proto, Initial: map[ode.Var]int{"x": 3, "y": 3}}},
		{"unknown state", Config{N: 10, Protocol: proto, Initial: map[ode.Var]int{"x": 9, "q": 1}}},
		{"negative count", Config{N: 10, Protocol: proto, Initial: map[ode.Var]int{"x": 11, "y": -1}}},
		{"bad loss", Config{N: 10, Protocol: proto, Initial: map[ode.Var]int{"x": 9, "y": 1}, MessageLoss: 1.0}},
		{"bad down", Config{N: 10, Protocol: proto, Initial: map[ode.Var]int{"x": 9, "y": 1}, InitiallyDown: 10}},
	}
	for _, tc := range cases {
		if _, err := New(tc.cfg); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

// TestSingleProcessGroupRejected pins the N < 2 rejection: pickPeer draws
// rng.Intn(N-1), which panics at N = 1, so New must refuse the config with
// a clear error instead of handing back an engine that panics on Step.
func TestSingleProcessGroupRejected(t *testing.T) {
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("New(N=1) panicked: %v", r)
		}
	}()
	for _, n := range []int{0, 1} {
		e, err := New(Config{N: n, Protocol: epidemicProto(t), Initial: map[ode.Var]int{"x": n}})
		if err == nil {
			e.Step() // would panic in pickPeer if New let N=1 through
			t.Fatalf("New accepted group size %d", n)
		}
		if n == 1 && err.Error() != "sim: group size 1 too small (peer sampling needs N >= 2)" {
			t.Fatalf("unhelpful rejection: %v", err)
		}
	}
}

func TestInitialLayout(t *testing.T) {
	e, err := New(Config{
		N:        100,
		Protocol: epidemicProto(t),
		Initial:  map[ode.Var]int{"x": 70, "y": 30},
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if e.Count("x") != 70 || e.Count("y") != 30 || e.Alive() != 100 {
		t.Fatalf("counts = %v alive = %d", e.Counts(), e.Alive())
	}
	fr := e.Fractions()
	if math.Abs(fr["x"]-0.7) > 1e-12 {
		t.Fatalf("fractions = %v", fr)
	}
}

func TestEpidemicInfectsEveryone(t *testing.T) {
	const n = 2000
	e, err := New(Config{
		N:        n,
		Protocol: epidemicProto(t),
		Initial:  map[ode.Var]int{"x": n - 1, "y": 1},
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	rounds := 0
	for e.Count("x") > 0 && rounds < 200 {
		e.Step()
		rounds++
	}
	if e.Count("x") != 0 {
		t.Fatalf("epidemic did not complete after %d rounds (x = %d)", rounds, e.Count("x"))
	}
	// O(log N) rounds: log2(2000) ≈ 11; allow generous slack for the tail.
	if rounds > 60 {
		t.Fatalf("epidemic took %d rounds, want O(log N)", rounds)
	}
}

// TestOnePeriodDriftMatchesMeanField is the statistical half of the
// Theorem 1 check: transition counts over a single period from a fixed
// configuration match N·(expected flow) within sampling noise.
func TestOnePeriodDriftMatchesMeanField(t *testing.T) {
	const n = 200000
	proto := endemicProto(t, 4, 1.0, 0.01)
	initial := map[ode.Var]int{"x": n / 2, "y": n * 3 / 10, "z": n / 5}
	e, err := New(Config{N: n, Protocol: proto, Initial: initial, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	point := e.Fractions()
	e.Step()
	trans := e.TransitionsLastPeriod()

	for _, a := range proto.Actions {
		want := float64(n) * point[a.Owner] * a.FireProbability(point)
		got := float64(trans[[2]ode.Var{a.From, a.To}])
		// 6-sigma binomial tolerance.
		sigma := math.Sqrt(want * (1 - a.FireProbability(point)))
		if math.Abs(got-want) > 6*sigma+1 {
			t.Fatalf("edge %s->%s: got %v transitions, want %v ± %v", a.From, a.To, got, want, 6*sigma)
		}
	}
}

// TestEndemicEquilibriumMatchesAnalysis runs the protocol to steady state
// and compares the time-averaged stash population with the closed-form
// equilibrium (2) — the Figure 7 experiment at small scale.
func TestEndemicEquilibriumMatchesAnalysis(t *testing.T) {
	const n = 20000
	beta, gamma, alpha := 2.0, 0.1, 0.001
	proto := endemicProto(t, beta, gamma, alpha)
	e, err := New(Config{
		N:        n,
		Protocol: proto,
		Initial:  map[ode.Var]int{"x": n - n/10, "y": n / 10, "z": 0},
		Seed:     12345,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Equilibrium fractions.
	yInf := (1 - gamma/beta) / (1 + gamma/alpha)
	xInf := gamma / beta
	// Warm up, then time-average. The protocol time scale is p, so
	// relaxation takes ~1/(p·rate) periods.
	e.Run(4000)
	var ySum, xSum float64
	const samples = 2000
	for i := 0; i < samples; i++ {
		e.Step()
		ySum += float64(e.Count("y"))
		xSum += float64(e.Count("x"))
	}
	yAvg := ySum / samples
	xAvg := xSum / samples
	if math.Abs(yAvg-float64(n)*yInf) > 0.15*float64(n)*yInf {
		t.Fatalf("stash average %v, analysis %v", yAvg, float64(n)*yInf)
	}
	if math.Abs(xAvg-float64(n)*xInf) > 0.15*float64(n)*xInf {
		t.Fatalf("receptive average %v, analysis %v", xAvg, float64(n)*xInf)
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() *Engine {
		e, err := New(Config{
			N:        500,
			Protocol: endemicProto(t, 4, 1, 0.01),
			Initial:  map[ode.Var]int{"x": 400, "y": 100, "z": 0},
			Seed:     42,
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	a, b := mk(), mk()
	for i := 0; i < 50; i++ {
		a.Step()
		b.Step()
		for s, c := range a.Counts() {
			if b.Count(s) != c {
				t.Fatalf("diverged at period %d state %s", i, s)
			}
		}
	}
}

func TestKillFraction(t *testing.T) {
	e, err := New(Config{
		N:        10000,
		Protocol: epidemicProto(t),
		Initial:  map[ode.Var]int{"x": 5000, "y": 5000},
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	killed := e.KillFraction(0.5)
	if killed != 5000 {
		t.Fatalf("killed %d, want 5000", killed)
	}
	if e.Alive() != 5000 {
		t.Fatalf("alive = %d", e.Alive())
	}
	total := 0
	for _, c := range e.Counts() {
		total += c
	}
	if total != 5000 {
		t.Fatalf("state counts sum to %d after kill", total)
	}
	// Roughly half of each state should be gone (binomial, not exact).
	if e.Count("x") < 2200 || e.Count("x") > 2800 {
		t.Fatalf("x after 50%% kill = %d, want ≈ 2500", e.Count("x"))
	}
}

// TestKillFractionRoundsToNearest: the kill target is frac·alive rounded
// to nearest, not truncated — with 101 alive, "kill 50%" kills 51, as the
// figure captions imply, instead of the 50 truncation produced.
func TestKillFractionRoundsToNearest(t *testing.T) {
	mk := func(n int) *Engine {
		e, err := New(Config{
			N:        n,
			Protocol: epidemicProto(t),
			Initial:  map[ode.Var]int{"x": n, "y": 0},
			Seed:     3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	cases := []struct {
		alive  int
		frac   float64
		killed int
	}{
		{101, 0.5, 51},
		{100, 0.5, 50},
		{999, 0.1, 100}, // 99.9 rounds up
		{1001, 0.1, 100},
		{3, 0.5, 2}, // 1.5 rounds away from zero
	}
	for _, tc := range cases {
		e := mk(tc.alive)
		if got := e.KillFraction(tc.frac); got != tc.killed {
			t.Errorf("KillFraction(%v) of %d alive killed %d, want %d", tc.frac, tc.alive, got, tc.killed)
		} else if e.Alive() != tc.alive-tc.killed {
			t.Errorf("alive = %d after killing %d of %d", e.Alive(), tc.killed, tc.alive)
		}
	}
}

func TestKillAndReviveRoundTrip(t *testing.T) {
	e, err := New(Config{
		N:        100,
		Protocol: epidemicProto(t),
		Initial:  map[ode.Var]int{"x": 100, "y": 0},
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Kill(7)
	e.Kill(7) // idempotent
	if e.Alive() != 99 || e.StateOf(7) != Down {
		t.Fatalf("kill bookkeeping wrong: alive=%d state=%q", e.Alive(), e.StateOf(7))
	}
	if err := e.Revive(7, "y"); err != nil {
		t.Fatal(err)
	}
	if e.StateOf(7) != "y" || e.Count("y") != 1 || e.Alive() != 100 {
		t.Fatalf("revive bookkeeping wrong")
	}
	if err := e.Revive(7, "y"); err == nil {
		t.Fatal("expected error reviving alive process")
	}
}

func TestInitiallyDownAndOpenGroupJoin(t *testing.T) {
	// Open group: 100 members, 50 more join later.
	e, err := New(Config{
		N:             150,
		Protocol:      epidemicProto(t),
		Initial:       map[ode.Var]int{"x": 50, "y": 50},
		InitiallyDown: 50,
		Seed:          11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if e.Alive() != 100 {
		t.Fatalf("alive = %d, want 100", e.Alive())
	}
	for p := 100; p < 150; p++ {
		if e.StateOf(p) != Down {
			t.Fatalf("process %d should start down", p)
		}
		if err := e.Revive(p, "x"); err != nil {
			t.Fatal(err)
		}
	}
	if e.Alive() != 150 || e.Count("x") != 100 {
		t.Fatalf("join bookkeeping wrong: alive=%d x=%d", e.Alive(), e.Count("x"))
	}
	// New joiners get infected too.
	e.Run(100)
	if e.Count("y") != 150 {
		t.Fatalf("open group did not converge: %v", e.Counts())
	}
}

// TestCrashedContactsAreFruitless reproduces the paper's observation in
// Figure 5: contacts directed at crashed hosts never match, halving the
// effective contact rate after a 50% massive failure.
func TestCrashedContactsAreFruitless(t *testing.T) {
	const n = 100000
	proto := epidemicProto(t)
	e, err := New(Config{
		N:        n,
		Protocol: proto,
		Initial:  map[ode.Var]int{"x": n / 2, "y": n / 2},
		Seed:     21,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.KillFraction(0.5)
	aliveX := e.Count("x")
	aliveY := e.Count("y")
	e.Step()
	got := float64(e.TransitionsLastPeriod()[[2]ode.Var{"x", "y"}])
	// Each alive x contacts one uniform process; P(observe y) counts only
	// alive y relative to the full population: ≈ (N/4)/N = 0.25.
	want := float64(aliveX) * float64(aliveY) / float64(n)
	sigma := math.Sqrt(want)
	if math.Abs(got-want) > 8*sigma+1 {
		t.Fatalf("post-failure conversions %v, want ≈ %v", got, want)
	}
}

// TestMessageLossCompensation: with loss f and §3 compensation the drift
// still matches p·f̄; without compensation it is depressed by (1−f).
func TestMessageLossCompensation(t *testing.T) {
	const n = 200000
	const f = 0.3
	sys := "x' = -x*y\ny' = x*y"
	comp := mustTranslate(t, sys, nil, core.Options{FailureRate: f})
	e, err := New(Config{
		N:           n,
		Protocol:    comp,
		Initial:     map[ode.Var]int{"x": n / 2, "y": n / 2},
		Seed:        31,
		MessageLoss: f,
	})
	if err != nil {
		t.Fatal(err)
	}
	point := e.Fractions()
	e.Step()
	got := float64(e.TransitionsLastPeriod()[[2]ode.Var{"x", "y"}])
	want := float64(n) * comp.P * point["x"] * point["y"]
	sigma := math.Sqrt(want)
	if math.Abs(got-want) > 8*sigma+1 {
		t.Fatalf("compensated drift %v, want %v ± %v", got, want, 6*sigma)
	}
}

func TestMessagesPerPeriod(t *testing.T) {
	const n = 1000
	e, err := New(Config{
		N:        n,
		Protocol: epidemicProto(t),
		Initial:  map[ode.Var]int{"x": 600, "y": 400},
		Seed:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Step()
	// Every susceptible sends exactly one sampling message; infectives
	// send none. Converted processes still sent their message first.
	if got := e.MessagesLastPeriod(); got != 600 {
		t.Fatalf("messages = %d, want 600", got)
	}
}

// TestTokenDirectedDelivery: token protocol x' = -y^2, y' = y^2 drains x
// through tokens and the mean-field drift matches.
func TestTokenDirectedDelivery(t *testing.T) {
	const n = 100000
	proto := mustTranslate(t, "x' = -y^2\ny' = y^2", nil, core.Options{})
	e, err := New(Config{
		N:        n,
		Protocol: proto,
		Initial:  map[ode.Var]int{"x": n / 2, "y": n / 2},
		Seed:     17,
	})
	if err != nil {
		t.Fatal(err)
	}
	point := e.Fractions()
	e.Step()
	got := float64(e.TransitionsLastPeriod()[[2]ode.Var{"x", "y"}])
	want := float64(n) * proto.P * point["y"] * point["y"]
	sigma := math.Sqrt(want)
	if math.Abs(got-want) > 8*sigma+1 {
		t.Fatalf("token drift %v, want %v", got, want)
	}
	if e.TokensLostLastPeriod() != 0 {
		t.Fatalf("tokens lost with plentiful targets: %d", e.TokensLostLastPeriod())
	}
}

func TestTokenDroppedWithoutTargets(t *testing.T) {
	const n = 1000
	proto := mustTranslate(t, "x' = -y^2\ny' = y^2", nil, core.Options{})
	e, err := New(Config{
		N:        n,
		Protocol: proto,
		Initial:  map[ode.Var]int{"x": 0, "y": n}, // nobody in x
		Seed:     19,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Step()
	if e.TokensLostLastPeriod() == 0 {
		t.Fatal("expected dropped tokens with empty target state")
	}
	if e.Count("y") != n {
		t.Fatalf("counts changed despite empty target: %v", e.Counts())
	}
}

// TestTokenCannotMoveFrozenProcess: directed delivery filters frozen
// processes when the per-period candidate pool is built AND when the pool
// is consumed. A process frozen after the pool was built — here by an
// OnTransition hook firing mid-period — must not be moved by later tokens
// of the same period.
func TestTokenCannotMoveFrozenProcess(t *testing.T) {
	const n = 2000
	proto := mustTranslate(t, "x' = -y^2\ny' = y^2", nil, core.Options{})
	var e *Engine
	var frozen []int
	froze := false
	cfg := Config{
		N:        n,
		Protocol: proto,
		Initial:  map[ode.Var]int{"x": n / 2, "y": n / 2},
		Seed:     37,
		OnTransition: func(proc int, from, to ode.Var, period int) {
			if froze {
				return
			}
			// First token of the period landed (and built the candidate
			// pool); freeze everything still in x so the stale pool is full
			// of now-frozen processes.
			froze = true
			for p := 0; p < n; p++ {
				if e.StateOf(p) == "x" && p != proc {
					e.Freeze(p)
					frozen = append(frozen, p)
				}
			}
		},
	}
	var err error
	e, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Step()
	if !froze {
		t.Fatal("no token delivered; the scenario never armed")
	}
	for _, p := range frozen {
		if e.StateOf(p) != "x" {
			t.Fatalf("token moved frozen process %d to %q", p, e.StateOf(p))
		}
	}
}

// TestTokenRandomWalkTTL: with a TTL-bounded random walk, tokens still
// deliver when targets are plentiful, and expire when targets are rare
// (§6 "Limitations of Tokenizing").
func TestTokenRandomWalkTTL(t *testing.T) {
	const n = 10000
	proto := mustTranslate(t, "x' = -y^2\ny' = y^2", nil, core.Options{})
	plentiful, err := New(Config{
		N:        n,
		Protocol: proto,
		Initial:  map[ode.Var]int{"x": n / 2, "y": n / 2},
		Seed:     23,
		TokenTTL: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	plentiful.Step()
	moved := plentiful.TransitionsLastPeriod()[[2]ode.Var{"x", "y"}]
	if moved == 0 {
		t.Fatal("random-walk tokens never delivered")
	}
	scarce, err := New(Config{
		N:        n,
		Protocol: proto,
		Initial:  map[ode.Var]int{"x": 1, "y": n - 1},
		Seed:     29,
		TokenTTL: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	scarce.Run(3)
	if scarce.TokensLostLastPeriod() == 0 {
		t.Fatal("expected TTL expiries with scarce targets")
	}
}

func TestTransitionHook(t *testing.T) {
	var hooked int
	e, err := New(Config{
		N:        1000,
		Protocol: epidemicProto(t),
		Initial:  map[ode.Var]int{"x": 500, "y": 500},
		Seed:     4,
		OnTransition: func(proc int, from, to ode.Var, period int) {
			if from != "x" || to != "y" {
				t.Errorf("unexpected transition %s->%s", from, to)
			}
			hooked++
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Step()
	if hooked != e.TransitionsLastPeriod()[[2]ode.Var{"x", "y"}] {
		t.Fatalf("hook fired %d times, transitions %d", hooked, e.TransitionsLastPeriod()[[2]ode.Var{"x", "y"}])
	}
	if hooked == 0 {
		t.Fatal("no transitions at all")
	}
}

func TestProcessesIn(t *testing.T) {
	e, err := New(Config{
		N:        10,
		Protocol: epidemicProto(t),
		Initial:  map[ode.Var]int{"x": 4, "y": 6},
		Seed:     6,
	})
	if err != nil {
		t.Fatal(err)
	}
	xs := e.ProcessesIn("x")
	if len(xs) != 4 {
		t.Fatalf("ProcessesIn(x) = %v", xs)
	}
	if got := e.ProcessesIn("nope"); got != nil {
		t.Fatalf("unknown state should give nil, got %v", got)
	}
}

// TestConservationUnderStress: counts always sum to alive, across steps,
// kills and revives, with a push-augmented protocol.
func TestConservationUnderStress(t *testing.T) {
	proto := endemicProto(t, 4, 1, 0.01)
	proto.Actions = append(proto.Actions, core.Action{
		Kind: core.Push, Owner: "y", From: "x", To: "y", Coin: 1,
		Samples: []ode.Var{"x", "x"},
	})
	e, err := New(Config{
		N:        5000,
		Protocol: proto,
		Initial:  map[ode.Var]int{"x": 4000, "y": 900, "z": 100},
		Seed:     8,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := e.Rand()
	for i := 0; i < 100; i++ {
		e.Step()
		if i%10 == 3 {
			e.KillFraction(0.05)
		}
		if i%10 == 7 {
			for p := 0; p < e.N(); p++ {
				if e.StateOf(p) == Down && rng.Float64() < 0.5 {
					if err := e.Revive(p, "x"); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		total := 0
		for _, c := range e.Counts() {
			total += c
		}
		if total != e.Alive() {
			t.Fatalf("period %d: counts sum %d != alive %d", i, total, e.Alive())
		}
	}
}

// TestValidationErrorDeterministic pins that New validates Initial in
// sorted-key order: with several bad entries, the error always names the
// lexicographically first one instead of whichever map iteration
// surfaces first.
func TestValidationErrorDeterministic(t *testing.T) {
	proto := epidemicProto(t)
	want := `sim: initial state "q" not in protocol`
	for i := 0; i < 50; i++ {
		cfg := Config{N: 10, Protocol: proto, Initial: map[ode.Var]int{"x": 8, "w": 1, "q": 1}}
		_, err := New(cfg)
		if err == nil || err.Error() != want {
			t.Fatalf("run %d: err = %v, want %q", i, err, want)
		}
	}
}
