package sim

import (
	"math"
	"testing"

	"odeproto/internal/ode"
)

func TestViewSizeValidation(t *testing.T) {
	proto := epidemicProto(t)
	if _, err := New(Config{
		N: 10, Protocol: proto,
		Initial:  map[ode.Var]int{"x": 9, "y": 1},
		ViewSize: 10,
	}); err == nil {
		t.Fatal("view size == N accepted")
	}
}

func TestViewsExcludeSelfAndAreDistinct(t *testing.T) {
	const n, k = 200, 8
	e, err := New(Config{
		N: n, Protocol: epidemicProto(t),
		Initial:  map[ode.Var]int{"x": n - 1, "y": 1},
		ViewSize: k,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < n; p++ {
		seen := map[int32]bool{}
		for i := 0; i < k; i++ {
			v := e.views[p*k+i]
			if int(v) == p {
				t.Fatalf("process %d has itself in its view", p)
			}
			if seen[v] {
				t.Fatalf("process %d has duplicate view entry %d", p, v)
			}
			seen[v] = true
		}
	}
}

// TestEpidemicCompletesWithLogarithmicViews: the paper's footnote 1 — a
// view of size O(log N) suffices for the epidemic to reach everyone.
func TestEpidemicCompletesWithLogarithmicViews(t *testing.T) {
	const n = 4000
	k := int(2*math.Log2(n)) + 1 // ≈ 25
	e, err := New(Config{
		N: n, Protocol: epidemicProto(t),
		Initial:  map[ode.Var]int{"x": n - 1, "y": 1},
		ViewSize: k,
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	rounds := 0
	for e.Count("x") > 0 && rounds < 300 {
		e.Step()
		rounds++
	}
	if e.Count("x") != 0 {
		t.Fatalf("epidemic stalled with view size %d: %d susceptibles left", k, e.Count("x"))
	}
	if rounds > 80 {
		t.Fatalf("epidemic with log views took %d rounds; expected O(log N)", rounds)
	}
}

// TestEndemicEquilibriumWithPartialViews: the endemic equilibrium is
// preserved under O(log N) views (uniform random views keep contact
// sampling unbiased in expectation).
func TestEndemicEquilibriumWithPartialViews(t *testing.T) {
	const n = 10000
	beta, gamma, alpha := 4.0, 0.1, 0.01
	proto := endemicProto(t, beta, gamma, alpha)
	yInf := (1 - gamma/beta) / (1 + gamma/alpha)
	e, err := New(Config{
		N: n, Protocol: proto,
		Initial:  map[ode.Var]int{"x": n - n/10, "y": n / 10, "z": 0},
		ViewSize: 27, // ~2·log2(10000)
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(3000)
	var sum float64
	const samples = 1000
	for i := 0; i < samples; i++ {
		e.Step()
		sum += float64(e.Count("y"))
	}
	avg := sum / samples
	want := yInf * n
	if math.Abs(avg-want) > 0.2*want {
		t.Fatalf("stash average %v with partial views, analysis %v", avg, want)
	}
}

// TestTinyViewsBreakConnectivity: with a view of size 1 the random graph
// is far below the connectivity threshold, so some susceptibles are never
// reachable — the footnote's log N bound is tight in kind.
func TestTinyViewsBreakConnectivity(t *testing.T) {
	const n = 2000
	e, err := New(Config{
		N: n, Protocol: epidemicProto(t),
		Initial:  map[ode.Var]int{"x": n - 1, "y": 1},
		ViewSize: 1,
		Seed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(500)
	if e.Count("x") == 0 {
		t.Fatal("size-1 views unexpectedly infected everyone; connectivity reasoning broken")
	}
}
