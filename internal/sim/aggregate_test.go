package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"odeproto/internal/core"
	"odeproto/internal/ode"
)

func TestBinomialMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		n int
		p float64
	}{
		{10, 0.3},      // exact path
		{500, 0.01},    // exact path
		{100000, 0.4},  // normal path
		{100000, 1e-4}, // Poisson path
		{5000, 0.9},    // complement path
	}
	for _, tc := range cases {
		const draws = 3000
		var sum, sumSq float64
		for i := 0; i < draws; i++ {
			k := Binomial(rng, tc.n, tc.p)
			if k < 0 || k > tc.n {
				t.Fatalf("Binomial(%d, %v) = %d out of range", tc.n, tc.p, k)
			}
			sum += float64(k)
			sumSq += float64(k) * float64(k)
		}
		mean := sum / draws
		wantMean := float64(tc.n) * tc.p
		wantStd := math.Sqrt(wantMean * (1 - tc.p))
		tol := 5 * wantStd / math.Sqrt(draws) * 2
		if tol < 0.1 {
			tol = 0.1
		}
		if math.Abs(mean-wantMean) > tol+0.02*wantMean {
			t.Fatalf("Binomial(%d,%v): mean %v, want %v", tc.n, tc.p, mean, wantMean)
		}
	}
}

func TestBinomialEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if Binomial(rng, 0, 0.5) != 0 {
		t.Fatal("n=0 must give 0")
	}
	if Binomial(rng, 10, 0) != 0 {
		t.Fatal("p=0 must give 0")
	}
	if Binomial(rng, 10, 1) != 10 {
		t.Fatal("p=1 must give n")
	}
	if Binomial(rng, -5, 0.5) != 0 {
		t.Fatal("negative n must give 0")
	}
}

func TestBinomialRangeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(n uint16, pRaw uint16) bool {
		p := float64(pRaw) / 65535
		k := Binomial(rng, int(n), p)
		return k >= 0 && k <= int(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPoissonMean(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, mean := range []float64{0.5, 5, 40, 200} {
		const draws = 5000
		var sum float64
		for i := 0; i < draws; i++ {
			sum += float64(Poisson(rng, mean))
		}
		got := sum / draws
		if math.Abs(got-mean) > 0.1*mean+0.1 {
			t.Fatalf("Poisson(%v) mean = %v", mean, got)
		}
	}
}

func TestAggregateValidation(t *testing.T) {
	proto := epidemicProto(t)
	if _, err := NewAggregate(nil, nil, 1, 0); err == nil {
		t.Fatal("nil protocol accepted")
	}
	if _, err := NewAggregate(proto, map[ode.Var]int{"x": -1}, 1, 0); err == nil {
		t.Fatal("negative count accepted")
	}
	if _, err := NewAggregate(proto, map[ode.Var]int{"x": 1}, 1, 1.5); err == nil {
		t.Fatal("bad loss accepted")
	}
}

func TestAggregateConservation(t *testing.T) {
	proto := endemicProto(t, 4, 1, 0.01)
	a, err := NewAggregate(proto, map[ode.Var]int{"x": 90000, "y": 9000, "z": 1000}, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		a.Step()
		if a.N() != 100000 {
			t.Fatalf("period %d: population %d, want 100000", i, a.N())
		}
	}
}

// TestAggregateMatchesAgent cross-validates the two engines: same endemic
// protocol, same initial condition — their steady-state stash populations
// must agree.
func TestAggregateMatchesAgent(t *testing.T) {
	const n = 20000
	beta, gamma, alpha := 2.0, 0.1, 0.001
	proto := endemicProto(t, beta, gamma, alpha)
	initial := map[ode.Var]int{"x": n - n/10, "y": n / 10, "z": 0}

	agent, err := New(Config{N: n, Protocol: proto, Initial: initial, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	agg, err := NewAggregate(proto, initial, 78, 0)
	if err != nil {
		t.Fatal(err)
	}
	agent.Run(4000)
	agg.Run(4000)
	avg := func(step func(), count func() int) float64 {
		var s float64
		for i := 0; i < 1000; i++ {
			step()
			s += float64(count())
		}
		return s / 1000
	}
	agentY := avg(agent.Step, func() int { return agent.Count("y") })
	aggY := avg(agg.Step, func() int { return agg.Count("y") })
	if math.Abs(agentY-aggY) > 0.15*agentY {
		t.Fatalf("agent stash %v vs aggregate %v", agentY, aggY)
	}
}

func TestAggregateKillFraction(t *testing.T) {
	proto := epidemicProto(t)
	a, err := NewAggregate(proto, map[ode.Var]int{"x": 5000, "y": 5000}, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	killed := a.KillFraction(0.5)
	if killed < 4500 || killed > 5500 {
		t.Fatalf("killed %d, want ≈ 5000", killed)
	}
	if a.Alive() != 10000-killed {
		t.Fatalf("alive %d after killing %d", a.Alive(), killed)
	}
	if a.N() != 10000 {
		t.Fatalf("total population %d, want 10000 (dead absorb contacts)", a.N())
	}
}

// TestAggregateCrashedAbsorbContacts: after a massive failure, conversions
// slow down because contacts hit dead processes.
func TestAggregateCrashedAbsorbContacts(t *testing.T) {
	proto := epidemicProto(t)
	mk := func() *Aggregate {
		a, err := NewAggregate(proto, map[ode.Var]int{"x": 50000, "y": 50000}, 9, 0)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	whole := mk()
	whole.Step()
	wholeConv := 50000 - whole.Count("x")

	halved := mk()
	halved.KillFraction(0.5)
	x0 := halved.Count("x")
	halved.Step()
	halvedConv := x0 - halved.Count("x")

	// Conversion probability halves (≈0.5 vs ≈0.25 per x-process).
	ratio := float64(wholeConv) / float64(x0) * float64(x0) / float64(halvedConv) / 2
	_ = ratio
	pWhole := float64(wholeConv) / 50000.0
	pHalved := float64(halvedConv) / float64(x0)
	if math.Abs(pWhole-0.5) > 0.03 {
		t.Fatalf("whole-group conversion prob %v, want ≈ 0.5", pWhole)
	}
	if math.Abs(pHalved-0.25) > 0.03 {
		t.Fatalf("post-failure conversion prob %v, want ≈ 0.25", pHalved)
	}
}

func TestAggregateCountsCopy(t *testing.T) {
	proto := epidemicProto(t)
	a, err := NewAggregate(proto, map[ode.Var]int{"x": 10, "y": 0}, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := a.Counts()
	c["x"] = 999
	if a.Count("x") != 10 {
		t.Fatal("Counts() exposed internal storage")
	}
}

// TestAggregateLVMajority: the aggregate engine reproduces LV majority
// convergence (competitive exclusion) at population scale.
func TestAggregateLVMajority(t *testing.T) {
	proto := mustTranslate(t, `
x' = 3*x*z - 3*x*y
y' = 3*y*z - 3*x*y
z' = -3*x*z - 3*y*z + 3*x*y + 3*x*y
`, nil, core.Options{P: 0.05})
	a, err := NewAggregate(proto, map[ode.Var]int{"x": 60000, "y": 40000, "z": 0}, 44, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1500 && a.Count("x") != a.Alive(); i++ {
		a.Step()
	}
	if a.Count("x") != a.Alive() {
		t.Fatalf("aggregate LV did not converge to majority: %v", a.Counts())
	}
}

// TestAggregateMessageLossSlowsEpidemic: the aggregate engine honours the
// per-contact loss probability.
func TestAggregateMessageLossSlowsEpidemic(t *testing.T) {
	proto := epidemicProto(t)
	clean, err := NewAggregate(proto, map[ode.Var]int{"x": 50000, "y": 50000}, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	lossy, err := NewAggregate(proto, map[ode.Var]int{"x": 50000, "y": 50000}, 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	clean.Step()
	lossy.Step()
	cleanConv := 50000 - clean.Count("x")
	lossyConv := 50000 - lossy.Count("x")
	ratio := float64(lossyConv) / float64(cleanConv)
	if math.Abs(ratio-0.5) > 0.1 {
		t.Fatalf("loss ratio %v, want ≈ 0.5", ratio)
	}
}
