package sim

import (
	"math"
	"math/rand"
)

// Binomial draws from Binomial(n, p). Small n uses exact Bernoulli
// sampling; large n with small mean uses a Poisson approximation; large n
// with a well-populated distribution uses a clamped normal approximation.
// The approximations are standard for population simulation (tau-leaping)
// and keep the aggregate engine O(#states) per period independent of N.
func Binomial(rng *rand.Rand, n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if p > 0.5 {
		return n - Binomial(rng, n, 1-p)
	}
	if n <= 1024 {
		k := 0
		for i := 0; i < n; i++ {
			if rng.Float64() < p {
				k++
			}
		}
		return k
	}
	mean := float64(n) * p
	variance := mean * (1 - p)
	if variance >= 30 {
		k := int(math.Round(rng.NormFloat64()*math.Sqrt(variance) + mean))
		if k < 0 {
			return 0
		}
		if k > n {
			return n
		}
		return k
	}
	// Small mean: Poisson approximation, clamped to n.
	k := Poisson(rng, mean)
	if k > n {
		return n
	}
	return k
}

// Poisson draws from Poisson(mean) using Knuth's product method for small
// means and a normal approximation for large means.
func Poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		k := int(math.Round(rng.NormFloat64()*math.Sqrt(mean) + mean))
		if k < 0 {
			return 0
		}
		return k
	}
	limit := math.Exp(-mean)
	k := 0
	prod := rng.Float64()
	for prod > limit {
		k++
		prod *= rng.Float64()
	}
	return k
}
