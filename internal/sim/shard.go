package sim

import (
	"math/rand"
	"runtime"
	"sync"

	"odeproto/internal/core"
	"odeproto/internal/mt19937"
	"odeproto/internal/ode"
)

// Sharded execution (Config.Shards = K > 1).
//
// The N processes are partitioned into K contiguous shards. Each shard
// owns a Mersenne Twister stream derived from (Config.Seed, shard index)
// with the same splitmix64 finalizer the harness uses for job seeds, so
// the K streams are decorrelated and depend only on the configuration —
// never on scheduling. A period then runs in two phases:
//
//  1. Action phase, parallel across a worker pool: every shard walks its
//     own processes against the shared period-start snapshot. Observations
//     (sampling contacts) read the snapshot, which is immutable during the
//     phase, so any process may be observed. Mutations are confined to
//     shard-owned memory: a shard writes state/moved only for its own
//     index range and accumulates counts, transition tallies, and message
//     counters in shard-local buffers. Effects that would cross a shard
//     boundary — a Push landing on another shard's process, or a token
//     (whose candidate pool spans the whole group) — are recorded as
//     intents instead of applied.
//
//  2. Barrier, serial: shard accumulators merge in shard order, buffered
//     cross-shard pushes are re-checked against the live state and
//     applied, and token intents are delivered by the ordinary oracle
//     (or TTL random walk) using a dedicated barrier stream, again in
//     shard order. OnTransition hooks recorded during the action phase
//     replay here, so user hooks always run on one goroutine.
//
// Because phase 1 shards touch disjoint memory and phase 2 is a fixed
// serial order, the result for a given (Seed, Shards) is byte-identical at
// any ShardWorkers value — the same contract harness.Sweep gives jobs.
//
// K > 1 is a slightly different (equally valid) simulation of the same
// protocol than the serial engine, not a reordering of it: intra-shard
// pushes see in-period state as before, while cross-shard pushes draw
// their coin against the snapshot and are applied at the barrier, and all
// tokens resolve at the barrier. Mean-field drift is unchanged; pinned
// expectations must be regenerated per K.

// shardState is one shard's private execution state and accumulators.
type shardState struct {
	lo, hi int // owned process range [lo, hi)
	rng    *rand.Rand

	countsDelta []int
	transitions map[[2]int16]int
	messages    int
	tokensLost  int

	pushes []pushIntent
	tokens []tokenIntent
	hooks  []hookEvent // recorded only when Config.OnTransition != nil
}

// pushIntent is a Push that fired against a process of another shard; the
// coin has already been drawn, eligibility is re-checked at the barrier.
type pushIntent struct {
	target   int
	from, to int16
}

// tokenIntent is a token action that fired; delivery (which needs the
// group-wide candidate pool) happens at the barrier.
type tokenIntent struct {
	from, to int16
}

type hookEvent struct {
	proc     int
	from, to int16
}

// deriveSeed is the splitmix64 finalizer the harness uses for job seeds
// (harness.DeriveSeed), duplicated here so the sim package stays free of a
// harness dependency while shard streams follow the same derivation.
func deriveSeed(base int64, idx int) int64 {
	z := uint64(base) + uint64(idx+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// initShards builds the K shard states, their derived RNG streams, and
// the barrier stream (derived with index K, one past the last shard).
func (e *Engine) initShards() {
	k := e.cfg.Shards
	size := (e.cfg.N + k - 1) / k
	e.shards = make([]shardState, k)
	for s := 0; s < k; s++ {
		lo := s * size
		if lo > e.cfg.N {
			lo = e.cfg.N
		}
		hi := lo + size
		if hi > e.cfg.N {
			hi = e.cfg.N
		}
		e.shards[s] = shardState{
			lo:          lo,
			hi:          hi,
			rng:         rand.New(mt19937.New(deriveSeed(e.cfg.Seed, s))),
			countsDelta: make([]int, len(e.states)),
			transitions: make(map[[2]int16]int),
		}
	}
	e.barrierRng = rand.New(mt19937.New(deriveSeed(e.cfg.Seed, k)))
	w := e.cfg.ShardWorkers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > k {
		w = k
	}
	e.shardWorkers = w
}

// stepSharded executes one protocol period on the sharded path.
func (e *Engine) stepSharded() {
	copy(e.snapshot, e.state)
	for k := range e.transitions {
		delete(e.transitions, k)
	}
	e.messages = 0
	e.tokensLost = 0
	for i := range e.tokenBuilt {
		e.tokenBuilt[i] = false
	}
	for p := range e.moved {
		e.moved[p] = false
	}

	// Phase 1: the action phase fans the shards across the worker pool.
	// Shards are independent, so which worker runs which shard (and in
	// what order) cannot affect the outcome.
	if e.shardWorkers <= 1 {
		for s := range e.shards {
			e.runShard(&e.shards[s])
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		wg.Add(e.shardWorkers)
		for w := 0; w < e.shardWorkers; w++ {
			go func() {
				defer wg.Done()
				for s := range idx {
					e.runShard(&e.shards[s])
				}
			}()
		}
		for s := range e.shards {
			idx <- s
		}
		close(idx)
		wg.Wait()
	}

	// Phase 2, barrier: merge shard accumulators and replay hooks in
	// shard order.
	for s := range e.shards {
		sh := &e.shards[s]
		for i, d := range sh.countsDelta {
			e.counts[i] += d
			sh.countsDelta[i] = 0
		}
		for key, c := range sh.transitions {
			e.transitions[[2]ode.Var{e.states[key[0]], e.states[key[1]]}] += c
			delete(sh.transitions, key)
		}
		e.messages += sh.messages
		e.tokensLost += sh.tokensLost
		sh.messages, sh.tokensLost = 0, 0
		if e.cfg.OnTransition != nil {
			for _, h := range sh.hooks {
				e.cfg.OnTransition(h.proc, e.states[h.from], e.states[h.to], e.period)
			}
		}
		sh.hooks = sh.hooks[:0]
	}

	// Cross-shard pushes: the sender's coin already fired; the landing is
	// valid only if the target is still in the pushed-from state, unmoved,
	// and not frozen — the same conditions an intra-shard push checks.
	for s := range e.shards {
		sh := &e.shards[s]
		for _, pi := range sh.pushes {
			if e.state[pi.target] == pi.from && !e.moved[pi.target] && !e.frozen[pi.target] {
				e.transition(pi.target, pi.from, pi.to)
			}
		}
		sh.pushes = sh.pushes[:0]
	}

	// Tokens: delivered against the post-merge live state through the
	// ordinary delivery machinery, randomized by the barrier stream.
	for s := range e.shards {
		sh := &e.shards[s]
		for _, ti := range sh.tokens {
			e.deliverToken(e.barrierRng, ti.from, ti.to)
		}
		sh.tokens = sh.tokens[:0]
	}
	e.period++
}

// runShard executes the action phase for one shard. It may read the
// snapshot, views, frozen flags, and its own range of state/moved; it may
// write only its own range and its shard-local accumulators.
func (e *Engine) runShard(sh *shardState) {
	for p := sh.lo; p < sh.hi; p++ {
		si := e.snapshot[p]
		if si < 0 || e.frozen[p] {
			continue
		}
		for _, a := range e.actions[si] {
			if e.moved[p] && a.kind != core.Push && a.kind != core.Token {
				continue
			}
			switch a.kind {
			case core.Flip:
				if sh.rng.Float64() < a.coin {
					e.shardTransition(sh, p, si, a.to)
				}
			case core.Sample:
				ok := true
				for _, want := range a.samples {
					if e.shardSampleTarget(sh, p) != want {
						ok = false
						break
					}
				}
				if ok && sh.rng.Float64() < a.coin {
					e.shardTransition(sh, p, si, a.to)
				}
			case core.SampleAny:
				hit := false
				for _, want := range a.samples {
					if e.shardSampleTarget(sh, p) == want {
						hit = true
					}
				}
				if hit && sh.rng.Float64() < a.coin {
					e.shardTransition(sh, p, si, a.to)
				}
			case core.Push:
				for range a.samples {
					t, observed := e.shardSamplePeer(sh, p)
					if observed != a.from || e.frozen[t] {
						continue
					}
					if sh.lo <= t && t < sh.hi {
						// Intra-shard: live checks are race-free, apply
						// immediately as the serial engine would.
						if e.state[t] == a.from && !e.moved[t] {
							if a.coin >= 1 || sh.rng.Float64() < a.coin {
								e.shardTransition(sh, t, a.from, a.to)
							}
						}
					} else {
						// Cross-shard: the target's live state belongs to
						// another shard, so the coin is drawn against the
						// snapshot observation (keeping this stream's
						// consumption shard-deterministic) and the landing
						// re-checked at the barrier.
						if a.coin >= 1 || sh.rng.Float64() < a.coin {
							sh.pushes = append(sh.pushes, pushIntent{target: t, from: a.from, to: a.to})
						}
					}
				}
			case core.Token:
				ok := true
				for _, want := range a.samples {
					if e.shardSampleTarget(sh, p) != want {
						ok = false
						break
					}
				}
				if ok && sh.rng.Float64() < a.coin {
					sh.tokens = append(sh.tokens, tokenIntent{from: a.from, to: a.to})
				}
			}
		}
	}
}

// shardTransition moves shard-owned process p between states, buffering
// the bookkeeping in the shard accumulators.
func (e *Engine) shardTransition(sh *shardState, p int, from, to int16) {
	e.state[p] = to
	sh.countsDelta[from]--
	sh.countsDelta[to]++
	e.moved[p] = true
	sh.transitions[[2]int16{from, to}]++
	if e.cfg.OnTransition != nil {
		sh.hooks = append(sh.hooks, hookEvent{proc: p, from: from, to: to})
	}
}

// shardPickPeer is pickPeer on the shard's stream.
func (e *Engine) shardPickPeer(sh *shardState, self int) int {
	if e.views != nil {
		k := e.cfg.ViewSize
		return int(e.views[self*k+sh.rng.Intn(k)])
	}
	t := sh.rng.Intn(e.cfg.N - 1)
	if t >= self {
		t++
	}
	return t
}

// shardSampleTarget is sampleTarget on the shard's stream and counters.
func (e *Engine) shardSampleTarget(sh *shardState, self int) int16 {
	sh.messages++
	t := e.shardPickPeer(sh, self)
	if e.cfg.MessageLoss > 0 && sh.rng.Float64() < e.cfg.MessageLoss {
		return -1
	}
	return e.snapshot[t]
}

// shardSamplePeer is samplePeer on the shard's stream and counters.
func (e *Engine) shardSamplePeer(sh *shardState, self int) (int, int16) {
	sh.messages++
	t := e.shardPickPeer(sh, self)
	if e.cfg.MessageLoss > 0 && sh.rng.Float64() < e.cfg.MessageLoss {
		return t, -1
	}
	return t, e.snapshot[t]
}
