package sim

import (
	"math"
	"math/rand"
	"testing"

	"odeproto/internal/mt19937"
)

// checkBinomialMoments draws `draws` samples of Binomial(n, p) and checks
// the sample mean and variance against np and np(1−p). The mean tolerance
// is 6 standard errors; the variance tolerance is a generous relative band
// (the approximation branches are moment-matched, not exact).
func checkBinomialMoments(t *testing.T, rng *rand.Rand, n int, p float64, draws int) {
	t.Helper()
	mean := float64(n) * p
	variance := mean * (1 - p)
	var sum, sumSq float64
	for i := 0; i < draws; i++ {
		k := Binomial(rng, n, p)
		if k < 0 || k > n {
			t.Fatalf("Binomial(%d, %v) = %d outside [0, n]", n, p, k)
		}
		sum += float64(k)
		sumSq += float64(k) * float64(k)
	}
	m := sum / float64(draws)
	v := sumSq/float64(draws) - m*m
	if tol := 6 * math.Sqrt(variance/float64(draws)); math.Abs(m-mean) > tol+1e-9 {
		t.Errorf("Binomial(%d, %v): sample mean %v, want %v ± %v", n, p, m, mean, tol)
	}
	// Var(sample variance) ≈ 2σ⁴/draws for near-normal k, plus slack for
	// the clamped tails of the approximations.
	if tol := 6*variance*math.Sqrt(2/float64(draws)) + 0.05*variance + 0.5; math.Abs(v-variance) > tol {
		t.Errorf("Binomial(%d, %v): sample variance %v, want %v ± %v", n, p, v, variance, tol)
	}
}

// TestBinomialMomentsAcrossBranches straddles every crossover of the
// sampler: the exact-Bernoulli/approximation boundary at n = 1024↔1025,
// the variance ≈ 30 normal/Poisson split, and the p > 0.5 reflection.
func TestBinomialMomentsAcrossBranches(t *testing.T) {
	rng := rand.New(mt19937.New(424242))
	const draws = 20000
	cases := []struct {
		name string
		n    int
		p    float64
	}{
		{"exact boundary n=1024", 1024, 0.3},
		{"approx boundary n=1025 normal branch", 1025, 0.3},   // variance ≈ 215 ≥ 30
		{"approx boundary n=1025 poisson branch", 1025, 0.02}, // variance ≈ 20 < 30
		{"variance just below 30", 100000, 0.00029},           // variance ≈ 29 → Poisson
		{"variance just above 30", 100000, 0.00031},           // variance ≈ 31 → normal
		{"reflection p=0.85", 2000, 0.85},                     // reflects to Binomial(n, 0.15)
		{"reflection large n p=0.999", 100000, 0.999},         // reflects into the Poisson branch
		{"exact small n high p", 64, 0.9},                     // reflection then exact loop
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			checkBinomialMoments(t, rng, tc.n, tc.p, draws)
		})
	}
}

// TestBinomialClampAboveOne: p past 1 clamps to "everyone fires" (the
// remaining edge cases live in aggregate_test.go's TestBinomialEdgeCases).
func TestBinomialClampAboveOne(t *testing.T) {
	rng := rand.New(mt19937.New(7))
	if got := Binomial(rng, 100000, 1.5); got != 100000 {
		t.Errorf("Binomial(100000, 1.5) = %d", got)
	}
}

// TestPoissonMomentsAcrossCrossover straddles the Knuth/normal switch at
// mean = 64 (the Binomial sampler can only reach the Knuth side, so the
// normal side is exercised directly).
func TestPoissonMomentsAcrossCrossover(t *testing.T) {
	rng := rand.New(mt19937.New(99))
	const draws = 20000
	for _, mean := range []float64{0.5, 63.9, 64.1, 200} {
		var sum, sumSq float64
		for i := 0; i < draws; i++ {
			k := Poisson(rng, mean)
			if k < 0 {
				t.Fatalf("Poisson(%v) = %d negative", mean, k)
			}
			sum += float64(k)
			sumSq += float64(k) * float64(k)
		}
		m := sum / float64(draws)
		v := sumSq/float64(draws) - m*m
		if tol := 6 * math.Sqrt(mean/float64(draws)); math.Abs(m-mean) > tol+1e-9 {
			t.Errorf("Poisson(%v): sample mean %v, want ± %v", mean, m, tol)
		}
		if tol := 6*mean*math.Sqrt(2/float64(draws)) + 0.05*mean + 0.5; math.Abs(v-mean) > tol {
			t.Errorf("Poisson(%v): sample variance %v, want %v ± %v", mean, v, mean, tol)
		}
	}
	if got := Poisson(rng, 0); got != 0 {
		t.Errorf("Poisson(0) = %d", got)
	}
}
