package sim

import (
	"fmt"
	"math/rand"

	"odeproto/internal/core"
	"odeproto/internal/mt19937"
	"odeproto/internal/ode"
)

// Aggregate is a count-based engine: instead of simulating N individual
// processes it evolves the per-state population counts with binomial draws
// (tau-leaping at protocol-period granularity). One period costs
// O(#actions) independent of N, which makes very large sweeps cheap; its
// trajectories agree with the agent engine in distribution, and the test
// suite cross-validates the two.
//
// Processes have no identity here, so experiments needing per-host data
// (Figure 8) must use the agent Engine.
type Aggregate struct {
	proto  *core.Protocol
	states []ode.Var
	rng    *rand.Rand

	counts map[ode.Var]int
	dead   int // crashed processes still absorbing contacts
	period int

	messageLoss float64
}

// NewAggregate builds a count-based engine with the given initial counts.
func NewAggregate(proto *core.Protocol, initial map[ode.Var]int, seed int64, messageLoss float64) (*Aggregate, error) {
	if proto == nil {
		return nil, fmt.Errorf("sim: nil protocol")
	}
	if err := proto.Validate(); err != nil {
		return nil, fmt.Errorf("sim: invalid protocol: %w", err)
	}
	if messageLoss < 0 || messageLoss >= 1 {
		return nil, fmt.Errorf("sim: message loss %v outside [0,1)", messageLoss)
	}
	a := &Aggregate{
		proto:       proto,
		states:      proto.States,
		rng:         rand.New(mt19937.New(seed)),
		counts:      make(map[ode.Var]int, len(proto.States)),
		messageLoss: messageLoss,
	}
	for _, s := range proto.States {
		c := initial[s]
		if c < 0 {
			return nil, fmt.Errorf("sim: negative count for %q", s)
		}
		a.counts[s] = c
	}
	return a, nil
}

// N returns the total population (alive + crashed).
func (a *Aggregate) N() int {
	n := a.dead
	for _, c := range a.counts {
		n += c
	}
	return n
}

// Alive returns the alive population.
func (a *Aggregate) Alive() int { return a.N() - a.dead }

// Period returns the number of completed periods.
func (a *Aggregate) Period() int { return a.period }

// Count returns the alive population of one state.
func (a *Aggregate) Count(s ode.Var) int { return a.counts[s] }

// Counts returns a copy of all per-state counts.
func (a *Aggregate) Counts() map[ode.Var]int {
	out := make(map[ode.Var]int, len(a.counts))
	for k, v := range a.counts {
		out[k] = v
	}
	return out
}

// KillFraction crash-stops the given fraction of each state's population
// (massive correlated failure). Crashed processes keep absorbing contact
// attempts, as in the agent engine.
func (a *Aggregate) KillFraction(frac float64) int {
	killed := 0
	for _, s := range a.states {
		k := Binomial(a.rng, a.counts[s], frac)
		a.counts[s] -= k
		killed += k
	}
	a.dead += killed
	return killed
}

// contactFractions returns the probability that a uniform contact observes
// each state, accounting for crashed processes and message loss.
func (a *Aggregate) contactFractions() map[ode.Var]float64 {
	n := float64(a.N())
	out := make(map[ode.Var]float64, len(a.counts))
	if n == 0 {
		return out
	}
	for s, c := range a.counts {
		out[s] = (1 - a.messageLoss) * float64(c) / n
	}
	return out
}

// Step advances one protocol period.
func (a *Aggregate) Step() {
	point := a.contactFractions()
	delta := make(map[ode.Var]int, len(a.states))

	for _, s := range a.states {
		owners := a.counts[s]
		if owners == 0 {
			continue
		}
		remaining := owners
		for _, act := range a.proto.ActionsFor(s) {
			switch act.Kind {
			case core.Flip, core.Sample, core.SampleAny:
				p := fireProb(act, point)
				m := Binomial(a.rng, remaining, p)
				remaining -= m
				delta[act.From] -= m
				delta[act.To] += m
			case core.Push:
				// Each of the owner's contacts converts a From-process
				// with probability coin·(1−loss)·frac(From).
				contacts := owners * len(act.Samples)
				p := act.Coin * point[act.From]
				m := Binomial(a.rng, contacts, p)
				delta[act.From] -= m
				delta[act.To] += m
			case core.Token:
				p := fireProb(act, point)
				m := Binomial(a.rng, owners, p)
				delta[act.From] -= m
				delta[act.To] += m
			}
		}
	}

	// Apply, clamping states that were over-drained by push/token inflows
	// racing regular outflows (rare; mirrors the agent engine's
	// at-most-one-move rule).
	for _, s := range a.states {
		a.counts[s] += delta[s]
		if a.counts[s] < 0 {
			// Return the deficit to the state that received the excess:
			// proportional correction is unnecessary at population scale;
			// clamp and rebalance against the largest recipient.
			deficit := -a.counts[s]
			a.counts[s] = 0
			largest := s
			for _, t := range a.states {
				if a.counts[t] > a.counts[largest] {
					largest = t
				}
			}
			a.counts[largest] -= deficit
			if a.counts[largest] < 0 {
				a.counts[largest] = 0
			}
		}
	}
	a.period++
}

// fireProb mirrors core.Action.FireProbability with the per-contact loss
// already folded into point (the contact fractions); Flip needs the raw
// coin because it involves no contact.
func fireProb(act core.Action, point map[ode.Var]float64) float64 {
	if act.Kind == core.Flip {
		return act.Coin
	}
	return act.FireProbability(point)
}

// Run advances the given number of periods.
func (a *Aggregate) Run(periods int) {
	for i := 0; i < periods; i++ {
		a.Step()
	}
}
