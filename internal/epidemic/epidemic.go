// Package epidemic implements the paper's motivating example (§1): the
// canonical pull epidemic derived from equation system (0),
//
//	ẋ = −xy,  ẏ = xy,
//
// where x is the fraction of susceptible and y the fraction of infected
// processes. Translating (0) through the framework yields exactly the
// canonical epidemic pull algorithm (each susceptible process contacts one
// uniformly random process per period and turns infected if the target is
// infected), and the analysis predicts x → 0 in O(log N) rounds.
package epidemic

import (
	"fmt"
	"math"

	"odeproto/internal/core"
	"odeproto/internal/ode"
	"odeproto/internal/sim"
)

// Susceptible and Infected are the protocol's states.
const (
	Susceptible = ode.Var("x")
	Infected    = ode.Var("y")
)

// System returns equation system (0) over fractions.
func System() *ode.System {
	s := ode.NewSystem()
	s.MustAddEquation(Susceptible, ode.NewTerm(-1, map[ode.Var]int{Susceptible: 1, Infected: 1}))
	s.MustAddEquation(Infected, ode.NewTerm(1, map[ode.Var]int{Susceptible: 1, Infected: 1}))
	return s
}

// NewProtocol translates (0) into the canonical pull protocol. The single
// term has c = 1, so p = 1 and the coin is certain: one sample per
// susceptible per period, infection on contact.
func NewProtocol() (*core.Protocol, error) {
	return core.Translate(System(), core.Options{})
}

// Result summarizes one epidemic run.
type Result struct {
	N      int
	Rounds int // rounds until no susceptibles remain
}

// Run starts one infected process among n and runs the pull protocol until
// everyone is infected (or maxRounds passes, which is reported as an
// error). The paper's analysis predicts O(log N) rounds.
func Run(n int, seed int64, maxRounds int) (Result, error) {
	proto, err := NewProtocol()
	if err != nil {
		return Result{}, err
	}
	e, err := sim.New(sim.Config{
		N:        n,
		Protocol: proto,
		Initial:  map[ode.Var]int{Susceptible: n - 1, Infected: 1},
		Seed:     seed,
	})
	if err != nil {
		return Result{}, err
	}
	for r := 0; r < maxRounds; r++ {
		if e.Count(Susceptible) == 0 {
			return Result{N: n, Rounds: r}, nil
		}
		e.Step()
	}
	return Result{}, fmt.Errorf("epidemic: not complete after %d rounds (x = %d)", maxRounds, e.Count(Susceptible))
}

// PredictedRounds returns the O(log N) reference value: the logistic
// solution of (0) reaches x ≈ 1 process after roughly 2·ln N rounds
// (growth phase ln N from one infective to N/2, decay phase ln N from N/2
// susceptibles down to 1).
func PredictedRounds(n int) float64 {
	return 2 * math.Log(float64(n))
}

// LogisticInfected returns the closed-form mean-field solution
// y(t) = y0 / (y0 + (1−y0)e^{−t}) of equation system (0).
func LogisticInfected(y0, t float64) float64 {
	return y0 / (y0 + (1-y0)*math.Exp(-t))
}
