package epidemic

import (
	"math"
	"testing"

	"odeproto/internal/core"
)

func TestSystemShape(t *testing.T) {
	s := System()
	c := s.Classify()
	if !c.Mappable() || !c.RestrictedPolynomial {
		t.Fatalf("epidemic classification %v", c)
	}
}

func TestProtocolIsCanonicalPull(t *testing.T) {
	proto, err := NewProtocol()
	if err != nil {
		t.Fatal(err)
	}
	if len(proto.Actions) != 1 {
		t.Fatalf("actions = %v", proto.Actions)
	}
	a := proto.Actions[0]
	if a.Kind != core.Sample || a.Owner != Susceptible || a.To != Infected || a.Coin != 1 {
		t.Fatalf("not the canonical pull: %v", a)
	}
}

func TestRunCompletesInLogRounds(t *testing.T) {
	for _, n := range []int{1000, 4000} {
		res, err := Run(n, 11, 500)
		if err != nil {
			t.Fatal(err)
		}
		// O(log N): allow a factor ~4 over the 2·ln N prediction for the
		// stochastic tail.
		if float64(res.Rounds) > 4*PredictedRounds(n) {
			t.Fatalf("N=%d: %d rounds, predicted %v", n, res.Rounds, PredictedRounds(n))
		}
		if res.Rounds < 5 {
			t.Fatalf("N=%d: implausibly fast (%d rounds)", n, res.Rounds)
		}
	}
}

// TestLogNScaling: rounds grow roughly logarithmically — doubling N twice
// must not double the rounds.
func TestLogNScaling(t *testing.T) {
	small, err := Run(1000, 5, 500)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run(16000, 5, 500)
	if err != nil {
		t.Fatal(err)
	}
	if float64(big.Rounds) > 2.5*float64(small.Rounds) {
		t.Fatalf("rounds 16x N: %d vs %d — not logarithmic", big.Rounds, small.Rounds)
	}
}

func TestRunTimeout(t *testing.T) {
	if _, err := Run(1000, 1, 2); err == nil {
		t.Fatal("expected timeout error")
	}
}

func TestLogisticInfected(t *testing.T) {
	if got := LogisticInfected(0.5, 0); got != 0.5 {
		t.Fatalf("y(0) = %v", got)
	}
	if got := LogisticInfected(0.01, 100); math.Abs(got-1) > 1e-6 {
		t.Fatalf("y(∞) = %v, want 1", got)
	}
	// Monotone increasing.
	prev := 0.0
	for _, tm := range []float64{0, 1, 2, 4, 8} {
		v := LogisticInfected(0.1, tm)
		if v <= prev {
			t.Fatalf("logistic not increasing at t=%v", tm)
		}
		prev = v
	}
}

func TestPredictedRounds(t *testing.T) {
	if PredictedRounds(1000) <= PredictedRounds(100) {
		t.Fatal("prediction must grow with N")
	}
}
