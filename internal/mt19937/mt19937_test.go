package mt19937

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestReferenceVector checks the first outputs against the canonical
// mt19937-64.out published with the reference C implementation, which is
// produced by init_by_array64({0x12345, 0x23456, 0x34567, 0x45678}).
func TestReferenceVector(t *testing.T) {
	m := &MT19937{}
	m.SeedBySlice([]uint64{0x12345, 0x23456, 0x34567, 0x45678})

	want := []uint64{
		7266447313870364031,
		4946485549665804864,
		16945909448695747420,
		16394063075524226720,
		4873882236456199058,
		14877448043947020171,
		6740343660852211943,
		13857871200353263164,
		5249110015610582907,
		10205081126064480383,
	}
	for i, w := range want {
		if got := m.Uint64(); got != w {
			t.Fatalf("output %d: got %d, want %d", i, got, w)
		}
	}
}

func TestSeedDeterminism(t *testing.T) {
	a, b := New(12345), New(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestFloat64Range(t *testing.T) {
	m := New(7)
	for i := 0; i < 100000; i++ {
		f := m.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	m := New(99)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += m.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("mean of %d uniforms = %v, want ~0.5", n, mean)
	}
}

func TestInt63NonNegative(t *testing.T) {
	m := New(3)
	for i := 0; i < 10000; i++ {
		if v := m.Int63(); v < 0 {
			t.Fatalf("Int63 returned negative %d", v)
		}
	}
}

// TestRandSourceCompat verifies the generator plugs into math/rand.
func TestRandSourceCompat(t *testing.T) {
	r := rand.New(New(42))
	counts := make([]int, 10)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[r.Intn(10)]++
	}
	for d, c := range counts {
		frac := float64(c) / draws
		if math.Abs(frac-0.1) > 0.01 {
			t.Fatalf("digit %d frequency %v, want ~0.1", d, frac)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(5)
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams collided %d times", same)
	}
}

func TestSplitReproducible(t *testing.T) {
	a := New(5).Split(7)
	b := New(5).Split(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("split with same lineage diverged at %d", i)
		}
	}
}

// Property: uint64 outputs should have roughly half their bits set on
// average (equidistribution sanity, not a strict PRNG test).
func TestBitBalance(t *testing.T) {
	f := func(seed int64) bool {
		m := New(seed)
		ones := 0
		const draws = 2000
		for i := 0; i < draws; i++ {
			v := m.Uint64()
			for v != 0 {
				ones += int(v & 1)
				v >>= 1
			}
		}
		frac := float64(ones) / float64(draws*64)
		return math.Abs(frac-0.5) < 0.02
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
