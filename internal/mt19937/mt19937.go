// Package mt19937 implements the MT19937-64 Mersenne Twister pseudorandom
// number generator.
//
// The paper's evaluation (§5) states that "the Mersenne Twister pseudorandom
// generator is used for random number generation"; this package reproduces
// that choice from scratch so every engine in the repository can be driven by
// the same generator family the paper used. The implementation follows the
// reference algorithm by Matsumoto and Nishimura (2004, 64-bit variant).
//
// The generator satisfies math/rand's Source and Source64 interfaces, so it
// can back a *rand.Rand:
//
//	rng := rand.New(mt19937.New(42))
package mt19937

const (
	nn        = 312
	mm        = 156
	matrixA   = 0xB5026F5AA96619E9
	upperMask = 0xFFFFFFFF80000000
	lowerMask = 0x7FFFFFFF
)

// MT19937 is a 64-bit Mersenne Twister generator. It is not safe for
// concurrent use; give each goroutine its own instance (see Split).
type MT19937 struct {
	state [nn]uint64
	index int
}

// New returns a generator seeded with seed.
func New(seed int64) *MT19937 {
	m := &MT19937{}
	m.Seed(seed)
	return m
}

// Seed reinitializes the generator state from seed.
func (m *MT19937) Seed(seed int64) {
	m.state[0] = uint64(seed)
	for i := 1; i < nn; i++ {
		m.state[i] = 6364136223846793005*(m.state[i-1]^(m.state[i-1]>>62)) + uint64(i)
	}
	m.index = nn
}

// SeedBySlice initializes the state from a key array, following the
// reference init_by_array64 routine. Useful for seeding from multiple
// independent quantities (e.g. experiment ID and host ID).
func (m *MT19937) SeedBySlice(key []uint64) {
	m.Seed(19650218)
	i, j := 1, 0
	k := len(key)
	if nn > k {
		k = nn
	}
	for ; k > 0; k-- {
		m.state[i] = (m.state[i] ^ ((m.state[i-1] ^ (m.state[i-1] >> 62)) * 3935559000370003845)) + key[j] + uint64(j)
		i++
		j++
		if i >= nn {
			m.state[0] = m.state[nn-1]
			i = 1
		}
		if j >= len(key) {
			j = 0
		}
	}
	for k = nn - 1; k > 0; k-- {
		m.state[i] = (m.state[i] ^ ((m.state[i-1] ^ (m.state[i-1] >> 62)) * 2862933555777941757)) - uint64(i)
		i++
		if i >= nn {
			m.state[0] = m.state[nn-1]
			i = 1
		}
	}
	m.state[0] = 1 << 63
	m.index = nn
}

// Uint64 returns the next 64 bits from the generator.
func (m *MT19937) Uint64() uint64 {
	if m.index >= nn {
		m.generate()
	}
	x := m.state[m.index]
	m.index++

	x ^= (x >> 29) & 0x5555555555555555
	x ^= (x << 17) & 0x71D67FFFEDA60000
	x ^= (x << 37) & 0xFFF7EEE000000000
	x ^= x >> 43
	return x
}

func (m *MT19937) generate() {
	for i := 0; i < nn-mm; i++ {
		x := (m.state[i] & upperMask) | (m.state[i+1] & lowerMask)
		m.state[i] = m.state[i+mm] ^ (x >> 1) ^ ((x & 1) * matrixA)
	}
	for i := nn - mm; i < nn-1; i++ {
		x := (m.state[i] & upperMask) | (m.state[i+1] & lowerMask)
		m.state[i] = m.state[i+mm-nn] ^ (x >> 1) ^ ((x & 1) * matrixA)
	}
	x := (m.state[nn-1] & upperMask) | (m.state[0] & lowerMask)
	m.state[nn-1] = m.state[mm-1] ^ (x >> 1) ^ ((x & 1) * matrixA)
	m.index = 0
}

// Int63 returns a non-negative 63-bit integer, satisfying rand.Source.
func (m *MT19937) Int63() int64 {
	return int64(m.Uint64() >> 1)
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (m *MT19937) Float64() float64 {
	return float64(m.Uint64()>>11) / (1 << 53)
}

// Split derives an independent generator from this one, suitable for
// handing to another goroutine or simulated process. The child is seeded
// from the parent's stream plus the supplied stream identifier so that
// (seed, id) pairs give reproducible, decorrelated streams.
func (m *MT19937) Split(id uint64) *MT19937 {
	child := &MT19937{}
	child.SeedBySlice([]uint64{m.Uint64(), id, 0x9E3779B97F4A7C15})
	return child
}
