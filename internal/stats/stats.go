// Package stats provides the time-series collection and summary statistics
// used by the experiment harness: per-period series, windowed summaries
// (median/min/max as in the paper's Figure 7), convergence detection, and
// scatter collection (Figure 8).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Series is a named time series sampled once per protocol period.
type Series struct {
	Name   string
	Times  []float64
	Values []float64
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series {
	return &Series{Name: name}
}

// Add appends one sample.
func (s *Series) Add(t, v float64) {
	s.Times = append(s.Times, t)
	s.Values = append(s.Values, v)
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Values) }

// Window returns the values sampled at times in [t0, t1].
func (s *Series) Window(t0, t1 float64) []float64 {
	var out []float64
	for i, t := range s.Times {
		if t >= t0 && t <= t1 {
			out = append(out, s.Values[i])
		}
	}
	return out
}

// Last returns the most recent value, or 0 for an empty series.
func (s *Series) Last() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	return s.Values[len(s.Values)-1]
}

// Summary holds order statistics of a sample.
type Summary struct {
	Count           int
	Min, Max        float64
	Mean, Std       float64
	Median, P5, P95 float64
}

// Summarize computes summary statistics of the values. An empty input
// yields a zero Summary.
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	var sum, sumSq float64
	for _, v := range sorted {
		sum += v
		sumSq += v * v
	}
	n := float64(len(sorted))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		Count:  len(sorted),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Mean:   mean,
		Std:    math.Sqrt(variance),
		Median: Quantile(sorted, 0.5),
		P5:     Quantile(sorted, 0.05),
		P95:    Quantile(sorted, 0.95),
	}
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of an ascending-sorted
// sample, with linear interpolation.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	w := pos - float64(lo)
	return (1-w)*sorted[lo] + w*sorted[hi]
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.4g med=%.4g mean=%.4g max=%.4g std=%.4g",
		s.Count, s.Min, s.Median, s.Mean, s.Max, s.Std)
}

// ConvergenceTime returns the first time at which pred(value) becomes true
// and remains true for the rest of the series. It returns (0, false) when
// the series never settles.
func ConvergenceTime(s *Series, pred func(v float64) bool) (float64, bool) {
	settled := -1
	for i, v := range s.Values {
		if pred(v) {
			if settled < 0 {
				settled = i
			}
		} else {
			settled = -1
		}
	}
	if settled < 0 {
		return 0, false
	}
	return s.Times[settled], true
}

// Scatter collects (x, y) points, e.g. (period, host ID) pairs for the
// paper's untraceability plot (Figure 8).
type Scatter struct {
	Name string
	Xs   []float64
	Ys   []float64
}

// NewScatter returns an empty named scatter.
func NewScatter(name string) *Scatter {
	return &Scatter{Name: name}
}

// Add appends one point.
func (sc *Scatter) Add(x, y float64) {
	sc.Xs = append(sc.Xs, x)
	sc.Ys = append(sc.Ys, y)
}

// Len returns the number of points.
func (sc *Scatter) Len() int { return len(sc.Xs) }

// CorrelationXY returns the Pearson correlation of the scatter's
// coordinates; the paper argues untraceability partly from the absence of
// time/host-ID correlation in Figure 8.
func (sc *Scatter) CorrelationXY() float64 {
	n := float64(len(sc.Xs))
	if n < 2 {
		return 0
	}
	var sx, sy, sxx, syy, sxy float64
	for i := range sc.Xs {
		x, y := sc.Xs[i], sc.Ys[i]
		sx += x
		sy += y
		sxx += x * x
		syy += y * y
		sxy += x * y
	}
	cov := sxy/n - (sx/n)*(sy/n)
	vx := sxx/n - (sx/n)*(sx/n)
	vy := syy/n - (sy/n)*(sy/n)
	if vx <= 0 || vy <= 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// Histogram counts values into equal-width bins over [min, max].
func Histogram(values []float64, bins int, min, max float64) []int {
	out := make([]int, bins)
	if bins == 0 || max <= min {
		return out
	}
	w := (max - min) / float64(bins)
	for _, v := range values {
		if v < min || v > max {
			continue
		}
		b := int((v - min) / w)
		if b >= bins {
			b = bins - 1
		}
		out[b]++
	}
	return out
}

// OccupancyFairness computes the coefficient of variation (std/mean) of
// per-host occupancy counts; values near zero indicate the Fairness
// property of §4.1 (every host bears responsibility about equally often).
func OccupancyFairness(perHost []int) float64 {
	if len(perHost) == 0 {
		return 0
	}
	vals := make([]float64, len(perHost))
	for i, c := range perHost {
		vals[i] = float64(c)
	}
	s := Summarize(vals)
	if s.Mean == 0 {
		return 0
	}
	return s.Std / s.Mean
}
