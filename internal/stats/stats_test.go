package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSeriesBasics(t *testing.T) {
	s := NewSeries("stash")
	for i := 0; i < 10; i++ {
		s.Add(float64(i), float64(i*i))
	}
	if s.Len() != 10 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Last() != 81 {
		t.Fatalf("Last = %v", s.Last())
	}
	w := s.Window(3, 5)
	if len(w) != 3 || w[0] != 9 || w[2] != 25 {
		t.Fatalf("Window = %v", w)
	}
}

func TestSeriesEmpty(t *testing.T) {
	s := NewSeries("empty")
	if s.Last() != 0 {
		t.Fatal("empty Last should be 0")
	}
	if got := s.Window(0, 1); len(got) != 0 {
		t.Fatalf("empty Window = %v", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.Count != 5 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Median != 3 || s.Mean != 3 {
		t.Fatalf("median/mean = %v/%v", s.Median, s.Mean)
	}
	wantStd := math.Sqrt(2)
	if math.Abs(s.Std-wantStd) > 1e-12 {
		t.Fatalf("std = %v, want %v", s.Std, wantStd)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.Count != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{0, 10, 20, 30, 40}
	if q := Quantile(sorted, 0.5); q != 20 {
		t.Fatalf("median = %v", q)
	}
	if q := Quantile(sorted, 0); q != 0 {
		t.Fatalf("q0 = %v", q)
	}
	if q := Quantile(sorted, 1); q != 40 {
		t.Fatalf("q1 = %v", q)
	}
	if q := Quantile(sorted, 0.125); q != 5 {
		t.Fatalf("q0.125 = %v, want interpolated 5", q)
	}
}

func TestQuantileProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var vals []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		sort.Float64s(vals)
		q := Quantile(vals, 0.5)
		return q >= vals[0] && q <= vals[len(vals)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConvergenceTime(t *testing.T) {
	s := NewSeries("x")
	vals := []float64{10, 8, 3, 5, 2, 1, 1, 0}
	for i, v := range vals {
		s.Add(float64(i), v)
	}
	tm, ok := ConvergenceTime(s, func(v float64) bool { return v < 4 })
	if !ok || tm != 4 {
		t.Fatalf("convergence = %v %v, want 4 true (value 5 at t=3 resets)", tm, ok)
	}
	_, ok = ConvergenceTime(s, func(v float64) bool { return v < -1 })
	if ok {
		t.Fatal("should not converge")
	}
}

func TestScatterCorrelation(t *testing.T) {
	perfect := NewScatter("line")
	for i := 0; i < 100; i++ {
		perfect.Add(float64(i), 2*float64(i)+1)
	}
	if c := perfect.CorrelationXY(); math.Abs(c-1) > 1e-9 {
		t.Fatalf("perfect correlation = %v", c)
	}
	anti := NewScatter("anti")
	for i := 0; i < 100; i++ {
		anti.Add(float64(i), -float64(i))
	}
	if c := anti.CorrelationXY(); math.Abs(c+1) > 1e-9 {
		t.Fatalf("anti correlation = %v", c)
	}
	if NewScatter("tiny").CorrelationXY() != 0 {
		t.Fatal("degenerate scatter should give 0")
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]float64{0.1, 0.2, 0.9, 0.95, 5}, 2, 0, 1)
	if h[0] != 2 || h[1] != 2 {
		t.Fatalf("histogram = %v", h)
	}
}

func TestOccupancyFairness(t *testing.T) {
	if f := OccupancyFairness([]int{5, 5, 5, 5}); f != 0 {
		t.Fatalf("uniform fairness = %v, want 0", f)
	}
	skewed := OccupancyFairness([]int{100, 0, 0, 0})
	if skewed < 1 {
		t.Fatalf("skewed fairness = %v, want > 1", skewed)
	}
	if f := OccupancyFairness(nil); f != 0 {
		t.Fatal("empty input")
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}
