// Package rewrite implements the equation rewriting techniques of §7 of the
// paper, which bring differential equation systems into the mappable form
// required by the translation framework (complete, and polynomial or
// restricted polynomial).
//
// The techniques provided are:
//
//   - Complete: introduce a slack variable z = 1 − Σx and the equation
//     ż = −Σ fx, making any system complete.
//   - Normalize: convert a system over counts (Σx = N) into one over
//     fractions (Σx = 1), scaling term coefficients by N^(degree−1).
//   - Homogenize: multiply low-degree terms by powers of (Σv v) = 1 and
//     combine like terms. Applied after Complete, this mechanically
//     reproduces the paper's rewriting of the Lotka–Volterra equations (6)
//     into the mappable form (7), and subsumes the +c → +c·(Σv v) constant
//     expansion used by Tokenizing (§6).
//   - ReduceOrderLinear: rewrite a linear equation of order k in one
//     variable into a first-order system by introducing variables for the
//     higher derivatives (the paper's ẍ + ẋ = x example).
//   - MakeMappable: the Complete → Homogenize pipeline with verification.
package rewrite

import (
	"fmt"
	"math"

	"odeproto/internal/ode"
)

// Complete rewrites the system into an equivalent complete system by
// introducing the slack variable slack = 1 − Σx with equation
// slack' = −Σ fx(X̄) (§7 "Rewriting an equation into a Complete form").
// Terms that already cancel symbolically are dropped from the new equation.
// It returns an error if slack is already a variable of the system.
func Complete(s *ode.System, slack ode.Var) (*ode.System, error) {
	if s.HasVar(slack) {
		return nil, fmt.Errorf("rewrite: slack variable %q already exists in system", slack)
	}
	out := s.Clone()
	var negated []ode.Term
	for _, v := range s.Vars() {
		eq, _ := s.Equation(v)
		for _, t := range eq.Terms {
			nt := t.Clone()
			nt.Negative = !nt.Negative
			negated = append(negated, nt)
		}
	}
	negated = combineTerms(negated)
	if err := out.AddEquation(slack, negated...); err != nil {
		return nil, err
	}
	return out, nil
}

// Normalize converts a complete system over absolute counts (Σx = total)
// into an equivalent system over fractions (Σx = 1). Substituting
// x = total·x̂ into ẋ = c·Π y^i scales each coefficient by
// total^(degree−1) (§7 "Normalizing"). For example the paper derives the
// epidemic system (0) from ẋ = −(1/N)xy by normalizing with total = N.
func Normalize(s *ode.System, total float64) *ode.System {
	out := ode.NewSystem()
	for _, v := range s.Vars() {
		eq, _ := s.Equation(v)
		terms := make([]ode.Term, 0, len(eq.Terms))
		for _, t := range eq.Terms {
			nt := t.Clone()
			nt.Coef *= pow(total, t.Degree()-1)
			terms = append(terms, nt)
		}
		out.MustAddEquation(v, terms...)
	}
	return out
}

func pow(base float64, exp int) float64 {
	if exp == 0 {
		return 1
	}
	r := 1.0
	if exp < 0 {
		for i := 0; i < -exp; i++ {
			r /= base
		}
		return r
	}
	for i := 0; i < exp; i++ {
		r *= base
	}
	return r
}

// ExpandConstants rewrites every constant term ±c as ±c·(Σv v), using the
// completeness identity Σv v = 1 (§6). The result has no degree-zero terms.
func ExpandConstants(s *ode.System) *ode.System {
	vars := s.Vars()
	out := ode.NewSystem()
	for _, v := range vars {
		eq, _ := s.Equation(v)
		var terms []ode.Term
		for _, t := range eq.Terms {
			if t.Degree() == 0 {
				terms = append(terms, multiplyBySum(t, vars)...)
			} else {
				terms = append(terms, t.Clone())
			}
		}
		out.MustAddEquation(v, combineTerms(terms)...)
	}
	return out
}

// Homogenize raises every term to the system's maximum total degree by
// multiplying by powers of (Σv v) = 1, then combines like terms. The system
// must be interpreted over fractions (Σ x = 1) for the identity to hold,
// which is the case after Complete. Homogenizing a complete system
// preserves completeness and often makes the system completely
// partitionable: applied to the Lotka–Volterra equations (6) plus the slack
// equation it yields exactly the paper's system (7).
func Homogenize(s *ode.System) *ode.System {
	vars := s.Vars()
	maxDeg := 0
	for _, v := range vars {
		eq, _ := s.Equation(v)
		for _, t := range eq.Terms {
			if d := t.Degree(); d > maxDeg {
				maxDeg = d
			}
		}
	}
	out := ode.NewSystem()
	for _, v := range vars {
		eq, _ := s.Equation(v)
		var terms []ode.Term
		for _, t := range eq.Terms {
			expanded := []ode.Term{t.Clone()}
			for d := t.Degree(); d < maxDeg; d++ {
				var next []ode.Term
				for _, e := range expanded {
					next = append(next, multiplyBySum(e, vars)...)
				}
				expanded = next
			}
			terms = append(terms, expanded...)
		}
		out.MustAddEquation(v, combineTerms(terms)...)
	}
	return out
}

// multiplyBySum multiplies a term by (Σv v), returning one term per
// variable.
func multiplyBySum(t ode.Term, vars []ode.Var) []ode.Term {
	out := make([]ode.Term, 0, len(vars))
	for _, v := range vars {
		nt := t.Clone()
		nt.Powers[v]++
		out = append(out, nt)
	}
	return out
}

// CombineLikeTerms sums the signed coefficients of identical monomials in
// each equation and drops exact cancellations.
func CombineLikeTerms(s *ode.System) *ode.System {
	out := ode.NewSystem()
	for _, v := range s.Vars() {
		eq, _ := s.Equation(v)
		out.MustAddEquation(v, combineTerms(eq.Terms)...)
	}
	return out
}

func combineTerms(terms []ode.Term) []ode.Term {
	type slot struct {
		coef  float64
		first ode.Term
	}
	sums := make(map[string]*slot)
	var order []string
	for _, t := range terms {
		k := t.MonomialKey()
		sl, ok := sums[k]
		if !ok {
			sl = &slot{first: t.Clone()}
			sums[k] = sl
			order = append(order, k)
		}
		sl.coef += t.Signed()
	}
	var out []ode.Term
	for _, k := range order {
		sl := sums[k]
		const tol = 1e-12
		if sl.coef > tol {
			nt := sl.first
			nt.Coef, nt.Negative = sl.coef, false
			out = append(out, nt)
		} else if sl.coef < -tol {
			nt := sl.first
			nt.Coef, nt.Negative = -sl.coef, true
			out = append(out, nt)
		}
	}
	return out
}

// ReduceOrderLinear rewrites the linear constant-coefficient equation
//
//	x⁽ᵏ⁾ = coeffs[0]·x + coeffs[1]·ẋ + … + coeffs[k−1]·x⁽ᵏ⁻¹⁾
//
// into an equivalent first-order system by introducing one variable per
// higher derivative (named x_d1 … x_d(k−1)), per §7 "Mapping Differential
// equations of higher Orders". The resulting system is generally not
// complete; apply Complete afterwards, as the paper does for ẍ + ẋ = x.
func ReduceOrderLinear(x ode.Var, coeffs []float64) (*ode.System, error) {
	k := len(coeffs)
	if k == 0 {
		return nil, fmt.Errorf("rewrite: order must be at least 1")
	}
	names := make([]ode.Var, k)
	names[0] = x
	for d := 1; d < k; d++ {
		names[d] = ode.Var(fmt.Sprintf("%s_d%d", x, d))
	}
	out := ode.NewSystem()
	// x' = u1, u1' = u2, ..., u_{k-2}' = u_{k-1}
	for d := 0; d < k-1; d++ {
		out.MustAddEquation(names[d], ode.NewTerm(1, map[ode.Var]int{names[d+1]: 1}))
	}
	// u_{k-1}' = Σ coeffs[j]·u_j
	var top []ode.Term
	for j, c := range coeffs {
		if c == 0 {
			continue
		}
		top = append(top, ode.NewTerm(c, map[ode.Var]int{names[j]: 1}))
	}
	out.MustAddEquation(names[k-1], top...)
	return out, nil
}

// SplitForPartition splits terms so that, for every monomial, the multiset
// of negative coefficients exactly matches the multiset of positive
// coefficients, enabling the zero-sum pairing required by complete
// partitionability. The paper performs this implicitly when writing the
// slack equation of system (7) as "+3xy + 3xy" rather than "+6xy": a single
// +6xy term cannot pair with the two −3xy terms until it is split. The
// rewrite preserves the dynamics exactly (a term is replaced by parts that
// sum to it). Splitting requires the per-monomial signed sums to be zero,
// i.e. a complete system; terms of monomials that do not balance are left
// untouched.
func SplitForPartition(s *ode.System) *ode.System {
	type occ struct {
		v     ode.Var
		index int
		coef  float64
	}
	neg := make(map[string][]occ)
	pos := make(map[string][]occ)
	for _, v := range s.Vars() {
		eq, _ := s.Equation(v)
		for i, t := range eq.Terms {
			o := occ{v: v, index: i, coef: t.Coef}
			if t.Negative {
				neg[t.MonomialKey()] = append(neg[t.MonomialKey()], o)
			} else {
				pos[t.MonomialKey()] = append(pos[t.MonomialKey()], o)
			}
		}
	}

	// chunks[v][i] holds the replacement coefficients for term i of
	// equation v (nil means keep the term as is).
	chunks := make(map[ode.Var]map[int][]float64)
	addChunk := func(o occ, c float64) {
		if chunks[o.v] == nil {
			chunks[o.v] = make(map[int][]float64)
		}
		chunks[o.v][o.index] = append(chunks[o.v][o.index], c)
	}
	const tol = 1e-9
	for key, negs := range neg {
		poss := pos[key]
		var nSum, pSum float64
		for _, o := range negs {
			nSum += o.coef
		}
		for _, o := range poss {
			pSum += o.coef
		}
		if math.Abs(nSum-pSum) > tol*(1+nSum+pSum) {
			continue // unbalanced monomial; leave for Partition to report
		}
		// Greedy transport: walk both lists, emitting min-remainder chunks.
		i, j := 0, 0
		ni, pj := 0.0, 0.0
		if len(negs) > 0 {
			ni = negs[0].coef
		}
		if len(poss) > 0 {
			pj = poss[0].coef
		}
		for i < len(negs) && j < len(poss) {
			c := math.Min(ni, pj)
			addChunk(negs[i], c)
			addChunk(poss[j], c)
			ni -= c
			pj -= c
			if ni <= tol {
				i++
				if i < len(negs) {
					ni = negs[i].coef
				}
			}
			if pj <= tol {
				j++
				if j < len(poss) {
					pj = poss[j].coef
				}
			}
		}
	}

	out := ode.NewSystem()
	for _, v := range s.Vars() {
		eq, _ := s.Equation(v)
		var terms []ode.Term
		for i, t := range eq.Terms {
			parts := chunks[v][i]
			if len(parts) == 0 {
				terms = append(terms, t.Clone())
				continue
			}
			for _, c := range parts {
				nt := t.Clone()
				nt.Coef = c
				terms = append(terms, nt)
			}
		}
		out.MustAddEquation(v, terms...)
	}
	return out
}

// MakeMappable runs the standard rewriting pipeline — Complete with the
// given slack variable (skipped when the system is already complete),
// then Homogenize, then SplitForPartition — and verifies the result is
// completely partitionable. It returns an error describing the first
// obstruction otherwise.
func MakeMappable(s *ode.System, slack ode.Var) (*ode.System, error) {
	cur := s.Clone()
	if !cur.IsComplete() {
		completed, err := Complete(cur, slack)
		if err != nil {
			return nil, err
		}
		cur = completed
	}
	cur = Homogenize(cur)
	cur = SplitForPartition(cur)
	if !cur.IsComplete() {
		return nil, fmt.Errorf("rewrite: system is not complete after rewriting (defect %v)", cur.CompletenessDefect())
	}
	if _, err := cur.Partition(); err != nil {
		return nil, fmt.Errorf("rewrite: system is complete but not completely partitionable: %w", err)
	}
	return cur, nil
}
