package rewrite

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"odeproto/internal/ode"
)

func TestSplitForPartitionLVSlackEquation(t *testing.T) {
	// The homogenized LV slack equation carries +6xy, which must split
	// into +3xy +3xy to pair against the two −3xy terms — the paper
	// writes system (7) in exactly that split form.
	s := ode.NewSystem()
	s.MustAddEquation("x",
		ode.NewTerm(3, map[ode.Var]int{"x": 1, "z": 1}),
		ode.NewTerm(-3, map[ode.Var]int{"x": 1, "y": 1}))
	s.MustAddEquation("y",
		ode.NewTerm(3, map[ode.Var]int{"y": 1, "z": 1}),
		ode.NewTerm(-3, map[ode.Var]int{"x": 1, "y": 1}))
	s.MustAddEquation("z",
		ode.NewTerm(-3, map[ode.Var]int{"x": 1, "z": 1}),
		ode.NewTerm(-3, map[ode.Var]int{"y": 1, "z": 1}),
		ode.NewTerm(6, map[ode.Var]int{"x": 1, "y": 1}))
	if _, err := s.Partition(); err == nil {
		t.Fatal("unsplit system should not pair (+6xy vs two -3xy)")
	}
	split := SplitForPartition(s)
	if _, err := split.Partition(); err != nil {
		t.Fatalf("split system does not pair: %v", err)
	}
	eqz, _ := split.Equation("z")
	if len(eqz.Terms) != 4 {
		t.Fatalf("z equation has %d terms after split, want 4 (paper's form)", len(eqz.Terms))
	}
	// Dynamics unchanged.
	point := map[ode.Var]float64{"x": 0.2, "y": 0.3, "z": 0.5}
	a, b := s.Eval(point), split.Eval(point)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatalf("split changed dynamics: %v vs %v", a, b)
		}
	}
}

func TestSplitForPartitionLeavesUnbalancedAlone(t *testing.T) {
	// An incomplete system has unbalanced monomials; splitting must not
	// invent or destroy terms there.
	s := ode.NewSystem()
	s.MustAddEquation("x", ode.NewTerm(-2, map[ode.Var]int{"x": 1}))
	s.MustAddEquation("y", ode.NewTerm(1, map[ode.Var]int{"x": 1}))
	split := SplitForPartition(s)
	eqx, _ := split.Equation("x")
	if len(eqx.Terms) != 1 || eqx.Terms[0].Coef != 2 {
		t.Fatalf("unbalanced monomial was modified: %v", eqx.Terms)
	}
}

// TestCompleteImpliesPartitionableAfterSplit settles the paper's open
// question (5) ("Is complete = completely partitionable?") constructively
// for polynomial systems: completeness means every monomial's signed
// coefficients sum to zero, so the SplitForPartition transport always
// produces an exact zero-sum pairing. Complete and completely
// partitionable therefore coincide up to the (dynamics-preserving) term
// splitting rewrite. The test generates random complete systems and
// asserts the pipeline always succeeds.
func TestCompleteImpliesPartitionableAfterSplit(t *testing.T) {
	vars := []ode.Var{"x", "y", "z"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Build a random complete system: generate random positive flows
		// and balance each with negatives of possibly different chunk
		// sizes spread over random equations.
		terms := make(map[ode.Var][]ode.Term)
		monomials := rng.Intn(4) + 1
		for m := 0; m < monomials; m++ {
			powers := map[ode.Var]int{}
			for _, v := range vars {
				powers[v] = rng.Intn(3)
			}
			total := float64(rng.Intn(9)+1) / 2
			// Positive side: split `total` into 1–3 chunks on random
			// equations.
			remaining := total
			for chunks := rng.Intn(3) + 1; chunks > 0; chunks-- {
				c := remaining
				if chunks > 1 {
					c = remaining * (0.2 + 0.6*rng.Float64())
				}
				v := vars[rng.Intn(len(vars))]
				terms[v] = append(terms[v], ode.NewTerm(c, powers))
				remaining -= c
			}
			// Negative side: different random chunking of the same total.
			remaining = total
			for chunks := rng.Intn(3) + 1; chunks > 0; chunks-- {
				c := remaining
				if chunks > 1 {
					c = remaining * (0.2 + 0.6*rng.Float64())
				}
				v := vars[rng.Intn(len(vars))]
				terms[v] = append(terms[v], ode.NewTerm(-c, powers))
				remaining -= c
			}
		}
		s := ode.NewSystem()
		for _, v := range vars {
			s.MustAddEquation(v, terms[v]...)
		}
		if !s.IsComplete() {
			return true // degenerate float cancellation; skip
		}
		split := SplitForPartition(s)
		if _, err := split.Partition(); err != nil {
			t.Logf("seed %d: complete system failed to pair after split: %v\n%s", seed, err, s)
			return false
		}
		// Splitting must preserve the dynamics.
		point := map[ode.Var]float64{"x": 0.3, "y": 0.5, "z": 0.2}
		a, b := s.Eval(point), split.Eval(point)
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-9*(1+math.Abs(a[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
