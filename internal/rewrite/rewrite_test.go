package rewrite

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"odeproto/internal/ode"
)

func mustParse(t *testing.T, src string, params map[string]float64) *ode.System {
	t.Helper()
	s, err := ode.Parse(src, params)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCompleteAddsSlack(t *testing.T) {
	s := mustParse(t, "x' = 3*x - 3*x^2 - 6*x*y\ny' = 3*y - 3*y^2 - 6*x*y", nil)
	c, err := Complete(s, "z")
	if err != nil {
		t.Fatal(err)
	}
	if !c.HasVar("z") {
		t.Fatal("slack variable missing")
	}
	if !c.IsComplete() {
		t.Fatalf("completed system not complete: %v", c.CompletenessDefect())
	}
	// Original equations unchanged.
	origEq, _ := s.Equation("x")
	newEq, _ := c.Equation("x")
	if len(origEq.Terms) != len(newEq.Terms) {
		t.Fatal("Complete modified original equations")
	}
}

func TestCompleteRejectsExistingVar(t *testing.T) {
	s := mustParse(t, "x' = -x*y\ny' = x*y", nil)
	if _, err := Complete(s, "x"); err == nil {
		t.Fatal("expected error for slack collision")
	}
}

func TestCompleteOnAlreadyCompleteSystem(t *testing.T) {
	s := mustParse(t, "x' = -x*y\ny' = x*y", nil)
	c, err := Complete(s, "z")
	if err != nil {
		t.Fatal(err)
	}
	// Slack equation should be empty: all terms cancel.
	eq, ok := c.Equation("z")
	if !ok {
		t.Fatal("z missing")
	}
	if len(eq.Terms) != 0 {
		t.Fatalf("slack equation should cancel to zero, got %v", eq.Terms)
	}
}

// TestLVRewriting verifies that Complete + Homogenize mechanically
// reproduces the paper's rewriting of the LV equations (6) into the
// mappable system (7).
func TestLVRewriting(t *testing.T) {
	six := mustParse(t, `
x' = 3*x - 3*x^2 - 6*x*y
y' = 3*y - 3*y^2 - 6*x*y
`, nil)
	got, err := MakeMappable(six, "z")
	if err != nil {
		t.Fatal(err)
	}
	want := mustParse(t, `
x' = 3*x*z - 3*x*y
y' = 3*y*z - 3*x*y
z' = -3*x*z - 3*y*z + 3*x*y + 3*x*y
`, nil)
	// Compare by evaluation on random fraction points.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		x := rng.Float64()
		y := rng.Float64() * (1 - x)
		z := 1 - x - y
		p := map[ode.Var]float64{"x": x, "y": y, "z": z}
		g, w := got.Eval(p), want.Eval(p)
		gp, wp := got.PointFromVec(g), want.PointFromVec(w)
		for _, v := range []ode.Var{"x", "y", "z"} {
			if math.Abs(gp[v]-wp[v]) > 1e-9 {
				t.Fatalf("trial %d: rewritten %s' = %v, paper's (7) gives %v", trial, v, gp[v], wp[v])
			}
		}
	}
	if !got.IsCompletelyPartitionable() {
		t.Fatal("rewritten LV not completely partitionable")
	}
	if !got.IsRestrictedPolynomial() {
		t.Fatal("rewritten LV not restricted polynomial")
	}
}

func TestNormalizeEpidemic(t *testing.T) {
	// Counts form: x' = -(1/N)xy, y' = (1/N)xy with N = 50.
	const n = 50.0
	counts := mustParse(t, "x' = -0.02*x*y\ny' = 0.02*x*y", nil)
	frac := Normalize(counts, n)
	eq, _ := frac.Equation("x")
	// Coefficient should become 0.02 * 50^(2-1) = 1.
	if len(eq.Terms) != 1 || math.Abs(eq.Terms[0].Coef-1) > 1e-12 {
		t.Fatalf("normalized terms = %v, want coefficient 1", eq.Terms)
	}
}

func TestNormalizeLinearTermUnchanged(t *testing.T) {
	s := mustParse(t, "x' = -0.5*x\ny' = 0.5*x", nil)
	n := Normalize(s, 1000)
	eq, _ := n.Equation("x")
	if eq.Terms[0].Coef != 0.5 {
		t.Fatalf("degree-1 coefficient changed: %v", eq.Terms[0].Coef)
	}
}

func TestNormalizeConstantTerm(t *testing.T) {
	// Degree-0 term scales by N^{-1}.
	s := ode.NewSystem()
	s.MustAddEquation("x", ode.NewTerm(10, nil))
	s.MustAddEquation("y", ode.NewTerm(-10, nil))
	n := Normalize(s, 100)
	eq, _ := n.Equation("x")
	if math.Abs(eq.Terms[0].Coef-0.1) > 1e-12 {
		t.Fatalf("constant coefficient = %v, want 0.1", eq.Terms[0].Coef)
	}
}

func TestExpandConstants(t *testing.T) {
	s := ode.NewSystem()
	s.MustAddEquation("x", ode.NewTerm(-0.2, nil))
	s.MustAddEquation("y", ode.NewTerm(0.2, nil))
	e := ExpandConstants(s)
	eqx, _ := e.Equation("x")
	if len(eqx.Terms) != 2 {
		t.Fatalf("expected 2 expanded terms, got %v", eqx.Terms)
	}
	// Evaluate on a fraction point: must agree with original.
	p := map[ode.Var]float64{"x": 0.3, "y": 0.7}
	if math.Abs(eqx.Eval(p)+0.2) > 1e-12 {
		t.Fatalf("expansion changed value: %v", eqx.Eval(p))
	}
	for _, tm := range eqx.Terms {
		if tm.Degree() == 0 {
			t.Fatal("constant term survived expansion")
		}
	}
}

func TestHomogenizePreservesValuesOnSimplex(t *testing.T) {
	src := `
x' = 3*x - 3*x^2 - 6*x*y
y' = 3*y - 3*y^2 - 6*x*y
`
	s := mustParse(t, src, nil)
	c, err := Complete(s, "z")
	if err != nil {
		t.Fatal(err)
	}
	h := Homogenize(c)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		x := rng.Float64()
		y := rng.Float64() * (1 - x)
		p := map[ode.Var]float64{"x": x, "y": y, "z": 1 - x - y}
		a, b := c.Eval(p), h.Eval(p)
		for j := range a {
			if math.Abs(a[j]-b[j]) > 1e-9 {
				t.Fatalf("homogenize changed dynamics at %v: %v vs %v", p, a, b)
			}
		}
	}
}

func TestHomogenizeIdempotentOnHomogeneous(t *testing.T) {
	s := mustParse(t, "x' = -x*y\ny' = x*y", nil)
	h := Homogenize(s)
	eq, _ := h.Equation("x")
	if len(eq.Terms) != 1 || eq.Terms[0].MonomialKey() != "x*y" {
		t.Fatalf("homogeneous system changed: %v", eq.Terms)
	}
}

func TestCombineLikeTerms(t *testing.T) {
	s := ode.NewSystem()
	s.MustAddEquation("x",
		ode.NewTerm(2, map[ode.Var]int{"x": 1}),
		ode.NewTerm(-2, map[ode.Var]int{"x": 1}),
		ode.NewTerm(1, map[ode.Var]int{"y": 1}))
	s.MustAddEquation("y", ode.NewTerm(-1, map[ode.Var]int{"y": 1}))
	c := CombineLikeTerms(s)
	eq, _ := c.Equation("x")
	if len(eq.Terms) != 1 || eq.Terms[0].MonomialKey() != "y" {
		t.Fatalf("combine failed: %v", eq.Terms)
	}
}

// TestReduceOrderPaperExample reproduces the paper's §7 example:
// ẍ + ẋ = x, i.e. ẍ = x − ẋ, becomes x' = u; u' = x − u; and the slack
// equation z' = −x after completion.
func TestReduceOrderPaperExample(t *testing.T) {
	sys, err := ReduceOrderLinear("x", []float64{1, -1})
	if err != nil {
		t.Fatal(err)
	}
	if sys.NumVars() != 2 {
		t.Fatalf("NumVars = %d, want 2", sys.NumVars())
	}
	u := ode.Var("x_d1")
	eqx, _ := sys.Equation("x")
	if len(eqx.Terms) != 1 || eqx.Terms[0].MonomialKey() != string(u) {
		t.Fatalf("x' = %v, want +1*%s", eqx.Terms, u)
	}
	equ, _ := sys.Equation(u)
	p := map[ode.Var]float64{"x": 0.4, u: 0.1}
	if math.Abs(equ.Eval(p)-0.3) > 1e-12 {
		t.Fatalf("u' = %v, want x - u = 0.3", equ.Eval(p))
	}
	// Completion introduces z' = −x (u terms cancel: +u from x', −u from u').
	c, err := Complete(sys, "z")
	if err != nil {
		t.Fatal(err)
	}
	eqz, _ := c.Equation("z")
	if len(eqz.Terms) != 1 || eqz.Terms[0].MonomialKey() != "x" || !eqz.Terms[0].Negative {
		t.Fatalf("z' = %v, want -1*x", eqz.Terms)
	}
	if !c.IsComplete() {
		t.Fatal("completed higher-order system not complete")
	}
}

func TestReduceOrderValidation(t *testing.T) {
	if _, err := ReduceOrderLinear("x", nil); err == nil {
		t.Fatal("expected error for order 0")
	}
}

func TestReduceOrderThirdOrder(t *testing.T) {
	// x''' = 2x + 0·ẋ − ẍ
	sys, err := ReduceOrderLinear("x", []float64{2, 0, -1})
	if err != nil {
		t.Fatal(err)
	}
	if sys.NumVars() != 3 {
		t.Fatalf("NumVars = %d, want 3", sys.NumVars())
	}
	top, _ := sys.Equation("x_d2")
	p := map[ode.Var]float64{"x": 1, "x_d1": 5, "x_d2": 2}
	if got := top.Eval(p); math.Abs(got-0) > 1e-12 {
		t.Fatalf("x_d2' = %v, want 2·1 − 2 = 0", got)
	}
}

// Property: MakeMappable output is always complete and partitionable on
// random quadratic two-variable systems (when it succeeds), and evaluates
// identically to the source on the simplex.
func TestMakeMappableProperty(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		// Random small system: x' = a·x − b·x² − c·xy; y' = d·y − a·y² − c·xy
		// (coefficients in [1,8] to stay well-conditioned).
		coef := func(u uint8) float64 { return float64(u%8) + 1 }
		s := ode.NewSystem()
		s.MustAddEquation("x",
			ode.NewTerm(coef(a), map[ode.Var]int{"x": 1}),
			ode.NewTerm(-coef(b), map[ode.Var]int{"x": 2}),
			ode.NewTerm(-coef(c), map[ode.Var]int{"x": 1, "y": 1}))
		s.MustAddEquation("y",
			ode.NewTerm(coef(d), map[ode.Var]int{"y": 1}),
			ode.NewTerm(-coef(a), map[ode.Var]int{"y": 2}),
			ode.NewTerm(-coef(c), map[ode.Var]int{"x": 1, "y": 1}))
		m, err := MakeMappable(s, "z")
		if err != nil {
			// Not all random systems are mappable; that is fine. The
			// property under test is soundness of successful rewrites.
			return true
		}
		if !m.IsComplete() || !m.IsCompletelyPartitionable() {
			return false
		}
		rng := rand.New(rand.NewSource(int64(a) + int64(b)<<8 + int64(c)<<16 + int64(d)<<24))
		for i := 0; i < 20; i++ {
			x := rng.Float64()
			y := rng.Float64() * (1 - x)
			p := map[ode.Var]float64{"x": x, "y": y, "z": 1 - x - y}
			orig := s.Eval(p)
			rew := m.Eval(p)
			rp := m.PointFromVec(rew)
			op := s.PointFromVec(orig)
			if math.Abs(rp["x"]-op["x"]) > 1e-8 || math.Abs(rp["y"]-op["y"]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
