// Package ode represents systems of first-order polynomial differential
// equations of the form ẋ̄ = f̄(x̄), the source language of the paper's
// translation framework.
//
// The paper (§2) considers equation systems where every right-hand side is a
// sum of polynomial terms ±c·Π y^i with positive constants c and
// non-negative integer exponents i. This package provides:
//
//   - the term/equation/system representation and constructors that enforce
//     the polynomial form,
//   - evaluation of f̄ and of its symbolic Jacobian (used by the dynamics
//     analysis),
//   - the taxonomy predicates of §2 (complete, completely partitionable,
//     polynomial, restricted polynomial), and
//   - a small text DSL parser (see Parse) used by the CLI and the examples.
package ode

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Var names a variable of an equation system. A variable corresponds to a
// state of the generated protocol state machine, and its value to the
// fraction of processes occupying that state.
type Var string

// Term is a single signed polynomial term ±Coef · Π v^Powers[v].
// Coef is always strictly positive; the sign lives in Negative.
type Term struct {
	Coef     float64
	Negative bool
	Powers   map[Var]int
}

// NewTerm builds a term from a signed coefficient and exponent map. Zero
// exponents are dropped; a zero coefficient is rejected by Validate at
// system level but tolerated here so rewriting can construct intermediates.
func NewTerm(coef float64, powers map[Var]int) Term {
	t := Term{Coef: coef, Powers: make(map[Var]int, len(powers))}
	if coef < 0 {
		t.Negative = true
		t.Coef = -coef
	}
	for v, p := range powers {
		if p != 0 {
			t.Powers[v] = p
		}
	}
	return t
}

// Signed returns the signed coefficient (−Coef when Negative).
func (t Term) Signed() float64 {
	if t.Negative {
		return -t.Coef
	}
	return t.Coef
}

// Degree returns the total degree Σ exponents of the term. The paper writes
// this as |T|, the "total number of variable occurrences in term T".
func (t Term) Degree() int {
	d := 0
	for _, p := range t.Powers {
		d += p
	}
	return d
}

// Exponent returns the exponent of v in the term (0 when absent).
func (t Term) Exponent(v Var) int { return t.Powers[v] }

// Eval evaluates the signed term at the given point. Variables absent from
// the point are treated as zero.
func (t Term) Eval(point map[Var]float64) float64 {
	val := t.Signed()
	for v, p := range t.Powers {
		val *= math.Pow(point[v], float64(p))
	}
	return val
}

// MonomialKey returns a canonical textual key for the term's monomial part
// (ignoring coefficient and sign): variables sorted lexicographically with
// exponents. Two terms cancel exactly when their keys match and their
// signed coefficients sum to zero.
func (t Term) MonomialKey() string {
	vars := make([]string, 0, len(t.Powers))
	for v := range t.Powers {
		vars = append(vars, string(v))
	}
	sort.Strings(vars)
	var sb strings.Builder
	for i, v := range vars {
		if i > 0 {
			sb.WriteByte('*')
		}
		sb.WriteString(v)
		if p := t.Powers[Var(v)]; p != 1 {
			fmt.Fprintf(&sb, "^%d", p)
		}
	}
	if sb.Len() == 0 {
		return "1"
	}
	return sb.String()
}

// Clone returns a deep copy of the term.
func (t Term) Clone() Term {
	powers := make(map[Var]int, len(t.Powers))
	for v, p := range t.Powers {
		powers[v] = p
	}
	return Term{Coef: t.Coef, Negative: t.Negative, Powers: powers}
}

// String renders the term with its sign, e.g. "-0.5*x*y^2".
func (t Term) String() string {
	var sb strings.Builder
	if t.Negative {
		sb.WriteByte('-')
	} else {
		sb.WriteByte('+')
	}
	fmt.Fprintf(&sb, "%g", t.Coef)
	key := t.MonomialKey()
	if key != "1" {
		sb.WriteByte('*')
		sb.WriteString(key)
	}
	return sb.String()
}

// OrderedVars returns the term's variables in lexicographic order. The
// paper's One-Time-Sampling rule orders sampled targets "when ordered
// lexicographically" (§3.1); this is the canonical order used there.
func (t Term) OrderedVars() []Var {
	vars := make([]Var, 0, len(t.Powers))
	for v := range t.Powers {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })
	return vars
}

// Equation is the right-hand side fx(x̄) of a single equation ẋ = fx(x̄).
type Equation struct {
	Var   Var
	Terms []Term
}

// Eval evaluates the right-hand side at the given point.
func (e Equation) Eval(point map[Var]float64) float64 {
	var s float64
	for _, t := range e.Terms {
		s += t.Eval(point)
	}
	return s
}

// String renders the equation, e.g. "x' = -1*x*y +0.01*z".
func (e Equation) String() string {
	parts := make([]string, 0, len(e.Terms))
	for _, t := range e.Terms {
		parts = append(parts, t.String())
	}
	if len(parts) == 0 {
		parts = append(parts, "0")
	}
	return fmt.Sprintf("%s' = %s", e.Var, strings.Join(parts, " "))
}

// System is an ordered system of first-order polynomial differential
// equations, one per variable.
type System struct {
	vars []Var
	eqs  map[Var]Equation
}

// NewSystem returns an empty system.
func NewSystem() *System {
	return &System{eqs: make(map[Var]Equation)}
}

// AddEquation appends the equation ẋ = Σ terms for variable v. Adding a
// second equation for the same variable is an error.
func (s *System) AddEquation(v Var, terms ...Term) error {
	if _, dup := s.eqs[v]; dup {
		return fmt.Errorf("ode: duplicate equation for variable %q", v)
	}
	cloned := make([]Term, len(terms))
	for i, t := range terms {
		cloned[i] = t.Clone()
	}
	s.vars = append(s.vars, v)
	s.eqs[v] = Equation{Var: v, Terms: cloned}
	return nil
}

// MustAddEquation is AddEquation that panics on error; intended for
// package-level protocol definitions whose shape is fixed at compile time.
func (s *System) MustAddEquation(v Var, terms ...Term) {
	if err := s.AddEquation(v, terms...); err != nil {
		panic(err)
	}
}

// Vars returns the system's variables in insertion order. The caller must
// not modify the returned slice.
func (s *System) Vars() []Var { return s.vars }

// SortedVars returns the system's variables in lexicographic order.
func (s *System) SortedVars() []Var {
	out := make([]Var, len(s.vars))
	copy(out, s.vars)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HasVar reports whether the system defines an equation for v.
func (s *System) HasVar(v Var) bool {
	_, ok := s.eqs[v]
	return ok
}

// Equation returns the equation for v. The second result is false when the
// system has no equation for v.
func (s *System) Equation(v Var) (Equation, bool) {
	e, ok := s.eqs[v]
	return e, ok
}

// NumVars returns the number of variables (= equations) in the system.
func (s *System) NumVars() int { return len(s.vars) }

// Clone returns a deep copy of the system.
func (s *System) Clone() *System {
	c := NewSystem()
	for _, v := range s.vars {
		eq := s.eqs[v]
		c.MustAddEquation(v, eq.Terms...)
	}
	return c
}

// Validate checks structural invariants: every term references only
// declared variables, exponents are non-negative, and coefficients are
// strictly positive and finite.
func (s *System) Validate() error {
	for _, v := range s.vars {
		for i, t := range s.eqs[v].Terms {
			if t.Coef <= 0 || math.IsNaN(t.Coef) || math.IsInf(t.Coef, 0) {
				return fmt.Errorf("ode: equation %q term %d: coefficient %v is not strictly positive and finite", v, i, t.Coef)
			}
			for tv, p := range t.Powers {
				if p < 0 {
					return fmt.Errorf("ode: equation %q term %d: negative exponent %d for %q", v, i, p, tv)
				}
				if !s.HasVar(tv) {
					return fmt.Errorf("ode: equation %q term %d: references undeclared variable %q", v, i, tv)
				}
			}
		}
	}
	return nil
}

// Eval evaluates f̄ at point and returns the derivative of each variable in
// insertion order.
func (s *System) Eval(point map[Var]float64) []float64 {
	out := make([]float64, len(s.vars))
	for i, v := range s.vars {
		out[i] = s.eqs[v].Eval(point)
	}
	return out
}

// EvalVec evaluates f̄ at a point given as a vector aligned with Vars().
func (s *System) EvalVec(x []float64) []float64 {
	return s.Eval(s.PointFromVec(x))
}

// PointFromVec converts a vector aligned with Vars() into a point map.
func (s *System) PointFromVec(x []float64) map[Var]float64 {
	if len(x) != len(s.vars) {
		panic(fmt.Sprintf("ode: vector length %d, want %d", len(x), len(s.vars)))
	}
	point := make(map[Var]float64, len(s.vars))
	for i, v := range s.vars {
		point[v] = x[i]
	}
	return point
}

// VecFromPoint converts a point map into a vector aligned with Vars().
func (s *System) VecFromPoint(point map[Var]float64) []float64 {
	x := make([]float64, len(s.vars))
	for i, v := range s.vars {
		x[i] = point[v]
	}
	return x
}

// PartialDerivative returns the symbolic partial derivative ∂fx/∂y as a
// list of terms (possibly empty).
func (s *System) PartialDerivative(x, y Var) []Term {
	eq, ok := s.eqs[x]
	if !ok {
		return nil
	}
	var out []Term
	for _, t := range eq.Terms {
		p := t.Powers[y]
		if p == 0 {
			continue
		}
		d := t.Clone()
		d.Coef *= float64(p)
		if p == 1 {
			delete(d.Powers, y)
		} else {
			d.Powers[y] = p - 1
		}
		out = append(out, d)
	}
	return out
}

// JacobianAt evaluates the Jacobian matrix J[i][j] = ∂f_{vars[i]}/∂vars[j]
// at the given point, as row-major slices aligned with Vars().
func (s *System) JacobianAt(point map[Var]float64) [][]float64 {
	n := len(s.vars)
	jac := make([][]float64, n)
	for i, vi := range s.vars {
		jac[i] = make([]float64, n)
		for j, vj := range s.vars {
			var sum float64
			for _, t := range s.PartialDerivative(vi, vj) {
				sum += t.Eval(point)
			}
			jac[i][j] = sum
		}
	}
	return jac
}

// String renders the full system, one equation per line, in insertion order.
func (s *System) String() string {
	lines := make([]string, 0, len(s.vars))
	for _, v := range s.vars {
		lines = append(lines, s.eqs[v].String())
	}
	return strings.Join(lines, "\n")
}
