package ode

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"unicode"
)

// Parse reads an equation system from a small text DSL, one equation per
// line:
//
//	# endemic equations (1)
//	x' = -beta*x*y + alpha*z
//	y' = beta*x*y - gamma*y
//	z' = gamma*y - alpha*z
//
// Identifiers appearing on a left-hand side are variables; all other
// identifiers are parameters and must be present in params with a positive
// value (the paper's term constants c_T are positive by definition; signs
// are written explicitly). '#' starts a comment. Exponents are written
// v^k with integer k ≥ 0. Numeric literals and parameters multiply into the
// term coefficient.
func Parse(src string, params map[string]float64) (*System, error) {
	lines := strings.Split(src, "\n")

	// First pass: collect declared variables from left-hand sides.
	declared := make(map[Var]bool)
	type rawEq struct {
		lhs  Var
		rhs  string
		line int
	}
	var raws []rawEq
	for lineNo, line := range lines {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		eqIdx := strings.IndexByte(line, '=')
		if eqIdx < 0 {
			return nil, fmt.Errorf("ode: line %d: missing '=' in %q", lineNo+1, line)
		}
		lhs := strings.TrimSpace(line[:eqIdx])
		if !strings.HasSuffix(lhs, "'") {
			return nil, fmt.Errorf("ode: line %d: left-hand side %q must be of the form <var>'", lineNo+1, lhs)
		}
		name := strings.TrimSpace(strings.TrimSuffix(lhs, "'"))
		if !isIdent(name) {
			return nil, fmt.Errorf("ode: line %d: invalid variable name %q", lineNo+1, name)
		}
		v := Var(name)
		if declared[v] {
			return nil, fmt.Errorf("ode: line %d: duplicate equation for %q", lineNo+1, v)
		}
		declared[v] = true
		raws = append(raws, rawEq{lhs: v, rhs: line[eqIdx+1:], line: lineNo + 1})
	}
	if len(raws) == 0 {
		return nil, fmt.Errorf("ode: no equations found")
	}

	sys := NewSystem()
	for _, r := range raws {
		terms, err := parseExpr(r.rhs, declared, params)
		if err != nil {
			return nil, fmt.Errorf("ode: line %d: %w", r.line, err)
		}
		if err := sys.AddEquation(r.lhs, terms...); err != nil {
			return nil, err
		}
	}
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	return sys, nil
}

// MustParse is Parse that panics on error; for fixed, compile-time systems.
func MustParse(src string, params map[string]float64) *System {
	s, err := Parse(src, params)
	if err != nil {
		panic(err)
	}
	return s
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case unicode.IsLetter(r) || r == '_':
		case unicode.IsDigit(r) && i > 0:
		default:
			return false
		}
	}
	return true
}

type token struct {
	kind tokenKind
	text string
}

type tokenKind int

const (
	tokIdent tokenKind = iota + 1
	tokNumber
	tokPlus
	tokMinus
	tokStar
	tokCaret
)

func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '+':
			toks = append(toks, token{kind: tokPlus, text: "+"})
			i++
		case c == '-':
			toks = append(toks, token{kind: tokMinus, text: "-"})
			i++
		case c == '*':
			toks = append(toks, token{kind: tokStar, text: "*"})
			i++
		case c == '^':
			toks = append(toks, token{kind: tokCaret, text: "^"})
			i++
		case c >= '0' && c <= '9' || c == '.':
			j := i
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '.' || src[j] == 'e' || src[j] == 'E' ||
				((src[j] == '+' || src[j] == '-') && j > i && (src[j-1] == 'e' || src[j-1] == 'E'))) {
				j++
			}
			toks = append(toks, token{kind: tokNumber, text: src[i:j]})
			i = j
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			toks = append(toks, token{kind: tokIdent, text: src[i:j]})
			i = j
		default:
			return nil, fmt.Errorf("unexpected character %q", c)
		}
	}
	return toks, nil
}

// parseExpr parses "[sign] term {sign term}" where each term is a product
// of factors.
func parseExpr(src string, declared map[Var]bool, params map[string]float64) ([]Term, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	if len(toks) == 0 {
		return nil, fmt.Errorf("empty right-hand side")
	}
	var terms []Term
	pos := 0
	negative := false
	// Optional leading sign.
	if toks[pos].kind == tokPlus || toks[pos].kind == tokMinus {
		negative = toks[pos].kind == tokMinus
		pos++
	}
	for {
		term, next, err := parseProduct(toks, pos, declared, params)
		if err != nil {
			return nil, err
		}
		term.Negative = negative != term.Negative // sign folds with any negative numeric literal
		if term.Coef != 0 {
			// Zero terms (e.g. the bare "0" String() prints for empty
			// equations) contribute nothing and are dropped.
			terms = append(terms, term)
		}
		pos = next
		if pos >= len(toks) {
			return terms, nil
		}
		switch toks[pos].kind {
		case tokPlus:
			negative = false
		case tokMinus:
			negative = true
		default:
			return nil, fmt.Errorf("expected '+' or '-' between terms, got %q", toks[pos].text)
		}
		pos++
		if pos >= len(toks) {
			return nil, fmt.Errorf("dangling sign at end of expression")
		}
	}
}

func parseProduct(toks []token, pos int, declared map[Var]bool, params map[string]float64) (Term, int, error) {
	term := Term{Coef: 1, Powers: make(map[Var]int)}
	first := true
	for {
		if pos >= len(toks) {
			if first {
				return Term{}, pos, fmt.Errorf("expected a factor")
			}
			return term, pos, nil
		}
		t := toks[pos]
		switch t.kind {
		case tokNumber:
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return Term{}, pos, fmt.Errorf("bad number %q: %w", t.text, err)
			}
			term.Coef *= f
			pos++
		case tokIdent:
			pos++
			exp := 1
			if pos < len(toks) && toks[pos].kind == tokCaret {
				pos++
				if pos >= len(toks) || toks[pos].kind != tokNumber {
					return Term{}, pos, fmt.Errorf("expected integer exponent after '^'")
				}
				e, err := strconv.Atoi(toks[pos].text)
				if err != nil || e < 0 {
					return Term{}, pos, fmt.Errorf("exponent must be a non-negative integer, got %q", toks[pos].text)
				}
				exp = e
				pos++
			}
			if declared[Var(t.text)] {
				term.Powers[Var(t.text)] += exp
			} else {
				val, ok := params[t.text]
				if !ok {
					return Term{}, pos, fmt.Errorf("unknown identifier %q (not a variable, and not in params)", t.text)
				}
				term.Coef *= math.Pow(val, float64(exp))
			}
		default:
			if first {
				return Term{}, pos, fmt.Errorf("expected a factor, got %q", t.text)
			}
			return term, pos, nil
		}
		first = false
		// Factors may be separated by explicit '*' or juxtaposed before a sign.
		if pos < len(toks) && toks[pos].kind == tokStar {
			pos++
			continue
		}
		if pos >= len(toks) || toks[pos].kind == tokPlus || toks[pos].kind == tokMinus {
			if term.Coef < 0 {
				term.Negative = !term.Negative
				term.Coef = -term.Coef
			}
			// Drop zero exponents introduced by v^0.
			for v, p := range term.Powers {
				if p == 0 {
					delete(term.Powers, v)
				}
			}
			return term, pos, nil
		}
	}
}
