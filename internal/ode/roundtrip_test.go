package ode

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestStringParseRoundTrip: rendering a system with String() and parsing
// it back yields identical dynamics — the DSL is a faithful serialization.
func TestStringParseRoundTrip(t *testing.T) {
	vars := []Var{"x", "y", "z"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSystem()
		for _, v := range vars {
			nTerms := rng.Intn(4)
			terms := make([]Term, 0, nTerms)
			for i := 0; i < nTerms; i++ {
				coef := float64(rng.Intn(19)+1) / 4
				if rng.Intn(2) == 0 {
					coef = -coef
				}
				powers := map[Var]int{}
				for _, w := range vars {
					powers[w] = rng.Intn(3)
				}
				terms = append(terms, NewTerm(coef, powers))
			}
			s.MustAddEquation(v, terms...)
		}
		reparsed, err := Parse(s.String(), nil)
		if err != nil {
			t.Logf("seed %d: reparse failed: %v\n%s", seed, err, s)
			return false
		}
		for trial := 0; trial < 10; trial++ {
			point := map[Var]float64{}
			for _, v := range vars {
				point[v] = rng.Float64()
			}
			a, b := s.Eval(point), reparsed.Eval(point)
			for i := range a {
				if math.Abs(a[i]-b[i]) > 1e-9*(1+math.Abs(a[i])) {
					t.Logf("seed %d: eval mismatch %v vs %v at %v", seed, a, b, point)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestClassifyInvariantUnderRoundTrip: taxonomy classification survives
// serialization.
func TestClassifyInvariantUnderRoundTrip(t *testing.T) {
	srcs := []string{
		"x' = -x*y\ny' = x*y",
		"x' = 3*x*z - 3*x*y\ny' = 3*y*z - 3*x*y\nz' = -3*x*z - 3*y*z + 3*x*y + 3*x*y",
		"x' = -y^2\ny' = y^2",
		"x' = -x\ny' = 0.5*x",
	}
	for _, src := range srcs {
		s, err := Parse(src, nil)
		if err != nil {
			t.Fatal(err)
		}
		r, err := Parse(s.String(), nil)
		if err != nil {
			t.Fatalf("reparse of %q: %v", src, err)
		}
		if s.Classify() != r.Classify() {
			t.Fatalf("classification changed on round trip: %v vs %v", s.Classify(), r.Classify())
		}
	}
}

// TestPartitionStableUnderVariableOrder: pairing does not depend on
// equation insertion order (the lexicographic canonicalization guarantees
// determinism).
func TestPartitionStableUnderVariableOrder(t *testing.T) {
	forward := NewSystem()
	forward.MustAddEquation("a", NewTerm(-1, map[Var]int{"a": 1, "b": 1}))
	forward.MustAddEquation("b", NewTerm(1, map[Var]int{"a": 1, "b": 1}))
	backward := NewSystem()
	backward.MustAddEquation("b", NewTerm(1, map[Var]int{"a": 1, "b": 1}))
	backward.MustAddEquation("a", NewTerm(-1, map[Var]int{"a": 1, "b": 1}))
	p1, err := forward.Partition()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := backward.Partition()
	if err != nil {
		t.Fatal(err)
	}
	if len(p1) != 1 || len(p2) != 1 {
		t.Fatalf("pairings %v vs %v", p1, p2)
	}
	if p1[0].Neg.Var != p2[0].Neg.Var || p1[0].Pos.Var != p2[0].Pos.Var {
		t.Fatalf("pairing depends on insertion order: %v vs %v", p1, p2)
	}
}
