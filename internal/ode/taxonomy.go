package ode

import (
	"fmt"
	"math"
	"sort"
)

// relTol is the relative tolerance used when comparing coefficients during
// completeness and partitionability checks. Source systems are written with
// exact decimal constants, so a tight tolerance suffices.
const relTol = 1e-9

func coefsEqual(a, b float64) bool {
	return math.Abs(a-b) <= relTol*(1+math.Max(math.Abs(a), math.Abs(b)))
}

// TermRef locates one term inside a system: the Index-th term of the
// equation for Var.
type TermRef struct {
	Var   Var
	Index int
}

// Term resolves the reference against s. It panics on dangling references,
// which can only arise from programmer error.
func (r TermRef) Term(s *System) Term {
	eq, ok := s.Equation(r.Var)
	if !ok || r.Index < 0 || r.Index >= len(eq.Terms) {
		panic(fmt.Sprintf("ode: dangling term reference %v", r))
	}
	return eq.Terms[r.Index]
}

// Pair is a matched (−T, +T) term pair whose sum is zero. In the
// translation framework a pair induces a flow of processes from the state
// owning the negative term to the state owning the positive term.
type Pair struct {
	Neg TermRef
	Pos TermRef
}

// CompletenessDefect symbolically sums all right-hand sides and returns the
// residual signed coefficient per monomial. An empty map means the system
// is complete (Σ fx = 0 identically, §2).
func (s *System) CompletenessDefect() map[string]float64 {
	residual := make(map[string]float64)
	scale := make(map[string]float64)
	for _, v := range s.vars {
		eq := s.eqs[v]
		for _, t := range eq.Terms {
			k := t.MonomialKey()
			residual[k] += t.Signed()
			scale[k] += t.Coef
		}
	}
	for k, r := range residual {
		if math.Abs(r) <= relTol*(1+scale[k]) {
			delete(residual, k)
		}
	}
	return residual
}

// IsComplete reports whether all right-hand sides sum to zero identically
// (the "complete equation system" property of §2). Completeness is what
// lets variables be read as fractions of a conserved population.
func (s *System) IsComplete() bool {
	return len(s.CompletenessDefect()) == 0
}

// Partition groups every term of the system into (−T, +T) pairs that sum
// to zero, returning one Pair per match. It returns an error describing the
// first unmatched term when no such grouping exists. A system admitting a
// full pairing is "completely partitionable" (§2).
func (s *System) Partition() ([]Pair, error) {
	type bucketEntry struct {
		ref  TermRef
		coef float64
	}
	neg := make(map[string][]bucketEntry)
	pos := make(map[string][]bucketEntry)
	for _, v := range s.vars {
		eq := s.eqs[v]
		for i, t := range eq.Terms {
			entry := bucketEntry{ref: TermRef{Var: v, Index: i}, coef: t.Coef}
			k := t.MonomialKey()
			if t.Negative {
				neg[k] = append(neg[k], entry)
			} else {
				pos[k] = append(pos[k], entry)
			}
		}
	}

	var pairs []Pair
	// Deterministic iteration order over monomial keys.
	keys := make([]string, 0, len(neg))
	for k := range neg {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		negs, poss := neg[k], pos[k]
		sort.SliceStable(negs, func(i, j int) bool { return negs[i].coef < negs[j].coef })
		sort.SliceStable(poss, func(i, j int) bool { return poss[i].coef < poss[j].coef })
		if len(negs) != len(poss) {
			return nil, fmt.Errorf("ode: monomial %s has %d negative and %d positive occurrences; cannot pair", k, len(negs), len(poss))
		}
		for i := range negs {
			if !coefsEqual(negs[i].coef, poss[i].coef) {
				return nil, fmt.Errorf("ode: monomial %s: negative coefficient %g has no matching positive (closest %g)", k, negs[i].coef, poss[i].coef)
			}
			pairs = append(pairs, Pair{Neg: negs[i].ref, Pos: poss[i].ref})
		}
		delete(pos, k)
	}
	for k, remaining := range pos {
		if len(remaining) > 0 {
			return nil, fmt.Errorf("ode: monomial %s has %d positive terms with no negative partner", k, len(remaining))
		}
	}
	return pairs, nil
}

// IsCompletelyPartitionable reports whether the system is complete and its
// terms can be grouped into zero-sum pairs (§2).
func (s *System) IsCompletelyPartitionable() bool {
	if !s.IsComplete() {
		return false
	}
	_, err := s.Partition()
	return err == nil
}

// RestrictedViolations returns every negative term −c·Π y^i in the equation
// for x whose exponent of x is zero — i.e. the terms that break the
// "restricted polynomial" property of §2. An empty result means the system
// is restricted polynomial and can be translated with Flipping and
// One-Time-Sampling alone; violations require Tokenizing (§6).
func (s *System) RestrictedViolations() []TermRef {
	var out []TermRef
	for _, v := range s.vars {
		eq := s.eqs[v]
		for i, t := range eq.Terms {
			if t.Negative && t.Exponent(v) < 1 {
				out = append(out, TermRef{Var: v, Index: i})
			}
		}
	}
	return out
}

// IsRestrictedPolynomial reports whether every negative term in fx contains
// x with exponent at least one (§2).
func (s *System) IsRestrictedPolynomial() bool {
	return len(s.RestrictedViolations()) == 0
}

// Class summarizes where a system sits in the paper's taxonomy (§2).
type Class struct {
	Polynomial              bool
	Complete                bool
	CompletelyPartitionable bool
	RestrictedPolynomial    bool
}

// Mappable reports whether the framework can translate the system at all:
// it must be polynomial and completely partitionable (Theorem 5, as
// corrected in the errata).
func (c Class) Mappable() bool {
	return c.Polynomial && c.CompletelyPartitionable
}

// NeedsTokenizing reports whether translation requires the Tokenizing
// technique of §6 in addition to Flipping and One-Time-Sampling.
func (c Class) NeedsTokenizing() bool {
	return c.Mappable() && !c.RestrictedPolynomial
}

// String renders the classification compactly.
func (c Class) String() string {
	mark := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}
	return fmt.Sprintf("polynomial=%s complete=%s completely-partitionable=%s restricted=%s",
		mark(c.Polynomial), mark(c.Complete), mark(c.CompletelyPartitionable), mark(c.RestrictedPolynomial))
}

// Classify runs all taxonomy predicates. A system failing Validate is not
// polynomial in the paper's sense (its constructors only admit polynomial
// terms, but coefficients could still be non-finite).
func (s *System) Classify() Class {
	c := Class{Polynomial: s.Validate() == nil}
	if !c.Polynomial {
		return c
	}
	c.Complete = s.IsComplete()
	if c.Complete {
		_, err := s.Partition()
		c.CompletelyPartitionable = err == nil
	}
	c.RestrictedPolynomial = s.IsRestrictedPolynomial()
	return c
}
