package ode

import (
	"math"
	"strings"
	"testing"
)

// Epidemic returns the paper's motivating equation system (0):
// x' = -xy, y' = xy.
func epidemicSystem(t *testing.T) *System {
	t.Helper()
	s, err := Parse("x' = -x*y\ny' = x*y", nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// Endemic returns the paper's equation system (1).
func endemicSystem(t *testing.T, beta, gamma, alpha float64) *System {
	t.Helper()
	src := `
# endemic equations (1)
x' = -beta*x*y + alpha*z
y' = beta*x*y - gamma*y
z' = gamma*y - alpha*z
`
	s, err := Parse(src, map[string]float64{"beta": beta, "gamma": gamma, "alpha": alpha})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// lvSystem returns the paper's rewritten LV equation system (7).
func lvSystem(t *testing.T) *System {
	t.Helper()
	src := `
x' = 3*x*z - 3*x*y
y' = 3*y*z - 3*x*y
z' = -3*x*z - 3*y*z + 3*x*y + 3*x*y
`
	s, err := Parse(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTermBasics(t *testing.T) {
	tm := NewTerm(-2.5, map[Var]int{"x": 1, "y": 2, "w": 0})
	if !tm.Negative || tm.Coef != 2.5 {
		t.Fatalf("sign handling broken: %+v", tm)
	}
	if tm.Signed() != -2.5 {
		t.Fatalf("Signed() = %v", tm.Signed())
	}
	if tm.Degree() != 3 {
		t.Fatalf("Degree() = %d, want 3", tm.Degree())
	}
	if tm.Exponent("w") != 0 {
		t.Fatal("zero exponents should be dropped")
	}
	if got := tm.MonomialKey(); got != "x*y^2" {
		t.Fatalf("MonomialKey() = %q", got)
	}
}

func TestTermEval(t *testing.T) {
	tm := NewTerm(3, map[Var]int{"x": 2, "y": 1})
	got := tm.Eval(map[Var]float64{"x": 2, "y": 5})
	if got != 60 {
		t.Fatalf("Eval = %v, want 60", got)
	}
	// Missing variable treated as zero.
	if v := tm.Eval(map[Var]float64{"x": 2}); v != 0 {
		t.Fatalf("Eval with missing var = %v, want 0", v)
	}
}

func TestTermCloneIndependent(t *testing.T) {
	tm := NewTerm(1, map[Var]int{"x": 1})
	c := tm.Clone()
	c.Powers["x"] = 5
	if tm.Powers["x"] != 1 {
		t.Fatal("Clone shares Powers map")
	}
}

func TestTermStringConstant(t *testing.T) {
	tm := NewTerm(0.5, nil)
	if got := tm.String(); got != "+0.5" {
		t.Fatalf("String() = %q", got)
	}
	if got := tm.MonomialKey(); got != "1" {
		t.Fatalf("constant MonomialKey = %q", got)
	}
}

func TestOrderedVars(t *testing.T) {
	tm := NewTerm(1, map[Var]int{"z": 1, "a": 2, "m": 1})
	got := tm.OrderedVars()
	want := []Var{"a", "m", "z"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("OrderedVars = %v, want %v", got, want)
		}
	}
}

func TestSystemDuplicateEquation(t *testing.T) {
	s := NewSystem()
	if err := s.AddEquation("x", NewTerm(1, map[Var]int{"x": 1})); err != nil {
		t.Fatal(err)
	}
	if err := s.AddEquation("x"); err == nil {
		t.Fatal("expected duplicate-equation error")
	}
}

func TestSystemEvalEpidemic(t *testing.T) {
	s := epidemicSystem(t)
	d := s.Eval(map[Var]float64{"x": 0.3, "y": 0.7})
	if math.Abs(d[0]+0.21) > 1e-12 || math.Abs(d[1]-0.21) > 1e-12 {
		t.Fatalf("Eval = %v, want [-0.21 0.21]", d)
	}
}

func TestVecRoundTrip(t *testing.T) {
	s := endemicSystem(t, 4, 1, 0.01)
	x := []float64{0.25, 0.5, 0.25}
	p := s.PointFromVec(x)
	back := s.VecFromPoint(p)
	for i := range x {
		if back[i] != x[i] {
			t.Fatalf("round trip broke at %d: %v vs %v", i, back, x)
		}
	}
}

func TestValidateRejectsUndeclared(t *testing.T) {
	s := NewSystem()
	s.MustAddEquation("x", NewTerm(1, map[Var]int{"q": 1}))
	if err := s.Validate(); err == nil {
		t.Fatal("expected undeclared-variable error")
	}
}

func TestValidateRejectsNonPositiveCoef(t *testing.T) {
	s := NewSystem()
	s.MustAddEquation("x", Term{Coef: 0, Powers: map[Var]int{"x": 1}})
	if err := s.Validate(); err == nil {
		t.Fatal("expected non-positive coefficient error")
	}
}

func TestPartialDerivative(t *testing.T) {
	s := endemicSystem(t, 4, 1, 0.01)
	// ∂fx/∂y where fx = -4xy + 0.01z: expect -4x.
	terms := s.PartialDerivative("x", "y")
	if len(terms) != 1 {
		t.Fatalf("got %d terms, want 1", len(terms))
	}
	got := terms[0].Eval(map[Var]float64{"x": 0.5})
	if math.Abs(got+2) > 1e-12 {
		t.Fatalf("∂fx/∂y at x=0.5 = %v, want -2", got)
	}
	// ∂fy/∂y where fy = 4xy - y: expect 4x - 1.
	terms = s.PartialDerivative("y", "y")
	var sum float64
	for _, tm := range terms {
		sum += tm.Eval(map[Var]float64{"x": 0.5, "y": 0.3})
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("∂fy/∂y = %v, want 1", sum)
	}
}

func TestPartialDerivativeSquare(t *testing.T) {
	s := NewSystem()
	s.MustAddEquation("x", NewTerm(-1, map[Var]int{"y": 2}))
	s.MustAddEquation("y", NewTerm(1, map[Var]int{"y": 2}))
	terms := s.PartialDerivative("x", "y")
	if len(terms) != 1 {
		t.Fatalf("got %d terms, want 1", len(terms))
	}
	got := terms[0].Eval(map[Var]float64{"y": 3})
	if got != -6 {
		t.Fatalf("d(-y^2)/dy at 3 = %v, want -6", got)
	}
}

func TestJacobianAt(t *testing.T) {
	s := epidemicSystem(t)
	j := s.JacobianAt(map[Var]float64{"x": 0.3, "y": 0.7})
	// f = (-xy, xy); J = [[-y, -x], [y, x]].
	want := [][]float64{{-0.7, -0.3}, {0.7, 0.3}}
	for i := range want {
		for k := range want[i] {
			if math.Abs(j[i][k]-want[i][k]) > 1e-12 {
				t.Fatalf("J[%d][%d] = %v, want %v", i, k, j[i][k], want[i][k])
			}
		}
	}
}

func TestCloneDeep(t *testing.T) {
	s := epidemicSystem(t)
	c := s.Clone()
	eq, _ := c.Equation("x")
	eq.Terms[0].Powers["x"] = 99
	orig, _ := s.Equation("x")
	if orig.Terms[0].Powers["x"] == 99 {
		t.Fatal("Clone shares term storage")
	}
}

func TestSystemString(t *testing.T) {
	s := epidemicSystem(t)
	str := s.String()
	if !strings.Contains(str, "x' =") || !strings.Contains(str, "y' =") {
		t.Fatalf("String() = %q", str)
	}
}

// --- taxonomy ---

func TestEpidemicTaxonomy(t *testing.T) {
	s := epidemicSystem(t)
	c := s.Classify()
	if !c.Polynomial || !c.Complete || !c.CompletelyPartitionable || !c.RestrictedPolynomial {
		t.Fatalf("epidemic classification = %v", c)
	}
	if !c.Mappable() || c.NeedsTokenizing() {
		t.Fatalf("epidemic should be mappable without tokenizing: %v", c)
	}
}

func TestEndemicTaxonomy(t *testing.T) {
	s := endemicSystem(t, 4, 1, 0.01)
	c := s.Classify()
	if !c.Mappable() || !c.RestrictedPolynomial {
		t.Fatalf("endemic classification = %v", c)
	}
}

func TestLVTaxonomy(t *testing.T) {
	s := lvSystem(t)
	c := s.Classify()
	if !c.Complete {
		t.Fatalf("LV (7) should be complete: defect %v", s.CompletenessDefect())
	}
	if !c.CompletelyPartitionable {
		t.Fatalf("LV (7) should be completely partitionable")
	}
	if !c.RestrictedPolynomial {
		t.Fatalf("LV (7) should be restricted polynomial")
	}
}

func TestLVOriginalNotPartitionable(t *testing.T) {
	// Equations (6) before rewriting: x' = 3x(1-x-2y) = 3x -3x^2 -6xy, etc.
	src := `
x' = 3*x - 3*x^2 - 6*x*y
y' = 3*y - 3*y^2 - 6*x*y
`
	s, err := Parse(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.IsComplete() {
		t.Fatal("LV (6) without z should not be complete")
	}
	if s.IsCompletelyPartitionable() {
		t.Fatal("LV (6) should not be completely partitionable")
	}
}

func TestIncompleteSystem(t *testing.T) {
	s := NewSystem()
	s.MustAddEquation("x", NewTerm(-1, map[Var]int{"x": 1}))
	s.MustAddEquation("y", NewTerm(0.5, map[Var]int{"x": 1}))
	if s.IsComplete() {
		t.Fatal("system with residual -0.5x should not be complete")
	}
	defect := s.CompletenessDefect()
	if r, ok := defect["x"]; !ok || math.Abs(r+0.5) > 1e-12 {
		t.Fatalf("defect = %v, want x: -0.5", defect)
	}
}

func TestCompleteButNotPartitionable(t *testing.T) {
	// x' = -2xy, y' = +xy +xy: complete (sums to zero) and the two +xy
	// halves can pair only if coefficients match; -2xy vs two +1xy cannot
	// pair into zero-sum pairs.
	s := NewSystem()
	s.MustAddEquation("x", NewTerm(-2, map[Var]int{"x": 1, "y": 1}))
	s.MustAddEquation("y",
		NewTerm(1, map[Var]int{"x": 1, "y": 1}),
		NewTerm(1, map[Var]int{"x": 1, "y": 1}))
	if !s.IsComplete() {
		t.Fatal("should be complete")
	}
	if s.IsCompletelyPartitionable() {
		t.Fatal("coefficient-mismatched terms must not pair")
	}
}

func TestPartitionPairsCoverAllTermsOnce(t *testing.T) {
	for name, sys := range map[string]*System{
		"epidemic": epidemicSystem(t),
		"endemic":  endemicSystem(t, 4, 1, 0.01),
		"lv":       lvSystem(t),
	} {
		pairs, err := sys.Partition()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		seen := make(map[TermRef]int)
		total := 0
		for _, v := range sys.Vars() {
			eq, _ := sys.Equation(v)
			total += len(eq.Terms)
		}
		for _, p := range pairs {
			seen[p.Neg]++
			seen[p.Pos]++
			if !p.Neg.Term(sys).Negative {
				t.Fatalf("%s: Neg side of pair is positive", name)
			}
			if p.Pos.Term(sys).Negative {
				t.Fatalf("%s: Pos side of pair is negative", name)
			}
			if p.Neg.Term(sys).MonomialKey() != p.Pos.Term(sys).MonomialKey() {
				t.Fatalf("%s: paired terms have different monomials", name)
			}
		}
		if len(seen) != total {
			t.Fatalf("%s: pairing covered %d distinct terms, want %d", name, len(seen), total)
		}
		for ref, n := range seen {
			if n != 1 {
				t.Fatalf("%s: term %v used %d times", name, ref, n)
			}
		}
	}
}

func TestRestrictedViolations(t *testing.T) {
	// x' = -y^2, y' = +y^2: the -y^2 term in fx has no x — a violation.
	s := NewSystem()
	s.MustAddEquation("x", NewTerm(-1, map[Var]int{"y": 2}))
	s.MustAddEquation("y", NewTerm(1, map[Var]int{"y": 2}))
	v := s.RestrictedViolations()
	if len(v) != 1 || v[0].Var != "x" {
		t.Fatalf("violations = %v", v)
	}
	c := s.Classify()
	if !c.NeedsTokenizing() {
		t.Fatalf("should need tokenizing: %v", c)
	}
}

// --- parser ---

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"missing equals", "x' -x"},
		{"bad lhs", "x = -x"},
		{"unknown ident", "x' = -k*x"},
		{"dangling sign", "x' = -x +"},
		{"bad exponent", "x' = -x^y"},
		{"negative exponent", "x' = -x^-1"},
		{"empty", "   \n# only a comment\n"},
		{"bad char", "x' = -x & y"},
		{"duplicate lhs", "x' = -x\nx' = x"},
	}
	for _, tc := range cases {
		if _, err := Parse(tc.src, nil); err == nil {
			t.Errorf("%s: expected error for %q", tc.name, tc.src)
		}
	}
}

func TestParseParameters(t *testing.T) {
	s, err := Parse("x' = -2*beta*x\ny' = 2*beta*x", map[string]float64{"beta": 3})
	if err != nil {
		t.Fatal(err)
	}
	eq, _ := s.Equation("x")
	if len(eq.Terms) != 1 || eq.Terms[0].Coef != 6 || !eq.Terms[0].Negative {
		t.Fatalf("terms = %v", eq.Terms)
	}
}

func TestParseParameterExponent(t *testing.T) {
	s, err := Parse("x' = -b^2*x\ny' = b^2*x", map[string]float64{"b": 3})
	if err != nil {
		t.Fatal(err)
	}
	eq, _ := s.Equation("x")
	if eq.Terms[0].Coef != 9 {
		t.Fatalf("coef = %v, want 9", eq.Terms[0].Coef)
	}
}

func TestParseVariableExponent(t *testing.T) {
	s, err := Parse("x' = -x*y^2\ny' = x*y^2", nil)
	if err != nil {
		t.Fatal(err)
	}
	eq, _ := s.Equation("x")
	if eq.Terms[0].Exponent("y") != 2 || eq.Terms[0].Exponent("x") != 1 {
		t.Fatalf("powers = %v", eq.Terms[0].Powers)
	}
}

func TestParseRepeatedVariableMultiplies(t *testing.T) {
	s, err := Parse("x' = -x*x\ny' = x*x", nil)
	if err != nil {
		t.Fatal(err)
	}
	eq, _ := s.Equation("x")
	if eq.Terms[0].Exponent("x") != 2 {
		t.Fatalf("x*x should give exponent 2, got %v", eq.Terms[0].Powers)
	}
}

func TestParseScientificNotation(t *testing.T) {
	s, err := Parse("x' = -1e-3*x\ny' = 1e-3*x", nil)
	if err != nil {
		t.Fatal(err)
	}
	eq, _ := s.Equation("x")
	if eq.Terms[0].Coef != 1e-3 {
		t.Fatalf("coef = %v", eq.Terms[0].Coef)
	}
}

func TestParseCommentsAndBlankLines(t *testing.T) {
	src := "\n# leading comment\n\nx' = -x*y # trailing comment\n\ny' = x*y\n"
	s, err := Parse(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumVars() != 2 {
		t.Fatalf("NumVars = %d", s.NumVars())
	}
}

func TestParseEndemicMatchesHandBuilt(t *testing.T) {
	parsed := endemicSystem(t, 4, 1.0, 0.01)
	hand := NewSystem()
	hand.MustAddEquation("x",
		NewTerm(-4, map[Var]int{"x": 1, "y": 1}),
		NewTerm(0.01, map[Var]int{"z": 1}))
	hand.MustAddEquation("y",
		NewTerm(4, map[Var]int{"x": 1, "y": 1}),
		NewTerm(-1, map[Var]int{"y": 1}))
	hand.MustAddEquation("z",
		NewTerm(1, map[Var]int{"y": 1}),
		NewTerm(-0.01, map[Var]int{"z": 1}))
	point := map[Var]float64{"x": 0.2, "y": 0.5, "z": 0.3}
	a, b := parsed.Eval(point), hand.Eval(point)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatalf("parsed and hand-built disagree: %v vs %v", a, b)
		}
	}
}
