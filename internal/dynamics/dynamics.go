// Package dynamics provides the nonlinear-dynamics analysis toolkit the
// paper applies to its generated protocols (§4.1.3, §4.2.2): equilibrium
// finding, linearization, trace/determinant and eigenvalue classification
// of equilibria (after Strogatz), and perturbation analysis.
//
// Complete equation systems conserve Σx, so their Jacobians are singular
// along the conservation direction; the package therefore offers both
// unconstrained linearization and simplex-constrained linearization (which
// eliminates one variable through z = 1 − Σ others) — the latter is what
// the paper effectively does when it reduces the endemic system to the 2×2
// matrix A of equation (4).
package dynamics

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"

	"odeproto/internal/linalg"
	"odeproto/internal/ode"
)

// EquilibriumClass labels the local behaviour around an equilibrium point,
// following the trace–determinant classification of Strogatz used by the
// paper.
type EquilibriumClass int

const (
	// StableNode: all eigenvalues real and negative.
	StableNode EquilibriumClass = iota + 1
	// StableSpiral: complex eigenvalues with negative real part — the
	// damped-oscillation convergence the paper observes for endemics
	// (Figure 2).
	StableSpiral
	// UnstableNode: all eigenvalues real and positive.
	UnstableNode
	// UnstableSpiral: complex eigenvalues with positive real part.
	UnstableSpiral
	// Saddle: real eigenvalues of both signs (Δ < 0 in 2D) — "partly
	// stable", like the endemic first equilibrium.
	Saddle
	// Center: purely imaginary eigenvalues.
	Center
	// Degenerate: at least one zero eigenvalue; linearization does not
	// decide stability.
	Degenerate
)

// String names the class.
func (c EquilibriumClass) String() string {
	switch c {
	case StableNode:
		return "stable node"
	case StableSpiral:
		return "stable spiral"
	case UnstableNode:
		return "unstable node"
	case UnstableSpiral:
		return "unstable spiral"
	case Saddle:
		return "saddle"
	case Center:
		return "center"
	case Degenerate:
		return "degenerate"
	default:
		return fmt.Sprintf("EquilibriumClass(%d)", int(c))
	}
}

// Stable reports whether small perturbations die out (asymptotic
// stability).
func (c EquilibriumClass) Stable() bool {
	return c == StableNode || c == StableSpiral
}

// ClassifyTraceDet classifies a 2D equilibrium from the trace τ and
// determinant Δ of its linearization, exactly as in the paper's proof of
// Theorem 3: τ < 0 ∧ Δ > 0 ⇒ stable; τ > 0 ∧ Δ > 0 ⇒ unstable;
// Δ < 0 ⇒ saddle. The spiral/node split is τ² − 4Δ < 0 vs > 0.
func ClassifyTraceDet(tau, delta float64) EquilibriumClass {
	const eps = 1e-12
	switch {
	case delta < -eps:
		return Saddle
	case math.Abs(delta) <= eps:
		return Degenerate
	case math.Abs(tau) <= eps:
		return Center
	}
	disc := tau*tau - 4*delta
	if tau < 0 {
		if disc < 0 {
			return StableSpiral
		}
		return StableNode
	}
	if disc < 0 {
		return UnstableSpiral
	}
	return UnstableNode
}

// ClassifyEigenvalues classifies an equilibrium from the eigenvalues of its
// linearization, for any dimension.
func ClassifyEigenvalues(eigs []complex128) EquilibriumClass {
	const eps = 1e-9
	anyZero, anyComplex := false, false
	pos, neg := 0, 0
	for _, e := range eigs {
		re, im := real(e), imag(e)
		if math.Abs(re) <= eps {
			if math.Abs(im) > eps {
				anyComplex = true
				anyZero = true // purely imaginary: candidate center
				continue
			}
			anyZero = true
			continue
		}
		if math.Abs(im) > eps {
			anyComplex = true
		}
		if re > 0 {
			pos++
		} else {
			neg++
		}
	}
	switch {
	case pos > 0 && neg > 0:
		return Saddle
	case anyZero && pos == 0 && neg == 0 && anyComplex:
		return Center
	case anyZero:
		return Degenerate
	case pos == 0:
		if anyComplex {
			return StableSpiral
		}
		return StableNode
	default:
		if anyComplex {
			return UnstableSpiral
		}
		return UnstableNode
	}
}

// Linearize evaluates the Jacobian of the system at the point.
func Linearize(s *ode.System, point map[ode.Var]float64) *linalg.Matrix {
	jac := s.JacobianAt(point)
	return linalg.FromRows(jac)
}

// LinearizeOnSimplex evaluates the Jacobian restricted to the invariant
// simplex Σx = const by eliminating the variable elim through the chain
// rule ∂/∂x_j |constrained = ∂/∂x_j − ∂/∂elim. The returned matrix is
// (m−1)×(m−1) over the remaining variables in system order, and carries
// the stability information the full (singular) Jacobian hides.
func LinearizeOnSimplex(s *ode.System, elim ode.Var, point map[ode.Var]float64) (*linalg.Matrix, []ode.Var, error) {
	vars := s.Vars()
	elimIdx := -1
	for i, v := range vars {
		if v == elim {
			elimIdx = i
			break
		}
	}
	if elimIdx < 0 {
		return nil, nil, fmt.Errorf("dynamics: variable %q not in system", elim)
	}
	full := s.JacobianAt(point)
	kept := make([]ode.Var, 0, len(vars)-1)
	for _, v := range vars {
		if v != elim {
			kept = append(kept, v)
		}
	}
	out := linalg.NewMatrix(len(kept), len(kept))
	ri := 0
	for i, vi := range vars {
		if vi == elim {
			continue
		}
		cj := 0
		for j, vj := range vars {
			if vj == elim {
				continue
			}
			out.Set(ri, cj, full[i][j]-full[i][elimIdx])
			cj++
		}
		ri++
	}
	return out, kept, nil
}

// Equilibrium bundles a located equilibrium with its classification.
type Equilibrium struct {
	Point       map[ode.Var]float64
	Eigenvalues []complex128
	Class       EquilibriumClass
}

// ErrNoConvergence is returned when Newton iteration fails to locate an
// equilibrium from a seed.
var ErrNoConvergence = errors.New("dynamics: Newton iteration did not converge")

// NewtonEquilibrium refines a seed to an equilibrium of a complete system.
// Because a complete system's Jacobian is singular (columns sum to zero),
// the last equation is replaced by the conservation constraint
// Σx = Σ seed, pinning the simplex leaf. tol bounds ‖f(x)‖∞ at acceptance.
func NewtonEquilibrium(s *ode.System, seed map[ode.Var]float64, tol float64, maxIter int) (map[ode.Var]float64, error) {
	vars := s.Vars()
	m := len(vars)
	x := s.VecFromPoint(seed)
	var total float64
	for _, v := range x {
		total += v
	}
	for iter := 0; iter < maxIter; iter++ {
		point := s.PointFromVec(x)
		f := s.EvalVec(x)
		// Residual with conservation row.
		res := make([]float64, m)
		copy(res, f[:m-1])
		var sum float64
		for _, v := range x {
			sum += v
		}
		res[m-1] = sum - total

		norm := 0.0
		for _, r := range res {
			if a := math.Abs(r); a > norm {
				norm = a
			}
		}
		if norm <= tol {
			return point, nil
		}

		jac := s.JacobianAt(point)
		aug := linalg.NewMatrix(m, m)
		for i := 0; i < m-1; i++ {
			for j := 0; j < m; j++ {
				aug.Set(i, j, jac[i][j])
			}
		}
		for j := 0; j < m; j++ {
			aug.Set(m-1, j, 1)
		}
		step, err := aug.Solve(res)
		if err != nil {
			return nil, fmt.Errorf("dynamics: singular constrained Jacobian: %w", err)
		}
		for i := range x {
			x[i] -= step[i]
		}
	}
	return nil, ErrNoConvergence
}

// FindEquilibria runs NewtonEquilibrium from every seed, deduplicates the
// results (L∞ distance below 1e-6), and classifies each equilibrium on the
// simplex by eliminating the given variable. Seeds that fail to converge
// are skipped.
func FindEquilibria(s *ode.System, elim ode.Var, seeds []map[ode.Var]float64) []Equilibrium {
	var out []Equilibrium
	for _, seed := range seeds {
		point, err := NewtonEquilibrium(s, seed, 1e-12, 200)
		if err != nil {
			continue
		}
		dup := false
		for _, e := range out {
			maxd := 0.0
			for _, v := range s.Vars() {
				if d := math.Abs(e.Point[v] - point[v]); d > maxd {
					maxd = d
				}
			}
			if maxd < 1e-6 {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		eq, err := ClassifyOnSimplex(s, elim, point)
		if err != nil {
			continue
		}
		out = append(out, eq)
	}
	return out
}

// ClassifyOnSimplex classifies the equilibrium at point using the
// simplex-constrained linearization.
func ClassifyOnSimplex(s *ode.System, elim ode.Var, point map[ode.Var]float64) (Equilibrium, error) {
	jac, _, err := LinearizeOnSimplex(s, elim, point)
	if err != nil {
		return Equilibrium{}, err
	}
	eigs := jac.Eigenvalues()
	cp := make(map[ode.Var]float64, len(point))
	for k, v := range point {
		cp[k] = v
	}
	return Equilibrium{Point: cp, Eigenvalues: eigs, Class: ClassifyEigenvalues(eigs)}, nil
}

// DominantDecayRate returns the slowest decay rate (smallest |Re λ|) among
// the eigenvalues, which sets the convergence time constant near a stable
// equilibrium; the convergence-complexity exponents of §4.1.3 and §4.2.2
// are exactly these rates.
func DominantDecayRate(eigs []complex128) float64 {
	rate := math.Inf(1)
	for _, e := range eigs {
		if r := math.Abs(real(e)); r < rate {
			rate = r
		}
	}
	return rate
}

// OscillationFrequency returns the largest |Im λ| among the eigenvalues:
// non-zero for spirals (damped oscillation), zero for nodes.
func OscillationFrequency(eigs []complex128) float64 {
	freq := 0.0
	for _, e := range eigs {
		if f := math.Abs(imag(e)); f > freq {
			freq = f
		}
	}
	return freq
}

// PerturbationDecay evaluates the three §4.1.3 convergence-complexity cases
// for a 2×2 linearization with trace tau and determinant delta, returning
// the displacement u(t)/u0 at time t for an initial unit perturbation
// (with u̇0 = 0 in the distinct-real case).
func PerturbationDecay(tau, delta, t float64) float64 {
	disc := tau*tau - 4*delta
	switch {
	case disc < 0:
		// Case 1: complex pair — damped oscillation
		// u = u0·e^(τt/2)·cos(t·sqrt(Δ − τ²/4)).
		return math.Exp(tau*t/2) * math.Cos(t*math.Sqrt(-disc)/2)
	case disc > 0:
		// Case 2: distinct real eigenvalues.
		r := math.Sqrt(disc)
		l1, l2 := (tau+r)/2, (tau-r)/2
		// u̇0 = 0 ⇒ u = (−λ2·e^{λ1 t} + λ1·e^{λ2 t})/(λ1 − λ2).
		return (-l2*math.Exp(l1*t) + l1*math.Exp(l2*t)) / (l1 - l2)
	default:
		// Case 3: equal real eigenvalues — u = u0·e^{τt/2}.
		return math.Exp(tau * t / 2)
	}
}

// SpectralAbscissa returns max Re λ, negative iff the equilibrium is
// asymptotically stable.
func SpectralAbscissa(eigs []complex128) float64 {
	a := math.Inf(-1)
	for _, e := range eigs {
		if r := real(e); r > a {
			a = r
		}
	}
	return a
}

// EigenvalueMagnitudes returns |λ| for each eigenvalue (used in reports).
func EigenvalueMagnitudes(eigs []complex128) []float64 {
	out := make([]float64, len(eigs))
	for i, e := range eigs {
		out[i] = cmplx.Abs(e)
	}
	return out
}
