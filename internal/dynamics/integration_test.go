package dynamics_test

import (
	"math"
	"math/rand"
	"testing"

	"odeproto/internal/dynamics"
	"odeproto/internal/ode"
	"odeproto/internal/solver"
)

func mustParse(t *testing.T, src string) *ode.System {
	t.Helper()
	s, err := ode.Parse(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestTrajectoriesConvergeToClassifiedEquilibrium integrates the endemic
// equations from random simplex starts and verifies that every trajectory
// lands at the equilibrium FindEquilibria classified as stable — linking
// the solver, the Newton search, and the classification machinery.
func TestTrajectoriesConvergeToClassifiedEquilibrium(t *testing.T) {
	s := mustParse(t, `
x' = -4*x*y + 0.05*z
y' = 4*x*y - 0.5*y
z' = 0.5*y - 0.05*z
`)
	eqs := dynamics.FindEquilibria(s, "z", []map[ode.Var]float64{
		{"x": 0.2, "y": 0.1, "z": 0.7},
		{"x": 1, "y": 0, "z": 0},
	})
	var stable map[ode.Var]float64
	for _, e := range eqs {
		if e.Class.Stable() {
			stable = e.Point
		}
	}
	if stable == nil {
		t.Fatalf("no stable equilibrium found among %v", eqs)
	}
	rng := rand.New(rand.NewSource(9))
	f := solver.FromSystem(s)
	for trial := 0; trial < 10; trial++ {
		x := 0.1 + 0.8*rng.Float64()
		y := (1 - x) * (0.05 + 0.9*rng.Float64())
		if y <= 0.01 {
			y = 0.01
		}
		start := []float64{x, y, 1 - x - y}
		tr, err := solver.RK4(f, start, 0, 400, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		final := tr.Final()
		point := s.PointFromVec(final)
		for _, v := range s.Vars() {
			if math.Abs(point[v]-stable[v]) > 0.02 {
				t.Fatalf("trajectory from %v ended at %v, stable equilibrium %v", start, point, stable)
			}
		}
	}
}

// TestSaddleSeparatrix: LV trajectories starting ε off the diagonal
// converge to the corner on their side — the Theorem 4 separatrix is
// exactly x = y.
func TestSaddleSeparatrix(t *testing.T) {
	s := mustParse(t, `
x' = 3*x*z - 3*x*y
y' = 3*y*z - 3*x*y
z' = -3*x*z - 3*y*z + 3*x*y + 3*x*y
`)
	f := solver.FromSystem(s)
	for _, eps := range []float64{1e-3, 1e-2, 0.1} {
		right, err := solver.RK4(f, []float64{0.3 + eps, 0.3, 0.4 - eps}, 0, 50, 0.005)
		if err != nil {
			t.Fatal(err)
		}
		if got := right.Final()[0]; got < 0.99 {
			t.Fatalf("ε=%v right of diagonal: x(∞) = %v, want ≈ 1", eps, got)
		}
		left, err := solver.RK4(f, []float64{0.3, 0.3 + eps, 0.4 - eps}, 0, 50, 0.005)
		if err != nil {
			t.Fatal(err)
		}
		if got := left.Final()[1]; got < 0.99 {
			t.Fatalf("ε=%v left of diagonal: y(∞) = %v, want ≈ 1", eps, got)
		}
	}
}

// TestPerturbationDecayMatchesLinearizedODE: the closed-form u(t) of
// §4.1.3 agrees with direct RK4 integration of the 2×2 linear system
// ü = τ·u̇ − Δ·u (the characteristic dynamics of matrix A).
func TestPerturbationDecayMatchesLinearizedODE(t *testing.T) {
	// The paper's closed forms correspond to specific initial slopes:
	// the pure-cosine spiral (case 1) and the pure exponential (case 3)
	// satisfy u̇(0) = τ/2, while the distinct-real form (case 2) is
	// written for u̇(0) = 0.
	cases := []struct{ tau, delta, udot0 float64 }{
		{-0.5, 1, -0.25}, // spiral: u̇(0) = τ/2
		{-3, 2, 0},       // distinct real: u̇(0) = 0
		{-2, 1, -1},      // repeated root: u̇(0) = τ/2
	}
	for _, tc := range cases {
		// State (u, u̇): u' = u̇; u̇' = τ·u̇ − Δ·u, u(0)=1.
		f := func(x []float64) []float64 {
			return []float64{x[1], tc.tau*x[1] - tc.delta*x[0]}
		}
		tr, err := solver.RK4(f, []float64{1, tc.udot0}, 0, 5, 1e-4)
		if err != nil {
			t.Fatal(err)
		}
		for _, tm := range []float64{0.5, 1, 2, 5} {
			got := tr.At(tm)[0]
			want := dynamics.PerturbationDecay(tc.tau, tc.delta, tm)
			if math.Abs(got-want) > 1e-4+1e-3*math.Abs(want) {
				t.Fatalf("τ=%v Δ=%v t=%v: ODE %v vs closed form %v", tc.tau, tc.delta, tm, got, want)
			}
		}
	}
}
