package dynamics

import (
	"math"
	"testing"

	"odeproto/internal/ode"
)

func endemicSys(t *testing.T, beta, gamma, alpha float64) *ode.System {
	t.Helper()
	s, err := ode.Parse(`
x' = -beta*x*y + alpha*z
y' = beta*x*y - gamma*y
z' = gamma*y - alpha*z
`, map[string]float64{"beta": beta, "gamma": gamma, "alpha": alpha})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func lvSys(t *testing.T) *ode.System {
	t.Helper()
	s, err := ode.Parse(`
x' = 3*x*z - 3*x*y
y' = 3*y*z - 3*x*y
z' = -3*x*z - 3*y*z + 3*x*y + 3*x*y
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// endemicEquilibrium returns the paper's second (non-trivial) equilibrium
// (2) in fraction form: x∞ = γ/β, y∞ = (1−γ/β)/(1+γ/α),
// z∞ = (1−γ/β)/(1+α/γ).
func endemicEquilibrium(beta, gamma, alpha float64) map[ode.Var]float64 {
	x := gamma / beta
	y := (1 - gamma/beta) / (1 + gamma/alpha)
	z := (1 - gamma/beta) / (1 + alpha/gamma)
	return map[ode.Var]float64{"x": x, "y": y, "z": z}
}

func TestClassifyTraceDet(t *testing.T) {
	cases := []struct {
		tau, delta float64
		want       EquilibriumClass
	}{
		{-2, 1, StableNode},    // disc = 0... adjust: τ²−4Δ = 0 boundary
		{-3, 1, StableNode},    // disc 5 > 0
		{-1, 1, StableSpiral},  // disc -3 < 0
		{3, 1, UnstableNode},   // disc 5
		{1, 1, UnstableSpiral}, // disc -3
		{1, -1, Saddle},        //
		{0, 1, Center},         //
		{0, 0, Degenerate},     //
		{5, 0, Degenerate},     //
	}
	for _, tc := range cases {
		if got := ClassifyTraceDet(tc.tau, tc.delta); got != tc.want {
			t.Errorf("ClassifyTraceDet(%v, %v) = %v, want %v", tc.tau, tc.delta, got, tc.want)
		}
	}
}

func TestClassifyEigenvalues(t *testing.T) {
	cases := []struct {
		eigs []complex128
		want EquilibriumClass
	}{
		{[]complex128{-1, -2}, StableNode},
		{[]complex128{complex(-1, 2), complex(-1, -2)}, StableSpiral},
		{[]complex128{1, 2}, UnstableNode},
		{[]complex128{complex(1, 2), complex(1, -2)}, UnstableSpiral},
		{[]complex128{1, -3}, Saddle},
		{[]complex128{complex(0, 1), complex(0, -1)}, Center},
		{[]complex128{0, -1}, Degenerate},
	}
	for _, tc := range cases {
		if got := ClassifyEigenvalues(tc.eigs); got != tc.want {
			t.Errorf("ClassifyEigenvalues(%v) = %v, want %v", tc.eigs, got, tc.want)
		}
	}
}

func TestStablePredicate(t *testing.T) {
	if !StableSpiral.Stable() || !StableNode.Stable() {
		t.Fatal("stable classes must report Stable")
	}
	if Saddle.Stable() || UnstableNode.Stable() || Center.Stable() {
		t.Fatal("non-stable classes must not report Stable")
	}
}

// TestEndemicEquilibriumClosedForm verifies the closed-form equilibrium (2)
// actually zeroes the endemic vector field.
func TestEndemicEquilibriumClosedForm(t *testing.T) {
	beta, gamma, alpha := 4.0, 1.0, 0.01
	s := endemicSys(t, beta, gamma, alpha)
	eq := endemicEquilibrium(beta, gamma, alpha)
	d := s.Eval(eq)
	for i, v := range d {
		if math.Abs(v) > 1e-12 {
			t.Fatalf("f[%d] = %v at closed-form equilibrium, want 0", i, v)
		}
	}
	var sum float64
	for _, v := range eq {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("equilibrium fractions sum to %v", sum)
	}
}

// TestTheorem3EndemicStableSpiral reproduces the paper's Theorem 3 and the
// Figure 2 caption: with β = 4, γ = 1.0, α = 0.01 the non-trivial
// equilibrium is a stable spiral, with trace −(σ+α) and determinant
// σ(γ+α), σ = β·y∞.
func TestTheorem3EndemicStableSpiral(t *testing.T) {
	beta, gamma, alpha := 4.0, 1.0, 0.01
	s := endemicSys(t, beta, gamma, alpha)
	eqPoint := endemicEquilibrium(beta, gamma, alpha)

	jac, kept, err := LinearizeOnSimplex(s, "z", eqPoint)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 2 || kept[0] != "x" || kept[1] != "y" {
		t.Fatalf("kept vars = %v", kept)
	}
	sigma := beta * eqPoint["y"]
	wantTau := -(sigma + alpha)
	wantDelta := sigma * (gamma + alpha)
	if math.Abs(jac.Trace()-wantTau) > 1e-9 {
		t.Fatalf("τ = %v, want paper's −(σ+α) = %v", jac.Trace(), wantTau)
	}
	if math.Abs(jac.Det()-wantDelta) > 1e-9 {
		t.Fatalf("Δ = %v, want paper's σ(γ+α) = %v", jac.Det(), wantDelta)
	}
	cls, err := ClassifyOnSimplex(s, "z", eqPoint)
	if err != nil {
		t.Fatal(err)
	}
	if cls.Class != StableSpiral {
		t.Fatalf("classification = %v, want stable spiral (Figure 2)", cls.Class)
	}
}

// TestTheorem3StabilityAcrossParameters: Theorem 3 claims stability for all
// α, γ > 0 with β > γ (fraction form of N > γ/β).
func TestTheorem3StabilityAcrossParameters(t *testing.T) {
	params := []struct{ beta, gamma, alpha float64 }{
		{4, 1, 0.01},
		{2, 0.1, 0.001},
		{64, 0.1, 0.005},
		{2, 0.001, 0.000001},
		{6, 0.5, 0.5},
	}
	for _, p := range params {
		s := endemicSys(t, p.beta, p.gamma, p.alpha)
		eq := endemicEquilibrium(p.beta, p.gamma, p.alpha)
		cls, err := ClassifyOnSimplex(s, "z", eq)
		if err != nil {
			t.Fatal(err)
		}
		if !cls.Class.Stable() {
			t.Fatalf("params %+v: class %v, want stable (Theorem 3)", p, cls.Class)
		}
	}
}

// TestEndemicFirstEquilibriumSaddle reproduces the Theorem 3 corollary: the
// trivial equilibrium (1, 0, 0) is a saddle point when β > γ.
func TestEndemicFirstEquilibriumSaddle(t *testing.T) {
	s := endemicSys(t, 4, 1, 0.01)
	cls, err := ClassifyOnSimplex(s, "z", map[ode.Var]float64{"x": 1, "y": 0, "z": 0})
	if err != nil {
		t.Fatal(err)
	}
	if cls.Class != Saddle {
		t.Fatalf("trivial equilibrium class = %v, want saddle", cls.Class)
	}
}

// TestEndemicSubcriticalStable: the corollary's other direction — when
// β < γ (N < γ/β in the paper's count notation) the all-receptive
// equilibrium is stable.
func TestEndemicSubcriticalStable(t *testing.T) {
	s := endemicSys(t, 0.5, 1, 0.01) // β < γ
	cls, err := ClassifyOnSimplex(s, "z", map[ode.Var]float64{"x": 1, "y": 0, "z": 0})
	if err != nil {
		t.Fatal(err)
	}
	if !cls.Class.Stable() {
		t.Fatalf("subcritical trivial equilibrium class = %v, want stable", cls.Class)
	}
}

// TestTheorem4LVEquilibria reproduces the LV analysis: (0,1) and (1,0)
// stable, (0,0) unstable, (1/3,1/3) saddle.
func TestTheorem4LVEquilibria(t *testing.T) {
	s := lvSys(t)
	cases := []struct {
		x, y float64
		want EquilibriumClass
	}{
		{1, 0, StableNode},
		{0, 1, StableNode},
		{0, 0, UnstableNode},
		{1.0 / 3, 1.0 / 3, Saddle},
	}
	for _, tc := range cases {
		point := map[ode.Var]float64{"x": tc.x, "y": tc.y, "z": 1 - tc.x - tc.y}
		cls, err := ClassifyOnSimplex(s, "z", point)
		if err != nil {
			t.Fatal(err)
		}
		if cls.Class != tc.want {
			t.Fatalf("LV equilibrium (%v,%v): class %v, want %v", tc.x, tc.y, cls.Class, tc.want)
		}
	}
}

// TestLVConvergenceRate: near (1,0) both eigenvalues are −3, matching the
// §4.2.2 convergence complexity x(t) = u0·e^{−3t}.
func TestLVConvergenceRate(t *testing.T) {
	s := lvSys(t)
	cls, err := ClassifyOnSimplex(s, "z", map[ode.Var]float64{"x": 1, "y": 0, "z": 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range cls.Eigenvalues {
		if math.Abs(real(e)+3) > 1e-6 || math.Abs(imag(e)) > 1e-6 {
			t.Fatalf("eigenvalues = %v, want both −3", cls.Eigenvalues)
		}
	}
	if r := DominantDecayRate(cls.Eigenvalues); math.Abs(r-3) > 1e-6 {
		t.Fatalf("decay rate = %v, want 3", r)
	}
}

func TestNewtonFindsEndemicEquilibrium(t *testing.T) {
	beta, gamma, alpha := 4.0, 1.0, 0.01
	s := endemicSys(t, beta, gamma, alpha)
	want := endemicEquilibrium(beta, gamma, alpha)
	seed := map[ode.Var]float64{"x": 0.3, "y": 0.01, "z": 0.69}
	got, err := NewtonEquilibrium(s, seed, 1e-12, 200)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []ode.Var{"x", "y", "z"} {
		if math.Abs(got[v]-want[v]) > 1e-8 {
			t.Fatalf("Newton %s = %v, want %v", v, got[v], want[v])
		}
	}
}

func TestFindEquilibriaLV(t *testing.T) {
	s := lvSys(t)
	seeds := []map[ode.Var]float64{
		{"x": 0.9, "y": 0.05, "z": 0.05},
		{"x": 0.05, "y": 0.9, "z": 0.05},
		{"x": 0.3, "y": 0.35, "z": 0.35},
		{"x": 0.01, "y": 0.01, "z": 0.98},
	}
	eqs := FindEquilibria(s, "z", seeds)
	if len(eqs) < 3 {
		t.Fatalf("found %d equilibria, want at least 3: %v", len(eqs), eqs)
	}
	stable := 0
	for _, e := range eqs {
		if e.Class.Stable() {
			stable++
		}
	}
	if stable < 1 {
		t.Fatalf("no stable equilibrium among %v", eqs)
	}
}

func TestNewtonNoConvergenceReported(t *testing.T) {
	// A system whose only simplex equilibrium keeps Newton honest:
	// from a wild seed the iteration either converges or reports failure,
	// never returns a non-equilibrium.
	s := endemicSys(t, 4, 1, 0.01)
	got, err := NewtonEquilibrium(s, map[ode.Var]float64{"x": 5, "y": -3, "z": -1}, 1e-12, 5)
	if err == nil {
		d := s.Eval(got)
		for _, v := range d {
			if math.Abs(v) > 1e-9 {
				t.Fatalf("Newton claimed convergence at non-equilibrium %v (f = %v)", got, d)
			}
		}
	}
}

func TestPerturbationDecayCases(t *testing.T) {
	// Case 1 (spiral): τ = −0.1, Δ = 1 → damped cosine; u(0) = 1.
	if got := PerturbationDecay(-0.1, 1, 0); math.Abs(got-1) > 1e-12 {
		t.Fatalf("case1 u(0) = %v", got)
	}
	// Amplitude bound |u(t)| ≤ e^{τt/2}.
	for _, tm := range []float64{1, 5, 20} {
		u := PerturbationDecay(-0.1, 1, tm)
		bound := math.Exp(-0.05 * tm)
		if math.Abs(u) > bound+1e-12 {
			t.Fatalf("case1 |u(%v)| = %v exceeds envelope %v", tm, u, bound)
		}
	}
	// Case 2 (distinct real): τ = −3, Δ = 2 → λ = −1, −2; u decays
	// monotonically from 1.
	if got := PerturbationDecay(-3, 2, 0); math.Abs(got-1) > 1e-12 {
		t.Fatalf("case2 u(0) = %v", got)
	}
	prev := 1.0
	for _, tm := range []float64{0.5, 1, 2, 4} {
		u := PerturbationDecay(-3, 2, tm)
		if u < 0 || u > prev {
			t.Fatalf("case2 not monotone: u(%v) = %v (prev %v)", tm, u, prev)
		}
		prev = u
	}
	// Case 3 (equal): τ = −2, Δ = 1 → u = e^{−t}.
	if got := PerturbationDecay(-2, 1, 3); math.Abs(got-math.Exp(-3)) > 1e-12 {
		t.Fatalf("case3 u(3) = %v, want e^-3", got)
	}
}

func TestDecayRateAndFrequency(t *testing.T) {
	eigs := []complex128{complex(-0.5, 2), complex(-0.5, -2), complex(-3, 0)}
	if r := DominantDecayRate(eigs); r != 0.5 {
		t.Fatalf("decay rate = %v, want 0.5", r)
	}
	if f := OscillationFrequency(eigs); f != 2 {
		t.Fatalf("frequency = %v, want 2", f)
	}
	if a := SpectralAbscissa(eigs); a != -0.5 {
		t.Fatalf("abscissa = %v, want -0.5", a)
	}
}

func TestEigenvalueMagnitudes(t *testing.T) {
	m := EigenvalueMagnitudes([]complex128{complex(3, 4)})
	if math.Abs(m[0]-5) > 1e-12 {
		t.Fatalf("magnitude = %v, want 5", m[0])
	}
}

func TestLinearizeOnSimplexUnknownVar(t *testing.T) {
	s := lvSys(t)
	if _, _, err := LinearizeOnSimplex(s, "q", map[ode.Var]float64{}); err == nil {
		t.Fatal("expected error for unknown variable")
	}
}

func TestLinearizeFullMatchesJacobian(t *testing.T) {
	s := lvSys(t)
	point := map[ode.Var]float64{"x": 0.2, "y": 0.3, "z": 0.5}
	m := Linearize(s, point)
	raw := s.JacobianAt(point)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != raw[i][j] {
				t.Fatalf("Linearize disagrees with JacobianAt at (%d,%d)", i, j)
			}
		}
	}
}
