// Package lv implements Case Study II of the paper (§4.2): the
// Lotka–Volterra (LV) protocol for probabilistic majority selection,
// derived from the competition equations (6)
//
//	ẋ = 3x(1 − x − 2y)
//	ẏ = 3y(1 − y − 2x)
//
// rewritten (via the slack variable z = 1 − x − y) into the mappable
// system (7)
//
//	ẋ = +3xz − 3xy
//	ẏ = +3yz − 3xy
//	ż = −3xz − 3yz + 3xy + 3xy
//
// States x and y are the two proposals; z is "undecided" (the running
// decision value b). By the principle of competitive exclusion the system
// converges to everyone-x or everyone-y, and Theorem 4 shows the winner is
// the initial majority: all initial points right of the diagonal x = y
// reach (1, 0), all points left of it reach (0, 1).
package lv

import (
	"fmt"
	"math"

	"odeproto/internal/core"
	"odeproto/internal/harness"
	"odeproto/internal/ode"
	"odeproto/internal/rewrite"
	"odeproto/internal/sim"
)

// Protocol states: the two competing proposals and the undecided state.
const (
	ProposalX = ode.Var("x")
	ProposalY = ode.Var("y")
	Undecided = ode.Var("z")
)

// DefaultP is the normalizing constant used throughout the paper's LV
// experiments (§5.2).
const DefaultP = 0.01

// CompetitionSystem returns the raw LV competition equations (6), which
// are not complete (they lack the z variable).
func CompetitionSystem() *ode.System {
	s := ode.NewSystem()
	s.MustAddEquation(ProposalX,
		ode.NewTerm(3, map[ode.Var]int{ProposalX: 1}),
		ode.NewTerm(-3, map[ode.Var]int{ProposalX: 2}),
		ode.NewTerm(-6, map[ode.Var]int{ProposalX: 1, ProposalY: 1}))
	s.MustAddEquation(ProposalY,
		ode.NewTerm(3, map[ode.Var]int{ProposalY: 1}),
		ode.NewTerm(-3, map[ode.Var]int{ProposalY: 2}),
		ode.NewTerm(-6, map[ode.Var]int{ProposalX: 1, ProposalY: 1}))
	return s
}

// System returns the paper's rewritten, mappable equations (7).
func System() *ode.System {
	s := ode.NewSystem()
	s.MustAddEquation(ProposalX,
		ode.NewTerm(3, map[ode.Var]int{ProposalX: 1, Undecided: 1}),
		ode.NewTerm(-3, map[ode.Var]int{ProposalX: 1, ProposalY: 1}))
	s.MustAddEquation(ProposalY,
		ode.NewTerm(3, map[ode.Var]int{ProposalY: 1, Undecided: 1}),
		ode.NewTerm(-3, map[ode.Var]int{ProposalX: 1, ProposalY: 1}))
	s.MustAddEquation(Undecided,
		ode.NewTerm(-3, map[ode.Var]int{ProposalX: 1, Undecided: 1}),
		ode.NewTerm(-3, map[ode.Var]int{ProposalY: 1, Undecided: 1}),
		ode.NewTerm(3, map[ode.Var]int{ProposalX: 1, ProposalY: 1}),
		ode.NewTerm(3, map[ode.Var]int{ProposalX: 1, ProposalY: 1}))
	return s
}

// RewrittenSystem derives (7) from (6) mechanically with the §7 rewriting
// pipeline (Complete + Homogenize + SplitForPartition); the test suite
// verifies it is dynamically identical to System().
func RewrittenSystem() (*ode.System, error) {
	return rewrite.MakeMappable(CompetitionSystem(), Undecided)
}

// NewProtocol translates (7) into the LV protocol of Figure 3 with
// normalizing constant p (all four one-time-sampling actions use coin 3p).
// Pass 0 for DefaultP.
func NewProtocol(p float64) (*core.Protocol, error) {
	if p == 0 {
		p = DefaultP
	}
	return core.Translate(System(), core.Options{P: p})
}

// Run is one majority-selection execution trace.
type Run struct {
	Times []float64
	X     []float64 // processes proposing x
	Y     []float64
	Z     []float64 // undecided
	// FinalX and FinalY are the populations after the last period
	// (available even when SampleEvery skips the final period).
	FinalX, FinalY int
	// ConvergedAt is the first period where one proposal holds every
	// alive process, or -1 if the run ended first.
	ConvergedAt int
	// Winner is the state that won ("" while unconverged).
	Winner ode.Var
	Killed int
}

// Config parameterizes a convergence run (Figures 11 and 12).
type Config struct {
	N        int
	InitialX int
	InitialY int
	P        float64 // normalizing constant (0 → DefaultP)
	Periods  int
	// FailAt, when ≥ 0, crashes FailFrac of the processes at that period
	// (Figure 12 uses FailAt = 100, FailFrac = 0.5).
	FailAt      int
	FailFrac    float64
	SampleEvery int
	Seed        int64
}

// newRunJob builds the harness job for one LV execution together with the
// Run record its hooks populate (Killed is filled in from the harness
// result by the caller). Simulate wraps it for single runs; sweeps like
// MajorityAccuracy fan many of these jobs out in parallel.
func newRunJob(name string, cfg Config) (harness.Job, *Run, error) {
	if cfg.InitialX+cfg.InitialY > cfg.N {
		return harness.Job{}, nil, fmt.Errorf("lv: initial proposals exceed N")
	}
	if cfg.SampleEvery < 1 {
		cfg.SampleEvery = 1
	}
	proto, err := NewProtocol(cfg.P)
	if err != nil {
		return harness.Job{}, nil, err
	}
	run := &Run{ConvergedAt: -1}
	var events []harness.Event
	if cfg.FailAt >= 0 && cfg.FailFrac > 0 {
		events = []harness.Event{
			{At: cfg.FailAt, P: harness.Perturbation{Kind: harness.KillFraction, Frac: cfg.FailFrac}},
		}
	}
	job := harness.Job{
		Name: name,
		Seed: cfg.Seed,
		New: func(seed int64) (harness.Runner, error) {
			return harness.NewAgent(sim.Config{
				N:        cfg.N,
				Protocol: proto,
				Initial: map[ode.Var]int{
					ProposalX: cfg.InitialX,
					ProposalY: cfg.InitialY,
					Undecided: cfg.N - cfg.InitialX - cfg.InitialY,
				},
				Seed: seed,
			})
		},
		Periods: cfg.Periods,
		Events:  events,
		AfterStep: func(r harness.Runner, t int) {
			if t%cfg.SampleEvery == 0 {
				run.Times = append(run.Times, float64(t))
				run.X = append(run.X, float64(r.Count(ProposalX)))
				run.Y = append(run.Y, float64(r.Count(ProposalY)))
				run.Z = append(run.Z, float64(r.Count(Undecided)))
			}
			if run.ConvergedAt < 0 {
				switch r.Alive() {
				case r.Count(ProposalX):
					run.ConvergedAt = t
					run.Winner = ProposalX
				case r.Count(ProposalY):
					run.ConvergedAt = t
					run.Winner = ProposalY
				}
			}
		},
		Done: func(r harness.Runner) error {
			run.FinalX = r.Count(ProposalX)
			run.FinalY = r.Count(ProposalY)
			return nil
		},
	}
	return job, run, nil
}

// Simulate runs the LV protocol from the given split and records the
// population series.
func Simulate(cfg Config) (*Run, error) {
	job, run, err := newRunJob("lv-run", cfg)
	if err != nil {
		return nil, err
	}
	out := harness.Run(job)
	if out.Err != nil {
		return nil, out.Err
	}
	run.Killed = out.Killed
	return run, nil
}

// SimulateMany runs independent elections of the same configuration, one
// per seed, fanned out in parallel. Results are returned in seed order
// regardless of the worker count.
func SimulateMany(cfg Config, seeds []int64) ([]*Run, error) {
	jobs := make([]harness.Job, len(seeds))
	runs := make([]*Run, len(seeds))
	for i, s := range seeds {
		c := cfg
		c.Seed = s
		job, run, err := newRunJob(fmt.Sprintf("lv-seed%d", s), c)
		if err != nil {
			return nil, err
		}
		jobs[i] = job
		runs[i] = run
	}
	out, err := harness.Sweep(jobs, harness.Options{})
	if err != nil {
		return nil, err
	}
	for i := range runs {
		runs[i].Killed = out[i].Killed
	}
	return runs, nil
}

// PhaseTrajectory is one (X(t), Y(t)) path of the Figure 4 phase portrait.
type PhaseTrajectory struct {
	X0, Y0, Z0 int
	Xs, Ys     []float64
}

// Figure4InitialPoints returns the seven initial points of the Figure 4
// caption for N = 1000.
func Figure4InitialPoints() [][3]int {
	return [][3]int{
		{100, 200, 700}, // blank square
		{200, 100, 700}, // dark square
		{300, 500, 200}, // blank circle
		{500, 300, 200}, // dark circle
		{100, 800, 100}, // blank triangle
		{800, 100, 100}, // dark triangle
		{100, 100, 800}, // blank inverted triangle
	}
}

// PhasePortrait simulates the LV protocol from each initial point,
// recording (X, Y) — the paper's Figure 4. The initial points run in
// parallel through the harness scheduler.
func PhasePortrait(n int, p float64, initials [][3]int, periods, sampleEvery int, seed int64) ([]PhaseTrajectory, error) {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	proto, err := NewProtocol(p)
	if err != nil {
		return nil, err
	}
	out := make([]PhaseTrajectory, len(initials))
	jobs := make([]harness.Job, len(initials))
	for i, ic := range initials {
		if ic[0]+ic[1]+ic[2] != n {
			return nil, fmt.Errorf("lv: initial point %v does not sum to N = %d", ic, n)
		}
		tr := &out[i]
		tr.X0, tr.Y0, tr.Z0 = ic[0], ic[1], ic[2]
		initial := map[ode.Var]int{ProposalX: ic[0], ProposalY: ic[1], Undecided: ic[2]}
		jobs[i] = harness.Job{
			Name: fmt.Sprintf("fig4-point%d", i),
			Seed: seed + int64(i)*7919,
			New: func(seed int64) (harness.Runner, error) {
				return harness.NewAgent(sim.Config{N: n, Protocol: proto, Initial: initial, Seed: seed})
			},
			Periods: periods,
			BeforeStep: func(r harness.Runner, t int) {
				if t%sampleEvery == 0 {
					tr.Xs = append(tr.Xs, float64(r.Count(ProposalX)))
					tr.Ys = append(tr.Ys, float64(r.Count(ProposalY)))
				}
			},
		}
	}
	if _, err := harness.Sweep(jobs, harness.Options{}); err != nil {
		return nil, err
	}
	return out, nil
}

// AccuracyPoint is one margin setting of the majority-accuracy sweep.
type AccuracyPoint struct {
	// MarginPct is the initial majority share in percent (e.g. 55 for a
	// 55/45 split).
	MarginPct int
	// Accuracy is the fraction of trials in which the initial majority
	// won.
	Accuracy float64
	// MeanConvergence is the mean convergence period over converged
	// trials (-1 if none converged).
	MeanConvergence float64
}

// MajorityAccuracy quantifies the probabilistic-majority-selection
// specification ("w.h.p. this is the same as the initial majority value",
// §4.2): for each majority share it runs `trials` independent elections
// and reports how often the initial majority won. Accuracy approaches 1
// as the margin grows and as N grows (the saddle at x = y only threatens
// near-tie starts).
func MajorityAccuracy(n int, marginsPct []int, trials, periods int, p float64, seed int64) ([]AccuracyPoint, error) {
	if trials < 1 {
		return nil, fmt.Errorf("lv: trials must be positive")
	}
	// Fan the full margins × trials matrix out as one parallel sweep, then
	// reduce per margin. Each cell keeps the historical per-trial seed, so
	// accuracies are unchanged from the sequential implementation.
	jobs := make([]harness.Job, 0, len(marginsPct)*trials)
	runs := make([]*Run, 0, len(marginsPct)*trials)
	for _, m := range marginsPct {
		if m < 50 || m > 100 {
			return nil, fmt.Errorf("lv: margin %d%% outside [50, 100]", m)
		}
		for tr := 0; tr < trials; tr++ {
			job, run, err := newRunJob(fmt.Sprintf("margin%d-trial%d", m, tr), Config{
				N:        n,
				InitialX: n * m / 100,
				InitialY: n - n*m/100,
				P:        p,
				Periods:  periods,
				FailAt:   -1,
				// The reduce below only reads convergence data and the
				// final populations, so skip the per-period series rather
				// than hold the full matrix of trials in memory at once.
				SampleEvery: periods,
				Seed:        seed + int64(tr)*9973 + int64(m)*31,
			})
			if err != nil {
				return nil, err
			}
			jobs = append(jobs, job)
			runs = append(runs, run)
		}
	}
	if _, err := harness.Sweep(jobs, harness.Options{}); err != nil {
		return nil, err
	}
	out := make([]AccuracyPoint, 0, len(marginsPct))
	for mi, m := range marginsPct {
		wins, converged := 0, 0
		var convSum float64
		for _, run := range runs[mi*trials : (mi+1)*trials] {
			if run.ConvergedAt >= 0 {
				converged++
				convSum += float64(run.ConvergedAt)
				if run.Winner == ProposalX {
					wins++
				}
			} else if run.FinalX > run.FinalY {
				// Count unconverged runs by their current leader.
				wins++
			}
		}
		pt := AccuracyPoint{MarginPct: m, Accuracy: float64(wins) / float64(trials), MeanConvergence: -1}
		if converged > 0 {
			pt.MeanConvergence = convSum / float64(converged)
		}
		out = append(out, pt)
	}
	return out, nil
}

// ConvergenceComplexity evaluates the §4.2.2 closed-form linearized
// solution near the stable point (0, 1):
//
//	x(t) = u₀·e^{−3t},  y(t) = 1 − (6·u₀·t + v₀)·e^{−3t}
//
// for an initial displacement x(0) = u₀, y(0) = 1 − v₀. Time is in source
// equation units (divide protocol periods by 1/p to convert).
func ConvergenceComplexity(u0, v0, t float64) (x, y float64) {
	decay := math.Exp(-3 * t)
	return u0 * decay, 1 - (6*u0*t+v0)*decay
}
