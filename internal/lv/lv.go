// Package lv implements Case Study II of the paper (§4.2): the
// Lotka–Volterra (LV) protocol for probabilistic majority selection,
// derived from the competition equations (6)
//
//	ẋ = 3x(1 − x − 2y)
//	ẏ = 3y(1 − y − 2x)
//
// rewritten (via the slack variable z = 1 − x − y) into the mappable
// system (7)
//
//	ẋ = +3xz − 3xy
//	ẏ = +3yz − 3xy
//	ż = −3xz − 3yz + 3xy + 3xy
//
// States x and y are the two proposals; z is "undecided" (the running
// decision value b). By the principle of competitive exclusion the system
// converges to everyone-x or everyone-y, and Theorem 4 shows the winner is
// the initial majority: all initial points right of the diagonal x = y
// reach (1, 0), all points left of it reach (0, 1).
package lv

import (
	"fmt"
	"math"

	"odeproto/internal/core"
	"odeproto/internal/ode"
	"odeproto/internal/rewrite"
	"odeproto/internal/sim"
)

// Protocol states: the two competing proposals and the undecided state.
const (
	ProposalX = ode.Var("x")
	ProposalY = ode.Var("y")
	Undecided = ode.Var("z")
)

// DefaultP is the normalizing constant used throughout the paper's LV
// experiments (§5.2).
const DefaultP = 0.01

// CompetitionSystem returns the raw LV competition equations (6), which
// are not complete (they lack the z variable).
func CompetitionSystem() *ode.System {
	s := ode.NewSystem()
	s.MustAddEquation(ProposalX,
		ode.NewTerm(3, map[ode.Var]int{ProposalX: 1}),
		ode.NewTerm(-3, map[ode.Var]int{ProposalX: 2}),
		ode.NewTerm(-6, map[ode.Var]int{ProposalX: 1, ProposalY: 1}))
	s.MustAddEquation(ProposalY,
		ode.NewTerm(3, map[ode.Var]int{ProposalY: 1}),
		ode.NewTerm(-3, map[ode.Var]int{ProposalY: 2}),
		ode.NewTerm(-6, map[ode.Var]int{ProposalX: 1, ProposalY: 1}))
	return s
}

// System returns the paper's rewritten, mappable equations (7).
func System() *ode.System {
	s := ode.NewSystem()
	s.MustAddEquation(ProposalX,
		ode.NewTerm(3, map[ode.Var]int{ProposalX: 1, Undecided: 1}),
		ode.NewTerm(-3, map[ode.Var]int{ProposalX: 1, ProposalY: 1}))
	s.MustAddEquation(ProposalY,
		ode.NewTerm(3, map[ode.Var]int{ProposalY: 1, Undecided: 1}),
		ode.NewTerm(-3, map[ode.Var]int{ProposalX: 1, ProposalY: 1}))
	s.MustAddEquation(Undecided,
		ode.NewTerm(-3, map[ode.Var]int{ProposalX: 1, Undecided: 1}),
		ode.NewTerm(-3, map[ode.Var]int{ProposalY: 1, Undecided: 1}),
		ode.NewTerm(3, map[ode.Var]int{ProposalX: 1, ProposalY: 1}),
		ode.NewTerm(3, map[ode.Var]int{ProposalX: 1, ProposalY: 1}))
	return s
}

// RewrittenSystem derives (7) from (6) mechanically with the §7 rewriting
// pipeline (Complete + Homogenize + SplitForPartition); the test suite
// verifies it is dynamically identical to System().
func RewrittenSystem() (*ode.System, error) {
	return rewrite.MakeMappable(CompetitionSystem(), Undecided)
}

// NewProtocol translates (7) into the LV protocol of Figure 3 with
// normalizing constant p (all four one-time-sampling actions use coin 3p).
// Pass 0 for DefaultP.
func NewProtocol(p float64) (*core.Protocol, error) {
	if p == 0 {
		p = DefaultP
	}
	return core.Translate(System(), core.Options{P: p})
}

// Run is one majority-selection execution trace.
type Run struct {
	Times []float64
	X     []float64 // processes proposing x
	Y     []float64
	Z     []float64 // undecided
	// ConvergedAt is the first period where one proposal holds every
	// alive process, or -1 if the run ended first.
	ConvergedAt int
	// Winner is the state that won ("" while unconverged).
	Winner ode.Var
	Killed int
}

// Config parameterizes a convergence run (Figures 11 and 12).
type Config struct {
	N        int
	InitialX int
	InitialY int
	P        float64 // normalizing constant (0 → DefaultP)
	Periods  int
	// FailAt, when ≥ 0, crashes FailFrac of the processes at that period
	// (Figure 12 uses FailAt = 100, FailFrac = 0.5).
	FailAt      int
	FailFrac    float64
	SampleEvery int
	Seed        int64
}

// Simulate runs the LV protocol from the given split and records the
// population series.
func Simulate(cfg Config) (*Run, error) {
	if cfg.InitialX+cfg.InitialY > cfg.N {
		return nil, fmt.Errorf("lv: initial proposals exceed N")
	}
	if cfg.SampleEvery < 1 {
		cfg.SampleEvery = 1
	}
	proto, err := NewProtocol(cfg.P)
	if err != nil {
		return nil, err
	}
	e, err := sim.New(sim.Config{
		N:        cfg.N,
		Protocol: proto,
		Initial: map[ode.Var]int{
			ProposalX: cfg.InitialX,
			ProposalY: cfg.InitialY,
			Undecided: cfg.N - cfg.InitialX - cfg.InitialY,
		},
		Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	run := &Run{ConvergedAt: -1}
	for t := 0; t < cfg.Periods; t++ {
		if cfg.FailAt >= 0 && t == cfg.FailAt && cfg.FailFrac > 0 {
			run.Killed = e.KillFraction(cfg.FailFrac)
		}
		e.Step()
		if t%cfg.SampleEvery == 0 {
			run.Times = append(run.Times, float64(t))
			run.X = append(run.X, float64(e.Count(ProposalX)))
			run.Y = append(run.Y, float64(e.Count(ProposalY)))
			run.Z = append(run.Z, float64(e.Count(Undecided)))
		}
		if run.ConvergedAt < 0 {
			switch e.Alive() {
			case e.Count(ProposalX):
				run.ConvergedAt = t
				run.Winner = ProposalX
			case e.Count(ProposalY):
				run.ConvergedAt = t
				run.Winner = ProposalY
			}
		}
	}
	return run, nil
}

// PhaseTrajectory is one (X(t), Y(t)) path of the Figure 4 phase portrait.
type PhaseTrajectory struct {
	X0, Y0, Z0 int
	Xs, Ys     []float64
}

// Figure4InitialPoints returns the seven initial points of the Figure 4
// caption for N = 1000.
func Figure4InitialPoints() [][3]int {
	return [][3]int{
		{100, 200, 700}, // blank square
		{200, 100, 700}, // dark square
		{300, 500, 200}, // blank circle
		{500, 300, 200}, // dark circle
		{100, 800, 100}, // blank triangle
		{800, 100, 100}, // dark triangle
		{100, 100, 800}, // blank inverted triangle
	}
}

// PhasePortrait simulates the LV protocol from each initial point,
// recording (X, Y) — the paper's Figure 4.
func PhasePortrait(n int, p float64, initials [][3]int, periods, sampleEvery int, seed int64) ([]PhaseTrajectory, error) {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	proto, err := NewProtocol(p)
	if err != nil {
		return nil, err
	}
	out := make([]PhaseTrajectory, 0, len(initials))
	for i, ic := range initials {
		if ic[0]+ic[1]+ic[2] != n {
			return nil, fmt.Errorf("lv: initial point %v does not sum to N = %d", ic, n)
		}
		e, err := sim.New(sim.Config{
			N:        n,
			Protocol: proto,
			Initial:  map[ode.Var]int{ProposalX: ic[0], ProposalY: ic[1], Undecided: ic[2]},
			Seed:     seed + int64(i)*7919,
		})
		if err != nil {
			return nil, err
		}
		tr := PhaseTrajectory{X0: ic[0], Y0: ic[1], Z0: ic[2]}
		for t := 0; t < periods; t++ {
			if t%sampleEvery == 0 {
				tr.Xs = append(tr.Xs, float64(e.Count(ProposalX)))
				tr.Ys = append(tr.Ys, float64(e.Count(ProposalY)))
			}
			e.Step()
		}
		out = append(out, tr)
	}
	return out, nil
}

// AccuracyPoint is one margin setting of the majority-accuracy sweep.
type AccuracyPoint struct {
	// MarginPct is the initial majority share in percent (e.g. 55 for a
	// 55/45 split).
	MarginPct int
	// Accuracy is the fraction of trials in which the initial majority
	// won.
	Accuracy float64
	// MeanConvergence is the mean convergence period over converged
	// trials (-1 if none converged).
	MeanConvergence float64
}

// MajorityAccuracy quantifies the probabilistic-majority-selection
// specification ("w.h.p. this is the same as the initial majority value",
// §4.2): for each majority share it runs `trials` independent elections
// and reports how often the initial majority won. Accuracy approaches 1
// as the margin grows and as N grows (the saddle at x = y only threatens
// near-tie starts).
func MajorityAccuracy(n int, marginsPct []int, trials, periods int, p float64, seed int64) ([]AccuracyPoint, error) {
	if trials < 1 {
		return nil, fmt.Errorf("lv: trials must be positive")
	}
	out := make([]AccuracyPoint, 0, len(marginsPct))
	for _, m := range marginsPct {
		if m < 50 || m > 100 {
			return nil, fmt.Errorf("lv: margin %d%% outside [50, 100]", m)
		}
		wins, converged := 0, 0
		var convSum float64
		for tr := 0; tr < trials; tr++ {
			run, err := Simulate(Config{
				N:        n,
				InitialX: n * m / 100,
				InitialY: n - n*m/100,
				P:        p,
				Periods:  periods,
				FailAt:   -1,
				Seed:     seed + int64(tr)*9973 + int64(m)*31,
			})
			if err != nil {
				return nil, err
			}
			if run.ConvergedAt >= 0 {
				converged++
				convSum += float64(run.ConvergedAt)
				if run.Winner == ProposalX {
					wins++
				}
			} else if run.X[len(run.X)-1] > run.Y[len(run.Y)-1] {
				// Count unconverged runs by their current leader.
				wins++
			}
		}
		pt := AccuracyPoint{MarginPct: m, Accuracy: float64(wins) / float64(trials), MeanConvergence: -1}
		if converged > 0 {
			pt.MeanConvergence = convSum / float64(converged)
		}
		out = append(out, pt)
	}
	return out, nil
}

// ConvergenceComplexity evaluates the §4.2.2 closed-form linearized
// solution near the stable point (0, 1):
//
//	x(t) = u₀·e^{−3t},  y(t) = 1 − (6·u₀·t + v₀)·e^{−3t}
//
// for an initial displacement x(0) = u₀, y(0) = 1 − v₀. Time is in source
// equation units (divide protocol periods by 1/p to convert).
func ConvergenceComplexity(u0, v0, t float64) (x, y float64) {
	decay := math.Exp(-3 * t)
	return u0 * decay, 1 - (6*u0*t+v0)*decay
}
