package lv

import (
	"math"
	"math/rand"
	"testing"

	"odeproto/internal/core"
	"odeproto/internal/ode"
	"odeproto/internal/solver"
)

func TestSystemTaxonomy(t *testing.T) {
	c := System().Classify()
	if !c.Mappable() || !c.RestrictedPolynomial {
		t.Fatalf("LV (7) classification %v", c)
	}
}

func TestCompetitionSystemNotMappable(t *testing.T) {
	c := CompetitionSystem().Classify()
	if c.Complete || c.CompletelyPartitionable {
		t.Fatalf("LV (6) should not be complete: %v", c)
	}
}

// TestRewrittenMatchesHandWritten: the mechanical §7 pipeline applied to
// (6) gives dynamics identical to the paper's hand-written (7).
func TestRewrittenMatchesHandWritten(t *testing.T) {
	rw, err := RewrittenSystem()
	if err != nil {
		t.Fatal(err)
	}
	hand := System()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		x := rng.Float64()
		y := rng.Float64() * (1 - x)
		point := map[ode.Var]float64{ProposalX: x, ProposalY: y, Undecided: 1 - x - y}
		a := rw.PointFromVec(rw.Eval(point))
		b := hand.PointFromVec(hand.Eval(point))
		for _, v := range []ode.Var{ProposalX, ProposalY, Undecided} {
			if math.Abs(a[v]-b[v]) > 1e-9 {
				t.Fatalf("rewritten and hand-written disagree on %s: %v vs %v", v, a[v], b[v])
			}
		}
	}
}

func TestProtocolIsFigure3(t *testing.T) {
	proto, err := NewProtocol(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(proto.Actions) != 4 {
		t.Fatalf("LV protocol has %d actions, want 4", len(proto.Actions))
	}
	for _, a := range proto.Actions {
		if a.Kind != core.Sample || len(a.Samples) != 1 {
			t.Fatalf("non-Figure-3 action %v", a)
		}
		if math.Abs(a.Coin-3*DefaultP) > 1e-12 {
			t.Fatalf("coin %v, want 3p = %v", a.Coin, 3*DefaultP)
		}
	}
}

// TestMajorityWins is the core correctness property: starting from a 60/40
// split, the initial majority wins.
func TestMajorityWins(t *testing.T) {
	run, err := Simulate(Config{
		N:        4000,
		InitialX: 2400,
		InitialY: 1600,
		Periods:  2000,
		FailAt:   -1,
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.Winner != ProposalX {
		t.Fatalf("winner = %q, want x (initial majority); converged at %d", run.Winner, run.ConvergedAt)
	}
	if run.ConvergedAt < 0 {
		t.Fatal("did not converge")
	}
}

// TestMajorityWinsSymmetric: the mirrored split elects y.
func TestMajorityWinsSymmetric(t *testing.T) {
	run, err := Simulate(Config{
		N:        4000,
		InitialX: 1600,
		InitialY: 2400,
		Periods:  2000,
		FailAt:   -1,
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.Winner != ProposalY {
		t.Fatalf("winner = %q, want y", run.Winner)
	}
}

// TestSelfStabilizationAfterMassiveFailure reproduces Figure 12 at test
// scale: 50% of processes crash mid-run and the survivors still converge.
func TestSelfStabilizationAfterMassiveFailure(t *testing.T) {
	run, err := Simulate(Config{
		N:        4000,
		InitialX: 2400,
		InitialY: 1600,
		Periods:  3000,
		FailAt:   50,
		FailFrac: 0.5,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	// KillFraction rounds to nearest and kills exactly its target: all
	// 4000 processes are alive at FailAt, so exactly half die.
	if run.Killed != 2000 {
		t.Fatalf("killed %d, want exactly 2000", run.Killed)
	}
	if run.ConvergedAt < 0 {
		t.Fatal("did not converge after massive failure")
	}
}

// TestTieBreaks: an exact tie still converges to one of the two proposals
// (the saddle at (1/3,1/3,1/3) is unsustainable in finite groups, §4.2.2).
func TestTieBreaks(t *testing.T) {
	run, err := Simulate(Config{
		N:        1000,
		InitialX: 500,
		InitialY: 500,
		Periods:  6000,
		FailAt:   -1,
		Seed:     13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.ConvergedAt < 0 {
		t.Fatal("tie never resolved; finite-group randomization should break it")
	}
	if run.Winner != ProposalX && run.Winner != ProposalY {
		t.Fatalf("winner = %q", run.Winner)
	}
}

// TestAgreementIsStable: after convergence every alive process stays at the
// winner (self-stabilization: no action fires once x or y is empty).
func TestAgreementIsStable(t *testing.T) {
	run, err := Simulate(Config{
		N:        1000,
		InitialX: 700,
		InitialY: 300,
		Periods:  3000,
		FailAt:   -1,
		Seed:     17,
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.ConvergedAt < 0 {
		t.Skip("run did not converge within test budget")
	}
	// After convergence the recorded series must stay converged.
	for i, tm := range run.Times {
		if int(tm) > run.ConvergedAt+1 {
			if run.Winner == ProposalX && run.X[i] != 1000 {
				t.Fatalf("x dropped to %v after convergence at period %v", run.X[i], tm)
			}
		}
	}
}

func TestPhasePortraitRespectsDiagonal(t *testing.T) {
	// Initial points on either side of x = y converge to the matching
	// corner (Theorem 4) — test two representative points at small scale.
	const n = 600
	trs, err := PhasePortrait(n, 0.05, [][3]int{
		{200, 100, 300}, // x majority
		{100, 200, 300}, // y majority
	}, 4000, 10, 23)
	if err != nil {
		t.Fatal(err)
	}
	finalX0 := trs[0].Xs[len(trs[0].Xs)-1]
	finalY1 := trs[1].Ys[len(trs[1].Ys)-1]
	if finalX0 < 0.95*n {
		t.Fatalf("x-majority trajectory ended at X = %v, want ≈ %d", finalX0, n)
	}
	if finalY1 < 0.95*n {
		t.Fatalf("y-majority trajectory ended at Y = %v, want ≈ %d", finalY1, n)
	}
}

func TestPhasePortraitValidation(t *testing.T) {
	if _, err := PhasePortrait(100, 0.01, [][3]int{{1, 1, 1}}, 10, 1, 1); err == nil {
		t.Fatal("bad initial point accepted")
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(Config{N: 10, InitialX: 8, InitialY: 8, Periods: 1, FailAt: -1}); err == nil {
		t.Fatal("overfull initial split accepted")
	}
}

// TestConvergenceComplexityMatchesODE: the closed-form linearized solution
// near (0, 1) tracks the RK4 integration of the full equations (7) for a
// small initial displacement.
func TestConvergenceComplexityMatchesODE(t *testing.T) {
	sys := System()
	u0, v0 := 0.01, 0.015
	x0 := []float64{u0, 1 - v0, v0 - u0}
	tr, err := solver.RK4(solver.FromSystem(sys), x0, 0, 2, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	for _, tm := range []float64{0.2, 0.5, 1.0} {
		got := tr.At(tm)
		wantX, wantY := ConvergenceComplexity(u0, v0, tm)
		if math.Abs(got[0]-wantX) > 0.15*wantX+1e-4 {
			t.Fatalf("x(%v): ODE %v vs closed form %v", tm, got[0], wantX)
		}
		if math.Abs(got[1]-wantY) > 0.01 {
			t.Fatalf("y(%v): ODE %v vs closed form %v", tm, got[1], wantY)
		}
	}
}

// TestConvergenceComplexityExponential: x decays like e^{−3t}, giving the
// O(log N) periods-to-minority-O(1) claim.
func TestConvergenceComplexityExponential(t *testing.T) {
	x1, _ := ConvergenceComplexity(0.01, 0.01, 1)
	x2, _ := ConvergenceComplexity(0.01, 0.01, 2)
	ratio := x1 / x2
	if math.Abs(ratio-math.Exp(3)) > 1e-9 {
		t.Fatalf("decay ratio %v, want e^3", ratio)
	}
}

func TestFigure4InitialPointsSumTo1000(t *testing.T) {
	for _, ic := range Figure4InitialPoints() {
		if ic[0]+ic[1]+ic[2] != 1000 {
			t.Fatalf("initial point %v does not sum to 1000", ic)
		}
	}
}

// TestMajorityAccuracyGrowsWithMargin quantifies the "w.h.p." clause of
// probabilistic majority selection: a wide margin must win essentially
// always, and a wide margin must never be less accurate than a razor-thin
// one.
func TestMajorityAccuracyGrowsWithMargin(t *testing.T) {
	points, err := MajorityAccuracy(2000, []int{51, 60, 75}, 6, 4000, 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	if points[2].Accuracy < 0.99 {
		t.Fatalf("75/25 split accuracy %v, want ~1", points[2].Accuracy)
	}
	if points[1].Accuracy < 0.8 {
		t.Fatalf("60/40 split accuracy %v, want ≥ 0.8", points[1].Accuracy)
	}
	if points[2].Accuracy < points[0].Accuracy-1e-9 {
		t.Fatalf("accuracy not monotone: 75%% -> %v vs 51%% -> %v",
			points[2].Accuracy, points[0].Accuracy)
	}
}

func TestMajorityAccuracyValidation(t *testing.T) {
	if _, err := MajorityAccuracy(100, []int{40}, 2, 10, 0.05, 1); err == nil {
		t.Fatal("margin below 50% accepted")
	}
	if _, err := MajorityAccuracy(100, []int{60}, 0, 10, 0.05, 1); err == nil {
		t.Fatal("zero trials accepted")
	}
}
