package churn

import (
	"math"
	"sort"
	"testing"
)

func synth(t *testing.T, hosts int, hours float64, cfg Config) *Trace {
	t.Helper()
	tr, err := Synthesize(hosts, hours, 42, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestSynthesizeValidation(t *testing.T) {
	if _, err := Synthesize(0, 10, 1, Config{}); err == nil {
		t.Fatal("zero hosts accepted")
	}
	if _, err := Synthesize(10, 0, 1, Config{}); err == nil {
		t.Fatal("zero duration accepted")
	}
}

func TestEventsSorted(t *testing.T) {
	tr := synth(t, 500, 48, Config{})
	if !sort.SliceIsSorted(tr.Events, func(i, j int) bool { return tr.Events[i].Time < tr.Events[j].Time }) {
		t.Fatal("events not sorted")
	}
	for _, e := range tr.Events {
		if e.Time < 0 || e.Time >= 48 {
			t.Fatalf("event time %v out of range", e.Time)
		}
		if e.Host < 0 || e.Host >= 500 {
			t.Fatalf("event host %d out of range", e.Host)
		}
	}
}

func TestEventsAlternatePerHost(t *testing.T) {
	tr := synth(t, 100, 72, Config{})
	state := append([]bool(nil), tr.InitiallyUp...)
	for _, e := range tr.Events {
		if state[e.Host] == e.Up {
			t.Fatalf("host %d has two consecutive %v events", e.Host, e.Up)
		}
		state[e.Host] = e.Up
	}
}

// TestCalibrationMatchesOvernetStats: default parameters must land in the
// paper's published bands — hourly churn within [10%, 25%] on average, and
// joins/day within a factor ~1.5 of 6.4.
func TestCalibrationMatchesOvernetStats(t *testing.T) {
	tr := synth(t, 2000, 200, Config{})
	rates := tr.HourlyChurnRates()
	var mean float64
	for _, r := range rates {
		mean += r
	}
	mean /= float64(len(rates))
	if mean < 0.10 || mean > 0.25 {
		t.Fatalf("mean hourly churn %v outside the paper's [0.10, 0.25] band", mean)
	}
	jpd := tr.JoinsPerDay()
	if jpd < 4 || jpd > 9 {
		t.Fatalf("joins/day %v too far from the Overnet 6.4", jpd)
	}
}

func TestMeanAvailability(t *testing.T) {
	tr := synth(t, 1000, 100, Config{MeanUpHours: 3, MeanDownHours: 1})
	got := tr.MeanAvailability()
	if math.Abs(got-0.75) > 0.05 {
		t.Fatalf("availability %v, want ≈ 0.75", got)
	}
}

func TestEventsBetween(t *testing.T) {
	tr := synth(t, 200, 50, Config{})
	window := tr.EventsBetween(10, 11)
	for _, e := range window {
		if e.Time < 10 || e.Time >= 11 {
			t.Fatalf("event at %v outside window", e.Time)
		}
	}
	all := tr.EventsBetween(0, 50)
	if len(all) != len(tr.Events) {
		t.Fatalf("full window returned %d of %d events", len(all), len(tr.Events))
	}
}

func TestUpCountConsistency(t *testing.T) {
	tr := synth(t, 300, 30, Config{})
	up0 := 0
	for _, u := range tr.InitiallyUp {
		if u {
			up0++
		}
	}
	if got := tr.UpCountAt(0); got != up0 {
		t.Fatalf("UpCountAt(0) = %d, want %d", got, up0)
	}
	mid := tr.UpCountAt(15)
	if mid <= 0 || mid >= 300 {
		t.Fatalf("UpCountAt(15) = %d implausible", mid)
	}
}

func TestReplayerCoversAllEvents(t *testing.T) {
	tr := synth(t, 400, 20, Config{})
	rep, err := NewReplayer(tr, 10) // 6-minute periods
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for p := 0; p < 200; p++ { // 200 periods = 20 hours
		total += len(rep.Next(p))
	}
	if total != len(tr.Events) {
		t.Fatalf("replayed %d events, trace has %d", total, len(tr.Events))
	}
	rep.Reset()
	if got := len(rep.Next(0)); got != len(tr.EventsBetween(0, 0.1)) {
		t.Fatalf("reset replay mismatch: %d", got)
	}
}

func TestReplayerValidation(t *testing.T) {
	tr := synth(t, 10, 5, Config{})
	if _, err := NewReplayer(tr, 0); err == nil {
		t.Fatal("zero periodsPerHour accepted")
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Synthesize(100, 24, 7, Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthesize(100, 24, 7, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatal("same seed gave different traces")
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}
