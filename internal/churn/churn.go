// Package churn synthesizes and replays host-availability traces for the
// paper's churn experiments (Figures 9 and 10).
//
// The paper injects availability traces measured on the Overnet network
// (Bhagwan, Savage, Voelker, IPTPS 2003): hourly samples, hourly churn
// between 10% and 25% of the system size, and an average of 6.4
// joins/day/host, with events spread out over each hour. The original
// traces are not redistributable, so Synthesize generates per-host
// alternating up/down renewal processes (exponential sojourn times)
// calibrated to those published statistics; Trace.HourlyChurnRates and
// Trace.JoinsPerDay let experiments verify the calibration.
package churn

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"odeproto/internal/mt19937"
)

// Event is one availability transition of one host.
type Event struct {
	// Time is in hours from trace start.
	Time float64
	// Host is the host index in [0, Hosts).
	Host int
	// Up is true for a join (arrival), false for a departure.
	Up bool
}

// Trace is a time-ordered host availability trace.
type Trace struct {
	Hosts    int
	Duration float64 // hours
	// InitiallyUp[h] reports whether host h is up at time 0.
	InitiallyUp []bool
	// Events are sorted by Time.
	Events []Event
}

// Config calibrates the synthetic availability model.
type Config struct {
	// MeanUpHours is the mean session (up) duration. The default 2.5h,
	// with the matching down time, yields ~4.8 joins/day and ~20% hourly
	// churn — inside the paper's 10–25% band.
	MeanUpHours float64
	// MeanDownHours is the mean downtime duration (default 2.5h).
	MeanDownHours float64
}

func (c Config) withDefaults() Config {
	if c.MeanUpHours <= 0 {
		c.MeanUpHours = 2.5
	}
	if c.MeanDownHours <= 0 {
		c.MeanDownHours = 2.5
	}
	return c
}

// Synthesize generates a trace of the given size and duration.
func Synthesize(hosts int, hours float64, seed int64, cfg Config) (*Trace, error) {
	if hosts <= 0 {
		return nil, fmt.Errorf("churn: hosts %d must be positive", hosts)
	}
	if hours <= 0 {
		return nil, fmt.Errorf("churn: duration %v must be positive", hours)
	}
	cfg = cfg.withDefaults()
	rng := rand.New(mt19937.New(seed))
	availability := cfg.MeanUpHours / (cfg.MeanUpHours + cfg.MeanDownHours)

	tr := &Trace{
		Hosts:       hosts,
		Duration:    hours,
		InitiallyUp: make([]bool, hosts),
	}
	for h := 0; h < hosts; h++ {
		up := rng.Float64() < availability
		tr.InitiallyUp[h] = up
		t := 0.0
		for {
			var sojourn float64
			if up {
				sojourn = rng.ExpFloat64() * cfg.MeanUpHours
			} else {
				sojourn = rng.ExpFloat64() * cfg.MeanDownHours
			}
			t += sojourn
			if t >= hours {
				break
			}
			up = !up
			tr.Events = append(tr.Events, Event{Time: t, Host: h, Up: up})
		}
	}
	sort.SliceStable(tr.Events, func(i, j int) bool { return tr.Events[i].Time < tr.Events[j].Time })
	return tr, nil
}

// EventsBetween returns the events with Time in [t0, t1).
func (tr *Trace) EventsBetween(t0, t1 float64) []Event {
	lo := sort.Search(len(tr.Events), func(i int) bool { return tr.Events[i].Time >= t0 })
	hi := sort.Search(len(tr.Events), func(i int) bool { return tr.Events[i].Time >= t1 })
	return tr.Events[lo:hi]
}

// UpCountAt returns the number of hosts up at time t.
func (tr *Trace) UpCountAt(t float64) int {
	up := 0
	state := append([]bool(nil), tr.InitiallyUp...)
	for _, e := range tr.Events {
		if e.Time > t {
			break
		}
		state[e.Host] = e.Up
	}
	for _, s := range state {
		if s {
			up++
		}
	}
	return up
}

// JoinsPerDay returns the average number of joins per host per day, the
// statistic the paper quotes as 6.4/day for Overnet.
func (tr *Trace) JoinsPerDay() float64 {
	joins := 0
	for _, e := range tr.Events {
		if e.Up {
			joins++
		}
	}
	days := tr.Duration / 24
	if days == 0 || tr.Hosts == 0 {
		return 0
	}
	return float64(joins) / float64(tr.Hosts) / days
}

// HourlyChurnRates returns, for each whole hour of the trace, the number
// of departures during that hour divided by the system size — the paper's
// "hourly churn rate of 10% to 25% of the system size".
func (tr *Trace) HourlyChurnRates() []float64 {
	hours := int(math.Floor(tr.Duration))
	out := make([]float64, hours)
	for _, e := range tr.Events {
		if e.Up {
			continue
		}
		h := int(e.Time)
		if h >= 0 && h < hours {
			out[h]++
		}
	}
	for i := range out {
		out[i] /= float64(tr.Hosts)
	}
	return out
}

// MeanAvailability returns the time-averaged fraction of hosts up, sampled
// hourly.
func (tr *Trace) MeanAvailability() float64 {
	hours := int(math.Floor(tr.Duration))
	if hours == 0 {
		return 0
	}
	state := append([]bool(nil), tr.InitiallyUp...)
	idx := 0
	var sum float64
	for h := 0; h < hours; h++ {
		t := float64(h)
		for idx < len(tr.Events) && tr.Events[idx].Time <= t {
			state[tr.Events[idx].Host] = tr.Events[idx].Up
			idx++
		}
		up := 0
		for _, s := range state {
			if s {
				up++
			}
		}
		sum += float64(up) / float64(tr.Hosts)
	}
	return sum / float64(hours)
}

// Replayer feeds a trace into a simulation period by period.
type Replayer struct {
	trace          *Trace
	periodsPerHour float64
	cursor         int
}

// NewReplayer wraps a trace for a simulation running the given number of
// protocol periods per hour (the paper uses 6-minute periods, i.e. 10
// periods/hour).
func NewReplayer(trace *Trace, periodsPerHour float64) (*Replayer, error) {
	if periodsPerHour <= 0 {
		return nil, fmt.Errorf("churn: periodsPerHour %v must be positive", periodsPerHour)
	}
	return &Replayer{trace: trace, periodsPerHour: periodsPerHour}, nil
}

// Next returns the events that occur during protocol period number
// `period` (0-based). Periods must be requested in increasing order.
func (r *Replayer) Next(period int) []Event {
	t1 := float64(period+1) / r.periodsPerHour
	start := r.cursor
	for r.cursor < len(r.trace.Events) && r.trace.Events[r.cursor].Time < t1 {
		r.cursor++
	}
	return r.trace.Events[start:r.cursor]
}

// Reset rewinds the replayer.
func (r *Replayer) Reset() { r.cursor = 0 }
