// Package solver provides numerical integration of ordinary differential
// equation systems: fixed-step Euler and classical Runge–Kutta (RK4), and
// the adaptive Runge–Kutta–Fehlberg 4(5) method.
//
// The repository uses these integrators to produce the "analysis" curves
// that the paper overlays against protocol simulations (e.g. Figure 7), and
// to draw phase portraits of the source equations next to the portraits
// measured from the protocol runs (Figures 2 and 4).
package solver

import (
	"errors"
	"fmt"
	"math"

	"odeproto/internal/ode"
)

// Func is an autonomous vector field ẋ = f(x). Implementations must not
// retain or modify x.
type Func func(x []float64) []float64

// FromSystem adapts a polynomial equation system to a Func.
func FromSystem(s *ode.System) Func {
	return func(x []float64) []float64 {
		return s.EvalVec(x)
	}
}

// Trajectory is a dense solution: Points[i] is the state at Times[i].
type Trajectory struct {
	Times  []float64
	Points [][]float64
}

// Len returns the number of stored samples.
func (tr Trajectory) Len() int { return len(tr.Times) }

// Final returns the last state of the trajectory.
func (tr Trajectory) Final() []float64 {
	if len(tr.Points) == 0 {
		return nil
	}
	return tr.Points[len(tr.Points)-1]
}

// At returns the state at time t by linear interpolation between stored
// samples. Times outside the trajectory clamp to the endpoints.
func (tr Trajectory) At(t float64) []float64 {
	n := len(tr.Times)
	if n == 0 {
		return nil
	}
	if t <= tr.Times[0] {
		return append([]float64(nil), tr.Points[0]...)
	}
	if t >= tr.Times[n-1] {
		return append([]float64(nil), tr.Points[n-1]...)
	}
	// Binary search for the bracketing interval.
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if tr.Times[mid] <= t {
			lo = mid
		} else {
			hi = mid
		}
	}
	t0, t1 := tr.Times[lo], tr.Times[hi]
	w := (t - t0) / (t1 - t0)
	out := make([]float64, len(tr.Points[lo]))
	for i := range out {
		out[i] = (1-w)*tr.Points[lo][i] + w*tr.Points[hi][i]
	}
	return out
}

// Component extracts the time series of one state component.
func (tr Trajectory) Component(i int) []float64 {
	out := make([]float64, len(tr.Points))
	for k, p := range tr.Points {
		out[k] = p[i]
	}
	return out
}

func validateSpan(t0, t1, h float64) error {
	if !(t1 > t0) {
		return fmt.Errorf("solver: empty time span [%v, %v]", t0, t1)
	}
	if !(h > 0) {
		return fmt.Errorf("solver: step size %v must be positive", h)
	}
	return nil
}

// Euler integrates ẋ = f(x) from x0 over [t0, t1] with fixed step h.
func Euler(f Func, x0 []float64, t0, t1, h float64) (Trajectory, error) {
	if err := validateSpan(t0, t1, h); err != nil {
		return Trajectory{}, err
	}
	x := append([]float64(nil), x0...)
	tr := Trajectory{Times: []float64{t0}, Points: [][]float64{append([]float64(nil), x...)}}
	for t := t0; t < t1; {
		step := math.Min(h, t1-t)
		d := f(x)
		for i := range x {
			x[i] += step * d[i]
		}
		t += step
		tr.Times = append(tr.Times, t)
		tr.Points = append(tr.Points, append([]float64(nil), x...))
	}
	return tr, nil
}

// RK4 integrates ẋ = f(x) from x0 over [t0, t1] with the classical
// fourth-order Runge–Kutta method and fixed step h.
func RK4(f Func, x0 []float64, t0, t1, h float64) (Trajectory, error) {
	if err := validateSpan(t0, t1, h); err != nil {
		return Trajectory{}, err
	}
	n := len(x0)
	x := append([]float64(nil), x0...)
	tr := Trajectory{Times: []float64{t0}, Points: [][]float64{append([]float64(nil), x...)}}
	tmp := make([]float64, n)
	for t := t0; t < t1; {
		step := math.Min(h, t1-t)
		k1 := f(x)
		for i := range tmp {
			tmp[i] = x[i] + step/2*k1[i]
		}
		k2 := f(tmp)
		for i := range tmp {
			tmp[i] = x[i] + step/2*k2[i]
		}
		k3 := f(tmp)
		for i := range tmp {
			tmp[i] = x[i] + step*k3[i]
		}
		k4 := f(tmp)
		for i := range x {
			x[i] += step / 6 * (k1[i] + 2*k2[i] + 2*k3[i] + k4[i])
		}
		t += step
		tr.Times = append(tr.Times, t)
		tr.Points = append(tr.Points, append([]float64(nil), x...))
	}
	return tr, nil
}

// ErrStepUnderflow indicates RKF45 could not meet the tolerance without
// shrinking the step below its minimum.
var ErrStepUnderflow = errors.New("solver: adaptive step underflow")

// RKF45 integrates ẋ = f(x) adaptively with the Runge–Kutta–Fehlberg 4(5)
// pair, keeping the estimated local error per step below tol.
func RKF45(f Func, x0 []float64, t0, t1, tol float64) (Trajectory, error) {
	if !(t1 > t0) {
		return Trajectory{}, fmt.Errorf("solver: empty time span [%v, %v]", t0, t1)
	}
	if !(tol > 0) {
		return Trajectory{}, fmt.Errorf("solver: tolerance %v must be positive", tol)
	}
	const (
		safety = 0.9
		minH   = 1e-12
	)
	n := len(x0)
	x := append([]float64(nil), x0...)
	tr := Trajectory{Times: []float64{t0}, Points: [][]float64{append([]float64(nil), x...)}}
	h := (t1 - t0) / 100
	t := t0
	tmp := make([]float64, n)
	stage := func(coef [][2]float64, ks [][]float64) []float64 {
		for i := range tmp {
			tmp[i] = x[i]
			for _, c := range coef {
				tmp[i] += h * c[0] * ks[int(c[1])][i]
			}
		}
		return f(tmp)
	}
	for t < t1 {
		if h > t1-t {
			h = t1 - t
		}
		if h < minH {
			return tr, ErrStepUnderflow
		}
		k1 := f(x)
		ks := [][]float64{k1}
		k2 := stage([][2]float64{{1.0 / 4, 0}}, ks)
		ks = append(ks, k2)
		k3 := stage([][2]float64{{3.0 / 32, 0}, {9.0 / 32, 1}}, ks)
		ks = append(ks, k3)
		k4 := stage([][2]float64{{1932.0 / 2197, 0}, {-7200.0 / 2197, 1}, {7296.0 / 2197, 2}}, ks)
		ks = append(ks, k4)
		k5 := stage([][2]float64{{439.0 / 216, 0}, {-8, 1}, {3680.0 / 513, 2}, {-845.0 / 4104, 3}}, ks)
		ks = append(ks, k5)
		k6 := stage([][2]float64{{-8.0 / 27, 0}, {2, 1}, {-3544.0 / 2565, 2}, {1859.0 / 4104, 3}, {-11.0 / 40, 4}}, ks)

		var errNorm float64
		next := make([]float64, n)
		for i := 0; i < n; i++ {
			x4 := x[i] + h*(25.0/216*k1[i]+1408.0/2565*k3[i]+2197.0/4104*k4[i]-1.0/5*k5[i])
			x5 := x[i] + h*(16.0/135*k1[i]+6656.0/12825*k3[i]+28561.0/56430*k4[i]-9.0/50*k5[i]+2.0/55*k6[i])
			next[i] = x5
			if e := math.Abs(x5 - x4); e > errNorm {
				errNorm = e
			}
		}
		if errNorm <= tol || h <= minH*2 {
			t += h
			x = next
			tr.Times = append(tr.Times, t)
			tr.Points = append(tr.Points, append([]float64(nil), x...))
		}
		// Step-size update (guard against zero error).
		if errNorm == 0 {
			h *= 2
		} else {
			h *= safety * math.Pow(tol/errNorm, 0.2)
			if h < minH {
				h = minH
			}
		}
	}
	return tr, nil
}
