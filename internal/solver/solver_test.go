package solver

import (
	"math"
	"testing"

	"odeproto/internal/ode"
)

// decay is ẋ = −x with solution e^{−t}.
func decay(x []float64) []float64 { return []float64{-x[0]} }

// oscillator is ẋ = y, ẏ = −x (unit circle, conserved energy).
func oscillator(x []float64) []float64 { return []float64{x[1], -x[0]} }

func TestEulerDecay(t *testing.T) {
	tr, err := Euler(decay, []float64{1}, 0, 1, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	got := tr.Final()[0]
	if math.Abs(got-math.Exp(-1)) > 1e-3 {
		t.Fatalf("Euler e^-1 = %v, want %v", got, math.Exp(-1))
	}
}

func TestRK4Decay(t *testing.T) {
	tr, err := RK4(decay, []float64{1}, 0, 1, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	got := tr.Final()[0]
	if math.Abs(got-math.Exp(-1)) > 1e-9 {
		t.Fatalf("RK4 e^-1 = %v, want %v", got, math.Exp(-1))
	}
}

func TestRK4FourthOrderConvergence(t *testing.T) {
	errAt := func(h float64) float64 {
		tr, err := RK4(decay, []float64{1}, 0, 1, h)
		if err != nil {
			t.Fatal(err)
		}
		return math.Abs(tr.Final()[0] - math.Exp(-1))
	}
	e1, e2 := errAt(0.1), errAt(0.05)
	ratio := e1 / e2
	// Fourth order: halving h should cut error by ~16.
	if ratio < 10 || ratio > 25 {
		t.Fatalf("error ratio %v, want ~16 (4th order)", ratio)
	}
}

func TestRK4OscillatorEnergy(t *testing.T) {
	tr, err := RK4(oscillator, []float64{1, 0}, 0, 10, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	f := tr.Final()
	energy := f[0]*f[0] + f[1]*f[1]
	if math.Abs(energy-1) > 1e-6 {
		t.Fatalf("energy drifted to %v", energy)
	}
	// x(10) should be cos(10).
	if math.Abs(f[0]-math.Cos(10)) > 1e-6 {
		t.Fatalf("x(10) = %v, want %v", f[0], math.Cos(10))
	}
}

func TestRKF45MatchesRK4(t *testing.T) {
	tr, err := RKF45(oscillator, []float64{1, 0}, 0, 10, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	f := tr.Final()
	if math.Abs(f[0]-math.Cos(10)) > 1e-5 || math.Abs(f[1]+math.Sin(10)) > 1e-5 {
		t.Fatalf("RKF45 final = %v, want [cos10, -sin10]", f)
	}
}

func TestRKF45TakesFewerStepsThanFixed(t *testing.T) {
	tr, err := RKF45(decay, []float64{1}, 0, 5, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() > 2000 {
		t.Fatalf("adaptive integrator stored %d points; expected coarse stepping", tr.Len())
	}
}

func TestFromSystem(t *testing.T) {
	s, err := ode.Parse("x' = -x*y\ny' = x*y", nil)
	if err != nil {
		t.Fatal(err)
	}
	f := FromSystem(s)
	d := f([]float64{0.5, 0.5})
	if math.Abs(d[0]+0.25) > 1e-12 || math.Abs(d[1]-0.25) > 1e-12 {
		t.Fatalf("FromSystem eval = %v", d)
	}
}

// TestEpidemicLogisticSolution integrates the epidemic equations and
// compares with the closed-form logistic solution
// y(t) = y0 / (y0 + (1−y0)·e^{−t}).
func TestEpidemicLogisticSolution(t *testing.T) {
	s, err := ode.Parse("x' = -x*y\ny' = x*y", nil)
	if err != nil {
		t.Fatal(err)
	}
	y0 := 0.01
	tr, err := RK4(FromSystem(s), []float64{1 - y0, y0}, 0, 10, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	for _, tm := range []float64{1, 5, 10} {
		got := tr.At(tm)[1]
		want := y0 / (y0 + (1-y0)*math.Exp(-tm))
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("y(%v) = %v, want logistic %v", tm, got, want)
		}
	}
}

func TestTrajectoryAtInterpolation(t *testing.T) {
	tr := Trajectory{
		Times:  []float64{0, 1, 2},
		Points: [][]float64{{0}, {10}, {20}},
	}
	if got := tr.At(0.5)[0]; got != 5 {
		t.Fatalf("At(0.5) = %v, want 5", got)
	}
	if got := tr.At(-1)[0]; got != 0 {
		t.Fatalf("At(-1) = %v, want clamp to 0", got)
	}
	if got := tr.At(99)[0]; got != 20 {
		t.Fatalf("At(99) = %v, want clamp to 20", got)
	}
}

func TestTrajectoryComponent(t *testing.T) {
	tr := Trajectory{
		Times:  []float64{0, 1},
		Points: [][]float64{{1, 2}, {3, 4}},
	}
	c := tr.Component(1)
	if c[0] != 2 || c[1] != 4 {
		t.Fatalf("Component = %v", c)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Euler(decay, []float64{1}, 1, 0, 0.1); err == nil {
		t.Fatal("expected span error")
	}
	if _, err := RK4(decay, []float64{1}, 0, 1, -0.1); err == nil {
		t.Fatal("expected step error")
	}
	if _, err := RKF45(decay, []float64{1}, 0, 1, 0); err == nil {
		t.Fatal("expected tolerance error")
	}
}

func TestTrajectoryFinalEmpty(t *testing.T) {
	var tr Trajectory
	if tr.Final() != nil {
		t.Fatal("empty trajectory should have nil final state")
	}
	if tr.At(1) != nil {
		t.Fatal("empty trajectory At should be nil")
	}
}

// TestConservationOnCompleteSystem: integrating a complete system keeps
// Σx constant.
func TestConservationOnCompleteSystem(t *testing.T) {
	s, err := ode.Parse(`
x' = -4*x*y + 0.01*z
y' = 4*x*y - y
z' = y - 0.01*z
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := RK4(FromSystem(s), []float64{0.999, 0.001, 0}, 0, 100, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tr.Len(); i += 500 {
		sum := tr.Points[i][0] + tr.Points[i][1] + tr.Points[i][2]
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("Σx at step %d = %v, want 1", i, sum)
		}
	}
}
