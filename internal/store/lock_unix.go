//go:build unix

package store

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockDir takes a non-blocking exclusive flock on <dir>/LOCK. The kernel
// drops the lock when the holder dies, so crash recovery needs no cleanup.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("data dir %s is locked by another process: %w", dir, err)
	}
	return f, nil
}
