package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func mustOpen(t *testing.T, dir string, opts Options) *FileStore {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

func lifecycle(id, key string) []JobRecord {
	return []JobRecord{
		{Op: OpSubmitted, ID: id, Key: key, Spec: json.RawMessage(`{"n":400}`), SubmittedAt: 100},
		{Op: OpRunning, ID: id, StartedAt: 200},
		{Op: OpDone, ID: id, FinishedAt: 300},
	}
}

func TestMemoryStoreIsNoop(t *testing.T) {
	m := NewMemory()
	if err := m.Append(JobRecord{Op: OpSubmitted, ID: "j1"}); err != nil {
		t.Fatal(err)
	}
	if err := m.PutResult("abcd", []byte("data")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.GetResult("abcd"); err != ErrNotFound {
		t.Fatalf("memory GetResult err = %v, want ErrNotFound", err)
	}
	if got := m.Recovered(); got != nil {
		t.Fatalf("memory Recovered = %v, want nil", got)
	}
	st := m.Stats()
	if st.Backend != "memory" || st.RecordsAppended != 1 {
		t.Fatalf("memory stats %+v", st)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFileStoreAppendRecover(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	if got := s.Recovered(); len(got) != 0 {
		t.Fatalf("fresh store recovered %d jobs", len(got))
	}
	for _, rec := range lifecycle("j000001", "aaaa") {
		if err := s.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	// j000002 never reaches a terminal record: interrupted.
	if err := s.Append(JobRecord{Op: OpSubmitted, ID: "j000002", Key: "bbbb", SubmittedAt: 400}); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(JobRecord{Op: OpRunning, ID: "j000002", StartedAt: 500}); err != nil {
		t.Fatal(err)
	}
	// j000003 fails.
	if err := s.Append(JobRecord{Op: OpSubmitted, ID: "j000003", SubmittedAt: 600}); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(JobRecord{Op: OpFailed, ID: "j000003", Error: "boom", FinishedAt: 700}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(JobRecord{Op: OpRunning, ID: "j000001"}); err == nil {
		t.Fatal("append after Close succeeded")
	}

	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	got := s2.Recovered()
	if len(got) != 3 {
		t.Fatalf("recovered %d jobs, want 3", len(got))
	}
	j1, j2, j3 := got[0], got[1], got[2]
	if j1.ID != "j000001" || j1.Status != OpDone || j1.Interrupted {
		t.Fatalf("j1 = %+v", j1)
	}
	if j1.Key != "aaaa" || string(j1.Spec) != `{"n":400}` {
		t.Fatalf("j1 lost submit fields: %+v", j1)
	}
	if j1.SubmittedAt != 100 || j1.StartedAt != 200 || j1.FinishedAt != 300 {
		t.Fatalf("j1 timestamps %+v", j1)
	}
	if j2.ID != "j000002" || j2.Status != OpRunning || !j2.Interrupted {
		t.Fatalf("j2 = %+v", j2)
	}
	if j3.Status != OpFailed || j3.Error != "boom" || j3.Interrupted {
		t.Fatalf("j3 = %+v", j3)
	}
	if st := s2.Stats(); st.Backend != "file" || st.RecoveredJobs != 3 || st.TailTruncations != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestOutOfOrderRecordsMergeByRank(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	// The worker's done record lands before the submitter's submitted
	// record (both goroutines race to the WAL).
	if err := s.Append(JobRecord{Op: OpDone, ID: "j000009", FinishedAt: 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(JobRecord{Op: OpSubmitted, ID: "j000009", Key: "cccc", SubmittedAt: 1}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	got := s2.Recovered()
	if len(got) != 1 || got[0].Status != OpDone || got[0].Interrupted {
		t.Fatalf("out-of-order merge = %+v", got)
	}
	if got[0].Key != "cccc" {
		t.Fatalf("late submitted record lost its key: %+v", got[0])
	}
}

func TestResultRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	defer s.Close()

	key := "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef"
	if _, err := s.GetResult(key); err != ErrNotFound {
		t.Fatalf("missing result err = %v, want ErrNotFound", err)
	}
	blob := []byte(`{"states":["x","y"],"runs":[]}`)
	if err := s.PutResult(key, blob); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetResult(key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blob) {
		t.Fatalf("GetResult = %q, want %q", got, blob)
	}
	// The blob lands under results/<first-two-hex>/<key>, atomically (no
	// leftover temp files).
	path := filepath.Join(dir, "results", key[:2], key)
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("blob not at %s: %v", path, err)
	}
	entries, err := os.ReadDir(filepath.Join(dir, "results", key[:2]))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("result dir holds %d entries, want just the blob", len(entries))
	}
	if st := s.Stats(); st.ResultsWritten != 1 || st.ResultBytes != int64(len(blob)) {
		t.Fatalf("result stats %+v", st)
	}

	// Keys that are not plain lowercase hex are rejected, not resolved as
	// paths.
	for _, bad := range []string{"", "ab", "../../etc/passwd", "ABCDEF012345", "abcd/efgh", "abcdefg."} {
		if err := s.PutResult(bad, blob); err == nil {
			t.Fatalf("PutResult accepted key %q", bad)
		}
		if _, err := s.GetResult(bad); err != ErrNotFound {
			t.Fatalf("GetResult(%q) err = %v, want ErrNotFound", bad, err)
		}
	}
}

// TestResultReaderStreams pins the streaming read API: GetResultReader
// hands back the blob bytes and the exact on-disk size without buffering
// the whole result, and missing keys surface as ErrNotFound.
func TestResultReaderStreams(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	defer s.Close()

	key := "fedcba9876543210fedcba9876543210fedcba9876543210fedcba9876543210"
	if _, _, err := s.GetResultReader(key); err != ErrNotFound {
		t.Fatalf("missing result reader err = %v, want ErrNotFound", err)
	}
	blob := []byte(`{"states":["x","y"],"runs":[{"seed":1}]}`)
	if err := s.PutResult(key, blob); err != nil {
		t.Fatal(err)
	}
	rc, size, err := s.GetResultReader(key)
	if err != nil {
		t.Fatal(err)
	}
	if size != int64(len(blob)) {
		t.Fatalf("reader size = %d, want %d", size, len(blob))
	}
	got, err := io.ReadAll(rc)
	if err != nil {
		t.Fatal(err)
	}
	if err := rc.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blob) {
		t.Fatalf("streamed bytes = %q, want %q", got, blob)
	}
	// Invalid keys behave like missing ones — no path resolution.
	if _, _, err := s.GetResultReader("../../etc/passwd"); err != ErrNotFound {
		t.Fatalf("bad-key reader err = %v, want ErrNotFound", err)
	}

	// The memory backend never has bytes to stream.
	m := NewMemory()
	if _, _, err := m.GetResultReader(key); err != ErrNotFound {
		t.Fatalf("memory reader err = %v, want ErrNotFound", err)
	}
}

// TestResultGzipSibling pins the compressed-variant contract: the gzip
// sibling lands atomically next to the canonical blob, reads back
// verbatim, and its absence is ErrNotFound (callers rebuild lazily).
func TestResultGzipSibling(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	defer s.Close()

	key := "00112233445566770011223344556677001122334455667700112233445566ff"
	if _, err := s.GetResultGzip(key); err != ErrNotFound {
		t.Fatalf("missing gzip err = %v, want ErrNotFound", err)
	}
	if err := s.PutResult(key, []byte(`{"states":[]}`)); err != nil {
		t.Fatal(err)
	}
	gz := []byte("\x1f\x8b-pretend-gzip-bytes")
	if err := s.PutResultGzip(key, gz); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetResultGzip(key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, gz) {
		t.Fatalf("gzip sibling = %q, want %q", got, gz)
	}
	// The sibling lives at <blob>.gz, and writes leave no temp droppings.
	path := filepath.Join(dir, "results", key[:2], key+".gz")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("gzip sibling not at %s: %v", path, err)
	}
	entries, err := os.ReadDir(filepath.Join(dir, "results", key[:2]))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("result dir holds %d entries, want blob + sibling", len(entries))
	}
	// Bad keys are rejected on both sides.
	if err := s.PutResultGzip("abcd/efgh", gz); err == nil {
		t.Fatal("PutResultGzip accepted a path-like key")
	}
	if _, err := s.GetResultGzip("abcd/efgh"); err != ErrNotFound {
		t.Fatalf("bad-key gzip err = %v, want ErrNotFound", err)
	}

	// Memory backend: best-effort no-op write, nothing to read back.
	m := NewMemory()
	if err := m.PutResultGzip(key, gz); err != nil {
		t.Fatal(err)
	}
	if _, err := m.GetResultGzip(key); err != ErrNotFound {
		t.Fatalf("memory gzip err = %v, want ErrNotFound", err)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	// ~100-byte records against a 256-byte bound: rotation every couple of
	// appends.
	s := mustOpen(t, dir, Options{SegmentBytes: 256})
	var want []string
	for i := 0; i < 20; i++ {
		id := fmt.Sprintf("j%06d", i+1)
		want = append(want, id)
		if err := s.Append(JobRecord{Op: OpSubmitted, ID: id, Key: "abcd", SubmittedAt: int64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.WALSegments < 2 {
		t.Fatalf("no rotation happened: %+v", st)
	}
	s.Close()

	s2 := mustOpen(t, dir, Options{SegmentBytes: 256})
	defer s2.Close()
	got := s2.Recovered()
	if len(got) != len(want) {
		t.Fatalf("recovered %d jobs across segments, want %d", len(got), len(want))
	}
	for i, rj := range got {
		if rj.ID != want[i] {
			t.Fatalf("recovered[%d] = %s, want %s (order lost)", i, rj.ID, want[i])
		}
	}
}

func TestCompactionDropsSupersededRecords(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{SegmentBytes: 512})
	const jobs = 12
	for i := 0; i < jobs; i++ {
		for _, rec := range lifecycle(fmt.Sprintf("j%06d", i+1), "abcd") {
			if err := s.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
	}
	before := s.Stats()
	if before.WALSegments < 2 {
		t.Fatalf("test wants multiple segments before compaction, got %+v", before)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	if after.WALSegments != 1 || after.Compactions != 1 {
		t.Fatalf("post-compaction stats %+v", after)
	}
	if after.WALBytes >= before.WALBytes {
		t.Fatalf("compaction grew the WAL: %d -> %d bytes", before.WALBytes, after.WALBytes)
	}

	// Appends continue on the compacted segment, and recovery sees the
	// same merged state: one record per job, nothing lost.
	if err := s.Append(JobRecord{Op: OpSubmitted, ID: "j000099", SubmittedAt: 1}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := mustOpen(t, dir, Options{SegmentBytes: 512})
	defer s2.Close()
	got := s2.Recovered()
	if len(got) != jobs+1 {
		t.Fatalf("recovered %d jobs after compaction, want %d", len(got), jobs+1)
	}
	for i := 0; i < jobs; i++ {
		rj := got[i]
		if rj.Status != OpDone || rj.SubmittedAt != 100 || rj.StartedAt != 200 || rj.FinishedAt != 300 {
			t.Fatalf("compaction lost state for %s: %+v", rj.ID, rj)
		}
	}
	if got[jobs].ID != "j000099" || !got[jobs].Interrupted {
		t.Fatalf("post-compaction append lost: %+v", got[jobs])
	}
}

// lastSegment returns the path of the highest-numbered WAL segment.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no WAL segments")
	}
	return filepath.Join(dir, "wal", entries[len(entries)-1].Name())
}

func TestTornTailTruncatedOnRecovery(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for _, rec := range lifecycle("j000001", "aaaa") {
		if err := s.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Simulate a torn write: a frame header promising more bytes than the
	// crash left behind.
	seg := lastSegment(t, dir)
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	goodSize := info.Size()
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xff, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := mustOpen(t, dir, Options{})
	got := s2.Recovered()
	if len(got) != 1 || got[0].Status != OpDone {
		t.Fatalf("recovered %+v after torn tail", got)
	}
	if st := s2.Stats(); st.TailTruncations != 1 {
		t.Fatalf("tail truncations = %d, want 1", st.TailTruncations)
	}
	info, err = os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != goodSize {
		t.Fatalf("segment size %d after recovery, want truncation back to %d", info.Size(), goodSize)
	}
	// The log keeps working after truncation.
	if err := s2.Append(JobRecord{Op: OpSubmitted, ID: "j000002", SubmittedAt: 1}); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3 := mustOpen(t, dir, Options{})
	defer s3.Close()
	if got := s3.Recovered(); len(got) != 2 {
		t.Fatalf("recovered %d jobs after post-truncation append, want 2", len(got))
	}
}

// TestCorruptionFuzz cuts and flips bytes at seeded-random offsets and
// asserts recovery never fails and always yields a prefix of the appended
// records — the CRC turns every damage pattern into a clean truncation.
func TestCorruptionFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		dir := t.TempDir()
		s := mustOpen(t, dir, Options{})
		const n = 8
		for i := 0; i < n; i++ {
			rec := JobRecord{Op: OpSubmitted, ID: fmt.Sprintf("j%06d", i+1), Key: "abcd", SubmittedAt: int64(i + 1)}
			if err := s.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
		s.Close()

		seg := lastSegment(t, dir)
		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		switch trial % 3 {
		case 0: // truncate at a random offset (torn final write)
			cut := rng.Intn(len(data) + 1)
			data = data[:cut]
		case 1: // flip one random byte (bit rot / partial overwrite)
			pos := rng.Intn(len(data))
			data[pos] ^= byte(1 + rng.Intn(255))
		case 2: // truncate and append garbage
			cut := rng.Intn(len(data) + 1)
			garbage := make([]byte, rng.Intn(32))
			rng.Read(garbage)
			data = append(data[:cut], garbage...)
		}
		if err := os.WriteFile(seg, data, 0o644); err != nil {
			t.Fatal(err)
		}

		s2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("trial %d: recovery failed: %v", trial, err)
		}
		got := s2.Recovered()
		if len(got) > n {
			t.Fatalf("trial %d: recovered %d jobs from %d appends", trial, len(got), n)
		}
		for i, rj := range got {
			if want := fmt.Sprintf("j%06d", i+1); rj.ID != want {
				t.Fatalf("trial %d: recovered[%d] = %s, want %s (not a prefix)", trial, i, rj.ID, want)
			}
		}
		// A recovered store must accept appends again.
		if err := s2.Append(JobRecord{Op: OpSubmitted, ID: "j000100", SubmittedAt: 1}); err != nil {
			t.Fatalf("trial %d: append after recovery: %v", trial, err)
		}
		s2.Close()
	}
}

func TestAppendValidation(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	defer s.Close()
	if err := s.Append(JobRecord{Op: OpDone}); err == nil {
		t.Fatal("record without an id accepted")
	}
	if err := s.Append(JobRecord{Op: "resubmitted", ID: "j000001"}); err == nil {
		t.Fatal("record with an unknown op accepted")
	}
}

// TestGroupCommitConcurrentAppends drives many goroutines through the
// group-commit append path and verifies every record is durable (all
// replay after reopen) while the fsync count stays below one-per-append —
// the coalescing the mode exists for.
func TestGroupCommitConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{GroupCommit: true, GroupCommitWait: 500 * time.Microsecond})
	const (
		writers = 8
		each    = 25
	)
	var wg sync.WaitGroup
	errs := make(chan error, writers*each)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				id := fmt.Sprintf("j%03d%03d", w, i)
				if err := s.Append(JobRecord{Op: OpSubmitted, ID: id, Key: "abcd", SubmittedAt: 1}); err != nil {
					errs <- fmt.Errorf("append %s: %w", id, err)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.RecordsAppended != writers*each {
		t.Fatalf("records appended = %d, want %d", st.RecordsAppended, writers*each)
	}
	if st.WALSyncs >= st.RecordsAppended {
		t.Fatalf("group commit never coalesced: %d fsyncs for %d appends", st.WALSyncs, st.RecordsAppended)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	if got := len(s2.Recovered()); got != writers*each {
		t.Fatalf("recovered %d jobs after group-commit appends, want %d", got, writers*each)
	}
}

// TestGroupCommitSerialAppendDurable pins the solo-appender contract: with
// no concurrency to coalesce, each group-commit Append still returns only
// after its own record is fsync'd, and rotation keeps working.
func TestGroupCommitSerialAppendDurable(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{GroupCommit: true, SegmentBytes: 256})
	for _, rec := range lifecycle("j000001", "aaaa") {
		if err := s.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if err := s.Append(JobRecord{Op: OpSubmitted, ID: fmt.Sprintf("j%06d", i+2), Spec: json.RawMessage(`{"n":400,"periods":25}`)}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.WALSegments < 2 {
		t.Fatalf("expected rotation under group commit, got %d segments", st.WALSegments)
	}
	if st.WALSyncs < 1 {
		t.Fatalf("no fsyncs recorded: %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	if got := len(s2.Recovered()); got != 11 {
		t.Fatalf("recovered %d jobs, want 11", got)
	}
	if j := s2.Recovered()[0]; j.Status != OpDone {
		t.Fatalf("j000001 recovered as %s, want done", j.Status)
	}
}
