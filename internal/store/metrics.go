package store

import "odeproto/internal/obs"

// RegisterMetrics exposes a store's counters in the obs registry as
// scrape-time-sampled families over Stats(). The store already maintains
// these numbers for /v1/stats; sampling the same snapshot at scrape time
// keeps one source of truth instead of double bookkeeping.
func RegisterMetrics(r *obs.Registry, s Store) {
	r.CounterFunc("odeproto_wal_records_total",
		"Job lifecycle records appended to the WAL.",
		func() int64 { return s.Stats().RecordsAppended })
	r.CounterFunc("odeproto_wal_syncs_total",
		"Append-path WAL fsyncs (with group commit one sync covers a batch).",
		func() int64 { return s.Stats().WALSyncs })
	r.GaugeFunc("odeproto_wal_segments",
		"WAL segments currently on disk.",
		func() float64 { return float64(s.Stats().WALSegments) })
	r.GaugeFunc("odeproto_wal_bytes",
		"Total bytes across WAL segments.",
		func() float64 { return float64(s.Stats().WALBytes) })
	r.CounterFunc("odeproto_wal_tail_truncations_total",
		"Torn or corrupt WAL tails truncated during replay.",
		func() int64 { return s.Stats().TailTruncations })
	r.CounterFunc("odeproto_wal_compactions_total",
		"WAL compactions (one snapshot record per job).",
		func() int64 { return s.Stats().Compactions })
	r.CounterFunc("odeproto_store_results_written_total",
		"Result blobs durably written to the content-addressed store.",
		func() int64 { return s.Stats().ResultsWritten })
	r.CounterFunc("odeproto_store_result_bytes_total",
		"Cumulative bytes of result blobs written.",
		func() int64 { return s.Stats().ResultBytes })
	r.GaugeFunc("odeproto_store_recovered_jobs",
		"Jobs rebuilt from the WAL at the last open.",
		func() float64 { return float64(s.Stats().RecoveredJobs) })
}
