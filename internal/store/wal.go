package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"syscall"
)

// Frame layout of one WAL record: a 4-byte little-endian payload length, a
// 4-byte CRC-32C (Castagnoli) of the payload, then the JSON payload.
const (
	frameHeader    = 8
	maxRecordBytes = 16 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// wal is a segmented append-only log: numbered files (00000001.wal, ...)
// under dir, appends going to the highest segment and rotating to a fresh
// one beyond segBytes.
type wal struct {
	dir      string
	segBytes int64

	segIndex int // index of the open segment
	f        *os.File
	size     int64

	segments    int   // segment files on disk
	totalBytes  int64 // live bytes across all segments
	truncations int64

	// writeGen numbers appends; syncs counts append-path fsyncs. With
	// group commit the two diverge: one fsync covers a whole batch of
	// generations. Both are guarded by the owning store's mutex.
	writeGen int64
	syncs    int64
}

func segName(index int) string { return fmt.Sprintf("%08d.wal", index) }

// openWAL replays every segment in index order and opens the newest for
// append. Torn or corrupted records truncate their segment at the last
// good byte; replay then continues with the next segment.
func openWAL(dir string, segBytes int64) (*wal, []JobRecord, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var indices []int
	for _, e := range entries {
		var idx int
		if n, err := fmt.Sscanf(e.Name(), "%d.wal", &idx); n == 1 && err == nil && e.Name() == segName(idx) {
			indices = append(indices, idx)
		}
	}
	sort.Ints(indices)

	w := &wal{dir: dir, segBytes: segBytes}
	var recs []JobRecord
	for _, idx := range indices {
		segRecs, segSize, err := w.replaySegment(filepath.Join(dir, segName(idx)))
		if err != nil {
			return nil, nil, err
		}
		recs = append(recs, segRecs...)
		w.totalBytes += segSize
	}
	w.segments = len(indices)
	if len(indices) == 0 {
		if err := w.rotate(1); err != nil {
			return nil, nil, err
		}
	} else {
		last := indices[len(indices)-1]
		f, err := os.OpenFile(filepath.Join(dir, segName(last)), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, err
		}
		info, err := f.Stat()
		if err != nil {
			_ = f.Close()
			return nil, nil, err
		}
		w.segIndex, w.f, w.size = last, f, info.Size()
	}
	return w, recs, nil
}

// replaySegment decodes a segment's records, truncating the file at the
// first torn or corrupted frame: an append-only log is only ever damaged
// at its tail by a crash (bit rot elsewhere hits the same CRC check), so
// everything before the bad frame is trustworthy and everything after it
// is not. It returns the records and the segment's post-truncation size.
func (w *wal) replaySegment(path string) ([]JobRecord, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	var recs []JobRecord
	off := 0
	for off < len(data) {
		good := false
		if len(data)-off >= frameHeader {
			n := int(binary.LittleEndian.Uint32(data[off:]))
			sum := binary.LittleEndian.Uint32(data[off+4:])
			if n > 0 && n <= maxRecordBytes && off+frameHeader+n <= len(data) {
				payload := data[off+frameHeader : off+frameHeader+n]
				if crc32.Checksum(payload, crcTable) == sum {
					var rec JobRecord
					if json.Unmarshal(payload, &rec) == nil {
						recs = append(recs, rec)
						off += frameHeader + n
						good = true
					}
				}
			}
		}
		if !good {
			w.truncations++
			if err := os.Truncate(path, int64(off)); err != nil {
				return nil, 0, fmt.Errorf("truncating torn tail of %s: %w", path, err)
			}
			break
		}
	}
	return recs, int64(off), nil
}

// frame encodes one record into its on-disk form.
func frame(rec JobRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	if len(payload) > maxRecordBytes {
		return nil, fmt.Errorf("wal record of %d bytes exceeds the %d-byte frame limit", len(payload), maxRecordBytes)
	}
	buf := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.Checksum(payload, crcTable))
	copy(buf[frameHeader:], payload)
	return buf, nil
}

// rotate closes the current segment (if any) and starts the given index.
func (w *wal) rotate(index int) error {
	if w.f != nil {
		if err := w.f.Sync(); err != nil {
			return err
		}
		if err := w.f.Close(); err != nil {
			return err
		}
		w.f = nil
	}
	f, err := os.OpenFile(filepath.Join(w.dir, segName(index)), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	w.segIndex, w.f, w.size = index, f, 0
	w.segments++
	return syncDir(w.dir)
}

// append frames, writes, and fsyncs one record, rotating first when the
// open segment would exceed the size bound.
func (w *wal) append(rec JobRecord) error {
	if _, err := w.appendNoSync(rec); err != nil {
		return err
	}
	return w.syncOpenSegment()
}

// appendNoSync frames and writes one record without forcing it to disk,
// rotating first when the open segment would exceed the size bound. It
// returns the record's write generation — the value syncOpenSegment must
// cover before the record counts as durable. Rotation is safe to elide
// from the sync contract: rotate fsyncs the old segment before closing
// it, so every generation living in a closed segment is already durable.
func (w *wal) appendNoSync(rec JobRecord) (int64, error) {
	if w.f == nil {
		// A failed compact/rotate left no open segment; fail the append
		// instead of panicking (the service journals best-effort).
		return 0, fmt.Errorf("wal: no open segment (a previous compaction or rotation failed)")
	}
	buf, err := frame(rec)
	if err != nil {
		return 0, err
	}
	if w.size > 0 && w.size+int64(len(buf)) > w.segBytes {
		if err := w.rotate(w.segIndex + 1); err != nil {
			return 0, err
		}
	}
	if _, err := w.f.Write(buf); err != nil {
		return 0, err
	}
	w.size += int64(len(buf))
	w.totalBytes += int64(len(buf))
	w.writeGen++
	return w.writeGen, nil
}

// syncOpenSegment fsyncs the open segment, making every written record
// durable. A nil open segment is not an error here: the only paths that
// clear w.f (close, a failed rotation) sync the file first, so everything
// appendNoSync wrote is already on disk.
func (w *wal) syncOpenSegment() error {
	if w.f == nil {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.syncs++
	return nil
}

// compact replaces every segment with a single fresh one holding recs (one
// snapshot record per live job). The snapshot is written to a temp file
// and renamed into place as the next segment index before the old segments
// are removed, so a crash at any point leaves a log that replays to the
// same state: either the old segments are still authoritative, or the
// snapshot segment replays last and overrides them record by record.
func (w *wal) compact(recs []JobRecord) error {
	newIndex := w.segIndex + 1
	tmp := filepath.Join(w.dir, "compact.tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	var size int64
	for _, rec := range recs {
		buf, err := frame(rec)
		if err != nil {
			_ = f.Close()
			os.Remove(tmp)
			return err
		}
		if _, err := f.Write(buf); err != nil {
			_ = f.Close()
			os.Remove(tmp)
			return err
		}
		size += int64(len(buf))
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}

	oldMax := w.segIndex
	if w.f != nil {
		if err := w.f.Sync(); err != nil {
			return err
		}
		if err := w.f.Close(); err != nil {
			return err
		}
		w.f = nil
	}
	if err := os.Rename(tmp, filepath.Join(w.dir, segName(newIndex))); err != nil {
		return err
	}
	if err := syncDir(w.dir); err != nil {
		return err
	}
	for idx := 1; idx <= oldMax; idx++ {
		if err := os.Remove(filepath.Join(w.dir, segName(idx))); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	nf, err := os.OpenFile(filepath.Join(w.dir, segName(newIndex)), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	w.segIndex, w.f, w.size = newIndex, nf, size
	w.segments = 1
	w.totalBytes = size
	return nil
}

func (w *wal) close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// syncDir fsyncs a directory so a just-created or renamed entry survives a
// crash. Filesystems that cannot sync directories report EINVAL (and
// Windows rejects the open for sync entirely); neither voids the write.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, os.ErrPermission) {
		return err
	}
	return nil
}
