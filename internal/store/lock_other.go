//go:build !unix

package store

import (
	"os"
	"path/filepath"
)

// lockDir opens the LOCK file without an OS advisory lock: flock has no
// portable equivalent off unix, so non-unix builds rely on the operator
// not to point two daemons at one data dir.
func lockDir(dir string) (*os.File, error) {
	return os.OpenFile(filepath.Join(dir, "LOCK"), os.O_RDWR|os.O_CREATE, 0o644)
}
