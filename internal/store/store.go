// Package store provides durable persistence for the odeprotod service: a
// Store journals job lifecycle transitions and holds completed results as
// content-addressed blobs, with two backends — a no-op in-memory store
// (the daemon's historical behavior: nothing survives a restart) and a
// crash-safe file store that journals transitions to a segmented,
// CRC-checksummed append-only WAL and writes results as fsync'd blobs
// under results/<prefix>/<key>.
//
// The file store's recovery contract: Open replays every WAL segment in
// order, merging each job's records into its latest state. A torn or
// corrupted record truncates its segment at the last good byte instead of
// failing startup — the tail of an append-only log is the only place a
// crash can leave bytes in doubt, and a checksummed frame makes the cut
// point unambiguous. Jobs whose log ends before a terminal record were
// mid-run at crash time and are surfaced with Interrupted set so the
// service can mark them failed-restartable.
//
// Results are immutable blobs keyed by the SHA-256 cache key of the spec
// that produced them, so durability needs no coordination: a blob is
// written (fsync + atomic rename) before the WAL records its job as done,
// and rewriting the same key writes the same bytes.
package store

import (
	"encoding/json"
	"errors"
	"io"
	"sync"
)

// Op enumerates the job lifecycle transitions journaled to the WAL.
type Op string

const (
	OpSubmitted Op = "submitted"
	OpRunning   Op = "running"
	OpDone      Op = "done"
	OpFailed    Op = "failed"
	OpAborted   Op = "aborted"
)

// opRank orders lifecycle ops so that replay merges out-of-order records
// safely: a terminal record is never overwritten by a late-arriving
// submitted/running record (appends from concurrent goroutines may
// interleave in the WAL in either order).
func opRank(op Op) int {
	switch op {
	case OpSubmitted:
		return 0
	case OpRunning:
		return 1
	case OpDone, OpFailed, OpAborted:
		return rankTerminal
	default:
		return -1
	}
}

const rankTerminal = 2

// JobRecord is one WAL entry: a patch to one job's state. Each op stamps
// the fields it owns (submitted carries the spec and key, terminal ops the
// error/cached flags); compaction snapshots carry everything at once.
type JobRecord struct {
	Op     Op              `json:"op"`
	ID     string          `json:"id"`
	Key    string          `json:"key,omitempty"`
	Spec   json.RawMessage `json:"spec,omitempty"`
	Error  string          `json:"error,omitempty"`
	Cached bool            `json:"cached,omitempty"`
	// Timestamps are Unix nanoseconds; zero means "not this transition".
	SubmittedAt int64 `json:"submitted_at,omitempty"`
	StartedAt   int64 `json:"started_at,omitempty"`
	FinishedAt  int64 `json:"finished_at,omitempty"`
	// Trace is the job's trace ID (internal/obs), journaled so a
	// recovered job keeps its cross-node correlation handle.
	Trace string `json:"trace,omitempty"`
}

// RecoveredJob is one job's state as rebuilt from the WAL at Open time.
type RecoveredJob struct {
	ID     string
	Key    string
	Spec   json.RawMessage
	Status Op // the rank-highest op replayed for this job
	Error  string
	Cached bool

	SubmittedAt int64
	StartedAt   int64
	FinishedAt  int64

	// Trace is the job's trace ID, from whichever record stamped one.
	Trace string

	// Interrupted marks a job whose WAL ends before a terminal record: it
	// was queued or mid-run when the previous process died.
	Interrupted bool
}

// Stats is the store section of the service's /v1/stats.
type Stats struct {
	Backend         string `json:"backend"`
	RecordsAppended int64  `json:"records_appended"`
	WALSegments     int    `json:"wal_segments"`
	WALBytes        int64  `json:"wal_bytes"`
	// WALSyncs counts append-path fsyncs. Without group commit it tracks
	// RecordsAppended one-for-one; with it, one sync covers a batch, and
	// the gap between the two counters is the coalescing win.
	WALSyncs        int64 `json:"wal_syncs"`
	ResultsWritten  int64 `json:"results_written"`
	ResultBytes     int64 `json:"result_bytes"`
	RecoveredJobs   int   `json:"recovered_jobs"`
	TailTruncations int64 `json:"tail_truncations"`
	Compactions     int64 `json:"compactions"`
}

// ErrNotFound reports a result key with no stored blob.
var ErrNotFound = errors.New("store: result not found")

var errClosed = errors.New("store: closed")

// Store persists job lifecycle records and completed results.
//
// Append journals one lifecycle transition. PutResult durably stores a
// completed result under its content address — implementations must not
// return until the blob survives a crash (the service only marks a job
// done afterwards). GetResult returns the stored blob or ErrNotFound;
// GetResultReader returns the same bytes as a stream plus their size, so
// large blobs can be served without buffering them in memory (callers own
// the Close). PutResultGzip/GetResultGzip store and load the gzip variant
// of a result as a sibling blob — a pure cache of the canonical bytes, so
// writes may be best-effort and a missing sibling is simply recompressed.
// Recovered returns the jobs rebuilt from the log at open time, in
// first-submitted order. Compact rewrites the log to one record per job,
// dropping superseded transitions.
type Store interface {
	Append(rec JobRecord) error
	PutResult(key string, data []byte) error
	GetResult(key string) ([]byte, error)
	GetResultReader(key string) (io.ReadCloser, int64, error)
	PutResultGzip(key string, data []byte) error
	GetResultGzip(key string) ([]byte, error)
	Recovered() []RecoveredJob
	Compact() error
	Stats() Stats
	Close() error
}

// memory is the no-op backend preserving the service's historical
// in-memory behavior: lifecycle records are counted and dropped, results
// live only in the service's LRU, and a restart forgets everything.
type memory struct {
	mu      sync.Mutex
	records int64
}

// NewMemory returns the in-memory (non-durable) backend.
func NewMemory() Store { return &memory{} }

func (m *memory) Append(rec JobRecord) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.records++
	return nil
}

func (m *memory) PutResult(key string, data []byte) error { return nil }

func (m *memory) GetResult(key string) ([]byte, error) { return nil, ErrNotFound }

func (m *memory) GetResultReader(key string) (io.ReadCloser, int64, error) {
	return nil, 0, ErrNotFound
}

func (m *memory) PutResultGzip(key string, data []byte) error { return nil }

func (m *memory) GetResultGzip(key string) ([]byte, error) { return nil, ErrNotFound }

func (m *memory) Recovered() []RecoveredJob { return nil }

func (m *memory) Compact() error { return nil }

func (m *memory) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{Backend: "memory", RecordsAppended: m.records}
}

func (m *memory) Close() error { return nil }
