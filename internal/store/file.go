package store

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// Options configures the file backend.
type Options struct {
	// SegmentBytes rotates the WAL to a new segment beyond this size
	// (default 4 MiB).
	SegmentBytes int64
	// GroupCommit coalesces concurrent Append callers into one fsync:
	// each caller writes its record under the store lock, then waits for
	// a sync round that covers it — one caller leads the round, everyone
	// whose write preceded the round's fsync returns together. Appends/s
	// under concurrency then scale with the batch size instead of paying
	// one disk flush each; a lone appender pays GroupCommitWait of extra
	// latency, which is why the mode is opt-in.
	GroupCommit bool
	// GroupCommitWait is how long a group-commit leader lingers before
	// fsyncing so concurrent appenders can join its batch. Default 50µs;
	// negative disables the linger entirely (the fsync duration itself is
	// then the only batching window). Only meaningful with GroupCommit.
	GroupCommitWait time.Duration
}

const (
	defaultSegmentBytes    = 4 << 20
	defaultGroupCommitWait = 50 * time.Microsecond
)

// FileStore is the durable backend: a segmented WAL under <dir>/wal plus
// content-addressed result blobs under <dir>/results/<prefix>/<key>.
type FileStore struct {
	mu   sync.Mutex
	dir  string
	wal  *wal
	lock *os.File // flock'd LOCK file guarding the dir against a second process

	// gc is the group-commit coordinator (Options.GroupCommit). Its state
	// is guarded by gc.mu, never s.mu: waiters must block without holding
	// the store lock, or the batch they are waiting for could never form.
	gc struct {
		enabled   bool
		wait      time.Duration
		mu        sync.Mutex
		cond      *sync.Cond
		syncing   bool  // a leader is mid-round
		syncedGen int64 // generations covered by a completed fsync
		err       error // sticky: a failed fsync poisons the journal
	}

	jobs  map[string]*RecoveredJob // merged state, kept current across appends
	order []string                 // first-seen order, preserved across compaction

	recovered []RecoveredJob // state snapshot taken at Open

	records        int64
	resultsWritten int64
	resultBytes    int64
	compactions    int64
	closed         bool
}

// Open replays the WAL under dir (creating the layout on first use) and
// returns a store ready for appends. Torn or corrupted WAL tails are
// truncated, never fatal; the jobs they strand mid-run are reported by
// Recovered with Interrupted set. The dir is flock'd for the store's
// lifetime: a second process opening the same dir would replay (and
// truncate) records the first is still appending, so it fails fast
// instead. The kernel releases the lock when the holder dies, which is
// what lets a restarted daemon recover from a crash without cleanup.
func Open(dir string, opts Options) (*FileStore, error) {
	segBytes := opts.SegmentBytes
	if segBytes <= 0 {
		segBytes = defaultSegmentBytes
	}
	if err := os.MkdirAll(filepath.Join(dir, "results"), 0o755); err != nil {
		return nil, err
	}
	lock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	w, recs, err := openWAL(filepath.Join(dir, "wal"), segBytes)
	if err != nil {
		_ = lock.Close()
		return nil, err
	}
	s := &FileStore{dir: dir, wal: w, lock: lock, jobs: make(map[string]*RecoveredJob)}
	if opts.GroupCommit {
		s.gc.enabled = true
		switch {
		case opts.GroupCommitWait > 0:
			s.gc.wait = opts.GroupCommitWait
		case opts.GroupCommitWait < 0:
			s.gc.wait = 0 // explicit no-linger: the fsync itself is the batching window
		default:
			s.gc.wait = defaultGroupCommitWait
		}
		s.gc.cond = sync.NewCond(&s.gc.mu)
	}
	for _, rec := range recs {
		s.apply(rec)
	}
	s.recovered = make([]RecoveredJob, 0, len(s.order))
	for _, id := range s.order {
		rj := *s.jobs[id]
		rj.Interrupted = opRank(rj.Status) < rankTerminal
		s.recovered = append(s.recovered, rj)
	}
	return s, nil
}

// apply merges one record into the live per-job state; callers hold s.mu
// (or run single-threaded during Open).
func (s *FileStore) apply(rec JobRecord) {
	j := s.jobs[rec.ID]
	if j == nil {
		j = &RecoveredJob{ID: rec.ID}
		s.jobs[rec.ID] = j
		s.order = append(s.order, rec.ID)
	}
	if opRank(rec.Op) >= opRank(j.Status) {
		j.Status = rec.Op
	}
	if rec.Key != "" {
		j.Key = rec.Key
	}
	if len(rec.Spec) > 0 {
		j.Spec = rec.Spec
	}
	if rec.Error != "" {
		j.Error = rec.Error
	}
	if rec.Cached {
		j.Cached = true
	}
	if rec.SubmittedAt != 0 {
		j.SubmittedAt = rec.SubmittedAt
	}
	if rec.StartedAt != 0 {
		j.StartedAt = rec.StartedAt
	}
	if rec.FinishedAt != 0 {
		j.FinishedAt = rec.FinishedAt
	}
	if rec.Trace != "" {
		j.Trace = rec.Trace
	}
}

// Append journals one lifecycle transition: framed, CRC'd, written, and
// durable — fsync'd, or covered by a group-commit round (Options.
// GroupCommit) — before returning.
func (s *FileStore) Append(rec JobRecord) error {
	if rec.ID == "" {
		return fmt.Errorf("store: record without a job id")
	}
	if opRank(rec.Op) < 0 {
		return fmt.Errorf("store: unknown op %q", rec.Op)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errClosed
	}
	if !s.gc.enabled {
		defer s.mu.Unlock()
		if err := s.wal.append(rec); err != nil {
			return err
		}
		s.apply(rec)
		s.records++
		return nil
	}
	gen, err := s.wal.appendNoSync(rec)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	s.apply(rec)
	s.records++
	s.mu.Unlock()
	return s.groupSync(gen)
}

// groupSync blocks until a completed fsync covers write generation gen.
// The first caller to find no round in flight leads one: it lingers for
// the configured wait so concurrent appenders can write records that the
// single fsync will then cover, flushes the open segment, and wakes every
// waiter. A failed fsync leaves the covered generations unknowable (the
// kernel may have dropped any subset of the dirty pages), so the error is
// sticky: every current waiter and all future appends fail rather than
// pretend the journal is still trustworthy.
func (s *FileStore) groupSync(gen int64) error {
	g := &s.gc
	g.mu.Lock()
	for {
		if g.err != nil {
			err := g.err
			g.mu.Unlock()
			return err
		}
		if g.syncedGen >= gen {
			g.mu.Unlock()
			return nil
		}
		if !g.syncing {
			break
		}
		g.cond.Wait()
	}
	g.syncing = true
	g.mu.Unlock()

	if g.wait > 0 {
		time.Sleep(g.wait)
	}

	// The fsync itself runs under the store lock so it cannot race a
	// rotation or Close swapping the open segment out from under it; both
	// of those sync before closing, so a segment this round misses is
	// durable anyway (syncOpenSegment's no-open-segment case).
	s.mu.Lock()
	target := s.wal.writeGen
	err := s.wal.syncOpenSegment()
	s.mu.Unlock()

	g.mu.Lock()
	g.syncing = false
	if err != nil {
		g.err = fmt.Errorf("store: group-commit fsync: %w", err)
		err = g.err
	} else {
		g.syncedGen = target // target >= gen: our write preceded the round
	}
	g.cond.Broadcast()
	g.mu.Unlock()
	return err
}

// resultPath maps a cache key to its blob path, refusing anything that is
// not a plain lowercase-hex key: the keys are SHA-256 hashes, and anything
// else (separators, dots) could escape the data dir.
func resultPath(dir, key string) (string, error) {
	if len(key) < 4 || len(key) > 128 {
		return "", fmt.Errorf("store: bad result key %q", key)
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return "", fmt.Errorf("store: bad result key %q", key)
		}
	}
	return filepath.Join(dir, "results", key[:2], key), nil
}

var tmpSeq atomic.Int64

// PutResult durably stores a completed result blob under its content
// address: written to a temp file, fsync'd, and renamed into place, so a
// crash leaves either the whole blob or nothing, never a torn read for a
// key the WAL says is done.
func (s *FileStore) PutResult(key string, data []byte) error {
	path, err := resultPath(s.dir, key)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp := fmt.Sprintf("%s.tmp%d", path, tmpSeq.Add(1))
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		return err
	}
	s.mu.Lock()
	s.resultsWritten++
	s.resultBytes += int64(len(data))
	s.mu.Unlock()
	return nil
}

// GetResult returns the stored blob for key, or ErrNotFound.
func (s *FileStore) GetResult(key string) ([]byte, error) {
	path, err := resultPath(s.dir, key)
	if err != nil {
		return nil, ErrNotFound
	}
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, err
	}
	return data, nil
}

// GetResultReader opens the stored blob for key as a stream, returning its
// size so HTTP callers can set Content-Length without buffering the body.
// The caller owns the Close.
func (s *FileStore) GetResultReader(key string) (io.ReadCloser, int64, error) {
	path, err := resultPath(s.dir, key)
	if err != nil {
		return nil, 0, ErrNotFound
	}
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, 0, ErrNotFound
	}
	if err != nil {
		return nil, 0, err
	}
	fi, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return nil, 0, err
	}
	return f, fi.Size(), nil
}

// PutResultGzip stores the gzip variant of a result as a sibling blob at
// <blob>.gz, with the same tmp+fsync+rename discipline as PutResult: the
// sibling is only a cache, but a torn gzip stream served to a client is
// still a corrupt response, so it gets the same atomicity.
func (s *FileStore) PutResultGzip(key string, data []byte) error {
	path, err := resultPath(s.dir, key)
	if err != nil {
		return err
	}
	path += ".gz"
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp := fmt.Sprintf("%s.tmp%d", path, tmpSeq.Add(1))
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// GetResultGzip returns the stored gzip sibling for key, or ErrNotFound
// when it was never persisted (callers then recompress from canonical
// bytes).
func (s *FileStore) GetResultGzip(key string) ([]byte, error) {
	path, err := resultPath(s.dir, key)
	if err != nil {
		return nil, ErrNotFound
	}
	data, err := os.ReadFile(path + ".gz")
	if errors.Is(err, fs.ErrNotExist) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, err
	}
	return data, nil
}

// Recovered returns the jobs rebuilt from the WAL at Open time, in
// first-submitted order.
func (s *FileStore) Recovered() []RecoveredJob {
	return append([]RecoveredJob(nil), s.recovered...)
}

// Compact rewrites the WAL to one snapshot record per job, dropping every
// superseded transition, and replaces all segments with a single one.
func (s *FileStore) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed
	}
	recs := make([]JobRecord, 0, len(s.order))
	for _, id := range s.order {
		j := s.jobs[id]
		recs = append(recs, JobRecord{
			Op:          j.Status,
			ID:          j.ID,
			Key:         j.Key,
			Spec:        j.Spec,
			Error:       j.Error,
			Cached:      j.Cached,
			SubmittedAt: j.SubmittedAt,
			StartedAt:   j.StartedAt,
			FinishedAt:  j.FinishedAt,
			Trace:       j.Trace,
		})
	}
	if err := s.wal.compact(recs); err != nil {
		return err
	}
	s.compactions++
	return nil
}

func (s *FileStore) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Backend:         "file",
		RecordsAppended: s.records,
		WALSegments:     s.wal.segments,
		WALBytes:        s.wal.totalBytes,
		WALSyncs:        s.wal.syncs,
		ResultsWritten:  s.resultsWritten,
		ResultBytes:     s.resultBytes,
		RecoveredJobs:   len(s.recovered),
		TailTruncations: s.wal.truncations,
		Compactions:     s.compactions,
	}
}

// Close fsyncs and closes the open WAL segment and releases the dir lock.
// Appends after Close fail.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.wal.close()
	if s.lock != nil {
		// Closing the fd drops the flock; surface its error unless the WAL
		// close already claimed the return.
		if cerr := s.lock.Close(); err == nil {
			err = cerr
		}
		s.lock = nil
	}
	return err
}
