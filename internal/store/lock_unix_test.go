//go:build unix

package store

import "testing"

func TestDataDirLockedAgainstSecondOpen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("second Open on a live data dir succeeded; it would truncate records the first is appending")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	s2.Close()
}
