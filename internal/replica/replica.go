// Package replica implements the static and reactive replica-location
// baselines that §4.1 of the paper argues against, and a directed-attack
// adversary model, so the endemic protocol's claimed advantages
// (availability under churn, untraceability under attack) can be measured
// rather than asserted.
//
// Strategies:
//
//   - Static: K replicas placed once on fixed hosts; no repair. This is
//     the paper's "static and reactive strategies locate replicas
//     statically" straw man in its purest form.
//   - Reactive: like Static, but a crashed replica host is detected after
//     a delay and the replica is re-created on a fresh alive host from a
//     surviving copy.
//   - The endemic strategy itself lives in internal/endemic; the attack
//     harness here drives it through the same adversary.
//
// The adversary of §4.1 disadvantage (2): it snapshots the current replica
// holder set every Staleness periods, spends MountDelay periods mounting
// the attack, then crashes every host in the (now stale) snapshot.
package replica

import (
	"fmt"
	"math/rand"

	"odeproto/internal/endemic"
	"odeproto/internal/mt19937"
	"odeproto/internal/ode"
	"odeproto/internal/sim"
)

// Outcome reports one object's fate under a strategy.
type Outcome struct {
	// Died reports whether every replica was lost at some point.
	Died bool
	// DeathPeriod is the period at which the loss happened (valid when
	// Died).
	DeathPeriod int
	// Repairs counts replica re-creations (reactive only).
	Repairs int
}

// ChurnConfig describes the background host fault model shared by the
// baselines: independent per-period crash and (empty-state) rejoin.
type ChurnConfig struct {
	N          int
	CrashProb  float64 // per alive host per period
	RejoinProb float64 // per crashed host per period
	Periods    int
	Seed       int64
}

func (c ChurnConfig) validate() error {
	if c.N < 2 {
		return fmt.Errorf("replica: N = %d too small", c.N)
	}
	if c.CrashProb < 0 || c.CrashProb > 1 || c.RejoinProb < 0 || c.RejoinProb > 1 {
		return fmt.Errorf("replica: probabilities outside [0,1]")
	}
	if c.Periods <= 0 {
		return fmt.Errorf("replica: periods must be positive")
	}
	return nil
}

// SimulateStatic runs the static strategy: K replicas on hosts 0..K−1,
// never moved, never repaired. The object dies when the last host holding
// a copy crashes.
func SimulateStatic(cfg ChurnConfig, k int) (Outcome, error) {
	if err := cfg.validate(); err != nil {
		return Outcome{}, err
	}
	if k < 1 || k > cfg.N {
		return Outcome{}, fmt.Errorf("replica: k = %d outside [1, N]", k)
	}
	rng := rand.New(mt19937.New(cfg.Seed))
	up := make([]bool, cfg.N)
	hasCopy := make([]bool, cfg.N)
	for i := range up {
		up[i] = true
	}
	for i := 0; i < k; i++ {
		hasCopy[i] = true
	}
	for t := 0; t < cfg.Periods; t++ {
		for h := range up {
			if up[h] {
				if rng.Float64() < cfg.CrashProb {
					up[h] = false
					hasCopy[h] = false // crash loses the stored copy
				}
			} else if rng.Float64() < cfg.RejoinProb {
				up[h] = true // rejoins empty
			}
		}
		alive := 0
		for h := range hasCopy {
			if hasCopy[h] && up[h] {
				alive++
			}
		}
		if alive == 0 {
			return Outcome{Died: true, DeathPeriod: t}, nil
		}
	}
	return Outcome{}, nil
}

// SimulateReactive runs the reactive strategy: crashes of replica hosts
// are detected after detectionDelay periods, and each lost replica is then
// re-created on a uniformly random alive host, provided at least one copy
// survived.
func SimulateReactive(cfg ChurnConfig, k, detectionDelay int) (Outcome, error) {
	if err := cfg.validate(); err != nil {
		return Outcome{}, err
	}
	if k < 1 || k > cfg.N {
		return Outcome{}, fmt.Errorf("replica: k = %d outside [1, N]", k)
	}
	if detectionDelay < 0 {
		return Outcome{}, fmt.Errorf("replica: negative detection delay")
	}
	rng := rand.New(mt19937.New(cfg.Seed))
	up := make([]bool, cfg.N)
	hasCopy := make([]bool, cfg.N)
	for i := range up {
		up[i] = true
	}
	for i := 0; i < k; i++ {
		hasCopy[i] = true
	}
	type repair struct{ due int }
	var pendingRepairs []repair
	out := Outcome{}
	for t := 0; t < cfg.Periods; t++ {
		for h := range up {
			if up[h] {
				if rng.Float64() < cfg.CrashProb {
					up[h] = false
					if hasCopy[h] {
						hasCopy[h] = false
						pendingRepairs = append(pendingRepairs, repair{due: t + detectionDelay})
					}
				}
			} else if rng.Float64() < cfg.RejoinProb {
				up[h] = true
			}
		}
		survivors := 0
		for h := range hasCopy {
			if hasCopy[h] && up[h] {
				survivors++
			}
		}
		if survivors == 0 {
			out.Died = true
			out.DeathPeriod = t
			return out, nil
		}
		// Execute due repairs.
		rest := pendingRepairs[:0]
		for _, r := range pendingRepairs {
			if r.due > t {
				rest = append(rest, r)
				continue
			}
			// Copy from a survivor to a fresh alive host.
			var candidates []int
			for h := range up {
				if up[h] && !hasCopy[h] {
					candidates = append(candidates, h)
				}
			}
			if len(candidates) > 0 {
				hasCopy[candidates[rng.Intn(len(candidates))]] = true
				out.Repairs++
			}
		}
		pendingRepairs = rest
	}
	return out, nil
}

// SimulateHandoff runs the naive migratory scheme of §4.1.1 ("A Simple
// Solution, and its Drawback"): each of k replica holders hands its copy
// to a random alive host after holdPeriods periods and deletes it
// immediately. A crash of the holder before the hand-off destroys that
// copy, so the replica count only ever decreases — over time it reaches
// zero. Returns the period at which the last copy vanished (Died is
// always true given enough periods).
func SimulateHandoff(cfg ChurnConfig, k, holdPeriods int) (Outcome, error) {
	if err := cfg.validate(); err != nil {
		return Outcome{}, err
	}
	if k < 1 || k > cfg.N {
		return Outcome{}, fmt.Errorf("replica: k = %d outside [1, N]", k)
	}
	if holdPeriods < 1 {
		return Outcome{}, fmt.Errorf("replica: holdPeriods must be positive")
	}
	rng := rand.New(mt19937.New(cfg.Seed))
	up := make([]bool, cfg.N)
	for i := range up {
		up[i] = true
	}
	type copyState struct {
		host    int
		holdFor int
	}
	copies := make([]copyState, 0, k)
	for i := 0; i < k; i++ {
		copies = append(copies, copyState{host: i, holdFor: holdPeriods})
	}
	for t := 0; t < cfg.Periods; t++ {
		for h := range up {
			if up[h] {
				if rng.Float64() < cfg.CrashProb {
					up[h] = false
				}
			} else if rng.Float64() < cfg.RejoinProb {
				up[h] = true
			}
		}
		// Crashes destroy held copies.
		kept := copies[:0]
		for _, c := range copies {
			if up[c.host] {
				kept = append(kept, c)
			}
		}
		copies = kept
		if len(copies) == 0 {
			return Outcome{Died: true, DeathPeriod: t}, nil
		}
		// Hand-offs: transfer to a random alive host and delete locally.
		for i := range copies {
			copies[i].holdFor--
			if copies[i].holdFor > 0 {
				continue
			}
			// A hand-off to a crashed host fails and the holder retries
			// next period; the fatal case is the holder itself crashing,
			// handled above.
			target := rng.Intn(cfg.N)
			if up[target] {
				copies[i].host = target
			}
			copies[i].holdFor = holdPeriods
		}
	}
	return Outcome{}, nil
}

// AttackConfig describes the directed-attack adversary.
type AttackConfig struct {
	// Staleness is how many periods pass between the adversary's replica-
	// location snapshots.
	Staleness int
	// MountDelay is how many periods after a snapshot the strike lands.
	// The strike crashes every host in the snapshot.
	MountDelay int
	// Strikes is the number of attacks attempted.
	Strikes int
}

func (a AttackConfig) validate() error {
	if a.Staleness < 1 || a.MountDelay < 0 || a.Strikes < 1 {
		return fmt.Errorf("replica: invalid attack config %+v", a)
	}
	return nil
}

// AttackStatic reports whether a static placement survives the adversary:
// it cannot — the snapshot never goes stale, so the first strike destroys
// all copies. Kept as an executable statement of §4.1 disadvantage (2).
func AttackStatic(k int, atk AttackConfig) (Outcome, error) {
	if err := atk.validate(); err != nil {
		return Outcome{}, err
	}
	if k < 1 {
		return Outcome{}, fmt.Errorf("replica: k = %d", k)
	}
	return Outcome{Died: true, DeathPeriod: atk.Staleness + atk.MountDelay}, nil
}

// AttackEndemic runs the adversary against the endemic protocol: every
// Staleness periods the adversary snapshots the stasher set; MountDelay
// periods later it crashes those hosts. The object survives a strike iff
// replicas migrated to at least one host outside the stale snapshot.
func AttackEndemic(n int, p endemic.Params, atk AttackConfig, seed int64) (Outcome, error) {
	if err := atk.validate(); err != nil {
		return Outcome{}, err
	}
	proto, err := endemic.NewFigure1Protocol(p)
	if err != nil {
		return Outcome{}, err
	}
	eq := endemic.StableEquilibrium(p.Beta(), p.Gamma, p.Alpha)
	initY := int(eq.Stash*float64(n)) + 1
	initX := int(eq.Receptive*float64(n)) + 1
	e, err := sim.New(sim.Config{
		N:        n,
		Protocol: proto,
		Initial: map[ode.Var]int{
			endemic.Receptive: initX,
			endemic.Stash:     initY,
			endemic.Averse:    n - initX - initY,
		},
		Seed: seed,
	})
	if err != nil {
		return Outcome{}, err
	}
	// Warm up to steady state.
	e.Run(200)
	var snapshot []int
	period := 0
	for strike := 0; strike < atk.Strikes; strike++ {
		// Snapshot.
		snapshot = append(snapshot[:0], e.ProcessesIn(endemic.Stash)...)
		// Mount delay: replicas keep migrating.
		for d := 0; d < atk.MountDelay; d++ {
			e.Step()
			period++
		}
		// Strike: crash every snapshotted host.
		for _, h := range snapshot {
			e.Kill(h)
		}
		if e.Count(endemic.Stash) == 0 {
			return Outcome{Died: true, DeathPeriod: period}, nil
		}
		// Remaining inter-snapshot time.
		for d := atk.MountDelay; d < atk.Staleness; d++ {
			e.Step()
			period++
			if e.Count(endemic.Stash) == 0 {
				return Outcome{Died: true, DeathPeriod: period}, nil
			}
		}
	}
	return Outcome{}, nil
}

// SurvivalProbability estimates, over `trials` independent runs, the
// probability that the endemic object survives the attack campaign.
func SurvivalProbability(n int, p endemic.Params, atk AttackConfig, trials int, seed int64) (float64, error) {
	if trials < 1 {
		return 0, fmt.Errorf("replica: trials must be positive")
	}
	survived := 0
	for i := 0; i < trials; i++ {
		out, err := AttackEndemic(n, p, atk, seed+int64(i)*6151)
		if err != nil {
			return 0, err
		}
		if !out.Died {
			survived++
		}
	}
	return float64(survived) / float64(trials), nil
}
