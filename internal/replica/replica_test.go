package replica

import (
	"testing"

	"odeproto/internal/endemic"
)

func TestValidation(t *testing.T) {
	good := ChurnConfig{N: 100, CrashProb: 0.01, RejoinProb: 0.05, Periods: 10, Seed: 1}
	if _, err := SimulateStatic(good, 3); err != nil {
		t.Fatal(err)
	}
	bad := []ChurnConfig{
		{N: 1, CrashProb: 0.01, RejoinProb: 0.05, Periods: 10},
		{N: 100, CrashProb: -1, RejoinProb: 0.05, Periods: 10},
		{N: 100, CrashProb: 0.01, RejoinProb: 0.05, Periods: 0},
	}
	for i, cfg := range bad {
		if _, err := SimulateStatic(cfg, 3); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	if _, err := SimulateStatic(good, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := SimulateReactive(good, 3, -1); err == nil {
		t.Error("negative delay accepted")
	}
}

// TestStaticDiesUnderChurn: with aggressive churn and no repair, the
// object is certain to die — §4.1 disadvantage (1).
func TestStaticDiesUnderChurn(t *testing.T) {
	cfg := ChurnConfig{N: 200, CrashProb: 0.02, RejoinProb: 0.1, Periods: 5000, Seed: 2}
	out, err := SimulateStatic(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Died {
		t.Fatal("static placement survived 5000 periods of 2% churn; implausible")
	}
}

// TestReactiveOutlivesStatic: prompt repair extends the object lifetime.
func TestReactiveOutlivesStatic(t *testing.T) {
	staticDeaths, reactiveDeaths := 0, 0
	const trials = 20
	for i := 0; i < trials; i++ {
		cfg := ChurnConfig{N: 200, CrashProb: 0.02, RejoinProb: 0.1, Periods: 2000, Seed: int64(100 + i)}
		s, err := SimulateStatic(cfg, 5)
		if err != nil {
			t.Fatal(err)
		}
		r, err := SimulateReactive(cfg, 5, 1)
		if err != nil {
			t.Fatal(err)
		}
		if s.Died {
			staticDeaths++
		}
		if r.Died {
			reactiveDeaths++
		}
		if !r.Died && r.Repairs == 0 {
			t.Fatal("reactive survived without any repairs under 2% churn; repairs not happening")
		}
	}
	if reactiveDeaths >= staticDeaths {
		t.Fatalf("reactive deaths %d >= static deaths %d", reactiveDeaths, staticDeaths)
	}
}

// TestReactiveSlowDetectionDies: when detection is slower than churn, the
// reactive strategy degrades toward static.
func TestReactiveSlowDetectionDies(t *testing.T) {
	died := 0
	const trials = 10
	for i := 0; i < trials; i++ {
		cfg := ChurnConfig{N: 200, CrashProb: 0.05, RejoinProb: 0.1, Periods: 3000, Seed: int64(300 + i)}
		out, err := SimulateReactive(cfg, 3, 50)
		if err != nil {
			t.Fatal(err)
		}
		if out.Died {
			died++
		}
	}
	if died < trials/2 {
		t.Fatalf("only %d/%d slow-detection runs died; expected most", died, trials)
	}
}

func TestAttackStaticAlwaysDies(t *testing.T) {
	out, err := AttackStatic(10, AttackConfig{Staleness: 50, MountDelay: 10, Strikes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Died {
		t.Fatal("static placement must die on the first directed strike")
	}
}

// TestAttackEndemicSurvivesWithStaleInfo: with a mount delay long enough
// for replicas to migrate (several 1/γ stints), the endemic object
// survives repeated strikes.
func TestAttackEndemicSurvivesWithStaleInfo(t *testing.T) {
	p := endemic.Params{B: 2, Gamma: 0.2, Alpha: 0.1}
	atk := AttackConfig{Staleness: 60, MountDelay: 40, Strikes: 3}
	prob, err := SurvivalProbability(2000, p, atk, 5, 11)
	if err != nil {
		t.Fatal(err)
	}
	if prob < 0.8 {
		t.Fatalf("endemic survival probability %v with stale attacker info; want ≥ 0.8", prob)
	}
}

// TestAttackEndemicDiesWithFreshInfo: an instantaneous strike (no
// migration window) destroys all current replicas.
func TestAttackEndemicDiesWithFreshInfo(t *testing.T) {
	p := endemic.Params{B: 2, Gamma: 0.2, Alpha: 0.1}
	out, err := AttackEndemic(2000, p, AttackConfig{Staleness: 10, MountDelay: 0, Strikes: 1}, 13)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Died {
		t.Fatal("zero-delay strike should destroy all replicas (Theorem 2)")
	}
}

func TestAttackValidation(t *testing.T) {
	if _, err := AttackStatic(3, AttackConfig{}); err == nil {
		t.Fatal("empty attack config accepted")
	}
	if _, err := SurvivalProbability(100, endemic.Params{B: 2, Gamma: 0.2, Alpha: 0.1}, AttackConfig{Staleness: 1, Strikes: 1}, 0, 1); err == nil {
		t.Fatal("zero trials accepted")
	}
}

// TestHandoffAlwaysDies reproduces the §4.1.1 drawback: the naive
// hand-off-and-delete scheme monotonically loses replicas and eventually
// loses the object, while the endemic protocol under the same fault rate
// replenishes them.
func TestHandoffAlwaysDies(t *testing.T) {
	cfg := ChurnConfig{N: 500, CrashProb: 0.01, RejoinProb: 0.05, Periods: 100000, Seed: 21}
	out, err := SimulateHandoff(cfg, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Died {
		t.Fatal("naive hand-off survived 100k periods of 1% churn; the §4.1.1 argument says it must die")
	}
}

func TestHandoffValidation(t *testing.T) {
	cfg := ChurnConfig{N: 100, CrashProb: 0.01, RejoinProb: 0.05, Periods: 10, Seed: 1}
	if _, err := SimulateHandoff(cfg, 0, 5); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := SimulateHandoff(cfg, 3, 0); err == nil {
		t.Fatal("holdPeriods=0 accepted")
	}
}
