package asyncnet

import (
	"context"
	"sync"
	"time"

	"odeproto/internal/mt19937"
	"odeproto/internal/ode"
)

// network is the wallclock transport: per-process inbox channels with
// real-time message loss and delay, plus a pending counter that tracks
// every undelivered or unprocessed message so the run can stop the moment
// the group is quiescent instead of sleeping out a fixed drain window.
type network struct {
	inboxes []chan message
	drop    float64
	maxDel  time.Duration

	// pending counts messages that are in flight (scheduled, buffered in
	// an inbox, or being handled) and timers that have not fired yet. Once
	// every process has executed all its periods, new sends can only
	// originate from handling a counted message, so pending hitting zero
	// is a stable quiescence signal.
	pending sync.WaitGroup

	mu   sync.Mutex
	rng  prng
	sent int
}

func (nw *network) send(to int, m message) {
	nw.mu.Lock()
	nw.sent++
	dropped := nw.drop > 0 && nw.rng.Float64() < nw.drop
	var delay time.Duration
	if nw.maxDel > 0 {
		delay = time.Duration(nw.rng.Int63n(int64(nw.maxDel)))
	}
	if !dropped {
		nw.pending.Add(1)
	}
	nw.mu.Unlock()
	if dropped {
		return
	}
	if delay == 0 {
		nw.deliver(to, m)
		return
	}
	time.AfterFunc(delay, func() { nw.deliver(to, m) })
}

// timeout schedules a local timer message; timers are lossless but share
// the inbox (and the pending accounting) with network deliveries.
func (nw *network) timeout(owner int, d time.Duration, m message) {
	nw.pending.Add(1)
	time.AfterFunc(d, func() { nw.deliver(owner, m) })
}

// deliver hands a counted message to its inbox; overflow counts as loss
// and settles the pending entry immediately.
func (nw *network) deliver(to int, m message) {
	select {
	case nw.inboxes[to] <- m:
	default: // inbox overflow counts as loss
		nw.pending.Done()
	}
}

// runProcess is the wallclock process main loop: one goroutine per
// participant, driven by a drifting real-time period timer and its inbox.
// ticking is signalled once when the process has executed all its periods
// (it keeps serving messages after that, until ctx is cancelled).
func (nw *network) runProcess(ctx context.Context, p *process, finished, ticking *sync.WaitGroup) {
	defer finished.Done()
	ticked := false
	tickDone := func() {
		if !ticked {
			ticked = true
			ticking.Done()
		}
	}
	// Guarantee the ticking group drains even if the context is cancelled
	// before this process finished its periods.
	defer tickDone()

	inbox := nw.inboxes[p.id]
	timer := time.NewTimer(p.startOffset())
	defer timer.Stop()
	periodsLeft := p.cfg.Periods
	for {
		select {
		case <-ctx.Done():
			return
		case m := <-inbox:
			p.handle(m)
			nw.pending.Done()
		case <-timer.C:
			if periodsLeft > 0 {
				p.startPeriod()
				periodsLeft--
				timer.Reset(p.periodFor())
				if periodsLeft == 0 {
					tickDone()
				}
			}
			// After the last period, keep serving messages until ctx ends.
		}
	}
}

// runWallclock executes the run on real goroutines and timers. It returns
// as soon as the group is quiescent: every process has executed all its
// periods and the in-flight message counter has drained — no fixed
// post-run sleep, no nominal-duration watchdog.
func runWallclock(cfg *Config, states []ode.Var, actions [][]*compiled, initial []int16) *Result {
	root := mt19937.New(cfg.Seed)
	nw := &network{
		inboxes: make([]chan message, cfg.N),
		drop:    cfg.DropProb,
		maxDel:  cfg.MaxDelay,
		rng:     prng{root.Split(0)},
	}
	for i := range nw.inboxes {
		nw.inboxes[i] = make(chan message, 4*cfg.N/len(states)+64)
	}
	procs := buildProcesses(cfg, nw, func(i int) prng {
		return prng{root.Split(uint64(i) + 1)}
	}, states, actions, initial)

	ctx, cancel := context.WithCancel(context.Background())
	var finished, ticking sync.WaitGroup
	finished.Add(cfg.N)
	ticking.Add(cfg.N)
	for _, p := range procs {
		go nw.runProcess(ctx, p, &finished, &ticking)
	}
	// Quiescence: all periods executed, then the pending counter drains.
	// After ticking.Wait returns no process starts a period again, so new
	// messages can only be sent while handling a counted one — pending
	// reaching zero is therefore final, and the counter's longest wait is
	// the last scheduled timeout (BasePeriod/2), not a fixed multiple of
	// the nominal run length.
	ticking.Wait()
	nw.pending.Wait()
	cancel()
	finished.Wait()

	nw.mu.Lock()
	sent := nw.sent
	nw.mu.Unlock()
	return collectResult(states, procs, sent)
}
