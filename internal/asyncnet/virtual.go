package asyncnet

import (
	"math/bits"
	"time"

	"odeproto/internal/mt19937"
	"odeproto/internal/ode"
)

// event is one scheduled occurrence on the virtual timeline. Events are
// totally ordered by (at, seq): seq is drawn at schedule time from a
// seeded splitmix stream, so ties in virtual time break pseudo-randomly
// but reproducibly — the virtual analogue of two wallclock events racing
// the goroutine scheduler.
//
// The struct is kept at 16 bytes, because the scheduler's cost at scale
// is the memory traffic of filing and sorting millions of these. A
// period firing (the dominant event kind — one per process per period)
// is fully described by its process id; a message delivery parks its
// payload in the scheduler's arena and carries only the slot index. ref
// encodes which: deliverBit set means an arena index, clear means a
// process id.
type event struct {
	at  int64  // virtual timestamp, nanoseconds
	seq uint32 // tie-break from the seeded splitmix stream
	ref uint32 // process id (period firing) or deliverBit|arena index
}

const deliverBit = 1 << 31

// parkedMsg is a delivery payload at rest in the arena: the envelope and
// its recipient.
type parkedMsg struct {
	m  message
	to int32
}

// virtualRunner is the discrete-event scheduler: a single loop popping the
// earliest event off a priority queue and feeding it to the owning
// process. One goroutine, no channels, no timers — the run is a pure
// function of the Config, and virtual time advances as fast as events can
// be processed.
//
// The queue is a calendar queue (Brown 1988): a ring of buckets, each one
// power-of-two-width slice of the timeline. Every scheduling horizon in
// the model is bounded — a period is at most BasePeriod·(1+Drift), a
// timeout BasePeriod/2, a delay at most MaxDelay — so an event lands at
// most a fixed number of buckets ahead, inserts are O(1) appends, and
// only the bucket containing `now` needs total order, which it gets by
// being sorted once on activation and consumed by index. The active
// bucket spans one bucket width of the timeline (tens to hundreds of
// events) and stays cache-resident, where a single global heap spanning
// all N processes' next periods thrashes: calendar + sorted activation
// measured ~2× faster than a specialized 4-ary heap at the 10k-process
// scale, and the gap widens with N. Events past the ring (possible only
// under exotic configs, e.g. MaxDelay ≫ BasePeriod) spill into an
// overflow heap and are re-filed as the ring advances.
//
// All randomness — network drop/delay draws and every process's protocol
// coins — comes from one shared Mersenne Twister stream. With a single
// event loop the draw order is exactly the deterministic event order, so
// per-process streams (which wallclock mode needs for goroutine safety)
// would buy nothing and cost a cold 2.5 KiB generator state per process.
type virtualRunner struct {
	cfg   *Config
	procs []*process

	// Calendar queue state. curNum is the absolute bucket number of the
	// bucket being drained; cur is that bucket sorted ascending, consumed
	// from curIdx; late is a small min-heap of events scheduled into the
	// current bucket after its activation (a message sent with a delay
	// shorter than the remaining bucket width); ring buckets hold later
	// events unsorted; overflow holds events beyond the ring span.
	shift    uint // bucket width = 1<<shift nanoseconds
	curNum   int64
	cur      []event
	curIdx   int
	late     []event
	ring     [][]event // len is a power of two
	inRing   int
	overflow []event
	pending  int // events in cur[curIdx:] + late + ring + overflow

	// Delivery payload arena. Slots are recycled through freeMsg as their
	// events are consumed, so the arena's high-water mark is the maximum
	// number of in-flight messages, not the run's message total.
	msgs    []parkedMsg
	freeMsg []uint32
	scratch []event // reusable scatter buffer for sortBucket

	now      time.Duration
	rng      prng   // shared stream: network and all processes
	seqState uint64 // splitmix64 state for tie-break sequence numbers
	sent     int
}

const ringBuckets = 1024 // ring span = 1024 bucket widths ≥ 4× the horizon

// newVirtualRunner sizes the calendar to the config's scheduling horizon:
// bucket width is the smallest power of two ≥ horizon/256, so every
// in-model event lands within ~512 buckets and the 1024-bucket ring never
// wraps onto live entries, while the active bucket stays small enough to
// live in cache.
func newVirtualRunner(cfg *Config) *virtualRunner {
	horizon := 2 * cfg.BasePeriod // ≥ BasePeriod·(1+Drift), Drift < 1
	if cfg.MaxDelay > horizon {
		horizon = cfg.MaxDelay
	}
	return &virtualRunner{
		cfg:   cfg,
		shift: uint(bits.Len64(uint64(horizon) / 256)),
		ring:  make([][]event, ringBuckets),
	}
}

// nextSeq advances the tie-break stream (the same splitmix64 finalizer as
// harness.DeriveSeed, truncated to 32 bits — a collision only matters for
// two events at the same virtual instant, where it still resolves to a
// fixed, reproducible order).
func (v *virtualRunner) nextSeq() uint32 {
	v.seqState += 0x9E3779B97F4A7C15
	z := v.seqState
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return uint32(z ^ (z >> 31))
}

// park files a delivery payload in the arena and returns its event ref.
func (v *virtualRunner) park(to int, m message) uint32 {
	if n := len(v.freeMsg); n > 0 {
		idx := v.freeMsg[n-1]
		v.freeMsg = v.freeMsg[:n-1]
		v.msgs[idx] = parkedMsg{m: m, to: int32(to)}
		return deliverBit | idx
	}
	v.msgs = append(v.msgs, parkedMsg{m: m, to: int32(to)})
	return deliverBit | uint32(len(v.msgs)-1)
}

// send applies the same loss/delay model as the wallclock network, but
// schedules the delivery as a virtual event instead of a real timer.
func (v *virtualRunner) send(to int, m message) {
	v.sent++
	dropped := v.cfg.DropProb > 0 && v.rng.Float64() < v.cfg.DropProb
	var delay time.Duration
	if v.cfg.MaxDelay > 0 {
		delay = time.Duration(v.rng.Int63n(int64(v.cfg.MaxDelay)))
	}
	if dropped {
		return
	}
	v.push(event{at: int64(v.now + delay), seq: v.nextSeq(), ref: v.park(to, m)})
}

// timeout schedules a lossless local timer event.
func (v *virtualRunner) timeout(owner int, d time.Duration, m message) {
	v.push(event{at: int64(v.now + d), seq: v.nextSeq(), ref: v.park(owner, m)})
}

// push files an event into the calendar. Events never lie in the past:
// every schedule call adds a non-negative offset to `now`.
func (v *virtualRunner) push(e event) {
	v.pending++
	switch b := e.at >> v.shift; {
	case b == v.curNum:
		heapPush(&v.late, e)
	case b-v.curNum < ringBuckets:
		v.ring[b&(ringBuckets-1)] = append(v.ring[b&(ringBuckets-1)], e)
		v.inRing++
	default:
		heapPush(&v.overflow, e)
	}
}

// pop removes the earliest event — the smaller of the sorted bucket's
// next entry and the late-arrival heap's top. Caller guarantees
// pending > 0.
func (v *virtualRunner) pop() event {
	for v.curIdx >= len(v.cur) && len(v.late) == 0 {
		v.advance()
	}
	v.pending--
	if len(v.late) > 0 && (v.curIdx >= len(v.cur) || eventLess(v.late[0], v.cur[v.curIdx])) {
		return heapPop(&v.late)
	}
	e := v.cur[v.curIdx]
	v.curIdx++
	return e
}

// advance moves the calendar to the next non-empty bucket and activates
// it: overflow entries now within the ring span are re-filed, and the
// bucket is sorted in place for index consumption. The slot keeps its
// backing array for its next lap — safe to alias, because an event for
// this slot's next lap is ringBuckets widths away, beyond any scheduling
// horizon, so nothing appends to it while the sorted view is live.
func (v *virtualRunner) advance() {
	if v.inRing == 0 {
		// Only the overflow holds events; jump straight to its earliest
		// bucket instead of walking empty ring slots.
		v.curNum = v.overflow[0].at >> v.shift
	} else {
		v.curNum++
	}
	for len(v.overflow) > 0 {
		b := v.overflow[0].at >> v.shift
		if b-v.curNum >= ringBuckets {
			break
		}
		e := heapPop(&v.overflow)
		if b == v.curNum {
			heapPush(&v.late, e)
		} else {
			v.ring[b&(ringBuckets-1)] = append(v.ring[b&(ringBuckets-1)], e)
			v.inRing++
		}
	}
	slot := &v.ring[v.curNum&(ringBuckets-1)]
	v.cur, v.curIdx = *slot, 0
	*slot = (*slot)[:0]
	v.inRing -= len(v.cur)
	v.sortBucket(v.cur)
}

// sortBucket orders an activated bucket ascending by (at, seq). For
// realistic buckets it is a two-pass distribution sort: a branchless
// counting-sort scatter on a 6-bit timestamp sub-key (64 sub-ranges of
// the bucket width) followed by an insertion pass that fixes the few
// within-sub-range inversions — comparison sorts pay a branch
// misprediction per compare on random timestamps, which dominated the
// activation cost when profiled. Degenerate buckets (a flood of events
// in one sub-range, e.g. MaxDelay of a few nanoseconds stacking every
// delivery on the same instant) fall back to quicksort, whose worst case
// does not quadratically depend on duplicate keys.
func (v *virtualRunner) sortBucket(s []event) {
	if len(s) < 16 {
		insertionSortEvents(s)
		return
	}
	sub := uint(0)
	if v.shift > 6 {
		sub = v.shift - 6
	}
	var cnt [65]int32
	for i := range s {
		cnt[((uint64(s[i].at)>>sub)&63)+1]++
	}
	limit := int32(len(s)/8 + 32)
	for i := 1; i < len(cnt); i++ {
		if cnt[i] > limit {
			sortEvents(s)
			return
		}
		cnt[i] += cnt[i-1]
	}
	if cap(v.scratch) < len(s) {
		v.scratch = make([]event, len(s))
	}
	scratch := v.scratch[:len(s)]
	for i := range s {
		k := (uint64(s[i].at) >> sub) & 63
		scratch[cnt[k]] = s[i]
		cnt[k]++
	}
	copy(s, scratch)
	insertionSortEvents(s)
}

// insertionSortEvents is exact and fast on the nearly-sorted output of
// the scatter pass (and on small buckets).
func insertionSortEvents(s []event) {
	for i := 1; i < len(s); i++ {
		e := s[i]
		j := i - 1
		for j >= 0 && eventLess(e, s[j]) {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = e
	}
}

// The late-arrival and overflow queues are 4-ary min-heaps ordered by
// (at, seq), specialized to the event struct: no container/heap interface
// indirection, hole percolation instead of swaps, and a fan-out that
// halves the levels touched per sift. Both stay small — late arrivals are
// only the sends whose delay lands inside the current bucket.
func heapPush(h *[]event, e event) {
	s := append(*h, event{})
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !eventLess(e, s[parent]) {
			break
		}
		s[i] = s[parent]
		i = parent
	}
	s[i] = e
	*h = s
}

func heapPop(h *[]event) event {
	s := *h
	top := s[0]
	n := len(s) - 1
	e := s[n]
	s = s[:n]
	if n > 0 {
		siftDown(s, 0, e)
	}
	*h = s
	return top
}

// sortEvents orders an activated bucket ascending by (at, seq): a
// median-of-three quicksort with an insertion-sort base case, specialized
// to the event struct so every comparison is the inlined eventLess
// (slices.SortFunc pays a closure call per comparison, which dominated
// the sort when profiled).
func sortEvents(s []event) {
	for len(s) > 12 {
		// Median-of-three pivot on (first, middle, last).
		m := len(s) / 2
		if eventLess(s[m], s[0]) {
			s[m], s[0] = s[0], s[m]
		}
		if eventLess(s[len(s)-1], s[m]) {
			s[len(s)-1], s[m] = s[m], s[len(s)-1]
			if eventLess(s[m], s[0]) {
				s[m], s[0] = s[0], s[m]
			}
		}
		pivot := s[m]
		i, j := 0, len(s)-1
		for i <= j {
			for eventLess(s[i], pivot) {
				i++
			}
			for eventLess(pivot, s[j]) {
				j--
			}
			if i <= j {
				s[i], s[j] = s[j], s[i]
				i++
				j--
			}
		}
		// Recurse into the smaller half, loop on the larger.
		if j < len(s)-i {
			sortEvents(s[:j+1])
			s = s[i:]
		} else {
			sortEvents(s[i:])
			s = s[:j+1]
		}
	}
	insertionSortEvents(s)
}

// siftDown percolates the hole at i downward until e fits there.
func siftDown(s []event, i int, e event) {
	n := len(s)
	for {
		least := 4*i + 1
		if least >= n {
			break
		}
		end := least + 4
		if end > n {
			end = n
		}
		for c := least + 1; c < end; c++ {
			if eventLess(s[c], s[least]) {
				least = c
			}
		}
		if !eventLess(s[least], e) {
			break
		}
		s[i] = s[least]
		i = least
	}
	s[i] = e
}

func eventLess(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// runVirtual executes the run on the virtual timeline: seed the calendar
// with every process's arbitrary first-period offset, then drain events
// in (at, seq) order until the system is quiescent (the queue is empty).
// Quiescence is guaranteed: after a process's last period no new period
// events are scheduled, message cascades are finite (a query begets one
// reply, token forwards are TTL-bounded, converts are terminal), and
// every event carries a bounded delay.
func runVirtual(cfg *Config, states []ode.Var, actions [][]*compiled, initial []int16) *Result {
	v := drainVirtual(cfg, states, actions, initial)
	return collectResult(states, v.procs, v.sent)
}

// drainVirtual builds the scheduler and runs it to quiescence, returning
// it with the processes in their final states (split from runVirtual so
// tests can inspect per-process bookkeeping after a drain).
func drainVirtual(cfg *Config, states []ode.Var, actions [][]*compiled, initial []int16) *virtualRunner {
	v := newVirtualRunner(cfg)
	v.rng = prng{mt19937.New(cfg.Seed)}
	v.seqState = uint64(cfg.Seed) ^ 0x6A09E667F3BCC908 // sqrt(2) salt: distinct from the MT stream
	v.procs = buildProcesses(cfg, v, func(int) prng { return v.rng }, states, actions, initial)

	periodsLeft := make([]int32, cfg.N)
	for i, p := range v.procs {
		periodsLeft[i] = int32(cfg.Periods)
		v.push(event{at: int64(p.startOffset()), seq: v.nextSeq(), ref: uint32(i)})
	}

	for v.pending > 0 {
		ev := v.pop()
		v.now = time.Duration(ev.at)
		if ev.ref&deliverBit != 0 {
			idx := ev.ref &^ deliverBit
			pm := v.msgs[idx]
			v.freeMsg = append(v.freeMsg, idx)
			v.procs[pm.to].handle(pm.m)
			continue
		}
		p := v.procs[ev.ref]
		p.startPeriod()
		if periodsLeft[ev.ref]--; periodsLeft[ev.ref] > 0 {
			v.push(event{at: int64(v.now + p.periodFor()), seq: v.nextSeq(), ref: ev.ref})
		}
	}
	return v
}
