package asyncnet

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"odeproto/internal/core"
	"odeproto/internal/endemic"
	"odeproto/internal/ode"
)

// endemicConfig is a virtual-mode run with every message kind in flight
// (samples, pushes, and the timeout path) and loss/drift/delay all on.
func endemicConfig(t *testing.T) Config {
	t.Helper()
	proto, err := endemic.NewFigure1Protocol(endemic.Params{B: 2, Gamma: 0.2, Alpha: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		N:        300,
		Protocol: proto,
		Initial:  map[ode.Var]int{endemic.Receptive: 200, endemic.Stash: 80, endemic.Averse: 20},
		Seed:     41,
		Periods:  60,
		Drift:    0.2,
		DropProb: 0.05,
	}
}

// TestVirtualDeterministicAcrossRuns: a fixed seed reproduces the exact
// Result — counts, every transition edge, and the message total — across
// repeated executions. This is the contract that makes virtual asyncnet
// jobs content-addressable in internal/service.
func TestVirtualDeterministicAcrossRuns(t *testing.T) {
	cfg := endemicConfig(t)
	first, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.MessagesSent == 0 {
		t.Fatal("no messages sent; the determinism check would be vacuous")
	}
	for i := 0; i < 2; i++ {
		again, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("run %d diverged:\nfirst: %+v\nagain: %+v", i+2, first, again)
		}
	}
}

// TestVirtualDeterministicAcrossGOMAXPROCS: the scheduler is a single
// event loop, so the runtime's parallelism must not leak into results.
func TestVirtualDeterministicAcrossGOMAXPROCS(t *testing.T) {
	cfg := endemicConfig(t)
	baseline, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)
	for _, procs := range []int{1, 2} {
		runtime.GOMAXPROCS(procs)
		got, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(baseline, got) {
			t.Fatalf("GOMAXPROCS=%d diverged:\nbaseline: %+v\ngot:      %+v", procs, baseline, got)
		}
	}
}

// TestVirtualSeedAndModeSplitResults: different seeds give different
// executions, and the two modes are (unsurprisingly) different streams —
// guarding against a bug where the seed or mode is ignored.
func TestVirtualSeedAndModeSplitResults(t *testing.T) {
	cfg := endemicConfig(t)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.Seed++
	b, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, b) {
		t.Fatal("seed change did not change the virtual execution")
	}
}

// TestVirtualMatchesWallclockLimiting: the virtual scheduler and the
// goroutine runtime are different interleavings of the same model, so
// they must agree on limiting behaviour (statistically, like the
// asyncnet-vs-synchronous integration tests). The epidemic protocol must
// converge on both substrates, and the endemic protocol must keep a live
// stash population on both.
func TestVirtualMatchesWallclockLimiting(t *testing.T) {
	epi := mustTranslate(t, "x' = -x*y\ny' = x*y", core.Options{})
	for _, mode := range []Mode{ModeVirtual, ModeWallclock} {
		res, err := Run(Config{
			N:          150,
			Protocol:   epi,
			Initial:    map[ode.Var]int{"x": 140, "y": 10},
			Seed:       1,
			Periods:    120,
			Mode:       mode,
			BasePeriod: 3 * time.Millisecond,
			Drift:      0.2,
			DropProb:   0.05,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Counts["x"] > 1 {
			t.Fatalf("mode %s: epidemic left %d susceptibles after 120 periods", mode, res.Counts["x"])
		}
	}

	endemicProto, err := endemic.NewFigure1Protocol(endemic.Params{B: 2, Gamma: 0.1, Alpha: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{ModeVirtual, ModeWallclock} {
		res, err := Run(Config{
			N:        200,
			Protocol: endemicProto,
			Initial:  map[ode.Var]int{endemic.Receptive: 150, endemic.Stash: 50, endemic.Averse: 0},
			Seed:     3,
			Periods:  80,
			Mode:     mode,
			Drift:    0.2,
			DropProb: 0.05,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Counts[endemic.Stash] == 0 {
			t.Fatalf("mode %s: all replicas lost: %v", mode, res.Counts)
		}
		if res.Transitions[[2]ode.Var{endemic.Receptive, endemic.Stash}] == 0 {
			t.Fatalf("mode %s: no file transfers happened", mode)
		}
	}
}

// TestVirtualOverflowDelays exercises the calendar queue's overflow path:
// a MaxDelay far beyond the ring span still delivers messages, conserves
// the population, and stays deterministic.
func TestVirtualOverflowDelays(t *testing.T) {
	proto := mustTranslate(t, "x' = -x*y\ny' = x*y", core.Options{})
	cfg := Config{
		N:          80,
		Protocol:   proto,
		Initial:    map[ode.Var]int{"x": 40, "y": 40},
		Seed:       7,
		Periods:    30,
		BasePeriod: time.Millisecond,
		// ~8000 bucket widths past the 1024-bucket ring: every delayed
		// delivery takes the overflow path.
		MaxDelay: 500 * time.Millisecond,
	}
	first, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range first.Counts {
		total += c
	}
	if total != 80 {
		t.Fatalf("population not conserved under overflow delays: %v", first.Counts)
	}
	if first.MessagesSent == 0 {
		t.Fatal("no messages sent")
	}
	again, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, again) {
		t.Fatal("overflow-path execution is not deterministic")
	}
}

// TestRunnerVirtualSegmentsDeterministic: the harness adapter re-seeds
// each segment from (base seed, segment index), so a fixed call sequence
// reproduces counts, transitions, and message totals exactly.
func TestRunnerVirtualSegmentsDeterministic(t *testing.T) {
	proto := mustTranslate(t, "x' = -x*y\ny' = x*y", core.Options{})
	mk := func() *Runner {
		r, err := NewRunner(Config{
			N: 120, Protocol: proto,
			Initial: map[ode.Var]int{"x": 100, "y": 20},
			Seed:    13,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := mk(), mk()
	for _, r := range []*Runner{a, b} {
		r.Run(5)
		r.Run(3)
		r.Step()
		if err := r.Err(); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(a.Counts(), b.Counts()) {
		t.Fatalf("segmented counts diverged: %v vs %v", a.Counts(), b.Counts())
	}
	if a.MessagesSent() != b.MessagesSent() {
		t.Fatalf("segmented message totals diverged: %d vs %d", a.MessagesSent(), b.MessagesSent())
	}
	if !reflect.DeepEqual(a.TransitionsTotal(), b.TransitionsTotal()) {
		t.Fatal("segmented transition totals diverged")
	}
}

// TestQueryRoutesDoNotLeak: routing entries for replies lost to the
// network must be cleaned when their instance is decided, or a long
// lossy run grows the per-process route map without bound.
func TestQueryRoutesDoNotLeak(t *testing.T) {
	proto := mustTranslate(t, "x' = -x*y\ny' = x*y", core.Options{})
	cfg := Config{
		N:        60,
		Protocol: proto,
		Initial:  map[ode.Var]int{"x": 50, "y": 10},
		Seed:     21,
		Periods:  40,
		DropProb: 0.5, // half of all queries/replies die in transit
	}
	states, actions, initial, err := (&cfg).validate()
	if err != nil {
		t.Fatal(err)
	}
	v := drainVirtual(&cfg, states, actions, initial)
	if v.sent == 0 {
		t.Fatal("no messages sent; leak check would be vacuous")
	}
	for _, p := range v.procs {
		if n := len(p.queryRoute); n != 0 {
			t.Fatalf("process %d finished the run with %d leaked query routes", p.id, n)
		}
		if n := len(p.pending); n != 0 {
			t.Fatalf("process %d finished the run with %d undecided instances", p.id, n)
		}
	}
}

// TestModeValidation: unknown modes are rejected by both entry points,
// and the empty mode normalizes to virtual.
func TestModeValidation(t *testing.T) {
	proto := mustTranslate(t, "x' = -x*y\ny' = x*y", core.Options{})
	cfg := Config{N: 10, Protocol: proto, Periods: 1, Initial: map[ode.Var]int{"x": 10}, Mode: "hybrid"}
	if _, err := Run(cfg); err == nil {
		t.Fatal("Run accepted an unknown mode")
	}
	if _, err := NewRunner(cfg); err == nil {
		t.Fatal("NewRunner accepted an unknown mode")
	}
	m, err := Mode("").Normalize()
	if err != nil || m != ModeVirtual {
		t.Fatalf("empty mode normalized to (%q, %v), want virtual", m, err)
	}
}
