// Package asyncnet executes a compiled protocol on the paper's true
// asynchronous system model (§1): protocol periods start at arbitrary
// offsets, per-process clocks drift within a bound, and messages cross a
// lossy, delaying network — "an asynchronous network … protocol periods
// start at arbitrary times at different processes … our analysis holds
// for the average period across the group".
//
// The model is captured entirely by the *interleaving* of events — period
// firings, message deliveries, timeouts — not by real elapsed time, so the
// package offers two execution substrates behind one protocol logic:
//
//   - ModeVirtual (the default) runs a discrete-event scheduler over
//     virtual time: every occurrence is a timestamped event in a priority
//     queue, timestamps are drawn from the same drift/delay/drop
//     distributions as wallclock mode, and equal timestamps are ordered by
//     a seeded splitmix-derived sequence number assigned at schedule time.
//     A run is a pure function of its Config — bit-reproducible across
//     executions and GOMAXPROCS settings — and executes as fast as the
//     hardware allows (no 2ms-per-period floor, no goroutine-per-process
//     ceiling), which is what makes asyncnet results content-addressable
//     and cacheable in internal/service.
//
//   - ModeWallclock runs one goroutine per process against real timers
//     and channels. It is nondeterministic and real-time-bound, and is
//     kept as the validation oracle: integration tests run the same
//     protocols on genuine goroutine interleavings and observe the same
//     limiting behaviour as the virtual scheduler and the synchronous
//     engines in internal/sim.
package asyncnet

import (
	"fmt"
	"math"
	"sort"
	"time"

	"odeproto/internal/core"
	"odeproto/internal/mt19937"
	"odeproto/internal/ode"
)

// Mode selects the asyncnet execution substrate.
type Mode string

const (
	// ModeVirtual is the virtual-time discrete-event scheduler:
	// deterministic for a fixed Config, runs at CPU speed.
	ModeVirtual Mode = "virtual"
	// ModeWallclock is the goroutine-per-process runtime against real
	// timers: nondeterministic, real-time-bound, kept as the oracle that
	// validates the virtual scheduler against true asynchrony.
	ModeWallclock Mode = "wallclock"
)

// Normalize maps the empty mode to the virtual default and rejects
// anything that is not a known mode.
func (m Mode) Normalize() (Mode, error) {
	switch m {
	case "":
		return ModeVirtual, nil
	case ModeVirtual, ModeWallclock:
		return m, nil
	default:
		return "", fmt.Errorf("asyncnet: unknown mode %q (want %q or %q)", string(m), ModeVirtual, ModeWallclock)
	}
}

// message is the transport envelope. Exactly one field group is used per
// kind. Fields are deliberately narrow: the virtual scheduler keeps
// millions of these inside heap events, so envelope size is heap memory
// traffic.
type message struct {
	from int32
	seq  int32 // query/reply correlation
	inst int32 // instance sequence for timeouts

	kind      messageKind
	state     int16 // reply payload / convert precondition
	convertTo int16 // convert/token destination
	ttl       int16 // token hops remaining
}

type messageKind uint8

const (
	msgQuery messageKind = iota + 1
	msgReply
	msgTimeout
	msgConvert
	msgToken
)

// transport is what the protocol logic needs from its substrate: message
// sends (to which the network's loss/delay model applies) and local
// timeout scheduling (which is lossless — a timer is not a network
// message). The wallclock network and the virtual event scheduler both
// implement it.
type transport interface {
	send(to int, m message)
	timeout(owner int, d time.Duration, m message)
}

// Config configures an asynchronous run.
type Config struct {
	N        int
	Protocol *core.Protocol
	Initial  map[ode.Var]int
	Seed     int64
	// Periods is how many protocol periods each process executes.
	Periods int
	// Mode selects the execution substrate: ModeVirtual (default) or
	// ModeWallclock.
	Mode Mode
	// BasePeriod is the nominal protocol period duration (default 2ms;
	// real deployments use minutes — the dynamics only depend on the
	// period count). In virtual mode it is a unit of virtual time and has
	// no bearing on how long the run takes.
	BasePeriod time.Duration
	// Drift is the relative clock drift bound: each process draws its
	// period duration uniformly from BasePeriod·(1 ± Drift). Default 0.1.
	Drift float64
	// DropProb is the probability a message is lost in transit.
	DropProb float64
	// MaxDelay bounds the uniform random network delay (default
	// BasePeriod/4).
	MaxDelay time.Duration
	// TokenTTL bounds token random walks (default 8).
	TokenTTL int
}

// Result summarizes an asynchronous run.
type Result struct {
	// Counts is the final per-state population.
	Counts map[ode.Var]int
	// Transitions counts state transitions across the whole run.
	Transitions map[[2]ode.Var]int
	// MessagesSent counts transport sends (before drops).
	MessagesSent int
}

// pendingInstance tracks one in-flight sampling action.
type pendingInstance struct {
	action  *compiled
	results []int16 // observed state per sample position; -2 = missing
	waiting int
	decided bool
}

type compiled struct {
	kind    core.ActionKind
	coin    float64
	samples []int16
	from    int16
	to      int16
}

// process is one asynchronous protocol participant. The protocol logic
// below is substrate-agnostic: it talks to the run through the transport
// interface and its own rng, so the wallclock goroutine loop and the
// virtual event loop drive the exact same code.
type process struct {
	id      int
	cfg     *Config
	tr      transport
	rng     prng // per-process stream (wallclock) or the run's shared stream (virtual)
	states  []ode.Var
	actions [][]*compiled

	state       int16
	seq         int
	pending     map[int]*pendingInstance // keyed by instance id
	queryRoute  map[int][2]int           // query seq → (instance, pos)
	transitions map[[2]ode.Var]int
}

// prng exposes the draw helpers the protocol logic needs directly on the
// Mersenne Twister: math/rand's *Rand pays an interface dispatch per
// draw, which is measurable with millions of draws on the virtual
// scheduler's hot path. Int63n uses the same rejection sampling as
// math/rand, so draws stay exactly uniform.
type prng struct{ mt *mt19937.MT19937 }

func (r prng) Float64() float64 { return r.mt.Float64() }

func (r prng) Intn(n int) int { return int(r.Int63n(int64(n))) }

func (r prng) Int63n(n int64) int64 {
	if n&(n-1) == 0 {
		return r.mt.Int63() & (n - 1)
	}
	max := int64((1 << 63) - 1 - (1<<63)%uint64(n))
	v := r.mt.Int63()
	for v > max {
		v = r.mt.Int63()
	}
	return v % n
}

func (p *process) transitionTo(to int16) {
	from := p.state
	if from == to {
		return
	}
	p.state = to
	if p.transitions == nil {
		p.transitions = make(map[[2]ode.Var]int, 4)
	}
	p.transitions[[2]ode.Var{p.states[from], p.states[to]}]++
}

func (p *process) randomPeer() int {
	t := p.rng.Intn(p.cfg.N - 1)
	if t >= p.id {
		t++
	}
	return t
}

// periodFor draws this process's next period duration from the drifting
// clock model: uniform in BasePeriod·(1 ± Drift).
func (p *process) periodFor() time.Duration {
	f := 1 + p.cfg.Drift*(2*p.rng.Float64()-1)
	return time.Duration(float64(p.cfg.BasePeriod) * f)
}

// startOffset draws the arbitrary offset of this process's first period
// (paper: "protocol periods start at arbitrary times at different
// processes").
func (p *process) startOffset() time.Duration {
	return time.Duration(p.rng.Int63n(int64(p.cfg.BasePeriod) + 1))
}

// startPeriod launches this period's actions.
func (p *process) startPeriod() {
	for _, a := range p.actions[p.state] {
		switch a.kind {
		case core.Flip:
			if p.rng.Float64() < a.coin {
				p.transitionTo(a.to)
			}
		case core.Push:
			for range a.samples {
				if a.coin >= 1 || p.rng.Float64() < a.coin {
					p.tr.send(p.randomPeer(), message{
						kind: msgConvert, from: int32(p.id), state: a.from, convertTo: a.to,
					})
				}
			}
		case core.Sample, core.SampleAny, core.Token:
			if p.pending == nil {
				p.pending = make(map[int]*pendingInstance, 2)
				p.queryRoute = make(map[int][2]int, 4)
			}
			p.seq++
			inst := p.seq
			pi := &pendingInstance{
				action:  a,
				results: make([]int16, len(a.samples)),
				waiting: len(a.samples),
			}
			for i := range pi.results {
				pi.results[i] = -2
			}
			p.pending[inst] = pi
			for pos := range a.samples {
				p.seq++
				qseq := p.seq
				p.queryRoute[qseq] = [2]int{inst, pos}
				p.tr.send(p.randomPeer(), message{kind: msgQuery, from: int32(p.id), seq: int32(qseq)})
			}
			p.tr.timeout(p.id, p.cfg.BasePeriod/2, message{kind: msgTimeout, inst: int32(inst)})
		}
	}
}

// evaluate decides a completed (or timed-out) instance.
func (p *process) evaluate(inst int, pi *pendingInstance) {
	if pi.decided {
		return
	}
	pi.decided = true
	delete(p.pending, inst)
	a := pi.action
	// Drop the instance's outstanding query routes: replies lost to the
	// network (or still in flight) would otherwise leak their routing
	// entries for the rest of the run. The instance's query seqs are the
	// consecutive draws after its own (see startPeriod), so no extra
	// bookkeeping is needed; a reply arriving after this finds no route
	// and is ignored, exactly as before.
	for i := range a.samples {
		delete(p.queryRoute, inst+1+i)
	}
	switch a.kind {
	case core.Sample, core.Token:
		for i, want := range a.samples {
			if pi.results[i] != want {
				return
			}
		}
		if p.rng.Float64() >= a.coin {
			return
		}
		if a.kind == core.Sample {
			if p.state == a.from {
				p.transitionTo(a.to)
			}
			return
		}
		p.tr.send(p.randomPeer(), message{
			kind: msgToken, from: int32(p.id), state: a.from, convertTo: a.to,
			ttl: int16(p.cfg.TokenTTL),
		})
	case core.SampleAny:
		hit := false
		for i, want := range a.samples {
			if pi.results[i] == want {
				hit = true
				break
			}
		}
		if hit && p.rng.Float64() < a.coin && p.state == a.from {
			p.transitionTo(a.to)
		}
	}
}

func (p *process) handle(m message) {
	switch m.kind {
	case msgQuery:
		p.tr.send(int(m.from), message{kind: msgReply, from: int32(p.id), seq: m.seq, state: p.state})
	case msgReply:
		route, ok := p.queryRoute[int(m.seq)]
		if !ok {
			return
		}
		delete(p.queryRoute, int(m.seq))
		pi, ok := p.pending[route[0]]
		if !ok {
			return
		}
		pi.results[route[1]] = m.state
		pi.waiting--
		if pi.waiting == 0 {
			p.evaluate(route[0], pi)
		}
	case msgTimeout:
		if pi, ok := p.pending[int(m.inst)]; ok {
			p.evaluate(int(m.inst), pi)
		}
	case msgConvert:
		if p.state == m.state {
			p.transitionTo(m.convertTo)
		}
	case msgToken:
		if p.state == m.state {
			p.transitionTo(m.convertTo)
			return
		}
		if m.ttl > 1 {
			m.ttl--
			p.tr.send(p.randomPeer(), m)
		}
	}
}

// validate applies defaults in place and compiles the protocol: the
// per-state action tables and the initial state of each process id
// (processes are laid out state by state, in protocol state order).
func (cfg *Config) validate() (states []ode.Var, actions [][]*compiled, initial []int16, err error) {
	if cfg.N < 2 {
		return nil, nil, nil, fmt.Errorf("asyncnet: group size %d too small", cfg.N)
	}
	if cfg.Protocol == nil {
		return nil, nil, nil, fmt.Errorf("asyncnet: nil protocol")
	}
	if err := cfg.Protocol.Validate(); err != nil {
		return nil, nil, nil, fmt.Errorf("asyncnet: %w", err)
	}
	if cfg.Periods <= 0 {
		return nil, nil, nil, fmt.Errorf("asyncnet: periods must be positive")
	}
	if cfg.Mode, err = cfg.Mode.Normalize(); err != nil {
		return nil, nil, nil, err
	}
	if cfg.BasePeriod <= 0 {
		cfg.BasePeriod = 2 * time.Millisecond
	}
	if cfg.Drift == 0 {
		cfg.Drift = 0.1
	}
	if cfg.Drift < 0 || cfg.Drift >= 1 {
		return nil, nil, nil, fmt.Errorf("asyncnet: drift %v outside [0,1)", cfg.Drift)
	}
	if cfg.MaxDelay == 0 {
		cfg.MaxDelay = cfg.BasePeriod / 4
	}
	if cfg.TokenTTL <= 0 {
		cfg.TokenTTL = 8
	}
	if cfg.TokenTTL > math.MaxInt16 {
		// The transport envelope carries the TTL as an int16; a larger
		// bound would silently wrap and kill tokens after one hop.
		return nil, nil, nil, fmt.Errorf("asyncnet: token TTL %d exceeds the transport bound %d", cfg.TokenTTL, math.MaxInt16)
	}

	states = cfg.Protocol.States
	stateIdx := make(map[ode.Var]int, len(states))
	for i, s := range states {
		stateIdx[s] = i
	}
	actions = make([][]*compiled, len(states))
	for _, a := range cfg.Protocol.Actions {
		ca := &compiled{
			kind: a.Kind,
			coin: a.Coin,
			from: int16(stateIdx[a.From]),
			to:   int16(stateIdx[a.To]),
		}
		for _, s := range a.Samples {
			ca.samples = append(ca.samples, int16(stateIdx[s]))
		}
		owner := stateIdx[a.Owner]
		actions[owner] = append(actions[owner], ca)
	}

	total := 0
	// Validate in sorted-key order so which bad entry the error names is
	// deterministic, not map-iteration-ordered.
	initialStates := make([]string, 0, len(cfg.Initial))
	for s := range cfg.Initial {
		initialStates = append(initialStates, string(s))
	}
	sort.Strings(initialStates)
	for _, name := range initialStates {
		s := ode.Var(name)
		if _, ok := stateIdx[s]; !ok {
			return nil, nil, nil, fmt.Errorf("asyncnet: initial state %q not in protocol", s)
		}
		total += cfg.Initial[s]
	}
	if total != cfg.N {
		return nil, nil, nil, fmt.Errorf("asyncnet: initial counts sum to %d, want %d", total, cfg.N)
	}
	initial = make([]int16, 0, cfg.N)
	for i, s := range states {
		for j := 0; j < cfg.Initial[s]; j++ {
			initial = append(initial, int16(i))
		}
	}
	return states, actions, initial, nil
}

// buildProcesses lays the group out as one contiguous allocation (N
// separate process allocations are measurable GC weight at scale); the
// caller supplies the substrate (transport) and each process's rng
// stream. The bookkeeping maps are allocated lazily — at scale most
// processes spend whole runs in states with no sampling actions and no
// transitions, and 3N empty maps would be more dead GC weight.
func buildProcesses(cfg *Config, tr transport, rngFor func(i int) prng, states []ode.Var, actions [][]*compiled, initial []int16) []*process {
	backing := make([]process, cfg.N)
	procs := make([]*process, cfg.N)
	for i := range backing {
		backing[i] = process{
			id:      i,
			cfg:     cfg,
			tr:      tr,
			rng:     rngFor(i),
			states:  states,
			actions: actions,
			state:   initial[i],
		}
		procs[i] = &backing[i]
	}
	return procs
}

// collectResult assembles the run summary from the final process states.
func collectResult(states []ode.Var, procs []*process, sent int) *Result {
	res := &Result{
		Counts:      make(map[ode.Var]int, len(states)),
		Transitions: make(map[[2]ode.Var]int),
	}
	for _, s := range states {
		res.Counts[s] = 0
	}
	for _, p := range procs {
		res.Counts[states[p.state]]++
		for k, v := range p.transitions {
			res.Transitions[k] += v
		}
	}
	res.MessagesSent = sent
	return res
}

// Run executes the protocol asynchronously and returns the final counts.
// Virtual-mode runs are deterministic: a fixed Config reproduces the exact
// Result on any machine at any GOMAXPROCS. Wallclock-mode runs schedule
// real goroutines and are not reproducible.
func Run(cfg Config) (*Result, error) {
	states, actions, initial, err := cfg.validate()
	if err != nil {
		return nil, err
	}
	if cfg.Mode == ModeWallclock {
		return runWallclock(&cfg, states, actions, initial), nil
	}
	return runVirtual(&cfg, states, actions, initial), nil
}
