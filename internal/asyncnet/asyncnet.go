// Package asyncnet executes a compiled protocol on a genuinely
// asynchronous runtime: one goroutine per process, message passing over a
// simulated lossy and delaying network, protocol periods starting at
// arbitrary offsets with bounded clock drift — exactly the system model of
// the paper (§1): "an asynchronous network … protocol periods start at
// arbitrary times at different processes … our analysis holds for the
// average period across the group".
//
// The synchronous-round engine in internal/sim is the workhorse for the
// paper's large experiments; this package demonstrates that the results do
// not depend on the round synchronization the engine imposes: integration
// tests run the same protocols here and observe the same limiting
// behaviour.
package asyncnet

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"odeproto/internal/core"
	"odeproto/internal/mt19937"
	"odeproto/internal/ode"
)

// message is the transport envelope. Exactly one field group is used per
// kind.
type message struct {
	kind messageKind
	from int

	seq   int   // query/reply correlation
	pos   int   // sample position within the action instance
	state int16 // reply payload / convert precondition

	inst      int   // instance sequence for timeouts
	convertTo int16 // convert/token destination
	ttl       int   // token hops remaining
}

type messageKind int

const (
	msgQuery messageKind = iota + 1
	msgReply
	msgTimeout
	msgConvert
	msgToken
)

// Config configures an asynchronous run.
type Config struct {
	N        int
	Protocol *core.Protocol
	Initial  map[ode.Var]int
	Seed     int64
	// Periods is how many protocol periods each process executes.
	Periods int
	// BasePeriod is the nominal protocol period duration (default 2ms;
	// real deployments use minutes — the dynamics only depend on the
	// period count).
	BasePeriod time.Duration
	// Drift is the relative clock drift bound: each process draws its
	// period duration uniformly from BasePeriod·(1 ± Drift). Default 0.1.
	Drift float64
	// DropProb is the probability a message is lost in transit.
	DropProb float64
	// MaxDelay bounds the uniform random network delay (default
	// BasePeriod/4).
	MaxDelay time.Duration
	// TokenTTL bounds token random walks (default 8).
	TokenTTL int
}

// Result summarizes an asynchronous run.
type Result struct {
	// Counts is the final per-state population.
	Counts map[ode.Var]int
	// Transitions counts state transitions across the whole run.
	Transitions map[[2]ode.Var]int
	// MessagesSent counts transport sends (before drops).
	MessagesSent int
}

// network delivers messages with loss and delay.
type network struct {
	inboxes []chan message
	drop    float64
	maxDel  time.Duration

	mu   sync.Mutex
	rng  *rand.Rand
	sent int
}

func (nw *network) send(to int, m message) {
	nw.mu.Lock()
	nw.sent++
	dropped := nw.drop > 0 && nw.rng.Float64() < nw.drop
	var delay time.Duration
	if nw.maxDel > 0 {
		delay = time.Duration(nw.rng.Int63n(int64(nw.maxDel)))
	}
	nw.mu.Unlock()
	if dropped {
		return
	}
	deliver := func() {
		select {
		case nw.inboxes[to] <- m:
		default: // inbox overflow counts as loss
		}
	}
	if delay == 0 {
		deliver()
		return
	}
	time.AfterFunc(delay, deliver)
}

// pendingInstance tracks one in-flight sampling action.
type pendingInstance struct {
	action  *compiled
	results []int16 // observed state per sample position; -2 = missing
	waiting int
	decided bool
}

type compiled struct {
	kind    core.ActionKind
	coin    float64
	samples []int16
	from    int16
	to      int16
}

// process is one asynchronous protocol participant.
type process struct {
	id      int
	cfg     *Config
	nw      *network
	rng     *rand.Rand
	states  []ode.Var
	actions [][]*compiled

	state       int16
	seq         int
	pending     map[int]*pendingInstance // keyed by instance id
	queryRoute  map[int][2]int           // query seq → (instance, pos)
	transitions map[[2]ode.Var]int
}

func (p *process) transitionTo(to int16) {
	from := p.state
	if from == to {
		return
	}
	p.state = to
	p.transitions[[2]ode.Var{p.states[from], p.states[to]}]++
}

func (p *process) randomPeer() int {
	t := p.rng.Intn(p.cfg.N - 1)
	if t >= p.id {
		t++
	}
	return t
}

// startPeriod launches this period's actions.
func (p *process) startPeriod(timeout time.Duration, inbox chan message) {
	for _, a := range p.actions[p.state] {
		switch a.kind {
		case core.Flip:
			if p.rng.Float64() < a.coin {
				p.transitionTo(a.to)
			}
		case core.Push:
			for range a.samples {
				if a.coin >= 1 || p.rng.Float64() < a.coin {
					p.nw.send(p.randomPeer(), message{
						kind: msgConvert, from: p.id, state: a.from, convertTo: a.to,
					})
				}
			}
		case core.Sample, core.SampleAny, core.Token:
			p.seq++
			inst := p.seq
			pi := &pendingInstance{
				action:  a,
				results: make([]int16, len(a.samples)),
				waiting: len(a.samples),
			}
			for i := range pi.results {
				pi.results[i] = -2
			}
			p.pending[inst] = pi
			for pos := range a.samples {
				p.seq++
				qseq := p.seq
				p.queryRoute[qseq] = [2]int{inst, pos}
				p.nw.send(p.randomPeer(), message{kind: msgQuery, from: p.id, seq: qseq})
			}
			id := inst
			time.AfterFunc(timeout, func() {
				select {
				case inbox <- message{kind: msgTimeout, inst: id}:
				default:
				}
			})
		}
	}
}

// evaluate decides a completed (or timed-out) instance.
func (p *process) evaluate(inst int, pi *pendingInstance) {
	if pi.decided {
		return
	}
	pi.decided = true
	delete(p.pending, inst)
	a := pi.action
	switch a.kind {
	case core.Sample, core.Token:
		for i, want := range a.samples {
			if pi.results[i] != want {
				return
			}
		}
		if p.rng.Float64() >= a.coin {
			return
		}
		if a.kind == core.Sample {
			if p.state == a.from {
				p.transitionTo(a.to)
			}
			return
		}
		ttl := p.cfg.TokenTTL
		p.nw.send(p.randomPeer(), message{
			kind: msgToken, from: p.id, state: a.from, convertTo: a.to, ttl: ttl,
		})
	case core.SampleAny:
		hit := false
		for i, want := range a.samples {
			if pi.results[i] == want {
				hit = true
				break
			}
		}
		if hit && p.rng.Float64() < a.coin && p.state == a.from {
			p.transitionTo(a.to)
		}
	}
}

func (p *process) handle(m message) {
	switch m.kind {
	case msgQuery:
		p.nw.send(m.from, message{kind: msgReply, from: p.id, seq: m.seq, state: p.state})
	case msgReply:
		route, ok := p.queryRoute[m.seq]
		if !ok {
			return
		}
		delete(p.queryRoute, m.seq)
		pi, ok := p.pending[route[0]]
		if !ok {
			return
		}
		pi.results[route[1]] = m.state
		pi.waiting--
		if pi.waiting == 0 {
			p.evaluate(route[0], pi)
		}
	case msgTimeout:
		if pi, ok := p.pending[m.inst]; ok {
			p.evaluate(m.inst, pi)
		}
	case msgConvert:
		if p.state == m.state {
			p.transitionTo(m.convertTo)
		}
	case msgToken:
		if p.state == m.state {
			p.transitionTo(m.convertTo)
			return
		}
		if m.ttl > 1 {
			m.ttl--
			p.nw.send(p.randomPeer(), m)
		}
	}
}

// run is the process main loop. ticking is signalled once when the
// process has executed all its periods (it keeps serving messages after
// that, until ctx is cancelled).
func (p *process) run(ctx context.Context, inbox chan message, finished, ticking *sync.WaitGroup, final []int16) {
	defer finished.Done()
	defer func() { final[p.id] = p.state }()
	ticked := false
	tickDone := func() {
		if !ticked {
			ticked = true
			ticking.Done()
		}
	}
	// Guarantee the ticking group drains even if the context is cancelled
	// before this process finished its periods (fallback-deadline path).
	defer tickDone()

	drift := p.cfg.Drift
	periodFor := func() time.Duration {
		f := 1 + drift*(2*p.rng.Float64()-1)
		return time.Duration(float64(p.cfg.BasePeriod) * f)
	}
	// Arbitrary start offset within one period (paper: "protocol periods
	// start at arbitrary times at different processes").
	timer := time.NewTimer(time.Duration(p.rng.Int63n(int64(p.cfg.BasePeriod) + 1)))
	defer timer.Stop()
	periodsLeft := p.cfg.Periods
	for {
		select {
		case <-ctx.Done():
			return
		case m := <-inbox:
			p.handle(m)
		case <-timer.C:
			if periodsLeft > 0 {
				p.startPeriod(p.cfg.BasePeriod/2, inbox)
				periodsLeft--
				timer.Reset(periodFor())
				if periodsLeft == 0 {
					tickDone()
				}
			}
			// After the last period, keep serving messages until ctx ends.
		}
	}
}

// Run executes the protocol asynchronously and returns the final counts.
func Run(cfg Config) (*Result, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("asyncnet: group size %d too small", cfg.N)
	}
	if cfg.Protocol == nil {
		return nil, fmt.Errorf("asyncnet: nil protocol")
	}
	if err := cfg.Protocol.Validate(); err != nil {
		return nil, fmt.Errorf("asyncnet: %w", err)
	}
	if cfg.Periods <= 0 {
		return nil, fmt.Errorf("asyncnet: periods must be positive")
	}
	if cfg.BasePeriod <= 0 {
		cfg.BasePeriod = 2 * time.Millisecond
	}
	if cfg.Drift == 0 {
		cfg.Drift = 0.1
	}
	if cfg.Drift < 0 || cfg.Drift >= 1 {
		return nil, fmt.Errorf("asyncnet: drift %v outside [0,1)", cfg.Drift)
	}
	if cfg.MaxDelay == 0 {
		cfg.MaxDelay = cfg.BasePeriod / 4
	}
	if cfg.TokenTTL <= 0 {
		cfg.TokenTTL = 8
	}

	states := cfg.Protocol.States
	stateIdx := make(map[ode.Var]int, len(states))
	for i, s := range states {
		stateIdx[s] = i
	}
	compiledActions := make([][]*compiled, len(states))
	for _, a := range cfg.Protocol.Actions {
		ca := &compiled{
			kind: a.Kind,
			coin: a.Coin,
			from: int16(stateIdx[a.From]),
			to:   int16(stateIdx[a.To]),
		}
		for _, s := range a.Samples {
			ca.samples = append(ca.samples, int16(stateIdx[s]))
		}
		owner := stateIdx[a.Owner]
		compiledActions[owner] = append(compiledActions[owner], ca)
	}

	total := 0
	for s, c := range cfg.Initial {
		if _, ok := stateIdx[s]; !ok {
			return nil, fmt.Errorf("asyncnet: initial state %q not in protocol", s)
		}
		total += c
	}
	if total != cfg.N {
		return nil, fmt.Errorf("asyncnet: initial counts sum to %d, want %d", total, cfg.N)
	}

	root := mt19937.New(cfg.Seed)
	nw := &network{
		inboxes: make([]chan message, cfg.N),
		drop:    cfg.DropProb,
		maxDel:  cfg.MaxDelay,
		rng:     rand.New(root.Split(0)),
	}
	for i := range nw.inboxes {
		nw.inboxes[i] = make(chan message, 4*cfg.N/len(states)+64)
	}

	procs := make([]*process, cfg.N)
	idx := 0
	for _, s := range states {
		for i := 0; i < cfg.Initial[s]; i++ {
			procs[idx] = &process{
				id:          idx,
				cfg:         &cfg,
				nw:          nw,
				rng:         rand.New(root.Split(uint64(idx) + 1)),
				states:      states,
				actions:     compiledActions,
				state:       int16(stateIdx[s]),
				pending:     make(map[int]*pendingInstance),
				queryRoute:  make(map[int][2]int),
				transitions: make(map[[2]ode.Var]int),
			}
			idx++
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	var finished, ticking sync.WaitGroup
	final := make([]int16, cfg.N)
	finished.Add(cfg.N)
	ticking.Add(cfg.N)
	for _, p := range procs {
		go p.run(ctx, nw.inboxes[p.id], &finished, &ticking, final)
	}
	// Wait until every process has executed all its periods — scheduling
	// delays under load make a fixed nominal sleep unreliable — then give
	// in-flight messages a short grace window and stop the world.
	allDone := make(chan struct{})
	go func() {
		defer close(allDone)
		ticking.Wait()
	}()
	nominal := time.Duration(float64(cfg.BasePeriod) * (1 + cfg.Drift) * float64(cfg.Periods))
	select {
	case <-allDone:
	case <-time.After(10*nominal + time.Second):
		// Fallback deadline: proceed with whatever progress was made.
	}
	time.Sleep(4 * cfg.BasePeriod)
	cancel()
	finished.Wait()

	res := &Result{
		Counts:      make(map[ode.Var]int, len(states)),
		Transitions: make(map[[2]ode.Var]int),
	}
	for _, s := range states {
		res.Counts[s] = 0
	}
	for i := range final {
		res.Counts[states[final[i]]]++
	}
	for _, p := range procs {
		for k, v := range p.transitions {
			res.Transitions[k] += v
		}
	}
	nw.mu.Lock()
	res.MessagesSent = nw.sent
	nw.mu.Unlock()
	return res, nil
}
