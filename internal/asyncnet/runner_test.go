package asyncnet

import (
	"testing"
	"time"

	"odeproto/internal/core"
	"odeproto/internal/harness"
	"odeproto/internal/ode"
)

func TestRunnerSegmentsConservePopulation(t *testing.T) {
	proto := mustTranslate(t, "x' = -x*y\ny' = x*y", core.Options{})
	r, err := NewRunner(Config{
		N: 60, Protocol: proto,
		Initial:    map[ode.Var]int{"x": 50, "y": 10},
		Seed:       11,
		BasePeriod: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two coarse segments plus one single-period segment; the population
	// must be conserved across segment boundaries and the period counter
	// must add up.
	r.Run(5)
	r.Run(3)
	r.Step()
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if r.Period() != 9 {
		t.Fatalf("period = %d, want 9", r.Period())
	}
	if r.Alive() != 60 {
		t.Fatalf("population not conserved: alive = %d, want 60", r.Alive())
	}
	total := 0
	for _, c := range r.Counts() {
		total += c
	}
	if total != 60 {
		t.Fatalf("counts sum to %d, want 60", total)
	}
	// The epidemic protocol only converts x → y, so y must not shrink.
	if r.Count("y") < 10 {
		t.Fatalf("y = %d shrank below its initial 10", r.Count("y"))
	}
	if r.MessagesSent() == 0 {
		t.Fatal("no messages recorded across segments")
	}
}

func TestRunnerThroughHarnessJob(t *testing.T) {
	proto := mustTranslate(t, "x' = -x*y\ny' = x*y", core.Options{})
	var finalY int
	res := harness.Run(harness.Job{
		Name: "async-epidemic",
		Seed: 5,
		New: func(seed int64) (harness.Runner, error) {
			return NewRunner(Config{
				N: 40, Protocol: proto,
				Initial:    map[ode.Var]int{"x": 30, "y": 10},
				Seed:       seed,
				BasePeriod: time.Millisecond,
			})
		},
		Periods: 4,
		Done: func(r harness.Runner) error {
			finalY = r.Count("y")
			return nil
		},
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if finalY < 10 || finalY > 40 {
		t.Fatalf("final y = %d outside [10, 40]", finalY)
	}
}

func TestRunnerRejectsPerturbations(t *testing.T) {
	proto := mustTranslate(t, "x' = -x*y\ny' = x*y", core.Options{})
	r, err := NewRunner(Config{
		N: 10, Protocol: proto,
		Initial: map[ode.Var]int{"x": 9, "y": 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Perturb(harness.Perturbation{Kind: harness.KillFraction, Frac: 0.5}); err != harness.ErrUnsupported {
		t.Fatalf("Perturb error = %v, want ErrUnsupported", err)
	}
}

func TestNewRunnerValidation(t *testing.T) {
	proto := mustTranslate(t, "x' = -x*y\ny' = x*y", core.Options{})
	if _, err := NewRunner(Config{N: 10, Initial: map[ode.Var]int{"x": 10}}); err == nil {
		t.Fatal("nil protocol accepted")
	}
	if _, err := NewRunner(Config{N: 10, Protocol: proto, Initial: map[ode.Var]int{"x": 4}}); err == nil {
		t.Fatal("mismatched initial counts accepted")
	}
}
