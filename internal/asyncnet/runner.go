package asyncnet

import (
	"fmt"

	"odeproto/internal/harness"
	"odeproto/internal/ode"
)

// Runner adapts the asynchronous runtime to the harness.Runner interface,
// so sweeps can execute on the paper's true system model (§1) through the
// same scheduler as the synchronous engines. The runtime is one-shot — it
// builds the group and tears it down at the end of a run — so the adapter
// executes periods in segments: each Run(k) call launches a fresh
// asynchronous execution of k periods whose initial population is the
// previous segment's final population, seeded deterministically from the
// base seed and the segment index. Population counts are continuous
// across segments; per-process identity is not (asyncnet processes carry
// no addressable identity anyway). Prefer coarse Run calls over
// per-period Step calls: every segment pays the group's start-up and
// tear-down cost.
//
// The config's Mode carries through to every segment. In ModeVirtual
// (the default) the whole segment sequence is deterministic — a fixed
// (config, call sequence) reproduces byte-identical counts, transitions,
// and message totals — which is what lets internal/service cache and
// persist virtual asyncnet jobs.
type Runner struct {
	cfg Config

	counts      map[ode.Var]int
	period      int
	segment     int
	transitions map[[2]ode.Var]int
	messages    int
	err         error
}

// NewRunner builds an asynchronous harness Runner. The config's Periods
// field is ignored; periods are supplied per Run call.
func NewRunner(cfg Config) (*Runner, error) {
	if cfg.Protocol == nil {
		return nil, fmt.Errorf("asyncnet: nil protocol")
	}
	if err := cfg.Protocol.Validate(); err != nil {
		return nil, fmt.Errorf("asyncnet: %w", err)
	}
	var err error
	if cfg.Mode, err = cfg.Mode.Normalize(); err != nil {
		return nil, err
	}
	total := 0
	counts := make(map[ode.Var]int, len(cfg.Protocol.States))
	for _, s := range cfg.Protocol.States {
		c := cfg.Initial[s]
		if c < 0 {
			return nil, fmt.Errorf("asyncnet: negative initial count for %q", s)
		}
		counts[s] = c
		total += c
	}
	if total != cfg.N {
		return nil, fmt.Errorf("asyncnet: initial counts sum to %d, want %d", total, cfg.N)
	}
	return &Runner{
		cfg:         cfg,
		counts:      counts,
		transitions: make(map[[2]ode.Var]int),
	}, nil
}

// Step executes one protocol period (one single-period segment).
func (r *Runner) Step() { r.Run(1) }

// Run executes the given number of periods as one asynchronous segment.
// On failure the adapter records a sticky error (see Err) and stops
// advancing; the harness surfaces it at the end of the job.
func (r *Runner) Run(periods int) {
	if r.err != nil || periods <= 0 {
		return
	}
	cfg := r.cfg
	cfg.Periods = periods
	cfg.Initial = r.Counts()
	cfg.Seed = harness.DeriveSeed(r.cfg.Seed, r.segment)
	res, err := Run(cfg)
	if err != nil {
		r.err = err
		return
	}
	r.counts = res.Counts
	for k, v := range res.Transitions {
		r.transitions[k] += v
	}
	r.messages += res.MessagesSent
	r.period += periods
	r.segment++
}

// Err returns the sticky error of a failed segment, if any.
func (r *Runner) Err() error { return r.err }

// Period returns the number of completed protocol periods.
func (r *Runner) Period() int { return r.period }

// Alive returns the population size (asyncnet models no crashes).
func (r *Runner) Alive() int {
	n := 0
	for _, c := range r.counts {
		n += c
	}
	return n
}

// Counts returns a copy of the per-state population.
func (r *Runner) Counts() map[ode.Var]int {
	out := make(map[ode.Var]int, len(r.counts))
	for k, v := range r.counts {
		out[k] = v
	}
	return out
}

// Count returns the population of one state.
func (r *Runner) Count(s ode.Var) int { return r.counts[s] }

// MessagesSent returns the cumulative transport sends across all segments.
func (r *Runner) MessagesSent() int { return r.messages }

// TransitionsTotal returns the cumulative per-edge transition counts
// across all segments.
func (r *Runner) TransitionsTotal() map[[2]ode.Var]int { return r.transitions }

// Perturb is unsupported: the asynchronous runtime models no process
// failures (its loss model is per-message).
func (r *Runner) Perturb(p harness.Perturbation) (int, error) {
	switch p.Kind {
	case harness.KillFraction, harness.Kill, harness.Revive, harness.Freeze, harness.Unfreeze:
		return 0, harness.ErrUnsupported
	default:
		return 0, fmt.Errorf("asyncnet: unknown perturbation kind %v", p.Kind)
	}
}
