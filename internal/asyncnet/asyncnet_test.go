package asyncnet

import (
	"testing"
	"time"

	"odeproto/internal/core"
	"odeproto/internal/endemic"
	"odeproto/internal/ode"
)

func mustTranslate(t *testing.T, src string, opts core.Options) *core.Protocol {
	t.Helper()
	sys, err := ode.Parse(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	proto, err := core.Translate(sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	return proto
}

func TestRunValidation(t *testing.T) {
	proto := mustTranslate(t, "x' = -x*y\ny' = x*y", core.Options{})
	cases := []Config{
		{N: 1, Protocol: proto, Periods: 1, Initial: map[ode.Var]int{"x": 1}},
		{N: 10, Periods: 1},
		{N: 10, Protocol: proto, Periods: 0, Initial: map[ode.Var]int{"x": 10}},
		{N: 10, Protocol: proto, Periods: 1, Initial: map[ode.Var]int{"x": 5}},
		{N: 10, Protocol: proto, Periods: 1, Initial: map[ode.Var]int{"x": 9, "q": 1}},
		{N: 10, Protocol: proto, Periods: 1, Initial: map[ode.Var]int{"x": 10}, Drift: 2},
		{N: 10, Protocol: proto, Periods: 1, Initial: map[ode.Var]int{"x": 10}, Mode: "realtime"},
		// The transport envelope carries the token TTL as an int16; a
		// larger bound would wrap and silently kill tokens after one hop.
		{N: 10, Protocol: proto, Periods: 1, Initial: map[ode.Var]int{"x": 10}, TokenTTL: 40000},
	}
	for i, cfg := range cases {
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

// TestEpidemicConvergesAsynchronously: the canonical pull epidemic reaches
// (essentially) everyone despite drifting clocks, delays and message loss
// (default virtual mode; TestVirtualMatchesWallclockLimiting repeats the
// check on the wallclock oracle). The period budget is generous and one
// straggler is tolerated.
func TestEpidemicConvergesAsynchronously(t *testing.T) {
	proto := mustTranslate(t, "x' = -x*y\ny' = x*y", core.Options{})
	res, err := Run(Config{
		N:          150,
		Protocol:   proto,
		Initial:    map[ode.Var]int{"x": 140, "y": 10},
		Seed:       1,
		Periods:    120,
		BasePeriod: 3 * time.Millisecond,
		Drift:      0.2,
		DropProb:   0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts["x"] > 1 {
		t.Fatalf("asynchronous epidemic left %d susceptibles after 120 periods", res.Counts["x"])
	}
	total := 0
	for _, c := range res.Counts {
		total += c
	}
	if total != 150 {
		t.Fatalf("population not conserved: %v", res.Counts)
	}
	if res.MessagesSent == 0 {
		t.Fatal("no messages sent")
	}
}

// TestPopulationConserved: counts always sum to N whatever the protocol,
// on both substrates.
func TestPopulationConserved(t *testing.T) {
	proto, err := endemic.NewFigure1Protocol(endemic.Params{B: 2, Gamma: 0.2, Alpha: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{ModeVirtual, ModeWallclock} {
		res, err := Run(Config{
			N:        120,
			Protocol: proto,
			Initial:  map[ode.Var]int{endemic.Receptive: 60, endemic.Stash: 40, endemic.Averse: 20},
			Seed:     2,
			Periods:  40,
			Mode:     mode,
			DropProb: 0.1,
		})
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, c := range res.Counts {
			total += c
		}
		if total != 120 {
			t.Fatalf("mode %s: population %d, want 120: %v", mode, total, res.Counts)
		}
	}
}

// TestEndemicSurvivesAsynchrony: stash population persists (probabilistic
// safety) on the asynchronous runtime.
func TestEndemicSurvivesAsynchrony(t *testing.T) {
	proto, err := endemic.NewFigure1Protocol(endemic.Params{B: 2, Gamma: 0.1, Alpha: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		N:        200,
		Protocol: proto,
		Initial:  map[ode.Var]int{endemic.Receptive: 150, endemic.Stash: 50, endemic.Averse: 0},
		Seed:     3,
		Periods:  80,
		Drift:    0.2,
		DropProb: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts[endemic.Stash] == 0 {
		t.Fatalf("all replicas lost on asynchronous runtime: %v", res.Counts)
	}
	// The endemic mix keeps all three transition edges busy.
	if res.Transitions[[2]ode.Var{endemic.Receptive, endemic.Stash}] == 0 {
		t.Fatal("no file transfers happened")
	}
	if res.Transitions[[2]ode.Var{endemic.Stash, endemic.Averse}] == 0 {
		t.Fatal("no deletions happened")
	}
}

// TestTokenProtocolAsync: tokenizing works over the random-walk TTL path.
func TestTokenProtocolAsync(t *testing.T) {
	proto := mustTranslate(t, "x' = -y^2\ny' = y^2", core.Options{})
	res, err := Run(Config{
		N:        100,
		Protocol: proto,
		Initial:  map[ode.Var]int{"x": 50, "y": 50},
		Seed:     4,
		Periods:  50,
		TokenTTL: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts["y"] <= 50 {
		t.Fatalf("token flow x→y did not happen: %v", res.Counts)
	}
}

// TestHeavyLossStillProgresses: 30% loss slows but does not stop the
// epidemic.
func TestHeavyLossStillProgresses(t *testing.T) {
	proto := mustTranslate(t, "x' = -x*y\ny' = x*y", core.Options{})
	res, err := Run(Config{
		N:        100,
		Protocol: proto,
		Initial:  map[ode.Var]int{"x": 50, "y": 50},
		Seed:     5,
		Periods:  30,
		DropProb: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts["y"] <= 55 {
		t.Fatalf("no progress under loss: %v", res.Counts)
	}
}

// TestLVMajorityAsync: majority selection also works on the asynchronous
// runtime — drifting clocks do not break competitive exclusion.
func TestLVMajorityAsync(t *testing.T) {
	sys, err := ode.Parse(`
x' = 3*x*z - 3*x*y
y' = 3*y*z - 3*x*y
z' = -3*x*z - 3*y*z + 3*x*y + 3*x*y
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	proto, err := core.Translate(sys, core.Options{P: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		N:        200,
		Protocol: proto,
		Initial:  map[ode.Var]int{"x": 140, "y": 60, "z": 0},
		Seed:     9,
		Periods:  150,
		Drift:    0.2,
		DropProb: 0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts["x"] <= res.Counts["y"] {
		t.Fatalf("majority not preserved asynchronously: %v", res.Counts)
	}
	// Strong convergence: the minority should be (nearly) extinct.
	if res.Counts["y"] > 20 {
		t.Fatalf("minority population still large: %v", res.Counts)
	}
}

// TestValidationErrorDeterministic pins that config validation iterates
// Initial in sorted-key order: with several unknown states, the error
// always names the lexicographically first one instead of whichever map
// iteration surfaces first.
func TestValidationErrorDeterministic(t *testing.T) {
	proto := mustTranslate(t, "x' = -x*y\ny' = x*y", core.Options{})
	want := `asyncnet: initial state "q" not in protocol`
	for i := 0; i < 50; i++ {
		cfg := Config{N: 10, Protocol: proto, Periods: 1, Initial: map[ode.Var]int{"x": 8, "w": 1, "q": 1}}
		if _, err := Run(cfg); err == nil || err.Error() != want {
			t.Fatalf("run %d: err = %v, want %q", i, err, want)
		}
	}
}
