package service

import (
	"fmt"
	"io"
	"net/http"
	"strconv"

	"odeproto/internal/plot"
)

// handleTraceSVG renders a job's lifecycle trace as a waterfall SVG: one
// bar per stage-to-stage span (queued→compiled→swept→persisted→
// responded), to a shared time scale, with the owning node in the
// subtitle. The data is the same span list GET /v1/jobs/{id}/trace
// serves as JSON.
func (s *Server) handleTraceSVG(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errNotFound)
		return
	}
	if job.trace == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no trace recorded for job %s", job.ID))
		return
	}
	spans := job.trace.Spans()
	if len(spans) == 0 {
		writeError(w, http.StatusNotFound, fmt.Errorf("trace for job %s has no spans yet", job.ID))
		return
	}
	// A terminal job's trace is frozen, so its span count pins the
	// rendering: a strong validator. Live jobs get no ETag — their trace
	// is still growing.
	switch job.Snapshot(false).Status {
	case StatusDone, StatusFailed, StatusCancelled:
		etag := fmt.Sprintf("%q", fmt.Sprintf("t:%s:%s:%d", job.ID, job.trace.ID, len(spans)))
		w.Header().Set("ETag", etag)
		if ifNoneMatchHit(r, etag) {
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	subtitle := "trace " + job.trace.ID
	if job.trace.Node != "" {
		subtitle = "node " + job.trace.Node + " · " + subtitle
	}
	wf := plot.NewWaterfall("trace waterfall · "+job.ID, subtitle)
	t0 := spans[0].At
	// The first span is the trace's origin instant; each later stage
	// closes the span that began at the previous one.
	wf.AddSpan(spans[0].Stage, 0, 0)
	for i := 1; i < len(spans); i++ {
		wf.AddSpan(spans[i].Stage,
			spans[i-1].At.Sub(t0).Seconds(),
			spans[i].At.Sub(t0).Seconds())
	}
	svg := wf.SVG()
	w.Header().Set("Content-Type", "image/svg+xml")
	w.Header().Set("Content-Length", strconv.Itoa(len(svg)))
	_, _ = io.WriteString(w, svg)
}
