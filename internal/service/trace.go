package service

import (
	"fmt"
	"net/http"
	"time"
)

// TraceSpan is one lifecycle stage of GET /v1/jobs/{id}/trace, with its
// offset from the first span.
type TraceSpan struct {
	Stage     string    `json:"stage"`
	At        time.Time `json:"at"`
	ElapsedMS float64   `json:"elapsed_ms"`
}

// TraceStatus is the body of GET /v1/jobs/{id}/trace.
type TraceStatus struct {
	Job    string      `json:"job"`
	Trace  string      `json:"trace"`
	Node   string      `json:"node,omitempty"`
	Status Status      `json:"status"`
	Spans  []TraceSpan `json:"spans"`
}

// handleTrace serves a job's lifecycle spans. Jobs recovered from WAL
// records written before tracing existed have no trace and 404.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errNotFound)
		return
	}
	if job.trace == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no trace recorded for job %s", job.ID))
		return
	}
	spans := job.trace.Spans()
	out := TraceStatus{
		Job:    job.ID,
		Trace:  job.trace.ID,
		Node:   job.trace.Node,
		Status: job.Snapshot(false).Status,
		Spans:  make([]TraceSpan, len(spans)),
	}
	for i, sp := range spans {
		out.Spans[i] = TraceSpan{
			Stage:     sp.Stage,
			At:        sp.At,
			ElapsedMS: float64(sp.At.Sub(spans[0].At)) / float64(time.Millisecond),
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// logCompletion emits the one structured line each job gets when it
// reaches a terminal state: the trace ID ties it to the submitting
// node's log when the job was forwarded, and the stage offsets make the
// line a self-contained latency breakdown.
func (s *Server) logCompletion(job *Job) {
	st := job.Snapshot(false)
	// Done and failed jobs feed the latency-SLO histogram (with the trace
	// as the bucket exemplar); failures additionally feed the error-rate
	// SLO. Cancellations are neither success nor failure and observe
	// nothing.
	if st.Finished != nil {
		switch st.Status {
		case StatusFailed:
			s.met.failed.Inc()
			fallthrough
		case StatusDone:
			s.met.jobDuration.ObserveTraced(st.Finished.Sub(st.Created).Seconds(), st.Trace)
		}
	}
	attrs := []any{
		"trace", st.Trace,
		"job", st.ID,
		"status", string(st.Status),
		"engine", st.Engine,
		"cached", st.Cached,
		"key", job.Key,
	}
	if st.Mode != "" {
		attrs = append(attrs, "mode", st.Mode)
	}
	if st.Error != "" {
		attrs = append(attrs, "error", st.Error)
	}
	if st.Finished != nil {
		attrs = append(attrs, "duration_ms",
			float64(st.Finished.Sub(st.Created))/float64(time.Millisecond))
	}
	if job.trace != nil {
		spans := job.trace.Spans()
		stages := make([]string, len(spans))
		for i, sp := range spans {
			stages[i] = fmt.Sprintf("%s+%.1fms", sp.Stage,
				float64(sp.At.Sub(spans[0].At))/float64(time.Millisecond))
		}
		attrs = append(attrs, "stages", stages)
	}
	s.log.Info("job finished", attrs...)
}
