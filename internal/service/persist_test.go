package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"odeproto/internal/store"
)

func openFileStore(t *testing.T, dir string) *store.FileStore {
	t.Helper()
	fst, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return fst
}

// TestSingleFlightCoalescesQueuedTwin pins the deterministic core of the
// single-flight contract: while a job is still in flight (here: parked in
// the queue behind a busy worker), an identical spec returns the same Job
// instead of registering a second one.
func TestSingleFlightCoalescesQueuedTwin(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 8})
	defer srv.Close()

	hog, err := srv.Submit(slowSpec())
	if err != nil {
		t.Fatal(err)
	}
	twinSpec := slowSpec()
	twinSpec.Seed = 2
	first, err := srv.Submit(twinSpec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		dup, err := srv.Submit(twinSpec)
		if err != nil {
			t.Fatal(err)
		}
		if dup != first {
			t.Fatalf("duplicate submit %d returned job %s, want the in-flight twin %s", i, dup.ID, first.ID)
		}
	}
	if n := srv.stats().CoalescedJobs; n != 5 {
		t.Fatalf("coalesced_jobs = %d, want 5", n)
	}
	// Exactly one registered job per distinct spec.
	if got := len(srv.stats().Jobs); got == 0 {
		t.Fatal("stats lost the jobs map")
	}
	srv.mu.Lock()
	registered := len(srv.jobs)
	srv.mu.Unlock()
	if registered != 2 {
		t.Fatalf("%d jobs registered, want 2 (hog + one twin)", registered)
	}
	if _, err := srv.Cancel(hog.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Cancel(first.ID); err != nil {
		t.Fatal(err)
	}
	<-first.done
	// The key is released once the twin is terminal: a fresh submit
	// registers a new job rather than coalescing onto a cancelled one.
	fresh, err := srv.Submit(twinSpec)
	if err != nil {
		t.Fatal(err)
	}
	if fresh == first {
		t.Fatal("submit after cancellation coalesced onto the dead twin")
	}
}

// TestSingleFlightConcurrentDuplicatePosts is the regression test the
// single-flight work item calls for: N concurrent identical POSTs while
// the first is still running execute exactly one sweep.
func TestSingleFlightConcurrentDuplicatePosts(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 2})

	const posts = 8
	var wg sync.WaitGroup
	ids := make([]string, posts)
	for i := 0; i < posts; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, data := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", smallSpec())
			if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
				t.Errorf("post %d: %d %s", i, resp.StatusCode, data)
				return
			}
			ids[i] = decodeStatus(t, data).ID
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for _, id := range ids {
		waitStatus(t, ts.URL, id, StatusDone, 30*time.Second)
	}
	if n := srv.SweepsExecuted(); n != 1 {
		t.Fatalf("%d concurrent duplicate POSTs executed %d sweeps, want 1", posts, n)
	}
}

func TestResultsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	resp, data := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", smallSpec())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, data)
	}
	st := decodeStatus(t, data)
	done := waitStatus(t, ts.URL, st.ID, StatusDone, 30*time.Second)

	resp, body := doJSON(t, http.MethodGet, ts.URL+"/v1/results/"+st.CacheKey, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET result: %d %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("result content type %q", ct)
	}
	want, err := json.Marshal(done.Result)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want) {
		t.Fatalf("result body differs from the job result:\n%.120s\n%.120s", body, want)
	}

	// Unknown and malformed keys 404.
	for _, bad := range []string{strings.Repeat("ab", 32), "not-a-key", ".."} {
		resp, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/results/"+bad, nil)
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET bogus result %q: %d, want 404", bad, resp.StatusCode)
		}
	}
}

// TestFileBackendPersistsAcrossRestart is the in-package half of the
// crash-recovery acceptance: a second server on the same data dir
// recovers the job list, answers the identical spec from disk without a
// sweep, byte-identical, and replays the recovered job's stream.
func TestFileBackendPersistsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	fst := openFileStore(t, dir)
	srv1 := New(Config{Workers: 1, Store: fst})
	job, err := srv1.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	<-job.done
	first := job.Snapshot(true)
	if first.Status != StatusDone || first.Cached {
		t.Fatalf("first run %+v", first)
	}
	firstJSON, err := json.Marshal(first.Result)
	if err != nil {
		t.Fatal(err)
	}
	srv1.Close()
	if err := fst.Close(); err != nil {
		t.Fatal(err)
	}

	fst2 := openFileStore(t, dir)
	t.Cleanup(func() { fst2.Close() }) // after the server cleanup below
	srv2, ts := newTestServer(t, Config{Workers: 1, Store: fst2})
	if n := srv2.SweepsExecuted(); n != 0 {
		t.Fatalf("fresh process claims %d sweeps", n)
	}

	// The job list survived, with the result reloadable over HTTP.
	resp, data := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+job.ID, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET recovered job: %d %s", resp.StatusCode, data)
	}
	rec := decodeStatus(t, data)
	if rec.Status != StatusDone || rec.Result == nil {
		t.Fatalf("recovered job %+v", rec)
	}
	recJSON, err := json.Marshal(rec.Result)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(recJSON, firstJSON) {
		t.Fatal("recovered result differs from the original")
	}
	if rec.Engine != "agent" || rec.N != 400 || rec.Periods != 25 {
		t.Fatalf("recovered job lost its spec fields: %+v", rec)
	}

	// The identical spec is served without simulating: the warmed LRU (or
	// the disk fall-through) answers it done-on-arrival.
	resp, data = doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", smallSpec())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resubmit after restart: %d %s", resp.StatusCode, data)
	}
	st := decodeStatus(t, data)
	if st.Status != StatusDone || !st.Cached || st.CacheKey != job.Key {
		t.Fatalf("resubmit after restart %+v", st)
	}
	if n := srv2.SweepsExecuted(); n != 0 {
		t.Fatalf("resubmit after restart ran %d sweeps", n)
	}

	// The recovered job's stream replays its rows (it was warmed).
	streamResp, err := http.Get(ts.URL + "/v1/jobs/" + job.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer streamResp.Body.Close()
	body, err := io.ReadAll(streamResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(body), "\n"); got != 26 { // 25 rows + terminal
		t.Fatalf("recovered stream has %d rows, want 26", got)
	}

	stats := srv2.stats()
	if stats.Store.Backend != "file" || stats.Store.RecoveredJobs != 1 {
		t.Fatalf("store stats %+v", stats.Store)
	}
	if stats.WarmedResults != 1 {
		t.Fatalf("warmed_results = %d, want 1", stats.WarmedResults)
	}
}

// TestAsyncnetVirtualResultSurvivesRestart is the durability half of the
// virtual-asyncnet cacheability contract: a virtual-mode asyncnet result
// is persisted like any other deterministic engine's, so a restarted
// daemon re-serves it from disk (via GET /v1/results/{key} and a
// done-on-arrival resubmission) without re-simulating.
func TestAsyncnetVirtualResultSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	fst := openFileStore(t, dir)
	srv1 := New(Config{Workers: 1, Store: fst})
	spec := JobSpec{
		Source: epidemicSource, Engine: "asyncnet",
		N: 80, Initial: map[string]int{"x": 70, "y": 10}, Periods: 6, Seed: 5,
	}
	job, err := srv1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-job.done
	first := job.Snapshot(true)
	if first.Status != StatusDone || first.Cached || first.Mode != ModeVirtual {
		t.Fatalf("first virtual asyncnet run %+v", first)
	}
	firstJSON, err := json.Marshal(first.Result)
	if err != nil {
		t.Fatal(err)
	}
	srv1.Close()
	if err := fst.Close(); err != nil {
		t.Fatal(err)
	}

	fst2 := openFileStore(t, dir)
	t.Cleanup(func() { fst2.Close() }) // after the server cleanup below
	srv2, ts := newTestServer(t, Config{Workers: 1, Store: fst2})

	// The persisted blob is reachable by its content address.
	resp, body := doJSON(t, http.MethodGet, ts.URL+"/v1/results/"+job.Key, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET asyncnet result after restart: %d %s", resp.StatusCode, body)
	}
	if !bytes.Equal(body, firstJSON) {
		t.Fatal("persisted asyncnet result differs from the original")
	}

	// The identical spec is answered from disk without a sweep.
	resp, data := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", spec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("asyncnet resubmit after restart: %d %s", resp.StatusCode, data)
	}
	st := decodeStatus(t, data)
	if st.Status != StatusDone || !st.Cached || st.CacheKey != job.Key {
		t.Fatalf("asyncnet resubmit after restart %+v", st)
	}
	if n := srv2.SweepsExecuted(); n != 0 {
		t.Fatalf("restarted daemon ran %d sweeps serving a persisted asyncnet result", n)
	}
}

// TestWallclockAsyncnetResultNotPersisted: the wallclock oracle stays
// outside the durability contract — its jobs finish, but no blob lands
// under their key.
func TestWallclockAsyncnetResultNotPersisted(t *testing.T) {
	fst := openFileStore(t, t.TempDir())
	defer fst.Close()
	srv := New(Config{Workers: 1, Store: fst})
	defer srv.Close()
	spec := JobSpec{
		Source: epidemicSource, Engine: "asyncnet", Mode: ModeWallclock,
		N: 60, Initial: map[string]int{"x": 50, "y": 10}, Periods: 2,
	}
	job, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-job.done
	if st := job.Snapshot(false); st.Status != StatusDone {
		t.Fatalf("wallclock job finished %s: %s", st.Status, st.Error)
	}
	if _, err := fst.GetResult(job.Key); err == nil {
		t.Fatal("wallclock asyncnet result was persisted")
	}
}

// TestResumeInterruptedRestartsJobs: with Config.ResumeInterrupted, a job
// the crash caught mid-run is resubmitted by the recovering daemon itself
// — the replacement runs to done, the original stays failed with an error
// naming it, and the stats count the resume.
func TestResumeInterruptedRestartsJobs(t *testing.T) {
	dir := t.TempDir()
	fst := openFileStore(t, dir)
	spec := smallSpec()
	specData, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	key := strings.Repeat("feedc0de", 8)
	for _, rec := range []store.JobRecord{
		{Op: store.OpSubmitted, ID: "j000003", Key: key, Spec: specData, SubmittedAt: time.Now().UnixNano()},
		{Op: store.OpRunning, ID: "j000003", StartedAt: time.Now().UnixNano()},
	} {
		if err := fst.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := fst.Close(); err != nil {
		t.Fatal(err)
	}

	fst2 := openFileStore(t, dir)
	defer fst2.Close()
	srv := New(Config{Workers: 1, Store: fst2, ResumeInterrupted: true})
	defer srv.Close()

	if got := srv.Stats().ResumedJobs; got != 1 {
		t.Fatalf("resumed_jobs = %d, want 1", got)
	}
	orig, ok := srv.job("j000003")
	if !ok {
		t.Fatal("interrupted job not recovered")
	}
	st := orig.Snapshot(false)
	if st.Status != StatusFailed || !strings.Contains(st.Error, "resubmitted as j000004") {
		t.Fatalf("interrupted original recovered as %+v", st)
	}
	resub, ok := srv.job("j000004")
	if !ok {
		t.Fatal("resubmitted job not registered")
	}
	select {
	case <-resub.done:
	case <-time.After(30 * time.Second):
		t.Fatal("resubmitted job did not finish")
	}
	rst := resub.Snapshot(true)
	if rst.Status != StatusDone || rst.Result == nil {
		t.Fatalf("resubmitted job finished %+v", rst)
	}
	if n := srv.SweepsExecuted(); n != 1 {
		t.Fatalf("resume ran %d sweeps, want 1", n)
	}
}

// TestResumeInterruptedOffLeavesJobsFailed: without the flag the old
// contract holds — the interrupted job comes back failed-restartable and
// nothing is enqueued.
func TestResumeInterruptedOffLeavesJobsFailed(t *testing.T) {
	dir := t.TempDir()
	fst := openFileStore(t, dir)
	spec := smallSpec()
	specData, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range []store.JobRecord{
		{Op: store.OpSubmitted, ID: "j000001", Key: strings.Repeat("ab", 32), Spec: specData, SubmittedAt: time.Now().UnixNano()},
		{Op: store.OpRunning, ID: "j000001", StartedAt: time.Now().UnixNano()},
	} {
		if err := fst.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := fst.Close(); err != nil {
		t.Fatal(err)
	}
	fst2 := openFileStore(t, dir)
	defer fst2.Close()
	srv := New(Config{Workers: 1, Store: fst2})
	defer srv.Close()
	if got := srv.Stats().ResumedJobs; got != 0 {
		t.Fatalf("resumed_jobs = %d without the flag", got)
	}
	st := srv.Stats()
	if st.Jobs[StatusFailed] != 1 || st.Jobs[StatusQueued] != 0 {
		t.Fatalf("job table after recovery without the flag: %+v", st.Jobs)
	}
}

// TestRecoveryMarksInterruptedJobs replays a WAL that ends mid-run (a
// crash between running and any terminal record): the job must come back
// failed-restartable, the transition must be journaled for the next
// recovery, and new IDs must continue past the recovered ones.
func TestRecoveryMarksInterruptedJobs(t *testing.T) {
	dir := t.TempDir()
	fst := openFileStore(t, dir)
	spec := smallSpec()
	specData, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	key := strings.Repeat("0badc0de", 8)
	for _, rec := range []store.JobRecord{
		{Op: store.OpSubmitted, ID: "j000007", Key: key, Spec: specData, SubmittedAt: time.Now().UnixNano()},
		{Op: store.OpRunning, ID: "j000007", StartedAt: time.Now().UnixNano()},
	} {
		if err := fst.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := fst.Close(); err != nil {
		t.Fatal(err)
	}

	fst2 := openFileStore(t, dir)
	srv := New(Config{Workers: 1, Store: fst2})
	job, ok := srv.job("j000007")
	if !ok {
		t.Fatal("interrupted job not recovered")
	}
	st := job.Snapshot(false)
	if st.Status != StatusFailed || !strings.Contains(st.Error, "restart") {
		t.Fatalf("interrupted job recovered as %+v", st)
	}
	next, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if next.ID != "j000008" {
		t.Fatalf("post-recovery ID %s, want j000008", next.ID)
	}
	<-next.done
	srv.Close()
	if err := fst2.Close(); err != nil {
		t.Fatal(err)
	}

	// Third generation: the failed-restartable transition was journaled,
	// so the job replays as a plain failure (not interrupted again), and
	// the resubmitted twin replays as done.
	fst3 := openFileStore(t, dir)
	defer fst3.Close()
	recovered := fst3.Recovered()
	if len(recovered) != 2 {
		t.Fatalf("third generation recovered %d jobs, want 2", len(recovered))
	}
	if recovered[0].Status != store.OpFailed || recovered[0].Interrupted {
		t.Fatalf("interrupted job's journaled failure did not stick: %+v", recovered[0])
	}
	if recovered[1].Status != store.OpDone {
		t.Fatalf("resubmitted twin = %+v", recovered[1])
	}
}

// TestPutResultFailureFailsTheJob: if the durable store cannot hold the
// result, the job must not claim done — the WAL would promise a blob the
// disk does not have.
func TestPutResultFailureFailsTheJob(t *testing.T) {
	srv := New(Config{Workers: 1, Store: failingStore{}})
	defer srv.Close()
	job, err := srv.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	<-job.done
	st := job.Snapshot(false)
	if st.Status != StatusFailed || !strings.Contains(st.Error, "persisting result") {
		t.Fatalf("job with a failing store finished %+v", st)
	}
}

// failingStore accepts journal records but refuses result blobs.
type failingStore struct{}

func (failingStore) Append(rec store.JobRecord) error        { return nil }
func (failingStore) PutResult(key string, data []byte) error { return fmt.Errorf("disk full") }
func (failingStore) GetResult(key string) ([]byte, error)    { return nil, store.ErrNotFound }
func (failingStore) GetResultReader(key string) (io.ReadCloser, int64, error) {
	return nil, 0, store.ErrNotFound
}
func (failingStore) PutResultGzip(key string, data []byte) error { return fmt.Errorf("disk full") }
func (failingStore) GetResultGzip(key string) ([]byte, error)    { return nil, store.ErrNotFound }
func (failingStore) Recovered() []store.RecoveredJob             { return nil }
func (failingStore) Compact() error                              { return nil }
func (failingStore) Stats() store.Stats                          { return store.Stats{Backend: "failing"} }
func (failingStore) Close() error                                { return nil }
