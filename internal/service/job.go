package service

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"odeproto/internal/asyncnet"
	"odeproto/internal/harness"
	"odeproto/internal/obs"
	"odeproto/internal/ode"
	"odeproto/internal/sim"
	"odeproto/internal/store"
)

// Status enumerates a job's lifecycle states.
type Status string

const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusDone      Status = "done"
	StatusFailed    Status = "failed"
	StatusCancelled Status = "cancelled"
)

// PeriodRow is one recorded observation: the per-state counts (aligned
// with JobResult.States) at the end of period Period.
type PeriodRow struct {
	Period int   `json:"period"`
	Counts []int `json:"counts"`
}

// RunResult is the full trajectory of one seed's run.
type RunResult struct {
	Seed int64 `json:"seed"`
	// Killed is the total process count crash-stopped by the job's
	// kill/kill-fraction events.
	Killed int `json:"killed"`
	// Rows are the recorded per-period counts, every RecordEvery periods
	// plus the final period.
	Rows []PeriodRow `json:"rows"`
}

// JobResult is the deterministic output of a job: one RunResult per seed,
// in seed order. Identical specs produce byte-identical JobResults (for
// the deterministic engines), which is what makes the result cache sound.
type JobResult struct {
	States []string    `json:"states"`
	Runs   []RunResult `json:"runs"`
}

// Job is one submitted sweep.
type Job struct {
	ID  string
	Key string

	mu       sync.Mutex
	spec     JobSpec
	comp     *compiled
	status   Status
	errMsg   string
	cached   bool
	result   *resultBlob
	created  time.Time
	started  time.Time
	finished time.Time
	cancel   context.CancelFunc

	// trace is the job's lifecycle trail (internally synchronized; nil
	// only for jobs recovered from WAL records that predate tracing).
	trace *obs.Trace

	rows *rowBuffer
	done chan struct{}
}

// traceID returns the job's trace ID, or "" for pre-trace recovered jobs.
func (j *Job) traceID() string {
	if j.trace == nil {
		return ""
	}
	return j.trace.ID
}

// traceAdd records a lifecycle stage, if the job carries a trace.
func (j *Job) traceAdd(stage string) {
	if j.trace != nil {
		j.trace.Add(stage, time.Now())
	}
}

// JobStatus is the wire form of GET /v1/jobs/{id} (and each element of
// GET /v1/jobs).
type JobStatus struct {
	ID       string `json:"id"`
	Status   Status `json:"status"`
	Error    string `json:"error,omitempty"`
	CacheKey string `json:"cache_key"`
	// Cached reports that the result was served from the content-addressed
	// cache without running a sweep.
	Cached bool   `json:"cached"`
	Engine string `json:"engine"`
	// Mode is the asyncnet execution mode (virtual or wallclock); empty
	// for the other engines.
	Mode     string     `json:"mode,omitempty"`
	N        int        `json:"n"`
	Periods  int        `json:"periods"`
	Seeds    int        `json:"seeds"`
	Shards   int        `json:"shards,omitempty"`
	Rows     int        `json:"rows"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	Result   *JobResult `json:"result,omitempty"`
	// Trace is the job's trace ID (X-Odeproto-Trace); empty only for
	// jobs recovered from WAL records written before tracing existed.
	Trace string `json:"trace,omitempty"`

	// resultRaw is the result's canonical encoding, spliced verbatim into
	// the status JSON by MarshalJSON so GET /v1/jobs/{id} never re-encodes
	// a result (Result stays populated for in-process callers).
	resultRaw json.RawMessage
}

// MarshalJSON splices the canonical result bytes into the status envelope
// when the snapshot carries them: the result portion of the response is
// then a copy of the encode-once buffer, not a fresh json.Marshal of the
// decoded struct. Statuses without raw bytes marshal field-by-field as
// before.
func (st JobStatus) MarshalJSON() ([]byte, error) {
	type alias JobStatus // drops the method set; plain marshal below
	if len(st.resultRaw) == 0 {
		return marshalNoEscape(alias(st))
	}
	// The depth-0 RawMessage field shadows the embedded alias's Result, so
	// the decoded struct is never re-encoded.
	return marshalNoEscape(struct {
		alias
		Result json.RawMessage `json:"result,omitempty"`
	}{alias: alias(st), Result: st.resultRaw})
}

// statusLocked assembles the wire status; callers hold j.mu.
func (j *Job) statusLocked(includeResult bool) JobStatus {
	st := JobStatus{
		ID:       j.ID,
		Status:   j.status,
		Error:    j.errMsg,
		CacheKey: j.Key,
		Cached:   j.cached,
		Engine:   j.spec.Engine,
		Mode:     j.spec.Mode,
		N:        j.spec.N,
		Periods:  j.spec.Periods,
		Seeds:    j.spec.Seeds,
		Shards:   j.spec.Shards,
		Rows:     j.rows.snapshotLen(),
		Created:  j.created,
		Trace:    j.traceID(),
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	if includeResult && j.status == StatusDone && j.result != nil {
		// The raw splice serves the HTTP path; the decoded struct (memoized
		// on the blob, at most one unmarshal per blob ever) serves in-process
		// callers like the figure renderer.
		if res, err := j.result.result(); err == nil {
			st.Result = res
			st.resultRaw = j.result.data
		}
	}
	return st
}

// Snapshot returns the job's current wire status.
func (j *Job) Snapshot(includeResult bool) JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked(includeResult)
}

// finish moves the job to a terminal state and closes its stream. It must
// be called exactly once per job, by whoever owns the transition (the
// worker, or Cancel for still-queued jobs).
func (j *Job) finish(status Status, res *resultBlob, errMsg string, cached bool) {
	j.mu.Lock()
	j.status = status
	j.result = res
	j.errMsg = errMsg
	j.cached = cached
	j.finished = time.Now()
	j.cancel = nil
	j.mu.Unlock()
	j.completeStream(status)
}

// completeStream emits the terminal stream row and releases waiters.
func (j *Job) completeStream(status Status) {
	j.rows.append(StreamRow{Event: string(status), Period: -1})
	j.rows.closeBuf()
	close(j.done)
}

// initialCounts resolves the spec's initial populations against the
// protocol states: explicit counts, or a uniform split with the remainder
// on the first state.
func initialCounts(spec *JobSpec, states []ode.Var) map[ode.Var]int {
	counts := make(map[ode.Var]int, len(states))
	if len(spec.Initial) == 0 {
		per := spec.N / len(states)
		rem := spec.N - per*len(states)
		for i, s := range states {
			counts[s] = per
			if i == 0 {
				counts[s] += rem
			}
		}
		return counts
	}
	for k, v := range spec.Initial {
		counts[ode.Var(k)] = v
	}
	return counts
}

// buildSweep compiles the job's spec into harness jobs plus the result
// slots their hooks fill. The recording rule — counts after the Step of
// every period t with t % RecordEvery == 0, plus the final period — is
// part of the service's public contract (the end-to-end tests reproduce
// it against a direct harness.Sweep run).
func buildSweep(spec *JobSpec, comp *compiled, rows *rowBuffer) ([]harness.Job, []RunResult, error) {
	states := comp.proto.States
	counts := initialCounts(spec, states)

	events := make([]harness.Event, len(spec.Events))
	for i, e := range spec.Events {
		p, err := e.perturbation()
		if err != nil {
			return nil, nil, err
		}
		events[i] = harness.Event{At: e.At, P: p}
	}

	runs := make([]RunResult, spec.Seeds)
	jobs := make([]harness.Job, spec.Seeds)
	for i := range jobs {
		i := i
		seed := spec.seedFor(i)
		runs[i].Seed = seed

		var newRunner func(seed int64) (harness.Runner, error)
		switch spec.Engine {
		case EngineAgent:
			cfg := sim.Config{
				N: spec.N, Protocol: comp.proto, Initial: counts,
				Shards: spec.Shards,
			}
			newRunner = func(seed int64) (harness.Runner, error) {
				cfg.Seed = seed
				return harness.NewAgent(cfg)
			}
		case EngineAggregate:
			newRunner = func(seed int64) (harness.Runner, error) {
				return harness.NewAggregate(comp.proto, counts, seed, 0)
			}
		case EngineAsyncnet:
			cfg := asyncnet.Config{
				N: spec.N, Protocol: comp.proto, Initial: counts,
				Mode: asyncnet.Mode(spec.Mode),
			}
			newRunner = func(seed int64) (harness.Runner, error) {
				cfg.Seed = seed
				return asyncnet.NewRunner(cfg)
			}
		default:
			return nil, nil, fmt.Errorf("unknown engine %q", spec.Engine)
		}

		run := &runs[i]
		record := func(r harness.Runner, t int) {
			row := PeriodRow{Period: t, Counts: make([]int, len(states))}
			for si, s := range states {
				row.Counts[si] = r.Count(s)
			}
			run.Rows = append(run.Rows, row)
			if rows != nil {
				rows.append(StreamRow{Run: i, Seed: seed, Period: t, Counts: row.Counts})
			}
		}
		jobs[i] = harness.Job{
			Name:    fmt.Sprintf("service-run-%d", i),
			Seed:    seed,
			New:     newRunner,
			Periods: spec.Periods,
			Events:  events,
			AfterStep: func(r harness.Runner, t int) {
				if t%spec.RecordEvery == 0 || t == spec.Periods-1 {
					record(r, t)
				}
			},
		}
	}
	return jobs, runs, nil
}

// execute runs the sweep for a job that missed the cache. It returns the
// assembled result, or ctx's error if the job was cancelled mid-flight.
func (s *Server) execute(ctx context.Context, job *Job) (*JobResult, error) {
	job.mu.Lock()
	spec := job.spec
	comp := job.comp
	job.mu.Unlock()

	jobs, runs, err := buildSweep(&spec, comp, job.rows)
	if err != nil {
		return nil, err
	}
	s.met.sweeps.Inc()
	opts := harness.Options{
		Workers: s.cfg.SweepWorkers,
		// The harness never reads the wall clock itself (determinism
		// contract); the service supplies it for latency observation.
		Now: time.Now,
		OnJobDone: func(i int, res harness.Result, start, end time.Time) {
			s.observeSweepLatency(spec.Engine, spec.Mode, job.traceID(), end.Sub(start))
		},
	}
	results, err := harness.SweepContext(ctx, jobs, opts)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, err
	}
	res := &JobResult{States: make([]string, len(comp.proto.States)), Runs: runs}
	for i, st := range comp.proto.States {
		res.States[i] = string(st)
	}
	for i := range results {
		runs[i].Killed = results[i].Killed
	}
	return res, nil
}

// worker consumes the job queue until the server closes.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case job, ok := <-s.queue:
			if !ok {
				return
			}
			s.runJob(job)
		}
	}
}

// runJob drives one queued job to a terminal state, journaling each
// transition to the durable store. A completed result is persisted (and
// fsync'd, for the file backend) before the job is marked done, so the
// WAL never claims a result the disk does not hold.
func (s *Server) runJob(job *Job) {
	job.mu.Lock()
	if job.status != StatusQueued {
		// Cancelled while queued; finish() already ran.
		job.mu.Unlock()
		return
	}
	cacheable := job.spec.cacheable()
	key := job.Key

	// A twin job submitted earlier may have populated the cache — or a
	// previous process the result store — between submission and pickup;
	// re-check before simulating (peek: Submit already counted this job's
	// miss).
	if cacheable {
		if blob, ok := s.peekResult(key); ok {
			job.status = StatusRunning
			job.started = time.Now()
			job.mu.Unlock()
			s.met.queueWait.ObserveTraced(job.started.Sub(job.created).Seconds(), job.traceID())
			s.journal(store.JobRecord{Op: store.OpRunning, ID: job.ID, Key: key, Trace: job.traceID(),
				StartedAt: job.started.UnixNano()})
			// Eager replay, unlike the submit-time hit: stream readers may
			// already be blocked in wait() on this live job, and only a new
			// reader would materialize a deferred replay. The rows are the
			// blob's memoized render, so the copy is pointer-sized per row.
			job.rows.appendRendered(blob.streamRows())
			job.finish(StatusDone, blob, "", true)
			job.traceAdd(obs.StageResponded)
			s.journal(store.JobRecord{Op: store.OpDone, ID: job.ID, Key: key, Cached: true, Trace: job.traceID(),
				FinishedAt: time.Now().UnixNano()})
			s.logCompletion(job)
			s.dropInflight(job)
			return
		}
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	job.status = StatusRunning
	job.started = time.Now()
	job.cancel = cancel
	job.mu.Unlock()
	defer cancel()
	s.met.queueWait.ObserveTraced(job.started.Sub(job.created).Seconds(), job.traceID())
	// Every worker record stamps the key: if a crash loses the submitter
	// and its OpSubmitted append raced, the recovered job still knows its
	// content address and can reload its persisted result.
	s.journal(store.JobRecord{Op: store.OpRunning, ID: job.ID, Key: key, Trace: job.traceID(),
		StartedAt: job.started.UnixNano()})

	res, err := s.execute(ctx, job)
	switch {
	case err == nil:
		job.traceAdd(obs.StageSwept)
		// The one encode: these bytes are what the store persists and what
		// every future read of this result serves.
		blob := newResultBlob(key, res)
		if cacheable {
			if perr := s.persistResult(blob); perr != nil {
				// Durability is part of "done": a result that cannot be
				// stored fails the job rather than silently losing the
				// crash-recovery guarantee.
				job.finish(StatusFailed, nil, perr.Error(), false)
				s.journal(store.JobRecord{Op: store.OpFailed, ID: job.ID, Key: key, Trace: job.traceID(),
					Error: perr.Error(), FinishedAt: time.Now().UnixNano()})
				break
			}
			s.cache.put(key, blob)
			job.traceAdd(obs.StagePersisted)
		}
		job.finish(StatusDone, blob, "", false)
		s.journal(store.JobRecord{Op: store.OpDone, ID: job.ID, Key: key, Trace: job.traceID(),
			FinishedAt: time.Now().UnixNano()})
	case ctx.Err() != nil:
		job.finish(StatusCancelled, nil, "job cancelled", false)
		s.journal(store.JobRecord{Op: store.OpAborted, ID: job.ID, Key: key, Trace: job.traceID(),
			Error: "job cancelled", FinishedAt: time.Now().UnixNano()})
	default:
		job.finish(StatusFailed, nil, err.Error(), false)
		s.journal(store.JobRecord{Op: store.OpFailed, ID: job.ID, Key: key, Trace: job.traceID(),
			Error: err.Error(), FinishedAt: time.Now().UnixNano()})
	}
	job.traceAdd(obs.StageResponded)
	s.logCompletion(job)
	s.dropInflight(job)
}

// persistResult writes a completed result's canonical bytes to the
// durable store under their content address, after which the blob is
// persistable (its gzip variant may be stored as a sibling).
func (s *Server) persistResult(blob *resultBlob) error {
	if err := s.store.PutResult(blob.key, blob.data); err != nil {
		return fmt.Errorf("persisting result: %w", err)
	}
	blob.persistable = true
	return nil
}

// Cancel aborts a job. Queued jobs terminate immediately; running jobs
// stop at their next period boundary (harness.SweepContext semantics).
// Terminal jobs return an error.
func (s *Server) Cancel(id string) (JobStatus, error) {
	job, ok := s.job(id)
	if !ok {
		return JobStatus{}, errNotFound
	}
	job.mu.Lock()
	switch job.status {
	case StatusQueued:
		// Claim the terminal transition while holding the lock: the worker
		// that later pops this job observes the non-queued status under
		// the same mutex and skips it, so finish-style bookkeeping here
		// cannot double with the worker's.
		job.status = StatusCancelled
		job.errMsg = "job cancelled before it started"
		job.finished = time.Now()
		job.mu.Unlock()
		job.traceAdd(obs.StageResponded)
		job.completeStream(StatusCancelled)
		s.journal(store.JobRecord{Op: store.OpAborted, ID: job.ID, Key: job.Key, Trace: job.traceID(),
			Error: "job cancelled before it started", FinishedAt: time.Now().UnixNano()})
		s.logCompletion(job)
		s.dropInflight(job)
		return job.Snapshot(false), nil
	case StatusRunning:
		cancel := job.cancel
		job.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return job.Snapshot(false), nil
	default:
		st := job.statusLocked(false)
		job.mu.Unlock()
		return st, fmt.Errorf("job %s is already %s", id, st.Status)
	}
}
