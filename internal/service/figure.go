package service

import (
	"fmt"
	"io"
	"net/http"
	"strconv"

	"odeproto/internal/plot"
)

// handleFigure renders a finished job's trajectories as a self-contained
// SVG line chart: one line per protocol state, per-period counts on the
// y-axis. Multi-seed jobs render run 0 (the full data is in the JSON
// result).
func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errNotFound)
		return
	}
	st := s.snapshotJob(job, true)
	if st.Status != StatusDone || st.Result == nil {
		writeError(w, http.StatusConflict,
			fmt.Errorf("job %s is %s; figures render once it is done", st.ID, st.Status))
		return
	}
	// A done job's figure is a pure function of the job ID (the title) and
	// its immutable result, so the composite is a strong ETag — checked
	// before the render, which is the expensive part of this endpoint.
	etag := `"f:` + st.ID + `:` + st.CacheKey + `"`
	w.Header().Set("ETag", etag)
	if ifNoneMatchHit(r, etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	res := st.Result
	if len(res.Runs) == 0 || len(res.Runs[0].Rows) == 0 {
		writeError(w, http.StatusConflict, fmt.Errorf("job %s recorded no rows", st.ID))
		return
	}
	run := res.Runs[0]
	chart := plot.NewChart(
		fmt.Sprintf("%s · %s engine · N=%d · seed %d", st.ID, st.Engine, st.N, run.Seed),
		"period", "processes")
	xs := make([]float64, len(run.Rows))
	for i, row := range run.Rows {
		xs[i] = float64(row.Period)
	}
	for si, state := range res.States {
		ys := make([]float64, len(run.Rows))
		for i, row := range run.Rows {
			ys[i] = float64(row.Counts[si])
		}
		chart.AddLine(state, xs, ys)
	}
	svg := chart.SVG()
	w.Header().Set("Content-Type", "image/svg+xml")
	w.Header().Set("Content-Length", strconv.Itoa(len(svg)))
	w.WriteHeader(http.StatusOK)
	_, _ = io.WriteString(w, svg)
}
