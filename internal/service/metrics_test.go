package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"odeproto/internal/obs"
)

// scrapeMetrics fetches and parses GET /metrics.
func scrapeMetrics(t *testing.T, base string) map[string]*obs.MetricFamily {
	t.Helper()
	resp, data := doJSON(t, http.MethodGet, base+"/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d %s", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("metrics content type %q", ct)
	}
	fams, err := obs.ParseExposition(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("malformed exposition: %v\n%s", err, data)
	}
	return fams
}

func sampleValue(t *testing.T, fams map[string]*obs.MetricFamily, name string, labels map[string]string) float64 {
	t.Helper()
	fam, ok := fams[strings.TrimSuffix(strings.TrimSuffix(name, "_count"), "_sum")]
	if !ok {
		fam, ok = fams[name]
	}
	if !ok {
		t.Fatalf("family %s not exposed", name)
	}
	v, ok := fam.Value(name, labels)
	if !ok {
		t.Fatalf("no sample %s%v in family %s", name, labels, fam.Name)
	}
	return v
}

// TestStatsMetricsOneSource pins the flight recorder's one-source-of-
// truth contract: every counter in the GET /v1/stats JSON is the same
// registry value GET /metrics renders, observed here across a cache miss
// (real sweep) and a cache hit (answered on arrival).
func TestStatsMetricsOneSource(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	// Miss: the first submission runs a sweep.
	resp, data := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", smallSpec())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, data)
	}
	if tid := resp.Header.Get(obs.TraceHeader); !obs.ValidTraceID(tid) {
		t.Fatalf("submit response carries no valid %s header: %q", obs.TraceHeader, tid)
	}
	first := decodeStatus(t, data)
	waitStatus(t, ts.URL, first.ID, StatusDone, 30*time.Second)

	// Hit: the identical spec is answered done-on-arrival.
	resp, data = doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", smallSpec())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("duplicate submit: %d %s", resp.StatusCode, data)
	}

	fams := scrapeMetrics(t, ts.URL)
	resp, data = doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d %s", resp.StatusCode, data)
	}
	var st Stats
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}

	// Counters the JSON view must read back from the registry verbatim.
	for _, tc := range []struct {
		metric string
		json   float64
	}{
		{"odeproto_sweeps_executed_total", float64(st.SweepsExecuted)},
		{"odeproto_jobs_coalesced_total", float64(st.CoalescedJobs)},
		{"odeproto_cache_hits_total", float64(st.Cache.Hits)},
		{"odeproto_cache_misses_total", float64(st.Cache.Misses)},
		{"odeproto_result_disk_hits_total", float64(st.ResultDiskHits)},
		{"odeproto_store_errors_total", float64(st.StoreErrors)},
		{"odeproto_queue_depth", float64(st.QueueDepth)},
		{"odeproto_queue_capacity", float64(st.QueueCapacity)},
		{"odeproto_cache_size", float64(st.Cache.Size)},
		{"odeproto_cache_capacity", float64(st.Cache.Max)},
		{"odeproto_warmed_results", float64(st.WarmedResults)},
		{"odeproto_resumed_jobs", float64(st.ResumedJobs)},
	} {
		if got := sampleValue(t, fams, tc.metric, nil); got != tc.json {
			t.Errorf("%s = %g, /v1/stats says %g", tc.metric, got, tc.json)
		}
	}
	if got := sampleValue(t, fams, "odeproto_jobs_submitted_total", nil); got != 2 {
		t.Errorf("jobs_submitted_total = %g after two submissions", got)
	}
	if st.SweepsExecuted != 1 {
		t.Errorf("sweeps_executed = %d (hit re-ran the sweep?)", st.SweepsExecuted)
	}
	if st.Cache.Hits < 1 || st.Cache.Misses < 1 {
		t.Errorf("cache hits/misses = %d/%d, want at least one of each", st.Cache.Hits, st.Cache.Misses)
	}

	// The histograms recorded the one real run: queue wait once (the hit
	// never queued), sweep latency once under the normalized engine+mode
	// labels, both with monotone cumulative buckets.
	for _, h := range []string{"odeproto_queue_wait_seconds", "odeproto_sweep_latency_seconds"} {
		fam, ok := fams[h]
		if !ok {
			t.Fatalf("histogram %s not exposed", h)
		}
		if _, err := obs.CheckHistogram(fam); err != nil {
			t.Errorf("%s: %v", h, err)
		}
	}
	if got := sampleValue(t, fams, "odeproto_queue_wait_seconds_count", nil); got != 1 {
		t.Errorf("queue_wait count = %g, want 1", got)
	}
	latLabels := map[string]string{"engine": "agent", "mode": ""}
	if got := sampleValue(t, fams, "odeproto_sweep_latency_seconds_count", latLabels); got != 1 {
		t.Errorf("sweep_latency{engine=agent} count = %g, want 1", got)
	}

	// The trace endpoint reports every lifecycle span of the real run, in
	// submission order.
	resp, data = doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+first.ID+"/trace", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace: %d %s", resp.StatusCode, data)
	}
	var tr TraceStatus
	if err := json.Unmarshal(data, &tr); err != nil {
		t.Fatal(err)
	}
	if !obs.ValidTraceID(tr.Trace) {
		t.Fatalf("trace endpoint returned invalid trace ID %q", tr.Trace)
	}
	want := []string{obs.StageQueued, obs.StageCompiled, obs.StageSwept, obs.StagePersisted, obs.StageResponded}
	if len(tr.Spans) != len(want) {
		t.Fatalf("trace spans = %+v, want stages %v", tr.Spans, want)
	}
	for i, sp := range tr.Spans {
		if sp.Stage != want[i] {
			t.Fatalf("span %d = %q, want %q (all: %+v)", i, sp.Stage, want[i], tr.Spans)
		}
		if i > 0 && sp.ElapsedMS < tr.Spans[i-1].ElapsedMS {
			t.Fatalf("span offsets not monotone: %+v", tr.Spans)
		}
	}

	// A job that never existed — and one whose recovery predates tracing —
	// both 404 rather than fabricate spans.
	if resp, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/zzz/trace", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("trace of unknown job: %d", resp.StatusCode)
	}
}
