package service

import (
	"encoding/json"
	"sync"
)

// StreamRow is one NDJSON line of GET /v1/jobs/{id}/stream: the per-state
// counts observed at the end of one recorded period of one run. Rows from
// different runs of a multi-seed job interleave in arrival order (the
// final JobResult is deterministic; the live interleaving is not).
type StreamRow struct {
	Run    int    `json:"run"`
	Seed   int64  `json:"seed"`
	Period int    `json:"period"`
	Counts []int  `json:"counts"`
	Killed int    `json:"killed,omitempty"`
	Event  string `json:"event,omitempty"` // "done" | "cancelled" | "failed" on the terminal row
}

// renderRow marshals one stream row with its trailing newline, so a row is
// one complete NDJSON line — and one Write — from the moment it exists.
func renderRow(row StreamRow) []byte {
	data, err := json.Marshal(row)
	if err != nil {
		// StreamRow contains only marshalable fields; unreachable.
		panic("service: stream row marshal: " + err.Error())
	}
	return append(data, '\n')
}

// rowBuffer accumulates rendered stream rows (each newline-terminated) and
// wakes blocked stream readers as rows arrive. Closed exactly once, when
// the job reaches a terminal state. A buffer for an already-finished
// result holds a deferred replay instead (replayBlob): nothing is decoded
// or rendered until the first /stream reader materializes it.
type rowBuffer struct {
	mu     sync.Mutex
	cond   *sync.Cond
	rows   [][]byte
	closed bool
	lazy   func() [][]byte // deferred replay; rendered by materialize()
}

func newRowBuffer() *rowBuffer {
	b := &rowBuffer{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// append renders and appends one row, waking all waiting readers.
func (b *rowBuffer) append(row StreamRow) {
	data := renderRow(row)
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.rows = append(b.rows, data)
	b.cond.Broadcast()
}

// appendRendered appends already-rendered rows (each newline-terminated,
// typically resultBlob.streamRows' shared memoized slice — the rows are
// only read, never mutated), waking all waiting readers.
func (b *rowBuffer) appendRendered(rows [][]byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.rows = append(b.rows, rows...)
	b.cond.Broadcast()
}

// closeBuf marks the stream complete and wakes all readers.
func (b *rowBuffer) closeBuf() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	b.cond.Broadcast()
}

// wait blocks until more than have rows exist, the buffer is closed, or
// giveUp returns true (checked each wakeup; pair it with a goroutine that
// Broadcasts when the caller's context ends). It returns the full row
// slice and whether the buffer is closed.
func (b *rowBuffer) wait(have int, giveUp func() bool) ([][]byte, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.rows) <= have && !b.closed && !giveUp() {
		b.cond.Wait()
	}
	return b.rows, b.closed
}

// replayBlob seals the buffer behind a deferred replay of an
// already-finished result — so /stream behaves identically for cache hits
// and jobs recovered from the durable store — without decoding or
// rendering anything now: a warmed daemon may hold hundreds of blobs that
// are never streamed. A nil blob (a recovered job whose blob was never
// persisted or has gone cold) replays just the terminal event row.
func (b *rowBuffer) replayBlob(blob *resultBlob, terminal Status) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.lazy = func() [][]byte {
		var rows [][]byte
		if blob != nil {
			rows = blob.streamRows()
		}
		// Full slice expression: the append must copy, not scribble past the
		// end of the blob's shared memoized slice.
		return append(rows[:len(rows):len(rows)], renderRow(StreamRow{Event: string(terminal), Period: -1}))
	}
}

// materialize renders a deferred replay into the buffer; a no-op for live
// buffers. handleStream calls it before reading, so only streamed jobs pay
// the render. Concurrent callers are safe: one renders (outside the lock —
// the work is memoized on the blob), the rest find no pending replay and
// block in wait until the broadcast.
func (b *rowBuffer) materialize() {
	b.mu.Lock()
	fill := b.lazy
	b.lazy = nil
	b.mu.Unlock()
	if fill == nil {
		return
	}
	rows := fill()
	b.mu.Lock()
	b.rows = rows
	b.closed = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// broadcast wakes all waiting readers without changing state.
func (b *rowBuffer) broadcast() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.cond.Broadcast()
}

// snapshotLen returns the current row count (0 for a sealed replay no
// reader has materialized yet).
func (b *rowBuffer) snapshotLen() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.rows)
}
