package service

import (
	"encoding/json"
	"sync"
)

// StreamRow is one NDJSON line of GET /v1/jobs/{id}/stream: the per-state
// counts observed at the end of one recorded period of one run. Rows from
// different runs of a multi-seed job interleave in arrival order (the
// final JobResult is deterministic; the live interleaving is not).
type StreamRow struct {
	Run    int    `json:"run"`
	Seed   int64  `json:"seed"`
	Period int    `json:"period"`
	Counts []int  `json:"counts"`
	Killed int    `json:"killed,omitempty"`
	Event  string `json:"event,omitempty"` // "done" | "cancelled" | "failed" on the terminal row
}

// rowBuffer accumulates marshaled stream rows and wakes blocked stream
// readers as rows arrive. Closed exactly once, when the job reaches a
// terminal state.
type rowBuffer struct {
	mu     sync.Mutex
	cond   *sync.Cond
	rows   [][]byte
	closed bool
}

func newRowBuffer() *rowBuffer {
	b := &rowBuffer{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// append marshals and appends one row, waking all waiting readers.
func (b *rowBuffer) append(row StreamRow) {
	data, err := json.Marshal(row)
	if err != nil {
		// StreamRow contains only marshalable fields; unreachable.
		panic("service: stream row marshal: " + err.Error())
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.rows = append(b.rows, data)
	b.cond.Broadcast()
}

// closeBuf marks the stream complete and wakes all readers.
func (b *rowBuffer) closeBuf() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	b.cond.Broadcast()
}

// wait blocks until more than have rows exist, the buffer is closed, or
// giveUp returns true (checked each wakeup; pair it with a goroutine that
// Broadcasts when the caller's context ends). It returns the full row
// slice and whether the buffer is closed.
func (b *rowBuffer) wait(have int, giveUp func() bool) ([][]byte, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.rows) <= have && !b.closed && !giveUp() {
		b.cond.Wait()
	}
	return b.rows, b.closed
}

// replayResult fills the buffer from an already-finished result — so
// /stream behaves identically for cache hits and for jobs recovered from
// the durable store — then seals it with the terminal event row. A nil
// result (a recovered job whose blob was never persisted or has gone
// cold) yields just the terminal row.
func (b *rowBuffer) replayResult(res *JobResult, terminal Status) {
	if res != nil {
		fillRowsFromResult(b, res)
	}
	b.append(StreamRow{Event: string(terminal), Period: -1})
	b.closeBuf()
}

// broadcast wakes all waiting readers without changing state.
func (b *rowBuffer) broadcast() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.cond.Broadcast()
}

// snapshotLen returns the current row count.
func (b *rowBuffer) snapshotLen() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.rows)
}
