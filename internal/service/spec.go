package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"odeproto/internal/asyncnet"
	"odeproto/internal/harness"
	"odeproto/internal/ode"
)

// Engine names accepted by JobSpec.Engine. "sharded" is the agent engine
// with Shards ≥ 2 (the two spellings normalize to one cache identity).
const (
	EngineAgent     = "agent"
	EngineSharded   = "sharded"
	EngineAggregate = "aggregate"
	EngineAsyncnet  = "asyncnet"
)

// Asyncnet execution modes accepted by JobSpec.Mode (asyncnet jobs only).
const (
	ModeVirtual   = string(asyncnet.ModeVirtual)
	ModeWallclock = string(asyncnet.ModeWallclock)
)

// EventSpec schedules one perturbation, applied before the Step of period
// At (harness.Event semantics: At must lie in [0, periods)).
type EventSpec struct {
	At   int     `json:"at"`
	Kind string  `json:"kind"` // kill-fraction | kill | revive | freeze | unfreeze
	Frac float64 `json:"frac,omitempty"`
	Proc int     `json:"proc,omitempty"`
	// State is the rejoin state for revive events.
	State string `json:"state,omitempty"`
}

// perturbation converts the wire form to a harness perturbation.
func (e EventSpec) perturbation() (harness.Perturbation, error) {
	switch e.Kind {
	case harness.KillFraction.String():
		if e.Frac < 0 || e.Frac > 1 {
			return harness.Perturbation{}, fmt.Errorf("kill-fraction frac %v outside [0,1]", e.Frac)
		}
		return harness.Perturbation{Kind: harness.KillFraction, Frac: e.Frac}, nil
	case harness.Kill.String():
		return harness.Perturbation{Kind: harness.Kill, Proc: e.Proc}, nil
	case harness.Revive.String():
		if e.State == "" {
			return harness.Perturbation{}, fmt.Errorf("revive event needs a state")
		}
		return harness.Perturbation{Kind: harness.Revive, Proc: e.Proc, State: ode.Var(e.State)}, nil
	case harness.Freeze.String():
		return harness.Perturbation{Kind: harness.Freeze, Proc: e.Proc}, nil
	case harness.Unfreeze.String():
		return harness.Perturbation{Kind: harness.Unfreeze, Proc: e.Proc}, nil
	default:
		return harness.Perturbation{}, fmt.Errorf("unknown event kind %q", e.Kind)
	}
}

// JobSpec is the body of POST /v1/jobs: the compile prefix (same fields as
// CompileRequest, minus the flow point) plus the sweep to run on the
// compiled protocol.
type JobSpec struct {
	Source      string             `json:"source"`
	Params      map[string]float64 `json:"params,omitempty"`
	P           float64            `json:"p,omitempty"`
	FailureRate float64            `json:"failure_rate,omitempty"`
	NoRewrite   bool               `json:"no_rewrite,omitempty"`
	Slack       string             `json:"slack,omitempty"`

	// Engine selects the simulation substrate: agent, sharded (agent with
	// Shards ≥ 2), aggregate, or asyncnet. Default agent.
	Engine string `json:"engine,omitempty"`
	// Mode selects the asyncnet execution substrate: "virtual" (the
	// default — the deterministic virtual-time discrete-event scheduler,
	// whose results are cacheable) or "wallclock" (real goroutines and
	// timers; nondeterministic, never cached). Only meaningful with
	// engine "asyncnet".
	Mode string `json:"mode,omitempty"`
	// N is the group size.
	N int `json:"n"`
	// Initial gives starting counts per state; keys must be protocol
	// states and values must sum to N (missing states default to 0). An
	// empty map selects a uniform split with the remainder on the first
	// state.
	Initial map[string]int `json:"initial,omitempty"`
	// Periods is the protocol-period horizon.
	Periods int `json:"periods"`
	// Seed is the base RNG seed (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Seeds replicates the run across this many seeds (default 1). With
	// Seeds > 1, run i uses harness.DeriveSeed(Seed, i); with Seeds == 1
	// the base seed is used directly.
	Seeds int `json:"seeds,omitempty"`
	// Shards is the agent engine's RNG shard count K. The shard count is
	// part of the determinism contract — results are byte-identical for a
	// fixed (seed, K) at any worker count, and K is therefore part of the
	// cache key. 0 normalizes to 1 (serial).
	Shards int `json:"shards,omitempty"`
	// RecordEvery samples the per-period counts every this many periods
	// (default 1; the final period is always recorded).
	RecordEvery int `json:"record_every,omitempty"`
	// Events are the perturbation schedule, shared by every run.
	Events []EventSpec `json:"events,omitempty"`
}

// compileRequest extracts the compile prefix of the spec.
func (s *JobSpec) compileRequest() CompileRequest {
	return CompileRequest{
		Source:      s.Source,
		Params:      s.Params,
		P:           s.P,
		FailureRate: s.FailureRate,
		NoRewrite:   s.NoRewrite,
		Slack:       s.Slack,
	}
}

// seedFor returns the seed of run i under the spec's replication rule.
func (s *JobSpec) seedFor(i int) int64 {
	if s.Seeds <= 1 {
		return s.Seed
	}
	return harness.DeriveSeed(s.Seed, i)
}

// Limits bound what a single job may ask of the service.
type Limits struct {
	MaxN       int
	MaxPeriods int
	MaxSeeds   int
	MaxShards  int
	// MaxRows bounds the total recorded observations of one job —
	// ceil(periods/record_every) rows per run times seeds. Every row is
	// held in memory twice (result slice + marshaled stream buffer), so
	// without this cap a single request within the other limits could
	// still exhaust the daemon's memory.
	MaxRows int
}

// defaultLimits are applied when a Config leaves Limits zero.
var defaultLimits = Limits{
	MaxN:       5_000_000,
	MaxPeriods: 1_000_000,
	MaxSeeds:   1024,
	MaxShards:  1024,
	MaxRows:    2_000_000,
}

// normalize applies defaults in place so that equivalent specs share one
// canonical form (and therefore one cache key), then validates the spec
// against the compiled protocol and the limits. It returns the compile
// output so submission does not compile twice.
func (s *JobSpec) normalize(lim Limits) (*compiled, error) {
	if s.Slack == "" {
		s.Slack = "z"
	}
	if s.Engine == "" {
		s.Engine = EngineAgent
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Seeds <= 0 {
		s.Seeds = 1
	}
	if s.RecordEvery <= 0 {
		s.RecordEvery = 1
	}
	switch s.Engine {
	case EngineAgent:
		if s.Shards <= 0 {
			s.Shards = 1
		}
	case EngineSharded:
		if s.Shards < 2 {
			return nil, fmt.Errorf("engine %q needs shards >= 2 (got %d)", EngineSharded, s.Shards)
		}
		s.Engine = EngineAgent // one cache identity for agent-with-K and sharded
	case EngineAggregate, EngineAsyncnet:
		if s.Shards != 0 {
			return nil, fmt.Errorf("engine %q does not shard", s.Engine)
		}
	default:
		return nil, fmt.Errorf("unknown engine %q (want agent, sharded, aggregate, or asyncnet)", s.Engine)
	}
	if s.Engine == EngineAsyncnet {
		mode, err := asyncnet.Mode(s.Mode).Normalize()
		if err != nil {
			return nil, err
		}
		s.Mode = string(mode)
	} else if s.Mode != "" {
		return nil, fmt.Errorf("mode %q is only meaningful for engine %q", s.Mode, EngineAsyncnet)
	}
	if len(s.Params) == 0 {
		s.Params = nil
	}
	if s.N < 1 {
		return nil, fmt.Errorf("n must be >= 1 (got %d)", s.N)
	}
	if s.Periods < 1 {
		return nil, fmt.Errorf("periods must be >= 1 (got %d)", s.Periods)
	}
	if lim.MaxN > 0 && s.N > lim.MaxN {
		return nil, fmt.Errorf("n %d exceeds the service limit %d", s.N, lim.MaxN)
	}
	if lim.MaxPeriods > 0 && s.Periods > lim.MaxPeriods {
		return nil, fmt.Errorf("periods %d exceeds the service limit %d", s.Periods, lim.MaxPeriods)
	}
	if lim.MaxSeeds > 0 && s.Seeds > lim.MaxSeeds {
		return nil, fmt.Errorf("seeds %d exceeds the service limit %d", s.Seeds, lim.MaxSeeds)
	}
	if lim.MaxShards > 0 && s.Shards > lim.MaxShards {
		return nil, fmt.Errorf("shards %d exceeds the service limit %d", s.Shards, lim.MaxShards)
	}
	if s.Shards > s.N {
		return nil, fmt.Errorf("shards %d exceeds the group size %d", s.Shards, s.N)
	}
	if lim.MaxRows > 0 {
		rowsPerRun := (s.Periods + s.RecordEvery - 1) / s.RecordEvery
		if rows := rowsPerRun * s.Seeds; rows > lim.MaxRows {
			return nil, fmt.Errorf("job would record %d rows (periods/record_every × seeds), exceeding the service limit %d; raise record_every or lower seeds/periods", rows, lim.MaxRows)
		}
	}

	comp, err := compilePipeline(s.compileRequest())
	if err != nil {
		return nil, err
	}

	// Initial counts: keys must be protocol states, values sum to N.
	// Zero entries are dropped so that {"x":100} and {"x":100,"y":0}
	// share one canonical form.
	if len(s.Initial) > 0 {
		sum := 0
		for k, v := range s.Initial {
			if v < 0 {
				return nil, fmt.Errorf("initial count for %q is negative", k)
			}
			if !comp.proto.HasState(ode.Var(k)) {
				return nil, fmt.Errorf("initial state %q is not a protocol state %v", k, comp.proto.States)
			}
			if v == 0 {
				delete(s.Initial, k)
			}
			sum += v
		}
		if sum != s.N {
			return nil, fmt.Errorf("initial counts sum to %d, want n = %d", sum, s.N)
		}
	}
	if len(s.Initial) == 0 {
		s.Initial = nil
	}

	for i, e := range s.Events {
		if e.At < 0 || e.At >= s.Periods {
			return nil, fmt.Errorf("event %d at period %d outside [0, %d)", i, e.At, s.Periods)
		}
		p, err := e.perturbation()
		if err != nil {
			return nil, fmt.Errorf("event %d: %w", i, err)
		}
		switch s.Engine {
		case EngineAggregate:
			if p.Kind != harness.KillFraction {
				return nil, fmt.Errorf("event %d: the aggregate engine only supports kill-fraction", i)
			}
		case EngineAsyncnet:
			return nil, fmt.Errorf("event %d: the asyncnet engine supports no perturbations", i)
		}
		if p.Kind == harness.Revive && !comp.proto.HasState(p.State) {
			return nil, fmt.Errorf("event %d: revive state %q is not a protocol state", i, p.State)
		}
		// Per-process events index into the engine's process table; an
		// out-of-range index would panic a worker goroutine.
		switch p.Kind {
		case harness.Kill, harness.Revive, harness.Freeze, harness.Unfreeze:
			if p.Proc < 0 || p.Proc >= s.N {
				return nil, fmt.Errorf("event %d: proc %d outside the group [0, %d)", i, p.Proc, s.N)
			}
		}
	}
	if len(s.Events) == 0 {
		s.Events = nil
	}
	return comp, nil
}

// cacheKeySpec is the canonical content the cache key hashes. The system
// field is the parsed input's canonical rendering, so formatting and
// comment differences in the DSL source do not split the cache (parameter
// values are folded into the rendered coefficients at parse time); maps
// marshal with sorted keys (encoding/json's documented behavior).
type cacheKeySpec struct {
	Version     int            `json:"v"`
	System      string         `json:"system"`
	P           float64        `json:"p"`
	FailureRate float64        `json:"failure_rate"`
	NoRewrite   bool           `json:"no_rewrite"`
	Slack       string         `json:"slack"`
	Engine      string         `json:"engine"`
	Mode        string         `json:"mode"`
	N           int            `json:"n"`
	Initial     map[string]int `json:"initial"`
	Periods     int            `json:"periods"`
	Seed        int64          `json:"seed"`
	Seeds       int            `json:"seeds"`
	Shards      int            `json:"shards"`
	RecordEvery int            `json:"record_every"`
	Events      []EventSpec    `json:"events"`
}

// cacheKey derives the content address of a normalized spec: the SHA-256
// of the canonical JSON encoding of everything that determines the job's
// output. The shard count K is deliberately part of the key — output is
// byte-identical for a fixed (seed, K) but different K are different RNG
// streams. The asyncnet mode is part of the key for the same reason
// (virtual and wallclock are different executions of the model; only the
// virtual one is a function of the spec at all). Version 2 added the
// mode field.
func (s *JobSpec) cacheKey(comp *compiled) string {
	ks := cacheKeySpec{
		Version:     2,
		System:      comp.input.String(),
		P:           s.P,
		FailureRate: s.FailureRate,
		NoRewrite:   s.NoRewrite,
		Slack:       s.Slack,
		Engine:      s.Engine,
		Mode:        s.Mode,
		N:           s.N,
		Initial:     s.Initial,
		Periods:     s.Periods,
		Seed:        s.Seed,
		Seeds:       s.Seeds,
		Shards:      s.Shards,
		RecordEvery: s.RecordEvery,
		Events:      s.Events,
	}
	data, err := json.Marshal(ks)
	if err != nil {
		// cacheKeySpec contains only marshalable types; this is unreachable.
		panic(fmt.Sprintf("service: cache key marshal: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// cacheable reports whether the spec's results may be served from the
// content-addressed cache. Only the deterministic engines qualify. Since
// the virtual-time scheduler landed, that includes asyncnet in its
// default "virtual" mode; the one remaining exception is wallclock-mode
// asyncnet, which schedules real goroutines against wall-clock timers,
// so its output is not a pure function of the spec.
func (s *JobSpec) cacheable() bool {
	return s.Engine != EngineAsyncnet || s.Mode != ModeWallclock
}
