package service

import (
	"encoding/json"
	"fmt"
	"sync"

	"odeproto/internal/core"
	"odeproto/internal/ode"
	"odeproto/internal/rewrite"
)

// CompileRequest is the body of POST /v1/compile and the compile prefix of
// a job spec: an equation system in the text DSL plus translation options.
type CompileRequest struct {
	// Source is the equation system in the text DSL, one equation per
	// line (e.g. "x' = -beta*x*y + alpha*z").
	Source string `json:"source"`
	// Params gives values for identifiers that are parameters rather than
	// variables.
	Params map[string]float64 `json:"params,omitempty"`
	// P fixes the normalizing constant p; 0 selects the largest valid p.
	P float64 `json:"p,omitempty"`
	// FailureRate is the compensated per-connection failure rate f.
	FailureRate float64 `json:"failure_rate,omitempty"`
	// NoRewrite disables the §7 rewriting pipeline; non-mappable systems
	// then fail instead of being completed/homogenized/split.
	NoRewrite bool `json:"no_rewrite,omitempty"`
	// Slack names the slack variable introduced by rewriting (default "z").
	Slack string `json:"slack,omitempty"`
	// FlowPoint, when non-empty, selects the occupancy point at which the
	// compile response reports the protocol's expected per-period drift;
	// the default is the uniform point over the compiled states.
	FlowPoint map[string]float64 `json:"flow_point,omitempty"`
}

// ActionJSON is the wire form of one protocol action.
type ActionJSON struct {
	Kind        string   `json:"kind"`
	Owner       string   `json:"owner"`
	Coin        float64  `json:"coin"`
	Samples     []string `json:"samples,omitempty"`
	From        string   `json:"from"`
	To          string   `json:"to"`
	TermCoef    float64  `json:"term_coef,omitempty"`
	Description string   `json:"description"`
}

// ProtocolJSON is the wire form of a compiled protocol.
type ProtocolJSON struct {
	States      []string     `json:"states"`
	P           float64      `json:"p"`
	FailureRate float64      `json:"failure_rate,omitempty"`
	Actions     []ActionJSON `json:"actions"`
}

// CompileResponse is the body returned by POST /v1/compile.
type CompileResponse struct {
	// Taxonomy classifies the input system against the paper's §2 classes.
	Taxonomy string `json:"taxonomy"`
	// System is the parsed input system, canonically formatted.
	System string `json:"system"`
	// Rewritten reports whether the §7 pipeline ran; RewrittenSystem then
	// holds the mappable form that was translated.
	Rewritten       bool   `json:"rewritten"`
	RewrittenSystem string `json:"rewritten_system,omitempty"`
	// RewrittenTaxonomy classifies the translated system.
	RewrittenTaxonomy string `json:"rewritten_taxonomy,omitempty"`
	// Protocol is the compiled protocol.
	Protocol ProtocolJSON `json:"protocol"`
	// ExpectedFlow is the protocol's exact expected per-period drift at
	// FlowPoint (Theorem 1/5's p·f̄(X̄)).
	ExpectedFlow map[string]float64 `json:"expected_flow"`
	// FlowPoint is the occupancy point ExpectedFlow was evaluated at.
	FlowPoint map[string]float64 `json:"flow_point"`
	// SamplingMessages gives each state's per-period sampling message
	// count (the §3 message-complexity measure).
	SamplingMessages map[string]int `json:"sampling_messages"`
}

// compiled is the in-memory output of the compile pipeline, shared between
// the compile endpoint and job submission.
type compiled struct {
	input     *ode.System
	taxonomy  ode.Class
	rewritten bool
	final     *ode.System
	proto     *core.Protocol
}

// compileCacheCap bounds the memoized compile results. Compilation is
// pure, so the whole cache is dropped (rather than LRU-tracked) on
// overflow; a working set larger than this is re-derivable.
const compileCacheCap = 256

var compileCache struct {
	mu sync.Mutex
	m  map[string]*compiled
}

// compileMemoKey is the canonical identity of a compile request. FlowPoint
// is excluded: it only affects the compile *response* rendering, not the
// compiled artifact.
func compileMemoKey(req CompileRequest) (string, bool) {
	req.FlowPoint = nil
	b, err := json.Marshal(req) // map keys marshal sorted, so this is canonical
	if err != nil {
		return "", false
	}
	return string(b), true
}

// compilePipeline memoizes compilePipelineUncached. A *compiled is
// immutable after construction and already shared between coalesced jobs,
// so handing the same pointer to every equivalent request is safe. This
// matters most in a cluster, where a routed submission compiles the spec
// on the ingress node (to derive its routing key) and again on the owner.
func compilePipeline(req CompileRequest) (*compiled, error) {
	key, ok := compileMemoKey(req)
	if !ok {
		return compilePipelineUncached(req)
	}
	compileCache.mu.Lock()
	c := compileCache.m[key]
	compileCache.mu.Unlock()
	if c != nil {
		return c, nil
	}
	c, err := compilePipelineUncached(req)
	if err != nil {
		return nil, err
	}
	compileCache.mu.Lock()
	if len(compileCache.m) >= compileCacheCap {
		compileCache.m = nil
	}
	if compileCache.m == nil {
		compileCache.m = make(map[string]*compiled)
	}
	compileCache.m[key] = c
	compileCache.mu.Unlock()
	return c, nil
}

// compilePipelineUncached runs parse → classify → (rewrite) → translate.
// All failures are input errors (the caller maps them to 400s).
func compilePipelineUncached(req CompileRequest) (*compiled, error) {
	if req.Source == "" {
		return nil, fmt.Errorf("missing source")
	}
	slack := req.Slack
	if slack == "" {
		slack = "z"
	}
	sys, err := ode.Parse(req.Source, req.Params)
	if err != nil {
		return nil, err
	}
	out := &compiled{input: sys, taxonomy: sys.Classify(), final: sys}
	if !out.taxonomy.Mappable() {
		if req.NoRewrite {
			return nil, fmt.Errorf("system is not mappable (%s) and rewriting is disabled", out.taxonomy)
		}
		rewritten, err := rewrite.MakeMappable(sys, ode.Var(slack))
		if err != nil {
			return nil, fmt.Errorf("rewriting failed: %w", err)
		}
		out.rewritten = true
		out.final = rewritten
	}
	proto, err := core.Translate(out.final, core.Options{P: req.P, FailureRate: req.FailureRate})
	if err != nil {
		return nil, err
	}
	out.proto = proto
	return out, nil
}

// protocolJSON converts a compiled protocol to its wire form.
func protocolJSON(p *core.Protocol) ProtocolJSON {
	out := ProtocolJSON{
		P:           p.P,
		FailureRate: p.FailureRate,
		States:      make([]string, len(p.States)),
		Actions:     make([]ActionJSON, len(p.Actions)),
	}
	for i, s := range p.States {
		out.States[i] = string(s)
	}
	for i, a := range p.Actions {
		aj := ActionJSON{
			Kind:        a.Kind.String(),
			Owner:       string(a.Owner),
			Coin:        a.Coin,
			From:        string(a.From),
			To:          string(a.To),
			TermCoef:    a.TermCoef,
			Description: a.String(),
		}
		for _, s := range a.Samples {
			aj.Samples = append(aj.Samples, string(s))
		}
		out.Actions[i] = aj
	}
	return out
}

// compileResponse assembles the full compile endpoint response.
func compileResponse(req CompileRequest, c *compiled) CompileResponse {
	resp := CompileResponse{
		Taxonomy:  c.taxonomy.String(),
		System:    c.input.String(),
		Rewritten: c.rewritten,
		Protocol:  protocolJSON(c.proto),
	}
	if c.rewritten {
		resp.RewrittenSystem = c.final.String()
		resp.RewrittenTaxonomy = c.final.Classify().String()
	}
	point := make(map[ode.Var]float64, len(c.proto.States))
	if len(req.FlowPoint) > 0 {
		for k, v := range req.FlowPoint {
			point[ode.Var(k)] = v
		}
	} else {
		for _, s := range c.proto.States {
			point[s] = 1 / float64(len(c.proto.States))
		}
	}
	flow := c.proto.ExpectedFlow(point)
	resp.ExpectedFlow = make(map[string]float64, len(flow))
	for k, v := range flow {
		resp.ExpectedFlow[string(k)] = v
	}
	resp.FlowPoint = make(map[string]float64, len(point))
	for k, v := range point {
		resp.FlowPoint[string(k)] = v
	}
	resp.SamplingMessages = make(map[string]int, len(c.proto.States))
	for _, s := range c.proto.States {
		resp.SamplingMessages[string(s)] = c.proto.SamplingMessages(s)
	}
	return resp
}
