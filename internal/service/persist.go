package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"odeproto/internal/obs"
	"odeproto/internal/store"
)

// journal appends one lifecycle record to the durable store. Journaling is
// best-effort — a failed append is counted in /v1/stats rather than
// failing the request — but result persistence is not (see runJob: a
// result that cannot be stored fails its job instead of claiming done).
func (s *Server) journal(rec store.JobRecord) {
	if err := s.store.Append(rec); err != nil {
		s.met.storeErrs.Inc()
		s.log.Warn("wal append failed", "job", rec.ID, "op", string(rec.Op), "trace", rec.Trace, "err", err)
	}
}

// specJSON renders the normalized spec for the submitted WAL record.
func specJSON(spec *JobSpec) json.RawMessage {
	data, err := json.Marshal(spec)
	if err != nil {
		// JobSpec contains only marshalable types; unreachable.
		panic(fmt.Sprintf("service: spec marshal: %v", err))
	}
	return data
}

// lookupResult resolves a cache key via the LRU and then the durable
// result store, so completed sweeps survive restarts. The LRU hit/miss
// counters see the lookup (a disk hit therefore counts as both a cache
// miss and a disk hit); disk hits are promoted into the LRU.
func (s *Server) lookupResult(key string) (*resultBlob, bool) {
	if blob, ok := s.cache.get(key); ok {
		return blob, true
	}
	return s.resultFromStore(key)
}

// peekResult is lookupResult without touching the LRU hit/miss counters,
// for the worker's at-pickup re-check (that lookup retries a miss Submit
// already counted).
func (s *Server) peekResult(key string) (*resultBlob, bool) {
	if blob, ok := s.cache.peek(key); ok {
		return blob, true
	}
	return s.resultFromStore(key)
}

// resultFromStore loads a stored blob's bytes into the LRU without
// decoding them — a cheap json.Valid scan stands in for the old full
// unmarshal, since the bytes are spliced verbatim into response envelopes
// and must at least be well-formed JSON. The struct is decoded lazily,
// once, if a handler ever needs it.
func (s *Server) resultFromStore(key string) (*resultBlob, bool) {
	data, err := s.store.GetResult(key)
	if err != nil {
		// A plain miss is normal; an I/O failure or a blob the WAL claims
		// exists but cannot be read is a store fault worth counting.
		if !errors.Is(err, store.ErrNotFound) {
			s.met.storeErrs.Inc()
			s.log.Warn("result blob unreadable", "key", key, "err", err)
		}
		return nil, false
	}
	if !json.Valid(data) {
		s.met.storeErrs.Inc() // corrupt blob
		s.log.Warn("result blob corrupt", "key", key)
		return nil, false
	}
	s.met.diskHits.Inc()
	blob := newResultBlobFromBytes(key, data)
	blob.persistable = true // these bytes came from the store
	s.cache.put(key, blob)
	return blob, true
}

// restartableErr marks jobs the WAL caught mid-run: the sweep died with
// the previous process, but the spec is in the log and a resubmission
// reruns it.
const restartableErr = "interrupted by daemon restart; resubmit to retry"

// restartableJob pairs an interrupted job with its WAL-preserved spec,
// for the -resume-interrupted path.
type restartableJob struct {
	job  *Job
	spec JobSpec
}

// recoverJobs rebuilds the job table from the store's replayed WAL: job
// metadata and statuses return to /v1/jobs, the most recently finished
// results warm the LRU from disk (up to its capacity), and jobs that were
// queued or mid-run at crash time are marked failed-restartable — with
// that transition journaled, so the next recovery replays them as plain
// failures. It returns the interrupted jobs whose specs survived in the
// WAL, so New can resubmit them under Config.ResumeInterrupted. Runs
// once, from New, before the workers start.
func (s *Server) recoverJobs() []restartableJob {
	recovered := s.store.Recovered()
	if len(recovered) == 0 {
		return nil
	}

	// Choose which results to warm: newest finishers first, one load per
	// distinct key, bounded by the cache capacity.
	type finisher struct {
		key        string
		finishedAt int64
	}
	var finishers []finisher
	for _, rj := range recovered {
		if rj.Status == store.OpDone && rj.Key != "" {
			finishers = append(finishers, finisher{rj.Key, rj.FinishedAt})
		}
	}
	sort.SliceStable(finishers, func(i, j int) bool { return finishers[i].finishedAt > finishers[j].finishedAt })
	chosen := make([]string, 0, s.cfg.CacheSize)
	seen := make(map[string]bool)
	for _, f := range finishers {
		if len(chosen) == s.cfg.CacheSize {
			break
		}
		if !seen[f.key] {
			seen[f.key] = true
			chosen = append(chosen, f.key)
		}
	}
	// Load oldest-first so the newest result ends most recently used.
	// Warming loads bytes only — a json.Valid scan instead of an unmarshal
	// per blob — so startup cost is I/O, not decoding; blobs decode lazily
	// if a handler ever needs the struct.
	loaded := make(map[string]*resultBlob)
	for i := len(chosen) - 1; i >= 0; i-- {
		key := chosen[i]
		data, err := s.store.GetResult(key)
		if err != nil || !json.Valid(data) {
			continue
		}
		blob := newResultBlobFromBytes(key, data)
		blob.persistable = true
		s.cache.put(key, blob)
		loaded[key] = blob
	}
	s.warmed = len(loaded)

	now := time.Now()
	maxID := 0
	var restartable []restartableJob
	for _, rj := range recovered {
		job := &Job{ID: rj.ID, Key: rj.Key, rows: newRowBuffer(), done: make(chan struct{})}
		if obs.ValidTraceID(rj.Trace) {
			// Rebuild an approximate trail from the journaled timestamps:
			// the per-stage spans died with the previous process, but the
			// ID (and thus cross-node correlation) survives.
			job.trace = obs.NewTrace(rj.Trace, s.cfg.Node)
			if rj.SubmittedAt != 0 {
				job.trace.Add(obs.StageQueued, time.Unix(0, rj.SubmittedAt))
			}
			if rj.FinishedAt != 0 {
				job.trace.Add(obs.StageResponded, time.Unix(0, rj.FinishedAt))
			}
		}
		specOK := false
		if len(rj.Spec) > 0 {
			specOK = json.Unmarshal(rj.Spec, &job.spec) == nil
		}
		if rj.SubmittedAt != 0 {
			job.created = time.Unix(0, rj.SubmittedAt)
		}
		if rj.StartedAt != 0 {
			job.started = time.Unix(0, rj.StartedAt)
		}
		if rj.FinishedAt != 0 {
			job.finished = time.Unix(0, rj.FinishedAt)
		}
		var blob *resultBlob
		switch {
		case rj.Interrupted:
			job.status = StatusFailed
			job.errMsg = restartableErr
			job.finished = now
			s.journal(store.JobRecord{Op: store.OpFailed, ID: job.ID, Error: restartableErr, FinishedAt: now.UnixNano()})
			if specOK {
				restartable = append(restartable, restartableJob{job: job, spec: job.spec})
			}
		case rj.Status == store.OpDone:
			job.status = StatusDone
			job.cached = rj.Cached
			// Warmed blobs re-attach eagerly (bytes only — no decode);
			// colder ones reload from disk when something asks
			// (snapshotJob).
			blob = loaded[rj.Key]
			job.result = blob
		case rj.Status == store.OpFailed:
			job.status = StatusFailed
			job.errMsg = rj.Error
		case rj.Status == store.OpAborted:
			job.status = StatusCancelled
			job.errMsg = rj.Error
		}
		job.rows.replayBlob(blob, job.status)
		close(job.done)
		s.jobs[job.ID] = job
		s.order = append(s.order, job.ID)
		if n := s.idNumber(job.ID); n > maxID {
			maxID = n
		}
	}
	s.nextID = maxID
	s.log.Info("recovered jobs from store", "jobs", len(recovered),
		"warmed_results", s.warmed, "restartable", len(restartable))
	return restartable
}

// resumeInterrupted resubmits the jobs a crash caught queued or mid-run,
// instead of asking the client to retry them. It runs from New after
// recovery, before the workers start, so resubmissions queue exactly like
// client POSTs (including cache and single-flight semantics: a twin whose
// result did land on disk is answered without a sweep). The interrupted
// original keeps its failed status, with the error amended to name the
// replacement job.
func (s *Server) resumeInterrupted(restartable []restartableJob) {
	for _, r := range restartable {
		next, err := s.Submit(r.spec)
		if err != nil {
			// A full queue (or a spec that no longer validates against the
			// current limits) leaves the job failed-restartable, exactly as
			// without the flag.
			continue
		}
		s.resumed++
		s.log.Info("resubmitted interrupted job", "job", r.job.ID,
			"resubmitted_as", next.ID, "trace", next.traceID())
		r.job.mu.Lock()
		r.job.errMsg = fmt.Sprintf("interrupted by daemon restart; resubmitted as %s", next.ID)
		r.job.mu.Unlock()
	}
}

// idNumber extracts the numeric suffix of a job ID ("j000042" → 42, or
// "n1-j000042" → 42 under Config.JobIDPrefix "n1-") so post-recovery IDs
// continue past the recovered ones. IDs journaled under a different
// prefix (the node's cluster position changed across the restart) return
// 0: they stay listed but cannot collide with newly issued IDs, which
// carry the current prefix.
func (s *Server) idNumber(id string) int {
	rest, ok := strings.CutPrefix(id, s.cfg.JobIDPrefix)
	if !ok {
		return 0
	}
	var n int
	if _, err := fmt.Sscanf(rest, "j%d", &n); err != nil {
		return 0
	}
	return n
}

// snapshotJob is Job.Snapshot plus the durable fall-through: a job
// recovered from the WAL carries no in-memory result until something asks
// for it, at which point the blob is reloaded from the result store.
func (s *Server) snapshotJob(job *Job, includeResult bool) JobStatus {
	st := job.Snapshot(includeResult)
	if includeResult && st.Status == StatusDone && st.Result == nil && job.Key != "" {
		if blob, ok := s.peekResult(job.Key); ok {
			job.mu.Lock()
			if job.result == nil {
				job.result = blob
			}
			job.mu.Unlock()
			if res, err := blob.result(); err == nil {
				st.Result = res
				st.resultRaw = blob.data
			}
		}
	}
	return st
}

// dropInflight releases a job's single-flight claim once it is terminal.
func (s *Server) dropInflight(job *Job) {
	if job.Key == "" {
		return
	}
	s.mu.Lock()
	if s.inflight[job.Key] == job {
		delete(s.inflight, job.Key)
	}
	s.mu.Unlock()
}

// handleResult serves a persisted result directly by its cache key (the
// "cache_key" of every job status): 200 with the result JSON when the key
// is in the LRU or the durable store, 404 otherwise. Both paths write the
// same bytes — the canonical encode-once blob — and both negotiate the
// same HTTP semantics: a strong ETag (the content address), If-None-Match
// → 304 before any result bytes are touched, gzip when the client asked
// for it, and an exact Content-Length. The LRU path copies the shared
// in-memory buffer; the disk path answers gzip from the persisted sibling
// blob and otherwise streams the identity bytes via the store's reader,
// never buffering a whole blob just to forward it.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if blob, ok := s.cache.peek(key); ok {
		s.serveResultBlob(w, r, blob)
		return
	}

	etag := etagForKey(key)
	if acceptsGzip(r) {
		// A persisted gzip sibling implies the canonical blob exists: the
		// sibling is only ever written after PutResult succeeded.
		if gz, err := s.store.GetResultGzip(key); err == nil {
			h := w.Header()
			h.Set("ETag", etag)
			h.Set("Vary", "Accept-Encoding")
			if ifNoneMatchHit(r, etag) {
				w.WriteHeader(http.StatusNotModified)
				return
			}
			h.Set("Content-Type", "application/json")
			h.Set("Content-Encoding", "gzip")
			h.Set("Content-Length", strconv.Itoa(len(gz)))
			w.WriteHeader(http.StatusOK)
			n, _ := w.Write(gz)
			s.met.bytesServed.Add(int64(n))
			return
		}
	}

	rc, size, err := s.store.GetResultReader(key)
	switch {
	case err == nil:
	case errors.Is(err, store.ErrNotFound):
		writeError(w, http.StatusNotFound, fmt.Errorf("no result for key %q", key))
		return
	default:
		s.met.storeErrs.Inc()
		s.log.Warn("result blob unreadable", "key", key, "err", err)
		writeError(w, http.StatusInternalServerError, fmt.Errorf("reading result %q: %w", key, err))
		return
	}
	defer func() { _ = rc.Close() }()
	h := w.Header()
	h.Set("ETag", etag)
	h.Set("Vary", "Accept-Encoding")
	if ifNoneMatchHit(r, etag) {
		// The open confirmed the representation exists; no bytes were read.
		w.WriteHeader(http.StatusNotModified)
		return
	}
	h.Set("Content-Type", "application/json")
	h.Set("Content-Length", strconv.FormatInt(size, 10))
	w.WriteHeader(http.StatusOK)
	n, _ := io.Copy(w, rc)
	s.met.bytesServed.Add(n)
}
