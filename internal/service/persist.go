package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"odeproto/internal/obs"
	"odeproto/internal/store"
)

// journal appends one lifecycle record to the durable store. Journaling is
// best-effort — a failed append is counted in /v1/stats rather than
// failing the request — but result persistence is not (see runJob: a
// result that cannot be stored fails its job instead of claiming done).
func (s *Server) journal(rec store.JobRecord) {
	if err := s.store.Append(rec); err != nil {
		s.met.storeErrs.Inc()
		s.log.Warn("wal append failed", "job", rec.ID, "op", string(rec.Op), "trace", rec.Trace, "err", err)
	}
}

// specJSON renders the normalized spec for the submitted WAL record.
func specJSON(spec *JobSpec) json.RawMessage {
	data, err := json.Marshal(spec)
	if err != nil {
		// JobSpec contains only marshalable types; unreachable.
		panic(fmt.Sprintf("service: spec marshal: %v", err))
	}
	return data
}

// lookupResult resolves a cache key via the LRU and then the durable
// result store, so completed sweeps survive restarts. The LRU hit/miss
// counters see the lookup (a disk hit therefore counts as both a cache
// miss and a disk hit); disk hits are promoted into the LRU.
func (s *Server) lookupResult(key string) (*JobResult, bool) {
	if res, ok := s.cache.get(key); ok {
		return res, true
	}
	return s.resultFromStore(key)
}

// peekResult is lookupResult without touching the LRU hit/miss counters,
// for the worker's at-pickup re-check (that lookup retries a miss Submit
// already counted).
func (s *Server) peekResult(key string) (*JobResult, bool) {
	if res, ok := s.cache.peek(key); ok {
		return res, true
	}
	return s.resultFromStore(key)
}

func (s *Server) resultFromStore(key string) (*JobResult, bool) {
	data, err := s.store.GetResult(key)
	if err != nil {
		// A plain miss is normal; an I/O failure or a blob the WAL claims
		// exists but cannot be read is a store fault worth counting.
		if !errors.Is(err, store.ErrNotFound) {
			s.met.storeErrs.Inc()
			s.log.Warn("result blob unreadable", "key", key, "err", err)
		}
		return nil, false
	}
	res := new(JobResult)
	if err := json.Unmarshal(data, res); err != nil {
		s.met.storeErrs.Inc() // corrupt blob
		s.log.Warn("result blob corrupt", "key", key, "err", err)
		return nil, false
	}
	s.met.diskHits.Inc()
	s.cache.put(key, res)
	return res, true
}

// restartableErr marks jobs the WAL caught mid-run: the sweep died with
// the previous process, but the spec is in the log and a resubmission
// reruns it.
const restartableErr = "interrupted by daemon restart; resubmit to retry"

// restartableJob pairs an interrupted job with its WAL-preserved spec,
// for the -resume-interrupted path.
type restartableJob struct {
	job  *Job
	spec JobSpec
}

// recoverJobs rebuilds the job table from the store's replayed WAL: job
// metadata and statuses return to /v1/jobs, the most recently finished
// results warm the LRU from disk (up to its capacity), and jobs that were
// queued or mid-run at crash time are marked failed-restartable — with
// that transition journaled, so the next recovery replays them as plain
// failures. It returns the interrupted jobs whose specs survived in the
// WAL, so New can resubmit them under Config.ResumeInterrupted. Runs
// once, from New, before the workers start.
func (s *Server) recoverJobs() []restartableJob {
	recovered := s.store.Recovered()
	if len(recovered) == 0 {
		return nil
	}

	// Choose which results to warm: newest finishers first, one load per
	// distinct key, bounded by the cache capacity.
	type finisher struct {
		key        string
		finishedAt int64
	}
	var finishers []finisher
	for _, rj := range recovered {
		if rj.Status == store.OpDone && rj.Key != "" {
			finishers = append(finishers, finisher{rj.Key, rj.FinishedAt})
		}
	}
	sort.SliceStable(finishers, func(i, j int) bool { return finishers[i].finishedAt > finishers[j].finishedAt })
	chosen := make([]string, 0, s.cfg.CacheSize)
	seen := make(map[string]bool)
	for _, f := range finishers {
		if len(chosen) == s.cfg.CacheSize {
			break
		}
		if !seen[f.key] {
			seen[f.key] = true
			chosen = append(chosen, f.key)
		}
	}
	// Load oldest-first so the newest result ends most recently used.
	loaded := make(map[string]*JobResult)
	for i := len(chosen) - 1; i >= 0; i-- {
		key := chosen[i]
		data, err := s.store.GetResult(key)
		if err != nil {
			continue
		}
		res := new(JobResult)
		if err := json.Unmarshal(data, res); err != nil {
			continue
		}
		s.cache.put(key, res)
		loaded[key] = res
	}
	s.warmed = len(loaded)

	now := time.Now()
	maxID := 0
	var restartable []restartableJob
	for _, rj := range recovered {
		job := &Job{ID: rj.ID, Key: rj.Key, rows: newRowBuffer(), done: make(chan struct{})}
		if obs.ValidTraceID(rj.Trace) {
			// Rebuild an approximate trail from the journaled timestamps:
			// the per-stage spans died with the previous process, but the
			// ID (and thus cross-node correlation) survives.
			job.trace = obs.NewTrace(rj.Trace, s.cfg.Node)
			if rj.SubmittedAt != 0 {
				job.trace.Add(obs.StageQueued, time.Unix(0, rj.SubmittedAt))
			}
			if rj.FinishedAt != 0 {
				job.trace.Add(obs.StageResponded, time.Unix(0, rj.FinishedAt))
			}
		}
		specOK := false
		if len(rj.Spec) > 0 {
			specOK = json.Unmarshal(rj.Spec, &job.spec) == nil
		}
		if rj.SubmittedAt != 0 {
			job.created = time.Unix(0, rj.SubmittedAt)
		}
		if rj.StartedAt != 0 {
			job.started = time.Unix(0, rj.StartedAt)
		}
		if rj.FinishedAt != 0 {
			job.finished = time.Unix(0, rj.FinishedAt)
		}
		var res *JobResult
		switch {
		case rj.Interrupted:
			job.status = StatusFailed
			job.errMsg = restartableErr
			job.finished = now
			s.journal(store.JobRecord{Op: store.OpFailed, ID: job.ID, Error: restartableErr, FinishedAt: now.UnixNano()})
			if specOK {
				restartable = append(restartable, restartableJob{job: job, spec: job.spec})
			}
		case rj.Status == store.OpDone:
			job.status = StatusDone
			job.cached = rj.Cached
			// Warmed results re-attach eagerly; colder ones reload from
			// disk when something asks (snapshotJob).
			res = loaded[rj.Key]
			job.result = res
		case rj.Status == store.OpFailed:
			job.status = StatusFailed
			job.errMsg = rj.Error
		case rj.Status == store.OpAborted:
			job.status = StatusCancelled
			job.errMsg = rj.Error
		}
		job.rows.replayResult(res, job.status)
		close(job.done)
		s.jobs[job.ID] = job
		s.order = append(s.order, job.ID)
		if n := s.idNumber(job.ID); n > maxID {
			maxID = n
		}
	}
	s.nextID = maxID
	s.log.Info("recovered jobs from store", "jobs", len(recovered),
		"warmed_results", s.warmed, "restartable", len(restartable))
	return restartable
}

// resumeInterrupted resubmits the jobs a crash caught queued or mid-run,
// instead of asking the client to retry them. It runs from New after
// recovery, before the workers start, so resubmissions queue exactly like
// client POSTs (including cache and single-flight semantics: a twin whose
// result did land on disk is answered without a sweep). The interrupted
// original keeps its failed status, with the error amended to name the
// replacement job.
func (s *Server) resumeInterrupted(restartable []restartableJob) {
	for _, r := range restartable {
		next, err := s.Submit(r.spec)
		if err != nil {
			// A full queue (or a spec that no longer validates against the
			// current limits) leaves the job failed-restartable, exactly as
			// without the flag.
			continue
		}
		s.resumed++
		s.log.Info("resubmitted interrupted job", "job", r.job.ID,
			"resubmitted_as", next.ID, "trace", next.traceID())
		r.job.mu.Lock()
		r.job.errMsg = fmt.Sprintf("interrupted by daemon restart; resubmitted as %s", next.ID)
		r.job.mu.Unlock()
	}
}

// idNumber extracts the numeric suffix of a job ID ("j000042" → 42, or
// "n1-j000042" → 42 under Config.JobIDPrefix "n1-") so post-recovery IDs
// continue past the recovered ones. IDs journaled under a different
// prefix (the node's cluster position changed across the restart) return
// 0: they stay listed but cannot collide with newly issued IDs, which
// carry the current prefix.
func (s *Server) idNumber(id string) int {
	rest, ok := strings.CutPrefix(id, s.cfg.JobIDPrefix)
	if !ok {
		return 0
	}
	var n int
	if _, err := fmt.Sscanf(rest, "j%d", &n); err != nil {
		return 0
	}
	return n
}

// snapshotJob is Job.Snapshot plus the durable fall-through: a job
// recovered from the WAL carries no in-memory result until something asks
// for it, at which point the blob is reloaded from the result store.
func (s *Server) snapshotJob(job *Job, includeResult bool) JobStatus {
	st := job.Snapshot(includeResult)
	if includeResult && st.Status == StatusDone && st.Result == nil && job.Key != "" {
		if res, ok := s.peekResult(job.Key); ok {
			job.mu.Lock()
			if job.result == nil {
				job.result = res
			}
			job.mu.Unlock()
			st.Result = res
		}
	}
	return st
}

// dropInflight releases a job's single-flight claim once it is terminal.
func (s *Server) dropInflight(job *Job) {
	if job.Key == "" {
		return
	}
	s.mu.Lock()
	if s.inflight[job.Key] == job {
		delete(s.inflight, job.Key)
	}
	s.mu.Unlock()
}

// handleResult serves a persisted result directly by its cache key (the
// "cache_key" of every job status): 200 with the result JSON when the key
// is in the LRU or the durable store, 404 otherwise. Both paths write the
// same bytes — the stored blob is the canonical encoding the LRU path
// re-marshals to.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if res, ok := s.cache.peek(key); ok {
		data, err := json.Marshal(res)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(data)
		return
	}
	data, err := s.store.GetResult(key)
	switch {
	case err == nil:
	case errors.Is(err, store.ErrNotFound):
		writeError(w, http.StatusNotFound, fmt.Errorf("no result for key %q", key))
		return
	default:
		s.met.storeErrs.Inc()
		s.log.Warn("result blob unreadable", "key", key, "err", err)
		writeError(w, http.StatusInternalServerError, fmt.Errorf("reading result %q: %w", key, err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}
