package service

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"
	"time"

	"odeproto/internal/obs"
)

// This file is the SLO engine: a declarative spec (objective + windows +
// burn-rate thresholds, loadable from -slo-config JSON with compiled-in
// defaults), evaluated over windowed histogram deltas into ok/warning/
// page states — served at GET /v1/slo, mirrored as odeproto_slo_*
// gauges, and logged as one structured line per state transition. The
// burn-rate idiom is multi-window multi-burn-rate alerting: burn =
// bad_fraction / (1 - objective), page when both the short and mid
// windows burn fast, warn when both the mid and long windows burn
// steadily.

// SLOState is one SLO's alert state, ordered by severity.
type SLOState string

const (
	SLOOk      SLOState = "ok"
	SLOWarning SLOState = "warning"
	SLOPage    SLOState = "page"
)

// sloStateValue maps states onto the odeproto_slo_state gauge (0/1/2).
func sloStateValue(s SLOState) float64 {
	switch s {
	case SLOWarning:
		return 1
	case SLOPage:
		return 2
	}
	return 0
}

// worseState returns the more severe of two states.
func worseState(a, b SLOState) SLOState {
	if sloStateValue(b) > sloStateValue(a) {
		return b
	}
	return a
}

// Indicator names what an SLO measures.
const (
	// IndicatorLatency counts a completed job as bad when its duration
	// exceeds the SLO's threshold (estimated from histogram buckets).
	IndicatorLatency = "latency"
	// IndicatorErrors counts a completed job as bad when it failed.
	IndicatorErrors = "errors"
)

// ConfigDuration is a time.Duration that marshals as a Go duration
// string ("5m", "6h") in the -slo-config JSON.
type ConfigDuration time.Duration

// MarshalJSON renders the duration string form.
func (d ConfigDuration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts a Go duration string.
func (d *ConfigDuration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("duration must be a string like \"5m\": %w", err)
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return err
	}
	*d = ConfigDuration(v)
	return nil
}

// SLODef is one declarative SLO.
type SLODef struct {
	// Name identifies the SLO in /v1/slo, gauges, and logs.
	Name string `json:"name"`
	// Indicator is "latency" or "errors".
	Indicator string `json:"indicator"`
	// Objective is the target good fraction, e.g. 0.99.
	Objective float64 `json:"objective"`
	// ThresholdSeconds is the latency bound a job must finish within to
	// count as good (latency indicator only).
	ThresholdSeconds float64 `json:"threshold_seconds,omitempty"`
	// ShortWindow/MidWindow/LongWindow are the three evaluation windows,
	// strictly ascending. Paging keys on short+mid, warning on mid+long.
	ShortWindow ConfigDuration `json:"short_window"`
	MidWindow   ConfigDuration `json:"mid_window"`
	LongWindow  ConfigDuration `json:"long_window"`
	// PageBurnRate pages when both short and mid windows burn at least
	// this multiple of the error budget.
	PageBurnRate float64 `json:"page_burn_rate"`
	// WarnBurnRate warns when both mid and long windows burn at least
	// this multiple.
	WarnBurnRate float64 `json:"warn_burn_rate"`
}

// SLOConfig is the body of -slo-config.
type SLOConfig struct {
	// EvalInterval is the background evaluation (and snapshot tick)
	// cadence. Default 10s.
	EvalInterval ConfigDuration `json:"eval_interval,omitempty"`
	SLOs         []SLODef       `json:"slos"`
}

// DefaultSLOConfig is the compiled-in spec used when no -slo-config is
// given: job latency (99% under 30s) and job error rate (99.9% success),
// each over 5m/30m/6h with the standard 14.4×/3× burn-rate thresholds.
func DefaultSLOConfig() SLOConfig {
	window := func(def SLODef) SLODef {
		def.ShortWindow = ConfigDuration(5 * time.Minute)
		def.MidWindow = ConfigDuration(30 * time.Minute)
		def.LongWindow = ConfigDuration(6 * time.Hour)
		def.PageBurnRate = 14.4
		def.WarnBurnRate = 3
		return def
	}
	return SLOConfig{
		EvalInterval: ConfigDuration(10 * time.Second),
		SLOs: []SLODef{
			window(SLODef{Name: "job_latency", Indicator: IndicatorLatency,
				Objective: 0.99, ThresholdSeconds: 30}),
			window(SLODef{Name: "job_errors", Indicator: IndicatorErrors,
				Objective: 0.999}),
		},
	}
}

// ParseSLOConfig decodes and validates an -slo-config document. Fields
// the document omits do NOT inherit defaults — a partial SLO is a
// config error, caught at boot rather than evaluated as zeroes.
func ParseSLOConfig(data []byte) (SLOConfig, error) {
	var cfg SLOConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return SLOConfig{}, fmt.Errorf("slo config: %w", err)
	}
	if cfg.EvalInterval == 0 {
		cfg.EvalInterval = ConfigDuration(10 * time.Second)
	}
	if err := cfg.validate(); err != nil {
		return SLOConfig{}, fmt.Errorf("slo config: %w", err)
	}
	return cfg, nil
}

func (c SLOConfig) validate() error {
	if time.Duration(c.EvalInterval) < time.Second {
		return fmt.Errorf("eval_interval %s is below the 1s minimum", time.Duration(c.EvalInterval))
	}
	if len(c.SLOs) == 0 {
		return fmt.Errorf("no slos defined")
	}
	seen := make(map[string]bool)
	for i, def := range c.SLOs {
		where := fmt.Sprintf("slo %d (%q)", i, def.Name)
		if def.Name == "" {
			return fmt.Errorf("slo %d: missing name", i)
		}
		if seen[def.Name] {
			return fmt.Errorf("%s: duplicate name", where)
		}
		seen[def.Name] = true
		switch def.Indicator {
		case IndicatorLatency:
			if def.ThresholdSeconds <= 0 {
				return fmt.Errorf("%s: latency indicator needs threshold_seconds > 0", where)
			}
		case IndicatorErrors:
			if def.ThresholdSeconds != 0 {
				return fmt.Errorf("%s: threshold_seconds only applies to the latency indicator", where)
			}
		default:
			return fmt.Errorf("%s: unknown indicator %q (want %s or %s)", where, def.Indicator, IndicatorLatency, IndicatorErrors)
		}
		if def.Objective <= 0 || def.Objective >= 1 {
			return fmt.Errorf("%s: objective %v outside (0, 1)", where, def.Objective)
		}
		s, m, l := time.Duration(def.ShortWindow), time.Duration(def.MidWindow), time.Duration(def.LongWindow)
		if s <= 0 || m <= s || l <= m {
			return fmt.Errorf("%s: windows must be strictly ascending (short %s, mid %s, long %s)", where, s, m, l)
		}
		if def.WarnBurnRate <= 0 || def.PageBurnRate <= def.WarnBurnRate {
			return fmt.Errorf("%s: need page_burn_rate > warn_burn_rate > 0 (page %v, warn %v)", where, def.PageBurnRate, def.WarnBurnRate)
		}
	}
	return nil
}

// maxWindow returns the longest window any SLO evaluates — the snapshot
// ring retention.
func (c SLOConfig) maxWindow() time.Duration {
	max := time.Duration(0)
	for _, def := range c.SLOs {
		if d := time.Duration(def.LongWindow); d > max {
			max = d
		}
	}
	return max
}

// SLOWindowStatus is one window's evaluation inside an SLOStatus.
type SLOWindowStatus struct {
	Window string `json:"window"`
	// CoveredSeconds is the span the window actually covers — shorter
	// than the nominal window while the process is young.
	CoveredSeconds float64 `json:"covered_seconds"`
	Total          int64   `json:"total"`
	Bad            float64 `json:"bad"`
	BadFraction    float64 `json:"bad_fraction"`
	BurnRate       float64 `json:"burn_rate"`
	// P50/P95/P99 are interpolated latency quantiles (latency indicator
	// only; zero when the window holds no observations — JSON has no NaN).
	P50 float64 `json:"p50,omitempty"`
	P95 float64 `json:"p95,omitempty"`
	P99 float64 `json:"p99,omitempty"`
}

// SLOStatus is one SLO's current evaluation in GET /v1/slo.
type SLOStatus struct {
	Name             string            `json:"name"`
	Indicator        string            `json:"indicator"`
	Objective        float64           `json:"objective"`
	ThresholdSeconds float64           `json:"threshold_seconds,omitempty"`
	State            SLOState          `json:"state"`
	Windows          []SLOWindowStatus `json:"windows"`
}

// SLOReport is the body of GET /v1/slo.
type SLOReport struct {
	GeneratedAt time.Time `json:"generated_at"`
	// State is the worst state across all SLOs.
	State SLOState    `json:"state"`
	SLOs  []SLOStatus `json:"slos"`
}

// sloTransition is one SLO's state change, logged by whoever evaluated.
type sloTransition struct {
	name     string
	from, to SLOState
	burn     float64 // the short-window burn rate at transition time
}

// sloEvaluator windows the job-duration histogram, queue-wait histogram,
// and failure counter, and evaluates the configured SLOs against them.
// All clock inputs are explicit so tests drive it with a fake clock; the
// serving path passes time.Now().
type sloEvaluator struct {
	cfg    SLOConfig
	dur    *obs.WindowedHistogram
	qwait  *obs.WindowedHistogram
	failed *obs.WindowedCounter

	stateGauge *obs.GaugeVec // odeproto_slo_state{slo}
	burnGauge  *obs.GaugeVec // odeproto_slo_burn_rate{slo,window}
	quantGauge *obs.GaugeVec // odeproto_slo_latency_seconds{slo,window,quantile}

	// mu serializes evaluations: the state transition ok→page must have
	// one owner even when the background loop and /v1/slo race. Logging
	// of transitions happens outside this lock (callers receive them).
	mu   sync.Mutex
	last map[string]SLOState
}

func newSLOEvaluator(cfg SLOConfig, met *serviceMetrics, reg *obs.Registry) *sloEvaluator {
	retention := cfg.maxWindow()
	e := &sloEvaluator{
		cfg:    cfg,
		dur:    obs.NewWindowedHistogram(met.jobDuration, retention),
		qwait:  obs.NewWindowedHistogram(met.queueWait, retention),
		failed: obs.NewWindowedCounter(met.failed, retention),
		stateGauge: reg.GaugeVec("odeproto_slo_state",
			"Current alert state per SLO (0 ok, 1 warning, 2 page).", "slo"),
		burnGauge: reg.GaugeVec("odeproto_slo_burn_rate",
			"Error-budget burn rate per SLO and window (1.0 = burning exactly the budget).", "slo", "window"),
		quantGauge: reg.GaugeVec("odeproto_slo_latency_seconds",
			"Windowed latency quantiles backing the latency SLOs.", "slo", "window", "quantile"),
		last: make(map[string]SLOState),
	}
	for _, def := range cfg.SLOs {
		e.last[def.Name] = SLOOk
		e.stateGauge.With(def.Name).Set(0)
	}
	return e
}

// tick records window baselines; the background loop calls it each
// EvalInterval (on-demand /v1/slo evaluations never tick — the loop owns
// the ring cadence).
func (e *sloEvaluator) tick(now time.Time) {
	e.dur.Tick(now)
	e.qwait.Tick(now)
	e.failed.Tick(now)
}

// evaluate computes every SLO's current state, updates the mirrored
// gauges, and returns the report plus any state transitions. Callers log
// the transitions — outside any lock this evaluator holds.
func (e *sloEvaluator) evaluate(now time.Time) (SLOReport, []sloTransition) {
	report := SLOReport{GeneratedAt: now, State: SLOOk}
	var transitions []sloTransition
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, def := range e.cfg.SLOs {
		st := e.evalOne(def, now)
		report.SLOs = append(report.SLOs, st)
		report.State = worseState(report.State, st.State)
		if prev := e.last[def.Name]; prev != st.State {
			e.last[def.Name] = st.State
			transitions = append(transitions, sloTransition{
				name: def.Name, from: prev, to: st.State, burn: st.Windows[0].BurnRate})
		}
		e.stateGauge.With(def.Name).Set(sloStateValue(st.State))
	}
	return report, transitions
}

// evalOne evaluates one SLO over its three windows.
func (e *sloEvaluator) evalOne(def SLODef, now time.Time) SLOStatus {
	st := SLOStatus{
		Name:             def.Name,
		Indicator:        def.Indicator,
		Objective:        def.Objective,
		ThresholdSeconds: def.ThresholdSeconds,
		State:            SLOOk,
	}
	budget := 1 - def.Objective
	windows := []struct {
		name string
		d    time.Duration
	}{
		{"short", time.Duration(def.ShortWindow)},
		{"mid", time.Duration(def.MidWindow)},
		{"long", time.Duration(def.LongWindow)},
	}
	burns := make(map[string]float64, 3)
	for _, win := range windows {
		snap, covered := e.dur.Window(now, win.d)
		ws := SLOWindowStatus{
			Window:         time.Duration(win.d).String(),
			CoveredSeconds: covered.Seconds(),
			Total:          snap.Count(),
		}
		switch def.Indicator {
		case IndicatorLatency:
			ws.BadFraction = snap.FractionOver(def.ThresholdSeconds)
			ws.Bad = ws.BadFraction * float64(ws.Total)
			for _, q := range []struct {
				q     float64
				field *float64
				label string
			}{{0.5, &ws.P50, "0.5"}, {0.95, &ws.P95, "0.95"}, {0.99, &ws.P99, "0.99"}} {
				v := snap.Quantile(q.q)
				if math.IsNaN(v) {
					v = 0
				}
				*q.field = v
				e.quantGauge.With(def.Name, win.name, q.label).Set(v)
			}
		case IndicatorErrors:
			bad, _ := e.failed.Window(now, win.d)
			ws.Bad = float64(bad)
			if ws.Total > 0 {
				ws.BadFraction = ws.Bad / float64(ws.Total)
			}
		}
		ws.BurnRate = ws.BadFraction / budget
		burns[win.name] = ws.BurnRate
		e.burnGauge.With(def.Name, win.name).Set(ws.BurnRate)
		st.Windows = append(st.Windows, ws)
	}
	switch {
	case burns["short"] >= def.PageBurnRate && burns["mid"] >= def.PageBurnRate:
		st.State = SLOPage
	case burns["mid"] >= def.WarnBurnRate && burns["long"] >= def.WarnBurnRate:
		st.State = SLOWarning
	}
	return st
}

// retryAfterSeconds derives the Retry-After hint for 429 responses from
// the p95 queue wait over the shortest configured window: if jobs
// currently wait ~p95 seconds for a worker, a retry sooner than that
// meets the same full queue. Floor (and no-data default) 1s.
func (e *sloEvaluator) retryAfterSeconds(now time.Time) int {
	shortest := time.Duration(math.MaxInt64)
	for _, def := range e.cfg.SLOs {
		if d := time.Duration(def.ShortWindow); d < shortest {
			shortest = d
		}
	}
	snap, _ := e.qwait.Window(now, shortest)
	p95 := snap.Quantile(0.95)
	if math.IsNaN(p95) || p95 < 1 {
		return 1
	}
	return int(math.Ceil(p95))
}

// sloLoop is the background evaluation goroutine: tick the snapshot
// rings, evaluate, and log any transitions, every EvalInterval until the
// server closes.
func (s *Server) sloLoop() {
	defer s.wg.Done()
	interval := time.Duration(s.slo.cfg.EvalInterval)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case now := <-ticker.C:
			s.slo.tick(now)
			_, transitions := s.slo.evaluate(now)
			s.logSLOTransitions(transitions)
		}
	}
}

// logSLOTransitions emits one structured line per SLO state change —
// warning-level when entering warning/page, info when recovering.
func (s *Server) logSLOTransitions(transitions []sloTransition) {
	for _, tr := range transitions {
		attrs := []any{"slo", tr.name, "from", string(tr.from), "to", string(tr.to),
			"burn_rate_short", tr.burn}
		if tr.to == SLOOk {
			s.log.Info("slo state change", attrs...)
		} else {
			s.log.Warn("slo state change", attrs...)
		}
	}
}

// handleSLO serves GET /v1/slo: an on-demand evaluation over the rings
// the background loop maintains. Transitions observed here are logged
// too — the state machine has one owner (the evaluator), not two clocks.
func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	report, transitions := s.slo.evaluate(time.Now())
	s.logSLOTransitions(transitions)
	sort.Slice(report.SLOs, func(i, j int) bool { return report.SLOs[i].Name < report.SLOs[j].Name })
	writeJSON(w, http.StatusOK, report)
}
