package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"odeproto/internal/obs"
)

func testSLOConfig() SLOConfig {
	return SLOConfig{
		EvalInterval: ConfigDuration(10 * time.Second),
		SLOs: []SLODef{{
			Name: "lat", Indicator: IndicatorLatency, Objective: 0.9, ThresholdSeconds: 1,
			ShortWindow: ConfigDuration(time.Minute), MidWindow: ConfigDuration(5 * time.Minute),
			LongWindow: ConfigDuration(30 * time.Minute), PageBurnRate: 5, WarnBurnRate: 2,
		}},
	}
}

// TestSLOStateMachineTransitions drives the evaluator with a fake clock
// through ok → page → ok and asserts both the transitions and the
// structured log line each one produces.
func TestSLOStateMachineTransitions(t *testing.T) {
	reg := obs.NewRegistry()
	met := newServiceMetrics(reg)
	e := newSLOEvaluator(testSLOConfig(), met, reg)
	var logBuf bytes.Buffer
	s := &Server{log: obs.NewLogger(&logBuf, "n1")}

	base := time.Unix(1700000000, 0)
	e.tick(base)
	report, transitions := e.evaluate(base)
	if report.State != SLOOk || len(transitions) != 0 {
		t.Fatalf("initial state = %s, transitions %v; want ok, none", report.State, transitions)
	}

	// Burn-rate breach: every job blows the 1s threshold, so the bad
	// fraction is 1 and the burn rate is 1/(1-0.9) = 10 >= the page
	// threshold in both the short and mid windows.
	for i := 0; i < 20; i++ {
		met.jobDuration.ObserveTraced(5, obs.NewTraceID())
	}
	now := base.Add(30 * time.Second)
	e.tick(now)
	report, transitions = e.evaluate(now)
	s.logSLOTransitions(transitions)
	if report.State != SLOPage {
		t.Fatalf("state after breach = %s, want page (report %+v)", report.State, report)
	}
	if len(transitions) != 1 || transitions[0].from != SLOOk || transitions[0].to != SLOPage {
		t.Fatalf("transitions = %+v, want one ok->page", transitions)
	}
	if v := e.stateGauge.With("lat").Value(); v != 2 {
		t.Fatalf("odeproto_slo_state = %v, want 2 (page)", v)
	}

	// Recovery: the windows roll past the burst with no new bad events.
	for i := 1; i <= 30; i++ {
		e.tick(now.Add(time.Duration(i) * time.Minute))
	}
	later := now.Add(30 * time.Minute)
	report, transitions = e.evaluate(later)
	s.logSLOTransitions(transitions)
	if report.State != SLOOk {
		t.Fatalf("state after recovery = %s, want ok (report %+v)", report.State, report)
	}
	if len(transitions) != 1 || transitions[0].from != SLOPage || transitions[0].to != SLOOk {
		t.Fatalf("transitions = %+v, want one page->ok", transitions)
	}
	if v := e.stateGauge.With("lat").Value(); v != 0 {
		t.Fatalf("odeproto_slo_state = %v, want 0 (ok)", v)
	}

	// Each transition produced one structured log line with from/to.
	var lines []map[string]any
	sc := bufio.NewScanner(&logBuf)
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("log line is not JSON: %q", sc.Text())
		}
		if rec["msg"] == "slo state change" {
			lines = append(lines, rec)
		}
	}
	if len(lines) != 2 {
		t.Fatalf("slo state change log lines = %d, want 2", len(lines))
	}
	if lines[0]["from"] != "ok" || lines[0]["to"] != "page" || lines[0]["level"] != "WARN" {
		t.Fatalf("breach line = %v", lines[0])
	}
	if lines[1]["from"] != "page" || lines[1]["to"] != "ok" || lines[1]["level"] != "INFO" {
		t.Fatalf("recovery line = %v", lines[1])
	}
}

func TestSLOErrorRateIndicator(t *testing.T) {
	reg := obs.NewRegistry()
	met := newServiceMetrics(reg)
	cfg := testSLOConfig()
	cfg.SLOs[0] = SLODef{
		Name: "errs", Indicator: IndicatorErrors, Objective: 0.99,
		ShortWindow: ConfigDuration(time.Minute), MidWindow: ConfigDuration(5 * time.Minute),
		LongWindow: ConfigDuration(30 * time.Minute), PageBurnRate: 5, WarnBurnRate: 2,
	}
	e := newSLOEvaluator(cfg, met, reg)
	base := time.Unix(1700000000, 0)
	e.tick(base)
	// 100 completions, 10 failures: bad fraction 0.1 against a 0.01
	// budget burns at 10x — page.
	for i := 0; i < 100; i++ {
		met.jobDuration.Observe(0.01)
	}
	met.failed.Add(10)
	report, _ := e.evaluate(base.Add(30 * time.Second))
	if report.State != SLOPage {
		t.Fatalf("error-rate state = %s, want page (report %+v)", report.State, report)
	}
	ws := report.SLOs[0].Windows[0]
	if ws.Total != 100 || ws.Bad != 10 || ws.BadFraction != 0.1 {
		t.Fatalf("window = %+v, want total 100 bad 10 fraction 0.1", ws)
	}
}

func TestRetryAfterFromQueueWaitQuantile(t *testing.T) {
	reg := obs.NewRegistry()
	met := newServiceMetrics(reg)
	e := newSLOEvaluator(testSLOConfig(), met, reg)
	now := time.Unix(1700000000, 0)
	if got := e.retryAfterSeconds(now); got != 1 {
		t.Fatalf("retry-after with no data = %d, want floor 1", got)
	}
	// 100 queue waits of 8s land in the (5, 10] bucket; the interpolated
	// p95 is 9.75s, so the hint rounds up to 10.
	for i := 0; i < 100; i++ {
		met.queueWait.Observe(8)
	}
	if got := e.retryAfterSeconds(now); got != 10 {
		t.Fatalf("retry-after = %d, want 10 (ceil of interpolated p95)", got)
	}
}

func TestParseSLOConfigValidation(t *testing.T) {
	good := `{"slos":[{"name":"lat","indicator":"latency","objective":0.99,
		"threshold_seconds":30,"short_window":"5m","mid_window":"30m",
		"long_window":"6h","page_burn_rate":14.4,"warn_burn_rate":3}]}`
	cfg, err := ParseSLOConfig([]byte(good))
	if err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if time.Duration(cfg.EvalInterval) != 10*time.Second {
		t.Fatalf("eval interval default = %v, want 10s", time.Duration(cfg.EvalInterval))
	}
	if time.Duration(cfg.SLOs[0].MidWindow) != 30*time.Minute {
		t.Fatalf("mid window = %v", time.Duration(cfg.SLOs[0].MidWindow))
	}
	bad := []string{
		`not json`,
		`{"slos":[]}`,
		`{"slos":[{"indicator":"latency","objective":0.99,"threshold_seconds":1,"short_window":"5m","mid_window":"30m","long_window":"6h","page_burn_rate":14.4,"warn_burn_rate":3}]}`,                                   // no name
		`{"slos":[{"name":"x","indicator":"widgets","objective":0.99,"short_window":"5m","mid_window":"30m","long_window":"6h","page_burn_rate":14.4,"warn_burn_rate":3}]}`,                                              // unknown indicator
		`{"slos":[{"name":"x","indicator":"latency","objective":1.5,"threshold_seconds":1,"short_window":"5m","mid_window":"30m","long_window":"6h","page_burn_rate":14.4,"warn_burn_rate":3}]}`,                         // objective out of range
		`{"slos":[{"name":"x","indicator":"latency","objective":0.99,"short_window":"5m","mid_window":"30m","long_window":"6h","page_burn_rate":14.4,"warn_burn_rate":3}]}`,                                              // latency without threshold
		`{"slos":[{"name":"x","indicator":"latency","objective":0.99,"threshold_seconds":1,"short_window":"30m","mid_window":"5m","long_window":"6h","page_burn_rate":14.4,"warn_burn_rate":3}]}`,                        // windows not ascending
		`{"slos":[{"name":"x","indicator":"latency","objective":0.99,"threshold_seconds":1,"short_window":"5m","mid_window":"30m","long_window":"6h","page_burn_rate":2,"warn_burn_rate":3}]}`,                           // page <= warn
		`{"eval_interval":"10ms","slos":[{"name":"x","indicator":"latency","objective":0.99,"threshold_seconds":1,"short_window":"5m","mid_window":"30m","long_window":"6h","page_burn_rate":14.4,"warn_burn_rate":3}]}`, // interval too small
		`{"slos":[{"name":"x","indicator":"errors","objective":0.99,"threshold_seconds":5,"short_window":"5m","mid_window":"30m","long_window":"6h","page_burn_rate":14.4,"warn_burn_rate":3}]}`,                         // threshold on errors
	}
	for _, text := range bad {
		if _, err := ParseSLOConfig([]byte(text)); err == nil {
			t.Fatalf("accepted invalid config:\n%s", text)
		}
	}
}

// TestSLOEndpoint exercises GET /v1/slo on a live server: after a job
// completes, the latency SLO reports computed quantiles in every window
// and the overall state is ok.
func TestSLOEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, data := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", smallSpec())
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: %d %s", resp.StatusCode, data)
	}
	id := decodeStatus(t, data).ID
	waitStatus(t, ts.URL, id, StatusDone, 30*time.Second)

	resp, data = doJSON(t, http.MethodGet, ts.URL+"/v1/slo", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/slo: %d %s", resp.StatusCode, data)
	}
	var report SLOReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("decoding /v1/slo: %v\n%s", err, data)
	}
	if report.State != SLOOk {
		t.Fatalf("overall state = %s, want ok\n%s", report.State, data)
	}
	var lat *SLOStatus
	for i := range report.SLOs {
		if report.SLOs[i].Name == "job_latency" {
			lat = &report.SLOs[i]
		}
	}
	if lat == nil {
		t.Fatalf("no job_latency SLO in report:\n%s", data)
	}
	if len(lat.Windows) != 3 {
		t.Fatalf("windows = %d, want 3", len(lat.Windows))
	}
	for _, ws := range lat.Windows {
		if ws.Total < 1 {
			t.Fatalf("window %s total = %d, want >= 1", ws.Window, ws.Total)
		}
		if ws.P50 <= 0 || ws.P95 <= 0 || ws.P99 <= 0 || ws.P50 > ws.P99 {
			t.Fatalf("window %s quantiles = p50 %v p95 %v p99 %v", ws.Window, ws.P50, ws.P95, ws.P99)
		}
	}
}

// TestTraceWaterfallSVG checks the trace.svg rendering: stage labels,
// node attribution, and SVG shape.
func TestTraceWaterfallSVG(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, Node: "n1"})
	resp, data := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", smallSpec())
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: %d %s", resp.StatusCode, data)
	}
	id := decodeStatus(t, data).ID
	waitStatus(t, ts.URL, id, StatusDone, 30*time.Second)

	svgResp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/trace.svg")
	if err != nil {
		t.Fatal(err)
	}
	defer svgResp.Body.Close()
	if svgResp.StatusCode != http.StatusOK {
		t.Fatalf("trace.svg status = %d", svgResp.StatusCode)
	}
	if ct := svgResp.Header.Get("Content-Type"); ct != "image/svg+xml" {
		t.Fatalf("trace.svg content type = %q", ct)
	}
	var body bytes.Buffer
	if _, err := body.ReadFrom(svgResp.Body); err != nil {
		t.Fatal(err)
	}
	svg := body.String()
	if !strings.HasPrefix(svg, "<svg") {
		t.Fatalf("trace.svg body does not start with <svg:\n%.200s", svg)
	}
	for _, stage := range []string{obs.StageQueued, obs.StageCompiled, obs.StageSwept, obs.StageResponded} {
		if !strings.Contains(svg, ">"+stage+"<") {
			t.Fatalf("trace.svg missing stage label %q", stage)
		}
	}
	if !strings.Contains(svg, "node n1") {
		t.Fatal("trace.svg missing owning-node label")
	}

	if resp, _ := http.Get(ts.URL + "/v1/jobs/nope/trace.svg"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job trace.svg status = %d, want 404", resp.StatusCode)
	}
}
