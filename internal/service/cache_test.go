package service

import (
	"strings"
	"testing"

	"odeproto/internal/obs"
)

func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2, &obs.Counter{}, &obs.Counter{})
	r1 := newResultBlob("a", &JobResult{})
	r2 := newResultBlob("b", &JobResult{})
	r3 := newResultBlob("c", &JobResult{})
	c.put("a", r1)
	c.put("b", r2)
	if got, ok := c.get("a"); !ok || got != r1 {
		t.Fatal("a missing after insert")
	}
	// "b" is now least recently used; inserting "c" must evict it.
	c.put("c", r3)
	if _, ok := c.get("b"); ok {
		t.Fatal("b not evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted despite being recently used")
	}
	if _, ok := c.get("c"); !ok {
		t.Fatal("c missing")
	}
	st := c.stats()
	if st.Size != 2 || st.Max != 2 {
		t.Fatalf("stats size/max = %d/%d", st.Size, st.Max)
	}
	if st.Hits != 3 || st.Misses != 1 {
		t.Fatalf("stats hits/misses = %d/%d", st.Hits, st.Misses)
	}
}

func normalizeOrFatal(t *testing.T, spec JobSpec) (JobSpec, string) {
	t.Helper()
	comp, err := spec.normalize(defaultLimits)
	if err != nil {
		t.Fatal(err)
	}
	return spec, spec.cacheKey(comp)
}

func TestCacheKeyCanonicalization(t *testing.T) {
	base := JobSpec{
		Source: "x' = -x*y\ny' = x*y\n",
		N:      100, Periods: 10, Engine: "agent", Shards: 4, Seed: 3,
		Initial: map[string]int{"x": 99, "y": 1},
	}
	_, keyBase := normalizeOrFatal(t, base)

	// Formatting and comments in the DSL must not split the cache.
	reformatted := base
	reformatted.Source = "# epidemic\n x'   =  -1*x*y\n\ny' = x*y"
	reformatted.Initial = map[string]int{"x": 99, "y": 1}
	if _, key := normalizeOrFatal(t, reformatted); key != keyBase {
		t.Fatal("reformatted source changed the cache key")
	}

	// "sharded" with the same K is the same content as "agent" + shards.
	sharded := base
	sharded.Engine = "sharded"
	sharded.Initial = map[string]int{"x": 99, "y": 1}
	if _, key := normalizeOrFatal(t, sharded); key != keyBase {
		t.Fatal(`engine "sharded" split the cache from agent-with-K`)
	}

	// Zero initial entries are dropped from the canonical form: starting
	// everyone in x is the same content with or without an explicit y: 0.
	allX := base
	allX.Initial = map[string]int{"x": 100}
	_, keyAllX := normalizeOrFatal(t, allX)
	withZero := base
	withZero.Initial = map[string]int{"x": 100, "y": 0}
	if _, key := normalizeOrFatal(t, withZero); key != keyAllX {
		t.Fatal("explicit zero initial entry changed the cache key")
	}

	// A different shard count is a different RNG stream → different key.
	otherK := base
	otherK.Shards = 8
	otherK.Initial = map[string]int{"x": 99, "y": 1}
	if _, key := normalizeOrFatal(t, otherK); key == keyBase {
		t.Fatal("shard count is not part of the cache key")
	}

	// A different seed is different content.
	otherSeed := base
	otherSeed.Seed = 4
	otherSeed.Initial = map[string]int{"x": 99, "y": 1}
	if _, key := normalizeOrFatal(t, otherSeed); key == keyBase {
		t.Fatal("seed is not part of the cache key")
	}
}

// TestCompileMemoization pins the compile-cache contract: equivalent
// compile requests share one *compiled (compilation is pure, so the
// pointer itself is the cache), requests that differ in any
// artifact-affecting field do not, and FlowPoint — which only shapes the
// compile *response* — is not part of the identity.
func TestCompileMemoization(t *testing.T) {
	req := CompileRequest{Source: "x' = -x*y\ny' = x*y\n"}
	a, err := compilePipeline(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := compilePipeline(req)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("identical requests compiled twice")
	}
	flow := req
	flow.FlowPoint = map[string]float64{"x": 0.5, "y": 0.5}
	c, err := compilePipeline(flow)
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Fatal("FlowPoint split the compile cache")
	}
	other := req
	other.FailureRate = 0.1
	d, err := compilePipeline(other)
	if err != nil {
		t.Fatal(err)
	}
	if d == a {
		t.Fatal("different failure rate shared a compile result")
	}
}

func TestSpecValidationErrors(t *testing.T) {
	ok := JobSpec{Source: "x' = -x*y\ny' = x*y\n", N: 100, Periods: 10}
	cases := []struct {
		name   string
		mutate func(*JobSpec)
		want   string
	}{
		{"bad engine", func(s *JobSpec) { s.Engine = "quantum" }, "unknown engine"},
		{"sharded without K", func(s *JobSpec) { s.Engine = "sharded" }, "needs shards"},
		{"aggregate with shards", func(s *JobSpec) { s.Engine = "aggregate"; s.Shards = 4 }, "does not shard"},
		{"zero n", func(s *JobSpec) { s.N = 0 }, "n must be"},
		{"zero periods", func(s *JobSpec) { s.Periods = 0 }, "periods must be"},
		{"n above limit", func(s *JobSpec) { s.N = defaultLimits.MaxN + 1 }, "exceeds the service limit"},
		{"shards above n", func(s *JobSpec) { s.Shards = 200 }, "exceeds the group size"},
		{"bad source", func(s *JobSpec) { s.Source = "x = 1" }, "must be of the form"},
		{"unknown param", func(s *JobSpec) { s.Source = "x' = -k*x\n" }, "unknown identifier"},
		{"initial not a state", func(s *JobSpec) { s.Initial = map[string]int{"x": 50, "q": 50} }, "not a protocol state"},
		{"initial sum mismatch", func(s *JobSpec) { s.Initial = map[string]int{"x": 10, "y": 10} }, "sum to"},
		{"negative initial", func(s *JobSpec) { s.Initial = map[string]int{"x": -1, "y": 101} }, "negative"},
		{"event past horizon", func(s *JobSpec) { s.Events = []EventSpec{{At: 10, Kind: "kill"}} }, "outside [0, 10)"},
		{"event proc out of range", func(s *JobSpec) { s.Events = []EventSpec{{At: 1, Kind: "kill", Proc: 100}} }, "outside the group"},
		{"event proc negative", func(s *JobSpec) { s.Events = []EventSpec{{At: 1, Kind: "freeze", Proc: -1}} }, "outside the group"},
		{"row budget", func(s *JobSpec) { s.Periods = 10000; s.Seeds = 1000 }, "would record"},
		{"event bad kind", func(s *JobSpec) { s.Events = []EventSpec{{At: 1, Kind: "nuke"}} }, "unknown event kind"},
		{"event bad frac", func(s *JobSpec) { s.Events = []EventSpec{{At: 1, Kind: "kill-fraction", Frac: 1.5}} }, "outside [0,1]"},
		{"revive without state", func(s *JobSpec) { s.Events = []EventSpec{{At: 1, Kind: "revive"}} }, "needs a state"},
		{"aggregate with kill", func(s *JobSpec) {
			s.Engine = "aggregate"
			s.Events = []EventSpec{{At: 1, Kind: "kill"}}
		}, "only supports kill-fraction"},
		{"asyncnet with events", func(s *JobSpec) {
			s.Engine = "asyncnet"
			s.Events = []EventSpec{{At: 1, Kind: "kill-fraction", Frac: 0.5}}
		}, "supports no perturbations"},
		{"asyncnet bad mode", func(s *JobSpec) { s.Engine = "asyncnet"; s.Mode = "hybrid" }, "unknown mode"},
		{"mode on agent engine", func(s *JobSpec) { s.Mode = ModeVirtual }, "only meaningful for engine"},
	}
	for _, tc := range cases {
		spec := ok
		spec.Initial = nil
		spec.Events = nil
		tc.mutate(&spec)
		_, err := spec.normalize(defaultLimits)
		if err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestAsyncnetCacheability pins the mode-dependent cache contract: the
// default virtual mode is deterministic and cacheable; wallclock mode
// (real goroutines, real timers) remains the one uncacheable
// configuration.
func TestAsyncnetCacheability(t *testing.T) {
	spec := JobSpec{Source: "x' = -x*y\ny' = x*y\n", N: 50, Periods: 2, Engine: "asyncnet"}
	if _, err := spec.normalize(defaultLimits); err != nil {
		t.Fatal(err)
	}
	if spec.Mode != ModeVirtual {
		t.Fatalf("asyncnet mode normalized to %q, want %q", spec.Mode, ModeVirtual)
	}
	if !spec.cacheable() {
		t.Fatal("virtual asyncnet jobs must be cacheable (deterministic scheduler)")
	}
	wallclock := JobSpec{Source: "x' = -x*y\ny' = x*y\n", N: 50, Periods: 2, Engine: "asyncnet", Mode: ModeWallclock}
	if _, err := wallclock.normalize(defaultLimits); err != nil {
		t.Fatal(err)
	}
	if wallclock.cacheable() {
		t.Fatal("wallclock asyncnet jobs must not be cacheable (nondeterministic runtime)")
	}
	agent := JobSpec{Source: "x' = -x*y\ny' = x*y\n", N: 50, Periods: 2}
	if _, err := agent.normalize(defaultLimits); err != nil {
		t.Fatal(err)
	}
	if !agent.cacheable() {
		t.Fatal("agent jobs must be cacheable")
	}
}

// TestAsyncnetModeCacheKey: the empty mode and the explicit "virtual"
// mode are one canonical form (one cache identity), and the mode is part
// of the key.
func TestAsyncnetModeCacheKey(t *testing.T) {
	base := JobSpec{Source: "x' = -x*y\ny' = x*y\n", N: 50, Periods: 2, Engine: "asyncnet"}
	_, keyDefault := normalizeOrFatal(t, base)
	explicit := JobSpec{Source: "x' = -x*y\ny' = x*y\n", N: 50, Periods: 2, Engine: "asyncnet", Mode: ModeVirtual}
	if _, key := normalizeOrFatal(t, explicit); key != keyDefault {
		t.Fatal("explicit virtual mode split the cache from the default")
	}
	wallclock := JobSpec{Source: "x' = -x*y\ny' = x*y\n", N: 50, Periods: 2, Engine: "asyncnet", Mode: ModeWallclock}
	if _, key := normalizeOrFatal(t, wallclock); key == keyDefault {
		t.Fatal("mode is not part of the cache key")
	}
}
