package service

import (
	"container/list"
	"sync"

	"odeproto/internal/obs"
)

// resultCache is the content-addressed result store: an LRU map from
// canonical request hash to the finished JobResult. Entries are immutable
// once inserted — handlers serve the shared pointer directly — which is
// sound because sweep output is byte-identical for a fixed key (the key
// includes the seed derivation and the shard count K).
type resultCache struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recently used
	entries map[string]*list.Element

	// hits/misses live in the obs registry (odeproto_cache_hits_total /
	// _misses_total); the stats() snapshot reads the same counters.
	hits   *obs.Counter
	misses *obs.Counter
}

type cacheEntry struct {
	key string
	res *JobResult
}

func newResultCache(max int, hits, misses *obs.Counter) *resultCache {
	if max < 1 {
		max = 1
	}
	return &resultCache{
		max:     max,
		order:   list.New(),
		entries: make(map[string]*list.Element),
		hits:    hits,
		misses:  misses,
	}
}

// get returns the cached result for key, marking it most recently used
// and counting the lookup in the hit/miss stats.
func (c *resultCache) get(key string) (*JobResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.hits.Inc()
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// peek is get without touching the hit/miss counters, for the worker's
// at-pickup re-check: that lookup retries a miss Submit already counted,
// and counting it again would halve the reported hit ratio.
func (c *resultCache) peek(key string) (*JobResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// put inserts (or refreshes) a result, evicting the least recently used
// entry beyond the capacity bound.
func (c *resultCache) put(key string, res *JobResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// CacheStats is the cache section of GET /v1/stats.
type CacheStats struct {
	Size   int   `json:"size"`
	Max    int   `json:"max"`
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

func (c *resultCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Size: c.order.Len(), Max: c.max, Hits: c.hits.Value(), Misses: c.misses.Value()}
}
