package service

import (
	"container/list"
	"sync"

	"odeproto/internal/obs"
)

// resultCache is the content-addressed result store: an LRU map from
// canonical request hash to the finished result's encode-once blob.
// Entries are immutable once inserted — handlers serve the shared blob's
// bytes directly — which is sound because sweep output is byte-identical
// for a fixed key (the key includes the seed derivation and the shard
// count K).
type resultCache struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recently used
	entries map[string]*list.Element

	// hits/misses live in the obs registry (odeproto_cache_hits_total /
	// _misses_total); the stats() snapshot reads the same counters.
	hits   *obs.Counter
	misses *obs.Counter
}

type cacheEntry struct {
	key  string
	blob *resultBlob
}

func newResultCache(max int, hits, misses *obs.Counter) *resultCache {
	if max < 1 {
		max = 1
	}
	return &resultCache{
		max:     max,
		order:   list.New(),
		entries: make(map[string]*list.Element),
		hits:    hits,
		misses:  misses,
	}
}

// get returns the cached blob for key, marking it most recently used and
// counting the lookup in the hit/miss stats.
func (c *resultCache) get(key string) (*resultBlob, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.hits.Inc()
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).blob, true
}

// peek is get without touching the hit/miss counters, for the worker's
// at-pickup re-check and for GET /v1/results/{key} (the worker's lookup
// retries a miss Submit already counted; the result endpoint is addressed
// by key, not by spec, so it is not a cache-policy event).
func (c *resultCache) peek(key string) (*resultBlob, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).blob, true
}

// contains reports presence without touching recency or the counters, for
// the cluster's local-availability probe.
func (c *resultCache) contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}

// put inserts (or refreshes) a blob, evicting the least recently used
// entry beyond the capacity bound.
func (c *resultCache) put(key string, blob *resultBlob) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).blob = blob
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, blob: blob})
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// CacheStats is the cache section of GET /v1/stats.
type CacheStats struct {
	Size   int   `json:"size"`
	Max    int   `json:"max"`
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

func (c *resultCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Size: c.order.Len(), Max: c.max, Hits: c.hits.Value(), Misses: c.misses.Value()}
}
