package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"odeproto/internal/store"
)

const epidemicSource = "x' = -x*y\ny' = x*y\n"

// newTestServer boots a Server over httptest. With ODEPROTO_TEST_DATA set
// (the CI file-backend pass), every test server runs against a file store
// in a temp dir instead of the default in-memory backend, so the whole
// service suite exercises the durable path.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Store == nil && os.Getenv("ODEPROTO_TEST_DATA") != "" {
		fst, err := store.Open(filepath.Join(t.TempDir(), "data"), store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { fst.Close() }) // runs after the server cleanup below
		cfg.Store = fst
	}
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func doJSON(t *testing.T, method, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func decodeStatus(t *testing.T, data []byte) JobStatus {
	t.Helper()
	var st JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("bad status body %q: %v", data, err)
	}
	return st
}

// waitStatus polls GET /v1/jobs/{id} until the job reaches a terminal
// state or the deadline passes.
func waitStatus(t *testing.T, base, id string, want Status, timeout time.Duration) JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, data := doJSON(t, http.MethodGet, base+"/v1/jobs/"+id, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET job: %d %s", resp.StatusCode, data)
		}
		st := decodeStatus(t, data)
		if st.Status == want {
			return st
		}
		switch st.Status {
		case StatusDone, StatusFailed, StatusCancelled:
			t.Fatalf("job %s reached %s (error %q), want %s", id, st.Status, st.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, st.Status, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestCompileEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	resp, data := doJSON(t, http.MethodPost, ts.URL+"/v1/compile", CompileRequest{Source: epidemicSource})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: %d %s", resp.StatusCode, data)
	}
	var cr CompileResponse
	if err := json.Unmarshal(data, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Rewritten {
		t.Fatal("epidemic system should be mappable without rewriting")
	}
	if len(cr.Protocol.States) != 2 || len(cr.Protocol.Actions) != 1 {
		t.Fatalf("protocol states/actions = %v/%v", cr.Protocol.States, cr.Protocol.Actions)
	}
	a := cr.Protocol.Actions[0]
	if a.Kind != "sample" || a.Owner != "x" || a.To != "y" {
		t.Fatalf("unexpected action %+v", a)
	}
	// Theorem 1 at the uniform point (x = y = 1/2): drift = ±p·x·y.
	wantDrift := cr.Protocol.P * 0.25
	if d := cr.ExpectedFlow["y"]; d < wantDrift-1e-12 || d > wantDrift+1e-12 {
		t.Fatalf("expected_flow[y] = %v, want %v", d, wantDrift)
	}
	if cr.SamplingMessages["x"] != 1 || cr.SamplingMessages["y"] != 0 {
		t.Fatalf("sampling messages = %v", cr.SamplingMessages)
	}

	// The LV system (6) needs the §7 rewrite.
	lv := CompileRequest{Source: "x' = 3*x - 3*x^2 - 6*x*y\ny' = 3*y - 3*y^2 - 6*x*y\n", P: 0.01}
	resp, data = doJSON(t, http.MethodPost, ts.URL+"/v1/compile", lv)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile lv: %d %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &cr); err != nil {
		t.Fatal(err)
	}
	if !cr.Rewritten || cr.RewrittenSystem == "" {
		t.Fatal("LV system should have been rewritten")
	}
	if len(cr.Protocol.States) != 3 {
		t.Fatalf("rewritten LV protocol has states %v, want 3", cr.Protocol.States)
	}

	// Compile failures are input errors.
	for _, bad := range []CompileRequest{
		{},
		{Source: "x' = -k*x\n"},
		{Source: "x' = -x*y\ny' = x*y\n", NoRewrite: true, FailureRate: 2},
	} {
		resp, _ = doJSON(t, http.MethodPost, ts.URL+"/v1/compile", bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad compile request %+v: status %d", bad, resp.StatusCode)
		}
	}
}

func smallSpec() JobSpec {
	return JobSpec{
		Source:  epidemicSource,
		N:       400,
		Initial: map[string]int{"x": 380, "y": 20},
		Periods: 25,
		Seed:    7,
	}
}

func TestJobLifecycleAndCache(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 2})

	resp, data := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", smallSpec())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, data)
	}
	st := decodeStatus(t, data)
	if st.ID == "" || st.CacheKey == "" {
		t.Fatalf("submit response missing id/key: %+v", st)
	}
	done := waitStatus(t, ts.URL, st.ID, StatusDone, 30*time.Second)
	if done.Cached {
		t.Fatal("first run reported cached")
	}
	if done.Result == nil || len(done.Result.Runs) != 1 {
		t.Fatalf("result runs = %+v", done.Result)
	}
	rows := done.Result.Runs[0].Rows
	if len(rows) != 25 {
		t.Fatalf("recorded %d rows, want 25", len(rows))
	}
	if got := done.Result.States; len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Fatalf("states = %v", got)
	}
	for _, row := range rows {
		if row.Counts[0]+row.Counts[1] != 400 {
			t.Fatalf("period %d counts %v do not conserve N", row.Period, row.Counts)
		}
	}
	if n := srv.SweepsExecuted(); n != 1 {
		t.Fatalf("sweeps executed = %d, want 1", n)
	}

	// The identical spec is answered from the cache: 200 (not 202),
	// already done, cached flag, byte-identical result, no new sweep.
	resp, data = doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", smallSpec())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached submit: %d %s", resp.StatusCode, data)
	}
	st2 := decodeStatus(t, data)
	if st2.Status != StatusDone || !st2.Cached {
		t.Fatalf("cached submit status %+v", st2)
	}
	if st2.CacheKey != st.CacheKey {
		t.Fatal("identical specs produced different cache keys")
	}
	got2 := waitStatus(t, ts.URL, st2.ID, StatusDone, 5*time.Second)
	a, _ := json.Marshal(done.Result)
	b, _ := json.Marshal(got2.Result)
	if !bytes.Equal(a, b) {
		t.Fatal("cached result differs from the original")
	}
	if n := srv.SweepsExecuted(); n != 1 {
		t.Fatalf("cache hit ran a sweep (count %d)", n)
	}

	// A different seed is different content: a new sweep runs.
	other := smallSpec()
	other.Seed = 8
	resp, data = doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", other)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit other: %d %s", resp.StatusCode, data)
	}
	waitStatus(t, ts.URL, decodeStatus(t, data).ID, StatusDone, 30*time.Second)
	if n := srv.SweepsExecuted(); n != 2 {
		t.Fatalf("sweeps executed = %d, want 2", n)
	}

	// Multi-seed + events + aggregate engine round out the matrix.
	multi := JobSpec{
		Source: epidemicSource, Engine: "aggregate",
		N: 1000, Initial: map[string]int{"x": 900, "y": 100},
		Periods: 10, Seeds: 3,
		Events: []EventSpec{{At: 5, Kind: "kill-fraction", Frac: 0.5}},
	}
	resp, data = doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", multi)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit multi: %d %s", resp.StatusCode, data)
	}
	mdone := waitStatus(t, ts.URL, decodeStatus(t, data).ID, StatusDone, 30*time.Second)
	if len(mdone.Result.Runs) != 3 {
		t.Fatalf("multi-seed runs = %d", len(mdone.Result.Runs))
	}
	seen := map[int64]bool{}
	for _, run := range mdone.Result.Runs {
		if seen[run.Seed] {
			t.Fatalf("duplicate derived seed %d", run.Seed)
		}
		seen[run.Seed] = true
		if run.Killed == 0 {
			t.Fatalf("run %d recorded no kills despite the kill-fraction event", run.Seed)
		}
	}
}

func TestSubmitValidationOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	bad := []any{
		JobSpec{},                        // no source
		JobSpec{Source: epidemicSource},  // no n/periods
		map[string]any{"sauce": "typo"},  // unknown field
		map[string]any{"n": "over 9000"}, // wrong type
	}
	for i, body := range bad {
		resp, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad submit %d: status %d", i, resp.StatusCode)
		}
	}
	resp, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/j999999", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job: status %d", resp.StatusCode)
	}
}

// slowSpec is a job big enough to still be running when the test acts on
// it (~4e8 process-periods; the harness checks ctx every period).
func slowSpec() JobSpec {
	return JobSpec{
		Source:  epidemicSource,
		N:       20000,
		Initial: map[string]int{"x": 19999, "y": 1},
		Periods: 20000,
	}
}

func TestCancelRunningAndQueuedJobs(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8})
	_ = srv

	resp, data := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", slowSpec())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit slow: %d %s", resp.StatusCode, data)
	}
	running := decodeStatus(t, data)
	waitStatus(t, ts.URL, running.ID, StatusRunning, 30*time.Second)

	// A second job sits in the queue behind the single worker.
	queuedSpec := slowSpec()
	queuedSpec.Seed = 2
	resp, data = doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", queuedSpec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit queued: %d %s", resp.StatusCode, data)
	}
	queued := decodeStatus(t, data)

	// Cancelling the queued job terminates it immediately.
	resp, data = doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel queued: %d %s", resp.StatusCode, data)
	}
	if st := decodeStatus(t, data); st.Status != StatusCancelled {
		t.Fatalf("queued job status after cancel = %s", st.Status)
	}

	// Cancelling the running job stops it at a period boundary.
	resp, data = doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+running.ID, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel running: %d %s", resp.StatusCode, data)
	}
	st := waitStatus(t, ts.URL, running.ID, StatusCancelled, 30*time.Second)
	if st.Result != nil {
		t.Fatal("cancelled job carries a result")
	}

	// Cancelling a terminal job conflicts.
	resp, _ = doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+running.ID, nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("double cancel: status %d", resp.StatusCode)
	}
	// A cancelled job's partial result never reaches the cache.
	resp, data = doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil)
	var stats Stats
	if err := json.Unmarshal(data, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Cache.Size != 0 {
		t.Fatalf("cache size %d after cancellations, want 0", stats.Cache.Size)
	}
}

func TestQueueFullReturns429WithRetryAfter(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})

	resp, data := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", slowSpec())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 1: %d %s", resp.StatusCode, data)
	}
	first := decodeStatus(t, data)
	waitStatus(t, ts.URL, first.ID, StatusRunning, 30*time.Second)

	second := slowSpec()
	second.Seed = 2
	resp, _ = doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", second)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 2: %d", resp.StatusCode)
	}
	third := slowSpec()
	third.Seed = 3
	resp, data = doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", third)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit 3 with a full queue: %d %s", resp.StatusCode, data)
	}
	// Admission control promises a concrete hint: Retry-After derived
	// from the windowed p95 queue wait, floored at 1s.
	retry, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || retry < 1 {
		t.Fatalf("Retry-After = %q, want an integer >= 1", resp.Header.Get("Retry-After"))
	}
	if got := srv.Stats().RejectedJobs; got != 1 {
		t.Fatalf("rejected_jobs = %d, want 1", got)
	}
	// The rejected job must not linger in the job list.
	resp, data = doJSON(t, http.MethodGet, ts.URL+"/v1/jobs", nil)
	var list []JobStatus
	if err := json.Unmarshal(data, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 {
		t.Fatalf("job list has %d entries, want 2", len(list))
	}
}

func TestStreamNDJSON(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	spec := smallSpec()
	spec.Periods = 40
	spec.RecordEvery = 4
	resp, data := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, data)
	}
	id := decodeStatus(t, data).ID

	// Attach to the stream immediately — rows arrive as the run records
	// them, then the terminal row closes the stream.
	streamResp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer streamResp.Body.Close()
	if ct := streamResp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	var rows []StreamRow
	sc := bufio.NewScanner(streamResp.Body)
	for sc.Scan() {
		var row StreamRow
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	// 40 periods sampled every 4 → periods 0,4,...,36 plus the final
	// period 39, plus the terminal event row.
	if len(rows) != 12 {
		t.Fatalf("streamed %d rows, want 12", len(rows))
	}
	last := rows[len(rows)-1]
	if last.Event != string(StatusDone) {
		t.Fatalf("terminal row %+v", last)
	}
	for _, row := range rows[:len(rows)-1] {
		if len(row.Counts) != 2 || row.Counts[0]+row.Counts[1] != 400 {
			t.Fatalf("stream row %+v does not conserve N", row)
		}
	}
	if rows[len(rows)-2].Period != 39 {
		t.Fatalf("final recorded period %d, want 39", rows[len(rows)-2].Period)
	}

	// Streaming a cached twin replays the same rows.
	resp, data = doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", spec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached submit: %d %s", resp.StatusCode, data)
	}
	cachedID := decodeStatus(t, data).ID
	streamResp2, err := http.Get(ts.URL + "/v1/jobs/" + cachedID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer streamResp2.Body.Close()
	body, err := io.ReadAll(streamResp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(body), "\n"); got != 12 {
		t.Fatalf("cached stream has %d rows, want 12", got)
	}
}

func TestFigureEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	resp, data := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", smallSpec())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, data)
	}
	id := decodeStatus(t, data).ID

	// Figures for unfinished jobs conflict.
	resp, _ = doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+id+"/figure.svg", nil)
	if resp.StatusCode == http.StatusOK {
		// The tiny job may already be done; only a non-conflict non-OK is
		// a failure. Re-check after completion below regardless.
	} else if resp.StatusCode != http.StatusConflict {
		t.Fatalf("figure before done: %d", resp.StatusCode)
	}

	waitStatus(t, ts.URL, id, StatusDone, 30*time.Second)
	resp, data = doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+id+"/figure.svg", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("figure: %d %s", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "image/svg+xml" {
		t.Fatalf("figure content type %q", ct)
	}
	svg := string(data)
	if !strings.HasPrefix(svg, "<svg") {
		t.Fatalf("figure does not start with <svg: %.60s", svg)
	}
	for _, want := range []string{"x", "y", "period"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("figure missing %q", want)
		}
	}
}

func TestStatsAndHealth(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1})

	resp, data := doJSON(t, http.MethodGet, ts.URL+"/v1/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d %s", resp.StatusCode, data)
	}

	resp, data = doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", smallSpec())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, data)
	}
	waitStatus(t, ts.URL, decodeStatus(t, data).ID, StatusDone, 30*time.Second)
	doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", smallSpec()) // cache hit

	resp, data = doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d %s", resp.StatusCode, data)
	}
	var st Stats
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if st.Jobs[StatusDone] != 2 {
		t.Fatalf("stats done jobs = %d, want 2", st.Jobs[StatusDone])
	}
	if st.SweepsExecuted != 1 || srv.SweepsExecuted() != 1 {
		t.Fatalf("sweeps executed = %d, want 1", st.SweepsExecuted)
	}
	if st.Cache.Hits < 1 || st.Cache.Size != 1 {
		t.Fatalf("cache stats %+v", st.Cache)
	}
	if st.Workers != 1 {
		t.Fatalf("stats workers = %d", st.Workers)
	}
}

// TestAsyncnetVirtualJobsAreCached: the virtual-time scheduler made
// asyncnet deterministic, so an identical second POST is a pure cache hit
// — byte-identical result, no second sweep.
func TestAsyncnetVirtualJobsAreCached(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1})
	spec := JobSpec{
		Source: epidemicSource, Engine: "asyncnet",
		N: 60, Initial: map[string]int{"x": 50, "y": 10}, Periods: 4,
	}
	resp, data := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit asyncnet: %d %s", resp.StatusCode, data)
	}
	first := waitStatus(t, ts.URL, decodeStatus(t, data).ID, StatusDone, 60*time.Second)
	if first.Cached || first.Mode != ModeVirtual {
		t.Fatalf("first asyncnet run: cached=%v mode=%q", first.Cached, first.Mode)
	}
	total := 0
	for _, c := range first.Result.Runs[0].Rows[len(first.Result.Runs[0].Rows)-1].Counts {
		total += c
	}
	if total != 60 {
		t.Fatalf("asyncnet final counts sum to %d", total)
	}

	resp, data = doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", spec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("duplicate asyncnet submit: %d %s", resp.StatusCode, data)
	}
	dup := decodeStatus(t, data)
	if dup.Status != StatusDone || !dup.Cached || dup.CacheKey != first.CacheKey {
		t.Fatalf("duplicate virtual asyncnet POST not served from cache: %+v", dup)
	}
	if n := srv.SweepsExecuted(); n != 1 {
		t.Fatalf("two identical virtual asyncnet posts ran %d sweeps, want 1", n)
	}
	got := waitStatus(t, ts.URL, dup.ID, StatusDone, 10*time.Second)
	a, err := json.Marshal(first.Result)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(got.Result)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("cached virtual asyncnet result differs from the original")
	}
}

// TestAsyncnetWallclockJobsSkipTheCache: wallclock mode schedules real
// goroutines against real timers and remains the one uncacheable engine
// configuration — every identical POST runs its own sweep.
func TestAsyncnetWallclockJobsSkipTheCache(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1})
	spec := JobSpec{
		Source: epidemicSource, Engine: "asyncnet", Mode: ModeWallclock,
		N: 60, Initial: map[string]int{"x": 50, "y": 10}, Periods: 2,
	}
	for i := 1; i <= 2; i++ {
		resp, data := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", spec)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit wallclock asyncnet %d: %d %s", i, resp.StatusCode, data)
		}
		st := waitStatus(t, ts.URL, decodeStatus(t, data).ID, StatusDone, 60*time.Second)
		if st.Cached {
			t.Fatal("wallclock asyncnet job served from cache")
		}
		if st.Mode != ModeWallclock {
			t.Fatalf("wallclock job reports mode %q", st.Mode)
		}
		if n := srv.SweepsExecuted(); n != int64(i) {
			t.Fatalf("after %d wallclock posts: %d sweeps", i, n)
		}
		total := 0
		for _, c := range st.Result.Runs[0].Rows[len(st.Result.Runs[0].Rows)-1].Counts {
			total += c
		}
		if total != 60 {
			t.Fatalf("asyncnet final counts sum to %d", total)
		}
	}
}

// TestCloseFinishesQueuedJobs guards the graceful-shutdown path: jobs
// still sitting in the queue when the server closes must reach a terminal
// state (and close their streams) instead of staying "queued" forever.
func TestCloseFinishesQueuedJobs(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 8})
	running, err := srv.Submit(slowSpec())
	if err != nil {
		t.Fatal(err)
	}
	queuedSpec := slowSpec()
	queuedSpec.Seed = 2
	queued, err := srv.Submit(queuedSpec)
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if st := running.Snapshot(false); st.Status != StatusCancelled {
		t.Fatalf("running job after Close: %s", st.Status)
	}
	if st := queued.Snapshot(false); st.Status != StatusCancelled {
		t.Fatalf("queued job after Close: %s", st.Status)
	}
	select {
	case <-queued.done:
	default:
		t.Fatal("queued job's done channel still open after Close")
	}
	// New submissions after Close are rejected, not stranded.
	if _, err := srv.Submit(smallSpec()); err == nil {
		t.Fatal("Submit accepted after Close")
	}
}

// TestWorkerCacheRecheckDoesNotDoubleCountMisses: each executed job
// should register exactly one miss (at Submit), not a second one when the
// worker re-checks the cache at pickup.
func TestWorkerCacheRecheckDoesNotDoubleCountMisses(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1})
	resp, data := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", smallSpec())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, data)
	}
	waitStatus(t, ts.URL, decodeStatus(t, data).ID, StatusDone, 30*time.Second)
	if st := srv.cache.stats(); st.Misses != 1 {
		t.Fatalf("one executed job recorded %d misses, want 1", st.Misses)
	}
}

func TestSubmitterSeesConsistentIDs(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	ids := map[string]bool{}
	for i := 0; i < 5; i++ {
		spec := smallSpec()
		spec.Seed = int64(100 + i)
		resp, data := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", spec)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %d %s", i, resp.StatusCode, data)
		}
		st := decodeStatus(t, data)
		if ids[st.ID] {
			t.Fatalf("duplicate job id %s", st.ID)
		}
		ids[st.ID] = true
	}
	for id := range ids {
		waitStatus(t, ts.URL, id, StatusDone, 60*time.Second)
	}
}
