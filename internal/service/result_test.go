package service

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"odeproto/internal/store"
)

// newFileBackedServer boots a test server over an explicit file store, so
// the disk-fallback paths exist regardless of ODEPROTO_TEST_DATA.
func newFileBackedServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	fst, err := store.Open(filepath.Join(t.TempDir(), "data"), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fst.Close() }) // runs after the server cleanup below
	cfg.Store = fst
	srv, ts := newTestServer(t, cfg)
	return srv, ts.URL
}

// rawGet issues a GET with explicit headers. Setting Accept-Encoding by
// hand also disables the transport's transparent gunzip, so tests see the
// wire bytes; absent an explicit choice the request pins identity — the
// default transport would otherwise negotiate gzip on its own and hide
// the Content-Length/Content-Encoding headers under test.
func rawGet(t *testing.T, url string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept-Encoding", "identity")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// dropFromCache evicts one key from the LRU, forcing the next result GET
// onto the disk-fallback path.
func dropFromCache(srv *Server, key string) {
	srv.cache.mu.Lock()
	defer srv.cache.mu.Unlock()
	if el, ok := srv.cache.entries[key]; ok {
		srv.cache.order.Remove(el)
		delete(srv.cache.entries, key)
	}
}

// runSmallJob submits smallSpec and returns its terminal status.
func runSmallJob(t *testing.T, base string) JobStatus {
	t.Helper()
	resp, data := doJSON(t, http.MethodPost, base+"/v1/jobs", smallSpec())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, data)
	}
	return waitStatus(t, base, decodeStatus(t, data).ID, StatusDone, 30*time.Second)
}

// TestResultBytesIdenticalAcrossPaths pins the encode-once contract: the
// LRU-hit result GET, the disk-fallback result GET, and the result spliced
// into the job-status envelope all serve the same canonical bytes — the
// single json.Marshal performed at completion.
func TestResultBytesIdenticalAcrossPaths(t *testing.T) {
	srv, base := newFileBackedServer(t, Config{Workers: 1})
	done := runSmallJob(t, base)
	key := done.CacheKey

	// LRU-hit path.
	resp, canonical := rawGet(t, base+"/v1/results/"+key, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result GET: %d %s", resp.StatusCode, canonical)
	}
	wantETag := `"` + key + `"`
	if got := resp.Header.Get("ETag"); got != wantETag {
		t.Fatalf("ETag = %q, want %q", got, wantETag)
	}
	if got := resp.Header.Get("Content-Length"); got != strconv.Itoa(len(canonical)) {
		t.Fatalf("Content-Length = %q for %d body bytes", got, len(canonical))
	}
	// The canonical bytes round-trip: JobResult holds only ints and
	// strings, so re-encoding the decoded struct reproduces them exactly.
	reenc, err := json.Marshal(done.Result)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(canonical, reenc) {
		t.Fatal("result endpoint bytes differ from the re-encoded status result")
	}

	// Status-splice path: the result object inside GET /v1/jobs/{id} is the
	// same raw buffer, byte for byte.
	resp, stBody := rawGet(t, base+"/v1/jobs/"+done.ID, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("job GET: %d %s", resp.StatusCode, stBody)
	}
	var envelope struct {
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(stBody, &envelope); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal([]byte(envelope.Result), canonical) {
		t.Fatal("status envelope result differs from the canonical result bytes")
	}

	// Disk-fallback path: evict and re-fetch; the store streams the same
	// bytes under the same ETag and exact length.
	dropFromCache(srv, key)
	resp, fromDisk := rawGet(t, base+"/v1/results/"+key, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("disk result GET: %d %s", resp.StatusCode, fromDisk)
	}
	if got := resp.Header.Get("ETag"); got != wantETag {
		t.Fatalf("disk ETag = %q, want %q", got, wantETag)
	}
	if got := resp.Header.Get("Content-Length"); got != strconv.Itoa(len(fromDisk)) {
		t.Fatalf("disk Content-Length = %q for %d body bytes", got, len(fromDisk))
	}
	if !bytes.Equal(fromDisk, canonical) {
		t.Fatal("disk-fallback bytes differ from the LRU-hit bytes")
	}
}

// TestResultConditionalGet covers the If-None-Match → 304 round-trip on
// both the LRU and disk paths, including weak-comparison forms.
func TestResultConditionalGet(t *testing.T) {
	srv, base := newFileBackedServer(t, Config{Workers: 1})
	done := runSmallJob(t, base)
	key := done.CacheKey
	etag := `"` + key + `"`

	for _, inm := range []string{etag, "W/" + etag, `"other", ` + etag, "*"} {
		resp, body := rawGet(t, base+"/v1/results/"+key, map[string]string{"If-None-Match": inm})
		if resp.StatusCode != http.StatusNotModified {
			t.Fatalf("If-None-Match %q: status %d, want 304", inm, resp.StatusCode)
		}
		if len(body) != 0 {
			t.Fatalf("304 carried a %d-byte body", len(body))
		}
		if got := resp.Header.Get("ETag"); got != etag {
			t.Fatalf("304 ETag = %q, want %q", got, etag)
		}
	}
	// A stale validator still gets the full representation.
	resp, body := rawGet(t, base+"/v1/results/"+key, map[string]string{"If-None-Match": `"stale"`})
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("stale If-None-Match: %d with %d bytes, want 200 with body", resp.StatusCode, len(body))
	}

	// Same round-trip once the blob is out of the LRU: the disk path must
	// answer 304 from the open alone, without reading result bytes.
	dropFromCache(srv, key)
	resp, body = rawGet(t, base+"/v1/results/"+key, map[string]string{"If-None-Match": etag})
	if resp.StatusCode != http.StatusNotModified || len(body) != 0 {
		t.Fatalf("disk 304: %d with %d bytes", resp.StatusCode, len(body))
	}
}

// TestResultGzipVariant: Accept-Encoding: gzip serves a compressed body
// that decompresses to exactly the canonical bytes — from the in-memory
// variant on a cache hit, and from the persisted sibling blob once the
// entry has left the LRU. q=0 opts back out.
func TestResultGzipVariant(t *testing.T) {
	srv, base := newFileBackedServer(t, Config{Workers: 1})
	done := runSmallJob(t, base)
	key := done.CacheKey

	_, canonical := rawGet(t, base+"/v1/results/"+key, nil)

	check := func(label string) {
		t.Helper()
		resp, body := rawGet(t, base+"/v1/results/"+key, map[string]string{"Accept-Encoding": "gzip"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", label, resp.StatusCode)
		}
		if got := resp.Header.Get("Content-Encoding"); got != "gzip" {
			t.Fatalf("%s: Content-Encoding = %q", label, got)
		}
		if got := resp.Header.Get("Content-Length"); got != strconv.Itoa(len(body)) {
			t.Fatalf("%s: Content-Length = %q for %d wire bytes", label, got, len(body))
		}
		zr, err := gzip.NewReader(bytes.NewReader(body))
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		plain, err := io.ReadAll(zr)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if !bytes.Equal(plain, canonical) {
			t.Fatalf("%s: gzip body does not decompress to the canonical bytes", label)
		}
	}
	check("cache-hit gzip")

	// The first gzip request persisted the sibling; the disk path serves it
	// without touching the identity blob.
	dropFromCache(srv, key)
	check("sibling gzip")

	// An explicit q=0 refuses gzip: identity bytes come back.
	resp, body := rawGet(t, base+"/v1/results/"+key, map[string]string{"Accept-Encoding": "gzip;q=0"})
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Encoding") != "" {
		t.Fatalf("q=0: status %d, Content-Encoding %q", resp.StatusCode, resp.Header.Get("Content-Encoding"))
	}
	if !bytes.Equal(body, canonical) {
		t.Fatal("q=0 response differs from the canonical bytes")
	}
}

// TestResultEncodeOnceCounter is the zero-marshal regression test: every
// cache-hit result GET (304s included) and every status splice must tick
// result_encodes_saved — the designated witness that no per-request
// json.Marshal ran on the hot path. If someone reintroduces a marshal,
// this counter is the contract they have to delete to get the test green.
func TestResultEncodeOnceCounter(t *testing.T) {
	srv, base := newFileBackedServer(t, Config{Workers: 1})
	done := runSmallJob(t, base)
	key := done.CacheKey

	before := srv.Stats().ResultEncodesSaved
	const hot = 5
	for i := 0; i < hot; i++ {
		resp, _ := rawGet(t, base+"/v1/results/"+key, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("hot GET %d: status %d", i, resp.StatusCode)
		}
	}
	resp, _ := rawGet(t, base+"/v1/results/"+key, map[string]string{"If-None-Match": `"` + key + `"`})
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional GET: status %d", resp.StatusCode)
	}
	resp, _ = rawGet(t, base+"/v1/jobs/"+done.ID, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status GET: %d", resp.StatusCode)
	}
	after := srv.Stats().ResultEncodesSaved
	if got, want := after-before, int64(hot+2); got != want {
		t.Fatalf("result_encodes_saved advanced by %d, want %d (5 hot GETs + 1 conditional + 1 splice)", got, want)
	}
	if served := srv.Stats().ResultBytesServed; served <= 0 {
		t.Fatalf("result_bytes_served = %d, want > 0", served)
	}
}

// TestFigureTraceConditionalHeaders: the SVG endpoints of a finished job
// carry a strong validator and an exact Content-Length, and honor
// If-None-Match.
func TestFigureTraceConditionalHeaders(t *testing.T) {
	_, base := newFileBackedServer(t, Config{Workers: 1})
	done := runSmallJob(t, base)

	for _, path := range []string{
		"/v1/jobs/" + done.ID + "/figure.svg",
		"/v1/jobs/" + done.ID + "/trace.svg",
	} {
		resp, body := rawGet(t, base+path, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		if got := resp.Header.Get("Content-Length"); got != strconv.Itoa(len(body)) {
			t.Fatalf("%s: Content-Length = %q for %d body bytes", path, got, len(body))
		}
		etag := resp.Header.Get("ETag")
		if etag == "" {
			t.Fatalf("%s: no ETag on a finished job", path)
		}
		resp, body = rawGet(t, base+path, map[string]string{"If-None-Match": etag})
		if resp.StatusCode != http.StatusNotModified || len(body) != 0 {
			t.Fatalf("%s conditional: %d with %d bytes", path, resp.StatusCode, len(body))
		}
	}
}
