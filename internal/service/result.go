package service

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"sync"
)

// resultBlob is the encode-once form of a finished result: the canonical
// JSON bytes — the exact bytes store.PutResult holds — plus lazily
// memoized views (decoded struct, pre-rendered stream rows, gzip variant)
// built at most once per blob, never per request. Every read path of a
// completed job serves from one of these buffers: GET /v1/results/{key}
// copies data, GET /v1/jobs/{id} splices data into the status envelope,
// stream replays copy the rendered rows, and Accept-Encoding: gzip copies
// the compressed variant. All fields are immutable after the sync.Once
// that fills them, so blobs are shared freely across jobs and handlers.
type resultBlob struct {
	key  string
	data []byte // canonical JSON encoding, as persisted

	// persistable marks blobs whose bytes the durable store holds under
	// key, so the gzip variant may be persisted as a sibling blob. It is
	// false for non-cacheable (wallclock) results: their key is a spec
	// hash, not a content address — a different run of the same spec
	// yields different bytes, and a persisted sibling would poison any
	// deterministic result later stored under the key.
	persistable bool

	decodeOnce sync.Once
	decoded    *JobResult
	decodeErr  error

	rowsOnce sync.Once
	rowsData [][]byte

	gzOnce sync.Once
	gzData []byte
}

// newResultBlob encodes a completed result exactly once. This is the only
// place a finished JobResult meets json.Marshal; everything downstream
// copies the returned bytes.
func newResultBlob(key string, res *JobResult) *resultBlob {
	data, err := json.Marshal(res)
	if err != nil {
		// JobResult contains only marshalable types; unreachable.
		panic("service: result marshal: " + err.Error())
	}
	return &resultBlob{key: key, data: data, decoded: res}
}

// newResultBlobFromBytes wraps already-canonical bytes (a stored blob)
// without decoding them; the struct is recovered lazily if a handler needs
// it. Callers are expected to have checked json.Valid.
func newResultBlobFromBytes(key string, data []byte) *resultBlob {
	return &resultBlob{key: key, data: data}
}

// result returns the decoded struct, unmarshaling the canonical bytes at
// most once per blob (blobs built from a fresh sweep never unmarshal).
func (b *resultBlob) result() (*JobResult, error) {
	b.decodeOnce.Do(func() {
		if b.decoded != nil {
			return
		}
		res := new(JobResult)
		if err := json.Unmarshal(b.data, res); err != nil {
			b.decodeErr = err
			return
		}
		b.decoded = res
	})
	return b.decoded, b.decodeErr
}

// streamRows returns the result's stream replay — one newline-terminated
// NDJSON row per recorded period, exactly what a live run would have
// streamed — rendered at most once per blob and shared by every replay.
// Callers must not mutate the rows or append to the returned slice's
// backing array (re-slice with a full slice expression first).
func (b *resultBlob) streamRows() [][]byte {
	b.rowsOnce.Do(func() {
		res, err := b.result()
		if err != nil {
			return
		}
		n := 0
		for i := range res.Runs {
			n += len(res.Runs[i].Rows)
		}
		rows := make([][]byte, 0, n)
		for i := range res.Runs {
			run := &res.Runs[i]
			for _, row := range run.Rows {
				rows = append(rows, renderRow(StreamRow{Run: i, Seed: run.Seed, Period: row.Period, Counts: row.Counts}))
			}
		}
		b.rowsData = rows
	})
	return b.rowsData
}

// size is the canonical encoding's byte length (the identity
// Content-Length).
func (b *resultBlob) size() int { return len(b.data) }

// resultGzip returns blob's gzip variant, built at most once: a persisted
// sibling blob is preferred (so restarts warm compressed serving without
// recompressing), otherwise the canonical bytes are compressed here and —
// for persistable blobs — written back as the sibling, best-effort.
func (s *Server) resultGzip(b *resultBlob) []byte {
	b.gzOnce.Do(func() {
		if b.persistable {
			if gz, err := s.store.GetResultGzip(b.key); err == nil {
				b.gzData = gz
				return
			}
		}
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		// Writes into a bytes.Buffer cannot fail.
		_, _ = zw.Write(b.data)
		_ = zw.Close()
		b.gzData = buf.Bytes()
		if b.persistable {
			if err := s.store.PutResultGzip(b.key, b.gzData); err != nil {
				// The sibling is only a cache of the canonical bytes; a failed
				// write costs future recompressions, not correctness.
				s.met.storeErrs.Inc()
				s.log.Warn("gzip sibling write failed", "key", b.key, "err", err)
			}
		}
	})
	return b.gzData
}

// etagForKey is the strong ETag of a result: results are immutable and
// content-addressed, so the key is a perfect validator.
func etagForKey(key string) string { return `"` + key + `"` }

// ifNoneMatchHit reports whether the request's If-None-Match header
// matches etag. Conditional GETs use weak comparison (RFC 9110 §13.1.2),
// so a W/ prefix on either side is ignored; "*" matches any extant
// representation.
func ifNoneMatchHit(r *http.Request, etag string) bool {
	h := r.Header.Get("If-None-Match")
	if h == "" {
		return false
	}
	etag = strings.TrimPrefix(etag, "W/")
	for _, part := range strings.Split(h, ",") {
		part = strings.TrimSpace(part)
		if part == "*" {
			return true
		}
		if strings.TrimPrefix(part, "W/") == etag {
			return true
		}
	}
	return false
}

// acceptsGzip reports whether the client negotiated gzip (identity stays
// the fallback either way, so only an explicit gzip token with a nonzero
// q-value switches the encoding).
func acceptsGzip(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		enc, params, _ := strings.Cut(part, ";")
		if strings.TrimSpace(enc) != "gzip" {
			continue
		}
		if q, ok := strings.CutPrefix(strings.TrimSpace(params), "q="); ok {
			if v, err := strconv.ParseFloat(strings.TrimSpace(q), 64); err == nil && v == 0 {
				return false
			}
		}
		return true
	}
	return false
}

// serveResultBlob answers a result request entirely from canonical bytes:
// ETag first — a 304 returns before any result-sized buffer is touched —
// then the gzip or identity variant with an exact Content-Length. No JSON
// is encoded on this path, ever; the encodes-saved counter records each
// request the old per-request marshal would have paid.
func (s *Server) serveResultBlob(w http.ResponseWriter, r *http.Request, b *resultBlob) {
	etag := etagForKey(b.key)
	h := w.Header()
	h.Set("ETag", etag)
	h.Set("Vary", "Accept-Encoding")
	s.met.encodesSaved.Inc()
	if ifNoneMatchHit(r, etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	body := b.data
	if acceptsGzip(r) {
		if gz := s.resultGzip(b); len(gz) > 0 {
			h.Set("Content-Encoding", "gzip")
			body = gz
		}
	}
	h.Set("Content-Type", "application/json")
	h.Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(http.StatusOK)
	n, _ := w.Write(body)
	s.met.bytesServed.Add(int64(n))
}

// HasResult reports whether this node can serve GET /v1/results/{key}
// locally, from the LRU or the durable store, without reading any result
// bytes. The cluster router probes substitutes with it instead of
// replaying the whole request into a buffering recorder.
func (s *Server) HasResult(key string) bool {
	if s.cache.contains(key) {
		return true
	}
	rc, _, err := s.store.GetResultReader(key)
	if err != nil {
		return false
	}
	_ = rc.Close()
	return true
}
