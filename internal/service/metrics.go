package service

import (
	"time"

	"odeproto/internal/obs"
)

// serviceMetrics is every counter the service maintains, held in the
// shared obs registry. /v1/stats reads these same values back
// (Server.stats), so the JSON stats and the /metrics exposition cannot
// disagree.
type serviceMetrics struct {
	submitted    *obs.Counter
	coalesced    *obs.Counter
	rejected     *obs.Counter
	failed       *obs.Counter
	sweeps       *obs.Counter
	cacheHits    *obs.Counter
	cacheMisses  *obs.Counter
	diskHits     *obs.Counter
	storeErrs    *obs.Counter
	encodesSaved *obs.Counter
	bytesServed  *obs.Counter
	queueWait    *obs.Histogram
	jobDuration  *obs.Histogram
	sweepLatency *obs.HistogramVec
}

func newServiceMetrics(r *obs.Registry) *serviceMetrics {
	return &serviceMetrics{
		submitted: r.Counter("odeproto_jobs_submitted_total",
			"Jobs accepted by submit (including cache hits; excluding coalesced twins and rejections)."),
		coalesced: r.Counter("odeproto_jobs_coalesced_total",
			"Submissions answered by an identical in-flight job (single-flight dedup)."),
		rejected: r.Counter("odeproto_jobs_rejected_total",
			"Submissions rejected with 429 because the bounded queue was full (admission control)."),
		failed: r.Counter("odeproto_jobs_failed_total",
			"Jobs that reached the failed state (the bad-event count for the error-rate SLO)."),
		sweeps: r.Counter("odeproto_sweeps_executed_total",
			"Sweeps actually simulated (cache hits do not count)."),
		cacheHits: r.Counter("odeproto_cache_hits_total",
			"Result-cache lookups answered from the in-memory LRU."),
		cacheMisses: r.Counter("odeproto_cache_misses_total",
			"Result-cache lookups that missed the LRU (disk hits also count here)."),
		diskHits: r.Counter("odeproto_result_disk_hits_total",
			"LRU misses answered from the durable result store."),
		storeErrs: r.Counter("odeproto_store_errors_total",
			"Store faults absorbed by the service (failed WAL appends, unreadable result blobs)."),
		encodesSaved: r.Counter("odeproto_result_encodes_saved_total",
			"Result reads served from the encode-once canonical bytes with no per-request JSON marshal: cache-hit result GETs (304s included) and job statuses spliced from the shared buffer."),
		bytesServed: r.Counter("odeproto_result_bytes_served_total",
			"Result payload bytes written to clients by the result data plane (compressed size for gzip responses)."),
		queueWait: r.Histogram("odeproto_queue_wait_seconds",
			"Time jobs spent queued before a worker picked them up.", obs.DefBuckets),
		jobDuration: r.Histogram("odeproto_job_duration_seconds",
			"End-to-end job duration from submit to terminal state (done and failed jobs; cancellations excluded) — the latency-SLO source.",
			obs.DefBuckets),
		sweepLatency: r.HistogramVec("odeproto_sweep_latency_seconds",
			"Per-run sweep execution latency, by engine and asyncnet mode (mode is empty for the synchronous engines).",
			obs.DefBuckets, "engine", "mode"),
	}
}

// registerGauges wires the scrape-time-sampled families that read state
// another structure already owns (queue, cache, startup counters) —
// exposed without double bookkeeping.
func (s *Server) registerGauges(r *obs.Registry) {
	r.GaugeFunc("odeproto_queue_depth",
		"Jobs waiting in the bounded queue.",
		func() float64 { return float64(len(s.queue)) })
	r.GaugeFunc("odeproto_queue_capacity",
		"Capacity of the bounded job queue.",
		func() float64 { return float64(s.cfg.QueueDepth) })
	r.GaugeFunc("odeproto_cache_size",
		"Results currently held by the in-memory LRU.",
		func() float64 { return float64(s.cache.stats().Size) })
	r.GaugeFunc("odeproto_cache_capacity",
		"Capacity of the in-memory result LRU.",
		func() float64 { return float64(s.cfg.CacheSize) })
	r.GaugeFunc("odeproto_warmed_results",
		"Results loaded from disk into the LRU at startup.",
		func() float64 { return float64(s.warmed) })
	r.GaugeFunc("odeproto_resumed_jobs",
		"Interrupted jobs the daemon resubmitted itself at startup.",
		func() float64 { return float64(s.resumed) })
}

// observeSweepLatency records one run's wall-clock duration under the
// job's engine+mode series, with the job's trace as the bucket exemplar.
// Engine names and modes are validated enums (spec.normalize), so the
// label set is bounded.
func (s *Server) observeSweepLatency(engine, mode, traceID string, d time.Duration) {
	s.met.sweepLatency.With(engine, mode).ObserveTraced(d.Seconds(), traceID)
}
