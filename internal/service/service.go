// Package service exposes the full paper pipeline — parse ODEs, rewrite to
// mappable form (§7), translate to a distributed protocol (§3/§6), and
// simulate at scale (§5) — as a long-running HTTP/JSON service.
//
// Architecture: POST /v1/jobs validates and compiles the request up front,
// then either answers it from a content-addressed result cache or enqueues
// it on a bounded queue feeding a worker pool; workers route execution
// through harness.SweepContext so DELETE /v1/jobs/{id} can abort in-flight
// sweeps at a period boundary. The cache is sound because sweep output is
// byte-identical for a fixed normalized spec (seed derivation and the
// agent engine's shard count K are both part of the cache key); the
// asyncnet engine is the one exception — it schedules real goroutines
// against wall-clock timers — and is therefore never cached.
//
// Endpoints:
//
//	POST   /v1/compile             ODE source → taxonomy, actions, expected flow
//	POST   /v1/jobs                enqueue a sweep (or answer it from cache)
//	GET    /v1/jobs                list job statuses
//	GET    /v1/jobs/{id}           status + result
//	DELETE /v1/jobs/{id}           cancel a queued or running job
//	GET    /v1/jobs/{id}/stream    NDJSON per-period counts as the run progresses
//	GET    /v1/jobs/{id}/figure.svg  rendered trajectory (internal/plot)
//	GET    /v1/stats               cache/queue/worker counters
//	GET    /v1/healthz             liveness
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Config sizes the service.
type Config struct {
	// Workers is the number of jobs simulated concurrently (default 2).
	Workers int
	// QueueDepth bounds the jobs waiting to run (default 64); submissions
	// beyond it are rejected with 503.
	QueueDepth int
	// CacheSize bounds the content-addressed result cache (default 256
	// results, LRU eviction).
	CacheSize int
	// SweepWorkers is the harness worker-pool size each job's sweep uses
	// (0 = all cores).
	SweepWorkers int
	// Limits bound a single job's size; zero fields take the defaults.
	Limits Limits
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 256
	}
	if c.Limits.MaxN == 0 {
		c.Limits.MaxN = defaultLimits.MaxN
	}
	if c.Limits.MaxPeriods == 0 {
		c.Limits.MaxPeriods = defaultLimits.MaxPeriods
	}
	if c.Limits.MaxSeeds == 0 {
		c.Limits.MaxSeeds = defaultLimits.MaxSeeds
	}
	if c.Limits.MaxShards == 0 {
		c.Limits.MaxShards = defaultLimits.MaxShards
	}
	if c.Limits.MaxRows == 0 {
		c.Limits.MaxRows = defaultLimits.MaxRows
	}
	return c
}

// Server is the compile-and-simulate service: job store, bounded queue,
// worker pool, and content-addressed result cache.
type Server struct {
	cfg   Config
	cache *resultCache

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // insertion order, for listing
	nextID int

	queue      chan *Job
	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup
	closeOnce  sync.Once
	closed     atomic.Bool

	sweeps atomic.Int64
}

var errNotFound = errors.New("job not found")

// New builds a Server and starts its worker pool. Call Close to stop it.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		cache:      newResultCache(cfg.CacheSize),
		jobs:       make(map[string]*Job),
		queue:      make(chan *Job, cfg.QueueDepth),
		baseCtx:    ctx,
		baseCancel: cancel,
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Close cancels every in-flight job, stops the workers, and finishes any
// still-queued jobs as cancelled — leaving a queued job in limbo would
// hold its /stream responses open forever and stall the HTTP server's
// graceful shutdown behind them. Idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.closed.Store(true) // reject new submissions first
		s.baseCancel()
		s.wg.Wait()
		for {
			select {
			case job := <-s.queue:
				job.mu.Lock()
				if job.status != StatusQueued {
					job.mu.Unlock()
					continue
				}
				job.status = StatusCancelled
				job.errMsg = "service shut down before the job started"
				job.finished = time.Now()
				job.mu.Unlock()
				job.completeStream(StatusCancelled)
			default:
				return
			}
		}
	})
}

// SweepsExecuted reports how many sweeps actually simulated (cache hits
// do not count) — the run counter the cache tests and the determinism
// acceptance test key on.
func (s *Server) SweepsExecuted() int64 { return s.sweeps.Load() }

// job looks up a job by ID.
func (s *Server) job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Submit validates, compiles, and registers a job. Cache hits return an
// already-done job; misses are enqueued. A full queue returns an error
// that the HTTP layer maps to 503.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	if s.closed.Load() {
		return nil, errQueueFull
	}
	comp, err := spec.normalize(s.cfg.Limits)
	if err != nil {
		return nil, &inputError{err}
	}
	key := spec.cacheKey(comp)

	job := &Job{
		Key:     key,
		spec:    spec,
		comp:    comp,
		status:  StatusQueued,
		created: time.Now(),
		rows:    newRowBuffer(),
		done:    make(chan struct{}),
	}

	if spec.cacheable() {
		if res, ok := s.cache.get(key); ok {
			job.status = StatusDone
			job.result = res
			job.cached = true
			job.started = job.created
			job.finished = time.Now()
			fillRowsFromResult(job.rows, res)
			job.rows.append(StreamRow{Event: string(StatusDone), Period: -1})
			job.rows.closeBuf()
			close(job.done)
			s.register(job)
			return job, nil
		}
	}

	s.register(job)
	select {
	case s.queue <- job:
		return job, nil
	default:
		// Bounded queue full: withdraw the job and push back.
		s.unregister(job.ID)
		return nil, errQueueFull
	}
}

var errQueueFull = errors.New("job queue is full")

// register assigns an ID and stores the job.
func (s *Server) register(job *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	job.ID = fmt.Sprintf("j%06d", s.nextID)
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
}

func (s *Server) unregister(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.jobs, id)
	for i, jid := range s.order {
		if jid == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

// Stats is the body of GET /v1/stats.
type Stats struct {
	Jobs           map[Status]int `json:"jobs"`
	QueueDepth     int            `json:"queue_depth"`
	QueueCapacity  int            `json:"queue_capacity"`
	Workers        int            `json:"workers"`
	SweepsExecuted int64          `json:"sweeps_executed"`
	Cache          CacheStats     `json:"cache"`
}

func (s *Server) stats() Stats {
	st := Stats{
		Jobs:           make(map[Status]int),
		QueueCapacity:  s.cfg.QueueDepth,
		Workers:        s.cfg.Workers,
		SweepsExecuted: s.sweeps.Load(),
		Cache:          s.cache.stats(),
	}
	s.mu.Lock()
	for _, id := range s.order {
		st.Jobs[s.jobs[id].Snapshot(false).Status]++
	}
	s.mu.Unlock()
	st.QueueDepth = len(s.queue)
	return st
}

// inputError marks validation/compile failures (HTTP 400).
type inputError struct{ err error }

func (e *inputError) Error() string { return e.err.Error() }
func (e *inputError) Unwrap() error { return e.err }

// Handler returns the service's HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/compile", s.handleCompile)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /v1/jobs/{id}/figure.svg", s.handleFigure)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	var req CompileRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	comp, err := compilePipeline(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, compileResponse(req, comp))
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := decodeBody(r, &spec); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	job, err := s.Submit(spec)
	switch {
	case err == nil:
	case errors.Is(err, errQueueFull):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	default:
		var ie *inputError
		if errors.As(err, &ie) {
			writeError(w, http.StatusBadRequest, err)
		} else {
			writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	st := job.Snapshot(false)
	status := http.StatusAccepted
	if st.Status == StatusDone {
		status = http.StatusOK // served from cache, no work pending
	}
	writeJSON(w, status, st)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*Job, len(ids))
	for i, id := range ids {
		jobs[i] = s.jobs[id]
	}
	s.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.Snapshot(false)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errNotFound)
		return
	}
	writeJSON(w, http.StatusOK, job.Snapshot(true))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.Cancel(r.PathValue("id"))
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, st)
	case errors.Is(err, errNotFound):
		writeError(w, http.StatusNotFound, err)
	default:
		writeError(w, http.StatusConflict, err)
	}
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	ctx := r.Context()
	stop := context.AfterFunc(ctx, job.rows.broadcast)
	defer stop()

	sent := 0
	for {
		rows, closed := job.rows.wait(sent, func() bool { return ctx.Err() != nil })
		if ctx.Err() != nil {
			return
		}
		for ; sent < len(rows); sent++ {
			// Two writes: appending '\n' to the shared row slice could
			// scribble on the marshal buffer another reader is sending.
			if _, err := w.Write(rows[sent]); err != nil {
				return
			}
			if _, err := w.Write([]byte{'\n'}); err != nil {
				return
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		if closed && sent == len(rows) {
			return
		}
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.stats())
}
