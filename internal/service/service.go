// Package service exposes the full paper pipeline — parse ODEs, rewrite to
// mappable form (§7), translate to a distributed protocol (§3/§6), and
// simulate at scale (§5) — as a long-running HTTP/JSON service.
//
// Architecture: POST /v1/jobs validates and compiles the request up front,
// then either answers it from a content-addressed result cache or enqueues
// it on a bounded queue feeding a worker pool; workers route execution
// through harness.SweepContext so DELETE /v1/jobs/{id} can abort in-flight
// sweeps at a period boundary. The cache is sound because sweep output is
// byte-identical for a fixed normalized spec (seed derivation, the agent
// engine's shard count K, and the asyncnet mode are all part of the
// cache key); wallclock-mode asyncnet is the one exception — it
// schedules real goroutines against wall-clock timers — and is therefore
// never cached, while the default virtual mode runs on a deterministic
// discrete-event scheduler and caches like every other engine.
//
// Durability is pluggable (internal/store): job lifecycle transitions are
// journaled to the configured Store and completed results are written as
// content-addressed blobs before their job is marked done, so with the
// file backend a restarted daemon recovers its job list, warms the LRU
// from disk, serves previously computed results without re-simulating,
// and marks jobs the crash caught mid-run as failed-restartable. An
// identical cacheable spec POSTed while its twin is still in flight
// coalesces onto the in-flight job (single-flight deduplication) instead
// of running a second sweep.
//
// The read side is an encode-once data plane (result.go): a completed
// result is marshaled exactly once, and the canonical bytes — the same
// buffer the blob store persists — back every response afterwards.
// GET /v1/results/{key} copies them, job statuses splice them in as raw
// JSON, stream replays copy pre-rendered rows memoized on the blob, and
// gzip responses copy a lazily-built compressed variant (persisted as a
// sibling blob). The content address doubles as a strong ETag, so
// If-None-Match revalidations answer 304 before any result-sized buffer
// is touched; results evicted from the LRU stream from disk through the
// store's reader without whole-blob buffering.
//
// Endpoints:
//
//	POST   /v1/compile             ODE source → taxonomy, actions, expected flow
//	POST   /v1/jobs                enqueue a sweep (or answer it from cache/disk)
//	GET    /v1/jobs                list job statuses
//	GET    /v1/jobs/{id}           status + result
//	DELETE /v1/jobs/{id}           cancel a queued or running job
//	GET    /v1/jobs/{id}/stream    NDJSON per-period counts as the run progresses
//	GET    /v1/jobs/{id}/figure.svg  rendered trajectory (internal/plot)
//	GET    /v1/jobs/{id}/trace.svg   lifecycle waterfall (internal/plot)
//	GET    /v1/slo                 burn-rate SLO states + windowed latency quantiles
//	GET    /v1/results/{key}       fetch a persisted result by cache key
//	GET    /v1/stats               cache/queue/worker/store counters
//	GET    /v1/healthz             liveness
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"odeproto/internal/obs"
	"odeproto/internal/store"
)

// Config sizes the service.
type Config struct {
	// Workers is the number of jobs simulated concurrently (default 2).
	Workers int
	// QueueDepth bounds the jobs waiting to run (default 64); submissions
	// beyond it are rejected with 429 and a Retry-After derived from the
	// windowed p95 queue wait (admission control).
	QueueDepth int
	// CacheSize bounds the content-addressed result cache (default 256
	// results, LRU eviction).
	CacheSize int
	// SweepWorkers is the harness worker-pool size each job's sweep uses
	// (0 = all cores).
	SweepWorkers int
	// Limits bound a single job's size; zero fields take the defaults.
	Limits Limits
	// Store persists job lifecycle records and completed results; nil
	// selects the in-memory (non-durable) backend. The caller owns the
	// store's lifetime and must Close it only after Server.Close returns
	// (shutdown journals the cancellation of still-queued jobs).
	Store store.Store
	// ResumeInterrupted resubmits jobs that recovery found queued or
	// mid-run at crash time (their specs are preserved in the WAL)
	// instead of leaving the retry to the client. The interrupted job
	// still reports failed, with its error naming the resubmission.
	ResumeInterrupted bool
	// JobIDPrefix is prepended to every generated job ID ("n1-" turns
	// j000042 into n1-j000042). A cluster front-end (internal/cluster)
	// gives each node a distinct prefix so any node can route a job ID
	// back to the node that owns the job; standalone daemons leave it
	// empty and keep the historical format. Recovery strips the same
	// prefix when continuing the ID sequence past recovered jobs.
	JobIDPrefix string
	// Metrics is the obs registry every service counter lives in —
	// /v1/stats reads the same values /metrics renders. nil gets a
	// private registry (the metrics still exist, just unscraped).
	Metrics *obs.Registry
	// Logger receives the structured serving-path log (submissions,
	// completions with their trace, store faults). nil discards.
	Logger *slog.Logger
	// Node names this daemon in traces and log records (a cluster
	// front-end passes the node's self address; standalone daemons may
	// leave it empty).
	Node string
	// SLO configures the burn-rate SLO evaluator (GET /v1/slo, the
	// odeproto_slo_* gauges, and the 429 Retry-After hint). nil takes
	// DefaultSLOConfig; a non-nil config must already be validated
	// (ParseSLOConfig validates, the -slo-config flag path).
	SLO *SLOConfig
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 256
	}
	if c.Limits.MaxN == 0 {
		c.Limits.MaxN = defaultLimits.MaxN
	}
	if c.Limits.MaxPeriods == 0 {
		c.Limits.MaxPeriods = defaultLimits.MaxPeriods
	}
	if c.Limits.MaxSeeds == 0 {
		c.Limits.MaxSeeds = defaultLimits.MaxSeeds
	}
	if c.Limits.MaxShards == 0 {
		c.Limits.MaxShards = defaultLimits.MaxShards
	}
	if c.Limits.MaxRows == 0 {
		c.Limits.MaxRows = defaultLimits.MaxRows
	}
	if c.Store == nil {
		c.Store = store.NewMemory()
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	if c.Logger == nil {
		c.Logger = obs.NopLogger()
	}
	return c
}

// Server is the compile-and-simulate service: job store, bounded queue,
// worker pool, content-addressed result cache, and the durable store
// behind it.
type Server struct {
	cfg   Config
	cache *resultCache
	store store.Store

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // insertion order, for listing
	nextID   int
	inflight map[string]*Job // cache key → non-terminal job, for single-flight dedup

	queue      chan *Job
	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup
	closeOnce  sync.Once
	closed     atomic.Bool

	met     *serviceMetrics
	reg     *obs.Registry
	log     *slog.Logger
	slo     *sloEvaluator
	warmed  int // results loaded from disk into the LRU at startup
	resumed int // interrupted jobs auto-resubmitted at startup
}

var errNotFound = errors.New("job not found")

// New builds a Server, recovers any state the configured store journaled
// before a restart, and starts the worker pool. Call Close to stop it.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	met := newServiceMetrics(cfg.Metrics)
	s := &Server{
		cfg:        cfg,
		cache:      newResultCache(cfg.CacheSize, met.cacheHits, met.cacheMisses),
		store:      cfg.Store,
		jobs:       make(map[string]*Job),
		inflight:   make(map[string]*Job),
		queue:      make(chan *Job, cfg.QueueDepth),
		baseCtx:    ctx,
		baseCancel: cancel,
		met:        met,
		reg:        cfg.Metrics,
		log:        cfg.Logger,
	}
	sloCfg := DefaultSLOConfig()
	if cfg.SLO != nil {
		sloCfg = *cfg.SLO
	}
	s.slo = newSLOEvaluator(sloCfg, met, cfg.Metrics)
	s.registerGauges(cfg.Metrics)
	store.RegisterMetrics(cfg.Metrics, s.store)
	restartable := s.recoverJobs()
	if cfg.ResumeInterrupted {
		s.resumeInterrupted(restartable)
	}
	s.wg.Add(cfg.Workers + 1)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	go s.sloLoop()
	return s
}

// Close cancels every in-flight job, stops the workers, and finishes any
// still-queued jobs as cancelled — leaving a queued job in limbo would
// hold its /stream responses open forever and stall the HTTP server's
// graceful shutdown behind them. Idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.closed.Store(true) // reject new submissions first
		s.baseCancel()
		s.wg.Wait()
		for {
			select {
			case job := <-s.queue:
				job.mu.Lock()
				if job.status != StatusQueued {
					job.mu.Unlock()
					continue
				}
				job.status = StatusCancelled
				job.errMsg = "service shut down before the job started"
				job.finished = time.Now()
				job.mu.Unlock()
				job.traceAdd(obs.StageResponded)
				job.completeStream(StatusCancelled)
				s.journal(store.JobRecord{Op: store.OpAborted, ID: job.ID, Key: job.Key, Trace: job.traceID(),
					Error: "service shut down before the job started", FinishedAt: time.Now().UnixNano()})
				s.logCompletion(job)
				s.dropInflight(job)
			default:
				return
			}
		}
	})
}

// SweepsExecuted reports how many sweeps actually simulated (cache hits
// do not count) — the run counter the cache tests and the determinism
// acceptance test key on.
func (s *Server) SweepsExecuted() int64 { return s.met.sweeps.Value() }

// Metrics returns the registry the service records into (the one Config
// supplied, or the private default).
func (s *Server) Metrics() *obs.Registry { return s.reg }

// job looks up a job by ID.
func (s *Server) job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Submit validates, compiles, and registers a job. Hits in the LRU or the
// durable result store return an already-done job; an identical cacheable
// spec still in flight returns the in-flight twin (single-flight
// deduplication); everything else is enqueued. A full queue returns an
// error that the HTTP layer maps to 503.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	return s.submitTraced(spec, "")
}

// submitTraced is Submit with an inherited trace ID (empty or malformed
// IDs mint a fresh one) — the HTTP layer passes the X-Odeproto-Trace
// header through here so a forwarded job keeps the ID the first node
// minted.
func (s *Server) submitTraced(spec JobSpec, traceID string) (*Job, error) {
	if s.closed.Load() {
		return nil, errShuttingDown
	}
	tr := obs.NewTrace(traceID, s.cfg.Node)
	created := time.Now()
	tr.Add(obs.StageQueued, created)
	comp, err := spec.normalize(s.cfg.Limits)
	if err != nil {
		return nil, &inputError{err}
	}
	tr.Add(obs.StageCompiled, time.Now())
	key := spec.cacheKey(comp)

	job := &Job{
		Key:     key,
		spec:    spec,
		comp:    comp,
		status:  StatusQueued,
		created: created,
		trace:   tr,
		rows:    newRowBuffer(),
		done:    make(chan struct{}),
	}

	if spec.cacheable() {
		if blob, ok := s.lookupResult(key); ok {
			job.status = StatusDone
			job.result = blob
			job.cached = true
			job.started = job.created
			job.finished = time.Now()
			tr.Add(obs.StageResponded, job.finished)
			// Deferred replay: the rows render (from the blob's memoized
			// stream render) only if someone actually streams this job.
			job.rows.replayBlob(blob, StatusDone)
			close(job.done)
			s.register(job)
			s.met.submitted.Inc()
			// One snapshot-style record, not a submitted/done pair: this is
			// the hot path (no sweep runs), and each append is an fsync.
			s.journal(store.JobRecord{Op: store.OpDone, ID: job.ID, Key: key,
				Spec: specJSON(&spec), Cached: true, Trace: tr.ID,
				SubmittedAt: job.created.UnixNano(), FinishedAt: job.finished.UnixNano()})
			s.logCompletion(job)
			return job, nil
		}
	}

	// Twin check, registration, and enqueue form one critical section: a
	// coalescing submitter must never be handed a job that a concurrent
	// queue-full withdrawal is about to discard.
	s.mu.Lock()
	if spec.cacheable() {
		if twin, ok := s.inflight[key]; ok {
			// The twin may be a hair past finish() with its inflight entry
			// not yet dropped; coalescing onto a terminal job would hand
			// this submitter a cancelled/failed result it never asked to
			// share. Only live twins coalesce — a dead one is overwritten
			// below (its own dropInflight compares pointers, so it cannot
			// remove our claim later).
			twin.mu.Lock()
			live := twin.status == StatusQueued || twin.status == StatusRunning
			twin.mu.Unlock()
			if live {
				s.mu.Unlock()
				s.met.coalesced.Inc()
				s.log.Info("job coalesced onto in-flight twin",
					"trace", tr.ID, "twin", twin.ID, "twin_trace", twin.traceID(), "key", key)
				return twin, nil
			}
		}
	}
	s.nextID++
	job.ID = fmt.Sprintf("%sj%06d", s.cfg.JobIDPrefix, s.nextID)
	select {
	case s.queue <- job:
	default:
		// Bounded queue full: the job was never visible, reuse its ID.
		s.nextID--
		s.mu.Unlock()
		return nil, errQueueFull
	}
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	if spec.cacheable() {
		s.inflight[key] = job
	}
	s.mu.Unlock()

	// Journal after the enqueue so a full queue leaves no ghost record.
	// The worker's own records may interleave before this one; WAL replay
	// merges by rank, and the worker stamps the key on every record, so
	// even a crash that loses this append leaves the result reachable.
	s.met.submitted.Inc()
	s.journal(store.JobRecord{Op: store.OpSubmitted, ID: job.ID, Key: key,
		Spec: specJSON(&spec), Trace: tr.ID, SubmittedAt: job.created.UnixNano()})
	s.log.Info("job queued", "trace", tr.ID, "job", job.ID, "key", key,
		"engine", spec.Engine, "mode", spec.Mode, "n", spec.N, "periods", spec.Periods, "seeds", spec.Seeds)
	return job, nil
}

var (
	// errQueueFull is admission control: the bounded queue is at
	// capacity, mapped to 429 + Retry-After (retrying can succeed).
	errQueueFull = errors.New("job queue is full")
	// errShuttingDown is terminal for this process, mapped to 503
	// (retrying against this node cannot succeed).
	errShuttingDown = errors.New("service is shutting down")
)

// register assigns an ID and stores an already-terminal job (the
// done-on-arrival cache-hit path; queued jobs register inside Submit's
// enqueue critical section).
func (s *Server) register(job *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	job.ID = fmt.Sprintf("%sj%06d", s.cfg.JobIDPrefix, s.nextID)
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
}

// RouteKey computes the content address Submit would file spec under —
// the same normalize-and-hash pipeline, without enqueueing anything. A
// cluster front-end shards on this key: the routing decision and the
// cache key must be the same hash, or two nodes could each run the same
// sweep. Validation failures come back as the 400-mapped error Submit
// would return.
func (s *Server) RouteKey(spec JobSpec) (string, error) {
	comp, err := spec.normalize(s.cfg.Limits)
	if err != nil {
		return "", &inputError{err}
	}
	return spec.cacheKey(comp), nil
}

// Stats is the body of GET /v1/stats.
type Stats struct {
	Jobs           map[Status]int `json:"jobs"`
	QueueDepth     int            `json:"queue_depth"`
	QueueCapacity  int            `json:"queue_capacity"`
	Workers        int            `json:"workers"`
	SweepsExecuted int64          `json:"sweeps_executed"`
	// CoalescedJobs counts submissions answered by returning an identical
	// in-flight job (single-flight deduplication).
	CoalescedJobs int64 `json:"coalesced_jobs"`
	// RejectedJobs counts submissions rejected with 429 because the
	// bounded queue was full (admission control).
	RejectedJobs int64      `json:"rejected_jobs"`
	Cache        CacheStats `json:"cache"`
	// ResultDiskHits counts LRU misses answered from the durable result
	// store (each also appears in the cache miss counter).
	ResultDiskHits int64 `json:"result_disk_hits"`
	// WarmedResults counts results loaded from disk into the LRU at
	// startup.
	WarmedResults int `json:"warmed_results"`
	// ResumedJobs counts interrupted jobs the daemon resubmitted itself
	// at startup (Config.ResumeInterrupted / odeprotod -resume-interrupted).
	ResumedJobs int `json:"resumed_jobs"`
	// StoreErrors counts store faults the service absorbed: failed WAL
	// appends (journaling is best-effort) and result blobs that exist but
	// cannot be read or decoded.
	StoreErrors int64 `json:"store_errors"`
	// ResultEncodesSaved counts result reads served from the encode-once
	// canonical bytes — cache-hit result GETs (304s included) and job
	// statuses spliced from the shared buffer — each one a JSON marshal
	// the pre-encode-once service would have paid per request.
	ResultEncodesSaved int64 `json:"result_encodes_saved"`
	// ResultBytesServed counts result payload bytes written to clients by
	// the result data plane (compressed size for gzip responses).
	ResultBytesServed int64       `json:"result_bytes_served"`
	Store             store.Stats `json:"store"`
}

// Stats returns a snapshot of the service counters (the body of GET
// /v1/stats).
func (s *Server) Stats() Stats { return s.stats() }

// stats assembles the /v1/stats body as a thin view over the obs
// registry: every counter below is the same Counter /metrics renders, so
// the two surfaces cannot disagree.
func (s *Server) stats() Stats {
	st := Stats{
		Jobs:               make(map[Status]int),
		QueueCapacity:      s.cfg.QueueDepth,
		Workers:            s.cfg.Workers,
		SweepsExecuted:     s.met.sweeps.Value(),
		CoalescedJobs:      s.met.coalesced.Value(),
		RejectedJobs:       s.met.rejected.Value(),
		Cache:              s.cache.stats(),
		ResultDiskHits:     s.met.diskHits.Value(),
		WarmedResults:      s.warmed,
		ResumedJobs:        s.resumed,
		StoreErrors:        s.met.storeErrs.Value(),
		ResultEncodesSaved: s.met.encodesSaved.Value(),
		ResultBytesServed:  s.met.bytesServed.Value(),
		Store:              s.store.Stats(),
	}
	s.mu.Lock()
	for _, id := range s.order {
		st.Jobs[s.jobs[id].Snapshot(false).Status]++
	}
	s.mu.Unlock()
	st.QueueDepth = len(s.queue)
	return st
}

// inputError marks validation/compile failures (HTTP 400).
type inputError struct{ err error }

func (e *inputError) Error() string { return e.err.Error() }
func (e *inputError) Unwrap() error { return e.err }

// Handler returns the service's HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/compile", s.handleCompile)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /v1/jobs/{id}/figure.svg", s.handleFigure)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/jobs/{id}/trace.svg", s.handleTraceSVG)
	mux.HandleFunc("GET /v1/slo", s.handleSLO)
	mux.HandleFunc("GET /v1/results/{key}", s.handleResult)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.Handle("GET /metrics", s.reg.Handler())
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// marshalNoEscape is json.Marshal without HTML escaping (ODE sources
// contain '<' and '>'), the encoding every JSON response body uses. The
// Encoder's trailing newline is stripped; writeJSON re-appends it.
func marshalNoEscape(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	b := buf.Bytes()
	return b[:len(b)-1], nil
}

// writeJSON buffers the encoded body so every JSON response carries an
// exact Content-Length instead of falling into chunked transfer encoding
// (the newline terminator matches the historical Encoder framing).
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	data, err := marshalNoEscape(v)
	if err != nil {
		// Nothing body-safe to send: the value failed to encode.
		w.WriteHeader(http.StatusInternalServerError)
		return
	}
	data = append(data, '\n')
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.WriteHeader(status)
	_, _ = w.Write(data)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	var req CompileRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	comp, err := compilePipeline(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, compileResponse(req, comp))
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := decodeBody(r, &spec); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	job, err := s.submitTraced(spec, r.Header.Get(obs.TraceHeader))
	switch {
	case err == nil:
	case errors.Is(err, errShuttingDown):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, errQueueFull):
		// Admission control: tell the client when a retry has a chance —
		// the windowed p95 queue wait is how long jobs currently take to
		// reach a worker, so retrying sooner meets the same full queue.
		s.met.rejected.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(s.slo.retryAfterSeconds(time.Now())))
		writeError(w, http.StatusTooManyRequests, err)
		return
	default:
		var ie *inputError
		if errors.As(err, &ie) {
			writeError(w, http.StatusBadRequest, err)
		} else {
			writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	st := job.Snapshot(false)
	if st.Trace != "" {
		w.Header().Set(obs.TraceHeader, st.Trace)
	}
	status := http.StatusAccepted
	if st.Status == StatusDone {
		status = http.StatusOK // served from cache, no work pending
	}
	writeJSON(w, status, st)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*Job, len(ids))
	for i, id := range ids {
		jobs[i] = s.jobs[id]
	}
	s.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.Snapshot(false)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errNotFound)
		return
	}
	st := s.snapshotJob(job, true)
	if len(st.resultRaw) > 0 {
		// The result portion of this response is the canonical buffer,
		// spliced verbatim — no per-request marshal of the decoded struct.
		s.met.encodesSaved.Inc()
		s.met.bytesServed.Add(int64(len(st.resultRaw)))
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.Cancel(r.PathValue("id"))
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, st)
	case errors.Is(err, errNotFound):
		writeError(w, http.StatusNotFound, err)
	default:
		writeError(w, http.StatusConflict, err)
	}
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errNotFound)
		return
	}
	// Render any deferred replay (cache hits, recovered jobs) before the
	// first wait: only jobs someone actually streams pay the row render.
	job.rows.materialize()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	ctx := r.Context()
	stop := context.AfterFunc(ctx, job.rows.broadcast)
	defer stop()

	sent := 0
	for {
		rows, closed := job.rows.wait(sent, func() bool { return ctx.Err() != nil })
		if ctx.Err() != nil {
			return
		}
		for ; sent < len(rows); sent++ {
			// One write per row: every row is rendered with its own trailing
			// '\n' (renderRow), so no reader ever appends to a shared buffer
			// — and flush-per-row streaming pays half the syscalls.
			if _, err := w.Write(rows[sent]); err != nil {
				return
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		if closed && sent == len(rows) {
			return
		}
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.stats())
}
