package plot

import (
	"strings"
	"testing"
)

func TestWaterfallSVG(t *testing.T) {
	wf := NewWaterfall("trace waterfall · job1", "node n1 · trace abc")
	wf.AddSpan("queued", 0, 0)
	wf.AddSpan("compiled", 0, 0.004)
	wf.AddSpan("swept", 0.004, 1.2)
	wf.AddSpan("responded", 1.2, 1.2001)

	svg := wf.SVG()
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Fatalf("not a standalone SVG document:\n%.200s", svg)
	}
	for _, label := range []string{"queued", "compiled", "swept", "responded", "node n1"} {
		if !strings.Contains(svg, label) {
			t.Fatalf("SVG missing %q", label)
		}
	}
	// The dominant span draws a rectangle; the zero-length origin span
	// draws an instant marker (a 3px line) instead of an invisible rect.
	if !strings.Contains(svg, "<rect x=") {
		t.Fatal("no span rectangles rendered")
	}
	if !strings.Contains(svg, `stroke-width="3"`) {
		t.Fatal("no instant marker rendered for zero-length span")
	}
	// Duration labels use human units.
	for _, d := range []string{"1.20s", "4.0ms"} {
		if !strings.Contains(svg, d) {
			t.Fatalf("SVG missing duration label %q", d)
		}
	}
}

func TestWaterfallClampsAndEmpty(t *testing.T) {
	wf := NewWaterfall("t", "")
	wf.AddSpan("backwards", 2, 1) // end < start clamps to an instant
	svg := wf.SVG()
	if !strings.Contains(svg, "backwards") {
		t.Fatal("clamped span dropped")
	}

	empty := NewWaterfall("t", "").SVG()
	if !strings.HasPrefix(empty, "<svg") {
		t.Fatal("empty waterfall should still render a valid document")
	}
}

func TestFmtDuration(t *testing.T) {
	cases := []struct {
		sec  float64
		want string
	}{
		{0.000002, "2µs"},
		{0.0005, "500µs"},
		{0.004, "4.0ms"},
		{0.9994, "999.4ms"},
		{1.5, "1.50s"},
		{62, "62.00s"},
	}
	for _, c := range cases {
		if got := fmtDuration(c.sec); got != c.want {
			t.Errorf("fmtDuration(%v) = %q, want %q", c.sec, got, c.want)
		}
	}
}
