package plot

import (
	"fmt"
	"math"
	"strings"
)

// Waterfall renders a trace's lifecycle spans as a horizontal waterfall
// SVG: one bar per span, drawn to a shared time scale, each labeled with
// its stage name and duration. The service serves one per job at
// GET /v1/jobs/{id}/trace.svg.
type Waterfall struct {
	Title    string
	Subtitle string // e.g. "node n1 · trace ab12…" — the owning node
	Width    int
	spans    []waterfallSpan
}

type waterfallSpan struct {
	label      string
	start, end float64 // seconds from trace start; start == end is an instant marker
}

// NewWaterfall returns a waterfall with the default width.
func NewWaterfall(title, subtitle string) *Waterfall {
	return &Waterfall{Title: title, Subtitle: subtitle, Width: 720}
}

// AddSpan appends one bar covering [start, end] seconds from the trace
// start. A zero-length span renders as an instant marker.
func (wf *Waterfall) AddSpan(label string, start, end float64) {
	if end < start {
		end = start
	}
	wf.spans = append(wf.spans, waterfallSpan{label: label, start: start, end: end})
}

// fmtDuration renders a span length the way humans read latency.
func fmtDuration(sec float64) string {
	switch {
	case sec < 0.001:
		return fmt.Sprintf("%.0fµs", sec*1e6)
	case sec < 1:
		return fmt.Sprintf("%.1fms", sec*1e3)
	default:
		return fmt.Sprintf("%.2fs", sec)
	}
}

// SVG renders the waterfall as a standalone SVG document.
func (wf *Waterfall) SVG() string {
	const (
		labelW  = 110.0 // left gutter for stage names
		topH    = 56.0  // title + subtitle
		rowH    = 28.0
		barH    = 16.0
		marginR = 90.0 // right gutter for duration labels
	)
	w := float64(wf.Width)
	h := topH + rowH*float64(len(wf.spans)) + 40

	total := 0.0
	for _, s := range wf.spans {
		total = math.Max(total, s.end)
	}
	if total <= 0 {
		total = 1e-6 // all-instant trace: any positive scale renders the markers
	}
	px := func(t float64) float64 { return labelW + t/total*(w-labelW-marginR) }

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n", w, h, w, h)
	sb.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&sb, `<text x="%g" y="22" font-size="15" text-anchor="middle" font-weight="bold">%s</text>`+"\n", w/2, escape(wf.Title))
	if wf.Subtitle != "" {
		fmt.Fprintf(&sb, `<text x="%g" y="40" font-size="12" text-anchor="middle" fill="#555">%s</text>`+"\n", w/2, escape(wf.Subtitle))
	}
	// Time axis: gridline at each quarter of the total span.
	for i := 0; i <= 4; i++ {
		t := total * float64(i) / 4
		x := px(t)
		fmt.Fprintf(&sb, `<line x1="%.1f" y1="%g" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n", x, topH, x, h-28)
		fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" font-size="10" text-anchor="middle" fill="#555">%s</text>`+"\n", x, h-14, fmtDuration(t))
	}
	for i, s := range wf.spans {
		y := topH + rowH*float64(i)
		color := palette[i%len(palette)]
		fmt.Fprintf(&sb, `<text x="%g" y="%.1f" font-size="12" text-anchor="end">%s</text>`+"\n", labelW-8, y+barH-3, escape(s.label))
		x0, x1 := px(s.start), px(s.end)
		if x1-x0 < 2 {
			// Instant (or sub-pixel) span: a visible marker beats an
			// invisible rectangle.
			fmt.Fprintf(&sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="3"/>`+"\n", x0, y, x0, y+barH, color)
		} else {
			fmt.Fprintf(&sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.0f" fill="%s" rx="2"/>`+"\n", x0, y, x1-x0, barH, color)
		}
		fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" font-size="11" fill="#333">%s</text>`+"\n", x1+6, y+barH-4, fmtDuration(s.end-s.start))
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}
