package plot

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"odeproto/internal/stats"
)

func TestWriteDAT(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "series.dat")
	err := WriteDAT(path, []string{"t", "x", "y"},
		[]float64{0, 1, 2},
		[]float64{10, 11, 12},
		[]float64{20, 21, 22})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	if !strings.HasPrefix(text, "# t x y\n") {
		t.Fatalf("missing header: %q", text)
	}
	if !strings.Contains(text, "1 11 21") {
		t.Fatalf("missing row: %q", text)
	}
}

func TestWriteDATValidation(t *testing.T) {
	dir := t.TempDir()
	if err := WriteDAT(filepath.Join(dir, "x.dat"), nil); err == nil {
		t.Fatal("no columns accepted")
	}
	if err := WriteDAT(filepath.Join(dir, "x.dat"), nil, []float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("ragged columns accepted")
	}
}

func TestChartSVG(t *testing.T) {
	c := NewChart("Endemic Protocol", "Time", "Count")
	c.AddLine("stash", []float64{0, 1, 2}, []float64{5, 8, 7})
	c.AddScatter("hosts", []float64{0.5, 1.5}, []float64{6, 6})
	svg := c.SVG()
	for _, want := range []string{"<svg", "polyline", "circle", "Endemic Protocol", "stash"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
}

func TestChartSVGEmpty(t *testing.T) {
	c := NewChart("empty", "x", "y")
	svg := c.SVG()
	if !strings.Contains(svg, "<svg") {
		t.Fatal("empty chart should still render axes")
	}
}

func TestChartEscapesTitle(t *testing.T) {
	c := NewChart("a<b & c>d", "x", "y")
	svg := c.SVG()
	if strings.Contains(svg, "a<b") {
		t.Fatal("title not escaped")
	}
	if !strings.Contains(svg, "a&lt;b &amp; c&gt;d") {
		t.Fatal("escaped title missing")
	}
}

func TestWriteSVG(t *testing.T) {
	dir := t.TempDir()
	c := NewChart("t", "x", "y")
	c.AddLine("s", []float64{0, 1}, []float64{0, 1})
	path := filepath.Join(dir, "figs", "out.svg")
	if err := c.WriteSVG(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

func TestAddSeries(t *testing.T) {
	s := stats.NewSeries("pop")
	s.Add(0, 1)
	s.Add(1, 2)
	c := NewChart("t", "x", "y")
	c.AddSeries(s)
	if !strings.Contains(c.SVG(), "pop") {
		t.Fatal("series name missing from legend")
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Fatal("empty sparkline")
	}
	sp := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(sp)) != 4 {
		t.Fatalf("sparkline length = %d", len([]rune(sp)))
	}
	flat := Sparkline([]float64{5, 5, 5})
	if len([]rune(flat)) != 3 {
		t.Fatal("flat sparkline length wrong")
	}
}
