// Package plot writes experiment artifacts: gnuplot-style .dat series
// files, self-contained SVG renderings (line charts and scatter plots),
// and terminal sparklines. Every figure of the paper is regenerated as a
// .dat + .svg pair by cmd/figures.
package plot

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"

	"odeproto/internal/stats"
)

// WriteDAT writes aligned columns to a whitespace-separated .dat file with
// a '#'-prefixed header row, creating parent directories as needed. All
// columns must share one length.
func WriteDAT(path string, header []string, cols ...[]float64) error {
	if len(cols) == 0 {
		return fmt.Errorf("plot: no columns")
	}
	n := len(cols[0])
	for i, c := range cols {
		if len(c) != n {
			return fmt.Errorf("plot: column %d has %d rows, want %d", i, len(c), n)
		}
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("plot: %w", err)
	}
	var sb strings.Builder
	if len(header) > 0 {
		sb.WriteString("# ")
		sb.WriteString(strings.Join(header, " "))
		sb.WriteByte('\n')
	}
	for r := 0; r < n; r++ {
		for c := range cols {
			if c > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%g", cols[c][r])
		}
		sb.WriteByte('\n')
	}
	return os.WriteFile(path, []byte(sb.String()), 0o644)
}

// Chart is a simple 2D chart that renders to SVG.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int
	Height int

	lines    []chartSeries
	scatters []chartSeries
}

type chartSeries struct {
	name   string
	xs, ys []float64
	color  string
}

var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd",
	"#ff7f0e", "#8c564b", "#17becf", "#7f7f7f",
}

// NewChart returns a chart with default dimensions.
func NewChart(title, xlabel, ylabel string) *Chart {
	return &Chart{Title: title, XLabel: xlabel, YLabel: ylabel, Width: 720, Height: 480}
}

// AddLine adds a polyline series.
func (c *Chart) AddLine(name string, xs, ys []float64) {
	c.lines = append(c.lines, chartSeries{
		name: name, xs: xs, ys: ys,
		color: palette[(len(c.lines)+len(c.scatters))%len(palette)],
	})
}

// AddSeries adds a stats.Series as a line.
func (c *Chart) AddSeries(s *stats.Series) {
	c.AddLine(s.Name, s.Times, s.Values)
}

// AddScatter adds a point-cloud series.
func (c *Chart) AddScatter(name string, xs, ys []float64) {
	c.scatters = append(c.scatters, chartSeries{
		name: name, xs: xs, ys: ys,
		color: palette[(len(c.lines)+len(c.scatters))%len(palette)],
	})
}

func (c *Chart) bounds() (xmin, xmax, ymin, ymax float64) {
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	scan := func(s chartSeries) {
		for i := range s.xs {
			xmin = math.Min(xmin, s.xs[i])
			xmax = math.Max(xmax, s.xs[i])
			ymin = math.Min(ymin, s.ys[i])
			ymax = math.Max(ymax, s.ys[i])
		}
	}
	for _, s := range c.lines {
		scan(s)
	}
	for _, s := range c.scatters {
		scan(s)
	}
	if math.IsInf(xmin, 1) {
		return 0, 1, 0, 1
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	return xmin, xmax, ymin, ymax
}

// SVG renders the chart as a standalone SVG document.
func (c *Chart) SVG() string {
	const margin = 60.0
	w, h := float64(c.Width), float64(c.Height)
	xmin, xmax, ymin, ymax := c.bounds()
	// Pad y range 5%.
	pad := (ymax - ymin) * 0.05
	ymin -= pad
	ymax += pad
	px := func(x float64) float64 { return margin + (x-xmin)/(xmax-xmin)*(w-2*margin) }
	py := func(y float64) float64 { return h - margin - (y-ymin)/(ymax-ymin)*(h-2*margin) }

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", c.Width, c.Height, c.Width, c.Height)
	sb.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	// Axes.
	fmt.Fprintf(&sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n", margin, h-margin, w-margin, h-margin)
	fmt.Fprintf(&sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n", margin, margin, margin, h-margin)
	// Ticks: 5 per axis.
	for i := 0; i <= 5; i++ {
		fx := xmin + (xmax-xmin)*float64(i)/5
		fy := ymin + (ymax-ymin)*float64(i)/5
		fmt.Fprintf(&sb, `<text x="%g" y="%g" font-size="11" text-anchor="middle">%.4g</text>`+"\n", px(fx), h-margin+18, fx)
		fmt.Fprintf(&sb, `<text x="%g" y="%g" font-size="11" text-anchor="end">%.4g</text>`+"\n", margin-6, py(fy)+4, fy)
		fmt.Fprintf(&sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#ddd"/>`+"\n", px(fx), margin, px(fx), h-margin)
		fmt.Fprintf(&sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#ddd"/>`+"\n", margin, py(fy), w-margin, py(fy))
	}
	// Labels.
	fmt.Fprintf(&sb, `<text x="%g" y="24" font-size="15" text-anchor="middle" font-weight="bold">%s</text>`+"\n", w/2, escape(c.Title))
	fmt.Fprintf(&sb, `<text x="%g" y="%g" font-size="12" text-anchor="middle">%s</text>`+"\n", w/2, h-12, escape(c.XLabel))
	fmt.Fprintf(&sb, `<text x="16" y="%g" font-size="12" text-anchor="middle" transform="rotate(-90 16 %g)">%s</text>`+"\n", h/2, h/2, escape(c.YLabel))
	// Series.
	for _, s := range c.lines {
		if len(s.xs) == 0 {
			continue
		}
		sb.WriteString(`<polyline fill="none" stroke="` + s.color + `" stroke-width="1.5" points="`)
		for i := range s.xs {
			fmt.Fprintf(&sb, "%.2f,%.2f ", px(s.xs[i]), py(s.ys[i]))
		}
		sb.WriteString(`"/>` + "\n")
	}
	for _, s := range c.scatters {
		for i := range s.xs {
			fmt.Fprintf(&sb, `<circle cx="%.2f" cy="%.2f" r="1.6" fill="%s"/>`+"\n", px(s.xs[i]), py(s.ys[i]), s.color)
		}
	}
	// Legend.
	ly := margin + 4
	all := append(append([]chartSeries(nil), c.lines...), c.scatters...)
	for _, s := range all {
		if s.name == "" {
			continue
		}
		fmt.Fprintf(&sb, `<rect x="%g" y="%g" width="12" height="12" fill="%s"/>`+"\n", w-margin-150, ly, s.color)
		fmt.Fprintf(&sb, `<text x="%g" y="%g" font-size="12">%s</text>`+"\n", w-margin-132, ly+10, escape(s.name))
		ly += 18
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}

// WriteSVG renders the chart to path, creating parent directories.
func (c *Chart) WriteSVG(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("plot: %w", err)
	}
	return os.WriteFile(path, []byte(c.SVG()), 0o644)
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// Sparkline renders values as a unicode sparkline for terminal output.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	ramp := []rune("▁▂▃▄▅▆▇█")
	min, max := values[0], values[0]
	for _, v := range values {
		min = math.Min(min, v)
		max = math.Max(max, v)
	}
	var sb strings.Builder
	for _, v := range values {
		idx := 0
		if max > min {
			idx = int((v - min) / (max - min) * float64(len(ramp)-1))
		}
		sb.WriteRune(ramp[idx])
	}
	return sb.String()
}
