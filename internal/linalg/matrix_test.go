package linalg

import (
	"math"
	"math/cmplx"
	"sort"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestFromRowsAndAccessors(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.Rows() != 2 || m.Cols() != 2 {
		t.Fatalf("shape = %dx%d, want 2x2", m.Rows(), m.Cols())
	}
	if m.At(1, 0) != 3 {
		t.Fatalf("At(1,0) = %v, want 3", m.At(1, 0))
	}
	m.Set(1, 0, 9)
	if m.At(1, 0) != 9 {
		t.Fatalf("Set failed")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 100)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestAddSubScale(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{4, 3}, {2, 1}})
	sum := a.Add(b)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if sum.At(i, j) != 5 {
				t.Fatalf("Add(%d,%d) = %v, want 5", i, j, sum.At(i, j))
			}
		}
	}
	diff := sum.Sub(b)
	if diff.At(1, 1) != a.At(1, 1) {
		t.Fatal("Sub did not invert Add")
	}
	sc := a.Scale(2)
	if sc.At(1, 0) != 6 {
		t.Fatalf("Scale: got %v, want 6", sc.At(1, 0))
	}
}

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	id := Identity(2)
	if p := a.Mul(id); p.At(0, 1) != 2 || p.At(1, 0) != 3 {
		t.Fatal("A·I != A")
	}
	b := FromRows([][]float64{{0, 1}, {1, 0}})
	p := a.Mul(b)
	want := FromRows([][]float64{{2, 1}, {4, 3}})
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if p.At(i, j) != want.At(i, j) {
				t.Fatalf("Mul(%d,%d) = %v, want %v", i, j, p.At(i, j), want.At(i, j))
			}
		}
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	v := a.MulVec([]float64{1, 1, 1})
	if v[0] != 6 || v[1] != 15 {
		t.Fatalf("MulVec = %v, want [6 15]", v)
	}
}

func TestTraceDet2x2(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 2}})
	if a.Trace() != 4 {
		t.Fatalf("trace = %v, want 4", a.Trace())
	}
	if !almostEq(a.Det(), 3, 1e-12) {
		t.Fatalf("det = %v, want 3", a.Det())
	}
}

func TestDet3x3(t *testing.T) {
	a := FromRows([][]float64{
		{6, 1, 1},
		{4, -2, 5},
		{2, 8, 7},
	})
	if !almostEq(a.Det(), -306, 1e-9) {
		t.Fatalf("det = %v, want -306", a.Det())
	}
}

func TestDetSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if a.Det() != 0 {
		t.Fatalf("det of singular = %v, want 0", a.Det())
	}
}

func TestSolve(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	x, err := a.Solve([]float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 1, 1e-12) || !almostEq(x[1], 3, 1e-12) {
		t.Fatalf("solution = %v, want [1 3]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := a.Solve([]float64{1, 2}); err == nil {
		t.Fatal("expected ErrSingular for singular system")
	}
}

func TestSolveDoesNotMutateInputs(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	b := []float64{5, 10}
	if _, err := a.Solve(b); err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != 2 || b[1] != 10 {
		t.Fatal("Solve mutated its inputs")
	}
}

func TestCharacteristicPolynomial2x2(t *testing.T) {
	// λ² − τλ + Δ for [[2,1],[1,2]]: λ² − 4λ + 3.
	a := FromRows([][]float64{{2, 1}, {1, 2}})
	c := a.CharacteristicPolynomial()
	if len(c) != 3 {
		t.Fatalf("len = %d, want 3", len(c))
	}
	if !almostEq(c[0], 1, 1e-12) || !almostEq(c[1], -4, 1e-12) || !almostEq(c[2], 3, 1e-12) {
		t.Fatalf("char poly = %v, want [1 -4 3]", c)
	}
}

func TestEigenvalues2x2Real(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 2}})
	ev := a.Eigenvalues()
	got := []float64{real(ev[0]), real(ev[1])}
	sort.Float64s(got)
	if !almostEq(got[0], 1, 1e-9) || !almostEq(got[1], 3, 1e-9) {
		t.Fatalf("eigenvalues = %v, want 1 and 3", got)
	}
	for _, e := range ev {
		if imag(e) != 0 {
			t.Fatalf("expected real eigenvalues, got %v", ev)
		}
	}
}

func TestEigenvalues2x2Complex(t *testing.T) {
	// Rotation-like matrix: eigenvalues ±i.
	a := FromRows([][]float64{{0, -1}, {1, 0}})
	ev := a.Eigenvalues()
	for _, e := range ev {
		if !almostEq(real(e), 0, 1e-9) || !almostEq(math.Abs(imag(e)), 1, 1e-9) {
			t.Fatalf("eigenvalues = %v, want ±i", ev)
		}
	}
}

func TestEigenvalues3x3Diagonal(t *testing.T) {
	a := FromRows([][]float64{
		{5, 0, 0},
		{0, -2, 0},
		{0, 0, 1},
	})
	ev := a.Eigenvalues()
	got := make([]float64, 0, 3)
	for _, e := range ev {
		if math.Abs(imag(e)) > 1e-8 {
			t.Fatalf("unexpected complex eigenvalue %v", e)
		}
		got = append(got, real(e))
	}
	sort.Float64s(got)
	want := []float64{-2, 1, 5}
	for i := range want {
		if !almostEq(got[i], want[i], 1e-7) {
			t.Fatalf("eigenvalues = %v, want %v", got, want)
		}
	}
}

func TestEigenvalues3x3UpperTriangular(t *testing.T) {
	a := FromRows([][]float64{
		{1, 7, 3},
		{0, 2, -4},
		{0, 0, 3},
	})
	ev := a.Eigenvalues()
	got := make([]float64, 0, 3)
	for _, e := range ev {
		got = append(got, real(e))
	}
	sort.Float64s(got)
	want := []float64{1, 2, 3}
	for i := range want {
		if !almostEq(got[i], want[i], 1e-6) {
			t.Fatalf("eigenvalues = %v, want %v", got, want)
		}
	}
}

func TestPolyRootsQuadratic(t *testing.T) {
	// (x−2)(x+3) = x² + x − 6
	roots := PolyRoots([]float64{1, 1, -6})
	got := []float64{real(roots[0]), real(roots[1])}
	sort.Float64s(got)
	if !almostEq(got[0], -3, 1e-9) || !almostEq(got[1], 2, 1e-9) {
		t.Fatalf("roots = %v, want -3 and 2", got)
	}
}

func TestPolyRootsComplexPair(t *testing.T) {
	// x² + 1 → ±i
	roots := PolyRoots([]float64{1, 0, 1})
	for _, r := range roots {
		if !almostEq(real(r), 0, 1e-9) || !almostEq(math.Abs(imag(r)), 1, 1e-9) {
			t.Fatalf("roots = %v, want ±i", roots)
		}
	}
}

func TestPolyRootsCubic(t *testing.T) {
	// (x−1)(x−2)(x−3) = x³ − 6x² + 11x − 6
	roots := PolyRoots([]float64{1, -6, 11, -6})
	got := make([]float64, 0, 3)
	for _, r := range roots {
		got = append(got, real(r))
	}
	sort.Float64s(got)
	want := []float64{1, 2, 3}
	for i := range want {
		if !almostEq(got[i], want[i], 1e-7) {
			t.Fatalf("roots = %v, want %v", got, want)
		}
	}
}

// Property: eigenvalue sum equals trace and product equals determinant,
// for random 3×3 matrices.
func TestEigenvalueInvariants(t *testing.T) {
	f := func(a, b, c, d, e, f2, g, h, i float64) bool {
		clamp := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 0
			}
			return math.Mod(x, 10)
		}
		m := FromRows([][]float64{
			{clamp(a), clamp(b), clamp(c)},
			{clamp(d), clamp(e), clamp(f2)},
			{clamp(g), clamp(h), clamp(i)},
		})
		ev := m.Eigenvalues()
		var sum, prod complex128 = 0, 1
		for _, x := range ev {
			sum += x
			prod *= x
		}
		tol := 1e-5 * (1 + math.Abs(m.Trace()) + math.Abs(m.Det()))
		return cmplx.Abs(sum-complex(m.Trace(), 0)) < tol &&
			cmplx.Abs(prod-complex(m.Det(), 0)) < tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: det(A·B) = det(A)·det(B) for random 2×2 matrices.
func TestDetMultiplicative(t *testing.T) {
	f := func(a, b, c, d, e, f2, g, h float64) bool {
		clamp := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 1
			}
			return math.Mod(x, 5)
		}
		m1 := FromRows([][]float64{{clamp(a), clamp(b)}, {clamp(c), clamp(d)}})
		m2 := FromRows([][]float64{{clamp(e), clamp(f2)}, {clamp(g), clamp(h)}})
		lhs := m1.Mul(m2).Det()
		rhs := m1.Det() * m2.Det()
		return math.Abs(lhs-rhs) < 1e-6*(1+math.Abs(rhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
