// Package linalg provides the small dense linear algebra kernel used by the
// nonlinear-dynamics analysis in this repository: matrices sized by the
// number of protocol states (typically 2–4), trace and determinant,
// characteristic polynomials, and eigenvalue computation.
//
// The paper's stability analysis (§4.1.3) classifies equilibria through the
// trace and determinant of a linearization matrix A and through its
// eigenvalues λ = (τ ± sqrt(τ²−4Δ))/2; this package supplies exactly those
// primitives, generalized to m×m via the Faddeev–LeVerrier characteristic
// polynomial and Durand–Kerner root finding.
package linalg

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"strings"
)

// ErrSingular is returned when a matrix operation requires an invertible
// matrix but the argument is (numerically) singular.
var ErrSingular = errors.New("linalg: matrix is singular")

// Matrix is a dense, row-major real matrix.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns a zero rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices. All rows must share one length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("linalg: FromRows needs at least one non-empty row")
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic(fmt.Sprintf("linalg: ragged row %d (len %d, want %d)", i, len(r), m.cols))
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Add returns m + other.
func (m *Matrix) Add(other *Matrix) *Matrix {
	m.mustSameShape(other)
	out := m.Clone()
	for i := range out.data {
		out.data[i] += other.data[i]
	}
	return out
}

// Sub returns m − other.
func (m *Matrix) Sub(other *Matrix) *Matrix {
	m.mustSameShape(other)
	out := m.Clone()
	for i := range out.data {
		out.data[i] -= other.data[i]
	}
	return out
}

// Scale returns s·m.
func (m *Matrix) Scale(s float64) *Matrix {
	out := m.Clone()
	for i := range out.data {
		out.data[i] *= s
	}
	return out
}

// Mul returns the matrix product m·other.
func (m *Matrix) Mul(other *Matrix) *Matrix {
	if m.cols != other.rows {
		panic(fmt.Sprintf("linalg: dimension mismatch %dx%d · %dx%d", m.rows, m.cols, other.rows, other.cols))
	}
	out := NewMatrix(m.rows, other.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < other.cols; j++ {
				out.data[i*out.cols+j] += a * other.At(k, j)
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m·v.
func (m *Matrix) MulVec(v []float64) []float64 {
	if m.cols != len(v) {
		panic(fmt.Sprintf("linalg: dimension mismatch %dx%d · vec(%d)", m.rows, m.cols, len(v)))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		var s float64
		for j := 0; j < m.cols; j++ {
			s += m.At(i, j) * v[j]
		}
		out[i] = s
	}
	return out
}

// Trace returns the sum of diagonal elements of a square matrix.
func (m *Matrix) Trace() float64 {
	m.mustSquare()
	var t float64
	for i := 0; i < m.rows; i++ {
		t += m.At(i, i)
	}
	return t
}

// Det returns the determinant via LU decomposition with partial pivoting.
func (m *Matrix) Det() float64 {
	m.mustSquare()
	n := m.rows
	lu := m.Clone()
	det := 1.0
	for col := 0; col < n; col++ {
		pivot := col
		best := math.Abs(lu.At(col, col))
		for r := col + 1; r < n; r++ {
			if a := math.Abs(lu.At(r, col)); a > best {
				best, pivot = a, r
			}
		}
		if best == 0 {
			return 0
		}
		if pivot != col {
			lu.swapRows(pivot, col)
			det = -det
		}
		p := lu.At(col, col)
		det *= p
		for r := col + 1; r < n; r++ {
			f := lu.At(r, col) / p
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				lu.Set(r, c, lu.At(r, c)-f*lu.At(col, c))
			}
		}
	}
	return det
}

// Solve solves m·x = b for x (square systems) using Gaussian elimination
// with partial pivoting. It returns ErrSingular for singular systems.
func (m *Matrix) Solve(b []float64) ([]float64, error) {
	m.mustSquare()
	n := m.rows
	if len(b) != n {
		return nil, fmt.Errorf("linalg: rhs length %d, want %d", len(b), n)
	}
	a := m.Clone()
	x := make([]float64, n)
	copy(x, b)
	for col := 0; col < n; col++ {
		pivot := col
		best := math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-300 {
			return nil, ErrSingular
		}
		if pivot != col {
			a.swapRows(pivot, col)
			x[pivot], x[col] = x[col], x[pivot]
		}
		p := a.At(col, col)
		for r := col + 1; r < n; r++ {
			f := a.At(r, col) / p
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a.Set(r, c, a.At(r, c)-f*a.At(col, c))
			}
			x[r] -= f * x[col]
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= a.At(i, j) * x[j]
		}
		x[i] = s / a.At(i, i)
	}
	return x, nil
}

func (m *Matrix) swapRows(i, j int) {
	ri := m.data[i*m.cols : (i+1)*m.cols]
	rj := m.data[j*m.cols : (j+1)*m.cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

func (m *Matrix) mustSquare() {
	if m.rows != m.cols {
		panic(fmt.Sprintf("linalg: matrix %dx%d is not square", m.rows, m.cols))
	}
}

func (m *Matrix) mustSameShape(other *Matrix) {
	if m.rows != other.rows || m.cols != other.cols {
		panic(fmt.Sprintf("linalg: shape mismatch %dx%d vs %dx%d", m.rows, m.cols, other.rows, other.cols))
	}
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var sb strings.Builder
	for i := 0; i < m.rows; i++ {
		sb.WriteString("[")
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				sb.WriteString(" ")
			}
			fmt.Fprintf(&sb, "%.6g", m.At(i, j))
		}
		sb.WriteString("]\n")
	}
	return sb.String()
}

// CharacteristicPolynomial returns the coefficients c of
// det(λI − m) = λ^n + c[1]·λ^(n−1) + … + c[n], computed with the
// Faddeev–LeVerrier recurrence. The returned slice has length n+1 with
// c[0] = 1.
func (m *Matrix) CharacteristicPolynomial() []float64 {
	m.mustSquare()
	n := m.rows
	coeffs := make([]float64, n+1)
	coeffs[0] = 1
	mk := Identity(n) // M_0 = I
	for k := 1; k <= n; k++ {
		am := m.Mul(mk)
		c := -am.Trace() / float64(k)
		coeffs[k] = c
		if k < n {
			mk = am.Add(Identity(n).Scale(c))
		}
	}
	return coeffs
}

// Eigenvalues returns all eigenvalues of the square matrix, with
// multiplicity, as complex numbers. For 2×2 matrices the closed form
// λ = (τ ± sqrt(τ²−4Δ))/2 from the paper is used; larger matrices go
// through the characteristic polynomial and Durand–Kerner iteration.
func (m *Matrix) Eigenvalues() []complex128 {
	m.mustSquare()
	if m.rows == 1 {
		return []complex128{complex(m.At(0, 0), 0)}
	}
	if m.rows == 2 {
		tau := m.Trace()
		delta := m.Det()
		disc := tau*tau - 4*delta
		if disc >= 0 {
			r := math.Sqrt(disc)
			return []complex128{
				complex((tau+r)/2, 0),
				complex((tau-r)/2, 0),
			}
		}
		im := math.Sqrt(-disc) / 2
		return []complex128{
			complex(tau/2, im),
			complex(tau/2, -im),
		}
	}
	return PolyRoots(m.CharacteristicPolynomial())
}

// PolyRoots finds all complex roots of the polynomial
// c[0]·x^n + c[1]·x^(n−1) + … + c[n] using the Durand–Kerner
// (Weierstrass) simultaneous iteration. c[0] must be non-zero.
func PolyRoots(coeffs []float64) []complex128 {
	n := len(coeffs) - 1
	if n <= 0 {
		return nil
	}
	if coeffs[0] == 0 {
		panic("linalg: leading coefficient must be non-zero")
	}
	// Normalize to monic.
	c := make([]complex128, n+1)
	for i, v := range coeffs {
		c[i] = complex(v/coeffs[0], 0)
	}
	eval := func(x complex128) complex128 {
		r := c[0]
		for i := 1; i <= n; i++ {
			r = r*x + c[i]
		}
		return r
	}
	// Initial guesses on a circle of radius derived from coefficient bounds,
	// at non-real, non-symmetric angles (the standard (0.4+0.9i)^k trick).
	radius := 0.0
	for i := 1; i <= n; i++ {
		if r := math.Pow(cmplx.Abs(c[i]), 1/float64(i)); r > radius {
			radius = r
		}
	}
	if radius == 0 {
		radius = 1
	}
	radius *= 1.5
	roots := make([]complex128, n)
	seedAngle := complex(0.4, 0.9)
	cur := seedAngle
	for i := range roots {
		roots[i] = complex(radius, 0) * cur / complex(cmplx.Abs(cur), 0)
		cur *= seedAngle
	}
	const (
		maxIter = 500
		tol     = 1e-13
	)
	for iter := 0; iter < maxIter; iter++ {
		maxDelta := 0.0
		for i := range roots {
			denom := complex(1, 0)
			for j := range roots {
				if j != i {
					denom *= roots[i] - roots[j]
				}
			}
			if denom == 0 {
				// Perturb coincident guesses.
				roots[i] += complex(1e-8, 1e-8)
				continue
			}
			delta := eval(roots[i]) / denom
			roots[i] -= delta
			if d := cmplx.Abs(delta); d > maxDelta {
				maxDelta = d
			}
		}
		if maxDelta < tol {
			break
		}
	}
	// Snap tiny imaginary parts (conjugate-pair noise) to the real axis.
	for i, r := range roots {
		if math.Abs(imag(r)) < 1e-9*(1+math.Abs(real(r))) {
			roots[i] = complex(real(r), 0)
		}
	}
	return roots
}
