package endemic

import (
	"fmt"
	"testing"

	"odeproto/internal/stats"
)

func newTestStore(t *testing.T, n int) *Store {
	t.Helper()
	s, err := NewStore(n, Params{B: 2, Gamma: 0.2, Alpha: 0.1}, 7)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStoreValidation(t *testing.T) {
	if _, err := NewStore(1, Params{B: 2, Gamma: 0.2, Alpha: 0.1}, 1); err == nil {
		t.Fatal("tiny store accepted")
	}
	if _, err := NewStore(100, Params{B: 0, Gamma: 0.2, Alpha: 0.1}, 1); err == nil {
		t.Fatal("bad params accepted")
	}
	s := newTestStore(t, 100)
	if err := s.Insert("a", 0); err == nil {
		t.Fatal("zero replicas accepted")
	}
	if err := s.Insert("a", 10); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert("a", 10); err == nil {
		t.Fatal("duplicate insert accepted")
	}
}

func TestStoreMultipleObjectsSurvive(t *testing.T) {
	s := newTestStore(t, 1000)
	const files = 5
	for i := 0; i < files; i++ {
		if err := s.Insert(fmt.Sprintf("file-%d", i), 100); err != nil {
			t.Fatal(err)
		}
	}
	s.Run(400)
	if lost := s.Lost(); len(lost) != 0 {
		t.Fatalf("objects lost: %v", lost)
	}
	if got := len(s.Objects()); got != files {
		t.Fatalf("store lists %d objects, want %d", got, files)
	}
	// Each object's replica count should sit near its own equilibrium.
	eq := StableEquilibrium(4, 0.2, 0.1)
	want := eq.Stash * 1000
	for _, name := range s.Objects() {
		got := float64(s.Replicas(name))
		if got < 0.4*want || got > 2*want {
			t.Fatalf("object %s has %v replicas, equilibrium %v", name, got, want)
		}
	}
}

func TestStoreHoldersMatchReplicas(t *testing.T) {
	s := newTestStore(t, 500)
	if err := s.Insert("doc", 50); err != nil {
		t.Fatal(err)
	}
	s.Run(50)
	holders, ok := s.Holders("doc")
	if !ok {
		t.Fatal("object missing")
	}
	if len(holders) != s.Replicas("doc") {
		t.Fatalf("holders %d vs replicas %d", len(holders), s.Replicas("doc"))
	}
	if _, ok := s.Holders("nope"); ok {
		t.Fatal("unknown object reported holders")
	}
}

func TestStoreObjectsMigrateIndependently(t *testing.T) {
	s := newTestStore(t, 500)
	if err := s.Insert("a", 50); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert("b", 50); err != nil {
		t.Fatal(err)
	}
	s.Run(200)
	ha, _ := s.Holders("a")
	hb, _ := s.Holders("b")
	// Independent protocols: the two replica sets should differ
	// substantially (identical sets would mean correlated placement an
	// attacker could exploit).
	inBoth := 0
	setA := make(map[int]bool, len(ha))
	for _, h := range ha {
		setA[h] = true
	}
	for _, h := range hb {
		if setA[h] {
			inBoth++
		}
	}
	if len(ha) > 0 && inBoth == len(ha) && inBoth == len(hb) {
		t.Fatal("replica sets of independent objects are identical")
	}
}

func TestStoreHostLoadFairness(t *testing.T) {
	s := newTestStore(t, 300)
	for i := 0; i < 8; i++ {
		if err := s.Insert(fmt.Sprintf("f%d", i), 60); err != nil {
			t.Fatal(err)
		}
	}
	// Accumulate per-host occupancy over time (Fairness is a long-run
	// property).
	occupancy := make([]int, 300)
	for t2 := 0; t2 < 300; t2++ {
		s.Tick()
		for h := 0; h < 300; h++ {
			occupancy[h] += s.HostLoad(h)
		}
	}
	cv := stats.OccupancyFairness(occupancy)
	if cv > 0.8 {
		t.Fatalf("long-run host load CV %v; Fairness demands a flat distribution", cv)
	}
}

func TestStoreMassiveFailureAndRejoin(t *testing.T) {
	s := newTestStore(t, 800)
	if err := s.Insert("survivor", 120); err != nil {
		t.Fatal(err)
	}
	s.Run(100)
	for h := 0; h < 400; h++ {
		s.KillHost(h)
	}
	s.KillHost(3) // idempotent
	if s.AliveHosts() != 400 {
		t.Fatalf("alive hosts %d, want 400", s.AliveHosts())
	}
	s.Run(200)
	if len(s.Lost()) != 0 {
		t.Fatal("object lost after 50% host failure")
	}
	for h := 0; h < 400; h++ {
		if err := s.ReviveHost(h); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.ReviveHost(3); err == nil {
		t.Fatal("reviving an up host should error")
	}
	s.Run(200)
	if len(s.Lost()) != 0 {
		t.Fatal("object lost after rejoin")
	}
}

// TestStoreFailuresApplyToLateInserts: an object inserted after a host
// failure must not see the dead host as a contact success.
func TestStoreFailuresApplyToLateInserts(t *testing.T) {
	s := newTestStore(t, 200)
	for h := 100; h < 200; h++ {
		s.KillHost(h)
	}
	if err := s.Insert("late", 30); err != nil {
		t.Fatal(err)
	}
	s.Run(50)
	holders, _ := s.Holders("late")
	for _, h := range holders {
		if h >= 100 {
			t.Fatalf("dead host %d holds a replica", h)
		}
	}
}

func TestStoreDelete(t *testing.T) {
	s := newTestStore(t, 100)
	if err := s.Insert("tmp", 10); err != nil {
		t.Fatal(err)
	}
	s.Delete("tmp")
	if len(s.Objects()) != 0 {
		t.Fatal("delete failed")
	}
	if s.Replicas("tmp") != 0 {
		t.Fatal("deleted object reports replicas")
	}
}

func TestStoreTransfersAccumulate(t *testing.T) {
	s := newTestStore(t, 400)
	if err := s.Insert("busy", 60); err != nil {
		t.Fatal(err)
	}
	s.Run(100)
	if s.Transfers("busy") == 0 {
		t.Fatal("no transfers recorded; migration not happening")
	}
	if s.Transfers("nope") != 0 {
		t.Fatal("unknown object reports transfers")
	}
}
