// Package endemic implements Case Study I of the paper (§4.1): the endemic
// protocol for probabilistic responsibility migration, derived from the
// endemic equations (1)
//
//	ẋ = −βxy + αz
//	ẏ = βxy − γy
//	ż = γy − αz
//
// over fractions of receptive (x), stash (y) and averse (z) processes. A
// process is responsible — stores the object replica — exactly while it is
// in the stash state.
//
// Two executable protocols are provided:
//
//   - NewFrameworkProtocol: the canonical output of the §3 translation
//     (one-time-sampling for βxy, flipping for γy and αz), running on the
//     protocol time scale p = 1/β.
//   - NewFigure1Protocol: the variant the paper actually evaluates
//     (errata: "the protocol in Figure 1 is a variant of that obtained
//     through the methodology"): receptive processes pull from b random
//     targets (action iii), stash processes push to b random targets
//     (action iv), giving contact rate β = N(1−(1−b/N)²) ≈ 2b, with
//     flipping for recovery (γ) and re-susceptibility (α).
//
// The package also carries the §4.1.3 analysis: the closed-form equilibria
// (2), the perturbation matrix A with τ = −(σ+α) and Δ = σ(γ+α), the three
// convergence-complexity cases, and the probabilistic-safety longevity
// results.
package endemic

import (
	"fmt"
	"math"

	"odeproto/internal/core"
	"odeproto/internal/dynamics"
	"odeproto/internal/ode"
)

// Protocol states. The paper names them susceptible/receptive (x),
// infected/stash (y), and immune/averse (z).
const (
	Receptive = ode.Var("x")
	Stash     = ode.Var("y")
	Averse    = ode.Var("z")
)

// Params are the endemic protocol parameters of §4.1.2.
type Params struct {
	// B is the per-period contact fan-out b. With the Figure-1 variant
	// (pull + push) the effective infection rate is β ≈ 2b.
	B int
	// Gamma is the recovery rate γ ∈ (0, 1]: the per-period probability
	// that a stasher deletes its replica and turns averse.
	Gamma float64
	// Alpha is the susceptibility rate α ∈ (0, 1]: the per-period
	// probability that an averse process turns receptive again.
	Alpha float64
}

// Validate checks the §4.1.2 parameter constraints (α, γ ∈ (0,1], b ≥ 1,
// β > γ so the non-trivial equilibrium exists).
func (p Params) Validate() error {
	if p.B < 1 {
		return fmt.Errorf("endemic: b = %d must be at least 1", p.B)
	}
	if p.Gamma <= 0 || p.Gamma > 1 {
		return fmt.Errorf("endemic: γ = %v outside (0,1]", p.Gamma)
	}
	if p.Alpha <= 0 || p.Alpha > 1 {
		return fmt.Errorf("endemic: α = %v outside (0,1]", p.Alpha)
	}
	if p.Beta() <= p.Gamma {
		return fmt.Errorf("endemic: β = %v must exceed γ = %v for the non-trivial equilibrium", p.Beta(), p.Gamma)
	}
	return nil
}

// Beta returns the effective contact rate β ≈ 2b of the Figure-1 variant.
func (p Params) Beta() float64 { return 2 * float64(p.B) }

// System returns the endemic equations (1) over fractions for the given
// rates.
func System(beta, gamma, alpha float64) *ode.System {
	s := ode.NewSystem()
	s.MustAddEquation(Receptive,
		ode.NewTerm(-beta, map[ode.Var]int{Receptive: 1, Stash: 1}),
		ode.NewTerm(alpha, map[ode.Var]int{Averse: 1}))
	s.MustAddEquation(Stash,
		ode.NewTerm(beta, map[ode.Var]int{Receptive: 1, Stash: 1}),
		ode.NewTerm(-gamma, map[ode.Var]int{Stash: 1}))
	s.MustAddEquation(Averse,
		ode.NewTerm(gamma, map[ode.Var]int{Stash: 1}),
		ode.NewTerm(-alpha, map[ode.Var]int{Averse: 1}))
	return s
}

// NewFrameworkProtocol translates the endemic equations through the §3
// framework verbatim. The resulting protocol runs the dynamics at time
// scale p = 1/β per period.
func NewFrameworkProtocol(p Params) (*core.Protocol, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return core.Translate(System(p.Beta(), p.Gamma, p.Alpha), core.Options{})
}

// NewFigure1Protocol builds the variant protocol of Figure 1 / §4.1.2:
//
//	(i)   stash: flip coin(γ); heads → averse (replica deleted);
//	(ii)  averse: flip coin(α); heads → receptive;
//	(iii) receptive: contact b random targets; if any is a stasher →
//	      stash (replica transferred);
//	(iv)  stash: contact b random targets; every receptive target →
//	      stash (replica pushed).
//
// Actions (iii)+(iv) together give contact rate β ≈ 2b, so the protocol
// executes the equations System(2b, γ, α) at time scale 1 (no normalizing
// constant is needed: all coins are already probabilities).
func NewFigure1Protocol(p Params) (*core.Protocol, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	bTargets := func(s ode.Var) []ode.Var {
		out := make([]ode.Var, p.B)
		for i := range out {
			out[i] = s
		}
		return out
	}
	proto := &core.Protocol{
		States: []ode.Var{Receptive, Stash, Averse},
		P:      1,
		Source: System(p.Beta(), p.Gamma, p.Alpha),
		Actions: []core.Action{
			{ // (iii) pull
				Kind: core.SampleAny, Owner: Receptive, From: Receptive, To: Stash,
				Coin: 1, Samples: bTargets(Stash), TermCoef: p.Beta(),
			},
			{ // (iv) push
				Kind: core.Push, Owner: Stash, From: Receptive, To: Stash,
				Coin: 1, Samples: bTargets(Receptive), TermCoef: p.Beta(),
			},
			{ // (i) recover
				Kind: core.Flip, Owner: Stash, From: Stash, To: Averse,
				Coin: p.Gamma, TermCoef: p.Gamma,
			},
			{ // (ii) become receptive again
				Kind: core.Flip, Owner: Averse, From: Averse, To: Receptive,
				Coin: p.Alpha, TermCoef: p.Alpha,
			},
		},
	}
	if err := proto.Validate(); err != nil {
		return nil, err
	}
	return proto, nil
}

// Equilibrium is a fixed point of the endemic equations over fractions.
type Equilibrium struct {
	Receptive, Stash, Averse float64
}

// TrivialEquilibrium returns the first equilibrium of (2): everyone
// receptive, all replicas gone.
func TrivialEquilibrium() Equilibrium {
	return Equilibrium{Receptive: 1}
}

// StableEquilibrium returns the second (non-trivial) equilibrium of (2)
// in fraction form:
//
//	x∞ = γ/β,  y∞ = (1 − γ/β)/(1 + γ/α),  z∞ = (1 − γ/β)/(1 + α/γ).
func StableEquilibrium(beta, gamma, alpha float64) Equilibrium {
	return Equilibrium{
		Receptive: gamma / beta,
		Stash:     (1 - gamma/beta) / (1 + gamma/alpha),
		Averse:    (1 - gamma/beta) / (1 + alpha/gamma),
	}
}

// Point converts the equilibrium to an ode point.
func (e Equilibrium) Point() map[ode.Var]float64 {
	return map[ode.Var]float64{Receptive: e.Receptive, Stash: e.Stash, Averse: e.Averse}
}

// Analysis carries the §4.1.3 perturbation analysis around the non-trivial
// equilibrium.
type Analysis struct {
	Beta, Gamma, Alpha float64
	Equilibrium        Equilibrium
	// Sigma is σ = β·y∞ (the paper's (βN−γ)/(1+γ/α) in fraction form).
	Sigma float64
	// Tau and Delta are the trace −(σ+α) and determinant σ(γ+α) of the
	// perturbation matrix A of equation (4).
	Tau, Delta float64
	// Eigenvalues are λ = (τ ± sqrt(τ²−4Δ))/2.
	Eigenvalues []complex128
	// Class is the trace–determinant classification (stable spiral for the
	// Figure 2 parameters).
	Class dynamics.EquilibriumClass
}

// Analyze computes the perturbation analysis for the given rates.
func Analyze(beta, gamma, alpha float64) Analysis {
	eq := StableEquilibrium(beta, gamma, alpha)
	sigma := beta * eq.Stash
	tau := -(sigma + alpha)
	delta := sigma * (gamma + alpha)
	disc := tau*tau - 4*delta
	var eigs []complex128
	if disc >= 0 {
		r := math.Sqrt(disc)
		eigs = []complex128{complex((tau+r)/2, 0), complex((tau-r)/2, 0)}
	} else {
		im := math.Sqrt(-disc) / 2
		eigs = []complex128{complex(tau/2, im), complex(tau/2, -im)}
	}
	return Analysis{
		Beta: beta, Gamma: gamma, Alpha: alpha,
		Equilibrium: eq,
		Sigma:       sigma,
		Tau:         tau,
		Delta:       delta,
		Eigenvalues: eigs,
		Class:       dynamics.ClassifyTraceDet(tau, delta),
	}
}

// PerturbationAt returns u(t)/u₀, the relative displacement of the
// receptive population t time units after a small perturbation, using the
// three closed-form cases of §4.1.3.
func (a Analysis) PerturbationAt(t float64) float64 {
	return dynamics.PerturbationDecay(a.Tau, a.Delta, t)
}

// ExtinctionProbability returns the §4.1.3 back-of-the-envelope likelihood
// that all replicas disappear from an equilibrium with the given number of
// stashers: each stasher recruits at rate βx∞ = γ and dies at rate γ, so
// the chance that none recruits before dying is (1/2)^stashers.
func ExtinctionProbability(stashers float64) float64 {
	return math.Exp2(-stashers)
}

// ExpectedLongevityYears returns the expected object lifetime, in years,
// at an equilibrium holding `stashers` replicas with the given protocol
// period: 2^stashers periods. With 6-minute periods, 50 replicas give
// 1.28×10¹⁰ years and 100 replicas give 1.45×10²⁵ years, the paper's two
// headline numbers.
func ExpectedLongevityYears(stashers, periodMinutes float64) float64 {
	const minutesPerYear = 365 * 24 * 60
	return math.Exp2(stashers) * periodMinutes / minutesPerYear
}

// StashersForSafety inverts the §4.1.3 design rule y∞ = c·log₂N: it
// returns the stasher population needed so the extinction probability is
// N^−c.
func StashersForSafety(n int, c float64) float64 {
	return c * math.Log2(float64(n))
}

// RealityCheck reproduces the §5.1 "Reality Check" estimates for a group
// of n hosts at the stable equilibrium.
type RealityCheck struct {
	// StashFractionOfTime is the long-run fraction of time each host
	// stores the file (y∞ by Fairness).
	StashFractionOfTime float64
	// StintPeriods is the expected number of consecutive periods a host
	// remains a stasher once recruited (1/γ).
	StintPeriods float64
	// TransfersPerPeriod is the equilibrium file-transfer rate γ·y∞·n.
	TransfersPerPeriod float64
	// BandwidthBps is the average per-host bandwidth for this one file:
	// each transfer moves fileBytes at two endpoints.
	BandwidthBps float64
}

// ComputeRealityCheck evaluates the estimates for the given configuration.
// The paper's instance (n = 100000, b = 2, γ = 10⁻³, α = 10⁻⁶, 88.2 KB
// files, 6-minute periods) yields ≈ 3.9×10⁻³ bps per file per host.
func ComputeRealityCheck(n int, p Params, fileBytes, periodMinutes float64) RealityCheck {
	eq := StableEquilibrium(p.Beta(), p.Gamma, p.Alpha)
	transfers := p.Gamma * eq.Stash * float64(n)
	periodSeconds := periodMinutes * 60
	bits := fileBytes * 8
	return RealityCheck{
		StashFractionOfTime: eq.Stash,
		StintPeriods:        1 / p.Gamma,
		TransfersPerPeriod:  transfers,
		BandwidthBps:        transfers * bits * 2 / (float64(n) * periodSeconds),
	}
}
