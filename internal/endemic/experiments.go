package endemic

import (
	"fmt"

	"odeproto/internal/churn"
	"odeproto/internal/ode"
	"odeproto/internal/sim"
	"odeproto/internal/stats"
)

// InitialCounts is a starting population (X, Y, Z) in absolute counts, as
// in the Figure 2 caption.
type InitialCounts struct {
	X, Y, Z int
}

// total returns the population size.
func (ic InitialCounts) total() int { return ic.X + ic.Y + ic.Z }

func (ic InitialCounts) toMap() map[ode.Var]int {
	return map[ode.Var]int{Receptive: ic.X, Stash: ic.Y, Averse: ic.Z}
}

// Figure2InitialPoints returns the seven initial points of the Figure 2
// caption for N = 1000.
func Figure2InitialPoints() []InitialCounts {
	return []InitialCounts{
		{999, 1, 0},     // blank square
		{0, 1, 999},     // dark square
		{0, 1000, 0},    // blank circle
		{500, 500, 0},   // dark circle
		{500, 1, 499},   // blank triangle
		{1, 500, 499},   // dark triangle
		{333, 333, 334}, // blank inverted triangle
	}
}

// Trajectory is a simulated (X(t), Y(t)) path for one initial point.
type Trajectory struct {
	Initial InitialCounts
	Xs, Ys  []float64
}

// PhasePortrait simulates the Figure-1 protocol from each initial point and
// records the (X, Y) = (#receptive, #stash) trajectory — the paper's
// Figure 2 phase portrait (a stable spiral for β = 4, γ = 1.0, α = 0.01).
func PhasePortrait(p Params, initials []InitialCounts, periods int, sampleEvery int, seed int64) ([]Trajectory, error) {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	proto, err := NewFigure1Protocol(p)
	if err != nil {
		return nil, err
	}
	out := make([]Trajectory, 0, len(initials))
	for i, ic := range initials {
		e, err := sim.New(sim.Config{
			N:        ic.total(),
			Protocol: proto,
			Initial:  ic.toMap(),
			Seed:     seed + int64(i)*7919,
		})
		if err != nil {
			return nil, err
		}
		tr := Trajectory{Initial: ic}
		for t := 0; t < periods; t++ {
			if t%sampleEvery == 0 {
				tr.Xs = append(tr.Xs, float64(e.Count(Receptive)))
				tr.Ys = append(tr.Ys, float64(e.Count(Stash)))
			}
			e.Step()
		}
		out = append(out, tr)
	}
	return out, nil
}

// MassiveFailureConfig configures the Figures 5/6 experiment.
type MassiveFailureConfig struct {
	N          int
	Params     Params
	FailAt     int     // period of the massive failure
	FailFrac   float64 // fraction of hosts crashed (paper: 0.5)
	Periods    int     // total periods simulated
	RecordFrom int     // first period recorded in the series
	Seed       int64
}

// MassiveFailureResult carries the Figure 5 population series and the
// Figure 6 file-flux series of the same run.
type MassiveFailureResult struct {
	Times     []float64
	Stash     []float64 // alive stashers (Figure 5 "Stash:Alive")
	Receptive []float64 // alive receptives (Figure 5 "Rcptv:Alive")
	Averse    []float64
	Flux      []float64 // receptive→stash transfers per period (Figure 6)
	Killed    int
}

// RunMassiveFailure reproduces the experiment behind Figures 5 and 6: a
// system started at the analytic equilibrium suffers a massive correlated
// failure and re-stabilizes, with the file-flux rate barely disturbed.
func RunMassiveFailure(cfg MassiveFailureConfig) (*MassiveFailureResult, error) {
	if cfg.FailFrac < 0 || cfg.FailFrac >= 1 {
		return nil, fmt.Errorf("endemic: fail fraction %v outside [0,1)", cfg.FailFrac)
	}
	proto, err := NewFigure1Protocol(cfg.Params)
	if err != nil {
		return nil, err
	}
	eq := StableEquilibrium(cfg.Params.Beta(), cfg.Params.Gamma, cfg.Params.Alpha)
	initY := int(eq.Stash * float64(cfg.N))
	if initY < 1 {
		initY = 1
	}
	initX := int(eq.Receptive * float64(cfg.N))
	initZ := cfg.N - initX - initY
	e, err := sim.New(sim.Config{
		N:        cfg.N,
		Protocol: proto,
		Initial:  map[ode.Var]int{Receptive: initX, Stash: initY, Averse: initZ},
		Seed:     cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	res := &MassiveFailureResult{}
	for t := 0; t < cfg.Periods; t++ {
		if t == cfg.FailAt {
			res.Killed = e.KillFraction(cfg.FailFrac)
		}
		e.Step()
		if t >= cfg.RecordFrom {
			res.Times = append(res.Times, float64(t))
			res.Stash = append(res.Stash, float64(e.Count(Stash)))
			res.Receptive = append(res.Receptive, float64(e.Count(Receptive)))
			res.Averse = append(res.Averse, float64(e.Count(Averse)))
			res.Flux = append(res.Flux, float64(e.TransitionsLastPeriod()[[2]ode.Var{Receptive, Stash}]))
		}
	}
	return res, nil
}

// SweepPoint is one group size of the Figure 7 analysis-vs-measured sweep.
type SweepPoint struct {
	N                 int
	StashMeasured     stats.Summary // median/min/max over the window
	ReceptiveMeasured stats.Summary
	StashAnalysis     float64 // N·y∞
	ReceptiveAnalysis float64 // N·x∞
}

// RunEquilibriumSweep reproduces Figure 7: for each group size, run the
// protocol past equilibrium, then record windowPeriods periods and compare
// the measured median (and min/max) populations with the analytic
// equilibrium (2).
func RunEquilibriumSweep(ns []int, p Params, warmup, windowPeriods int, seed int64) ([]SweepPoint, error) {
	proto, err := NewFigure1Protocol(p)
	if err != nil {
		return nil, err
	}
	eq := StableEquilibrium(p.Beta(), p.Gamma, p.Alpha)
	out := make([]SweepPoint, 0, len(ns))
	for i, n := range ns {
		initY := int(eq.Stash * float64(n))
		if initY < 1 {
			initY = 1
		}
		initX := int(eq.Receptive * float64(n))
		e, err := sim.New(sim.Config{
			N:        n,
			Protocol: proto,
			Initial:  map[ode.Var]int{Receptive: initX, Stash: initY, Averse: n - initX - initY},
			Seed:     seed + int64(i)*104729,
		})
		if err != nil {
			return nil, err
		}
		e.Run(warmup)
		stash := make([]float64, 0, windowPeriods)
		rcptv := make([]float64, 0, windowPeriods)
		for t := 0; t < windowPeriods; t++ {
			e.Step()
			stash = append(stash, float64(e.Count(Stash)))
			rcptv = append(rcptv, float64(e.Count(Receptive)))
		}
		out = append(out, SweepPoint{
			N:                 n,
			StashMeasured:     stats.Summarize(stash),
			ReceptiveMeasured: stats.Summarize(rcptv),
			StashAnalysis:     eq.Stash * float64(n),
			ReceptiveAnalysis: eq.Receptive * float64(n),
		})
	}
	return out, nil
}

// UntraceabilityResult carries the Figure 8 scatter and its summary
// statistics.
type UntraceabilityResult struct {
	// Scatter holds one (period, hostID) point per stasher per period.
	Scatter *stats.Scatter
	// MeanStashers is the average stash population over the window.
	MeanStashers float64
	// TimeHostCorrelation is the Pearson correlation between period and
	// host ID over the scatter; near zero means no drift an attacker could
	// exploit.
	TimeHostCorrelation float64
	// Fairness is the coefficient of variation of per-host stash
	// occupancy over the window (small = good load balancing). The window
	// must be several stash stints (1/γ) long for this to settle.
	Fairness float64
}

// RunUntraceability reproduces Figure 8: which hosts are stashers at the
// end of every protocol period, over a window.
func RunUntraceability(n int, p Params, warmup, windowPeriods int, seed int64) (*UntraceabilityResult, error) {
	proto, err := NewFigure1Protocol(p)
	if err != nil {
		return nil, err
	}
	eq := StableEquilibrium(p.Beta(), p.Gamma, p.Alpha)
	initY := int(eq.Stash*float64(n)) + 1
	e, err := sim.New(sim.Config{
		N:        n,
		Protocol: proto,
		Initial:  map[ode.Var]int{Receptive: n - initY, Stash: initY, Averse: 0},
		Seed:     seed,
	})
	if err != nil {
		return nil, err
	}
	e.Run(warmup)
	res := &UntraceabilityResult{Scatter: stats.NewScatter("stashers")}
	occupancy := make([]int, n)
	var stashSum float64
	for t := 0; t < windowPeriods; t++ {
		e.Step()
		period := float64(warmup + t)
		for _, h := range e.ProcessesIn(Stash) {
			res.Scatter.Add(period, float64(h))
			occupancy[h]++
		}
		stashSum += float64(e.Count(Stash))
	}
	res.MeanStashers = stashSum / float64(windowPeriods)
	res.TimeHostCorrelation = res.Scatter.CorrelationXY()
	res.Fairness = stats.OccupancyFairness(occupancy)
	return res, nil
}

// HeterogeneousResult reports the steady state of a group in which a
// fraction of hosts is chronically averse.
type HeterogeneousResult struct {
	// FrozenAverse is the number of chronically averse hosts.
	FrozenAverse int
	// MeanStash is the time-averaged stash population among active hosts.
	MeanStash float64
	// MeanReceptive is the time-averaged receptive population.
	MeanReceptive float64
}

// RunHeterogeneous reproduces the §5.1 remark that post-massive-failure
// behaviour is "characteristic of a heterogeneous setting, where half the
// hosts are chronically averse to storing the file or even perhaps to
// running the protocol": a fraction of hosts is pinned in the averse state
// (they answer contacts but never act), and the active rest runs the
// protocol. Contacts landing on pinned hosts are fruitless, which reduces
// the effective contact rate exactly as crashed hosts do.
func RunHeterogeneous(n int, p Params, frozenFrac float64, warmup, window int, seed int64) (*HeterogeneousResult, error) {
	if frozenFrac < 0 || frozenFrac >= 1 {
		return nil, fmt.Errorf("endemic: frozen fraction %v outside [0,1)", frozenFrac)
	}
	proto, err := NewFigure1Protocol(p)
	if err != nil {
		return nil, err
	}
	frozen := int(frozenFrac * float64(n))
	active := n - frozen
	eq := StableEquilibrium(p.Beta(), p.Gamma, p.Alpha)
	initY := int(eq.Stash*float64(active)) + 1
	initX := int(eq.Receptive*float64(active)) + 1
	e, err := sim.New(sim.Config{
		N:        n,
		Protocol: proto,
		Initial: map[ode.Var]int{
			Receptive: initX,
			Stash:     initY,
			Averse:    n - initX - initY,
		},
		Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	// The engine lays processes out in state order (receptive, stash,
	// averse, in System order), so the tail of the index space is averse;
	// pin the last `frozen` processes.
	for q := n - frozen; q < n; q++ {
		e.Freeze(q)
	}
	e.Run(warmup)
	res := &HeterogeneousResult{FrozenAverse: frozen}
	for t := 0; t < window; t++ {
		e.Step()
		res.MeanStash += float64(e.Count(Stash))
		res.MeanReceptive += float64(e.Count(Receptive))
	}
	res.MeanStash /= float64(window)
	res.MeanReceptive /= float64(window)
	return res, nil
}

// ChurnConfig configures the Figures 9/10 experiment.
type ChurnConfig struct {
	N              int
	Params         Params
	Trace          *churn.Trace
	PeriodsPerHour float64 // paper: 10 (6-minute periods)
	RecordFromHour float64
	RecordToHour   float64
	Seed           int64
}

// ChurnResult carries the population series (Figure 9) and per-period
// transition counts (Figure 10) under churn.
type ChurnResult struct {
	Hours     []float64
	Stash     []float64
	Receptive []float64
	Averse    []float64
	// Transition streams, per period: receptive→stash (file transfers),
	// stash→averse (deletions), averse→receptive.
	RcptvToStash  []float64
	StashToAverse []float64
	AverseToRcptv []float64
	// MeanAlive is the average alive population over the recorded window.
	MeanAlive float64
}

// RunChurn reproduces Figures 9 and 10: the endemic protocol under
// trace-driven churn. Departing hosts lose their replicas; rejoining hosts
// come back receptive (the paper's worst-case model).
func RunChurn(cfg ChurnConfig) (*ChurnResult, error) {
	if cfg.Trace == nil {
		return nil, fmt.Errorf("endemic: nil churn trace")
	}
	if cfg.Trace.Hosts != cfg.N {
		return nil, fmt.Errorf("endemic: trace covers %d hosts, want %d", cfg.Trace.Hosts, cfg.N)
	}
	proto, err := NewFigure1Protocol(cfg.Params)
	if err != nil {
		return nil, err
	}
	// Start everyone receptive except a stash seed sized by the analytic
	// equilibrium; the warm-up to RecordFromHour absorbs the transient.
	eq := StableEquilibrium(cfg.Params.Beta(), cfg.Params.Gamma, cfg.Params.Alpha)
	initY := int(eq.Stash*float64(cfg.N)) + 1
	e, err := sim.New(sim.Config{
		N:        cfg.N,
		Protocol: proto,
		Initial:  map[ode.Var]int{Receptive: cfg.N - initY, Stash: initY, Averse: 0},
		Seed:     cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	// Apply the trace's initial availability.
	for h, up := range cfg.Trace.InitiallyUp {
		if !up {
			e.Kill(h)
		}
	}
	rep, err := churn.NewReplayer(cfg.Trace, cfg.PeriodsPerHour)
	if err != nil {
		return nil, err
	}
	totalPeriods := int(cfg.Trace.Duration * cfg.PeriodsPerHour)
	res := &ChurnResult{}
	var aliveSum float64
	var aliveCount int
	for t := 0; t < totalPeriods; t++ {
		for _, ev := range rep.Next(t) {
			if ev.Up {
				if e.StateOf(ev.Host) == sim.Down {
					if err := e.Revive(ev.Host, Receptive); err != nil {
						return nil, err
					}
				}
			} else {
				e.Kill(ev.Host)
			}
		}
		e.Step()
		hour := float64(t+1) / cfg.PeriodsPerHour
		if hour >= cfg.RecordFromHour && hour <= cfg.RecordToHour {
			trans := e.TransitionsLastPeriod()
			res.Hours = append(res.Hours, hour)
			res.Stash = append(res.Stash, float64(e.Count(Stash)))
			res.Receptive = append(res.Receptive, float64(e.Count(Receptive)))
			res.Averse = append(res.Averse, float64(e.Count(Averse)))
			res.RcptvToStash = append(res.RcptvToStash, float64(trans[[2]ode.Var{Receptive, Stash}]))
			res.StashToAverse = append(res.StashToAverse, float64(trans[[2]ode.Var{Stash, Averse}]))
			res.AverseToRcptv = append(res.AverseToRcptv, float64(trans[[2]ode.Var{Averse, Receptive}]))
			aliveSum += float64(e.Alive())
			aliveCount++
		}
	}
	if aliveCount > 0 {
		res.MeanAlive = aliveSum / float64(aliveCount)
	}
	return res, nil
}
