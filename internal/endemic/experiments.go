package endemic

import (
	"fmt"

	"odeproto/internal/churn"
	"odeproto/internal/harness"
	"odeproto/internal/ode"
	"odeproto/internal/sim"
	"odeproto/internal/stats"
)

// The experiments in this file reproduce the endemic half of the paper's
// evaluation (§5.1). They all route through the harness scheduler: each
// experiment builds []harness.Job — engine factory, seed, perturbation
// schedule, observation hooks — and fans them out with harness.Sweep.
// Single-run experiments use the same Job shape through harness.Run, so
// sequential and parallel execution share one code path and the results
// are identical at any worker count.

// InitialCounts is a starting population (X, Y, Z) in absolute counts, as
// in the Figure 2 caption.
type InitialCounts struct {
	X, Y, Z int
}

// total returns the population size.
func (ic InitialCounts) total() int { return ic.X + ic.Y + ic.Z }

func (ic InitialCounts) toMap() map[ode.Var]int {
	return map[ode.Var]int{Receptive: ic.X, Stash: ic.Y, Averse: ic.Z}
}

// Figure2InitialPoints returns the seven initial points of the Figure 2
// caption for N = 1000.
func Figure2InitialPoints() []InitialCounts {
	return []InitialCounts{
		{999, 1, 0},     // blank square
		{0, 1, 999},     // dark square
		{0, 1000, 0},    // blank circle
		{500, 500, 0},   // dark circle
		{500, 1, 499},   // blank triangle
		{1, 500, 499},   // dark triangle
		{333, 333, 334}, // blank inverted triangle
	}
}

// Trajectory is a simulated (X(t), Y(t)) path for one initial point.
type Trajectory struct {
	Initial InitialCounts
	Xs, Ys  []float64
}

// PhasePortrait simulates the Figure-1 protocol from each initial point and
// records the (X, Y) = (#receptive, #stash) trajectory — the paper's
// Figure 2 phase portrait (a stable spiral for β = 4, γ = 1.0, α = 0.01).
// The initial points run in parallel; per-point seeds keep the output
// independent of the worker count.
func PhasePortrait(p Params, initials []InitialCounts, periods int, sampleEvery int, seed int64) ([]Trajectory, error) {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	proto, err := NewFigure1Protocol(p)
	if err != nil {
		return nil, err
	}
	out := make([]Trajectory, len(initials))
	jobs := make([]harness.Job, len(initials))
	for i, ic := range initials {
		tr := &out[i]
		tr.Initial = ic
		cfg := sim.Config{N: ic.total(), Protocol: proto, Initial: ic.toMap()}
		jobs[i] = harness.Job{
			Name: fmt.Sprintf("fig2-point%d", i),
			Seed: seed + int64(i)*7919,
			New: func(seed int64) (harness.Runner, error) {
				cfg.Seed = seed
				return harness.NewAgent(cfg)
			},
			Periods: periods,
			BeforeStep: func(r harness.Runner, t int) {
				if t%sampleEvery == 0 {
					tr.Xs = append(tr.Xs, float64(r.Count(Receptive)))
					tr.Ys = append(tr.Ys, float64(r.Count(Stash)))
				}
			},
		}
	}
	if _, err := harness.Sweep(jobs, harness.Options{}); err != nil {
		return nil, err
	}
	return out, nil
}

// MassiveFailureConfig configures the Figures 5/6 experiment.
type MassiveFailureConfig struct {
	N      int
	Params Params
	// FailAt is the period of the massive failure; negative disables it
	// (as does FailFrac = 0). A nonnegative FailAt at or past Periods is
	// an error — out-of-horizon events fail rather than vanish.
	FailAt     int
	FailFrac   float64 // fraction of hosts crashed (paper: 0.5)
	Periods    int     // total periods simulated
	RecordFrom int     // first period recorded in the series
	Seed       int64
}

// MassiveFailureResult carries the Figure 5 population series and the
// Figure 6 file-flux series of the same run.
type MassiveFailureResult struct {
	Times     []float64
	Stash     []float64 // alive stashers (Figure 5 "Stash:Alive")
	Receptive []float64 // alive receptives (Figure 5 "Rcptv:Alive")
	Averse    []float64
	Flux      []float64 // receptive→stash transfers per period (Figure 6)
	Killed    int
}

// newMassiveFailureJob builds the harness job for one massive-failure run
// together with the result record its hooks populate (Killed is filled in
// from the harness result by the caller).
func newMassiveFailureJob(name string, cfg MassiveFailureConfig) (harness.Job, *MassiveFailureResult, error) {
	if cfg.FailFrac < 0 || cfg.FailFrac >= 1 {
		return harness.Job{}, nil, fmt.Errorf("endemic: fail fraction %v outside [0,1)", cfg.FailFrac)
	}
	proto, err := NewFigure1Protocol(cfg.Params)
	if err != nil {
		return harness.Job{}, nil, err
	}
	eq := StableEquilibrium(cfg.Params.Beta(), cfg.Params.Gamma, cfg.Params.Alpha)
	initY := int(eq.Stash * float64(cfg.N))
	if initY < 1 {
		initY = 1
	}
	initX := int(eq.Receptive * float64(cfg.N))
	initZ := cfg.N - initX - initY
	res := &MassiveFailureResult{}
	job := harness.Job{
		Name: name,
		Seed: cfg.Seed,
		New: func(seed int64) (harness.Runner, error) {
			return harness.NewAgent(sim.Config{
				N:        cfg.N,
				Protocol: proto,
				Initial:  map[ode.Var]int{Receptive: initX, Stash: initY, Averse: initZ},
				Seed:     seed,
			})
		},
		Periods: cfg.Periods,
		Events: []harness.Event{
			{At: cfg.FailAt, P: harness.Perturbation{Kind: harness.KillFraction, Frac: cfg.FailFrac}},
		},
		AfterStep: func(r harness.Runner, t int) {
			if t < cfg.RecordFrom {
				return
			}
			res.Times = append(res.Times, float64(t))
			res.Stash = append(res.Stash, float64(r.Count(Stash)))
			res.Receptive = append(res.Receptive, float64(r.Count(Receptive)))
			res.Averse = append(res.Averse, float64(r.Count(Averse)))
			trans := r.(harness.TransitionCounter).TransitionsLastPeriod()
			res.Flux = append(res.Flux, float64(trans[[2]ode.Var{Receptive, Stash}]))
		},
	}
	// FailAt < 0 (or a zero fraction) is the no-failure sentinel, as in
	// lv.Config. A nonnegative FailAt past the horizon is NOT stripped: it
	// reaches the harness's event validation and fails the job loudly.
	if cfg.FailAt < 0 || cfg.FailFrac == 0 {
		job.Events = nil
	}
	return job, res, nil
}

// RunMassiveFailure reproduces the experiment behind Figures 5 and 6: a
// system started at the analytic equilibrium suffers a massive correlated
// failure and re-stabilizes, with the file-flux rate barely disturbed.
func RunMassiveFailure(cfg MassiveFailureConfig) (*MassiveFailureResult, error) {
	job, res, err := newMassiveFailureJob("massive-failure", cfg)
	if err != nil {
		return nil, err
	}
	out := harness.Run(job)
	if out.Err != nil {
		return nil, out.Err
	}
	res.Killed = out.Killed
	return res, nil
}

// RunMassiveFailureSeeds replicates the massive-failure experiment across
// independent seeds, fanned out in parallel. Results are returned in seed
// order regardless of the worker count.
func RunMassiveFailureSeeds(cfg MassiveFailureConfig, seeds []int64) ([]*MassiveFailureResult, error) {
	jobs := make([]harness.Job, len(seeds))
	results := make([]*MassiveFailureResult, len(seeds))
	for i, s := range seeds {
		c := cfg
		c.Seed = s
		job, res, err := newMassiveFailureJob(fmt.Sprintf("massive-failure-seed%d", s), c)
		if err != nil {
			return nil, err
		}
		jobs[i] = job
		results[i] = res
	}
	out, err := harness.Sweep(jobs, harness.Options{})
	if err != nil {
		return nil, err
	}
	for i := range results {
		results[i].Killed = out[i].Killed
	}
	return results, nil
}

// SweepPoint is one group size of the Figure 7 analysis-vs-measured sweep.
type SweepPoint struct {
	N                 int
	StashMeasured     stats.Summary // median/min/max over the window
	ReceptiveMeasured stats.Summary
	StashAnalysis     float64 // N·y∞
	ReceptiveAnalysis float64 // N·x∞
}

// RunEquilibriumSweep reproduces Figure 7: for each group size, run the
// protocol past equilibrium, then record windowPeriods periods and compare
// the measured median (and min/max) populations with the analytic
// equilibrium (2). The group sizes run in parallel.
func RunEquilibriumSweep(ns []int, p Params, warmup, windowPeriods int, seed int64) ([]SweepPoint, error) {
	proto, err := NewFigure1Protocol(p)
	if err != nil {
		return nil, err
	}
	eq := StableEquilibrium(p.Beta(), p.Gamma, p.Alpha)
	out := make([]SweepPoint, len(ns))
	series := make([][2][]float64, len(ns)) // stash, receptive per job
	jobs := make([]harness.Job, len(ns))
	for i, n := range ns {
		initY := int(eq.Stash * float64(n))
		if initY < 1 {
			initY = 1
		}
		initX := int(eq.Receptive * float64(n))
		cfg := sim.Config{
			N:        n,
			Protocol: proto,
			Initial:  map[ode.Var]int{Receptive: initX, Stash: initY, Averse: n - initX - initY},
		}
		out[i] = SweepPoint{
			N:                 n,
			StashAnalysis:     eq.Stash * float64(n),
			ReceptiveAnalysis: eq.Receptive * float64(n),
		}
		rec := &series[i]
		jobs[i] = harness.Job{
			Name: fmt.Sprintf("fig7-n%d", n),
			Seed: seed + int64(i)*104729,
			New: func(seed int64) (harness.Runner, error) {
				cfg.Seed = seed
				return harness.NewAgent(cfg)
			},
			Periods: warmup + windowPeriods,
			AfterStep: func(r harness.Runner, t int) {
				if t < warmup {
					return
				}
				rec[0] = append(rec[0], float64(r.Count(Stash)))
				rec[1] = append(rec[1], float64(r.Count(Receptive)))
			},
		}
	}
	if _, err := harness.Sweep(jobs, harness.Options{}); err != nil {
		return nil, err
	}
	for i := range out {
		out[i].StashMeasured = stats.Summarize(series[i][0])
		out[i].ReceptiveMeasured = stats.Summarize(series[i][1])
	}
	return out, nil
}

// UntraceabilityResult carries the Figure 8 scatter and its summary
// statistics.
type UntraceabilityResult struct {
	// Scatter holds one (period, hostID) point per stasher per period.
	Scatter *stats.Scatter
	// MeanStashers is the average stash population over the window.
	MeanStashers float64
	// TimeHostCorrelation is the Pearson correlation between period and
	// host ID over the scatter; near zero means no drift an attacker could
	// exploit.
	TimeHostCorrelation float64
	// Fairness is the coefficient of variation of per-host stash
	// occupancy over the window (small = good load balancing). The window
	// must be several stash stints (1/γ) long for this to settle.
	Fairness float64
}

// RunUntraceability reproduces Figure 8: which hosts are stashers at the
// end of every protocol period, over a window.
func RunUntraceability(n int, p Params, warmup, windowPeriods int, seed int64) (*UntraceabilityResult, error) {
	proto, err := NewFigure1Protocol(p)
	if err != nil {
		return nil, err
	}
	eq := StableEquilibrium(p.Beta(), p.Gamma, p.Alpha)
	initY := int(eq.Stash*float64(n)) + 1
	res := &UntraceabilityResult{Scatter: stats.NewScatter("stashers")}
	occupancy := make([]int, n)
	var stashSum float64
	job := harness.Job{
		Name: "fig8-untraceability",
		Seed: seed,
		New: func(seed int64) (harness.Runner, error) {
			return harness.NewAgent(sim.Config{
				N:        n,
				Protocol: proto,
				Initial:  map[ode.Var]int{Receptive: n - initY, Stash: initY, Averse: 0},
				Seed:     seed,
			})
		},
		Periods: warmup + windowPeriods,
		AfterStep: func(r harness.Runner, t int) {
			if t < warmup {
				return
			}
			for _, h := range r.(harness.ProcessLister).ProcessesIn(Stash) {
				res.Scatter.Add(float64(t), float64(h))
				occupancy[h]++
			}
			stashSum += float64(r.Count(Stash))
		},
	}
	if out := harness.Run(job); out.Err != nil {
		return nil, out.Err
	}
	res.MeanStashers = stashSum / float64(windowPeriods)
	res.TimeHostCorrelation = res.Scatter.CorrelationXY()
	res.Fairness = stats.OccupancyFairness(occupancy)
	return res, nil
}

// HeterogeneousResult reports the steady state of a group in which a
// fraction of hosts is chronically averse.
type HeterogeneousResult struct {
	// FrozenAverse is the number of chronically averse hosts.
	FrozenAverse int
	// MeanStash is the time-averaged stash population among active hosts.
	MeanStash float64
	// MeanReceptive is the time-averaged receptive population.
	MeanReceptive float64
}

// RunHeterogeneous reproduces the §5.1 remark that post-massive-failure
// behaviour is "characteristic of a heterogeneous setting, where half the
// hosts are chronically averse to storing the file or even perhaps to
// running the protocol": a fraction of hosts is pinned in the averse state
// (they answer contacts but never act), and the active rest runs the
// protocol. Contacts landing on pinned hosts are fruitless, which reduces
// the effective contact rate exactly as crashed hosts do.
func RunHeterogeneous(n int, p Params, frozenFrac float64, warmup, window int, seed int64) (*HeterogeneousResult, error) {
	if frozenFrac < 0 || frozenFrac >= 1 {
		return nil, fmt.Errorf("endemic: frozen fraction %v outside [0,1)", frozenFrac)
	}
	proto, err := NewFigure1Protocol(p)
	if err != nil {
		return nil, err
	}
	frozen := int(frozenFrac * float64(n))
	active := n - frozen
	eq := StableEquilibrium(p.Beta(), p.Gamma, p.Alpha)
	initY := int(eq.Stash*float64(active)) + 1
	initX := int(eq.Receptive*float64(active)) + 1
	// The engine lays processes out in state order (receptive, stash,
	// averse, in System order), so the tail of the index space is averse;
	// pin the last `frozen` processes before the first period.
	events := make([]harness.Event, 0, frozen)
	for q := n - frozen; q < n; q++ {
		events = append(events, harness.Event{At: 0, P: harness.Perturbation{Kind: harness.Freeze, Proc: q}})
	}
	res := &HeterogeneousResult{FrozenAverse: frozen}
	job := harness.Job{
		Name: "heterogeneous",
		Seed: seed,
		New: func(seed int64) (harness.Runner, error) {
			return harness.NewAgent(sim.Config{
				N:        n,
				Protocol: proto,
				Initial: map[ode.Var]int{
					Receptive: initX,
					Stash:     initY,
					Averse:    n - initX - initY,
				},
				Seed: seed,
			})
		},
		Periods: warmup + window,
		Events:  events,
		AfterStep: func(r harness.Runner, t int) {
			if t < warmup {
				return
			}
			res.MeanStash += float64(r.Count(Stash))
			res.MeanReceptive += float64(r.Count(Receptive))
		},
	}
	if out := harness.Run(job); out.Err != nil {
		return nil, out.Err
	}
	res.MeanStash /= float64(window)
	res.MeanReceptive /= float64(window)
	return res, nil
}

// ChurnConfig configures the Figures 9/10 experiment.
type ChurnConfig struct {
	N              int
	Params         Params
	Trace          *churn.Trace
	PeriodsPerHour float64 // paper: 10 (6-minute periods)
	RecordFromHour float64
	RecordToHour   float64
	Seed           int64
}

// ChurnResult carries the population series (Figure 9) and per-period
// transition counts (Figure 10) under churn.
type ChurnResult struct {
	Hours     []float64
	Stash     []float64
	Receptive []float64
	Averse    []float64
	// Transition streams, per period: receptive→stash (file transfers),
	// stash→averse (deletions), averse→receptive.
	RcptvToStash  []float64
	StashToAverse []float64
	AverseToRcptv []float64
	// MeanAlive is the average alive population over the recorded window.
	MeanAlive float64
}

// churnSchedule compiles a churn trace into a harness perturbation
// schedule: the trace's initial availability becomes Kill events at period
// 0, and every departure/rejoin becomes a Kill/Revive event at the period
// it falls in. Rejoining hosts come back receptive (the paper's worst-case
// model); Revive of an already-alive host is an idempotent no-op, so the
// schedule can be applied blindly.
func churnSchedule(trace *churn.Trace, periodsPerHour float64, totalPeriods int) ([]harness.Event, error) {
	rep, err := churn.NewReplayer(trace, periodsPerHour)
	if err != nil {
		return nil, err
	}
	var events []harness.Event
	for h, up := range trace.InitiallyUp {
		if !up {
			events = append(events, harness.Event{At: 0, P: harness.Perturbation{Kind: harness.Kill, Proc: h}})
		}
	}
	for t := 0; t < totalPeriods; t++ {
		for _, ev := range rep.Next(t) {
			p := harness.Perturbation{Kind: harness.Kill, Proc: ev.Host}
			if ev.Up {
				p = harness.Perturbation{Kind: harness.Revive, Proc: ev.Host, State: Receptive}
			}
			events = append(events, harness.Event{At: t, P: p})
		}
	}
	return events, nil
}

// RunChurn reproduces Figures 9 and 10: the endemic protocol under
// trace-driven churn. Departing hosts lose their replicas; rejoining hosts
// come back receptive (the paper's worst-case model).
func RunChurn(cfg ChurnConfig) (*ChurnResult, error) {
	if cfg.Trace == nil {
		return nil, fmt.Errorf("endemic: nil churn trace")
	}
	if cfg.Trace.Hosts != cfg.N {
		return nil, fmt.Errorf("endemic: trace covers %d hosts, want %d", cfg.Trace.Hosts, cfg.N)
	}
	proto, err := NewFigure1Protocol(cfg.Params)
	if err != nil {
		return nil, err
	}
	// Start everyone receptive except a stash seed sized by the analytic
	// equilibrium; the warm-up to RecordFromHour absorbs the transient.
	eq := StableEquilibrium(cfg.Params.Beta(), cfg.Params.Gamma, cfg.Params.Alpha)
	initY := int(eq.Stash*float64(cfg.N)) + 1
	totalPeriods := int(cfg.Trace.Duration * cfg.PeriodsPerHour)
	events, err := churnSchedule(cfg.Trace, cfg.PeriodsPerHour, totalPeriods)
	if err != nil {
		return nil, err
	}
	res := &ChurnResult{}
	var aliveSum float64
	var aliveCount int
	job := harness.Job{
		Name: "churn",
		Seed: cfg.Seed,
		New: func(seed int64) (harness.Runner, error) {
			return harness.NewAgent(sim.Config{
				N:        cfg.N,
				Protocol: proto,
				Initial:  map[ode.Var]int{Receptive: cfg.N - initY, Stash: initY, Averse: 0},
				Seed:     seed,
			})
		},
		Periods: totalPeriods,
		Events:  events,
		AfterStep: func(r harness.Runner, t int) {
			hour := float64(t+1) / cfg.PeriodsPerHour
			if hour < cfg.RecordFromHour || hour > cfg.RecordToHour {
				return
			}
			trans := r.(harness.TransitionCounter).TransitionsLastPeriod()
			res.Hours = append(res.Hours, hour)
			res.Stash = append(res.Stash, float64(r.Count(Stash)))
			res.Receptive = append(res.Receptive, float64(r.Count(Receptive)))
			res.Averse = append(res.Averse, float64(r.Count(Averse)))
			res.RcptvToStash = append(res.RcptvToStash, float64(trans[[2]ode.Var{Receptive, Stash}]))
			res.StashToAverse = append(res.StashToAverse, float64(trans[[2]ode.Var{Stash, Averse}]))
			res.AverseToRcptv = append(res.AverseToRcptv, float64(trans[[2]ode.Var{Averse, Receptive}]))
			aliveSum += float64(r.Alive())
			aliveCount++
		},
	}
	if out := harness.Run(job); out.Err != nil {
		return nil, out.Err
	}
	if aliveCount > 0 {
		res.MeanAlive = aliveSum / float64(aliveCount)
	}
	return res, nil
}
