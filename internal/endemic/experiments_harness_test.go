package endemic

import (
	"reflect"
	"runtime"
	"testing"

	"odeproto/internal/harness"
	"odeproto/internal/sim"
)

// figure2Reference reproduces the pre-harness sequential implementation of
// PhasePortrait verbatim — one hand-rolled loop per initial point, seeds
// seed + i·7919 — and is the golden reference the harness-based
// implementation must match byte for byte.
func figure2Reference(t *testing.T, p Params, initials []InitialCounts, periods, sampleEvery int, seed int64) []Trajectory {
	t.Helper()
	proto, err := NewFigure1Protocol(p)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]Trajectory, 0, len(initials))
	for i, ic := range initials {
		e, err := sim.New(sim.Config{
			N:        ic.total(),
			Protocol: proto,
			Initial:  ic.toMap(),
			Seed:     seed + int64(i)*7919,
		})
		if err != nil {
			t.Fatal(err)
		}
		tr := Trajectory{Initial: ic}
		for tt := 0; tt < periods; tt++ {
			if tt%sampleEvery == 0 {
				tr.Xs = append(tr.Xs, float64(e.Count(Receptive)))
				tr.Ys = append(tr.Ys, float64(e.Count(Stash)))
			}
			e.Step()
		}
		out = append(out, tr)
	}
	return out
}

// TestPhasePortraitMatchesPreHarnessSequential pins the harness refactor
// to the pre-refactor behaviour: same seeds, same per-engine RNG streams,
// byte-identical Figure 2 trajectories.
func TestPhasePortraitMatchesPreHarnessSequential(t *testing.T) {
	p := Params{B: 2, Gamma: 1.0, Alpha: 0.01}
	const periods, sampleEvery, seed = 120, 5, 2004
	want := figure2Reference(t, p, Figure2InitialPoints(), periods, sampleEvery, seed)
	got, err := PhasePortrait(p, Figure2InitialPoints(), periods, sampleEvery, seed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("harness PhasePortrait differs from the pre-harness sequential implementation")
	}
}

// TestPhasePortraitWorkerCountIndependence verifies the harness
// determinism contract on the real Figure 2 entry point: 1, 4, and
// NumCPU workers all produce byte-identical trajectories.
func TestPhasePortraitWorkerCountIndependence(t *testing.T) {
	p := Params{B: 2, Gamma: 1.0, Alpha: 0.01}
	const periods, sampleEvery, seed = 120, 5, 2004
	run := func(workers int) []Trajectory {
		harness.SetDefaultWorkers(workers)
		defer harness.SetDefaultWorkers(0)
		trs, err := PhasePortrait(p, Figure2InitialPoints(), periods, sampleEvery, seed)
		if err != nil {
			t.Fatal(err)
		}
		return trs
	}
	reference := run(1)
	for _, workers := range []int{4, runtime.NumCPU()} {
		if got := run(workers); !reflect.DeepEqual(got, reference) {
			t.Fatalf("PhasePortrait output differs at %d workers", workers)
		}
	}
}

// TestMassiveFailureSeedsMatchesSingleRuns verifies that the parallel
// multi-seed fan-out returns exactly what sequential single runs return,
// in seed order.
func TestMassiveFailureSeedsMatchesSingleRuns(t *testing.T) {
	cfg := MassiveFailureConfig{
		N:      400,
		Params: Params{B: 2, Gamma: 0.1, Alpha: 0.01},
		FailAt: 20, FailFrac: 0.5,
		Periods: 40, RecordFrom: 0,
	}
	seeds := []int64{3, 1, 7}
	many, err := RunMassiveFailureSeeds(cfg, seeds)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range seeds {
		c := cfg
		c.Seed = s
		single, err := RunMassiveFailure(c)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(many[i], single) {
			t.Fatalf("seed %d: parallel result differs from single run", s)
		}
	}
}
