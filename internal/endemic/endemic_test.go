package endemic

import (
	"math"
	"testing"

	"odeproto/internal/core"
	"odeproto/internal/dynamics"
	"odeproto/internal/ode"
	"odeproto/internal/sim"
)

func TestParamsValidate(t *testing.T) {
	good := Params{B: 2, Gamma: 0.1, Alpha: 0.001}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{B: 0, Gamma: 0.1, Alpha: 0.001},
		{B: 2, Gamma: 0, Alpha: 0.001},
		{B: 2, Gamma: 1.5, Alpha: 0.001},
		{B: 2, Gamma: 0.1, Alpha: 0},
		{B: 2, Gamma: 0.1, Alpha: 2},
		{B: 1, Gamma: 1, Alpha: 0.5}, // β = 2 not > γ... β=2 > γ=1: actually valid
	}
	_ = bad[5]
	for i, p := range bad[:5] {
		if err := p.Validate(); err == nil {
			t.Errorf("params %d (%+v): expected error", i, p)
		}
	}
}

func TestSystemTaxonomy(t *testing.T) {
	s := System(4, 1, 0.01)
	c := s.Classify()
	if !c.Mappable() || !c.RestrictedPolynomial {
		t.Fatalf("endemic system classification %v", c)
	}
}

func TestStableEquilibriumZeroesField(t *testing.T) {
	for _, p := range []struct{ beta, gamma, alpha float64 }{
		{4, 1, 0.01}, {4, 0.1, 0.001}, {64, 0.1, 0.005}, {4, 1e-3, 1e-6},
	} {
		s := System(p.beta, p.gamma, p.alpha)
		eq := StableEquilibrium(p.beta, p.gamma, p.alpha)
		d := s.Eval(eq.Point())
		for i, v := range d {
			if math.Abs(v) > 1e-12 {
				t.Fatalf("params %+v: f[%d] = %v at equilibrium", p, i, v)
			}
		}
		sum := eq.Receptive + eq.Stash + eq.Averse
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("equilibrium fractions sum to %v", sum)
		}
	}
}

func TestTrivialEquilibrium(t *testing.T) {
	s := System(4, 1, 0.01)
	d := s.Eval(TrivialEquilibrium().Point())
	for i, v := range d {
		if v != 0 {
			t.Fatalf("f[%d] = %v at trivial equilibrium", i, v)
		}
	}
}

func TestFrameworkProtocol(t *testing.T) {
	proto, err := NewFrameworkProtocol(Params{B: 2, Gamma: 1, Alpha: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	// p = 1/β = 1/4.
	if math.Abs(proto.P-0.25) > 1e-12 {
		t.Fatalf("p = %v, want 0.25", proto.P)
	}
	if len(proto.Actions) != 3 {
		t.Fatalf("framework protocol has %d actions, want 3", len(proto.Actions))
	}
}

func TestFigure1ProtocolShape(t *testing.T) {
	proto, err := NewFigure1Protocol(Params{B: 2, Gamma: 0.1, Alpha: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if err := proto.Validate(); err != nil {
		t.Fatal(err)
	}
	kinds := map[core.ActionKind]int{}
	for _, a := range proto.Actions {
		kinds[a.Kind]++
	}
	if kinds[core.SampleAny] != 1 || kinds[core.Push] != 1 || kinds[core.Flip] != 2 {
		t.Fatalf("Figure 1 action kinds = %v", kinds)
	}
}

// TestFigure1MeanFieldMatchesEquations: in the small-y regime the variant's
// pull (1−(1−y)^b ≈ by) plus push (bx per stasher) flows approximate the
// βxy = 2bxy term, and the flip flows are exact.
func TestFigure1MeanFieldMatchesEquations(t *testing.T) {
	p := Params{B: 2, Gamma: 0.1, Alpha: 0.001}
	proto, err := NewFigure1Protocol(p)
	if err != nil {
		t.Fatal(err)
	}
	sys := System(p.Beta(), p.Gamma, p.Alpha)
	point := map[ode.Var]float64{Receptive: 0.05, Stash: 0.01, Averse: 0.94}
	drift := proto.ExpectedFlow(point)
	rhs := sys.PointFromVec(sys.Eval(point))
	for _, v := range []ode.Var{Receptive, Stash, Averse} {
		if math.Abs(drift[v]-rhs[v]) > 0.05*math.Abs(rhs[v])+1e-9 {
			t.Fatalf("drift[%s] = %v, equations give %v", v, drift[v], rhs[v])
		}
	}
}

// TestAnalyzeFigure2Parameters: the Figure 2 caption says the non-trivial
// equilibrium is a stable spiral for β = 4, γ = 1.0, α = 0.01.
func TestAnalyzeFigure2Parameters(t *testing.T) {
	a := Analyze(4, 1.0, 0.01)
	if a.Class != dynamics.StableSpiral {
		t.Fatalf("class = %v, want stable spiral", a.Class)
	}
	if a.Tau >= 0 || a.Delta <= 0 {
		t.Fatalf("τ = %v, Δ = %v; Theorem 3 needs τ<0, Δ>0", a.Tau, a.Delta)
	}
	wantSigma := 4 * a.Equilibrium.Stash
	if math.Abs(a.Sigma-wantSigma) > 1e-12 {
		t.Fatalf("σ = %v, want β·y∞ = %v", a.Sigma, wantSigma)
	}
	// Eigenvalues must be a complex pair with real part τ/2.
	if imag(a.Eigenvalues[0]) == 0 {
		t.Fatalf("expected complex eigenvalues, got %v", a.Eigenvalues)
	}
	if math.Abs(real(a.Eigenvalues[0])-a.Tau/2) > 1e-12 {
		t.Fatalf("Re λ = %v, want τ/2 = %v", real(a.Eigenvalues[0]), a.Tau/2)
	}
}

// TestAnalysisMatchesSimplexLinearization: the paper's 2×2 matrix A and the
// generic simplex-constrained Jacobian must agree on eigenvalues.
func TestAnalysisMatchesSimplexLinearization(t *testing.T) {
	beta, gamma, alpha := 4.0, 1.0, 0.01
	a := Analyze(beta, gamma, alpha)
	cls, err := dynamics.ClassifyOnSimplex(System(beta, gamma, alpha), Averse, a.Equilibrium.Point())
	if err != nil {
		t.Fatal(err)
	}
	// Compare sorted-by-imag real/imag parts.
	want := a.Eigenvalues
	got := cls.Eigenvalues
	match := func(w, g complex128) bool {
		return math.Abs(real(w)-real(g)) < 1e-9 && math.Abs(math.Abs(imag(w))-math.Abs(imag(g))) < 1e-9
	}
	if !(match(want[0], got[0]) || match(want[0], got[1])) {
		t.Fatalf("paper A eigenvalues %v vs simplex Jacobian %v", want, got)
	}
}

func TestPerturbationAtZero(t *testing.T) {
	a := Analyze(4, 1, 0.01)
	if got := a.PerturbationAt(0); math.Abs(got-1) > 1e-12 {
		t.Fatalf("u(0)/u0 = %v, want 1", got)
	}
	// Perturbations die out (envelope at large t).
	if got := a.PerturbationAt(5000); math.Abs(got) > 1e-3 {
		t.Fatalf("u(5000)/u0 = %v, want ≈ 0", got)
	}
}

// TestLongevityHeadlineNumbers checks the two §4.1.3 headline results:
// 50 replicas + 6-minute periods → 1.28×10¹⁰ years; 100 replicas →
// 1.45×10²⁵ years.
func TestLongevityHeadlineNumbers(t *testing.T) {
	got50 := ExpectedLongevityYears(50, 6)
	if math.Abs(got50-1.28e10) > 0.02e10 {
		t.Fatalf("longevity(50) = %.3g years, paper says 1.28e10", got50)
	}
	got100 := ExpectedLongevityYears(100, 6)
	if math.Abs(got100-1.45e25) > 0.02e25 {
		t.Fatalf("longevity(100) = %.3g years, paper says 1.45e25", got100)
	}
}

func TestExtinctionProbabilityDesignRule(t *testing.T) {
	// y∞ = c·log₂N ⇒ P(extinction event) = N^−c.
	for _, n := range []int{1024, 1 << 20} {
		for _, c := range []float64{1, 2, 5} {
			stashers := StashersForSafety(n, c)
			got := ExtinctionProbability(stashers)
			want := math.Pow(float64(n), -c)
			if math.Abs(got-want) > 1e-12*want {
				t.Fatalf("N=%d c=%v: P = %v, want N^-c = %v", n, c, got, want)
			}
		}
	}
}

// TestRealityCheck reproduces §5.1's bandwidth estimate: ≈ 3.92×10⁻³ bps
// per file per host, ~100-hour storage stints.
func TestRealityCheck(t *testing.T) {
	p := Params{B: 2, Gamma: 1e-3, Alpha: 1e-6}
	rc := ComputeRealityCheck(100000, p, 88.2*1024, 6)
	if math.Abs(rc.StintPeriods-1000) > 1e-9 {
		t.Fatalf("stint = %v periods, want 1000 (100 hours)", rc.StintPeriods)
	}
	// ~100 stashers in 100,000 hosts → ≈0.1% of time per host.
	if rc.StashFractionOfTime < 0.0008 || rc.StashFractionOfTime > 0.0012 {
		t.Fatalf("stash fraction = %v, want ≈ 0.001", rc.StashFractionOfTime)
	}
	if rc.BandwidthBps < 3.0e-3 || rc.BandwidthBps > 4.5e-3 {
		t.Fatalf("bandwidth = %v bps, paper says ≈ 3.92e-3", rc.BandwidthBps)
	}
}

func TestPhasePortraitSmall(t *testing.T) {
	p := Params{B: 2, Gamma: 1, Alpha: 0.01}
	initials := []InitialCounts{{299, 1, 0}, {100, 100, 100}}
	trs, err := PhasePortrait(p, initials, 50, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(trs) != 2 {
		t.Fatalf("got %d trajectories", len(trs))
	}
	for _, tr := range trs {
		if len(tr.Xs) != 50 || len(tr.Ys) != 50 {
			t.Fatalf("trajectory length %d/%d", len(tr.Xs), len(tr.Ys))
		}
		for i := range tr.Xs {
			if tr.Xs[i]+tr.Ys[i] > float64(tr.Initial.total()) {
				t.Fatalf("X+Y exceeds N at step %d", i)
			}
		}
	}
}

// TestPhasePortraitSpiralsToEquilibrium: trajectories end near the
// analytic equilibrium.
func TestPhasePortraitSpiralsToEquilibrium(t *testing.T) {
	p := Params{B: 2, Gamma: 1, Alpha: 0.01}
	const n = 1000
	eq := StableEquilibrium(p.Beta(), p.Gamma, p.Alpha)
	trs, err := PhasePortrait(p, []InitialCounts{{999, 1, 0}}, 3000, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	tr := trs[0]
	lastY := tr.Ys[len(tr.Ys)-1]
	wantY := eq.Stash * n
	// Stochastic oscillation allows a generous band.
	if math.Abs(lastY-wantY) > 0.5*wantY+20 {
		t.Fatalf("final stash %v, equilibrium %v", lastY, wantY)
	}
}

// TestMassiveFailureHorizonSemantics: FailAt < 0 (or FailFrac 0) means no
// failure; a nonnegative FailAt past the horizon is an error rather than
// a silently dropped event.
func TestMassiveFailureHorizonSemantics(t *testing.T) {
	base := MassiveFailureConfig{
		N:      400,
		Params: Params{B: 2, Gamma: 0.1, Alpha: 0.01},
		FailAt: -1, FailFrac: 0.5,
		Periods: 20, RecordFrom: 0, Seed: 1,
	}
	res, err := RunMassiveFailure(base)
	if err != nil {
		t.Fatalf("no-failure sentinel rejected: %v", err)
	}
	if res.Killed != 0 {
		t.Fatalf("no-failure run killed %d", res.Killed)
	}
	out := base
	out.FailAt = 20 // == Periods: could never fire
	if _, err := RunMassiveFailure(out); err == nil {
		t.Fatal("out-of-horizon FailAt did not error")
	}
}

func TestRunMassiveFailureStabilizes(t *testing.T) {
	cfg := MassiveFailureConfig{
		N:          20000,
		Params:     Params{B: 2, Gamma: 0.1, Alpha: 0.001},
		FailAt:     300,
		FailFrac:   0.5,
		Periods:    900,
		RecordFrom: 0,
		Seed:       9,
	}
	res, err := RunMassiveFailure(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// KillFraction rounds to nearest and kills exactly its target: all
	// 20000 processes are alive at FailAt, so exactly half die.
	if res.Killed != 10000 {
		t.Fatalf("killed %d, want exactly 10000", res.Killed)
	}
	// Stash population must never hit zero (probabilistic safety).
	for i, s := range res.Stash {
		if s == 0 {
			t.Fatalf("all replicas lost at recorded index %d", i)
		}
	}
	// After failure, stash roughly halves (alive fractions stay near y∞).
	eq := StableEquilibrium(4, 0.1, 0.001)
	preY := res.Stash[250]
	postY := res.Stash[len(res.Stash)-1]
	if math.Abs(preY-20000*eq.Stash) > 0.5*20000*eq.Stash {
		t.Fatalf("pre-failure stash %v, want ≈ %v", preY, 20000*eq.Stash)
	}
	// Post-failure: ~10000 alive; fruitless contacts halve effective b,
	// so the stash fraction shifts; just require the count dropped
	// towards half and stabilized above zero.
	if postY >= preY || postY < 10 {
		t.Fatalf("post-failure stash %v vs pre %v", postY, preY)
	}
	// Flux stays positive and bounded.
	fluxTail := res.Flux[len(res.Flux)-100:]
	var fluxSum float64
	for _, f := range fluxTail {
		fluxSum += f
	}
	if fluxSum == 0 {
		t.Fatal("file flux died out")
	}
}

func TestRunEquilibriumSweepMatchesAnalysis(t *testing.T) {
	// α = 0.01 keeps the equilibrium stash population large enough
	// (y∞·N ≈ 350 at N = 4000) that stochastic quasi-cycles cannot drive
	// it extinct at test scale; the paper's own Figure 7 parameters
	// (α = 0.001) need its N ≥ 12500 sizes, exercised in cmd/figures.
	p := Params{B: 2, Gamma: 0.1, Alpha: 0.01}
	points, err := RunEquilibriumSweep([]int{4000, 8000}, p, 1500, 800, 13)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range points {
		if math.Abs(pt.StashMeasured.Median-pt.StashAnalysis) > 0.3*pt.StashAnalysis {
			t.Fatalf("N=%d: measured stash median %v vs analysis %v",
				pt.N, pt.StashMeasured.Median, pt.StashAnalysis)
		}
		if math.Abs(pt.ReceptiveMeasured.Median-pt.ReceptiveAnalysis) > 0.3*pt.ReceptiveAnalysis+5 {
			t.Fatalf("N=%d: measured receptive median %v vs analysis %v",
				pt.N, pt.ReceptiveMeasured.Median, pt.ReceptiveAnalysis)
		}
	}
}

func TestRunUntraceability(t *testing.T) {
	p := Params{B: 2, Gamma: 0.1, Alpha: 0.01}
	res, err := RunUntraceability(800, p, 500, 600, 17)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scatter.Len() == 0 {
		t.Fatal("no stashers recorded")
	}
	if math.Abs(res.TimeHostCorrelation) > 0.15 {
		t.Fatalf("time-host correlation %v; replicas are traceable", res.TimeHostCorrelation)
	}
	if res.MeanStashers <= 0 {
		t.Fatal("no stashers on average")
	}
}

// TestLiveness: a responsible process eventually becomes non-responsible
// (γ > 0), per the §4.1 Liveness property.
func TestLiveness(t *testing.T) {
	p := Params{B: 2, Gamma: 0.1, Alpha: 0.001}
	proto, err := NewFigure1Protocol(p)
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.New(sim.Config{
		N:        100,
		Protocol: proto,
		Initial:  map[ode.Var]int{Receptive: 0, Stash: 100, Averse: 0},
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Process 0 starts as a stasher; within ~1/γ·10 periods it must have
	// recovered at least once.
	recovered := false
	for t2 := 0; t2 < 300 && !recovered; t2++ {
		e.Step()
		if e.StateOf(0) != Stash {
			recovered = true
		}
	}
	if !recovered {
		t.Fatal("stasher never turned averse; Liveness violated")
	}
}

func TestRunMassiveFailureValidation(t *testing.T) {
	if _, err := RunMassiveFailure(MassiveFailureConfig{
		N: 100, Params: Params{B: 2, Gamma: 0.1, Alpha: 0.001},
		FailFrac: 1.5, Periods: 10,
	}); err == nil {
		t.Fatal("bad fail fraction accepted")
	}
}

// TestHeterogeneousMatchesMassiveFailure validates the §5.1 remark: a
// system where half the hosts are chronically averse behaves like a system
// that lost half its hosts — both halve the effective contact rate, so
// the surviving/active stash populations should match.
func TestHeterogeneousMatchesMassiveFailure(t *testing.T) {
	const n = 20000
	p := Params{B: 2, Gamma: 0.1, Alpha: 0.01}

	het, err := RunHeterogeneous(n, p, 0.5, 1200, 600, 31)
	if err != nil {
		t.Fatal(err)
	}
	if het.MeanStash <= 0 {
		t.Fatal("stash extinct with 50% chronically averse hosts")
	}

	mf, err := RunMassiveFailure(MassiveFailureConfig{
		N: n, Params: p,
		FailAt: 200, FailFrac: 0.5,
		Periods: 2000, RecordFrom: 1400, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	var mfStash float64
	for _, s := range mf.Stash {
		mfStash += s
	}
	mfStash /= float64(len(mf.Stash))

	if math.Abs(het.MeanStash-mfStash) > 0.35*mfStash {
		t.Fatalf("heterogeneous stash %v vs post-failure stash %v; §5.1 says these regimes match",
			het.MeanStash, mfStash)
	}
}

func TestRunHeterogeneousValidation(t *testing.T) {
	if _, err := RunHeterogeneous(100, Params{B: 2, Gamma: 0.1, Alpha: 0.01}, 1.0, 1, 1, 1); err == nil {
		t.Fatal("frozen fraction 1.0 accepted")
	}
}

// TestFrozenHostsNeverAct: pinned processes hold their state forever.
func TestFrozenHostsNeverAct(t *testing.T) {
	proto, err := NewFigure1Protocol(Params{B: 2, Gamma: 0.9, Alpha: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.New(sim.Config{
		N:        200,
		Protocol: proto,
		Initial:  map[ode.Var]int{Receptive: 100, Stash: 100, Averse: 0},
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Freeze one stasher and one receptive.
	stasher := e.ProcessesIn(Stash)[0]
	receptive := e.ProcessesIn(Receptive)[0]
	e.Freeze(stasher)
	e.Freeze(receptive)
	e.Run(100)
	if e.StateOf(stasher) != Stash {
		t.Fatalf("frozen stasher moved to %s", e.StateOf(stasher))
	}
	if e.StateOf(receptive) != Receptive {
		t.Fatalf("frozen receptive moved to %s (push must not convert frozen hosts)", e.StateOf(receptive))
	}
	e.Unfreeze(stasher)
	if e.Frozen(stasher) {
		t.Fatal("unfreeze failed")
	}
}
