package endemic

import (
	"fmt"
	"sort"

	"odeproto/internal/mt19937"
	"odeproto/internal/ode"
	"odeproto/internal/sim"
)

// Store is a persistent distributed file store in the style the paper
// sketches for its "eternity storage service" application (§4.1): the
// group of N hosts runs one independent endemic-replication protocol
// instance per object ("each file has a responsibility migration protocol
// running on its behalf"), so each object's replica set migrates on its
// own schedule while host failures affect all objects at a host at once.
//
// Store is not safe for concurrent use.
type Store struct {
	n      int
	params Params
	rng    *mt19937.MT19937

	objects map[string]*objectState
	down    map[int]bool
}

type objectState struct {
	engine    *sim.Engine
	transfers int // receptive→stash since insertion
	deletions int // stash→averse since insertion
}

// NewStore creates a store over n hosts with the given protocol
// parameters.
func NewStore(n int, p Params, seed int64) (*Store, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if n < 2 {
		return nil, fmt.Errorf("endemic: store needs at least 2 hosts")
	}
	return &Store{
		n:       n,
		params:  p,
		rng:     mt19937.New(seed),
		objects: make(map[string]*objectState),
		down:    make(map[int]bool),
	}, nil
}

// Insert adds an object with the given initial replica count and starts
// its migration protocol. Replicas spread out within a few protocol
// periods regardless of their initial placement.
func (s *Store) Insert(name string, replicas int) error {
	if _, dup := s.objects[name]; dup {
		return fmt.Errorf("endemic: object %q already stored", name)
	}
	if replicas < 1 || replicas >= s.n {
		return fmt.Errorf("endemic: replica count %d outside [1, N)", replicas)
	}
	proto, err := NewFigure1Protocol(s.params)
	if err != nil {
		return err
	}
	obj := &objectState{}
	engine, err := sim.New(sim.Config{
		N:        s.n,
		Protocol: proto,
		Initial: map[ode.Var]int{
			Receptive: s.n - replicas,
			Stash:     replicas,
			Averse:    0,
		},
		Seed: int64(s.rng.Uint64() >> 1),
		OnTransition: func(proc int, from, to ode.Var, period int) {
			switch {
			case to == Stash:
				obj.transfers++
			case from == Stash:
				obj.deletions++
			}
		},
	})
	if err != nil {
		return err
	}
	// Propagate existing host failures to the new object's protocol.
	for h := range s.down {
		engine.Kill(h)
	}
	obj.engine = engine
	s.objects[name] = obj
	return nil
}

// Delete removes an object and stops its protocol.
func (s *Store) Delete(name string) {
	delete(s.objects, name)
}

// Objects returns the stored object names, sorted.
func (s *Store) Objects() []string {
	out := make([]string, 0, len(s.objects))
	for name := range s.objects {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Tick advances every object's protocol by one period.
func (s *Store) Tick() {
	for _, obj := range s.objects {
		obj.engine.Step()
	}
}

// Run advances all protocols by the given number of periods.
func (s *Store) Run(periods int) {
	for i := 0; i < periods; i++ {
		s.Tick()
	}
}

// Holders returns the hosts currently storing a replica of the object
// (its stashers). The second result is false for unknown objects.
func (s *Store) Holders(name string) ([]int, bool) {
	obj, ok := s.objects[name]
	if !ok {
		return nil, false
	}
	return obj.engine.ProcessesIn(Stash), true
}

// Replicas returns the current replica count of the object (0 for unknown
// objects — indistinguishable from a lost object, as the paper's Safety
// discussion requires).
func (s *Store) Replicas(name string) int {
	obj, ok := s.objects[name]
	if !ok {
		return 0
	}
	return obj.engine.Count(Stash)
}

// Transfers returns the total number of replica transfers for the object
// since insertion.
func (s *Store) Transfers(name string) int {
	obj, ok := s.objects[name]
	if !ok {
		return 0
	}
	return obj.transfers
}

// HostLoad returns the number of objects currently stored at the host —
// the quantity whose flatness across hosts is the §4.1 Fairness property.
func (s *Store) HostLoad(host int) int {
	load := 0
	for _, obj := range s.objects {
		if obj.engine.StateOf(host) == Stash {
			load++
		}
	}
	return load
}

// KillHost crash-stops a host for every object's protocol (all replicas
// at the host are lost at once).
func (s *Store) KillHost(host int) {
	if s.down[host] {
		return
	}
	s.down[host] = true
	for _, obj := range s.objects {
		obj.engine.Kill(host)
	}
}

// ReviveHost restarts a host; it rejoins receptive towards every object
// (the paper's worst-case churn model: no startup transfers).
func (s *Store) ReviveHost(host int) error {
	if !s.down[host] {
		return fmt.Errorf("endemic: host %d is not down", host)
	}
	delete(s.down, host)
	for _, obj := range s.objects {
		if err := obj.engine.Revive(host, Receptive); err != nil {
			return err
		}
	}
	return nil
}

// AliveHosts returns the number of hosts currently up.
func (s *Store) AliveHosts() int { return s.n - len(s.down) }

// Lost returns the names of objects whose replica count has reached zero
// (Safety violations, possible only probabilistically).
func (s *Store) Lost() []string {
	var out []string
	for name, obj := range s.objects {
		if obj.engine.Count(Stash) == 0 {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
