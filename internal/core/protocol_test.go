package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"odeproto/internal/ode"
	"odeproto/internal/rewrite"
)

func mustParse(t *testing.T, src string, params map[string]float64) *ode.System {
	t.Helper()
	s, err := ode.Parse(src, params)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func epidemic(t *testing.T) *ode.System {
	return mustParse(t, "x' = -x*y\ny' = x*y", nil)
}

func endemic(t *testing.T, beta, gamma, alpha float64) *ode.System {
	return mustParse(t, `
x' = -beta*x*y + alpha*z
y' = beta*x*y - gamma*y
z' = gamma*y - alpha*z
`, map[string]float64{"beta": beta, "gamma": gamma, "alpha": alpha})
}

func lv(t *testing.T) *ode.System {
	return mustParse(t, `
x' = 3*x*z - 3*x*y
y' = 3*y*z - 3*x*y
z' = -3*x*z - 3*y*z + 3*x*y + 3*x*y
`, nil)
}

// randomSimplexPoint returns uniform fractions over the given variables.
func randomSimplexPoint(rng *rand.Rand, vars []ode.Var) map[ode.Var]float64 {
	cuts := make([]float64, len(vars)-1)
	for i := range cuts {
		cuts[i] = rng.Float64()
	}
	point := make(map[ode.Var]float64, len(vars))
	remaining := 1.0
	for i, v := range vars {
		if i == len(vars)-1 {
			point[v] = remaining
			break
		}
		share := remaining * cuts[i]
		point[v] = share
		remaining -= share
	}
	return point
}

func TestTranslateEpidemicIsCanonicalPull(t *testing.T) {
	proto, err := Translate(epidemic(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := proto.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(proto.Actions) != 1 {
		t.Fatalf("epidemic should compile to one action, got %d: %v", len(proto.Actions), proto.Actions)
	}
	a := proto.Actions[0]
	if a.Kind != Sample || a.Owner != "x" || a.To != "y" {
		t.Fatalf("unexpected action %v", a)
	}
	if len(a.Samples) != 1 || a.Samples[0] != "y" {
		t.Fatalf("canonical pull should sample one infective, got %v", a.Samples)
	}
	// c = 1 so the auto p is 1 and the coin is certain — exactly the
	// canonical epidemic pull of §1.
	if proto.P != 1 || a.Coin != 1 {
		t.Fatalf("p = %v coin = %v, want 1 and 1", proto.P, a.Coin)
	}
}

func TestTranslateEndemicActions(t *testing.T) {
	proto, err := Translate(endemic(t, 4, 1.0, 0.01), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := proto.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(proto.Actions) != 3 {
		t.Fatalf("endemic should compile to 3 actions, got %v", proto.Actions)
	}
	// Largest coefficient is β = 4 so p = 1/4.
	if math.Abs(proto.P-0.25) > 1e-12 {
		t.Fatalf("p = %v, want 0.25", proto.P)
	}
	byOwner := make(map[ode.Var]Action)
	for _, a := range proto.Actions {
		byOwner[a.Owner] = a
	}
	// x (receptive): one-time-sampling of a stasher, coin p·β = 1.
	ax := byOwner["x"]
	if ax.Kind != Sample || ax.To != "y" || len(ax.Samples) != 1 || ax.Samples[0] != "y" {
		t.Fatalf("receptive action = %v", ax)
	}
	if math.Abs(ax.Coin-1.0) > 1e-12 {
		t.Fatalf("receptive coin = %v, want 1", ax.Coin)
	}
	// y (stash): flipping with coin p·γ.
	ay := byOwner["y"]
	if ay.Kind != Flip || ay.To != "z" || math.Abs(ay.Coin-0.25) > 1e-12 {
		t.Fatalf("stash action = %v", ay)
	}
	// z (averse): flipping with coin p·α.
	az := byOwner["z"]
	if az.Kind != Flip || az.To != "x" || math.Abs(az.Coin-0.0025) > 1e-12 {
		t.Fatalf("averse action = %v", az)
	}
}

// TestTranslateLVMatchesFigure3 checks that translating equations (7)
// yields exactly the four one-time-sampling actions of Figure 3 with coin
// probability 3p.
func TestTranslateLVMatchesFigure3(t *testing.T) {
	const p = 0.01
	proto, err := Translate(lv(t), Options{P: p})
	if err != nil {
		t.Fatal(err)
	}
	if err := proto.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(proto.Actions) != 4 {
		t.Fatalf("LV should compile to 4 actions, got %v", proto.Actions)
	}
	type sig struct {
		owner, sampled, to ode.Var
	}
	want := map[sig]bool{
		{"x", "y", "z"}: true, // x samples; target in y → z
		{"y", "x", "z"}: true, // y samples; target in x → z
		{"z", "x", "x"}: true, // z samples; target in x → x
		{"z", "y", "y"}: true, // z samples; target in y → y
	}
	for _, a := range proto.Actions {
		if a.Kind != Sample || len(a.Samples) != 1 {
			t.Fatalf("LV action should be single-sample: %v", a)
		}
		if math.Abs(a.Coin-3*p) > 1e-12 {
			t.Fatalf("LV coin = %v, want 3p = %v", a.Coin, 3*p)
		}
		s := sig{a.Owner, a.Samples[0], a.To}
		if !want[s] {
			t.Fatalf("unexpected LV action %v", a)
		}
		delete(want, s)
	}
	if len(want) != 0 {
		t.Fatalf("missing LV actions: %v", want)
	}
}

// TestTheorem1Equivalence is the mechanical check of Theorem 1: the
// expected per-period drift of the generated protocol equals p·f̄(X̄) at
// every point of the simplex.
func TestTheorem1Equivalence(t *testing.T) {
	systems := map[string]*ode.System{
		"epidemic": epidemic(t),
		"endemic":  endemic(t, 4, 1.0, 0.01),
		"lv":       lv(t),
	}
	rng := rand.New(rand.NewSource(42))
	for name, sys := range systems {
		proto, err := Translate(sys, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for trial := 0; trial < 300; trial++ {
			point := randomSimplexPoint(rng, sys.Vars())
			drift := proto.ExpectedFlow(point)
			rhs := sys.Eval(point)
			rhsPoint := sys.PointFromVec(rhs)
			for _, v := range sys.Vars() {
				want := proto.P * rhsPoint[v]
				if math.Abs(drift[v]-want) > 1e-12 {
					t.Fatalf("%s: drift[%s] = %v, want p·f = %v at %v", name, v, drift[v], want, point)
				}
			}
		}
	}
}

// TestTheorem5TokenizingEquivalence verifies the mean-field equivalence for
// a system requiring Tokenizing: x' = −y², y' = +y².
func TestTheorem5TokenizingEquivalence(t *testing.T) {
	sys := mustParse(t, "x' = -y^2\ny' = y^2", nil)
	if sys.IsRestrictedPolynomial() {
		t.Fatal("test premise broken: system should not be restricted")
	}
	proto, err := Translate(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(proto.Actions) != 1 {
		t.Fatalf("want one token action, got %v", proto.Actions)
	}
	a := proto.Actions[0]
	if a.Kind != Token || a.Owner != "y" || a.From != "x" || a.To != "y" {
		t.Fatalf("token action = %v", a)
	}
	// Witness y with exponent 2 samples (2−1) = 1 other process in y.
	if len(a.Samples) != 1 || a.Samples[0] != "y" {
		t.Fatalf("token samples = %v", a.Samples)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		point := randomSimplexPoint(rng, sys.Vars())
		drift := proto.ExpectedFlow(point)
		want := proto.P * point["y"] * point["y"]
		if math.Abs(drift["y"]-want) > 1e-12 || math.Abs(drift["x"]+want) > 1e-12 {
			t.Fatalf("token drift = %v, want ±%v", drift, want)
		}
	}
}

func TestTranslateConstantTermNeedsRewrite(t *testing.T) {
	sys := ode.NewSystem()
	sys.MustAddEquation("x", ode.NewTerm(-0.1, nil))
	sys.MustAddEquation("y", ode.NewTerm(0.1, nil))
	if _, err := Translate(sys, Options{}); err == nil {
		t.Fatal("expected error for constant term")
	}
	// After expanding constants the system translates (one flip + one token).
	expanded := rewrite.ExpandConstants(sys)
	proto, err := Translate(expanded, Options{})
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[ActionKind]int{}
	for _, a := range proto.Actions {
		kinds[a.Kind]++
	}
	if kinds[Flip] != 1 || kinds[Token] != 1 {
		t.Fatalf("expected one flip and one token, got %v", proto.Actions)
	}
	// Mean-field drift still matches the expanded equations.
	point := map[ode.Var]float64{"x": 0.4, "y": 0.6}
	drift := proto.ExpectedFlow(point)
	want := proto.P * 0.1 // p·c·(x+y) = p·c on the simplex
	if math.Abs(drift["y"]-want) > 1e-12 {
		t.Fatalf("drift = %v, want %v", drift, want)
	}
}

func TestTranslateRejectsIncomplete(t *testing.T) {
	sys := mustParse(t, "x' = -x\ny' = 0.5*x", nil)
	if _, err := Translate(sys, Options{}); err == nil {
		t.Fatal("expected completeness error")
	}
}

func TestTranslateRejectsUnpairable(t *testing.T) {
	sys := ode.NewSystem()
	sys.MustAddEquation("x", ode.NewTerm(-2, map[ode.Var]int{"x": 1, "y": 1}))
	sys.MustAddEquation("y",
		ode.NewTerm(1, map[ode.Var]int{"x": 1, "y": 1}),
		ode.NewTerm(1, map[ode.Var]int{"x": 1, "y": 1}))
	if _, err := Translate(sys, Options{}); err == nil {
		t.Fatal("expected partitionability error")
	}
}

func TestTranslateRejectsBadFailureRate(t *testing.T) {
	for _, f := range []float64{-0.1, 1.0, 1.5} {
		if _, err := Translate(epidemic(t), Options{FailureRate: f}); err == nil {
			t.Fatalf("expected error for failure rate %v", f)
		}
	}
}

// TestFailureCompensation verifies §3 "The Effect of Failures": with
// failure rate f, sampling coins scale by (1/(1−f))^(|T|−1) so that the
// protocol on the lossy network still models the original equations.
func TestFailureCompensation(t *testing.T) {
	const f = 0.5
	proto, err := Translate(endemic(t, 4, 1.0, 0.01), Options{FailureRate: f})
	if err != nil {
		t.Fatal(err)
	}
	var sample, flip Action
	for _, a := range proto.Actions {
		switch a.Kind {
		case Sample:
			sample = a
		case Flip:
			if a.Owner == "y" {
				flip = a
			}
		}
	}
	// βxy has |T| = 2, so its coin is p·β·(1/(1−f)) = p·8; the auto p must
	// shrink to 1/8 to keep it ≤ 1.
	if math.Abs(proto.P-0.125) > 1e-12 {
		t.Fatalf("p = %v, want 0.125", proto.P)
	}
	if math.Abs(sample.Coin-1.0) > 1e-12 {
		t.Fatalf("sample coin = %v, want 1", sample.Coin)
	}
	// Flipping terms have |T| = 1: no compensation, coin = p·γ.
	if math.Abs(flip.Coin-0.125) > 1e-12 {
		t.Fatalf("flip coin = %v, want p·γ = 0.125", flip.Coin)
	}
}

// TestEffectiveDriftUnderFailures simulates the mean-field effect of
// message loss: each sampled target is independently lost with probability
// f, which multiplies a degree-d sampling action's fire probability by
// (1−f)^(d−1)·comp = 1 when compensated.
func TestEffectiveDriftUnderFailures(t *testing.T) {
	const f = 0.25
	sys := epidemic(t)
	proto, err := Translate(sys, Options{FailureRate: f})
	if err != nil {
		t.Fatal(err)
	}
	a := proto.Actions[0]
	// Lossy fire probability: coin · Π (1−f)·frac — every sample must
	// survive the connection attempt.
	point := map[ode.Var]float64{"x": 0.5, "y": 0.5}
	lossy := a.Coin * (1 - f) * point["y"]
	want := proto.P * point["x"] * point["y"] / point["x"]
	if math.Abs(lossy-want) > 1e-12 {
		t.Fatalf("lossy fire probability %v, want %v (compensation failed)", lossy, want)
	}
}

func TestAutoPKeepsCoinsValid(t *testing.T) {
	f := func(c1, c2 uint8) bool {
		a := float64(c1%50) + 1
		b := float64(c2%50) + 1
		sys := ode.NewSystem()
		sys.MustAddEquation("x",
			ode.NewTerm(-a, map[ode.Var]int{"x": 1, "y": 1}),
			ode.NewTerm(b, map[ode.Var]int{"y": 1}))
		sys.MustAddEquation("y",
			ode.NewTerm(a, map[ode.Var]int{"x": 1, "y": 1}),
			ode.NewTerm(-b, map[ode.Var]int{"y": 1}))
		proto, err := Translate(sys, Options{})
		if err != nil {
			return false
		}
		for _, act := range proto.Actions {
			if act.Coin < 0 || act.Coin > 1 {
				return false
			}
		}
		return proto.P > 0 && proto.P <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestExplicitPTooLarge(t *testing.T) {
	// β = 4 with p = 0.5 gives coin 2 > 1: must be rejected.
	if _, err := Translate(endemic(t, 4, 1, 0.01), Options{P: 0.5}); err == nil {
		t.Fatal("expected coin-overflow error")
	}
}

func TestSamplingMessages(t *testing.T) {
	proto, err := Translate(lv(t), Options{P: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	// §3: messages = Σ occurrences − #negative terms. For LV state z:
	// terms −3xz and −3yz each sample 1 target → 2 messages.
	if got := proto.SamplingMessages("z"); got != 2 {
		t.Fatalf("z messages = %d, want 2", got)
	}
	if got := proto.SamplingMessages("x"); got != 1 {
		t.Fatalf("x messages = %d, want 1", got)
	}
}

func TestEffectiveSystemScaling(t *testing.T) {
	sys := endemic(t, 4, 1, 0.01)
	proto, err := Translate(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	eff := proto.EffectiveSystem()
	point := map[ode.Var]float64{"x": 0.2, "y": 0.5, "z": 0.3}
	orig := sys.Eval(point)
	scaled := eff.Eval(point)
	for i := range orig {
		if math.Abs(scaled[i]-proto.P*orig[i]) > 1e-12 {
			t.Fatalf("effective system mis-scaled: %v vs p·%v", scaled, orig)
		}
	}
}

func TestValidateCatchesBrokenProtocols(t *testing.T) {
	base := &Protocol{States: []ode.Var{"a", "b"}, P: 0.5}
	cases := []struct {
		name  string
		proto Protocol
	}{
		{"dup state", Protocol{States: []ode.Var{"a", "a"}, P: 0.5}},
		{"bad p", Protocol{States: []ode.Var{"a"}, P: 0}},
		{"bad coin", Protocol{States: base.States, P: 0.5, Actions: []Action{{Kind: Flip, Owner: "a", From: "a", To: "b", Coin: 2}}}},
		{"unknown state", Protocol{States: base.States, P: 0.5, Actions: []Action{{Kind: Flip, Owner: "q", From: "q", To: "b", Coin: 0.1}}}},
		{"flip with samples", Protocol{States: base.States, P: 0.5, Actions: []Action{{Kind: Flip, Owner: "a", From: "a", To: "b", Coin: 0.1, Samples: []ode.Var{"b"}}}}},
		{"sample without samples", Protocol{States: base.States, P: 0.5, Actions: []Action{{Kind: Sample, Owner: "a", From: "a", To: "b", Coin: 0.1}}}},
		{"self loop", Protocol{States: base.States, P: 0.5, Actions: []Action{{Kind: Flip, Owner: "a", From: "a", To: "a", Coin: 0.1}}}},
		{"mixed sample-any", Protocol{States: base.States, P: 0.5, Actions: []Action{{Kind: SampleAny, Owner: "a", From: "a", To: "b", Coin: 0.1, Samples: []ode.Var{"a", "b"}}}}},
	}
	for _, tc := range cases {
		if err := tc.proto.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestFireProbabilityVariants(t *testing.T) {
	point := map[ode.Var]float64{"x": 0.3, "y": 0.2, "z": 0.5}
	flip := Action{Kind: Flip, Coin: 0.4}
	if got := flip.FireProbability(point); got != 0.4 {
		t.Fatalf("flip = %v", got)
	}
	sample := Action{Kind: Sample, Coin: 0.5, Samples: []ode.Var{"y", "y"}}
	if got := sample.FireProbability(point); math.Abs(got-0.5*0.04) > 1e-12 {
		t.Fatalf("sample = %v, want 0.02", got)
	}
	any := Action{Kind: SampleAny, Coin: 1, Samples: []ode.Var{"y", "y", "y"}}
	want := 1 - math.Pow(0.8, 3)
	if got := any.FireProbability(point); math.Abs(got-want) > 1e-12 {
		t.Fatalf("sample-any = %v, want %v", got, want)
	}
	push := Action{Kind: Push, Coin: 1, From: "x", Samples: []ode.Var{"x", "x"}}
	if got := push.FireProbability(point); math.Abs(got-2*0.3) > 1e-12 {
		t.Fatalf("push = %v, want 0.6", got)
	}
}

func TestProtocolString(t *testing.T) {
	proto, err := Translate(endemic(t, 4, 1, 0.01), Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := proto.String()
	for _, want := range []string{"state x", "state y", "state z", "flip", "sample"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestActionsFor(t *testing.T) {
	proto, err := Translate(lv(t), Options{P: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(proto.ActionsFor("z")); got != 2 {
		t.Fatalf("z owns %d actions, want 2", got)
	}
	if got := len(proto.ActionsFor("x")); got != 1 {
		t.Fatalf("x owns %d actions, want 1", got)
	}
}

// TestExpectedFlowConservation: drift sums to zero (population conserved)
// for any protocol, at any point — including variant action kinds.
func TestExpectedFlowConservation(t *testing.T) {
	proto, err := Translate(endemic(t, 4, 1, 0.01), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Add a variant push action like endemic Figure 1 action (iv).
	proto.Actions = append(proto.Actions, Action{
		Kind: Push, Owner: "y", From: "x", To: "y", Coin: 1,
		Samples: []ode.Var{"x", "x"},
	})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		point := randomSimplexPoint(rng, proto.States)
		drift := proto.ExpectedFlow(point)
		var sum float64
		for _, d := range drift {
			sum += d
		}
		if math.Abs(sum) > 1e-12 {
			t.Fatalf("drift does not conserve population: %v", drift)
		}
	}
}

// TestTranslateDeterministic: two translations of the same system produce
// identical action lists.
func TestTranslateDeterministic(t *testing.T) {
	a, err := Translate(lv(t), Options{P: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Translate(lv(t), Options{P: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("nondeterministic translation:\n%s\nvs\n%s", a, b)
	}
}

// TestTokenStringWithEmptySamples covers the coin-only token rendering
// (constant-term tokenizing after ExpandConstants).
func TestTokenStringWithEmptySamples(t *testing.T) {
	a := Action{Kind: Token, Owner: "w", From: "a", To: "w", Coin: 0.05}
	s := a.String()
	if !strings.Contains(s, "token") || strings.Contains(s, "sample 0") {
		t.Fatalf("token rendering = %q", s)
	}
}

// TestTranslatePreservesStateOrder: protocol states follow the source
// system's insertion order, so engines lay populations out predictably.
func TestTranslatePreservesStateOrder(t *testing.T) {
	sys := mustParse(t, "b' = -b*a\na' = b*a", nil)
	proto, err := Translate(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if proto.States[0] != "b" || proto.States[1] != "a" {
		t.Fatalf("states = %v, want source order [b a]", proto.States)
	}
}

// TestSelfLoopPairsProduceNoAction: zero-sum pairs within one equation
// carry no net flow and must be dropped silently.
func TestSelfLoopPairsProduceNoAction(t *testing.T) {
	sys := ode.NewSystem()
	sys.MustAddEquation("x",
		ode.NewTerm(-1, map[ode.Var]int{"x": 1, "y": 1}),
		ode.NewTerm(1, map[ode.Var]int{"x": 1, "y": 1}),
		ode.NewTerm(-0.5, map[ode.Var]int{"x": 1}))
	sys.MustAddEquation("y", ode.NewTerm(0.5, map[ode.Var]int{"x": 1}))
	proto, err := Translate(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(proto.Actions) != 1 {
		t.Fatalf("self-loop pair leaked into actions: %v", proto.Actions)
	}
	if proto.Actions[0].Kind != Flip {
		t.Fatalf("surviving action should be the flip: %v", proto.Actions[0])
	}
}
