// Package core implements the paper's primary contribution: the framework
// that translates systems of differential equations into distributed
// protocols (§3 and §6).
//
// A mappable equation system (polynomial and completely partitionable, §2)
// is compiled into a Protocol: a probabilistic state machine with one state
// per variable and one periodic action per zero-sum term pair. The three
// mapping techniques of the paper are implemented:
//
//   - Flipping for terms −c·x: a biased local coin with heads probability
//     p·c, flipped once per protocol period.
//   - One-Time-Sampling for terms −c·x^i·Π y^j with i ≥ 1: sample
//     (i−1) + Σj processes uniformly at random, require their states to
//     match the term's variables in lexicographic order, and flip a coin
//     with heads probability p·c.
//   - Tokenizing for negative terms that do not contain the equation's own
//     variable (§6): a process in a chosen witness state runs the sampling
//     action and, on success, emits a token that moves some process in the
//     term's home state.
//
// The package also defines two variant action kinds, SampleAny and Push,
// used by the paper's Figure-1 endemic protocol (the errata notes Figure 1
// is "a variant of that obtained through the methodology"); they are not
// produced by Translate but execute on the same engines and participate in
// the same mean-field analysis.
//
// ExpectedFlow computes the exact expected per-period population drift of a
// protocol, which is how the Theorem 1/5 equivalence (protocol ≡ p·f̄(X̄)
// in infinite groups) is verified mechanically throughout the repository.
package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"odeproto/internal/ode"
)

// ActionKind enumerates the kinds of periodic actions a protocol state can
// own.
type ActionKind int

const (
	// Flip is the paper's Flipping technique: a local biased coin, no
	// communication.
	Flip ActionKind = iota + 1
	// Sample is the paper's One-Time-Sampling technique: sample the
	// required sequence of states, then flip the coin.
	Sample
	// Token is the paper's Tokenizing technique (§6): the owner runs a
	// sampling action and on success emits a token that transitions some
	// process in state From.
	Token
	// SampleAny is a variant kind (endemic Figure 1, action (iii)): the
	// owner samples len(Samples) targets and fires if ANY of them is in
	// the state Samples[0]. All entries of Samples are identical.
	SampleAny
	// Push is a variant kind (endemic Figure 1, action (iv)): the owner
	// samples len(Samples) targets, and every sampled target currently in
	// state From transitions to To (the owner itself does not move).
	Push
)

// String returns the technique name.
func (k ActionKind) String() string {
	switch k {
	case Flip:
		return "flip"
	case Sample:
		return "sample"
	case Token:
		return "token"
	case SampleAny:
		return "sample-any"
	case Push:
		return "push"
	default:
		return fmt.Sprintf("ActionKind(%d)", int(k))
	}
}

// Action is one periodic probabilistic action. Every process in state Owner
// executes the action once at the beginning of every protocol period.
type Action struct {
	// Kind selects the technique.
	Kind ActionKind
	// Owner is the state whose occupants execute the action.
	Owner ode.Var
	// Coin is the heads probability of the local biased coin. For
	// framework-generated actions it equals p·c_T, scaled by the §3
	// failure-compensation factor when a failure rate is configured.
	Coin float64
	// Samples lists the states the sampled targets must occupy, in order
	// (lexicographic per §3.1). Empty for Flip.
	Samples []ode.Var
	// From is the state a process leaves when the action fires. It equals
	// Owner except for Token (the token's target state) and Push (the
	// pushed targets' state).
	From ode.Var
	// To is the destination state.
	To ode.Var
	// TermCoef is the source term's constant c_T (0 for hand-built
	// variant actions with no source term).
	TermCoef float64
}

// FireProbability returns the probability that one execution of the action
// fires, in an infinite group whose state occupancy fractions are given by
// point. For Push it returns the expected number of converted targets
// instead (which may exceed 1).
func (a Action) FireProbability(point map[ode.Var]float64) float64 {
	switch a.Kind {
	case Flip:
		return a.Coin
	case Sample, Token:
		p := a.Coin
		for _, s := range a.Samples {
			p *= point[s]
		}
		return p
	case SampleAny:
		if len(a.Samples) == 0 {
			return 0
		}
		miss := 1.0
		for _, s := range a.Samples {
			miss *= 1 - point[s]
		}
		return a.Coin * (1 - miss)
	case Push:
		return a.Coin * float64(len(a.Samples)) * point[a.From]
	default:
		panic(fmt.Sprintf("core: unknown action kind %v", a.Kind))
	}
}

// String renders the action in the style of the paper's Figure 3 captions.
func (a Action) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "state %s: ", a.Owner)
	switch a.Kind {
	case Flip:
		fmt.Fprintf(&sb, "flip coin(%.6g); on heads move %s->%s", a.Coin, a.From, a.To)
	case Sample:
		fmt.Fprintf(&sb, "sample %d target(s) requiring states %v and flip coin(%.6g); on success move %s->%s",
			len(a.Samples), a.Samples, a.Coin, a.From, a.To)
	case Token:
		if len(a.Samples) == 0 {
			fmt.Fprintf(&sb, "flip coin(%.6g); on heads send token moving some process %s->%s",
				a.Coin, a.From, a.To)
		} else {
			fmt.Fprintf(&sb, "sample %d target(s) requiring states %v and flip coin(%.6g); on success send token moving some process %s->%s",
				len(a.Samples), a.Samples, a.Coin, a.From, a.To)
		}
	case SampleAny:
		fmt.Fprintf(&sb, "sample %d target(s); if any is in state %s (coin %.6g) move %s->%s",
			len(a.Samples), a.Samples[0], a.Coin, a.From, a.To)
	case Push:
		fmt.Fprintf(&sb, "sample %d target(s); each target in state %s moves to %s (coin %.6g)",
			len(a.Samples), a.From, a.To, a.Coin)
	}
	return sb.String()
}

// Protocol is a compiled probabilistic protocol state machine.
type Protocol struct {
	// States are the machine's states, one per source variable, in the
	// source system's insertion order.
	States []ode.Var
	// Actions are the periodic actions, grouped by owner in state order.
	Actions []Action
	// P is the normalizing constant p (§3.1): one protocol period advances
	// the source equations by p time units, so smaller p means slower but
	// always-valid (coin ≤ 1) execution.
	P float64
	// FailureRate is the per-connection failure probability f compensated
	// for via the §3 multiplicative factor, or 0.
	FailureRate float64
	// Source is the equation system the protocol was generated from (nil
	// for hand-built protocols).
	Source *ode.System
}

// Options configure Translate.
type Options struct {
	// P fixes the normalizing constant. Zero selects the largest p ≤ 1
	// such that every action's coin probability is at most one.
	P float64
	// FailureRate is the group-wide failure rate f per connection attempt.
	// When non-zero, every sampling action's coin is scaled by
	// (1/(1−f))^(|T|−1) per §3 "The Effect of Failures", and the
	// auto-selected p shrinks accordingly.
	FailureRate float64
}

// Translate compiles a polynomial, completely partitionable equation system
// into a distributed protocol (Theorem 1 and, when Tokenizing is needed,
// Theorem 5 as corrected by the errata). It returns an error when the
// system is outside the mappable class; use the rewrite package to bring
// systems into mappable form first.
func Translate(sys *ode.System, opts Options) (*Protocol, error) {
	if err := sys.Validate(); err != nil {
		return nil, fmt.Errorf("core: system is not polynomial: %w", err)
	}
	if !sys.IsComplete() {
		return nil, fmt.Errorf("core: system is not complete (defect %v); apply rewrite.Complete", sys.CompletenessDefect())
	}
	pairs, err := sys.Partition()
	if err != nil {
		return nil, fmt.Errorf("core: system is not completely partitionable: %w", err)
	}
	if opts.FailureRate < 0 || opts.FailureRate >= 1 {
		return nil, fmt.Errorf("core: failure rate %v outside [0,1)", opts.FailureRate)
	}

	type draft struct {
		action Action
		comp   float64 // failure compensation factor for this action's term
	}
	var drafts []draft
	for _, pair := range pairs {
		x := pair.Neg.Var
		y := pair.Pos.Var
		if x == y {
			// A zero-sum pair inside one equation carries no net flow; it
			// induces no action.
			continue
		}
		t := pair.Neg.Term(sys)
		comp := 1.0
		if opts.FailureRate > 0 && t.Degree() > 1 {
			comp = math.Pow(1/(1-opts.FailureRate), float64(t.Degree()-1))
		}
		a := Action{
			Owner:    x,
			From:     x,
			To:       y,
			TermCoef: t.Coef,
		}
		switch {
		case t.Exponent(x) >= 1:
			a.Samples = sampleSequence(t, x)
			if len(a.Samples) == 0 {
				a.Kind = Flip
			} else {
				a.Kind = Sample
			}
		default:
			// Tokenizing (§6): the term lacks the home variable. Pick the
			// lexicographically smallest variable present as the witness.
			w, ok := witnessVar(t)
			if !ok {
				return nil, fmt.Errorf("core: constant term %s in equation for %q; apply rewrite.ExpandConstants first", t, x)
			}
			a.Kind = Token
			a.Owner = w
			a.Samples = sampleSequence(t, w)
		}
		drafts = append(drafts, draft{action: a, comp: comp})
	}

	// Choose the normalizing constant p.
	p := opts.P
	if p == 0 {
		p = 1
		for _, d := range drafts {
			if limit := 1 / (d.action.TermCoef * d.comp); limit < p {
				p = limit
			}
		}
	}
	if p <= 0 || p > 1 {
		return nil, fmt.Errorf("core: normalizing constant p = %v outside (0,1]", p)
	}

	proto := &Protocol{
		States:      append([]ode.Var(nil), sys.Vars()...),
		P:           p,
		FailureRate: opts.FailureRate,
		Source:      sys.Clone(),
	}
	for _, d := range drafts {
		a := d.action
		a.Coin = p * a.TermCoef * d.comp
		if a.Coin > 1+1e-12 {
			return nil, fmt.Errorf("core: action %v has coin probability %v > 1; decrease Options.P", a, a.Coin)
		}
		if a.Coin > 1 {
			a.Coin = 1
		}
		proto.Actions = append(proto.Actions, a)
	}
	sortActions(proto.Actions, proto.States)
	return proto, nil
}

// sampleSequence builds the ordered list of required sampled states for a
// One-Time-Sampling action owned by owner, per §3.1: (i_owner − 1) samples
// of the owner's own state followed by i_v samples of every other variable
// in lexicographic order.
func sampleSequence(t ode.Term, owner ode.Var) []ode.Var {
	var out []ode.Var
	for i := 0; i < t.Exponent(owner)-1; i++ {
		out = append(out, owner)
	}
	for _, v := range t.OrderedVars() {
		if v == owner {
			continue
		}
		for i := 0; i < t.Exponent(v); i++ {
			out = append(out, v)
		}
	}
	return out
}

// witnessVar picks the lexicographically smallest variable with a positive
// exponent, used as the Tokenizing witness state.
func witnessVar(t ode.Term) (ode.Var, bool) {
	vars := t.OrderedVars()
	if len(vars) == 0 {
		return "", false
	}
	return vars[0], true
}

// sortActions orders actions by owner (in state order), then kind, then
// destination, for deterministic output.
func sortActions(actions []Action, states []ode.Var) {
	pos := make(map[ode.Var]int, len(states))
	for i, s := range states {
		pos[s] = i
	}
	sort.SliceStable(actions, func(i, j int) bool {
		a, b := actions[i], actions[j]
		if pos[a.Owner] != pos[b.Owner] {
			return pos[a.Owner] < pos[b.Owner]
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.To < b.To
	})
}

// ActionsFor returns the actions owned by the given state, in order.
func (p *Protocol) ActionsFor(state ode.Var) []Action {
	var out []Action
	for _, a := range p.Actions {
		if a.Owner == state {
			out = append(out, a)
		}
	}
	return out
}

// HasState reports whether the protocol contains the state.
func (p *Protocol) HasState(s ode.Var) bool {
	for _, st := range p.States {
		if st == s {
			return true
		}
	}
	return false
}

// Validate checks structural invariants of the protocol: states are
// distinct, every action references known states, and coins are
// probabilities.
func (p *Protocol) Validate() error {
	seen := make(map[ode.Var]bool, len(p.States))
	for _, s := range p.States {
		if seen[s] {
			return fmt.Errorf("core: duplicate state %q", s)
		}
		seen[s] = true
	}
	if p.P <= 0 || p.P > 1 {
		return fmt.Errorf("core: normalizing constant %v outside (0,1]", p.P)
	}
	for i, a := range p.Actions {
		if a.Coin < 0 || a.Coin > 1 {
			return fmt.Errorf("core: action %d coin %v outside [0,1]", i, a.Coin)
		}
		for _, s := range append([]ode.Var{a.Owner, a.From, a.To}, a.Samples...) {
			if !seen[s] {
				return fmt.Errorf("core: action %d references unknown state %q", i, s)
			}
		}
		switch a.Kind {
		case Flip:
			if len(a.Samples) != 0 {
				return fmt.Errorf("core: flip action %d must not sample", i)
			}
			if a.From != a.Owner {
				return fmt.Errorf("core: flip action %d must move its owner", i)
			}
		case Sample:
			if len(a.Samples) == 0 {
				return fmt.Errorf("core: sample action %d has no samples", i)
			}
			if a.From != a.Owner {
				return fmt.Errorf("core: sample action %d must move its owner", i)
			}
		case SampleAny:
			if len(a.Samples) == 0 {
				return fmt.Errorf("core: sample-any action %d has no samples", i)
			}
			for _, s := range a.Samples {
				if s != a.Samples[0] {
					return fmt.Errorf("core: sample-any action %d has mixed sample states", i)
				}
			}
		case Token, Push:
			// From may legitimately differ from Owner.
		default:
			return fmt.Errorf("core: action %d has unknown kind %v", i, a.Kind)
		}
		if a.From == a.To {
			return fmt.Errorf("core: action %d is a self-loop %q->%q", i, a.From, a.To)
		}
	}
	return nil
}

// ExpectedFlow returns the expected per-period drift of the fraction of
// processes in each state, at the given occupancy point, in an infinite
// group. For framework-generated protocols this equals p·f̄(X̄) — the
// content of Theorems 1 and 5 — and the repository's tests verify exactly
// that identity.
func (p *Protocol) ExpectedFlow(point map[ode.Var]float64) map[ode.Var]float64 {
	drift := make(map[ode.Var]float64, len(p.States))
	for _, s := range p.States {
		drift[s] = 0
	}
	for _, a := range p.Actions {
		rate := point[a.Owner] * a.FireProbability(point)
		drift[a.From] -= rate
		drift[a.To] += rate
	}
	return drift
}

// SamplingMessages returns the number of sampling messages a process in the
// given state sends per protocol period, the §3 message-complexity measure
// ("the sum of the number of occurrences of all variables in negative terms
// in fx, less the number of negative terms").
func (p *Protocol) SamplingMessages(state ode.Var) int {
	n := 0
	for _, a := range p.Actions {
		if a.Owner == state {
			n += len(a.Samples)
		}
	}
	return n
}

// TimeScale returns the factor converting protocol periods to source-
// equation time: one period advances the equations by TimeScale() time
// units.
func (p *Protocol) TimeScale() float64 { return p.P }

// EffectiveSystem returns the equation system the protocol actually
// executes per period: the source system with every term scaled by p (and,
// when a failure rate is configured, the §3 compensation restoring the
// original rates). Returns nil for hand-built protocols without a source.
func (p *Protocol) EffectiveSystem() *ode.System {
	if p.Source == nil {
		return nil
	}
	out := ode.NewSystem()
	for _, v := range p.Source.Vars() {
		eq, _ := p.Source.Equation(v)
		terms := make([]ode.Term, 0, len(eq.Terms))
		for _, t := range eq.Terms {
			nt := t.Clone()
			nt.Coef *= p.P
			terms = append(terms, nt)
		}
		out.MustAddEquation(v, terms...)
	}
	return out
}

// String renders the protocol: states, normalizing constant, and one line
// per action.
func (p *Protocol) String() string {
	var sb strings.Builder
	names := make([]string, len(p.States))
	for i, s := range p.States {
		names[i] = string(s)
	}
	fmt.Fprintf(&sb, "protocol over states {%s}, p = %.6g", strings.Join(names, ", "), p.P)
	if p.FailureRate > 0 {
		fmt.Fprintf(&sb, ", failure-compensated for f = %.3g", p.FailureRate)
	}
	sb.WriteByte('\n')
	for _, a := range p.Actions {
		sb.WriteString("  ")
		sb.WriteString(a.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
