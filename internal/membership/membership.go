// Package membership provides the group-membership substrate of the
// paper's system model: every process knows the maximal membership (the
// other N−1 processes), and a SWIM-style failure detector (Das, Gupta,
// Motivala, DSN 2002 — cited in §6) maintains liveness marks over it.
//
// §6 notes that Tokenizing needs "continuous maintenance of knowledge of
// which states other processes are in", achievable "by using a scalable
// membership protocol such as SWIM"; this package supplies the detector
// half of that machinery for the directed token routing mode, and is
// usable standalone.
package membership

import (
	"fmt"
	"math/rand"

	"odeproto/internal/mt19937"
)

// Status is a member's liveness mark.
type Status int

const (
	// Alive members respond to probes.
	Alive Status = iota + 1
	// Suspect members failed a direct and indirect probe round and are in
	// the suspicion window.
	Suspect
	// Dead members exhausted the suspicion window.
	Dead
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Prober answers liveness probes; implementations bridge the detector to a
// simulation engine or a real transport. Probe returns true when the
// target acknowledged.
type Prober interface {
	Probe(from, to int) bool
}

// ProberFunc adapts a function to the Prober interface.
type ProberFunc func(from, to int) bool

// Probe implements Prober.
func (f ProberFunc) Probe(from, to int) bool { return f(from, to) }

// Config tunes a detector.
type Config struct {
	// Self is this process's index.
	Self int
	// N is the group size (maximal membership).
	N int
	// IndirectProbes is the number of helpers asked to ping a
	// direct-probe failure (SWIM's k; default 3).
	IndirectProbes int
	// SuspicionPeriods is how many protocol periods a suspect has to
	// refute suspicion before being declared dead (default 5).
	SuspicionPeriods int
	// Seed seeds the probe-target shuffle.
	Seed int64
}

// Detector is a SWIM-style round-robin failure detector over the maximal
// membership list. It is not safe for concurrent use.
type Detector struct {
	cfg          Config
	rng          *rand.Rand
	status       []Status
	suspectSince []int
	order        []int // round-robin probe order, reshuffled per cycle
	cursor       int
	period       int
}

// New builds a detector. All members start Alive.
func New(cfg Config) (*Detector, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("membership: group size %d too small", cfg.N)
	}
	if cfg.Self < 0 || cfg.Self >= cfg.N {
		return nil, fmt.Errorf("membership: self %d outside group", cfg.Self)
	}
	if cfg.IndirectProbes <= 0 {
		cfg.IndirectProbes = 3
	}
	if cfg.SuspicionPeriods <= 0 {
		cfg.SuspicionPeriods = 5
	}
	d := &Detector{
		cfg:          cfg,
		rng:          rand.New(mt19937.New(cfg.Seed)),
		status:       make([]Status, cfg.N),
		suspectSince: make([]int, cfg.N),
	}
	for i := range d.status {
		d.status[i] = Alive
	}
	for i := 0; i < cfg.N; i++ {
		if i != cfg.Self {
			d.order = append(d.order, i)
		}
	}
	d.shuffle()
	return d, nil
}

func (d *Detector) shuffle() {
	d.rng.Shuffle(len(d.order), func(i, j int) {
		d.order[i], d.order[j] = d.order[j], d.order[i]
	})
	d.cursor = 0
}

// Status returns the current mark for a member.
func (d *Detector) Status(member int) Status { return d.status[member] }

// AliveMembers returns the indices currently marked Alive (excluding
// self).
func (d *Detector) AliveMembers() []int {
	var out []int
	for i, s := range d.status {
		if i != d.cfg.Self && s == Alive {
			out = append(out, i)
		}
	}
	return out
}

// NumAlive returns the number of members marked Alive, including self.
func (d *Detector) NumAlive() int {
	n := 1
	for i, s := range d.status {
		if i != d.cfg.Self && s == Alive {
			n++
		}
	}
	return n
}

// Tick runs one SWIM protocol period: probe the next round-robin target
// directly, fall back to IndirectProbes random helpers, then advance the
// suspicion clocks. Probes of suspect members that succeed refute the
// suspicion.
func (d *Detector) Tick(p Prober) {
	d.period++
	target := d.order[d.cursor]
	d.cursor++
	if d.cursor >= len(d.order) {
		d.shuffle()
	}
	if d.status[target] != Dead {
		d.probe(target, p)
	}
	// Advance suspicion clocks.
	for m, s := range d.status {
		if s == Suspect && d.period-d.suspectSince[m] >= d.cfg.SuspicionPeriods {
			d.status[m] = Dead
		}
	}
}

func (d *Detector) probe(target int, p Prober) {
	if p.Probe(d.cfg.Self, target) {
		d.markAlive(target)
		return
	}
	// Indirect probes through k random alive helpers.
	helpers := d.AliveMembers()
	d.rng.Shuffle(len(helpers), func(i, j int) { helpers[i], helpers[j] = helpers[j], helpers[i] })
	tried := 0
	for _, h := range helpers {
		if h == target {
			continue
		}
		if tried >= d.cfg.IndirectProbes {
			break
		}
		tried++
		// Helper pings the target on our behalf: two hops must succeed.
		if p.Probe(d.cfg.Self, h) && p.Probe(h, target) {
			d.markAlive(target)
			return
		}
	}
	if d.status[target] == Alive {
		d.status[target] = Suspect
		d.suspectSince[target] = d.period
	}
}

func (d *Detector) markAlive(m int) {
	if d.status[m] != Alive {
		d.status[m] = Alive
	}
}

// ForceAlive reinstates a member (e.g. on receiving a rejoin
// announcement).
func (d *Detector) ForceAlive(m int) { d.status[m] = Alive }

// Period returns the number of completed detector periods.
func (d *Detector) Period() int { return d.period }
