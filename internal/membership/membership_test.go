package membership

import (
	"testing"
)

// world is a test prober: a set of down processes and a message-loss
// fraction driven by a counter for determinism.
type world struct {
	down map[int]bool
}

func (w *world) Probe(from, to int) bool {
	return !w.down[to] && !w.down[from]
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{N: 1, Self: 0}); err == nil {
		t.Fatal("tiny group accepted")
	}
	if _, err := New(Config{N: 10, Self: 10}); err == nil {
		t.Fatal("out-of-range self accepted")
	}
}

func TestAllAliveStaysAlive(t *testing.T) {
	d, err := New(Config{Self: 0, N: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	w := &world{down: map[int]bool{}}
	for i := 0; i < 100; i++ {
		d.Tick(w)
	}
	if d.NumAlive() != 20 {
		t.Fatalf("alive = %d, want 20", d.NumAlive())
	}
}

func TestDetectsCrash(t *testing.T) {
	d, err := New(Config{Self: 0, N: 10, Seed: 2, SuspicionPeriods: 3})
	if err != nil {
		t.Fatal(err)
	}
	w := &world{down: map[int]bool{5: true}}
	// Round-robin guarantees member 5 is probed within N−1 periods; after
	// the suspicion window it must be Dead.
	for i := 0; i < 20; i++ {
		d.Tick(w)
	}
	if d.Status(5) != Dead {
		t.Fatalf("status(5) = %v, want dead", d.Status(5))
	}
	for m := 1; m < 10; m++ {
		if m != 5 && d.Status(m) != Alive {
			t.Fatalf("false positive: status(%d) = %v", m, d.Status(m))
		}
	}
}

func TestSuspicionRefutation(t *testing.T) {
	d, err := New(Config{Self: 0, N: 6, Seed: 3, SuspicionPeriods: 100})
	if err != nil {
		t.Fatal(err)
	}
	w := &world{down: map[int]bool{2: true}}
	// Let 2 become suspect.
	for i := 0; i < 12 && d.Status(2) == Alive; i++ {
		d.Tick(w)
	}
	if d.Status(2) != Suspect {
		t.Fatalf("status(2) = %v, want suspect", d.Status(2))
	}
	// Member 2 recovers before the suspicion window closes.
	delete(w.down, 2)
	for i := 0; i < 12 && d.Status(2) != Alive; i++ {
		d.Tick(w)
	}
	if d.Status(2) != Alive {
		t.Fatalf("recovered member not refuted: %v", d.Status(2))
	}
}

func TestIndirectProbesMaskLossyDirectPath(t *testing.T) {
	// Direct probes from 0 fail, but helpers can reach the target: the
	// indirect path must keep the target alive.
	d, err := New(Config{Self: 0, N: 8, Seed: 4, SuspicionPeriods: 2, IndirectProbes: 3})
	if err != nil {
		t.Fatal(err)
	}
	directFail := ProberFunc(func(from, to int) bool {
		if from == 0 && to == 3 {
			return false // only the 0→3 link is broken
		}
		return true
	})
	for i := 0; i < 50; i++ {
		d.Tick(directFail)
	}
	if d.Status(3) != Alive {
		t.Fatalf("status(3) = %v; indirect probes should mask the broken link", d.Status(3))
	}
}

func TestForceAlive(t *testing.T) {
	d, err := New(Config{Self: 0, N: 5, Seed: 5, SuspicionPeriods: 1})
	if err != nil {
		t.Fatal(err)
	}
	w := &world{down: map[int]bool{1: true}}
	for i := 0; i < 15; i++ {
		d.Tick(w)
	}
	if d.Status(1) != Dead {
		t.Fatalf("setup failed: %v", d.Status(1))
	}
	d.ForceAlive(1)
	if d.Status(1) != Alive {
		t.Fatal("ForceAlive did not reinstate")
	}
}

func TestAliveMembersExcludesSelf(t *testing.T) {
	d, err := New(Config{Self: 2, N: 5, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range d.AliveMembers() {
		if m == 2 {
			t.Fatal("AliveMembers includes self")
		}
	}
	if len(d.AliveMembers()) != 4 {
		t.Fatalf("alive members = %v", d.AliveMembers())
	}
}

func TestMassFailureDetection(t *testing.T) {
	d, err := New(Config{Self: 0, N: 40, Seed: 7, SuspicionPeriods: 3})
	if err != nil {
		t.Fatal(err)
	}
	w := &world{down: map[int]bool{}}
	for m := 20; m < 40; m++ {
		w.down[m] = true
	}
	// Round-robin needs ~N periods to cover everyone, plus suspicion.
	for i := 0; i < 150; i++ {
		d.Tick(w)
	}
	if got := d.NumAlive(); got != 20 {
		t.Fatalf("alive = %d after 50%% failure, want 20", got)
	}
}
