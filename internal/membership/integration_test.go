package membership_test

import (
	"testing"

	"odeproto/internal/endemic"
	"odeproto/internal/membership"
	"odeproto/internal/ode"
	"odeproto/internal/sim"
)

// TestDetectorTracksEngineFailures wires the SWIM-style detector to the
// simulation engine's liveness state (the configuration §6 suggests for
// directed token routing): after a massive failure in the engine, the
// detector's alive view converges to the surviving membership.
func TestDetectorTracksEngineFailures(t *testing.T) {
	const n = 60
	proto, err := endemic.NewFigure1Protocol(endemic.Params{B: 2, Gamma: 0.2, Alpha: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	engine, err := sim.New(sim.Config{
		N:        n,
		Protocol: proto,
		Initial: map[ode.Var]int{
			endemic.Receptive: n / 2,
			endemic.Stash:     n / 2,
			endemic.Averse:    0,
		},
		Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	det, err := membership.New(membership.Config{Self: 0, N: n, Seed: 6, SuspicionPeriods: 3})
	if err != nil {
		t.Fatal(err)
	}
	prober := membership.ProberFunc(func(from, to int) bool {
		return engine.StateOf(from) != sim.Down && engine.StateOf(to) != sim.Down
	})

	// Healthy phase: detector sees everyone.
	for i := 0; i < 2*n; i++ {
		engine.Step()
		det.Tick(prober)
	}
	if det.NumAlive() != n {
		t.Fatalf("healthy phase: detector alive = %d, want %d", det.NumAlive(), n)
	}

	killed := engine.KillFraction(0.5)
	// Failure phase: within a few round-robin cycles plus the suspicion
	// window every crashed member must be marked dead.
	for i := 0; i < 4*n; i++ {
		engine.Step()
		det.Tick(prober)
	}
	if got := det.NumAlive(); got != n-killed {
		t.Fatalf("post-failure: detector alive = %d, want %d", got, n-killed)
	}
	// The detector's alive view can now feed directed token routing:
	// every member it lists must actually be alive in the engine.
	for _, m := range det.AliveMembers() {
		if engine.StateOf(m) == sim.Down {
			t.Fatalf("detector lists dead member %d as alive", m)
		}
	}
}
