package sim

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"
)

func consume(k string, n int) {}

func wallClock() int64 {
	t := time.Now() // want `time\.Now in a deterministic path`
	return t.UnixNano()
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since in a deterministic path`
}

func jitter() int {
	return rand.Intn(10) // want `global math/rand RNG \(rand\.Intn\)`
}

func valuesUnsorted(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v) // want `append inside a range over a map`
	}
	return out
}

func total(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `floating-point accumulation inside a range over a map`
	}
	return sum
}

func publish(m map[string]int, ch chan<- int) {
	for _, v := range m {
		ch <- v // want `channel send inside a range over a map`
	}
}

func firstBad(m map[string]int) error {
	for k, v := range m {
		if v < 0 {
			return fmt.Errorf("bad entry %q", k) // want `return inside a range over a map leaks`
		}
	}
	return nil
}

func dump(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `write to an io\.Writer inside a range over a map`
	}
}

func draws(m map[string]int, rng *rand.Rand) {
	for k := range m {
		consume(k, rng.Intn(100)) // want `RNG draw \(Rand\.Intn\)`
	}
}

func fanIn(jobs []int) []int {
	var results []int
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			results = append(results, j*j) // want `append to results from inside a goroutine`
		}(j)
	}
	wg.Wait()
	return results
}

func collect(ch <-chan int) []int {
	var out []int
	for v := range ch {
		out = append(out, v) // want `append of received values to out`
	}
	return out
}
