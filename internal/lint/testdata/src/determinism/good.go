package sim

import (
	"math/rand"
	"sort"
)

type nodeID string

// sortedKeys is the blessed sorted-keys idiom: collect only the keys,
// sort, then iterate the slice.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortedIDs is the same idiom through a type conversion.
func sortedIDs(m map[nodeID]bool) []string {
	ids := make([]string, 0, len(m))
	for id := range m {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	return ids
}

// copyAndCount is order-independent: map copy plus integer accumulation.
func copyAndCount(m map[string]int) (map[string]int, int) {
	out := make(map[string]int, len(m))
	n := 0
	for k, v := range m {
		out[k] = v
		n += v
	}
	return out, n
}

// perKey accumulates floats into per-key map entries, which is
// order-independent (each key's sum folds the same values).
func perKey(m map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] += v
	}
	return out
}

// seeded draws from a local, explicitly seeded source.
func seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// indexedFanIn is the blessed parallel merge: one slot per job, so the
// result layout is independent of completion order.
func indexedFanIn(jobs []int) []int {
	results := make([]int, len(jobs))
	done := make(chan struct{})
	for i, j := range jobs {
		go func(i, j int) {
			results[i] = j * j
			done <- struct{}{}
		}(i, j)
	}
	for range jobs {
		<-done
	}
	return results
}
