package service

// trySend is the bounded-queue idiom: the default arm keeps the lock
// hold non-blocking even when the queue is full.
func (s *state) trySend(v int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.queue <- v:
		return true
	default:
		return false
	}
}

// publish takes the lock only to update state, then sends after
// unlocking.
func (s *state) publish(n int) {
	s.mu.Lock()
	s.n = n
	s.mu.Unlock()
	s.queue <- n
}

// spawn starts a goroutine under the lock; the literal's body runs
// outside this lock hold and may block freely.
func (s *state) spawn() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.queue <- s.n
	}()
}
