package service

import (
	"os"
	"sync"
	"time"
)

type state struct {
	mu    sync.Mutex
	queue chan int
	n     int
}

func (s *state) sleepUnderLock() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while holding s\.mu\.Lock\(\)`
	s.mu.Unlock()
}

func (s *state) sendUnderLock(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.queue <- v // want `channel send while holding s\.mu\.Lock\(\)`
}

func (s *state) recvUnderLock() int {
	s.mu.Lock()
	v := <-s.queue // want `channel receive while holding s\.mu\.Lock\(\)`
	s.mu.Unlock()
	return v
}

func (s *state) diskUnderLock(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return os.WriteFile(path, []byte("x"), 0o644) // want `file I/O \(os\.WriteFile\) while holding s\.mu\.Lock\(\)`
}
