package service

import (
	"fmt"
	"net/http"
	"os"
)

// checkedClose checks every durability-bearing error; the error-path
// closes discard explicitly with _ = because the first error owns the
// return value.
func checkedClose(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// readOnlyClose closes a handle opened with os.Open: read-only, so the
// deferred close cannot lose data and needs no check.
func readOnlyClose(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, 16)
	n, _ := f.Read(buf)
	return buf[:n], nil
}

// checkedStream stops streaming the moment the client hangs up.
func checkedStream(w http.ResponseWriter, rows []string) error {
	for _, r := range rows {
		if _, err := fmt.Fprintln(w, r); err != nil {
			return err
		}
	}
	return nil
}
