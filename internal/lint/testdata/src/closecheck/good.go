package service

import (
	"fmt"
	"io"
	"net/http"
	"os"
)

// goodStore mirrors the store's streaming read API for the reader-handle
// cases below.
type goodStore struct{}

func (goodStore) GetResultReader(key string) (io.ReadCloser, int64, error) {
	return nil, 0, nil
}

// checkedClose checks every durability-bearing error; the error-path
// closes discard explicitly with _ = because the first error owns the
// return value.
func checkedClose(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// readOnlyClose closes a handle opened with os.Open: read-only, so the
// deferred close cannot lose data and needs no check.
func readOnlyClose(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, 16)
	n, _ := f.Read(buf)
	return buf[:n], nil
}

// checkedReaderClose: a store result-reader handle closed with the
// explicit-discard idiom (probe path) or a checked error (copy path).
func checkedReaderClose(w io.Writer, st goodStore, key string) error {
	rc, _, err := st.GetResultReader(key)
	if err != nil {
		return err
	}
	defer func() { _ = rc.Close() }()
	_, err = io.Copy(w, rc)
	return err
}

// probeReaderClose discards the probe close explicitly: the handle was
// only opened to test existence.
func probeReaderClose(st goodStore, key string) bool {
	rc, _, err := st.GetResultReader(key)
	if err != nil {
		return false
	}
	_ = rc.Close()
	return true
}

// checkedStream stops streaming the moment the client hangs up.
func checkedStream(w http.ResponseWriter, rows []string) error {
	for _, r := range rows {
		if _, err := fmt.Fprintln(w, r); err != nil {
			return err
		}
	}
	return nil
}
