package service

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"os"
)

// resultStore mimics the store's streaming read API: the returned handle
// is an open fd the caller owns.
type resultStore struct{}

func (resultStore) GetResultReader(key string) (io.ReadCloser, int64, error) {
	return nil, 0, nil
}

func writeAll(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close() // want `unchecked error from \(\*os\.File\)\.Close on a writable file`
		return err
	}
	f.Sync() // want `unchecked error from \(\*os\.File\)\.Sync`
	return f.Close()
}

func buffered(f *os.File, data []byte) error {
	w := bufio.NewWriter(f)
	if _, err := w.Write(data); err != nil {
		return err
	}
	w.Flush() // want `unchecked error from Flush on a writer`
	return nil
}

func deferredClose(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want `unchecked error from \(\*os\.File\)\.Close on a writable file`
	_, err = f.WriteString("x")
	return err
}

func stream(w http.ResponseWriter, rows []string) {
	for _, r := range rows {
		fmt.Fprintln(w, r) // want `unchecked http\.ResponseWriter write inside a streaming loop`
	}
}

func serveResult(w io.Writer, st resultStore, key string) error {
	rc, _, err := st.GetResultReader(key)
	if err != nil {
		return err
	}
	defer rc.Close() // want `unchecked error from Close on a store result-reader handle`
	_, err = io.Copy(w, rc)
	return err
}

func probeResult(st resultStore, key string) bool {
	rc, _, err := st.GetResultReader(key)
	if err != nil {
		return false
	}
	rc.Close() // want `unchecked error from Close on a store result-reader handle`
	return true
}
