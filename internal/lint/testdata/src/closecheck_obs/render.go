package obs

import (
	"fmt"
	"net/http"
)

// renderAllDropped is the shape the closecheck scope extension exists
// for: a /metrics render loop that ignores write errors keeps formatting
// families for a scraper that hung up, and silently truncates the
// exposition mid-body.
func renderAllDropped(w http.ResponseWriter, families []string) {
	for _, name := range families {
		fmt.Fprintf(w, "%s 0\n", name) // want `unchecked http\.ResponseWriter write inside a streaming loop`
	}
}

// renderAllChecked is the accepted idiom: every write error surfaces to
// the caller, so a dead scrape stops the render instead of being dropped.
func renderAllChecked(w http.ResponseWriter, families []string) error {
	for _, name := range families {
		if _, err := fmt.Fprintf(w, "%s 0\n", name); err != nil {
			return err
		}
	}
	return nil
}
