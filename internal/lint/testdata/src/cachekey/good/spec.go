package service

import "fmt"

type JobSpec struct {
	Source string
	Seed   int64
	note   string
}

type compiled struct{ system string }

// compileRequest consumes the compile-shaping prefix of the spec.
func (s *JobSpec) compileRequest() *compiled {
	return &compiled{system: s.Source}
}

// cacheKey consumes the rest; between the two serializers every
// exported field reaches the key.
func (s *JobSpec) cacheKey(c *compiled) string {
	_ = s.note
	return fmt.Sprintf("%s|%d", c.system, s.Seed)
}
