package service

import "fmt"

type JobSpec struct {
	Source string
	Seed   int64 // want `JobSpec\.Seed is not consumed by the cache-key serializer`
	note   string
}

type compiled struct{ system string }

func (s *JobSpec) cacheKey(c *compiled) string {
	return fmt.Sprintf("%s|%s|%s", s.Source, s.note, c.system)
}
