package service

type JobSpec struct {
	Source string // want `declares no cache-key serializer`
	Seed   int64
}
