package sim

import "time"

// wallLabel carries a justified exemption and must be suppressed.
func wallLabel() time.Time {
	//lint:ignore determinism log label only, never reaches simulation output
	return time.Now()
}

// bareIgnore's directive has no reason: the directive itself is a
// diagnostic and the finding it tried to silence survives.
func bareIgnore() time.Time {
	//lint:ignore determinism
	return time.Now()
}
