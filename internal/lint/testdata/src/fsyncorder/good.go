package store

import "os"

// publishSynced follows the temp+Sync+rename publication discipline.
func publishSynced(tmp *os.File, dst string) error {
	if _, err := tmp.Write([]byte("data")); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), dst)
}

// blobThenDone persists the result before journaling its done record.
func blobThenDone(j *journalT, b *blobs, key string, data []byte) error {
	if err := b.PutResult(key, data); err != nil {
		return err
	}
	return j.Append(record{Op: "done"})
}

// cachedDone journals a cache hit: the blob this record describes was
// already durable before the job existed, so the ordering rule is moot.
func cachedDone(j *journalT, b *blobs, key string, data []byte) error {
	if err := j.Append(record{Op: "done", Cached: true}); err != nil {
		return err
	}
	return b.PutResult(key, data)
}
