package store

import "os"

type record struct {
	Op     string
	Cached bool
}

type journalT struct{}

func (j *journalT) Append(r record) error { return nil }

type blobs struct{}

func (b *blobs) PutResult(key string, data []byte) error { return nil }

func publishUnsynced(tmp *os.File, dst string) error {
	if _, err := tmp.Write([]byte("data")); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), dst) // want `os\.Rename reachable from a file write with no intervening Sync`
}

func doneBeforeBlob(j *journalT, b *blobs, key string, data []byte) error {
	if err := j.Append(record{Op: "done"}); err != nil { // want `done record journaled before the result blob`
		return err
	}
	return b.PutResult(key, data)
}
