package lint

import (
	"go/ast"
	"go/types"
)

// responseWriterPaths scope the streaming-handler rule: the packages whose
// HTTP handlers stream NDJSON/proxied bodies or metric expositions row by
// row.
var responseWriterPaths = []string{
	"odeproto/internal/service",
	"odeproto/internal/cluster",
	"odeproto/internal/obs",
}

// AnalyzerClosecheck flags dropped errors on the calls where "it worked"
// is only knowable from the return value:
//
//   - Close and Sync on writable files (*os.File not provably opened
//     read-only in the same function): the kernel may defer the actual
//     write to Close/Sync, so a dropped error silently loses data the WAL
//     or blob store just promised was durable;
//   - Close and Flush on writers (types satisfying io.Writer with an
//     error-returning Close/Flush, e.g. a bufio.Writer or gzip.Writer):
//     the final buffer flush happens inside the dropped call;
//   - Close on store result-reader handles (variables assigned from a
//     GetResultReader call): the handle is an interface over an open fd
//     per in-flight response, and the backend behind it is free to verify
//     or release on Close — a bare Close hides whether the leak-free
//     contract of the streaming read path was considered;
//   - http.ResponseWriter writes inside loops in the streaming packages:
//     a stream loop that ignores write errors keeps simulating rows for a
//     client that hung up.
//
// Assigning the error to _ is accepted: it is the explicit, reviewable
// statement that the error is considered and discarded (error-path
// cleanup closes, where the first error already owns the return).
var AnalyzerClosecheck = &Analyzer{
	Name: "closecheck",
	Doc: `forbid unchecked Close/Sync/Flush on writable files and unchecked streamed writes

Flags expression-statement and deferred calls whose dropped error is the
only signal that buffered or cached data actually reached its
destination. Explicitly discarding with "_ =" is the accepted idiom for
error-path cleanup.`,
	Run: runClosecheck,
}

func runClosecheck(pass *Pass) error {
	checkRW := inScope(pass.Path, responseWriterPaths)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			readOnly := readOnlyFiles(pass, fd)
			readers := readerHandles(pass, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				var call *ast.CallExpr
				switch n := n.(type) {
				case *ast.ExprStmt:
					call, _ = n.X.(*ast.CallExpr)
				case *ast.DeferStmt:
					call = n.Call
				case *ast.GoStmt:
					return true
				}
				if call != nil {
					checkDroppedError(pass, call, readOnly, readers)
				}
				if checkRW {
					checkStreamLoop(pass, n)
				}
				return true
			})
		}
	}
	return nil
}

// checkDroppedError flags one statement-position call if it is a
// Close/Sync/Flush whose error matters.
func checkDroppedError(pass *Pass, call *ast.CallExpr, readOnly, readers map[types.Object]bool) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || !methodHasErrorResult(fn) {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	pkgPath, typeName := recvNamed(fn)
	isOSFile := pkgPath == "os" && typeName == "File"
	switch fn.Name() {
	case "Sync":
		if isOSFile {
			pass.Reportf(call.Pos(), "unchecked error from (*os.File).Sync: the fsync result is the durability guarantee itself")
		}
	case "Close":
		if isOSFile {
			if obj := receiverObject(pass, sel.X); obj != nil && readOnly[obj] {
				return // closing a read-only handle cannot lose data
			}
			pass.Reportf(call.Pos(), "unchecked error from (*os.File).Close on a writable file: the kernel may surface the final write failure here; check it (or assign to _ with intent on error-cleanup paths)")
			return
		}
		if obj := receiverObject(pass, sel.X); obj != nil && readers[obj] {
			pass.Reportf(call.Pos(), "unchecked error from Close on a store result-reader handle: the reader holds an open fd per in-flight response; check it, or assign to _ to record that the discard is intentional")
			return
		}
		if tv, ok := pass.Info.Types[sel.X]; ok && implementsWriter(tv.Type) {
			pass.Reportf(call.Pos(), "unchecked error from Close on a writer (%s): the final buffer flush happens inside Close", tv.Type.String())
		}
	case "Flush":
		if tv, ok := pass.Info.Types[sel.X]; ok && implementsWriter(tv.Type) {
			pass.Reportf(call.Pos(), "unchecked error from Flush on a writer (%s): buffered data may never have reached the destination", tv.Type.String())
		}
	}
}

// receiverObject resolves a method receiver expression to the variable it
// names (plain identifiers only; selectors and calls return nil).
func receiverObject(pass *Pass, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := pass.Info.Uses[id]; obj != nil {
		return obj
	}
	return pass.Info.Defs[id]
}

// readOnlyFiles scans a function for `f, err := os.Open(...)` assignments:
// those files are provably read-only, and closing them cannot lose data.
// Files of unknown provenance (fields, parameters, os.Create/OpenFile)
// stay in the writable set — the conservative direction for a durability
// lint.
func readOnlyFiles(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.Info, call)
		if !isPkgFunc(fn, "os", "Open") {
			return true
		}
		if len(as.Lhs) > 0 {
			if obj := receiverObject(pass, as.Lhs[0]); obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// readerHandles scans a function for assignments whose right-hand side is
// a call to a method or function named GetResultReader — the store's
// streaming read API. The handles it returns are io.ReadClosers the
// caller owns, and their Close is held to the same explicit-discard rule
// as writable files (the name-based match mirrors readOnlyFiles: local
// assignments only, the conservative direction for handles of unknown
// provenance).
func readerHandles(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.Info, call)
		if fn == nil || fn.Name() != "GetResultReader" {
			return true
		}
		if len(as.Lhs) > 0 {
			if obj := receiverObject(pass, as.Lhs[0]); obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// checkStreamLoop flags unchecked http.ResponseWriter writes inside for
// loops — the streaming-handler shape where a dropped error keeps the
// loop producing rows for a dead client.
func checkStreamLoop(pass *Pass, n ast.Node) {
	var body *ast.BlockStmt
	switch n := n.(type) {
	case *ast.ForStmt:
		body = n.Body
	case *ast.RangeStmt:
		body = n.Body
	default:
		return
	}
	for _, stmt := range body.List {
		es, ok := stmt.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			continue
		}
		if respWriterWrite(pass, call) {
			pass.Reportf(call.Pos(), "unchecked http.ResponseWriter write inside a streaming loop: a client hang-up surfaces here, and ignoring it keeps the loop streaming to a dead connection")
		}
	}
}

// respWriterWrite reports whether call writes to an http.ResponseWriter:
// w.Write(...) on the interface, or fmt.Fprint*(w, ...).
func respWriterWrite(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass.Info, call)
	if fn == nil {
		return false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		switch fn.Name() {
		case "Fprint", "Fprintf", "Fprintln":
			return len(call.Args) > 0 && isResponseWriter(pass, call.Args[0])
		}
		return false
	}
	if fn.Name() != "Write" && fn.Name() != "WriteString" {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return ok && isResponseWriter(pass, sel.X)
}

// isResponseWriter reports whether e's static type is net/http's
// ResponseWriter interface.
func isResponseWriter(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "net/http" && named.Obj().Name() == "ResponseWriter"
}
