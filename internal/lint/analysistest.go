package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// expectation is one `// want "regexp"` comment in a fixture file: the
// line it sits on must produce a diagnostic matching the pattern.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// wantRE extracts the quoted pattern from a want comment. Both plain
// (`// want "..."`) and backquoted (// want `...`) forms are accepted.
var wantRE = regexp.MustCompile("//\\s*want\\s+(?:\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`)")

// CheckFixture loads the fixture package under dir, presents it to the
// analyzer as importPath, and verifies the diagnostics against the
// fixture's `// want` comments: every want must be matched by a
// diagnostic on its line, and every diagnostic must be wanted. It is the
// in-house analogue of golang.org/x/tools/go/analysis/analysistest.
// Files without want comments double as negative fixtures — the allowed
// idioms that must stay clean.
func CheckFixture(a *Analyzer, dir, importPath string) []error {
	pkg, err := LoadFixture(dir, importPath)
	if err != nil {
		return []error{err}
	}
	diags, err := RunAnalyzers(pkg, []*Analyzer{a})
	if err != nil {
		return []error{err}
	}

	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pat := m[1]
				if pat == "" {
					pat = m[2]
				} else {
					pat = strings.ReplaceAll(pat, `\"`, `"`)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					return []error{fmt.Errorf("%s: bad want pattern %q: %v", pkg.Fset.Position(c.Pos()), pat, err)}
				}
				pos := pkg.Fset.Position(c.Pos())
				wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
			}
		}
	}
	// A want comment may sit at the end of the flagged line; directives on
	// their own line apply to the following line, mirroring lint:ignore.
	lineHasCode := map[[2]any]bool{}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			switch n.(type) {
			case *ast.File:
				return true
			case *ast.Comment, *ast.CommentGroup:
				return false // a want on its own line is not code
			}
			pos := pkg.Fset.Position(n.Pos())
			lineHasCode[[2]any{pos.Filename, pos.Line}] = true
			return true
		})
	}

	var errs []error
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.file != d.Pos.Filename {
				continue
			}
			target := w.line
			if !lineHasCode[[2]any{w.file, w.line}] {
				target = w.line + 1 // want on its own line covers the next line
			}
			if target == d.Pos.Line && w.pattern.MatchString(d.Message) {
				w.matched = true
				matched = true
			}
		}
		if !matched {
			errs = append(errs, fmt.Errorf("unexpected diagnostic:\n  %s", d))
		}
	}
	for _, w := range wants {
		if !w.matched {
			errs = append(errs, fmt.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.pattern))
		}
	}
	return errs
}

var _ = token.NoPos
