package lint

import "testing"

func TestCachekeyFixtureBad(t *testing.T) {
	runFixture(t, AnalyzerCachekey, "cachekey/bad", "odeproto/internal/service")
}

func TestCachekeyFixtureGood(t *testing.T) {
	runFixture(t, AnalyzerCachekey, "cachekey/good", "odeproto/internal/service")
}

func TestCachekeyFixtureNoSerializer(t *testing.T) {
	runFixture(t, AnalyzerCachekey, "cachekey/noserializer", "odeproto/internal/service")
}
