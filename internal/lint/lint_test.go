package lint

import (
	"path/filepath"
	"testing"
)

// runFixture checks one analyzer against a testdata fixture presented
// under the given production import path.
func runFixture(t *testing.T, a *Analyzer, dir, importPath string) {
	t.Helper()
	for _, err := range CheckFixture(a, filepath.Join("testdata", "src", dir), importPath) {
		t.Error(err)
	}
}

// TestLoadModulePackage exercises the export-data loader against a real
// package of this module.
func TestLoadModulePackage(t *testing.T) {
	pkgs, err := Load("../..", "./internal/mt19937")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	if pkgs[0].ImportPath != "odeproto/internal/mt19937" {
		t.Fatalf("import path = %q", pkgs[0].ImportPath)
	}
	if pkgs[0].Pkg == nil || pkgs[0].Info == nil {
		t.Fatal("package not type-checked")
	}
}

// TestScopeByImportPath pins that the path-scoped analyzers stay silent
// when the same source sits outside the contract-bearing packages.
func TestScopeByImportPath(t *testing.T) {
	scoped := []struct {
		a   *Analyzer
		dir string
	}{
		{AnalyzerDeterminism, "determinism"},
		{AnalyzerFsyncorder, "fsyncorder"},
		{AnalyzerClosecheck, "closecheck"},
		{AnalyzerNoblocklock, "noblocklock"},
	}
	for _, tc := range scoped {
		pkg, err := LoadFixture(filepath.Join("testdata", "src", tc.dir), "example.com/elsewhere")
		if err != nil {
			t.Fatalf("%s: %v", tc.a.Name, err)
		}
		diags, err := RunAnalyzers(pkg, []*Analyzer{tc.a})
		if err != nil {
			t.Fatalf("%s: %v", tc.a.Name, err)
		}
		for _, d := range diags {
			// closecheck's writable-file rules are deliberately unscoped;
			// only its ResponseWriter rule is path-gated.
			if tc.a.Name == "closecheck" && d.Analyzer == "closecheck" &&
				!contains(d.Message, "ResponseWriter") {
				continue
			}
			t.Errorf("%s out of scope still reported: %s", tc.a.Name, d)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != 5 {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want 5, nil", len(all), err)
	}
	subset, err := ByName("determinism,cachekey")
	if err != nil || len(subset) != 2 {
		t.Fatalf("ByName subset = %d, err %v; want 2, nil", len(subset), err)
	}
	if _, err := ByName("nonsense"); err == nil {
		t.Fatal("ByName(nonsense) did not fail")
	}
}
