package lint

import "testing"

func TestNoblocklockFixture(t *testing.T) {
	runFixture(t, AnalyzerNoblocklock, "noblocklock", "odeproto/internal/service")
}
