package lint

import (
	"go/ast"
	"go/token"
)

// fsyncorderPaths are the packages that own the durability ordering: the
// WAL/blob store itself and the service layer that journals against it.
var fsyncorderPaths = []string{
	"odeproto/internal/store",
	"odeproto/internal/service",
}

// AnalyzerFsyncorder enforces the crash-safety ordering contracts:
//
//  1. within a function, file writes must not reach an os.Rename without
//     an intervening Sync — rename-into-place publishes the file's name,
//     and a crash after the rename but before the data hits disk leaves a
//     durable name pointing at torn contents;
//  2. a function that both persists a result blob (PutResult/persistResult)
//     and journals that job's uncached "done" record must persist first —
//     the WAL must never claim a result the disk does not hold. Done
//     records marked Cached: true are exempt: they describe a blob that
//     was already durable before this job existed.
//
// The scan is ordered by source position within one function body, not by
// control flow; the rare branch shape it misjudges documents itself with
// a //lint:ignore and a reason.
var AnalyzerFsyncorder = &Analyzer{
	Name: "fsyncorder",
	Doc: `enforce Sync-before-rename and blob-before-done-record ordering

In the durability-owning packages, flags (1) os.Rename calls that a file
write can reach with no Sync in between, and (2) journal appends of a
job's uncached done record positioned before the corresponding result
blob write (PutResult) in the same function.`,
	Run: runFsyncorder,
}

// fsyncEventKind classifies the calls the ordering rules relate.
type fsyncEventKind int

const (
	evWrite fsyncEventKind = iota
	evSync
	evRename
	evPutResult
	evDoneRecord
)

type fsyncEvent struct {
	kind fsyncEventKind
	pos  token.Pos
}

func runFsyncorder(pass *Pass) error {
	if !inScope(pass.Path, fsyncorderPaths) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFsyncOrder(pass, fd)
		}
	}
	return nil
}

func checkFsyncOrder(pass *Pass, fd *ast.FuncDecl) {
	var events []fsyncEvent
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if kind, ok := classifyFsyncCall(pass, call); ok {
			events = append(events, fsyncEvent{kind: kind, pos: call.Pos()})
		}
		return true
	})

	// Rule 1: every rename must have a Sync between it and the last
	// preceding write.
	for i, ev := range events {
		if ev.kind != evRename {
			continue
		}
		// Find the nearest earlier write or Sync; a write wins → violation.
		sawWrite := false
		for j := i - 1; j >= 0; j-- {
			if events[j].kind == evSync {
				break
			}
			if events[j].kind == evWrite {
				sawWrite = true
				break
			}
		}
		if sawWrite {
			pass.Reportf(ev.pos, "os.Rename reachable from a file write with no intervening Sync in %s: a crash after the rename can publish a name whose contents never became durable; Sync the file before renaming it into place", funcName(fd))
		}
	}

	// Rule 2: an uncached done record must follow the blob write.
	var firstPut token.Pos = token.NoPos
	for _, ev := range events {
		if ev.kind == evPutResult {
			firstPut = ev.pos
			break
		}
	}
	if firstPut == token.NoPos {
		return
	}
	for _, ev := range events {
		if ev.kind == evDoneRecord && ev.pos < firstPut {
			pass.Reportf(ev.pos, "done record journaled before the result blob is durably written in %s: on replay the WAL would claim a result the disk does not hold; call PutResult first (cache-hit records carry Cached: true and are exempt)", funcName(fd))
		}
	}
}

// classifyFsyncCall maps one call to the event kinds the ordering rules
// relate, or reports false for irrelevant calls.
func classifyFsyncCall(pass *Pass, call *ast.CallExpr) (fsyncEventKind, bool) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil {
		return 0, false
	}
	// os.Rename.
	if isPkgFunc(fn, "os", "Rename") {
		return evRename, true
	}
	// io.Copy / fmt.Fprint* with an *os.File destination count as writes.
	if isPkgFunc(fn, "io", "Copy") || isPkgFunc(fn, "io", "CopyBuffer") ||
		isPkgFunc(fn, "fmt", "Fprint") || isPkgFunc(fn, "fmt", "Fprintf") || isPkgFunc(fn, "fmt", "Fprintln") {
		if len(call.Args) > 0 && exprTypeIs(pass.Info, call.Args[0], "os", "File") {
			return evWrite, true
		}
		return 0, false
	}
	pkgPath, typeName := recvNamed(fn)
	if pkgPath == "os" && typeName == "File" {
		switch fn.Name() {
		case "Write", "WriteString", "WriteAt", "ReadFrom":
			return evWrite, true
		case "Sync":
			return evSync, true
		}
		return 0, false
	}
	// A journal/Append call whose record literal carries an OpDone (or
	// "done") op is a done-record append; Cached: true exempts it.
	if fn.Name() == "Append" || fn.Name() == "journal" || fn.Name() == "appendNoSync" {
		if doneRecordArg(call) {
			return evDoneRecord, true
		}
		return 0, false
	}
	if fn.Name() == "PutResult" || fn.Name() == "persistResult" {
		return evPutResult, true
	}
	return 0, false
}

// doneRecordArg inspects a journal-style call's arguments for a composite
// literal with Op set to a "done" op and no Cached: true field.
func doneRecordArg(call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		lit, ok := ast.Unparen(arg).(*ast.CompositeLit)
		if !ok {
			continue
		}
		isDone, isCached := false, false
		for _, elt := range lit.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			switch key.Name {
			case "Op":
				if name := selectorOrIdentName(kv.Value); name == "OpDone" {
					isDone = true
				} else if lit, ok := kv.Value.(*ast.BasicLit); ok && lit.Value == `"done"` {
					isDone = true
				}
			case "Cached":
				if id, ok := ast.Unparen(kv.Value).(*ast.Ident); ok && id.Name == "true" {
					isCached = true
				}
			}
		}
		if isDone && !isCached {
			return true
		}
	}
	return false
}

// selectorOrIdentName returns the terminal name of an identifier or
// selector expression ("store.OpDone" → "OpDone").
func selectorOrIdentName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return ""
}
