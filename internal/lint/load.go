package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Load resolves the patterns with the go tool and type-checks every
// matched package of the enclosing module from source. Dependencies —
// stdlib and module siblings alike — are imported from the compiler
// export data `go list -export` leaves in the build cache, so loading
// needs no module proxy and no source type-check of the standard library.
// Test files are not analyzed: the contracts the suite encodes are about
// production paths.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, append([]string{"-export", "-deps"}, patterns...))
	if err != nil {
		return nil, err
	}
	targets, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("lint: loading %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(exp)
	})

	var pkgs []*Package
	for _, t := range targets {
		if t.Error != nil {
			return nil, fmt.Errorf("lint: loading %s: %s", t.ImportPath, t.Error.Err)
		}
		if len(t.GoFiles) == 0 {
			continue
		}
		pkg, err := checkDir(fset, imp, t.Dir, t.GoFiles, t.ImportPath)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// goList runs `go list -json` with the given arguments in dir and decodes
// the package stream.
func goList(dir string, args []string) ([]*listedPkg, error) {
	fields := "-json=ImportPath,Dir,Export,GoFiles,Standard,Module,Error"
	cmd := exec.Command("go", append([]string{"list", "-e", fields}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listedPkg
	for {
		p := new(listedPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// checkDir parses and type-checks one package's files.
func checkDir(fset *token.FileSet, imp types.Importer, dir string, goFiles []string, importPath string) (*Package, error) {
	files := make([]*ast.File, 0, len(goFiles))
	for _, name := range goFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Pkg:        tpkg,
		Info:       info,
	}, nil
}

// LoadFixture type-checks the .go files under dir as one package presented
// under importPath — the analysistest entry point. Fixture imports are
// resolved the same way Load resolves dependencies: by asking the go tool
// for export data, so fixtures may import the stdlib and this module's
// packages freely.
func LoadFixture(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var goFiles []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			goFiles = append(goFiles, e.Name())
		}
	}
	if len(goFiles) == 0 {
		return nil, fmt.Errorf("lint: no fixture files under %s", dir)
	}

	// Collect the fixture's imports, then resolve export data for them.
	fset := token.NewFileSet()
	imports := map[string]bool{}
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, spec := range f.Imports {
			p := strings.Trim(spec.Path.Value, `"`)
			if p != "unsafe" {
				imports[p] = true
			}
		}
	}
	args := []string{"-export", "-deps"}
	for p := range imports {
		args = append(args, p)
	}
	exports := make(map[string]string)
	if len(imports) > 0 {
		listed, err := goList(dir, args)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Error != nil {
				return nil, fmt.Errorf("lint: fixture dependency %s: %s", p.ImportPath, p.Error.Err)
			}
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(exp)
	})
	return checkDir(fset, imp, dir, goFiles, importPath)
}
