package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant checker. The shape deliberately mirrors
// golang.org/x/tools/go/analysis (Name/Doc/Run over a Pass) so the suite
// could migrate to the upstream framework wholesale if the dependency ever
// becomes available; the container this repo builds in has no module
// proxy, so the driver underneath is the stdlib-only loader in load.go.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:ignore
	// directives.
	Name string
	// Doc is the contract the analyzer enforces, first line short.
	Doc string
	// Run inspects one package and reports violations via pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	// Path is the package's import path, used by analyzers that scope
	// themselves to the repo's contract-bearing packages. Fixture tests
	// present testdata packages under the production paths.
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"pos"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records one violation at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// RunAnalyzers applies the analyzers to one loaded package and returns the
// surviving diagnostics: //lint:ignore directives with a reason suppress
// matching diagnostics on their own or the following line, and malformed
// (un-reasoned) directives are themselves diagnostics — an ignore that
// does not say why is a contract violation, not an escape.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Path:     pkg.ImportPath,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Pkg,
			Info:     pkg.Info,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
		}
	}
	dirs, bad := collectDirectives(pkg.Fset, pkg.Files)
	kept := diags[:0]
	for _, d := range diags {
		if !suppressed(d, dirs) {
			kept = append(kept, d)
		}
	}
	kept = append(kept, bad...)
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i].Pos, kept[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return kept[i].Analyzer < kept[j].Analyzer
	})
	return kept, nil
}

// inScope reports whether path is one of the given package paths.
func inScope(path string, scopes []string) bool {
	for _, s := range scopes {
		if path == s {
			return true
		}
	}
	return false
}

// calleeFunc resolves the static callee of a call, or nil for calls
// through function values and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is the package-level function pkgPath.name.
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// recvNamed returns the defining package path and type name of a method's
// receiver ("" , "" for package-level functions), looking through pointers.
func recvNamed(fn *types.Func) (pkgPath, typeName string) {
	if fn == nil {
		return "", ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	if named.Obj().Pkg() == nil {
		return "", named.Obj().Name()
	}
	return named.Obj().Pkg().Path(), named.Obj().Name()
}

// methodHasErrorResult reports whether the callee's (sole or last) result
// is an error.
func methodHasErrorResult(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}

// exprTypeIs reports whether e's type (through pointers) is the named type
// pkgPath.name.
func exprTypeIs(info *types.Info, e ast.Expr, pkgPath, name string) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == pkgPath && named.Obj().Name() == name
}

// implementsWriter reports whether t (or *t) satisfies io.Writer — used to
// decide that an unchecked Close/Flush can lose buffered data.
func implementsWriter(t types.Type) bool {
	w := writerInterface()
	if types.Implements(t, w) {
		return true
	}
	if _, ok := t.(*types.Pointer); !ok {
		return types.Implements(types.NewPointer(t), w)
	}
	return false
}

var writerIface *types.Interface

// writerInterface builds the io.Writer interface shape structurally, so
// the check does not require the io package's type object to be loaded.
func writerInterface() *types.Interface {
	if writerIface != nil {
		return writerIface
	}
	byteSlice := types.NewSlice(types.Typ[types.Byte])
	params := types.NewTuple(types.NewVar(token.NoPos, nil, "p", byteSlice))
	results := types.NewTuple(
		types.NewVar(token.NoPos, nil, "n", types.Typ[types.Int]),
		types.NewVar(token.NoPos, nil, "err", types.Universe.Lookup("error").Type()),
	)
	sig := types.NewSignatureType(nil, nil, nil, params, results, false)
	fn := types.NewFunc(token.NoPos, nil, "Write", sig)
	writerIface = types.NewInterfaceType([]*types.Func{fn}, nil)
	writerIface.Complete()
	return writerIface
}

// usesObject reports whether any identifier inside node resolves to obj.
func usesObject(info *types.Info, node ast.Node, obj types.Object) bool {
	if obj == nil || node == nil {
		return false
	}
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// declaredOutside reports whether obj's declaration lies outside node.
func declaredOutside(obj types.Object, node ast.Node) bool {
	if obj == nil || obj.Pos() == token.NoPos {
		return false
	}
	return obj.Pos() < node.Pos() || obj.Pos() >= node.End()
}

// funcName returns a printable name for a function declaration.
func funcName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	var b strings.Builder
	b.WriteString("(")
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		b.WriteString("*")
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		b.WriteString(id.Name)
	}
	b.WriteString(").")
	b.WriteString(fd.Name.Name)
	return b.String()
}
