package lint

import "testing"

func TestClosecheckFixture(t *testing.T) {
	runFixture(t, AnalyzerClosecheck, "closecheck", "odeproto/internal/service")
}
