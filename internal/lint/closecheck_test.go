package lint

import "testing"

func TestClosecheckFixture(t *testing.T) {
	runFixture(t, AnalyzerClosecheck, "closecheck", "odeproto/internal/service")
}

// TestClosecheckObsFixture pins the scope extension that rode in with the
// metrics registry: internal/obs streams the /metrics exposition, so its
// ResponseWriter writes are held to the same no-silently-dropped-error
// rule as the service and cluster handlers.
func TestClosecheckObsFixture(t *testing.T) {
	runFixture(t, AnalyzerClosecheck, "closecheck_obs", "odeproto/internal/obs")
}
