package lint

import "testing"

func TestFsyncorderFixture(t *testing.T) {
	runFixture(t, AnalyzerFsyncorder, "fsyncorder", "odeproto/internal/store")
}
