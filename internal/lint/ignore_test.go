package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestIgnoreDirectives pins the escape hatch's two halves: a directive
// with a reason suppresses the finding on the following line, and a
// directive without a reason is rejected — it becomes a diagnostic of
// its own and suppresses nothing.
func TestIgnoreDirectives(t *testing.T) {
	pkg, err := LoadFixture(filepath.Join("testdata", "src", "ignore"), "odeproto/internal/sim")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunAnalyzers(pkg, []*Analyzer{AnalyzerDeterminism})
	if err != nil {
		t.Fatal(err)
	}
	var malformed, surviving []Diagnostic
	for _, d := range diags {
		switch d.Analyzer {
		case "lint":
			malformed = append(malformed, d)
		case "determinism":
			surviving = append(surviving, d)
		default:
			t.Errorf("unexpected analyzer %q: %s", d.Analyzer, d)
		}
	}
	if len(malformed) != 1 {
		t.Fatalf("got %d malformed-directive diagnostics, want 1: %v", len(malformed), diags)
	}
	if !strings.Contains(malformed[0].Message, "un-reasoned ignores are rejected") {
		t.Errorf("malformed-directive message = %q", malformed[0].Message)
	}
	// Only bareIgnore's finding survives; wallLabel's reasoned directive
	// suppressed the other time.Now.
	if len(surviving) != 1 {
		t.Fatalf("got %d surviving determinism findings, want 1: %v", len(surviving), diags)
	}
	if !strings.Contains(surviving[0].Message, "time.Now") {
		t.Errorf("surviving finding = %q", surviving[0].Message)
	}
	// The un-reasoned directive sits on the line above its target — the
	// suppression geometry matched, only the missing reason voided it.
	if got, want := surviving[0].Pos.Line, malformed[0].Pos.Line+1; got != want {
		t.Errorf("surviving finding at line %d, want %d (directly below the bare directive)", got, want)
	}
}
