package lint

import "testing"

func TestDeterminismFixture(t *testing.T) {
	runFixture(t, AnalyzerDeterminism, "determinism", "odeproto/internal/sim")
}

// TestDeterminismAllScopedPaths pins the scope list: the contract covers
// exactly the packages whose output must be a pure function of
// (spec, seed).
func TestDeterminismAllScopedPaths(t *testing.T) {
	want := map[string]bool{
		"odeproto/internal/sim":      true,
		"odeproto/internal/harness":  true,
		"odeproto/internal/asyncnet": true,
		"odeproto/internal/mt19937":  true,
		"odeproto/internal/stats":    true,
	}
	if len(determinismPaths) != len(want) {
		t.Fatalf("determinismPaths has %d entries, want %d", len(determinismPaths), len(want))
	}
	for _, p := range determinismPaths {
		if !want[p] {
			t.Errorf("unexpected scoped path %q", p)
		}
	}
}
