package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
)

// noblocklockPaths are the request-serving packages where a mutex held
// across blocking I/O turns one slow disk or peer into a convoy that
// stalls every handler behind the lock.
var noblocklockPaths = []string{
	"odeproto/internal/service",
	"odeproto/internal/cluster",
}

// AnalyzerNoblocklock forbids blocking operations while holding a mutex
// in the request-serving packages:
//
//   - channel sends and receives, unless inside a select with a default
//     case (the bounded-queue try-send idiom in Submit is the canonical
//     allowed form);
//   - calls into net, net/http, time.Sleep, file/disk I/O (os file ops,
//     io.Copy, io.ReadAll), and the durable store (odeproto/internal/
//     store methods: Append fsyncs, PutResult writes and renames).
//
// A critical section runs from a Lock/RLock statement to the matching
// Unlock/RUnlock in the same block, or — after the lock-then-defer idiom
// `mu.Lock(); defer mu.Unlock()` — to the end of that block. Function
// literals inside the section are not analyzed (a spawned goroutine does
// not hold the caller's lock); the store package itself is exempt, where
// holding the store mutex across the WAL fsync is the documented design.
var AnalyzerNoblocklock = &Analyzer{
	Name: "noblocklock",
	Doc: `no blocking I/O or channel operations while holding a mutex

In the request-serving packages, flags network/disk I/O, store calls,
time.Sleep, and channel sends/receives (outside select-with-default)
between a Lock and its Unlock. Do the I/O first, then take the lock to
publish the outcome — the pattern Submit and stats() already follow.`,
	Run: runNoblocklock,
}

func runNoblocklock(pass *Pass) error {
	if !inScope(pass.Path, noblocklockPaths) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if block, ok := n.(*ast.BlockStmt); ok {
					checkBlockForLockedIO(pass, block)
				}
				return true
			})
		}
	}
	return nil
}

// checkBlockForLockedIO scans one statement list for critical sections
// and flags blocking operations inside them.
func checkBlockForLockedIO(pass *Pass, block *ast.BlockStmt) {
	for i := 0; i < len(block.List); i++ {
		recv, ok := lockCall(pass, block.List[i], "Lock", "RLock")
		if !ok {
			continue
		}
		// Deferred unlock directly after the Lock extends the section to
		// the end of the block.
		end := len(block.List)
		deferred := false
		if i+1 < len(block.List) {
			if ds, ok := block.List[i+1].(*ast.DeferStmt); ok {
				if r, ok := callRecvName(pass, ds.Call, "Unlock", "RUnlock"); ok && r == recv {
					deferred = true
				}
			}
		}
		if !deferred {
			for j := i + 1; j < len(block.List); j++ {
				if r, ok := lockCall(pass, block.List[j], "Unlock", "RUnlock"); ok && r == recv {
					end = j
					break
				}
			}
		}
		start := i + 1
		if deferred {
			start = i + 2
		}
		for j := start; j < end; j++ {
			flagBlockingOps(pass, block.List[j], recv)
		}
		if !deferred && end < len(block.List) {
			i = end
		}
	}
}

// lockCall matches a statement of the form `<expr>.Lock()` (or the given
// method names) on a sync mutex and returns the receiver's printed form.
func lockCall(pass *Pass, stmt ast.Stmt, names ...string) (string, bool) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return "", false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	return callRecvName(pass, call, names...)
}

// callRecvName matches a call to one of the named sync.Mutex/RWMutex
// methods and returns the receiver expression's printed form.
func callRecvName(pass *Pass, call *ast.CallExpr, names ...string) (string, bool) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil {
		return "", false
	}
	match := false
	for _, n := range names {
		if fn.Name() == n {
			match = true
		}
	}
	if !match {
		return "", false
	}
	pkgPath, typeName := recvNamed(fn)
	if pkgPath != "sync" || (typeName != "Mutex" && typeName != "RWMutex") {
		return "", false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	return exprString(pass.Fset, sel.X), true
}

// flagBlockingOps reports blocking operations within one statement of a
// critical section.
func flagBlockingOps(pass *Pass, stmt ast.Stmt, lockRecv string) {
	var inDefaultSelect func(n ast.Node) bool
	selectsWithDefault := map[*ast.SelectStmt]bool{}
	ast.Inspect(stmt, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectStmt); ok {
			for _, c := range sel.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					selectsWithDefault[sel] = true
				}
			}
		}
		return true
	})
	var stack []ast.Node
	inDefaultSelect = func(n ast.Node) bool {
		for i := len(stack) - 1; i >= 0; i-- {
			if sel, ok := stack[i].(*ast.SelectStmt); ok {
				return selectsWithDefault[sel]
			}
		}
		return false
	}
	ast.Inspect(stmt, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a literal's body runs outside this lock hold
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.SendStmt:
			if !inDefaultSelect(n) {
				pass.Reportf(n.Pos(), "channel send while holding %s.Lock(): a full channel blocks every path contending for the lock; use a select with default (try-send) or send after unlocking", lockRecv)
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !inDefaultSelect(n) {
				pass.Reportf(n.Pos(), "channel receive while holding %s.Lock(): an empty channel blocks every path contending for the lock; receive after unlocking or use a select with default", lockRecv)
			}
		case *ast.CallExpr:
			if msg := blockingCallMessage(pass, n); msg != "" {
				pass.Reportf(n.Pos(), "%s while holding %s.Lock(): do the I/O first, then lock to publish the outcome", msg, lockRecv)
			}
		}
		return true
	})
}

// blockingCallMessage classifies calls that can block on the network, the
// disk, or a timer; it returns "" for calls that are safe under a lock.
func blockingCallMessage(pass *Pass, call *ast.CallExpr) string {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	pkg := fn.Pkg().Path()
	recvPkg, recvType := recvNamed(fn)
	switch {
	case pkg == "time" && fn.Name() == "Sleep":
		return "time.Sleep"
	case pkg == "net/http" || recvPkg == "net/http":
		return "net/http call (" + fn.Name() + ")"
	case pkg == "net" || recvPkg == "net":
		return "network call (net." + fn.Name() + ")"
	case recvPkg == "os" && recvType == "File":
		return "file I/O ((*os.File)." + fn.Name() + ")"
	case pkg == "os" && blockingOSFunc(fn.Name()):
		return "file I/O (os." + fn.Name() + ")"
	case pkg == "io" && (fn.Name() == "Copy" || fn.Name() == "CopyBuffer" || fn.Name() == "ReadAll"):
		return "io." + fn.Name()
	case recvPkg == "odeproto/internal/store" || pkg == "odeproto/internal/store":
		return "durable-store call (store." + recvType + "." + fn.Name() + " fsyncs or hits disk)"
	}
	return ""
}

// blockingOSFunc lists the package-level os functions that hit the disk.
func blockingOSFunc(name string) bool {
	switch name {
	case "Open", "OpenFile", "Create", "CreateTemp", "ReadFile", "WriteFile",
		"Rename", "Remove", "RemoveAll", "Mkdir", "MkdirAll", "ReadDir", "Truncate", "Stat":
		return true
	}
	return false
}

// exprString renders a (small) expression for diagnostics.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return "?"
	}
	return buf.String()
}
