// Package lint implements odelint, the in-house static-analysis suite
// that enforces this repository's determinism, durability, and
// concurrency contracts at compile time.
//
// The suite is self-contained: it is built on go/ast, go/types, and the
// gc export-data importer from the standard library only (the vendored
// golang.org/x/tools analysis framework is deliberately not a
// dependency), with a loader that shells out to `go list -export` to
// resolve stdlib and sibling-package type information. The public
// surface mirrors the x/tools framework — Analyzer, Pass, Diagnostic —
// so analyzers could migrate to it mechanically if the dependency ever
// lands.
//
// # Contracts enforced
//
// determinism — the simulation core (internal/sim, internal/harness,
// internal/asyncnet, internal/mt19937, internal/stats) must be a pure
// function of the job spec and seed. Wall-clock reads (time.Now,
// time.Since), the process-global math/rand source, map iteration whose
// order can reach output (slice appends, RNG draws, stream writes,
// float accumulation, early returns naming the key), and goroutine
// fan-in that merges results in completion order are all flagged. The
// sorted-keys idiom (collect keys, sort, range the slice) and
// indexed-slot fan-in (results[i] = ...) are the blessed alternatives.
//
// fsyncorder — the durable store (internal/store, plus the service's
// persistence glue) must order writes so a crash at any point is
// recoverable: a file write must be Synced before the file is renamed
// into place, and a job's "done" journal record must not be appended
// before its result blob is durably written (cache hits, which journal
// done with Cached: true against an already-durable blob, are exempt).
//
// closecheck — errors from Close/Sync on writable *os.File handles and
// Close/Flush on buffered writers must be checked: the kernel and the
// buffer are allowed to defer the failing write into exactly those
// calls. Unchecked http.ResponseWriter writes inside streaming loops
// are flagged in the serving packages. Assigning to _ is the accepted
// explicit-discard idiom for error-path cleanup.
//
// cachekey — every exported field of service.JobSpec must be consumed
// by the canonical cache-key serializer (cacheKey / compileRequest).
// The content-addressed result store and the cluster's hash routing are
// only sound if the key captures everything that shapes a job's output.
//
// noblocklock — the request-serving packages (internal/service,
// internal/cluster) must not perform network/disk I/O, store calls, or
// blocking channel operations while holding a mutex. Select-with-default
// try-sends are allowed; function literals are assumed to run outside
// the lock hold.
//
// # Suppression
//
// A finding is suppressed by a directive on the flagged line or the
// line above:
//
//	//lint:ignore <analyzer>[,<analyzer>|*] <reason>
//
// The reason is mandatory; a directive without one is itself reported.
// There is no blanket off switch — every exemption is a reviewable,
// justified line in the diff.
//
// The suite runs via cmd/odelint (go run ./cmd/odelint ./...) and is a
// required CI step next to go vet.
package lint
