package lint

import (
	"go/ast"
	"go/types"
)

// determinismPaths are the deterministic hot paths: every package whose
// output the repo pins byte-identical across worker counts and runs. The
// asyncnet package is included whole — its wallclock substrate is
// documented as nondeterministic, but it keeps no wall-clock reads or
// global RNG either (virtual time is modeled as time.Duration values, and
// all randomness flows through seeded mt19937 streams), so the contract
// holds package-wide.
var determinismPaths = []string{
	"odeproto/internal/sim",
	"odeproto/internal/harness",
	"odeproto/internal/asyncnet",
	"odeproto/internal/mt19937",
	"odeproto/internal/stats",
}

// AnalyzerDeterminism enforces the sweep determinism contract: no hidden
// nondeterminism sources in the packages whose output must be a pure
// function of (spec, seed).
var AnalyzerDeterminism = &Analyzer{
	Name: "determinism",
	Doc: `forbid nondeterminism sources in the deterministic hot paths

Flags, in the packages the determinism contract covers:
  - wall-clock reads (time.Now, time.Since);
  - the global math/rand generator (top-level rand.Intn & co.; seeded
    local sources via rand.New are fine, though the repo uses mt19937);
  - map iteration whose order can reach output: appending inside a
    range-over-map (except the sorted-keys idiom of collecting only the
    keys), sends, floating-point accumulation (float addition is not
    associative, so the sum depends on iteration order), RNG draws (the
    draw sequence becomes map-ordered), writes to an io.Writer, and
    returns that leak the iteration's key or value;
  - goroutine fan-in that merges results in completion order: appending
    to a shared slice from inside a go statement, or appending received
    channel values in a loop. The allowed idiom is an indexed slot per
    job (results[i] = ...), which is order-independent.`,
	Run: runDeterminism,
}

func runDeterminism(pass *Pass) error {
	if !inScope(pass.Path, determinismPaths) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkForbiddenCall(pass, n)
			case *ast.RangeStmt:
				if t, ok := pass.Info.Types[n.X]; ok {
					if _, isMap := t.Type.Underlying().(*types.Map); isMap {
						checkMapRange(pass, n)
					}
					if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
						checkChanFanIn(pass, n)
					}
				}
			case *ast.GoStmt:
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					checkGoroutineFanIn(pass, lit)
				}
			}
			return true
		})
	}
	return nil
}

// checkForbiddenCall flags wall-clock reads and the global math/rand RNG.
func checkForbiddenCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
			switch fn.Name() {
			case "Now", "Since":
				pass.Reportf(call.Pos(), "time.%s in a deterministic path: results must be a pure function of (spec, seed), not wall-clock time", fn.Name())
			}
		}
	case "math/rand", "math/rand/v2":
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() != nil {
			return // methods on a local *rand.Rand draw from a seeded source
		}
		switch fn.Name() {
		case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			return // constructors for local, seedable sources
		}
		pass.Reportf(call.Pos(), "global math/rand RNG (rand.%s) in a deterministic path: draw from a per-job seeded source (internal/mt19937) instead", fn.Name())
	}
}

// rangeVarObjs resolves the key/value loop variables of a range statement.
func rangeVarObjs(pass *Pass, rng *ast.RangeStmt) (key, val types.Object) {
	resolve := func(e ast.Expr) types.Object {
		id, ok := e.(*ast.Ident)
		if !ok {
			return nil
		}
		if obj := pass.Info.Defs[id]; obj != nil {
			return obj
		}
		return pass.Info.Uses[id]
	}
	if rng.Key != nil {
		key = resolve(rng.Key)
	}
	if rng.Value != nil {
		val = resolve(rng.Value)
	}
	return key, val
}

// checkMapRange flags order-sensitive operations inside a range over a
// map. Order-independent bodies — copying into another map, integer
// accumulation, deletions, counting — pass untouched.
func checkMapRange(pass *Pass, rng *ast.RangeStmt) {
	key, val := rangeVarObjs(pass, rng)
	if isSortedKeysIdiom(pass, rng, key, val) {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if isBuiltinAppend(pass.Info, n) {
				pass.Reportf(n.Pos(), "append inside a range over a map builds a slice in map-iteration order; collect and sort the keys first (the sorted-keys idiom), or use an order-independent structure")
				return true
			}
			if rngRecv, name := rngDrawCall(pass.Info, n); rngRecv {
				pass.Reportf(n.Pos(), "RNG draw (%s) inside a range over a map consumes the stream in map-iteration order; iterate a deterministically ordered slice instead", name)
				return true
			}
			if isWriterCall(pass.Info, n) {
				pass.Reportf(n.Pos(), "write to an io.Writer inside a range over a map emits output in map-iteration order; iterate sorted keys instead")
				return true
			}
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send inside a range over a map publishes values in map-iteration order; iterate sorted keys instead")
		case *ast.AssignStmt:
			checkFloatAccumulation(pass, rng, n)
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if usesObject(pass.Info, res, key) || usesObject(pass.Info, res, val) {
					pass.Reportf(n.Pos(), "return inside a range over a map leaks the iteration's key/value: which entry is returned (e.g. which validation error fires first) depends on map order; iterate sorted keys instead")
					break
				}
			}
		}
		return true
	})
}

// isSortedKeysIdiom recognizes the allowed key-collection loop: a body
// consisting solely of appends of the key variable (possibly through a
// conversion) into slices, for sorting afterwards.
func isSortedKeysIdiom(pass *Pass, rng *ast.RangeStmt, key, val types.Object) bool {
	if key == nil || val != nil || len(rng.Body.List) == 0 {
		return false
	}
	for _, stmt := range rng.Body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isBuiltinAppend(pass.Info, call) || len(call.Args) != 2 {
			return false
		}
		arg := ast.Unparen(call.Args[1])
		// Allow a single conversion wrapper: append(keys, string(k)).
		if conv, ok := arg.(*ast.CallExpr); ok && len(conv.Args) == 1 {
			if tv, ok := pass.Info.Types[conv.Fun]; ok && tv.IsType() {
				arg = ast.Unparen(conv.Args[0])
			}
		}
		id, ok := arg.(*ast.Ident)
		if !ok || (pass.Info.Uses[id] != key && pass.Info.Defs[id] != key) {
			return false
		}
	}
	return true
}

// checkFloatAccumulation flags op-assignments that fold floating-point
// values into a variable declared outside the loop: float addition is not
// associative, so the folded total depends on map-iteration order.
func checkFloatAccumulation(pass *Pass, rng *ast.RangeStmt, as *ast.AssignStmt) {
	switch as.Tok.String() {
	case "+=", "-=", "*=", "/=":
	default:
		return
	}
	if len(as.Lhs) != 1 {
		return
	}
	lhs := as.Lhs[0]
	tv, ok := pass.Info.Types[lhs]
	if !ok {
		return
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsFloat == 0 {
		return
	}
	// Accumulating into a map entry (out[k] += v) is per-key, hence
	// order-independent; only a scalar accumulator leaks the order.
	if _, isIndex := ast.Unparen(lhs).(*ast.IndexExpr); isIndex {
		return
	}
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		obj := pass.Info.Uses[id]
		if obj == nil {
			obj = pass.Info.Defs[id]
		}
		if obj != nil && !declaredOutside(obj, rng) {
			return
		}
	}
	pass.Reportf(as.Pos(), "floating-point accumulation inside a range over a map: float addition is not associative, so the result depends on map-iteration order; iterate sorted keys instead")
}

// checkGoroutineFanIn flags appends to shared slices from inside a go
// statement: the slice ends up ordered by goroutine completion (and the
// append itself races). The allowed idiom is an indexed slot per job.
func checkGoroutineFanIn(pass *Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isBuiltinAppend(pass.Info, call) || i >= len(as.Lhs) {
				continue
			}
			id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.Info.Uses[id]
			if obj == nil {
				obj = pass.Info.Defs[id]
			}
			if obj != nil && declaredOutside(obj, lit) {
				pass.Reportf(as.Pos(), "append to %s from inside a goroutine merges results in completion order (and races); write each result to its own indexed slot instead", id.Name)
			}
		}
		return true
	})
}

// checkChanFanIn flags loops that append everything received from a
// channel to an outer slice — with more than one sender that is a
// completion-order merge.
func checkChanFanIn(pass *Pass, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isBuiltinAppend(pass.Info, call) || i >= len(as.Lhs) {
				continue
			}
			id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.Info.Uses[id]
			if obj == nil {
				obj = pass.Info.Defs[id]
			}
			if obj != nil && declaredOutside(obj, rng) {
				pass.Reportf(as.Pos(), "append of received values to %s merges results in channel-arrival order; with concurrent senders that is completion order — use an indexed slot per job instead", id.Name)
			}
		}
		return true
	})
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// rngDrawCall reports whether call draws from an RNG stream: a method on
// *math/rand.Rand or on this repo's mt19937 generator.
func rngDrawCall(info *types.Info, call *ast.CallExpr) (bool, string) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false, ""
	}
	pkgPath, typeName := recvNamed(fn)
	switch {
	case pkgPath == "math/rand" && typeName == "Rand",
		pkgPath == "math/rand/v2" && typeName == "Rand",
		pkgPath == "odeproto/internal/mt19937" && typeName == "MT19937":
		return true, typeName + "." + fn.Name()
	}
	return false, ""
}

// isWriterCall reports whether call writes to an io.Writer: a Write-family
// method on a writer, or an fmt.Fprint* with a writer destination.
func isWriterCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		switch fn.Name() {
		case "Fprint", "Fprintf", "Fprintln":
			return true
		}
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	switch fn.Name() {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		return implementsWriter(sig.Recv().Type())
	}
	return false
}
