package lint

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		AnalyzerDeterminism,
		AnalyzerFsyncorder,
		AnalyzerClosecheck,
		AnalyzerCachekey,
		AnalyzerNoblocklock,
	}
}

// ByName resolves a comma-separated analyzer name list ("" → all).
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range splitComma(names) {
		a, ok := byName[name]
		if !ok {
			return nil, &UnknownAnalyzerError{Name: name}
		}
		out = append(out, a)
	}
	return out, nil
}

// UnknownAnalyzerError names an analyzer that does not exist.
type UnknownAnalyzerError struct{ Name string }

func (e *UnknownAnalyzerError) Error() string {
	return "unknown analyzer " + e.Name + " (have determinism, fsyncorder, closecheck, cachekey, noblocklock)"
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
