package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// cachekeySpecType is the spec struct whose every exported field must
// reach the cache key, and cachekeySerializers are the functions allowed
// to consume them: cacheKey hashes the output-shaping knobs directly, and
// compileRequest feeds the compile prefix (Source, Params, ...) into the
// canonical parsed system that cacheKey hashes as the System field.
const cachekeySpecType = "JobSpec"

var cachekeySerializers = map[string]bool{
	"cacheKey":       true,
	"compileRequest": true,
}

// AnalyzerCachekey enforces the cache-key completeness contract: every
// exported field of service.JobSpec must be consumed by the canonical
// cache-key serializer. The content-addressed result store — local LRU,
// durable blobs, and the cluster ring that routes by the same hash — is
// only sound if the key captures everything that shapes a job's output;
// an exported spec knob the serializer never reads would alias two
// distinct jobs to one SHA-256 key and poison every cache layer at once.
var AnalyzerCachekey = &Analyzer{
	Name: "cachekey",
	Doc: `every exported JobSpec field must reach the cache-key serializer

Applies to any package declaring a JobSpec struct with a cacheKey
method. Each exported field must be read (as a selector on the spec) by
cacheKey or compileRequest; a field neither consumes is reported at its
declaration. A field that genuinely must not affect the key (none exist
today) would carry a //lint:ignore cachekey with its justification.`,
	Run: runCachekey,
}

func runCachekey(pass *Pass) error {
	spec, structType := findSpecStruct(pass)
	if spec == nil {
		return nil // packages without a JobSpec are out of scope
	}

	consumed := map[string]bool{}
	foundSerializer := false
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil {
				continue
			}
			if !cachekeySerializers[fd.Name.Name] || !recvIsType(pass, fd, spec) {
				continue
			}
			foundSerializer = true
			collectSpecFieldReads(pass, fd, spec, consumed)
		}
	}

	// Locate field declaration positions for reporting.
	fieldPos := map[string]ast.Node{}
	var fieldOrder []string
	for i := 0; i < structType.NumFields(); i++ {
		fv := structType.Field(i)
		if fv.Exported() {
			fieldOrder = append(fieldOrder, fv.Name())
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok || ts.Name.Name != cachekeySpecType {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					fieldPos[name.Name] = name
				}
			}
			return false
		})
	}

	if !foundSerializer {
		if n, ok := fieldPos[firstOr(fieldOrder, "")]; ok {
			pass.Reportf(n.Pos(), "%s declares no cache-key serializer (%s): the content-addressed store cannot be sound without one", cachekeySpecType, serializerNames())
		}
		return nil
	}

	for _, name := range fieldOrder {
		if consumed[name] {
			continue
		}
		pos := spec.Pos()
		if n, ok := fieldPos[name]; ok {
			pos = n.Pos()
		}
		pass.Reportf(pos, "%s.%s is not consumed by the cache-key serializer (%s): two specs differing only in %s would alias to one cache key and poison the content-addressed store", cachekeySpecType, name, serializerNames(), name)
	}
	return nil
}

// findSpecStruct locates the package's JobSpec struct type.
func findSpecStruct(pass *Pass) (*types.TypeName, *types.Struct) {
	obj := pass.Pkg.Scope().Lookup(cachekeySpecType)
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil, nil
	}
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		return nil, nil
	}
	return tn, st
}

// recvIsType reports whether fd's receiver is tn (or a pointer to it).
func recvIsType(pass *Pass, fd *ast.FuncDecl, tn *types.TypeName) bool {
	if len(fd.Recv.List) == 0 {
		return false
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	id, ok := t.(*ast.Ident)
	return ok && pass.Info.Uses[id] == tn
}

// collectSpecFieldReads records every field of the spec type read via a
// selector anywhere in fd's body.
func collectSpecFieldReads(pass *Pass, fd *ast.FuncDecl, tn *types.TypeName, consumed map[string]bool) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pass.Info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		recv := selection.Recv()
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
		}
		named, ok := recv.(*types.Named)
		if !ok || named.Obj() != tn {
			return true
		}
		consumed[sel.Sel.Name] = true
		return true
	})
}

func serializerNames() string {
	names := make([]string, 0, len(cachekeySerializers))
	for n := range cachekeySerializers {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, "/")
}

func firstOr(s []string, def string) string {
	if len(s) > 0 {
		return s[0]
	}
	return def
}
