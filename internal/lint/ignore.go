package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignorePrefix introduces an escape-hatch directive:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed on the flagged line or on the line immediately above it. The
// reason is mandatory — the directive exists to document why a contract
// is deliberately waived at one site, and a bare waiver is rejected as a
// diagnostic of its own (there is no way to silence the suite silently).
const ignorePrefix = "//lint:ignore"

// directive is one parsed, well-formed ignore comment.
type directive struct {
	file      string
	line      int
	analyzers []string
}

// collectDirectives scans the files' comments for ignore directives,
// returning the well-formed ones plus a diagnostic for every malformed
// one (missing analyzer name or missing reason).
func collectDirectives(fset *token.FileSet, files []*ast.File) ([]directive, []Diagnostic) {
	var dirs []directive
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lint:ignored — not this directive
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Analyzer: "lint",
						Pos:      pos,
						Message:  "malformed //lint:ignore directive: want \"//lint:ignore <analyzer> <reason>\" — un-reasoned ignores are rejected",
					})
					continue
				}
				dirs = append(dirs, directive{
					file:      pos.Filename,
					line:      pos.Line,
					analyzers: strings.Split(fields[0], ","),
				})
			}
		}
	}
	return dirs, bad
}

// suppressed reports whether a directive covers the diagnostic: same file,
// matching analyzer name, on the diagnostic's line or the line above it.
func suppressed(d Diagnostic, dirs []directive) bool {
	for _, dir := range dirs {
		if dir.file != d.Pos.Filename {
			continue
		}
		if dir.line != d.Pos.Line && dir.line != d.Pos.Line-1 {
			continue
		}
		for _, a := range dir.analyzers {
			if a == d.Analyzer || a == "*" {
				return true
			}
		}
	}
	return false
}
