package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
)

func TestExemplarRenderParseRoundTrip(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.1, 1, 10})
	idLow, idMid, idInf := NewTraceID(), NewTraceID(), NewTraceID()
	h.ObserveTraced(0.05, idLow)
	h.ObserveTraced(0.5, NewTraceID())
	h.ObserveTraced(0.7, idMid) // overwrites the 0.5 exemplar in-bucket
	h.Observe(3)                // untraced: bucket le=10 keeps no exemplar
	h.ObserveTraced(99, idInf)
	h.ObserveTraced(0.2, "not-a-trace-id") // counted, but no exemplar stored

	text := render(t, r)
	fams := parse(t, text)
	f := fams["test_latency_seconds"]
	if _, err := CheckHistogram(f); err != nil {
		t.Fatalf("CheckHistogram: %v", err)
	}
	wantByLE := map[string]struct {
		id    string
		value float64
	}{
		"0.1":  {idLow, 0.05},
		"1":    {idMid, 0.7},
		"+Inf": {idInf, 99},
	}
	seen := 0
	for _, s := range f.Samples {
		if s.Name != "test_latency_seconds_bucket" {
			continue
		}
		le := s.Labels["le"]
		want, ok := wantByLE[le]
		if !ok {
			if s.Exemplar != nil {
				t.Fatalf("bucket le=%s has unexpected exemplar %+v", le, s.Exemplar)
			}
			continue
		}
		if s.Exemplar == nil {
			t.Fatalf("bucket le=%s lost its exemplar:\n%s", le, text)
		}
		if got := s.Exemplar.Labels["trace_id"]; got != want.id {
			t.Fatalf("bucket le=%s exemplar trace = %q, want %q", le, got, want.id)
		}
		if s.Exemplar.Value != want.value {
			t.Fatalf("bucket le=%s exemplar value = %v, want %v", le, s.Exemplar.Value, want.value)
		}
		seen++
	}
	if seen != len(wantByLE) {
		t.Fatalf("exemplar buckets seen = %d, want %d", seen, len(wantByLE))
	}
	// The exemplar suffix must not confuse scalar parsing of the line.
	if v, ok := f.Value("test_latency_seconds_count", nil); !ok || v != 6 {
		t.Fatalf("_count = %v, %v; want 6", v, ok)
	}
}

func TestExemplarOutsideBucketRejected(t *testing.T) {
	id := NewTraceID()
	bad := fmt.Sprintf("# HELP test_x x\n# TYPE test_x histogram\n"+
		"test_x_bucket{le=\"1\"} 1 # {trace_id=%q} 5\n"+
		"test_x_bucket{le=\"+Inf\"} 1\ntest_x_sum 5\ntest_x_count 1\n", id)
	fams, err := ParseExposition(strings.NewReader(bad))
	if err != nil {
		t.Fatalf("syntactically valid exposition rejected at parse: %v", err)
	}
	if _, err := CheckHistogram(fams["test_x"]); err == nil {
		t.Fatal("CheckHistogram accepted an exemplar value outside its bucket")
	}
	badID := "# HELP test_y y\n# TYPE test_y histogram\n" +
		"test_y_bucket{le=\"1\"} 1 # {trace_id=\"nothex\"} 0.5\n" +
		"test_y_bucket{le=\"+Inf\"} 1\ntest_y_sum 0.5\ntest_y_count 1\n"
	fams, err = ParseExposition(strings.NewReader(badID))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := CheckHistogram(fams["test_y"]); err == nil {
		t.Fatal("CheckHistogram accepted a malformed exemplar trace_id")
	}
}

// TestExemplarRace exercises concurrent traced observation against
// concurrent rendering and exemplar reads; it exists to fail under
// -race if exemplar storage ever stops being atomic.
func TestExemplarRace(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_race_seconds", "Race.", DefBuckets)
	ids := make([]string, 8)
	for i := range ids {
		ids[i] = NewTraceID()
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.ObserveTraced(float64(i%60)/10, ids[(g+i)%len(ids)])
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			if err := r.Render(io.Discard); err != nil {
				t.Errorf("Render: %v", err)
				return
			}
			for b := 0; b <= len(DefBuckets); b++ {
				if e := h.BucketExemplar(b); e != nil && !ValidTraceID(e.TraceID) {
					t.Errorf("torn exemplar read: %+v", e)
					return
				}
			}
		}
	}()
	wg.Wait()
	if _, err := CheckHistogram(parse(t, render(t, r))["test_race_seconds"]); err != nil {
		t.Fatalf("CheckHistogram after race: %v", err)
	}
}

// benchRegistry builds a registry shaped like the daemon's: a few
// counters/gauges plus labeled histograms. traced controls whether the
// histograms carry exemplars on every bucket.
func benchRegistry(traced bool) *Registry {
	r := NewRegistry()
	r.Counter("bench_requests_total", "Requests.").Add(12345)
	r.Gauge("bench_queue_depth", "Depth.").Set(17)
	vec := r.HistogramVec("bench_latency_seconds", "Latency.", DefBuckets, "op")
	for _, op := range []string{"submit", "status", "stream", "results"} {
		h := vec.With(op)
		for i, upper := range DefBuckets {
			v := upper * 0.9
			if traced {
				h.ObserveTraced(v, NewTraceID())
			} else {
				h.Observe(v)
			}
			_ = i
		}
		if traced {
			h.ObserveTraced(DefBuckets[len(DefBuckets)-1]*2, NewTraceID())
		} else {
			h.Observe(DefBuckets[len(DefBuckets)-1] * 2)
		}
	}
	return r
}

func BenchmarkRender(b *testing.B) {
	r := benchRegistry(false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := r.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRenderWithExemplars(b *testing.B) {
	r := benchRegistry(true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := r.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
