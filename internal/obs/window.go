package obs

import (
	"math"
	"sync"
	"time"
)

// This file is the windowed view over the registry's monotone
// primitives: periodic snapshots of a histogram's cumulative buckets (or
// a counter's total) kept in a time-indexed ring, so quantiles and rates
// can be computed over the last 5m/30m/6h instead of process lifetime.
// Nothing here reads the wall clock — callers supply every timestamp, so
// the SLO tests drive the rings with a fake clock.

// HistogramSnapshot is one point-in-time copy of a histogram: the bucket
// upper bounds (excluding +Inf), the cumulative counts (one per bound
// plus the +Inf total last), and the running sum. Subtracting two
// snapshots yields the distribution of the observations between them.
type HistogramSnapshot struct {
	Upper []float64
	Cum   []int64
	Sum   float64
}

// Snapshot returns the histogram's current cumulative state. The counts
// come from one pass, so within a snapshot they are monotone and the
// last entry equals the total observation count.
func (h *Histogram) Snapshot() HistogramSnapshot {
	cum, sum := h.snapshot()
	return HistogramSnapshot{Upper: h.upper, Cum: cum, Sum: sum}
}

// Count returns the snapshot's total observation count.
func (s HistogramSnapshot) Count() int64 {
	if len(s.Cum) == 0 {
		return 0
	}
	return s.Cum[len(s.Cum)-1]
}

// Sub returns s minus old: the distribution of observations recorded
// between the two snapshots. Both must come from the same histogram
// (identical bucket bounds). Concurrent observation between the two
// reads can make individual bucket deltas transiently negative; those
// clamp to the previous cumulative value so the result stays monotone.
func (s HistogramSnapshot) Sub(old HistogramSnapshot) HistogramSnapshot {
	d := HistogramSnapshot{Upper: s.Upper, Cum: make([]int64, len(s.Cum)), Sum: s.Sum - old.Sum}
	prev := int64(0)
	for i := range s.Cum {
		v := s.Cum[i]
		if i < len(old.Cum) {
			v -= old.Cum[i]
		}
		if v < prev {
			v = prev
		}
		d.Cum[i] = v
		prev = v
	}
	return d
}

// Quantile estimates the q-quantile (q in [0,1]) of the snapshot by
// monotone linear interpolation within the bucket holding the target
// rank — the same estimator as PromQL's histogram_quantile, so the
// error is bounded by the width of that bucket. Observations in the
// +Inf bucket clamp to the highest finite bound. An empty snapshot
// returns NaN.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	total := s.Count()
	if total == 0 || len(s.Upper) == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	for i, upper := range s.Upper {
		if float64(s.Cum[i]) >= rank {
			lower, prevCum := 0.0, int64(0)
			if i > 0 {
				lower, prevCum = s.Upper[i-1], s.Cum[i-1]
			}
			in := s.Cum[i] - prevCum
			if in == 0 {
				return upper
			}
			return lower + (upper-lower)*(rank-float64(prevCum))/float64(in)
		}
	}
	// Rank lands in the +Inf bucket: the highest finite bound is the best
	// statement the fixed buckets can make.
	return s.Upper[len(s.Upper)-1]
}

// FractionOver estimates the fraction of the snapshot's observations
// strictly above threshold, interpolating linearly within the bucket
// containing the threshold. An empty snapshot returns 0 — no traffic
// burns no error budget.
func (s HistogramSnapshot) FractionOver(threshold float64) float64 {
	total := s.Count()
	if total == 0 || len(s.Upper) == 0 {
		return 0
	}
	below := float64(s.Cum[len(s.Upper)-1]) // everything in finite buckets
	for i, upper := range s.Upper {
		if threshold <= upper {
			lower, prevCum := 0.0, int64(0)
			if i > 0 {
				lower, prevCum = s.Upper[i-1], s.Cum[i-1]
			}
			in := float64(s.Cum[i] - prevCum)
			below = float64(prevCum)
			if upper > lower {
				below += in * (threshold - lower) / (upper - lower)
			}
			break
		}
	}
	over := float64(total) - below
	if over < 0 {
		over = 0
	}
	return over / float64(total)
}

// windowEntry is one ring slot: a snapshot and when it was taken.
type windowEntry[T any] struct {
	at   time.Time
	snap T
}

// windowRing keeps timestamped snapshots covering at most retention,
// evicting older entries as new ones arrive.
type windowRing[T any] struct {
	mu        sync.Mutex
	retention time.Duration
	entries   []windowEntry[T]
}

func (r *windowRing[T]) tick(now time.Time, snap T) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries = append(r.entries, windowEntry[T]{at: now, snap: snap})
	cut := now.Add(-r.retention)
	drop := 0
	for drop < len(r.entries)-1 && r.entries[drop+1].at.Before(cut) {
		// Keep one entry at or before the cut: it is the baseline that
		// makes the full retention window computable.
		drop++
	}
	if drop > 0 {
		r.entries = append(r.entries[:0], r.entries[drop:]...)
	}
}

// baseline returns the newest entry at least d old (relative to now), or
// the oldest entry when the ring is younger than d. ok is false only
// while the ring is empty (no tick yet).
func (r *windowRing[T]) baseline(now time.Time, d time.Duration) (windowEntry[T], bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.entries) == 0 {
		var zero windowEntry[T]
		return zero, false
	}
	cut := now.Add(-d)
	best := r.entries[0]
	for _, e := range r.entries[1:] {
		if e.at.After(cut) {
			break
		}
		best = e
	}
	return best, true
}

// WindowedHistogram derives time-windowed distributions from a live
// histogram: Tick records a periodic baseline snapshot, and Window
// subtracts the baseline nearest the requested age from the live state.
// The window resolution is therefore the tick period, and a window
// longer than the ring has lived degrades gracefully to "since start"
// (the returned coverage says which).
type WindowedHistogram struct {
	h    *Histogram
	ring windowRing[HistogramSnapshot]
}

// NewWindowedHistogram wraps h, retaining ticked baselines for at least
// retention (choose the longest window any caller will ask for).
func NewWindowedHistogram(h *Histogram, retention time.Duration) *WindowedHistogram {
	return &WindowedHistogram{h: h, ring: windowRing[HistogramSnapshot]{retention: retention}}
}

// Tick records a baseline snapshot at now. Call it on a fixed cadence —
// the SLO evaluator's loop — or directly from tests with a fake clock.
func (w *WindowedHistogram) Tick(now time.Time) {
	w.ring.tick(now, w.h.Snapshot())
}

// Window returns the distribution of observations over (roughly) the
// last d: the live snapshot minus the baseline nearest now-d. covered
// reports the actual span (shorter than d while the process is young).
// Before the first Tick the window is the histogram's whole lifetime
// with zero coverage claimed.
func (w *WindowedHistogram) Window(now time.Time, d time.Duration) (delta HistogramSnapshot, covered time.Duration) {
	cur := w.h.Snapshot()
	base, ok := w.ring.baseline(now, d)
	if !ok {
		return cur, 0
	}
	return cur.Sub(base.snap), now.Sub(base.at)
}

// WindowedCounter is the counter analogue of WindowedHistogram: Tick
// records baselines, Window returns the increase over the last d.
type WindowedCounter struct {
	c    *Counter
	ring windowRing[int64]
}

// NewWindowedCounter wraps c, retaining baselines for at least retention.
func NewWindowedCounter(c *Counter, retention time.Duration) *WindowedCounter {
	return &WindowedCounter{c: c, ring: windowRing[int64]{retention: retention}}
}

// Tick records a baseline at now.
func (w *WindowedCounter) Tick(now time.Time) {
	w.ring.tick(now, w.c.Value())
}

// Window returns the counter's increase over (roughly) the last d and
// the actual span covered.
func (w *WindowedCounter) Window(now time.Time, d time.Duration) (delta int64, covered time.Duration) {
	cur := w.c.Value()
	base, ok := w.ring.baseline(now, d)
	if !ok {
		return cur, 0
	}
	d2 := cur - base.snap
	if d2 < 0 {
		d2 = 0
	}
	return d2, now.Sub(base.at)
}
