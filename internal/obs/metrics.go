package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// maxChildren caps the label sets of one family. The registry only
// accepts bounded label sets (see the package doc's cardinality rules);
// hitting this cap means request-derived data leaked into a label, and
// panicking at the introduction site beats growing without bound.
const maxChildren = 1024

// DefBuckets are the default latency buckets (seconds): sub-millisecond
// cache hits through multi-minute sweeps.
var DefBuckets = []float64{
	0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// metricKind is the exposition TYPE of a family.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// Registry holds metric families and renders them in the Prometheus text
// exposition format. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family

	// renderErrs counts Render failures surfaced through Handler — a
	// scrape write error is not silently dropped, it is itself a metric.
	renderErrs *Counter
}

// family is one registered metric name: its metadata plus its children
// (one per label-value combination; exactly one for label-less metrics).
type family struct {
	name    string
	help    string
	kind    metricKind
	labels  []string
	buckets []float64 // histograms only

	mu       sync.Mutex
	children map[string]*child
	keys     []string // sorted lazily at render

	counterFn func() int64   // func-backed counter family (no labels)
	gaugeFn   func() float64 // func-backed gauge family (no labels)
}

// child is one time series of a family.
type child struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	r := &Registry{families: make(map[string]*family)}
	r.renderErrs = r.Counter("odeproto_metrics_render_errors_total",
		"Failed /metrics renders (scrape write errors).")
	return r
}

// register creates a family, panicking on invalid or duplicate names —
// both are programmer errors at a fixed call site, never data-dependent.
func (r *Registry) register(name, help string, kind metricKind, labels []string, buckets []float64) *family {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validLabelName(l) {
			panic(fmt.Sprintf("obs: invalid label name %q on %s", l, name))
		}
	}
	if kind == kindHistogram {
		if len(buckets) == 0 {
			panic(fmt.Sprintf("obs: histogram %s has no buckets", name))
		}
		if !sort.Float64sAreSorted(buckets) {
			panic(fmt.Sprintf("obs: histogram %s buckets are not ascending", name))
		}
		for _, l := range labels {
			if l == "le" {
				panic(fmt.Sprintf("obs: histogram %s reserves the le label", name))
			}
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.families[name]; ok {
		panic(fmt.Sprintf("obs: metric %s registered twice", name))
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     kind,
		labels:   append([]string(nil), labels...),
		buckets:  append([]float64(nil), buckets...),
		children: make(map[string]*child),
	}
	r.families[name] = f
	return f
}

// childFor returns (creating on first use) the child for the given label
// values. Callers must pass exactly one value per registered label, drawn
// from a bounded set.
func (f *family) childFor(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	if len(f.children) >= maxChildren {
		panic(fmt.Sprintf("obs: metric %s exceeds %d label sets — an unbounded label value leaked in (see the package cardinality rules)", f.name, maxChildren))
	}
	c := &child{labelValues: append([]string(nil), values...)}
	switch f.kind {
	case kindCounter:
		c.counter = &Counter{}
	case kindGauge:
		c.gauge = &Gauge{}
	case kindHistogram:
		c.hist = newHistogram(f.buckets)
	}
	f.children[key] = c
	f.keys = append(f.keys, key)
	return c
}

// Counter registers a label-less counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, kindCounter, nil, nil).childFor(nil).counter
}

// CounterVec registers a counter family with labels.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, kindCounter, labels, nil)}
}

// CounterFunc registers a counter family whose value is sampled from fn
// at scrape time — for monotonic totals another layer already tracks.
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	r.register(name, help, kindCounter, nil, nil).counterFn = fn
}

// Gauge registers a label-less gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge, nil, nil).childFor(nil).gauge
}

// GaugeVec registers a gauge family with labels.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, kindGauge, labels, nil)}
}

// GaugeFunc registers a gauge family whose value is sampled from fn at
// scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, kindGauge, nil, nil).gaugeFn = fn
}

// Histogram registers a label-less fixed-bucket histogram. Buckets are
// upper bounds in ascending order; +Inf is implicit.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.register(name, help, kindHistogram, nil, buckets).childFor(nil).hist
}

// HistogramVec registers a histogram family with labels.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.register(name, help, kindHistogram, labels, buckets)}
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (one per label, in
// registration order), creating it on first use.
func (v *CounterVec) With(values ...string) *Counter { return v.f.childFor(values).counter }

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.childFor(values).gauge }

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.childFor(values).hist }

// Counter is a monotonically increasing integer event count.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative n panics (counters are monotonic by contract).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("obs: counter decremented")
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that moves both ways, stored as float64 bits.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the value by d (d may be negative).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Exemplar links a histogram bucket to the most recent traced
// observation that landed in it: the value and the trace ID under which
// it was recorded. One exemplar per bucket, overwritten on each traced
// observation — bounded by construction, like every label set (see the
// package cardinality rules).
type Exemplar struct {
	TraceID string
	Value   float64
}

// Histogram counts observations into fixed cumulative buckets.
type Histogram struct {
	upper     []float64 // ascending upper bounds, excluding +Inf
	counts    []atomic.Int64
	inf       atomic.Int64
	sum       atomic.Uint64              // float64 bits, CAS-accumulated
	exemplars []atomic.Pointer[Exemplar] // one per bucket, +Inf last
}

func newHistogram(buckets []float64) *Histogram {
	return &Histogram{
		upper:     buckets,
		counts:    make([]atomic.Int64, len(buckets)),
		exemplars: make([]atomic.Pointer[Exemplar], len(buckets)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	idx := sort.SearchFloat64s(h.upper, v) // first bucket with upper >= v
	if idx < len(h.counts) {
		h.counts[idx].Add(1)
	} else {
		h.inf.Add(1)
	}
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveTraced records one value and retains {traceID, v} as the
// exemplar of the bucket v lands in, rendered in OpenMetrics exemplar
// syntax on /metrics so a scraped latency bucket links back to a
// concrete trace. Malformed trace IDs observe without an exemplar —
// exemplars are diagnostics, never worth rejecting the observation over.
func (h *Histogram) ObserveTraced(v float64, traceID string) {
	h.Observe(v)
	if !ValidTraceID(traceID) {
		return
	}
	idx := sort.SearchFloat64s(h.upper, v)
	h.exemplars[idx].Store(&Exemplar{TraceID: traceID, Value: v})
}

// BucketExemplar returns the retained exemplar for bucket i (counting
// the +Inf bucket as the last index), or nil if no traced observation
// has landed there.
func (h *Histogram) BucketExemplar(i int) *Exemplar {
	if i < 0 || i >= len(h.exemplars) {
		return nil
	}
	return h.exemplars[i].Load()
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var total int64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total + h.inf.Load()
}

// snapshot returns cumulative bucket counts (one per upper bound, then
// +Inf) and the running sum. The cumulative counts come from one pass, so
// within a snapshot they are monotone and the +Inf entry equals _count.
func (h *Histogram) snapshot() (cum []int64, sum float64) {
	cum = make([]int64, len(h.counts)+1)
	var running int64
	for i := range h.counts {
		running += h.counts[i].Load()
		cum[i] = running
	}
	cum[len(h.counts)] = running + h.inf.Load()
	return cum, math.Float64frombits(h.sum.Load())
}

// Render writes every family in the text exposition format, families
// sorted by name and series by label values, so scrapes are
// deterministic. Every write error is returned: a scrape that hangs up
// mid-body must surface, not truncate silently.
func (r *Registry) Render(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()
	for _, f := range fams {
		if err := f.render(w); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves GET /metrics from the registry. Render errors are
// counted (odeproto_metrics_render_errors_total) — by the time a write
// fails the status line is long gone, so the counter and the caller's
// logs are where the failure surfaces.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.Render(w); err != nil {
			r.renderErrs.Inc()
		}
	})
}

func (f *family) render(w io.Writer) error {
	f.mu.Lock()
	sort.Strings(f.keys)
	kids := make([]*child, 0, len(f.keys))
	for _, k := range f.keys {
		kids = append(kids, f.children[k])
	}
	counterFn, gaugeFn := f.counterFn, f.gaugeFn
	f.mu.Unlock()
	// A vec with no series yet still announces its HELP/TYPE header:
	// scrapers (and the CI required-families gate) see every registered
	// family from boot, not only the ones traffic has touched.
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
		return err
	}
	if counterFn != nil {
		_, err := fmt.Fprintf(w, "%s %d\n", f.name, counterFn())
		return err
	}
	if gaugeFn != nil {
		_, err := fmt.Fprintf(w, "%s %s\n", f.name, formatFloat(gaugeFn()))
		return err
	}
	for _, c := range kids {
		if err := f.renderChild(w, c); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) renderChild(w io.Writer, c *child) error {
	base := labelString(f.labels, c.labelValues, "", "")
	switch f.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, base, c.counter.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, base, formatFloat(c.gauge.Value()))
		return err
	case kindHistogram:
		cum, sum := c.hist.snapshot()
		for i, upper := range c.hist.upper {
			le := labelString(f.labels, c.labelValues, "le", formatFloat(upper))
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d%s\n", f.name, le, cum[i],
				exemplarSuffix(c.hist.BucketExemplar(i))); err != nil {
				return err
			}
		}
		le := labelString(f.labels, c.labelValues, "le", "+Inf")
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d%s\n", f.name, le, cum[len(cum)-1],
			exemplarSuffix(c.hist.BucketExemplar(len(c.hist.upper)))); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, base, formatFloat(sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, base, cum[len(cum)-1])
		return err
	}
	return nil
}

// exemplarSuffix renders a bucket's retained exemplar in OpenMetrics
// syntax (` # {trace_id="..."} value`), or "" when the bucket has none.
// Trace IDs are validated hex on the way in, so no escaping can apply.
func exemplarSuffix(e *Exemplar) string {
	if e == nil {
		return ""
	}
	return fmt.Sprintf(" # {trace_id=%q} %s", e.TraceID, formatFloat(e.Value))
}

// labelString renders {a="x",b="y"} (plus an optional extra pair, for
// histogram le), or "" for a label-less series.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraValue))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeHelp(s string) string  { return helpEscaper.Replace(s) }
func escapeLabel(s string) string { return labelEscaper.Replace(s) }

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}
