package obs

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.Render(&b); err != nil {
		t.Fatalf("Render: %v", err)
	}
	return b.String()
}

func parse(t *testing.T, text string) map[string]*MetricFamily {
	t.Helper()
	fams, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseExposition: %v\ninput:\n%s", err, text)
	}
	return fams
}

func TestCounterRenderParseRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_events_total", "Events seen.")
	c.Inc()
	c.Add(4)
	fams := parse(t, render(t, r))
	f := fams["test_events_total"]
	if f == nil || f.Type != "counter" || f.Help != "Events seen." {
		t.Fatalf("family mismatch: %+v", f)
	}
	if v, ok := f.Value("test_events_total", nil); !ok || v != 5 {
		t.Fatalf("value = %v, %v; want 5", v, ok)
	}
	if c.Value() != 5 {
		t.Fatalf("Value() = %d, want 5", c.Value())
	}
}

func TestCounterVecLabels(t *testing.T) {
	r := NewRegistry()
	vec := r.CounterVec("test_ops_total", "Ops.", "op", "result")
	vec.With("get", "hit").Add(3)
	vec.With("get", "miss").Inc()
	vec.With("put", "hit").Add(7)
	fams := parse(t, render(t, r))
	f := fams["test_ops_total"]
	if len(f.Samples) != 3 {
		t.Fatalf("samples = %d, want 3", len(f.Samples))
	}
	if v, _ := f.Value("test_ops_total", map[string]string{"op": "get", "miss": ""}); v != 0 {
		t.Fatalf("bogus label set matched: %v", v)
	}
	if v, ok := f.Value("test_ops_total", map[string]string{"op": "get", "result": "miss"}); !ok || v != 1 {
		t.Fatalf("get/miss = %v, %v; want 1", v, ok)
	}
	if v, ok := f.Value("test_ops_total", map[string]string{"op": "put", "result": "hit"}); !ok || v != 7 {
		t.Fatalf("put/hit = %v, %v; want 7", v, ok)
	}
}

func TestGaugeSetAdd(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_depth", "Depth.")
	g.Set(10)
	g.Add(-2.5)
	if g.Value() != 7.5 {
		t.Fatalf("Value = %v, want 7.5", g.Value())
	}
	fams := parse(t, render(t, r))
	if v, ok := fams["test_depth"].Value("test_depth", nil); !ok || v != 7.5 {
		t.Fatalf("rendered = %v, %v; want 7.5", v, ok)
	}
}

func TestFuncMetricsSampledAtScrape(t *testing.T) {
	r := NewRegistry()
	n := int64(0)
	r.CounterFunc("test_fn_total", "Sampled.", func() int64 { return n })
	x := 1.5
	r.GaugeFunc("test_fn_gauge", "Sampled.", func() float64 { return x })
	n, x = 42, -3
	fams := parse(t, render(t, r))
	if v, _ := fams["test_fn_total"].Value("test_fn_total", nil); v != 42 {
		t.Fatalf("counter fn = %v, want 42", v)
	}
	if v, _ := fams["test_fn_gauge"].Value("test_fn_gauge", nil); v != -3 {
		t.Fatalf("gauge fn = %v, want -3", v)
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	fams := parse(t, render(t, r))
	f := fams["test_latency_seconds"]
	if _, err := CheckHistogram(f); err != nil {
		t.Fatalf("CheckHistogram: %v", err)
	}
	want := map[string]float64{"0.1": 2, "1": 3, "10": 4, "+Inf": 5}
	for le, count := range want {
		v, ok := f.Value("test_latency_seconds_bucket", map[string]string{"le": le})
		if !ok || v != count {
			t.Fatalf("bucket le=%s = %v, %v; want %v", le, v, ok, count)
		}
	}
	if v, _ := f.Value("test_latency_seconds_count", nil); v != 5 {
		t.Fatalf("_count = %v, want 5", v)
	}
	if v, _ := f.Value("test_latency_seconds_sum", nil); v != 102.65 {
		t.Fatalf("_sum = %v, want 102.65", v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count() = %d, want 5", h.Count())
	}
}

func TestHistogramVecPerLabelSeries(t *testing.T) {
	r := NewRegistry()
	vec := r.HistogramVec("test_sweep_seconds", "Sweep latency.", DefBuckets, "engine", "mode")
	vec.With("agent", "").Observe(0.2)
	vec.With("asyncnet", "virtual").Observe(0.002)
	vec.With("asyncnet", "virtual").Observe(3)
	fams := parse(t, render(t, r))
	keys, err := CheckHistogram(fams["test_sweep_seconds"])
	if err != nil {
		t.Fatalf("CheckHistogram: %v", err)
	}
	if len(keys) != 2 {
		t.Fatalf("series = %v, want 2", keys)
	}
	v, ok := fams["test_sweep_seconds"].Value("test_sweep_seconds_count",
		map[string]string{"engine": "asyncnet", "mode": "virtual"})
	if !ok || v != 2 {
		t.Fatalf("asyncnet count = %v, %v; want 2", v, ok)
	}
}

func TestLabelEscapingRoundTrip(t *testing.T) {
	r := NewRegistry()
	vec := r.GaugeVec("test_escape", "Has \\ and\nnewline.", "v")
	weird := "a\"b\\c\nd"
	vec.With(weird).Set(1)
	fams := parse(t, render(t, r))
	f := fams["test_escape"]
	if f.Help != "Has \\ and\nnewline." {
		t.Fatalf("help round-trip = %q", f.Help)
	}
	if v, ok := f.Value("test_escape", map[string]string{"v": weird}); !ok || v != 1 {
		t.Fatalf("escaped label lost: %v, %v", v, ok)
	}
}

func TestRenderDeterministic(t *testing.T) {
	build := func() string {
		r := NewRegistry()
		r.Counter("test_b_total", "b").Inc()
		vec := r.CounterVec("test_a_total", "a", "k")
		vec.With("z").Inc()
		vec.With("a").Inc()
		var b strings.Builder
		if err := r.Render(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	first := build()
	for i := 0; i < 5; i++ {
		if got := build(); got != first {
			t.Fatalf("render not deterministic:\n%s\nvs\n%s", first, got)
		}
	}
	if strings.Index(first, "test_a_total") > strings.Index(first, "test_b_total") {
		t.Fatalf("families not sorted:\n%s", first)
	}
}

func TestRegistryPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("test_dup_total", "x")
	mustPanic("duplicate name", func() { r.Gauge("test_dup_total", "y") })
	mustPanic("invalid name", func() { r.Counter("1bad", "x") })
	mustPanic("invalid label", func() { r.CounterVec("test_l_total", "x", "0bad") })
	mustPanic("negative counter", func() { r.Counter("test_neg_total", "x").Add(-1) })
	mustPanic("no buckets", func() { r.Histogram("test_h0", "x", nil) })
	mustPanic("unsorted buckets", func() { r.Histogram("test_h1", "x", []float64{2, 1}) })
	mustPanic("le label", func() { r.HistogramVec("test_h2", "x", DefBuckets, "le") })
	vec := r.CounterVec("test_arity_total", "x", "a", "b")
	mustPanic("label arity", func() { vec.With("only-one") })
	capVec := r.CounterVec("test_cap_total", "x", "id")
	for i := 0; i < maxChildren; i++ {
		capVec.With(strings.Repeat("x", 3) + string(rune('a'+i%26)) + formatFloat(float64(i)))
	}
	mustPanic("child cap", func() { capVec.With("one-too-many") })
}

type failWriter struct{ after int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.after <= 0 {
		return 0, errors.New("stream hung up")
	}
	f.after--
	return len(p), nil
}

func TestRenderSurfacesWriteErrors(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_x_total", "x").Inc()
	for after := 0; after < 4; after++ {
		if err := r.Render(&failWriter{after: after}); err == nil {
			t.Fatalf("write failure at write %d swallowed", after)
		}
	}
}

func TestParserRejectsMalformed(t *testing.T) {
	bad := []string{
		"test_orphan 1\n",
		"# HELP test_x x\n# TYPE test_x widget\ntest_x 1\n",
		"# HELP test_x x\n# TYPE test_x counter\ntest_x{a=\"unterminated} 1\n",
		"# HELP test_x x\n# TYPE test_x counter\ntest_x notanumber\n",
		"# HELP test_x x\n# TYPE test_x counter\ntest_y 1\n",
		"# HELP test_x x\n# TYPE test_x counter\ntest_x_bucket{le=\"1\"} 1\n",
		"# HELP test_x x\ntest_x 1\n", // HELP but never typed
		"# HELP test_x x\n# HELP test_x x\n",
		// Duplicate series (same name + label set twice) must be rejected,
		// not last-write-wins: a scrape that repeats a series is corrupt.
		"# HELP test_x x\n# TYPE test_x counter\ntest_x 1\ntest_x 2\n",
		"# HELP test_x x\n# TYPE test_x counter\ntest_x{a=\"1\",b=\"2\"} 1\ntest_x{b=\"2\",a=\"1\"} 2\n",
		"# HELP test_x x\n# TYPE test_x histogram\ntest_x_bucket{le=\"+Inf\"} 1\ntest_x_bucket{le=\"+Inf\"} 1\ntest_x_sum 0\ntest_x_count 1\n",
		// Malformed exemplars: missing label block, unparseable value.
		"# HELP test_x x\n# TYPE test_x counter\ntest_x 1 # nolabels 2\n",
		"# HELP test_x x\n# TYPE test_x counter\ntest_x 1 # {trace_id=\"abc\"} nope\n",
	}
	for _, text := range bad {
		if _, err := ParseExposition(strings.NewReader(text)); err == nil {
			t.Fatalf("accepted malformed input:\n%s", text)
		}
	}
}

func TestTraceSpansAndIDs(t *testing.T) {
	if id := NewTraceID(); !ValidTraceID(id) {
		t.Fatalf("NewTraceID produced invalid id %q", id)
	}
	if ValidTraceID("short") || ValidTraceID(strings.Repeat("Z", 32)) {
		t.Fatal("ValidTraceID accepted junk")
	}
	inherited := NewTraceID()
	tr := NewTrace(inherited, "n0")
	if tr.ID != inherited {
		t.Fatalf("valid inherited ID replaced: %s", tr.ID)
	}
	tr2 := NewTrace("../../etc/passwd", "n0")
	if tr2.ID == "../../etc/passwd" || !ValidTraceID(tr2.ID) {
		t.Fatalf("malformed header ID not re-minted: %q", tr2.ID)
	}
	base := time.Unix(1700000000, 0)
	for i, st := range []string{StageQueued, StageCompiled, StageSwept, StagePersisted, StageResponded} {
		tr.Add(st, base.Add(time.Duration(i)*time.Second))
	}
	spans := tr.Spans()
	if len(spans) != 5 || spans[0].Stage != StageQueued || spans[4].Stage != StageResponded {
		t.Fatalf("spans = %+v", spans)
	}
	if !spans[3].At.Equal(base.Add(3 * time.Second)) {
		t.Fatalf("span timestamp lost: %v", spans[3].At)
	}
}
