package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is the read side of the exposition format: a strict parser
// for the text Render emits, used by the service, cluster, and daemon
// tests (and the CI scrape gate) to validate /metrics output instead of
// grepping for substrings.

// MetricFamily is one parsed family: its metadata plus every sample line
// that belongs to it.
type MetricFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []Sample
}

// Sample is one parsed series line. For histograms, Name carries the
// _bucket/_sum/_count suffix and bucket samples keep their le label.
// Exemplar is non-nil when the line carried an OpenMetrics exemplar
// (` # {labels} value`), which Render emits on traced histogram buckets.
type Sample struct {
	Name     string
	Labels   map[string]string
	Value    float64
	Exemplar *SampleExemplar
}

// SampleExemplar is a parsed OpenMetrics exemplar: its label set (Render
// emits exactly one label, trace_id) and the exemplified value.
type SampleExemplar struct {
	Labels map[string]string
	Value  float64
}

// Value returns the sample with the given full name and exact label set,
// treating a nil map as empty.
func (f *MetricFamily) Value(name string, labels map[string]string) (float64, bool) {
	for _, s := range f.Samples {
		if s.Name != name || len(s.Labels) != len(labels) {
			continue
		}
		match := true
		for k, v := range labels {
			if sv, ok := s.Labels[k]; !ok || sv != v {
				match = false
				break
			}
		}
		if match {
			return s.Value, true
		}
	}
	return 0, false
}

// ParseExposition parses Prometheus text exposition format, validating
// the structure Render promises: HELP/TYPE comment pairs, a known type,
// every sample named after an announced family (histograms may only add
// the _bucket/_sum/_count suffixes), and parseable values. It returns
// families keyed by name.
func ParseExposition(r io.Reader) (map[string]*MetricFamily, error) {
	families := make(map[string]*MetricFamily)
	var current *MetricFamily
	seen := make(map[string]struct{})
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fam, err := parseComment(line, families)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			if fam != nil {
				current = fam
			}
			continue
		}
		if err := parseSample(line, current, seen); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, f := range families {
		if f.Type == "" {
			return nil, fmt.Errorf("family %s has HELP but no TYPE", f.Name)
		}
	}
	return families, nil
}

func parseComment(line string, families map[string]*MetricFamily) (*MetricFamily, error) {
	parts := strings.SplitN(line, " ", 4)
	if len(parts) < 3 {
		return nil, fmt.Errorf("malformed comment %q", line)
	}
	switch parts[1] {
	case "HELP":
		name := parts[2]
		if !validMetricName(name) {
			return nil, fmt.Errorf("invalid metric name %q in HELP", name)
		}
		if _, ok := families[name]; ok {
			return nil, fmt.Errorf("family %s announced twice", name)
		}
		f := &MetricFamily{Name: name}
		if len(parts) == 4 {
			f.Help = unescapeHelp(parts[3])
		}
		families[name] = f
		return f, nil
	case "TYPE":
		name := parts[2]
		f, ok := families[name]
		if !ok {
			return nil, fmt.Errorf("TYPE for %s before its HELP", name)
		}
		if f.Type != "" {
			return nil, fmt.Errorf("family %s typed twice", name)
		}
		if len(parts) != 4 {
			return nil, fmt.Errorf("TYPE line for %s missing a type", name)
		}
		switch parts[3] {
		case "counter", "gauge", "histogram":
			f.Type = parts[3]
		default:
			return nil, fmt.Errorf("family %s has unknown type %q", name, parts[3])
		}
		return f, nil
	default:
		// Other comments are legal in the format; Render never emits
		// them, but tolerate rather than reject.
		return nil, nil
	}
}

func parseSample(line string, current *MetricFamily, seen map[string]struct{}) error {
	if current == nil {
		return fmt.Errorf("sample %q before any family comment", line)
	}
	name, rest, err := splitSampleName(line)
	if err != nil {
		return err
	}
	if !sampleNameMatches(current, name) {
		return fmt.Errorf("sample %s does not belong to family %s (type %s)", name, current.Name, current.Type)
	}
	labels, valueText, err := splitLabels(rest)
	if err != nil {
		return fmt.Errorf("sample %s: %w", name, err)
	}
	// The label block is fully consumed above, so a remaining "#" can
	// only start an OpenMetrics exemplar; split it off before value
	// parsing (which treats trailing text as a timestamp).
	var exemplar *SampleExemplar
	if idx := strings.Index(valueText, "#"); idx >= 0 {
		exemplar, err = parseExemplar(strings.TrimSpace(valueText[idx+1:]))
		if err != nil {
			return fmt.Errorf("sample %s: %w", name, err)
		}
		valueText = strings.TrimSpace(valueText[:idx])
	}
	value, err := parseValue(valueText)
	if err != nil {
		return fmt.Errorf("sample %s: %w", name, err)
	}
	key := seriesKey(name, labels)
	if _, dup := seen[key]; dup {
		return fmt.Errorf("duplicate series %s%s", name, canonicalLabels(labels))
	}
	seen[key] = struct{}{}
	current.Samples = append(current.Samples, Sample{Name: name, Labels: labels, Value: value, Exemplar: exemplar})
	return nil
}

// parseExemplar parses the text after a sample line's "#": an OpenMetrics
// exemplar of the form `{label="value",...} value [timestamp]`.
func parseExemplar(s string) (*SampleExemplar, error) {
	if !strings.HasPrefix(s, "{") {
		return nil, fmt.Errorf("exemplar missing label block near %q", s)
	}
	labels, valueText, err := splitLabels(s)
	if err != nil {
		return nil, fmt.Errorf("exemplar: %w", err)
	}
	value, err := parseValue(valueText)
	if err != nil {
		return nil, fmt.Errorf("exemplar: %w", err)
	}
	if labels == nil {
		labels = map[string]string{}
	}
	return &SampleExemplar{Labels: labels, Value: value}, nil
}

// seriesKey identifies one series (name + exact label set) for duplicate
// detection; label order in the source line does not matter.
func seriesKey(name string, labels map[string]string) string {
	return name + "\xff" + canonicalLabels(labels)
}

// canonicalLabels renders a label set sorted by name, for keys and
// error messages.
func canonicalLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, 0, len(labels))
	for k, v := range labels {
		parts = append(parts, k+"="+strconv.Quote(v))
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, ",") + "}"
}

func sampleNameMatches(f *MetricFamily, name string) bool {
	if name == f.Name && f.Type != "histogram" {
		return true
	}
	if f.Type == "histogram" {
		suffix := strings.TrimPrefix(name, f.Name)
		return suffix == "_bucket" || suffix == "_sum" || suffix == "_count"
	}
	return false
}

func splitSampleName(line string) (name, rest string, err error) {
	idx := strings.IndexAny(line, "{ ")
	if idx <= 0 {
		return "", "", fmt.Errorf("malformed sample line %q", line)
	}
	name = line[:idx]
	if !validMetricName(name) {
		return "", "", fmt.Errorf("invalid sample name %q", name)
	}
	return name, line[idx:], nil
}

// splitLabels parses the optional {..} block and returns the remaining
// value text.
func splitLabels(rest string) (map[string]string, string, error) {
	if !strings.HasPrefix(rest, "{") {
		return nil, strings.TrimSpace(rest), nil
	}
	labels := make(map[string]string)
	s := rest[1:]
	for {
		s = strings.TrimLeft(s, " ,")
		if strings.HasPrefix(s, "}") {
			return labels, strings.TrimSpace(s[1:]), nil
		}
		eq := strings.Index(s, "=")
		if eq <= 0 {
			return nil, "", fmt.Errorf("malformed label block near %q", s)
		}
		lname := s[:eq]
		if !validLabelName(lname) {
			return nil, "", fmt.Errorf("invalid label name %q", lname)
		}
		if _, dup := labels[lname]; dup {
			return nil, "", fmt.Errorf("label %s repeated", lname)
		}
		value, remainder, err := parseQuoted(s[eq+1:])
		if err != nil {
			return nil, "", err
		}
		labels[lname] = value
		s = remainder
	}
}

// parseQuoted consumes a double-quoted, backslash-escaped label value.
func parseQuoted(s string) (value, rest string, err error) {
	if !strings.HasPrefix(s, `"`) {
		return "", "", fmt.Errorf("label value not quoted near %q", s)
	}
	var b strings.Builder
	i := 1
	for i < len(s) {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("dangling escape in label value")
			}
			switch s[i+1] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("unknown escape \\%c in label value", s[i+1])
			}
			i += 2
		case '"':
			return b.String(), s[i+1:], nil
		default:
			b.WriteByte(s[i])
			i++
		}
	}
	return "", "", fmt.Errorf("unterminated label value")
}

// unescapeHelp reverses Render's HELP escaping (\\ and \n).
func unescapeHelp(s string) string {
	if !strings.ContainsRune(s, '\\') {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case '\\':
				b.WriteByte('\\')
				i++
				continue
			case 'n':
				b.WriteByte('\n')
				i++
				continue
			}
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

func parseValue(s string) (float64, error) {
	if s == "" {
		return 0, fmt.Errorf("missing value")
	}
	// Exposition allows a trailing timestamp; Render never emits one,
	// but accept "value ts" shape for format fidelity.
	if idx := strings.IndexByte(s, ' '); idx >= 0 {
		s = s[:idx]
	}
	switch s {
	case "+Inf", "-Inf", "NaN":
		v, _ := strconv.ParseFloat(s, 64)
		return v, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("unparseable value %q", s)
	}
	return v, nil
}

// CheckHistogram validates one histogram family: every series has
// cumulative (monotone non-decreasing) buckets ending in a le="+Inf"
// bucket equal to its _count, with a _sum present. It returns the names
// of the label sets it validated, sorted, so callers can assert coverage.
func CheckHistogram(f *MetricFamily) ([]string, error) {
	if f.Type != "histogram" {
		return nil, fmt.Errorf("family %s is a %s, not a histogram", f.Name, f.Type)
	}
	type series struct {
		buckets []Sample
		sum     *Sample
		count   *Sample
	}
	byKey := make(map[string]*series)
	keyOf := func(labels map[string]string) string {
		parts := make([]string, 0, len(labels))
		for k, v := range labels {
			if k == "le" {
				continue
			}
			parts = append(parts, k+"="+v)
		}
		sort.Strings(parts)
		return strings.Join(parts, ",")
	}
	get := func(labels map[string]string) *series {
		k := keyOf(labels)
		if byKey[k] == nil {
			byKey[k] = &series{}
		}
		return byKey[k]
	}
	for i := range f.Samples {
		s := f.Samples[i]
		switch strings.TrimPrefix(s.Name, f.Name) {
		case "_bucket":
			get(s.Labels).buckets = append(get(s.Labels).buckets, s)
		case "_sum":
			get(s.Labels).sum = &f.Samples[i]
		case "_count":
			get(s.Labels).count = &f.Samples[i]
		}
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		ser := byKey[k]
		if ser.sum == nil || ser.count == nil {
			return nil, fmt.Errorf("%s{%s}: missing _sum or _count", f.Name, k)
		}
		if len(ser.buckets) == 0 {
			return nil, fmt.Errorf("%s{%s}: no buckets", f.Name, k)
		}
		prev := -1.0
		lastUpper := 0.0
		lastCum := 0.0
		lower := math.Inf(-1)
		for _, b := range ser.buckets {
			le := b.Labels["le"]
			upper, err := parseValue(le)
			if le == "" || err != nil {
				return nil, fmt.Errorf("%s{%s}: bucket without valid le label", f.Name, k)
			}
			if upper <= lastUpper && lastUpper != 0 {
				return nil, fmt.Errorf("%s{%s}: bucket bounds not ascending", f.Name, k)
			}
			if b.Value < prev {
				return nil, fmt.Errorf("%s{%s}: bucket counts not cumulative (le=%s: %v < %v)", f.Name, k, le, b.Value, prev)
			}
			if e := b.Exemplar; e != nil {
				// An exemplar exemplifies an observation from this bucket,
				// so its value must lie in (lower, le] and its trace link
				// must be a well-formed trace ID.
				if e.Value > upper || e.Value <= lower {
					return nil, fmt.Errorf("%s{%s}: exemplar value %v outside bucket (%v, %v]", f.Name, k, e.Value, lower, upper)
				}
				if !ValidTraceID(e.Labels["trace_id"]) {
					return nil, fmt.Errorf("%s{%s}: exemplar on le=%s has invalid trace_id %q", f.Name, k, le, e.Labels["trace_id"])
				}
			}
			prev = b.Value
			lastUpper = upper
			lastCum = b.Value
			lower = upper
		}
		last := ser.buckets[len(ser.buckets)-1]
		if last.Labels["le"] != "+Inf" {
			return nil, fmt.Errorf("%s{%s}: final bucket is le=%q, want +Inf", f.Name, k, last.Labels["le"])
		}
		if lastCum != ser.count.Value {
			return nil, fmt.Errorf("%s{%s}: +Inf bucket %v != _count %v", f.Name, k, lastCum, ser.count.Value)
		}
	}
	return keys, nil
}
